#!/usr/bin/env python3
"""Lint mixed atomic/plain struct layouts.

A struct that mixes std::atomic members with plain fields is a data race
waiting to happen: the atomics invite lock-free concurrent access, and any
plain field in the same object is then one forgotten happens-before edge away
from UB (exactly the class of bug behind the Frame.key/vaddr races). This
lint scans src/ and bench/ for `struct` definitions and requires every
non-atomic data member of an atomic-bearing struct to carry a written
protection contract:

    uint64_t gpa = 0;  // guarded-by: written once under grow_lock_ ...

Exempt without annotation:
  - const / constexpr members (immutable after construction);
  - synchronization primitives (SpinLock, RwSpinLock, std::mutex, ...) —
    they ARE the guard;
  - static / using / typedef / friend declarations and member functions.

Classes (`class` keyword) are not scanned: their private members are covered
by the class's own synchronization discipline; `struct` is this codebase's
convention for shared plain-data records, which is where the hazard lives.

Usage: check_atomics.py [repo_root]
Exits nonzero with a report on any violation.
"""

import os
import re
import sys

SCAN_DIRS = ("src", "bench")
EXTENSIONS = (".h", ".cc", ".cpp")

STRUCT_HEAD_RE = re.compile(r"\bstruct(\s+alignas\s*\([^)]*\))?\s+(\w+)[^;{)]*\{")
ANNOTATION = "guarded-by:"

# Declaration prefixes that are not data members.
SKIP_PREFIX_RE = re.compile(
    r"^\s*(static|using|typedef|friend|template|enum|struct|class|union|"
    r"public|private|protected|explicit|operator)\b"
)
ATOMIC_RE = re.compile(r"\bstd\s*::\s*atomic\b|\batomic<")
CONST_RE = re.compile(r"^\s*(mutable\s+)?(static\s+)?const(expr)?\b")
# Types that are themselves synchronization primitives.
SYNC_TYPE_RE = re.compile(
    r"\b(SpinLock|RwSpinLock|std\s*::\s*(mutex|shared_mutex|recursive_mutex|"
    r"timed_mutex|condition_variable\w*|once_flag))\b"
)


def strip_block_comments_and_strings(text: str) -> str:
    """Removes /*...*/ and string-literal contents (keeps // comments, which
    carry the guarded-by annotations)."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r'"(?:[^"\\\n]|\\.)*"', '""', text)


def extract_body(text: str, open_brace: int) -> str:
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace + 1 : i]
    return text[open_brace + 1 :]  # unbalanced: lint what we can


def split_declarations(body: str):
    """Yields (decl_text, line_offset) for each depth-0 statement of a struct
    body. Characters inside // comments are kept in the statement text (they
    carry the guarded-by annotations) but are never structural: a ';' in a
    comment does not terminate a declaration. A declaration ends at its
    structural ';' plus the remainder of that line, so a trailing
    '// guarded-by:' comment lands in the right statement. Nested {...}
    groups (functions, nested types, brace initializers) are consumed; a
    group preceded by '(' marks a function/constructor definition, which
    terminates the statement."""
    decl = []
    depth = 0
    line = 0
    start_line = 0
    in_comment = False
    pending = False  # structural ';' seen; flush at end of this line
    for ch in body:
        if depth == 0 and not decl and not pending:
            start_line = line
        decl.append(ch)
        if ch == "\n":
            line += 1
            in_comment = False
            if pending:
                yield "".join(decl), start_line
                decl = []
                pending = False
            continue
        if in_comment:
            continue
        if len(decl) >= 2 and decl[-1] == "/" and decl[-2] == "/":
            in_comment = True
            continue
        if pending:
            continue
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                code = re.sub(r"//[^\n]*", "", "".join(decl))
                if "(" in code:
                    decl = []  # function / constructor body just closed
        elif ch == ";" and depth == 0:
            pending = True
    if decl and pending:
        yield "".join(decl), start_line


def member_name(decl: str) -> str:
    flat = re.sub(r"//[^\n]*", "", decl)
    flat = re.sub(r"\{[^}]*\}", "", flat)
    flat = flat.split("=")[0]
    m = re.search(r"(\w+)\s*(\[[^\]]*\]\s*)?;?\s*$", flat.strip().rstrip(";"))
    return m.group(1) if m else flat.strip()


def lint_struct(rel: str, name: str, body: str, base_line: int, errors: list):
    decls = list(split_declarations(body))
    has_atomic = any(
        ATOMIC_RE.search(re.sub(r"//[^\n]*", "", d)) for d, _ in decls)
    if not has_atomic:
        return False
    for decl, off in decls:
        code = re.sub(r"//[^\n]*", "", decl)
        if ";" not in decl or not code.strip():
            continue
        if SKIP_PREFIX_RE.match(code.strip()):
            continue
        if "(" in code:  # member function declaration (or function pointer —
            continue  # annotate via a wrapper struct if one ever appears)
        if ATOMIC_RE.search(code) or CONST_RE.match(code.strip()):
            continue
        if SYNC_TYPE_RE.search(code):
            continue
        if ANNOTATION in decl:
            continue
        errors.append(
            f"{rel}:{base_line + off}: struct {name}: plain field "
            f"'{member_name(code)}' in an atomic-bearing struct needs a "
            f"'// {ANNOTATION} <what serializes access>' annotation"
        )
    return True


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    errors = []
    structs_seen = 0
    atomic_structs = 0

    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, _, filenames in os.walk(base):
            for filename in sorted(filenames):
                if not filename.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, encoding="utf-8") as f:
                    text = strip_block_comments_and_strings(f.read())
                rel = os.path.relpath(path, root)
                for m in STRUCT_HEAD_RE.finditer(text):
                    structs_seen += 1
                    open_brace = text.index("{", m.start())
                    body = extract_body(text, open_brace)
                    head_line = text.count("\n", 0, open_brace) + 1
                    if lint_struct(rel, m.group(2), body, head_line, errors):
                        atomic_structs += 1

    if structs_seen == 0:
        print("check_atomics: found no struct definitions — wrong root?")
        return 1
    for err in errors:
        print(err)
    if errors:
        print(f"check_atomics: {len(errors)} unannotated plain field(s) in "
              f"atomic-bearing structs")
        return 1
    print(f"check_atomics: {atomic_structs}/{structs_seen} atomic-bearing "
          f"structs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
