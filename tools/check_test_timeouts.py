#!/usr/bin/env python3
"""Lint CTest registrations for explicit timeouts.

A test without a TIMEOUT property stalls the whole suite when it wedges —
the ctest-level analog of the hung-device commands the chaos suite injects.
This lint walks every CMakeLists.txt in the repo and enforces:

  1. Every gtest_discover_tests(...) call passes PROPERTIES ... TIMEOUT
     (the discovered tests inherit it).
  2. Every add_test(NAME <n> ...) is paired with a
     set_tests_properties(<n> ... TIMEOUT ...) in the same file. <n> may be
     a ${var} reference as long as the two commands spell it identically
     (the pattern used by function-wrapped registrations).

Usage: check_test_timeouts.py [repo_root]
Exits nonzero with a report on any violation.
"""

import os
import re
import sys

SKIP_DIRS = {"build", "third_party", ".git"}


def strip_comments(text: str) -> str:
    return re.sub(r"#[^\n]*", "", text)


def commands(text: str):
    """Yields (name, args, lineno) for each top-level command invocation."""
    for match in re.finditer(r"(?m)^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(", text):
        name = match.group(1).lower()
        # Walk to the balanced closing paren (CMake quotes cannot contain
        # parens in this tree; generator expressions keep balance anyway).
        depth = 0
        for end in range(match.end() - 1, len(text)):
            if text[end] == "(":
                depth += 1
            elif text[end] == ")":
                depth -= 1
                if depth == 0:
                    break
        else:
            continue
        lineno = text.count("\n", 0, match.start()) + 1
        yield name, text[match.end():end], lineno


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    status = 0
    total = 0

    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in sorted(dirnames) if d not in SKIP_DIRS]
        if "CMakeLists.txt" not in filenames:
            continue
        path = os.path.join(dirpath, "CMakeLists.txt")
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = strip_comments(f.read())

        added = []  # (test_name_token, lineno)
        covered = set()  # name tokens appearing in set_tests_properties+TIMEOUT
        for name, args, lineno in commands(text):
            tokens = args.split()
            if name == "gtest_discover_tests":
                total += 1
                if "TIMEOUT" not in tokens:
                    print(f"{rel}:{lineno}: gtest_discover_tests without "
                          "PROPERTIES TIMEOUT — hung tests would stall ctest")
                    status = 1
            elif name == "add_test":
                if "NAME" in tokens:
                    total += 1
                    added.append((tokens[tokens.index("NAME") + 1], lineno))
            elif name == "set_tests_properties" and "TIMEOUT" in tokens:
                for token in tokens:
                    if token == "PROPERTIES":
                        break
                    covered.add(token)
        for test, lineno in added:
            if test not in covered:
                print(f"{rel}:{lineno}: add_test({test}) has no "
                      f"set_tests_properties({test} ... TIMEOUT ...) in {rel}")
                status = 1

    if total == 0:
        print("check_test_timeouts: found no test registrations — wrong root?")
        return 1
    if status == 0:
        print(f"check_test_timeouts: {total} registrations OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
