#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts and flag regressions beyond a noise bar.

Both files must carry the unified envelope (schema aquila-bench-v1, written
by bench/common.h's BenchJsonWriter): metadata header plus named row arrays
under "rows". Rows are matched positionally within each section; every
shared numeric field is compared.

Direction is inferred from the field name: latency/cost-like fields
(*_us, *_cycles*, *latency*, ipis_per_*) regress when they go UP;
throughput-like fields (*iops*, *throughput*, *ops_per_sec*) regress when
they go DOWN. Fields with no recognizable direction are reported when they
move beyond the threshold but never fail the comparison — counters like
"shootdowns" legitimately move with workload tweaks.

Usage:
  bench_compare.py [--threshold PCT] baseline.json candidate.json
  bench_compare.py --smoke          # self-check on synthetic envelopes

Exits nonzero when any directional metric regresses by more than
--threshold percent (default 10, chosen above the simulator's run-to-run
jitter).
"""

import argparse
import json
import os
import sys
import tempfile

LOWER_IS_BETTER = ("_us", "us_", "latency", "cycles", "ipis_per")
HIGHER_IS_BETTER = ("iops", "throughput", "ops_per_sec", "mb_per_sec")


def direction(field):
    """-1: lower is better, +1: higher is better, 0: no direction."""
    name = field.lower()
    for token in HIGHER_IS_BETTER:
        if token in name:
            return 1
    for token in LOWER_IS_BETTER:
        if token in name or name.endswith("_us") or name.endswith("us"):
            return -1
    return 0


def load_envelope(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "aquila-bench-v1":
        raise ValueError(f"{path}: not an aquila-bench-v1 envelope "
                         f"(schema={doc.get('schema')!r}); re-run the bench "
                         "from this tree to regenerate it")
    if not isinstance(doc.get("rows"), dict):
        raise ValueError(f"{path}: envelope has no rows object")
    return doc


def compare(base, cand, threshold_pct):
    """Returns (regressions, changes, notes): lists of report strings."""
    regressions, changes, notes = [], [], []

    if base.get("bench") != cand.get("bench"):
        raise ValueError(f"different benchmarks: {base.get('bench')!r} vs "
                         f"{cand.get('bench')!r}")
    for key in ("git_rev", "smoke", "threads"):
        if base.get(key) != cand.get(key):
            notes.append(f"{key}: {base.get(key)!r} -> {cand.get(key)!r}")
    if base.get("options") != cand.get("options"):
        notes.append(f"options: {base.get('options')} -> {cand.get('options')}")

    for section, base_rows in base["rows"].items():
        cand_rows = cand["rows"].get(section)
        if cand_rows is None:
            notes.append(f"section {section!r} missing from candidate")
            continue
        if len(base_rows) != len(cand_rows):
            notes.append(f"section {section!r}: {len(base_rows)} rows -> "
                         f"{len(cand_rows)} rows; comparing the common prefix")
        dropped_fields, added_fields = set(), set()
        for i, (b, c) in enumerate(zip(base_rows, cand_rows)):
            label = row_label(section, i, b)
            dropped_fields.update(set(b) - set(c))
            added_fields.update(set(c) - set(b))
            for field in sorted(set(b) & set(c)):
                bv, cv = b[field], c[field]
                if isinstance(bv, bool) or not isinstance(bv, (int, float)):
                    continue
                if not isinstance(cv, (int, float)) or isinstance(cv, bool):
                    continue
                if bv == cv:
                    continue
                if bv == 0:
                    changes.append(f"{label} {field}: {bv} -> {cv}")
                    continue
                delta_pct = (cv - bv) / abs(bv) * 100.0
                if abs(delta_pct) <= threshold_pct:
                    continue
                line = (f"{label} {field}: {bv:g} -> {cv:g} "
                        f"({delta_pct:+.1f}%)")
                d = direction(field)
                if d != 0 and delta_pct * d < 0:
                    regressions.append(line)
                else:
                    changes.append(line)
        # A field present on only one side is a schema drift (e.g. a bench
        # grew a new counter), not a regression: report it and move on so
        # old baselines stay comparable against newer trees.
        if dropped_fields:
            notes.append(f"section {section!r}: field(s) only in baseline: "
                         f"{', '.join(sorted(dropped_fields))}")
        if added_fields:
            notes.append(f"section {section!r}: field(s) new in candidate: "
                         f"{', '.join(sorted(added_fields))}")
    for section in cand["rows"]:
        if section not in base["rows"]:
            notes.append(f"section {section!r} new in candidate")
    return regressions, changes, notes


def row_label(section, index, row):
    # Prefer the row's own identity fields over a bare index.
    for key in ("mode", "name", "queue_depth", "cores"):
        if key in row:
            return f"{section}[{key}={row[key]}]"
    return f"{section}[{index}]"


def run_compare(base_path, cand_path, threshold_pct):
    base = load_envelope(base_path)
    cand = load_envelope(cand_path)
    regressions, changes, notes = compare(base, cand, threshold_pct)
    for line in notes:
        print(f"note: {line}")
    for line in changes:
        print(f"changed: {line}")
    for line in regressions:
        print(f"REGRESSION: {line}")
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{threshold_pct:g}%")
        return 1
    print(f"bench_compare: OK ({len(changes)} non-directional change(s), "
          f"threshold {threshold_pct:g}%)")
    return 0


def smoke():
    """Self-check: a regression must be caught, noise must pass."""
    envelope = {
        "schema": "aquila-bench-v1", "bench": "smoke", "git_rev": "test",
        "timestamp_utc": "1970-01-01T00:00:00Z", "threads": 1, "smoke": True,
        "options": {},
        "rows": {"sweep": [
            {"queue_depth": 8, "kiops": 100.0, "p99_us": 50.0,
             "shootdowns": 1000},
        ]},
    }
    slower = json.loads(json.dumps(envelope))
    slower["rows"]["sweep"][0]["p99_us"] = 80.0       # +60%: latency regression
    slower["rows"]["sweep"][0]["shootdowns"] = 2000   # no direction: reported only
    noisy = json.loads(json.dumps(envelope))
    noisy["rows"]["sweep"][0]["kiops"] = 95.0         # -5%: inside the bar
    faster = json.loads(json.dumps(envelope))
    faster["rows"]["sweep"][0]["kiops"] = 55.0        # -45%: throughput regression
    drifted = json.loads(json.dumps(envelope))
    del drifted["rows"]["sweep"][0]["shootdowns"]     # dropped field: note only
    drifted["rows"]["sweep"][0]["hedges"] = 3         # new field: note only

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        def write(name, doc):
            path = os.path.join(tmp, name)
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f)
            return path

        base = write("base.json", envelope)
        cases = [
            (write("slower.json", slower), 1, "latency regression"),
            (write("noisy.json", noisy), 0, "noise inside threshold"),
            (write("faster.json", faster), 1, "throughput regression"),
            (write("drifted.json", drifted), 0, "field drift tolerated"),
            (base, 0, "identical artifacts"),
        ]
        for path, want, what in cases:
            got = run_compare(base, path, threshold_pct=10.0)
            if got != want:
                failures.append(f"{what}: exit {got}, want {want}")
    for failure in failures:
        print(f"smoke FAILED: {failure}")
    if not failures:
        print("bench_compare --smoke: all self-checks passed")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="noise bar in percent (default 10)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the built-in self-check and exit")
    args = parser.parse_args()
    if args.smoke:
        return smoke()
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate files required (or --smoke)")
    try:
        return run_compare(args.baseline, args.candidate, args.threshold)
    except (ValueError, OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}")
        return 2


if __name__ == "__main__":
    sys.exit(main())
