#!/usr/bin/env python3
"""Lint telemetry metric names.

Scans src/ and bench/ for string literals that look like metric names
("aquila.<...>") and enforces the two registry conventions:

  1. Names match ^aquila(\\.[a-z0-9_]+){2,}$ — at least
     `aquila.<subsystem>.<name>`, lowercase [a-z0-9_] segments.
  2. Each name is defined by exactly ONE literal in the tree. Multiple
     *instances* of a subsystem may report the same name (the registry sums
     same-name callbacks), but the defining call site must be unique so a
     grep for a metric always lands in one place.
  3. Names that docs/dashboards depend on (REQUIRED_NAMES) must exist:
     deleting or renaming one is a breaking telemetry change and fails here
     until the expectation list is updated alongside the consumers.

Usage: check_metrics_names.py [repo_root]
Exits nonzero with a report on any violation.
"""

import os
import re
import sys
from collections import defaultdict

SCAN_DIRS = ("src", "bench")
EXTENSIONS = (".h", ".cc", ".cpp")
CANDIDATE_RE = re.compile(r'"(aquila\.[^"\\]+)"')
VALID_RE = re.compile(r"^aquila(\.[a-z0-9_]+){2,}$")

# Metric names external consumers rely on (EXPERIMENTS.md trajectories,
# BENCH_*.json emitters, DESIGN.md). Keep sorted.
REQUIRED_NAMES = frozenset({
    "aquila.device.health_state",
    "aquila.device.hedges",
    "aquila.device.timeouts",
    "aquila.huge.demotions",
    "aquila.huge.fault_around_mapped",
    "aquila.huge.promotions",
    "aquila.huge.runs_carved",
    "aquila.sched.park_depth",
    "aquila.sched.parked",
    "aquila.sched.resumed",
    "aquila.sched.steals",
    "aquila.span.dropped",
    "aquila.span.finalized",
    "aquila.span.retained",
    "aquila.span.started",
    "aquila.tlb.hits",
    "aquila.tlb.ipis_elided",
    "aquila.tlb.ipis_sent",
    "aquila.tlb.misses",
    "aquila.tlb.reuse_elided",
    "aquila.tlb.reuse_mismatch",
    "aquila.tlb.shootdown_rounds",
    "aquila.tlb.shootdowns_local",
    "aquila.trace.dropped_events",
    "aquila.vmx.ipi_sent",
})


def strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    occurrences = defaultdict(list)  # name -> [(path, line)]
    invalid = []  # (path, line, name)

    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, _, filenames in os.walk(base):
            for filename in sorted(filenames):
                if not filename.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, encoding="utf-8") as f:
                    text = strip_comments(f.read())
                for lineno, line in enumerate(text.splitlines(), start=1):
                    for name in CANDIDATE_RE.findall(line):
                        rel = os.path.relpath(path, root)
                        if VALID_RE.match(name):
                            occurrences[name].append((rel, lineno))
                        else:
                            invalid.append((rel, lineno, name))

    status = 0
    if not occurrences:
        print("check_metrics_names: found no metric names — wrong root?")
        return 1
    for path, lineno, name in invalid:
        print(f"{path}:{lineno}: invalid metric name {name!r} "
              "(want aquila.<subsystem>.<name>, segments [a-z0-9_]+)")
        status = 1
    for name, sites in sorted(occurrences.items()):
        if len(sites) > 1:
            where = ", ".join(f"{p}:{n}" for p, n in sites)
            print(f"duplicate defining literal for {name!r}: {where}")
            status = 1
    for name in sorted(REQUIRED_NAMES - occurrences.keys()):
        print(f"required metric name {name!r} not found in "
              f"{'/'.join(SCAN_DIRS)} — update consumers before removing it")
        status = 1
    if status == 0:
        print(f"check_metrics_names: {len(occurrences)} metric names OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
