# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_store "/root/repo/build/examples/kv_store")
set_tests_properties(example_kv_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_analytics "/root/repo/build/examples/graph_analytics")
set_tests_properties(example_graph_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_policies "/root/repo/build/examples/custom_policies")
set_tests_properties(example_custom_policies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heap_extension "/root/repo/build/examples/heap_extension")
set_tests_properties(example_heap_extension PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
