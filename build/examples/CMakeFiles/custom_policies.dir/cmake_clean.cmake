file(REMOVE_RECURSE
  "CMakeFiles/custom_policies.dir/custom_policies.cpp.o"
  "CMakeFiles/custom_policies.dir/custom_policies.cpp.o.d"
  "custom_policies"
  "custom_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
