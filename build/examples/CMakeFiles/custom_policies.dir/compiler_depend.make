# Empty compiler generated dependencies file for custom_policies.
# This may be replaced when dependencies are built.
