# Empty compiler generated dependencies file for heap_extension.
# This may be replaced when dependencies are built.
