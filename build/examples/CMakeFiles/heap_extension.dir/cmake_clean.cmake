file(REMOVE_RECURSE
  "CMakeFiles/heap_extension.dir/heap_extension.cpp.o"
  "CMakeFiles/heap_extension.dir/heap_extension.cpp.o.d"
  "heap_extension"
  "heap_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
