file(REMOVE_RECURSE
  "CMakeFiles/aquila_cache.dir/dirty_tree.cc.o"
  "CMakeFiles/aquila_cache.dir/dirty_tree.cc.o.d"
  "CMakeFiles/aquila_cache.dir/freelist.cc.o"
  "CMakeFiles/aquila_cache.dir/freelist.cc.o.d"
  "CMakeFiles/aquila_cache.dir/page_cache.cc.o"
  "CMakeFiles/aquila_cache.dir/page_cache.cc.o.d"
  "libaquila_cache.a"
  "libaquila_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
