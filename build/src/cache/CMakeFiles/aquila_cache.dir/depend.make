# Empty dependencies file for aquila_cache.
# This may be replaced when dependencies are built.
