file(REMOVE_RECURSE
  "libaquila_cache.a"
)
