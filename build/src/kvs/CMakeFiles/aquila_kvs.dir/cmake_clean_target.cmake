file(REMOVE_RECURSE
  "libaquila_kvs.a"
)
