# Empty dependencies file for aquila_kvs.
# This may be replaced when dependencies are built.
