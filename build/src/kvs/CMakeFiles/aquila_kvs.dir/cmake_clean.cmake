file(REMOVE_RECURSE
  "CMakeFiles/aquila_kvs.dir/block_cache.cc.o"
  "CMakeFiles/aquila_kvs.dir/block_cache.cc.o.d"
  "CMakeFiles/aquila_kvs.dir/bloom.cc.o"
  "CMakeFiles/aquila_kvs.dir/bloom.cc.o.d"
  "CMakeFiles/aquila_kvs.dir/env.cc.o"
  "CMakeFiles/aquila_kvs.dir/env.cc.o.d"
  "CMakeFiles/aquila_kvs.dir/kreon_db.cc.o"
  "CMakeFiles/aquila_kvs.dir/kreon_db.cc.o.d"
  "CMakeFiles/aquila_kvs.dir/lsm_db.cc.o"
  "CMakeFiles/aquila_kvs.dir/lsm_db.cc.o.d"
  "CMakeFiles/aquila_kvs.dir/memtable.cc.o"
  "CMakeFiles/aquila_kvs.dir/memtable.cc.o.d"
  "CMakeFiles/aquila_kvs.dir/sst.cc.o"
  "CMakeFiles/aquila_kvs.dir/sst.cc.o.d"
  "libaquila_kvs.a"
  "libaquila_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
