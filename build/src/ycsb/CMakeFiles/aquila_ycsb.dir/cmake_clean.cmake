file(REMOVE_RECURSE
  "CMakeFiles/aquila_ycsb.dir/runner.cc.o"
  "CMakeFiles/aquila_ycsb.dir/runner.cc.o.d"
  "CMakeFiles/aquila_ycsb.dir/workload.cc.o"
  "CMakeFiles/aquila_ycsb.dir/workload.cc.o.d"
  "libaquila_ycsb.a"
  "libaquila_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
