# Empty compiler generated dependencies file for aquila_ycsb.
# This may be replaced when dependencies are built.
