file(REMOVE_RECURSE
  "libaquila_ycsb.a"
)
