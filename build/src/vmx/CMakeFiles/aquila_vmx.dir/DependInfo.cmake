
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmx/cost_model.cc" "src/vmx/CMakeFiles/aquila_vmx.dir/cost_model.cc.o" "gcc" "src/vmx/CMakeFiles/aquila_vmx.dir/cost_model.cc.o.d"
  "/root/repo/src/vmx/ept.cc" "src/vmx/CMakeFiles/aquila_vmx.dir/ept.cc.o" "gcc" "src/vmx/CMakeFiles/aquila_vmx.dir/ept.cc.o.d"
  "/root/repo/src/vmx/hypervisor.cc" "src/vmx/CMakeFiles/aquila_vmx.dir/hypervisor.cc.o" "gcc" "src/vmx/CMakeFiles/aquila_vmx.dir/hypervisor.cc.o.d"
  "/root/repo/src/vmx/ipi.cc" "src/vmx/CMakeFiles/aquila_vmx.dir/ipi.cc.o" "gcc" "src/vmx/CMakeFiles/aquila_vmx.dir/ipi.cc.o.d"
  "/root/repo/src/vmx/vcpu.cc" "src/vmx/CMakeFiles/aquila_vmx.dir/vcpu.cc.o" "gcc" "src/vmx/CMakeFiles/aquila_vmx.dir/vcpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aquila_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
