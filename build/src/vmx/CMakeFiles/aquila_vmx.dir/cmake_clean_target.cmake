file(REMOVE_RECURSE
  "libaquila_vmx.a"
)
