# Empty dependencies file for aquila_vmx.
# This may be replaced when dependencies are built.
