file(REMOVE_RECURSE
  "CMakeFiles/aquila_vmx.dir/cost_model.cc.o"
  "CMakeFiles/aquila_vmx.dir/cost_model.cc.o.d"
  "CMakeFiles/aquila_vmx.dir/ept.cc.o"
  "CMakeFiles/aquila_vmx.dir/ept.cc.o.d"
  "CMakeFiles/aquila_vmx.dir/hypervisor.cc.o"
  "CMakeFiles/aquila_vmx.dir/hypervisor.cc.o.d"
  "CMakeFiles/aquila_vmx.dir/ipi.cc.o"
  "CMakeFiles/aquila_vmx.dir/ipi.cc.o.d"
  "CMakeFiles/aquila_vmx.dir/vcpu.cc.o"
  "CMakeFiles/aquila_vmx.dir/vcpu.cc.o.d"
  "libaquila_vmx.a"
  "libaquila_vmx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_vmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
