# Empty dependencies file for aquila_graph.
# This may be replaced when dependencies are built.
