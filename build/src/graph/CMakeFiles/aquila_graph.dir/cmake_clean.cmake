file(REMOVE_RECURSE
  "CMakeFiles/aquila_graph.dir/bfs.cc.o"
  "CMakeFiles/aquila_graph.dir/bfs.cc.o.d"
  "CMakeFiles/aquila_graph.dir/graph.cc.o"
  "CMakeFiles/aquila_graph.dir/graph.cc.o.d"
  "CMakeFiles/aquila_graph.dir/pagerank.cc.o"
  "CMakeFiles/aquila_graph.dir/pagerank.cc.o.d"
  "CMakeFiles/aquila_graph.dir/rmat.cc.o"
  "CMakeFiles/aquila_graph.dir/rmat.cc.o.d"
  "libaquila_graph.a"
  "libaquila_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
