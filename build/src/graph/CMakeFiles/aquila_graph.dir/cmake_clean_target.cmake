file(REMOVE_RECURSE
  "libaquila_graph.a"
)
