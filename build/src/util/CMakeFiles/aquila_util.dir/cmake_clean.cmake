file(REMOVE_RECURSE
  "CMakeFiles/aquila_util.dir/cpu.cc.o"
  "CMakeFiles/aquila_util.dir/cpu.cc.o.d"
  "CMakeFiles/aquila_util.dir/histogram.cc.o"
  "CMakeFiles/aquila_util.dir/histogram.cc.o.d"
  "CMakeFiles/aquila_util.dir/sim_clock.cc.o"
  "CMakeFiles/aquila_util.dir/sim_clock.cc.o.d"
  "libaquila_util.a"
  "libaquila_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
