# Empty dependencies file for aquila_util.
# This may be replaced when dependencies are built.
