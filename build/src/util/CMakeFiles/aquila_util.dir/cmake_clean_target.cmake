file(REMOVE_RECURSE
  "libaquila_util.a"
)
