# Empty compiler generated dependencies file for aquila_mem.
# This may be replaced when dependencies are built.
