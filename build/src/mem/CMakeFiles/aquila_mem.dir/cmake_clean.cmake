file(REMOVE_RECURSE
  "CMakeFiles/aquila_mem.dir/page_table.cc.o"
  "CMakeFiles/aquila_mem.dir/page_table.cc.o.d"
  "CMakeFiles/aquila_mem.dir/tlb.cc.o"
  "CMakeFiles/aquila_mem.dir/tlb.cc.o.d"
  "libaquila_mem.a"
  "libaquila_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
