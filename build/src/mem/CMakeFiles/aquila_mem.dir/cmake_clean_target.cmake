file(REMOVE_RECURSE
  "libaquila_mem.a"
)
