# Empty dependencies file for aquila_core.
# This may be replaced when dependencies are built.
