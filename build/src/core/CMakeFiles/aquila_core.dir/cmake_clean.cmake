file(REMOVE_RECURSE
  "CMakeFiles/aquila_core.dir/aquila.cc.o"
  "CMakeFiles/aquila_core.dir/aquila.cc.o.d"
  "CMakeFiles/aquila_core.dir/backing.cc.o"
  "CMakeFiles/aquila_core.dir/backing.cc.o.d"
  "CMakeFiles/aquila_core.dir/mmio_region.cc.o"
  "CMakeFiles/aquila_core.dir/mmio_region.cc.o.d"
  "CMakeFiles/aquila_core.dir/trap_driver.cc.o"
  "CMakeFiles/aquila_core.dir/trap_driver.cc.o.d"
  "libaquila_core.a"
  "libaquila_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
