file(REMOVE_RECURSE
  "libaquila_core.a"
)
