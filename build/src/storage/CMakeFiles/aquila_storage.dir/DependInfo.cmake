
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/async_io.cc" "src/storage/CMakeFiles/aquila_storage.dir/async_io.cc.o" "gcc" "src/storage/CMakeFiles/aquila_storage.dir/async_io.cc.o.d"
  "/root/repo/src/storage/block_device.cc" "src/storage/CMakeFiles/aquila_storage.dir/block_device.cc.o" "gcc" "src/storage/CMakeFiles/aquila_storage.dir/block_device.cc.o.d"
  "/root/repo/src/storage/nt_memcpy.cc" "src/storage/CMakeFiles/aquila_storage.dir/nt_memcpy.cc.o" "gcc" "src/storage/CMakeFiles/aquila_storage.dir/nt_memcpy.cc.o.d"
  "/root/repo/src/storage/nvme_device.cc" "src/storage/CMakeFiles/aquila_storage.dir/nvme_device.cc.o" "gcc" "src/storage/CMakeFiles/aquila_storage.dir/nvme_device.cc.o.d"
  "/root/repo/src/storage/pmem_device.cc" "src/storage/CMakeFiles/aquila_storage.dir/pmem_device.cc.o" "gcc" "src/storage/CMakeFiles/aquila_storage.dir/pmem_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aquila_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vmx/CMakeFiles/aquila_vmx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
