# Empty compiler generated dependencies file for aquila_storage.
# This may be replaced when dependencies are built.
