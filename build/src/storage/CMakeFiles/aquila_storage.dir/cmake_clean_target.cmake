file(REMOVE_RECURSE
  "libaquila_storage.a"
)
