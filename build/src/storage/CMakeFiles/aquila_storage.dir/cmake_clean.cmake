file(REMOVE_RECURSE
  "CMakeFiles/aquila_storage.dir/async_io.cc.o"
  "CMakeFiles/aquila_storage.dir/async_io.cc.o.d"
  "CMakeFiles/aquila_storage.dir/block_device.cc.o"
  "CMakeFiles/aquila_storage.dir/block_device.cc.o.d"
  "CMakeFiles/aquila_storage.dir/nt_memcpy.cc.o"
  "CMakeFiles/aquila_storage.dir/nt_memcpy.cc.o.d"
  "CMakeFiles/aquila_storage.dir/nvme_device.cc.o"
  "CMakeFiles/aquila_storage.dir/nvme_device.cc.o.d"
  "CMakeFiles/aquila_storage.dir/pmem_device.cc.o"
  "CMakeFiles/aquila_storage.dir/pmem_device.cc.o.d"
  "libaquila_storage.a"
  "libaquila_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
