file(REMOVE_RECURSE
  "libaquila_vma.a"
)
