file(REMOVE_RECURSE
  "CMakeFiles/aquila_vma.dir/vma_tree.cc.o"
  "CMakeFiles/aquila_vma.dir/vma_tree.cc.o.d"
  "libaquila_vma.a"
  "libaquila_vma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_vma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
