# Empty compiler generated dependencies file for aquila_vma.
# This may be replaced when dependencies are built.
