# Empty dependencies file for aquila_linuxsim.
# This may be replaced when dependencies are built.
