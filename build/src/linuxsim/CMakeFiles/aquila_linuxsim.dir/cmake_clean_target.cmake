file(REMOVE_RECURSE
  "libaquila_linuxsim.a"
)
