file(REMOVE_RECURSE
  "CMakeFiles/aquila_linuxsim.dir/linux_mmap.cc.o"
  "CMakeFiles/aquila_linuxsim.dir/linux_mmap.cc.o.d"
  "libaquila_linuxsim.a"
  "libaquila_linuxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_linuxsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
