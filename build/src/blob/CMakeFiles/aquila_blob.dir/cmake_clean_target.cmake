file(REMOVE_RECURSE
  "libaquila_blob.a"
)
