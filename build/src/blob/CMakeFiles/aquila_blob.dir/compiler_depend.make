# Empty compiler generated dependencies file for aquila_blob.
# This may be replaced when dependencies are built.
