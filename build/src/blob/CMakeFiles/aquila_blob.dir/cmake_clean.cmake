file(REMOVE_RECURSE
  "CMakeFiles/aquila_blob.dir/blob_namespace.cc.o"
  "CMakeFiles/aquila_blob.dir/blob_namespace.cc.o.d"
  "CMakeFiles/aquila_blob.dir/blobstore.cc.o"
  "CMakeFiles/aquila_blob.dir/blobstore.cc.o.d"
  "libaquila_blob.a"
  "libaquila_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aquila_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
