# Empty dependencies file for bench_async_io.
# This may be replaced when dependencies are built.
