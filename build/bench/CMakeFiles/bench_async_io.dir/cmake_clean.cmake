file(REMOVE_RECURSE
  "CMakeFiles/bench_async_io.dir/bench_async_io.cc.o"
  "CMakeFiles/bench_async_io.dir/bench_async_io.cc.o.d"
  "bench_async_io"
  "bench_async_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
