file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ligra.dir/bench_fig6_ligra.cc.o"
  "CMakeFiles/bench_fig6_ligra.dir/bench_fig6_ligra.cc.o.d"
  "bench_fig6_ligra"
  "bench_fig6_ligra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ligra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
