# Empty dependencies file for bench_fig9_kreon.
# This may be replaced when dependencies are built.
