
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_kreon.cc" "bench/CMakeFiles/bench_fig9_kreon.dir/bench_fig9_kreon.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_kreon.dir/bench_fig9_kreon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kvs/CMakeFiles/aquila_kvs.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/aquila_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxsim/CMakeFiles/aquila_linuxsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aquila_core.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/aquila_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/aquila_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aquila_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aquila_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/vma/CMakeFiles/aquila_vma.dir/DependInfo.cmake"
  "/root/repo/build/src/vmx/CMakeFiles/aquila_vmx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aquila_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
