file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_kreon.dir/bench_fig9_kreon.cc.o"
  "CMakeFiles/bench_fig9_kreon.dir/bench_fig9_kreon.cc.o.d"
  "bench_fig9_kreon"
  "bench_fig9_kreon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_kreon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
