# Empty dependencies file for bench_fig5_rocksdb.
# This may be replaced when dependencies are built.
