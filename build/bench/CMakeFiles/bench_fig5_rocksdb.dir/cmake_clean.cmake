file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rocksdb.dir/bench_fig5_rocksdb.cc.o"
  "CMakeFiles/bench_fig5_rocksdb.dir/bench_fig5_rocksdb.cc.o.d"
  "bench_fig5_rocksdb"
  "bench_fig5_rocksdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rocksdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
