# Empty compiler generated dependencies file for bench_fig8_fault.
# This may be replaced when dependencies are built.
