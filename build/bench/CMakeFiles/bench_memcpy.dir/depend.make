# Empty dependencies file for bench_memcpy.
# This may be replaced when dependencies are built.
