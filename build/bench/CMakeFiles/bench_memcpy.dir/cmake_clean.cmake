file(REMOVE_RECURSE
  "CMakeFiles/bench_memcpy.dir/bench_memcpy.cc.o"
  "CMakeFiles/bench_memcpy.dir/bench_memcpy.cc.o.d"
  "bench_memcpy"
  "bench_memcpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memcpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
