file(REMOVE_RECURSE
  "CMakeFiles/linuxsim_test.dir/linuxsim_test.cc.o"
  "CMakeFiles/linuxsim_test.dir/linuxsim_test.cc.o.d"
  "linuxsim_test"
  "linuxsim_test.pdb"
  "linuxsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linuxsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
