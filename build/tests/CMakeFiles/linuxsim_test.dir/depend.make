# Empty dependencies file for linuxsim_test.
# This may be replaced when dependencies are built.
