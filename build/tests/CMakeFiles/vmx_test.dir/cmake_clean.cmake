file(REMOVE_RECURSE
  "CMakeFiles/vmx_test.dir/vmx_test.cc.o"
  "CMakeFiles/vmx_test.dir/vmx_test.cc.o.d"
  "vmx_test"
  "vmx_test.pdb"
  "vmx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
