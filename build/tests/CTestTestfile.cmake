# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/vmx_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/blob_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/vma_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/kvs_test[1]_include.cmake")
include("/root/repo/build/tests/linuxsim_test[1]_include.cmake")
include("/root/repo/build/tests/ycsb_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/trap_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
