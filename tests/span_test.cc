// Tests for src/telemetry/span.h: request-scoped causal tracing.
//
// Covers the RAII span types (root/child linkage, nesting, thread-local
// context save/restore), cross-thread async completion accounting, the
// flight-recorder retention tiers, percentile attribution, the /slow JSON
// shape, and an end-to-end fault-path check that child phases tile each
// sampled request's wall time. The concurrency stress at the bottom is also
// built as span_test_tsan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/aquila.h"
#include "src/core/backing.h"
#include "src/storage/pmem_device.h"
#include "src/telemetry/span.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace {

using telemetry::ChildSpan;
using telemetry::PhaseAttribution;
using telemetry::RequestSpan;
using telemetry::SpanCollector;
using telemetry::SpanContext;
using telemetry::SpanOp;
using telemetry::SpanPhase;
using telemetry::SpanRecord;
using telemetry::SpanTree;

// Every test owns the global collector: sample everything on entry, restore
// the disabled default (and drop all state) on exit.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpanCollector::Options options;
    options.sample_every = 1;
    SpanCollector::Global().Configure(options);
    SpanCollector::Global().Reset();
  }
  void TearDown() override {
    SpanCollector::Global().Configure(SpanCollector::Options{});
    SpanCollector::Global().Reset();
  }

  static const SpanRecord* FindRoot(const SpanTree& tree) {
    for (const SpanRecord& record : tree.spans) {
      if (record.parent_id == 0) {
        return &record;
      }
    }
    return nullptr;
  }
};

TEST_F(SpanTest, RootAndChildrenLinkAndTileWallTime) {
  SimClock clock;
  {
    RequestSpan root(clock, SpanOp::kFaultMajor, 0xabc);
    ASSERT_TRUE(root.active());
    EXPECT_NE(telemetry::CurrentSpanContext().trace_id, 0u);
    {
      ChildSpan lookup(clock, SpanPhase::kCacheLookup);
      clock.Charge(CostCategory::kUserWork, 300);
    }
    {
      ChildSpan device(clock, SpanPhase::kDevice, 42);
      clock.Charge(CostCategory::kDeviceIo, 700);
    }
  }
  // Context restored once the root closes.
  EXPECT_EQ(telemetry::CurrentSpanContext().trace_id, 0u);
  ASSERT_EQ(SpanCollector::Global().finalized(), 1u);

  std::vector<SpanTree> trees = SpanCollector::Global().RetainedTrees();
  ASSERT_EQ(trees.size(), 1u);
  const SpanTree& tree = trees[0];
  EXPECT_EQ(tree.op, SpanOp::kFaultMajor);
  EXPECT_EQ(tree.wall_cycles, 1000u);
  EXPECT_EQ(tree.child_cycles, 1000u);  // the children tile the root exactly
  ASSERT_EQ(tree.spans.size(), 3u);

  const SpanRecord* root = FindRoot(tree);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->span_id, tree.trace_id);  // root span id reuses the trace id
  EXPECT_EQ(root->arg, 0xabcu);
  for (const SpanRecord& record : tree.spans) {
    if (&record == root) {
      continue;
    }
    EXPECT_EQ(record.trace_id, tree.trace_id);
    EXPECT_EQ(record.parent_id, root->span_id);
  }
}

TEST_F(SpanTest, NestedChildrenBecomeGrandchildren) {
  SimClock clock;
  {
    RequestSpan root(clock, SpanOp::kFaultMajor);
    {
      ChildSpan evict(clock, SpanPhase::kEvict);
      {
        ChildSpan writeback(clock, SpanPhase::kWriteback);
        clock.Charge(CostCategory::kDeviceIo, 200);
      }
      clock.Charge(CostCategory::kUserWork, 100);
    }
  }
  std::vector<SpanTree> trees = SpanCollector::Global().RetainedTrees();
  ASSERT_EQ(trees.size(), 1u);
  const SpanTree& tree = trees[0];
  ASSERT_EQ(tree.spans.size(), 3u);
  // Attribution uses DIRECT children only: the 300-cycle evict, not the
  // writeback nested within it (which would double-count).
  EXPECT_EQ(tree.wall_cycles, 300u);
  EXPECT_EQ(tree.child_cycles, 300u);

  const SpanRecord* root = FindRoot(tree);
  const SpanRecord* evict = nullptr;
  const SpanRecord* writeback = nullptr;
  for (const SpanRecord& record : tree.spans) {
    if (record.phase == SpanPhase::kEvict) {
      evict = &record;
    } else if (record.phase == SpanPhase::kWriteback) {
      writeback = &record;
    }
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(evict, nullptr);
  ASSERT_NE(writeback, nullptr);
  EXPECT_EQ(evict->parent_id, root->span_id);
  EXPECT_EQ(writeback->parent_id, evict->span_id);
  EXPECT_EQ(writeback->end_cycles - writeback->start_cycles, 200u);
}

TEST_F(SpanTest, NestedRequestSpanDegradesToChildRecord) {
  SimClock clock;
  {
    RequestSpan fault(clock, SpanOp::kFaultMajor);
    {
      // An msync issued while a sampled fault is open must not start a
      // second trace; it records as a child of the fault.
      RequestSpan msync(clock, SpanOp::kMsync);
      clock.Charge(CostCategory::kUserWork, 50);
    }
  }
  EXPECT_EQ(SpanCollector::Global().finalized(), 1u);
  std::vector<SpanTree> trees = SpanCollector::Global().RetainedTrees();
  ASSERT_EQ(trees.size(), 1u);
  ASSERT_EQ(trees[0].spans.size(), 2u);
  const SpanRecord* root = FindRoot(trees[0]);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->op, SpanOp::kFaultMajor);
  const SpanRecord& inner = trees[0].spans[0];
  EXPECT_EQ(inner.phase, SpanPhase::kMsync);
  EXPECT_EQ(inner.parent_id, root->span_id);
}

TEST_F(SpanTest, AsyncCompletionOnAnotherThreadFinalizesTheTrace) {
  SimClock clock;
  SpanContext submitted;
  {
    RequestSpan root(clock, SpanOp::kFaultMajor);
    ASSERT_TRUE(root.active());
    submitted = telemetry::CurrentSpanContext();
    SpanCollector::Global().NoteAsyncSubmitted(submitted.trace_id);
    clock.Charge(CostCategory::kUserWork, 100);
  }
  // Root closed, but the async child is still in flight: not finalized.
  EXPECT_EQ(SpanCollector::Global().finalized(), 0u);
  EXPECT_TRUE(SpanCollector::Global().RetainedTrees().empty());

  std::thread reaper([&submitted] {
    // The reaping thread has no span context of its own; causality rides
    // the explicit SpanContext captured at submit.
    EXPECT_EQ(telemetry::CurrentSpanContext().trace_id, 0u);
    SpanCollector::Global().CompleteAsync(submitted, SpanPhase::kDevice,
                                          /*start_cycles=*/40, /*end_cycles=*/90,
                                          /*arg=*/4096);
  });
  reaper.join();

  ASSERT_EQ(SpanCollector::Global().finalized(), 1u);
  std::vector<SpanTree> trees = SpanCollector::Global().RetainedTrees();
  ASSERT_EQ(trees.size(), 1u);
  ASSERT_EQ(trees[0].spans.size(), 2u);
  const SpanRecord* root = FindRoot(trees[0]);
  const SpanRecord* device = nullptr;
  for (const SpanRecord& record : trees[0].spans) {
    if (record.phase == SpanPhase::kDevice) {
      device = &record;
    }
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(device, nullptr);
  EXPECT_EQ(device->parent_id, root->span_id);
  EXPECT_EQ(device->end_cycles - device->start_cycles, 50u);
  EXPECT_EQ(device->arg, 4096u);
}

TEST_F(SpanTest, DisabledSamplingMakesSpansFreeNoops) {
  SpanCollector::Global().Configure(SpanCollector::Options{});  // sample_every = 0
  SimClock clock;
  {
    RequestSpan root(clock, SpanOp::kFaultMajor);
    EXPECT_FALSE(root.active());
    EXPECT_EQ(telemetry::CurrentSpanContext().trace_id, 0u);
    ChildSpan child(clock, SpanPhase::kDevice);
    clock.Charge(CostCategory::kUserWork, 100);
  }
  EXPECT_EQ(SpanCollector::Global().finalized(), 0u);
  EXPECT_TRUE(SpanCollector::Global().RetainedTrees().empty());
}

TEST_F(SpanTest, SampleEveryNAdmitsOneInN) {
  SpanCollector::Options options;
  options.sample_every = 4;
  SpanCollector::Global().Configure(options);
  SpanCollector::Global().Reset();  // also rewinds the sampling counter
  SimClock clock;
  int active = 0;
  for (int i = 0; i < 8; i++) {
    RequestSpan root(clock, SpanOp::kFaultMinor);
    clock.Charge(CostCategory::kUserWork, 10);
    active += root.active() ? 1 : 0;
  }
  EXPECT_EQ(active, 2);
  EXPECT_EQ(SpanCollector::Global().finalized(), 2u);
}

TEST_F(SpanTest, MaxActiveDropsNewTraces) {
  SpanCollector::Options options;
  options.sample_every = 1;
  options.max_active = 1;
  SpanCollector::Global().Configure(options);
  SpanCollector& collector = SpanCollector::Global();
  EXPECT_TRUE(collector.BeginTrace(collector.NextId()));
  EXPECT_FALSE(collector.BeginTrace(collector.NextId()));  // over the cap
}

TEST_F(SpanTest, AttributionReportsPercentileCohorts) {
  SpanCollector& collector = SpanCollector::Global();
  // 100 synthetic fault traces, wall = 1000..100000 cycles, each 60% device
  // and 40% fill-copy by construction.
  for (uint64_t i = 1; i <= 100; i++) {
    const uint64_t wall = i * 1000;
    const uint64_t trace_id = collector.NextId();
    ASSERT_TRUE(collector.BeginTrace(trace_id));
    SpanRecord device;
    device.trace_id = trace_id;
    device.span_id = collector.NextId();
    device.parent_id = trace_id;
    device.start_cycles = 0;
    device.end_cycles = wall * 6 / 10;
    device.phase = SpanPhase::kDevice;
    collector.Record(device);
    SpanRecord fill;
    fill.trace_id = trace_id;
    fill.span_id = collector.NextId();
    fill.parent_id = trace_id;
    fill.start_cycles = device.end_cycles;
    fill.end_cycles = wall;
    fill.phase = SpanPhase::kFillCopy;
    collector.Record(fill);
    SpanRecord root;
    root.trace_id = trace_id;
    root.span_id = trace_id;
    root.parent_id = 0;
    root.start_cycles = 0;
    root.end_cycles = wall;
    root.phase = SpanPhase::kFault;
    root.op = SpanOp::kFaultMajor;
    collector.CloseRoot(root);
  }

  PhaseAttribution p50;
  ASSERT_TRUE(collector.Attribution(SpanOp::kFaultMajor, 0.5, &p50));
  PhaseAttribution p99;
  ASSERT_TRUE(collector.Attribution(SpanOp::kFaultMajor, 0.99, &p99));
  EXPECT_GT(p99.wall_cycles, p50.wall_cycles);
  for (const PhaseAttribution* attribution : {&p50, &p99}) {
    EXPECT_NEAR(attribution->coverage, 1.0, 0.01);
    EXPECT_NEAR(attribution->fraction[static_cast<size_t>(SpanPhase::kDevice)], 0.6, 0.01);
    EXPECT_NEAR(attribution->fraction[static_cast<size_t>(SpanPhase::kFillCopy)], 0.4, 0.01);
  }
  // No msync traces were recorded.
  PhaseAttribution none;
  EXPECT_FALSE(collector.Attribution(SpanOp::kMsync, 0.5, &none));

  const std::string text = collector.AttributionText();
  EXPECT_NE(text.find("fault_major"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_NE(text.find("device="), std::string::npos);
}

TEST_F(SpanTest, TopKRetainsTheSlowestTrees) {
  SpanCollector::Options options;
  options.sample_every = 1;
  options.top_k = 4;
  options.baseline_every = 0;  // isolate the top-K tier
  SpanCollector::Global().Configure(options);
  SimClock clock;
  for (uint64_t i = 1; i <= 20; i++) {
    RequestSpan root(clock, SpanOp::kFaultMinor);
    clock.Charge(CostCategory::kUserWork, i * 10);
  }
  std::vector<SpanTree> trees = SpanCollector::Global().RetainedTrees();
  ASSERT_EQ(trees.size(), 4u);
  // RetainedTrees sorts slowest-first; the four slowest requests survive.
  EXPECT_EQ(trees[0].wall_cycles, 200u);
  EXPECT_EQ(trees[3].wall_cycles, 170u);
}

TEST_F(SpanTest, SlowTracesJsonIsWellFormed) {
  SimClock clock;
  {
    RequestSpan root(clock, SpanOp::kFaultMajor);
    ChildSpan device(clock, SpanPhase::kDevice);
    clock.Charge(CostCategory::kDeviceIo, 500);
  }
  const std::string json = SpanCollector::Global().SlowTracesJson();
  EXPECT_EQ(json.rfind("{\"attribution\":{", 0), 0u);
  EXPECT_NE(json.find("\"fault_major\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"slow\":["), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"device\""), std::string::npos);
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); i++) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      depth++;
    } else if (!in_string && (c == '}' || c == ']')) {
      depth--;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// End-to-end: drive the real fault path (including evictions and async
// writebacks) with 1-in-1 sampling and verify every retained request
// decomposes into child phases covering >= 90% of its wall time — the
// contract that makes the attribution trustworthy.
TEST_F(SpanTest, FaultPathChildPhasesTileWallTime) {
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 64ull << 20;
  auto device = std::make_unique<PmemDevice>(dev_options);

  Aquila::Options options;
  options.hypervisor.host_memory_bytes = 256ull << 20;
  options.hypervisor.chunk_size = 1ull << 20;
  options.cache.capacity_pages = 512;  // 2 MB cache: 8 MB of touches must evict
  options.cache.max_pages = 2048;
  options.cache.eviction_batch = 64;
  options.cache.freelist.core_queue_threshold = 64;
  options.cache.freelist.move_batch = 32;
  options.async_writeback = true;
  options.span_sample_every = 1;
  auto runtime = std::make_unique<Aquila>(options);

  constexpr uint64_t kMapBytes = 8ull << 20;
  DeviceBacking backing(device.get(), 0, kMapBytes);
  StatusOr<MemoryMap*> map = runtime->Map(&backing, kMapBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  for (uint64_t page = 0; page < kMapBytes / kPageSize; page++) {
    (*map)->TouchWrite(page * kPageSize);
  }
  ASSERT_TRUE((*map)->Sync(0, kMapBytes).ok());
  ASSERT_TRUE(runtime->Unmap(*map).ok());

  SpanCollector& collector = SpanCollector::Global();
  EXPECT_GT(collector.finalized(), 1000u);  // every fault was sampled

  std::vector<SpanTree> trees = collector.RetainedTrees();
  ASSERT_FALSE(trees.empty());
  bool saw_fault = false;
  bool saw_msync = false;
  for (const SpanTree& tree : trees) {
    saw_fault = saw_fault || tree.op == SpanOp::kFaultMajor;
    saw_msync = saw_msync || tree.op == SpanOp::kMsync;
    if (tree.wall_cycles == 0) {
      continue;
    }
    const double coverage =
        static_cast<double>(tree.child_cycles) / static_cast<double>(tree.wall_cycles);
    EXPECT_GE(coverage, 0.9) << "op=" << SpanOpName(tree.op)
                             << " wall=" << tree.wall_cycles
                             << " children=" << tree.child_cycles;
    EXPECT_LE(coverage, 1.001);  // direct children never exceed the root
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_msync);

  PhaseAttribution p99;
  ASSERT_TRUE(collector.Attribution(SpanOp::kFaultMajor, 0.99, &p99));
  EXPECT_GE(p99.coverage, 0.9);
}

// Concurrent open/close/complete from many threads; run under TSan as
// span_test_tsan. Asserts only invariants that hold under any interleaving.
TEST_F(SpanTest, ConcurrentSpansAreRaceFree) {
  SpanCollector::Options options;
  options.sample_every = 2;
  options.max_active = 64;
  SpanCollector::Global().Configure(options);

  constexpr int kWorkers = 4;
  constexpr int kIters = 400;
  std::mutex pending_mu;
  std::vector<SpanContext> pending;
  std::atomic<bool> done{false};

  // A dedicated reaper completes async children for contexts submitted by
  // every worker — the cross-thread hop the engine performs in production.
  std::thread reaper([&] {
    while (true) {
      SpanContext ctx;
      {
        std::lock_guard<std::mutex> lock(pending_mu);
        if (!pending.empty()) {
          ctx = pending.back();
          pending.pop_back();
        } else if (done.load(std::memory_order_acquire)) {
          return;
        }
      }
      if (ctx.trace_id != 0) {
        SpanCollector::Global().CompleteAsync(ctx, SpanPhase::kDevice, 0, 100, 0);
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; w++) {
    workers.emplace_back([&, w] {
      SimClock clock;
      for (int i = 0; i < kIters; i++) {
        RequestSpan root(clock, w % 2 == 0 ? SpanOp::kFaultMajor : SpanOp::kFaultMinor);
        const SpanContext ctx = telemetry::CurrentSpanContext();
        if (ctx.trace_id != 0 && i % 4 == 0) {
          SpanCollector::Global().NoteAsyncSubmitted(ctx.trace_id);
          std::lock_guard<std::mutex> lock(pending_mu);
          pending.push_back(ctx);
        }
        {
          ChildSpan child(clock, SpanPhase::kCacheLookup);
          clock.Charge(CostCategory::kUserWork, 10 + i % 7);
        }
        if (i % 3 == 0) {
          ChildSpan child(clock, SpanPhase::kDevice);
          clock.Charge(CostCategory::kDeviceIo, 50);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  done.store(true, std::memory_order_release);
  reaper.join();

  // Exercise the readers concurrently-safe paths once everything settled.
  EXPECT_GT(SpanCollector::Global().finalized(), 0u);
  EXPECT_FALSE(SpanCollector::Global().RetainedTrees().empty());
  (void)SpanCollector::Global().SlowTracesJson();
}

}  // namespace
}  // namespace aquila
