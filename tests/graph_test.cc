// Tests for the graph substrate: R-MAT, CSR construction, Ligra edgeMap,
// BFS over DRAM and over mmio-backed heaps.
#include <gtest/gtest.h>

#include <queue>

#include "src/core/aquila.h"
#include "src/graph/bfs.h"
#include "src/graph/pagerank.h"
#include "src/graph/rmat.h"
#include "src/storage/pmem_device.h"

namespace aquila {
namespace {

TEST(RmatTest, GeneratesRequestedEdges) {
  auto edges = GenerateRmat(1024, 10240);
  EXPECT_EQ(edges.size(), 10240u);
  for (const auto& [src, dst] : edges) {
    EXPECT_LT(src, 1024u);
    EXPECT_LT(dst, 1024u);
    EXPECT_NE(src, dst);
  }
}

TEST(RmatTest, SkewedDegreeDistribution) {
  auto edges = GenerateRmat(4096, 40960);
  std::vector<uint64_t> degree(4096, 0);
  for (const auto& [src, dst] : edges) {
    degree[src]++;
  }
  uint64_t max_degree = *std::max_element(degree.begin(), degree.end());
  // R-MAT hubs: far above the average degree of 10.
  EXPECT_GT(max_degree, 100u);
}

TEST(GraphTest, BuildCsrSymmetrizes) {
  std::vector<std::pair<uint64_t, uint64_t>> edges = {{0, 1}, {1, 2}, {0, 2}, {0, 1}};
  Graph g = BuildGraph(4, edges, nullptr);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);  // 3 undirected edges, deduped
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
  // Neighbors of 0 are 1 and 2.
  std::set<uint64_t> n0;
  for (uint64_t e = 0; e < g.Degree(0); e++) {
    n0.insert(g.EdgeTarget(g.EdgeBegin(0) + e));
  }
  EXPECT_EQ(n0, (std::set<uint64_t>{1, 2}));
}

// Reference BFS distances for validation.
std::vector<int64_t> ReferenceDistances(const Graph& g, uint64_t source) {
  std::vector<int64_t> dist(g.num_vertices(), -1);
  std::queue<uint64_t> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    uint64_t u = queue.front();
    queue.pop();
    for (uint64_t e = 0; e < g.Degree(u); e++) {
      uint64_t v = g.EdgeTarget(g.EdgeBegin(u) + e);
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    }
  }
  return dist;
}

// Parent array validity: parents induce exactly the reference distances.
void ValidateBfs(const Graph& g, uint64_t source, const WordArray& parents,
                 const BfsResult& result) {
  std::vector<int64_t> ref = ReferenceDistances(g, source);
  uint64_t reachable = 0;
  for (int64_t d : ref) {
    if (d >= 0) {
      reachable++;
    }
  }
  EXPECT_EQ(result.reached, reachable);
  for (uint64_t v = 0; v < g.num_vertices(); v++) {
    uint64_t parent = parents.Get(v);
    if (ref[v] < 0) {
      EXPECT_EQ(parent, ~0ull) << v;
      continue;
    }
    ASSERT_NE(parent, ~0ull) << v;
    if (v == source) {
      EXPECT_EQ(parent, source);
    } else {
      // Parent must be exactly one level closer.
      EXPECT_EQ(ref[parent] + 1, ref[v]) << v;
    }
  }
}

TEST(BfsTest, CorrectOnRmatDram) {
  auto edges = GenerateRmat(2048, 20480);
  Graph g = BuildGraph(2048, edges, nullptr);
  DramWordArray parents(2048);
  LigraOptions options;
  BfsResult result = Bfs(g, 0, &parents, options);
  EXPECT_GT(result.reached, 1000u);  // giant component
  ValidateBfs(g, 0, parents, result);
}

TEST(BfsTest, MultithreadedMatchesReference) {
  auto edges = GenerateRmat(2048, 20480);
  Graph g = BuildGraph(2048, edges, nullptr);
  DramWordArray parents(2048);
  LigraOptions options;
  options.threads = 4;
  BfsResult result = Bfs(g, 5, &parents, options);
  ValidateBfs(g, 5, parents, result);
}

TEST(BfsTest, LineGraphUsesManyRounds) {
  // Path 0-1-2-...-63: sparse traversal, 63 rounds.
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (uint64_t i = 0; i + 1 < 64; i++) {
    edges.emplace_back(i, i + 1);
  }
  Graph g = BuildGraph(64, edges, nullptr);
  DramWordArray parents(64);
  BfsResult result = Bfs(g, 0, &parents, LigraOptions{});
  EXPECT_EQ(result.reached, 64u);
  EXPECT_EQ(result.rounds, 63);
  EXPECT_EQ(parents.Get(63), 62u);
}

TEST(BfsTest, StarGraphTriggersDensePhase) {
  // Hub 0 connected to all: frontier after round 1 = everything.
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (uint64_t i = 1; i < 512; i++) {
    edges.emplace_back(0, i);
  }
  Graph g = BuildGraph(512, edges, nullptr);
  DramWordArray parents(512);
  LigraOptions options;
  options.dense_divisor = 20;
  BfsResult result = Bfs(g, 1, &parents, options);  // start at a leaf
  EXPECT_EQ(result.reached, 512u);
  EXPECT_EQ(result.rounds, 2);
  ValidateBfs(g, 1, parents, result);
}

class MmioGraphTest : public ::testing::Test {
 protected:
  MmioGraphTest() {
    PmemDevice::Options dev_options;
    dev_options.capacity_bytes = 64ull << 20;
    device_ = std::make_unique<PmemDevice>(dev_options);
    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 128ull << 20;
    options.cache.capacity_pages = 1024;  // 4 MB cache: smaller than the graph
    options.cache.max_pages = 4096;
    options.cache.eviction_batch = 64;
    runtime_ = std::make_unique<Aquila>(options);
    backing_ = std::make_unique<DeviceBacking>(device_.get(), 0, device_->capacity_bytes());
    auto map =
        runtime_->Map(backing_.get(), device_->capacity_bytes(), kProtRead | kProtWrite);
    AQUILA_CHECK(map.ok());
    map_ = *map;
  }

  // Declaration order matters: the runtime's destructor tears down leaked
  // mappings, which writes back through the backing — the backing (and its
  // device) must outlive the runtime.
  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<DeviceBacking> backing_;
  std::unique_ptr<Aquila> runtime_;
  MemoryMap* map_;
};

TEST_F(MmioGraphTest, HeapAllocatesDisjointRanges) {
  MmioHeap heap(map_);
  uint64_t a = heap.Alloc(100);
  uint64_t b = heap.Alloc(100);
  EXPECT_GE(b, a + 100);
  auto arr = heap.AllocArray(64);
  arr->Set(0, 42);
  arr->Set(63, 99);
  EXPECT_EQ(arr->Get(0), 42u);
  EXPECT_EQ(arr->Get(63), 99u);
}

TEST_F(MmioGraphTest, BfsOverMmioMatchesDram) {
  auto edges = GenerateRmat(2048, 20480, RmatOptions{.seed = 77});

  Graph dram_graph = BuildGraph(2048, edges, nullptr);
  DramWordArray dram_parents(2048);
  BfsResult dram_result = Bfs(dram_graph, 0, &dram_parents, LigraOptions{});

  MmioHeap heap(map_);
  Graph mmio_graph = BuildGraph(2048, edges, &heap);
  auto mmio_parents = heap.AllocArray(2048);
  LigraOptions options;
  options.thread_init = [this] { runtime_->EnterThread(); };
  BfsResult mmio_result = Bfs(mmio_graph, 0, mmio_parents.get(), options);

  EXPECT_EQ(mmio_result.reached, dram_result.reached);
  EXPECT_EQ(mmio_result.rounds, dram_result.rounds);
  ValidateBfs(mmio_graph, 0, *mmio_parents, mmio_result);
  // The graph did not fit in the cache: mmio faults happened.
  EXPECT_GT(runtime_->fault_stats().major_faults.load(), 0u);
}

TEST_F(MmioGraphTest, MultithreadedMmioBfs) {
  auto edges = GenerateRmat(1024, 10240, RmatOptions{.seed = 9});
  MmioHeap heap(map_);
  Graph g = BuildGraph(1024, edges, &heap);
  auto parents = heap.AllocArray(1024);
  LigraOptions options;
  options.threads = 4;
  options.thread_init = [this] { runtime_->EnterThread(); };
  BfsResult result = Bfs(g, 3, parents.get(), options);
  ValidateBfs(g, 3, *parents, result);
}

TEST(PageRankTest, SumsToOneAndRanksHubHighest) {
  // Star graph: hub 0. Its rank must dominate; total mass stays ~1.
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  for (uint64_t i = 1; i < 64; i++) {
    edges.emplace_back(0, i);
  }
  Graph g = BuildGraph(64, edges, nullptr);
  DramWordArray ranks(64);
  PageRankResult result = PageRank(g, &ranks, LigraOptions{});
  EXPECT_GT(result.iterations, 1);
  double total = 0;
  for (uint64_t v = 0; v < 64; v++) {
    total += DecodeRank(ranks.Get(v));
  }
  EXPECT_NEAR(total, 1.0, 0.01);
  double hub = DecodeRank(ranks.Get(0));
  for (uint64_t v = 1; v < 64; v++) {
    EXPECT_GT(hub, DecodeRank(ranks.Get(v)));
  }
}

TEST(PageRankTest, ConvergesOnRmat) {
  auto edges = GenerateRmat(1024, 10240);
  Graph g = BuildGraph(1024, edges, nullptr);
  DramWordArray ranks(1024);
  PageRankOptions options;
  options.max_iterations = 50;
  options.tolerance = 1e-4;
  PageRankResult result = PageRank(g, &ranks, LigraOptions{}, options);
  EXPECT_LT(result.iterations, 50);
  EXPECT_LT(result.l1_delta, 1e-4);
}

TEST(ConnectedComponentsTest, CountsComponents) {
  // Two triangles + two isolated vertices = 4 components.
  std::vector<std::pair<uint64_t, uint64_t>> edges = {{0, 1}, {1, 2}, {2, 0},
                                                      {3, 4}, {4, 5}, {5, 3}};
  Graph g = BuildGraph(8, edges, nullptr);
  DramWordArray labels(8);
  EXPECT_EQ(ConnectedComponents(g, &labels, LigraOptions{}), 4u);
  EXPECT_EQ(labels.Get(0), labels.Get(2));
  EXPECT_EQ(labels.Get(3), labels.Get(5));
  EXPECT_NE(labels.Get(0), labels.Get(3));
  EXPECT_EQ(labels.Get(6), 6u);
}

TEST_F(MmioGraphTest, PageRankOverMmioMatchesDram) {
  auto edges = GenerateRmat(1024, 10240, RmatOptions{.seed = 3});
  Graph dram_graph = BuildGraph(1024, edges, nullptr);
  DramWordArray dram_ranks(1024);
  PageRankOptions options;
  options.max_iterations = 8;
  PageRank(dram_graph, &dram_ranks, LigraOptions{}, options);

  MmioHeap heap(map_);
  Graph mmio_graph = BuildGraph(1024, edges, &heap);
  auto mmio_ranks = heap.AllocArray(1024);
  LigraOptions ligra;
  ligra.thread_init = [this] { runtime_->EnterThread(); };
  PageRank(mmio_graph, mmio_ranks.get(), ligra, options);

  for (uint64_t v = 0; v < 1024; v++) {
    ASSERT_EQ(mmio_ranks->Get(v), dram_ranks.Get(v)) << v;
  }
}

TEST_F(MmioGraphTest, ConnectedComponentsOverMmio) {
  auto edges = GenerateRmat(2048, 4096, RmatOptions{.seed = 11});  // sparse: many comps
  MmioHeap heap(map_);
  Graph g = BuildGraph(2048, edges, &heap);
  auto labels = heap.AllocArray(2048);
  LigraOptions ligra;
  ligra.thread_init = [this] { runtime_->EnterThread(); };
  uint64_t components = ConnectedComponents(g, labels.get(), ligra);
  EXPECT_GT(components, 1u);
  // Every label is a component representative labeling itself.
  for (uint64_t v = 0; v < 2048; v++) {
    uint64_t l = labels->Get(v);
    EXPECT_EQ(labels->Get(l), l) << v;
  }
}

}  // namespace
}  // namespace aquila
