// Unit tests for src/storage: NT memcpy, pmem device, NVMe controller and
// queue pairs, host-mediated access costs.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/storage/async_io.h"
#include "src/storage/host_device.h"
#include "src/storage/nt_memcpy.h"
#include "src/storage/nvme_device.h"
#include "src/storage/pmem_device.h"
#include "src/util/bitops.h"

namespace aquila {
namespace {

TEST(NtMemcpyTest, CopiesExactly) {
  alignas(64) uint8_t src[kPageSize], dst[kPageSize];
  for (size_t i = 0; i < kPageSize; i++) {
    src[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  std::memset(dst, 0, sizeof(dst));
  NtMemcpy(dst, src, kPageSize);
  EXPECT_EQ(std::memcmp(dst, src, kPageSize), 0);
}

TEST(NtMemcpyTest, CopyPageFlavors) {
  alignas(64) uint8_t src[kPageSize], dst[kPageSize];
  std::memset(src, 0x5A, sizeof(src));
  std::memset(dst, 0, sizeof(dst));
  CopyPage(dst, src, CopyFlavor::kPlain);
  EXPECT_EQ(std::memcmp(dst, src, kPageSize), 0);
  std::memset(dst, 0, sizeof(dst));
  CopyPage(dst, src, CopyFlavor::kStreaming);
  EXPECT_EQ(std::memcmp(dst, src, kPageSize), 0);
}

class PmemTest : public ::testing::Test {
 protected:
  PmemTest() {
    PmemDevice::Options options;
    options.capacity_bytes = 16ull << 20;
    dev_ = std::make_unique<PmemDevice>(options);
  }
  std::unique_ptr<PmemDevice> dev_;
  Vcpu vcpu_{0};
};

TEST_F(PmemTest, RoundTrip) {
  std::vector<uint8_t> out(kPageSize, 0xCD);
  std::vector<uint8_t> in(kPageSize, 0);
  ASSERT_TRUE(dev_->Write(vcpu_, 8 * kPageSize, std::span<const uint8_t>(out)).ok());
  ASSERT_TRUE(dev_->Read(vcpu_, 8 * kPageSize, std::span(in)).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(dev_->stats().writes.load(), 1u);
  EXPECT_EQ(dev_->stats().reads.load(), 1u);
}

TEST_F(PmemTest, OutOfRangeRejected) {
  std::vector<uint8_t> buf(kPageSize);
  EXPECT_FALSE(dev_->Read(vcpu_, dev_->capacity_bytes(), std::span(buf)).ok());
  EXPECT_FALSE(dev_->Write(vcpu_, dev_->capacity_bytes() - 1, std::span<const uint8_t>(buf)).ok());
}

TEST_F(PmemTest, DaxWindowSeesBlockWrites) {
  std::vector<uint8_t> out(kPageSize, 0x77);
  ASSERT_TRUE(dev_->Write(vcpu_, 0, std::span<const uint8_t>(out)).ok());
  EXPECT_EQ(dev_->dax_base()[100], 0x77);
}

TEST_F(PmemTest, ChargesMemcpyAndDevice) {
  std::vector<uint8_t> buf(kPageSize);
  uint64_t before_io = vcpu_.clock().Breakdown()[CostCategory::kDeviceIo];
  uint64_t before_cp = vcpu_.clock().Breakdown()[CostCategory::kMemcpy];
  ASSERT_TRUE(dev_->Read(vcpu_, 0, std::span(buf)).ok());
  const CostModel& costs = GlobalCostModel();
  EXPECT_GT(vcpu_.clock().Breakdown()[CostCategory::kDeviceIo], before_io);
  // Streaming copy + FPU save/restore (§3.3).
  EXPECT_EQ(vcpu_.clock().Breakdown()[CostCategory::kMemcpy] - before_cp,
            costs.memcpy_4k_nt + costs.fpu_save_restore);
}

TEST_F(PmemTest, PlainFlavorCostsMore) {
  PmemDevice::Options options;
  options.capacity_bytes = 1ull << 20;
  options.copy_flavor = CopyFlavor::kPlain;
  PmemDevice plain(options);
  Vcpu vcpu(1);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(plain.Read(vcpu, 0, std::span(buf)).ok());
  EXPECT_EQ(vcpu.clock().Breakdown()[CostCategory::kMemcpy],
            GlobalCostModel().memcpy_4k_plain);
}

class NvmeTest : public ::testing::Test {
 protected:
  NvmeTest() {
    NvmeController::Options options;
    options.capacity_bytes = 64ull << 20;
    ctrl_ = std::make_unique<NvmeController>(options);
    dev_ = std::make_unique<NvmeDevice>(ctrl_.get());
  }
  std::unique_ptr<NvmeController> ctrl_;
  std::unique_ptr<NvmeDevice> dev_;
  Vcpu vcpu_{0};
};

TEST_F(NvmeTest, SyncRoundTrip) {
  std::vector<uint8_t> out(kPageSize);
  for (size_t i = 0; i < out.size(); i++) {
    out[i] = static_cast<uint8_t>(i);
  }
  std::vector<uint8_t> in(kPageSize, 0);
  ASSERT_TRUE(dev_->Write(vcpu_, 4 * kPageSize, std::span<const uint8_t>(out)).ok());
  ASSERT_TRUE(dev_->Read(vcpu_, 4 * kPageSize, std::span(in)).ok());
  EXPECT_EQ(in, out);
}

TEST_F(NvmeTest, ReadChargesLatency) {
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(dev_->Read(vcpu_, 0, std::span(buf)).ok());
  // A sync 4K read sees at least the media latency.
  EXPECT_GE(vcpu_.clock().Breakdown()[CostCategory::kDeviceIo],
            ctrl_->options().read_latency_cycles);
}

TEST_F(NvmeTest, QueuePairOverlapsBatch) {
  // N sync reads pay N*latency; a batch overlaps the latency.
  Vcpu sync_vcpu(1);
  std::vector<uint8_t> buf(kPageSize);
  constexpr int kN = 16;
  for (int i = 0; i < kN; i++) {
    ASSERT_TRUE(dev_->Read(sync_vcpu, static_cast<uint64_t>(i) * kPageSize, std::span(buf)).ok());
  }

  NvmeController::Options options;
  options.capacity_bytes = 64ull << 20;
  NvmeController ctrl2(options);
  NvmeDevice dev2(&ctrl2);
  Vcpu batch_vcpu(2);
  std::vector<std::vector<uint8_t>> bufs(kN, std::vector<uint8_t>(kPageSize));
  std::vector<uint64_t> offsets(kN);
  std::vector<uint8_t*> ptrs(kN);
  for (int i = 0; i < kN; i++) {
    offsets[i] = static_cast<uint64_t>(i) * kPageSize;
    ptrs[i] = bufs[i].data();
  }
  ASSERT_TRUE(dev2.ReadBatch(batch_vcpu, offsets, ptrs, kPageSize).ok());
  EXPECT_LT(batch_vcpu.clock().Now() * 2, sync_vcpu.clock().Now());
}

TEST_F(NvmeTest, QueueDepthRespected) {
  NvmeQueuePair qp(ctrl_.get(), 4);
  std::vector<uint8_t> buf(kPageSize);
  NvmeCommand cmd{NvmeOpcode::kRead, 0, kPageSize / NvmeController::kLbaSize, buf.data()};
  Vcpu vcpu(3);
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(qp.Submit(vcpu, cmd).ok());
  }
  EXPECT_FALSE(qp.Submit(vcpu, cmd).ok());  // ring full
  ASSERT_TRUE(qp.WaitAll(vcpu).ok());
  EXPECT_EQ(qp.outstanding(), 0u);
  EXPECT_TRUE(qp.Submit(vcpu, cmd).ok());
  ASSERT_TRUE(qp.WaitAll(vcpu).ok());
}

TEST_F(NvmeTest, OutOfRangeCommandRejected) {
  NvmeQueuePair qp(ctrl_.get(), 4);
  std::vector<uint8_t> buf(kPageSize);
  NvmeCommand cmd{NvmeOpcode::kRead, ctrl_->capacity_bytes() / NvmeController::kLbaSize,
                  kPageSize / NvmeController::kLbaSize, buf.data()};
  Vcpu vcpu(4);
  EXPECT_FALSE(qp.Submit(vcpu, cmd).ok());
}

TEST(HostDeviceTest, SyscallPathChargesKernel) {
  PmemDevice::Options options;
  options.capacity_bytes = 1ull << 20;
  options.copy_flavor = CopyFlavor::kPlain;  // kernel cannot use SIMD
  PmemDevice pmem(options);
  HostIoDevice host(&pmem, HostIoDevice::EntryPath::kSyscall);
  Vcpu vcpu(5);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(host.Read(vcpu, 0, std::span(buf)).ok());
  EXPECT_EQ(vcpu.counters().syscalls, 1u);
  EXPECT_GE(vcpu.clock().Breakdown()[CostCategory::kSyscall],
            GlobalCostModel().syscall_entry_exit + GlobalCostModel().kernel_io_path);
}

TEST(HostDeviceTest, VmcallPathMoreExpensiveThanSyscall) {
  PmemDevice::Options options;
  options.capacity_bytes = 1ull << 20;
  PmemDevice pmem(options);
  HostIoDevice via_syscall(&pmem, HostIoDevice::EntryPath::kSyscall);
  HostIoDevice via_vmcall(&pmem, HostIoDevice::EntryPath::kVmcall);
  Vcpu a(6), b(7);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(via_syscall.Read(a, 0, std::span(buf)).ok());
  ASSERT_TRUE(via_vmcall.Read(b, 0, std::span(buf)).ok());
  // §3.3: a vmcall is even more expensive than a system call.
  EXPECT_GT(b.clock().Now(), a.clock().Now());
  EXPECT_EQ(b.counters().vmcalls, 1u);
}

// A minimal sector-granular device (keeps the base-class 512-byte
// io_alignment contract) for validating the public-wrapper checks.
class SectorDevice : public BlockDevice {
 public:
  explicit SectorDevice(uint64_t capacity) : data_(capacity, 0) {}
  const char* name() const override { return "sector"; }
  uint64_t capacity_bytes() const override { return data_.size(); }

 protected:
  Status DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) override {
    std::memcpy(dst.data(), data_.data() + offset, dst.size());
    return Status::Ok();
  }
  Status DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) override {
    std::memcpy(data_.data() + offset, src.data(), src.size());
    return Status::Ok();
  }

 private:
  std::vector<uint8_t> data_;
};

TEST(BlockDeviceValidationTest, MisalignedRequestsRejected) {
  SectorDevice dev(1 << 20);
  Vcpu vcpu(10);
  std::vector<uint8_t> buf(512);
  EXPECT_EQ(dev.io_alignment(), 512u);
  // Misaligned offset and misaligned size both fail up front with
  // kInvalidArgument — no retries, no device I/O.
  EXPECT_EQ(dev.Read(vcpu, 13, std::span(buf)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dev.Write(vcpu, 512, std::span<const uint8_t>(buf).first(100)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dev.stats().reads.load(), 0u);
  EXPECT_EQ(dev.stats().io_errors.load(), 0u);
  // Out of range is kInvalidArgument too, not a device error.
  EXPECT_EQ(dev.Read(vcpu, dev.capacity_bytes(), std::span(buf)).code(),
            StatusCode::kInvalidArgument);
  // Aligned requests pass.
  EXPECT_TRUE(dev.Write(vcpu, 1024, std::span<const uint8_t>(buf)).ok());
  EXPECT_TRUE(dev.Read(vcpu, 1024, std::span(buf)).ok());
}

TEST(BlockDeviceValidationTest, ByteAddressableDevicesAcceptUnaligned) {
  PmemDevice::Options options;
  options.capacity_bytes = 1ull << 20;
  PmemDevice pmem(options);
  EXPECT_EQ(pmem.io_alignment(), 1u);
  Vcpu vcpu(11);
  std::vector<uint8_t> buf(100, 0x3C);
  EXPECT_TRUE(pmem.Write(vcpu, 13, std::span<const uint8_t>(buf)).ok());
  std::vector<uint8_t> in(100);
  EXPECT_TRUE(pmem.Read(vcpu, 13, std::span(in)).ok());
  EXPECT_EQ(in, buf);
}

class AsyncIoTest : public ::testing::Test {
 protected:
  AsyncIoTest() {
    NvmeController::Options options;
    options.capacity_bytes = 64ull << 20;
    ctrl_ = std::make_unique<NvmeController>(options);
    dev_ = std::make_unique<NvmeDevice>(ctrl_.get());
  }
  std::unique_ptr<NvmeController> ctrl_;
  std::unique_ptr<NvmeDevice> dev_;
  Vcpu vcpu_{0};
};

TEST_F(AsyncIoTest, BatchRoundTrip) {
  AsyncIoRing ring(*dev_, AsyncIoRing::Options{});
  std::vector<std::vector<uint8_t>> out(8, std::vector<uint8_t>(kPageSize));
  for (int i = 0; i < 8; i++) {
    std::fill(out[i].begin(), out[i].end(), static_cast<uint8_t>(i + 1));
    ASSERT_TRUE(ring.PrepareWrite(static_cast<uint64_t>(i) * kPageSize,
                                  std::span<const uint8_t>(out[i]), 100 + i).ok());
  }
  EXPECT_EQ(ring.prepared(), 8u);
  uint64_t syscalls = vcpu_.counters().syscalls;
  StatusOr<uint32_t> submitted = ring.Submit(vcpu_);
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(*submitted, 8u);
  EXPECT_EQ(vcpu_.counters().syscalls, syscalls + 1);  // ONE syscall per batch
  std::vector<AsyncIoRing::Completion> completions;
  ASSERT_TRUE(ring.WaitFor(vcpu_, 8, &completions).ok());
  ASSERT_EQ(completions.size(), 8u);
  EXPECT_EQ(ring.in_flight(), 0u);

  // Read back asynchronously and verify data.
  std::vector<std::vector<uint8_t>> in(8, std::vector<uint8_t>(kPageSize));
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(ring.PrepareRead(static_cast<uint64_t>(i) * kPageSize, std::span(in[i]),
                                 200 + i).ok());
  }
  ASSERT_TRUE(ring.Submit(vcpu_).ok());
  completions.clear();
  ASSERT_TRUE(ring.WaitFor(vcpu_, 8, &completions).ok());
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(in[i], out[i]) << i;
  }
}

TEST_F(AsyncIoTest, HarvestNeedsNoSyscall) {
  AsyncIoRing ring(*dev_, AsyncIoRing::Options{});
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(ring.PrepareRead(0, std::span(buf), 1).ok());
  ASSERT_TRUE(ring.Submit(vcpu_).ok());
  uint64_t syscalls = vcpu_.counters().syscalls;
  std::vector<AsyncIoRing::Completion> completions;
  ASSERT_TRUE(ring.WaitFor(vcpu_, 1, &completions).ok());
  EXPECT_EQ(vcpu_.counters().syscalls, syscalls);  // completion path: zero syscalls
}

TEST_F(AsyncIoTest, BatchOverlapsDeviceLatency) {
  // 16 reads in one batch must finish far sooner than 16 sync reads.
  AsyncIoRing ring(*dev_, AsyncIoRing::Options{});
  Vcpu batch_vcpu(8);
  std::vector<std::vector<uint8_t>> bufs(16, std::vector<uint8_t>(kPageSize));
  for (int i = 0; i < 16; i++) {
    ASSERT_TRUE(ring.PrepareRead(static_cast<uint64_t>(i) * kPageSize, std::span(bufs[i]),
                                 i).ok());
  }
  ASSERT_TRUE(ring.Submit(batch_vcpu).ok());
  std::vector<AsyncIoRing::Completion> completions;
  ASSERT_TRUE(ring.WaitFor(batch_vcpu, 16, &completions).ok());

  NvmeController::Options options;
  options.capacity_bytes = 64ull << 20;
  NvmeController ctrl2(options);
  NvmeDevice sync_dev(&ctrl2);
  Vcpu sync_vcpu(9);
  std::vector<uint8_t> buf(kPageSize);
  for (int i = 0; i < 16; i++) {
    ASSERT_TRUE(sync_dev.Read(sync_vcpu, static_cast<uint64_t>(i) * kPageSize,
                              std::span(buf)).ok());
  }
  EXPECT_LT(batch_vcpu.clock().Now() * 2, sync_vcpu.clock().Now());
}

TEST_F(AsyncIoTest, RejectsNonQueueingDevice) {
  // A pmem medium is byte-addressable: there is no command queue to overlap,
  // so an io_uring facade over it would fabricate latency hiding. The ring
  // must reject it up front with kUnimplemented.
  PmemDevice::Options options;
  options.capacity_bytes = 1ull << 20;
  PmemDevice pmem(options);
  ASSERT_FALSE(pmem.supports_queueing());
  AsyncIoRing ring(pmem, AsyncIoRing::Options{});
  std::vector<uint8_t> buf(kPageSize);
  Status prep = ring.PrepareRead(0, std::span(buf), 0);
  EXPECT_EQ(prep.code(), StatusCode::kUnimplemented);
  StatusOr<uint32_t> submitted = ring.Submit(vcpu_);
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kUnimplemented);
}

class DeviceQueueTest : public ::testing::Test {
 protected:
  DeviceQueueTest() {
    NvmeController::Options options;
    options.capacity_bytes = 64ull << 20;
    ctrl_ = std::make_unique<NvmeController>(options);
    nvme_ = std::make_unique<NvmeDevice>(ctrl_.get());
    PmemDevice::Options pmem_options;
    pmem_options.capacity_bytes = 16ull << 20;
    pmem_ = std::make_unique<PmemDevice>(pmem_options);
  }
  std::unique_ptr<NvmeController> ctrl_;
  std::unique_ptr<NvmeDevice> nvme_;
  std::unique_ptr<PmemDevice> pmem_;
  Vcpu vcpu_{0};
};

TEST_F(DeviceQueueTest, CapabilityMatchesMedium) {
  EXPECT_TRUE(nvme_->supports_queueing());
  EXPECT_FALSE(pmem_->supports_queueing());
  // Every device answers CreateQueue; the fallback is the sync shim.
  auto native = nvme_->CreateQueue(8);
  auto shim = pmem_->CreateQueue(8);
  EXPECT_STRNE(native->name(), "sync-shim");
  EXPECT_STREQ(shim->name(), "sync-shim");
}

TEST_F(DeviceQueueTest, SyncShimExecutesAtSubmitAndBuffersCompletion) {
  auto queue = pmem_->CreateQueue(4);
  std::vector<uint8_t> out(kPageSize, 0x7E);
  ASSERT_TRUE(queue->SubmitWrite(vcpu_, 0, std::span<const uint8_t>(out), 42).ok());
  // Data moved at submit: a synchronous read sees it before any reap.
  std::vector<uint8_t> in(kPageSize);
  ASSERT_TRUE(pmem_->Read(vcpu_, 0, std::span(in)).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(queue->in_flight(), 1u);
  EXPECT_EQ(queue->NextReadyAt(), 0u);  // buffered: already ready
  std::vector<DeviceQueue::Completion> completions;
  EXPECT_EQ(queue->Poll(vcpu_, &completions), 1u);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].user_data, 42u);
  EXPECT_TRUE(completions[0].status.ok());
  // No overlap to report: the shim completes at its submit timestamp.
  EXPECT_EQ(completions[0].submit_at, completions[0].ready_at);
  EXPECT_EQ(queue->in_flight(), 0u);
}

TEST_F(DeviceQueueTest, NvmeQueueOverlapsCommands) {
  // qd-16 writes through the queue must beat 16 synchronous writes: the
  // media latency overlaps, the sync path serializes it.
  constexpr int kN = 16;
  auto queue = nvme_->CreateQueue(kN);
  std::vector<uint8_t> buf(kPageSize, 0x11);
  Vcpu queued_vcpu(1);
  for (int i = 0; i < kN; i++) {
    ASSERT_TRUE(queue->SubmitWrite(queued_vcpu, static_cast<uint64_t>(i) * kPageSize,
                                   std::span<const uint8_t>(buf), i).ok());
  }
  std::vector<DeviceQueue::Completion> completions;
  ASSERT_TRUE(queue->Drain(queued_vcpu, &completions).ok());
  ASSERT_EQ(completions.size(), static_cast<size_t>(kN));
  for (const auto& c : completions) {
    EXPECT_TRUE(c.status.ok());
    EXPECT_GT(c.ready_at, c.submit_at);  // the medium took real (simulated) time
  }

  NvmeController::Options options;
  options.capacity_bytes = 64ull << 20;
  NvmeController ctrl2(options);
  NvmeDevice sync_dev(&ctrl2);
  Vcpu sync_vcpu(2);
  for (int i = 0; i < kN; i++) {
    ASSERT_TRUE(sync_dev.Write(sync_vcpu, static_cast<uint64_t>(i) * kPageSize,
                               std::span<const uint8_t>(buf)).ok());
  }
  EXPECT_LT(queued_vcpu.clock().Now() * 2, sync_vcpu.clock().Now());
}

TEST_F(DeviceQueueTest, FullQueueReturnsOutOfSpace) {
  auto queue = nvme_->CreateQueue(2);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(queue->SubmitRead(vcpu_, 0, std::span(buf), 0).ok());
  ASSERT_TRUE(queue->SubmitRead(vcpu_, kPageSize, std::span(buf), 1).ok());
  Status full = queue->SubmitRead(vcpu_, 2 * kPageSize, std::span(buf), 2);
  EXPECT_EQ(full.code(), StatusCode::kOutOfSpace);
  std::vector<DeviceQueue::Completion> completions;
  ASSERT_TRUE(queue->Drain(vcpu_, &completions).ok());
  EXPECT_EQ(completions.size(), 2u);
  EXPECT_TRUE(queue->SubmitRead(vcpu_, 2 * kPageSize, std::span(buf), 2).ok());
  ASSERT_TRUE(queue->Drain(vcpu_, &completions).ok());
}

TEST_F(DeviceQueueTest, MisalignedAndOutOfRangeRejectedAtSubmit) {
  auto queue = nvme_->CreateQueue(4);
  std::vector<uint8_t> buf(kPageSize);
  EXPECT_EQ(queue->SubmitRead(vcpu_, 13, std::span(buf), 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(queue->SubmitRead(vcpu_, ctrl_->capacity_bytes(), std::span(buf), 0).ok());
  EXPECT_EQ(queue->in_flight(), 0u);
}

TEST_F(AsyncIoTest, RejectsBadRequests) {
  AsyncIoRing ring(*dev_, AsyncIoRing::Options{.queue_depth = 2});
  std::vector<uint8_t> buf(kPageSize);
  EXPECT_FALSE(ring.PrepareRead(13, std::span(buf), 0).ok());  // unaligned
  EXPECT_FALSE(ring.PrepareRead(ctrl_->capacity_bytes(), std::span(buf), 0).ok());
  ASSERT_TRUE(ring.PrepareRead(0, std::span(buf), 0).ok());
  ASSERT_TRUE(ring.PrepareRead(kPageSize, std::span(buf), 1).ok());
  EXPECT_FALSE(ring.PrepareRead(2 * kPageSize, std::span(buf), 2).ok());  // full
  std::vector<AsyncIoRing::Completion> completions;
  EXPECT_FALSE(ring.WaitFor(vcpu_, 5, &completions).ok());  // more than in flight
}

}  // namespace
}  // namespace aquila
