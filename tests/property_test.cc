// Property-based / parameterized sweeps over the core invariants:
//   * histogram percentiles bracket true order statistics across scales;
//   * zipfian/uniform/latest generators stay in range and hit their skew;
//   * the lock-free hash behaves like a reference map under random op
//     sequences at several capacities;
//   * RB-tree invariants survive arbitrary insert/remove interleavings;
//   * the freelist conserves frames for every (threshold, batch) shape;
//   * SerializedResource conserves service time and never completes a
//     request before arrival + service;
//   * Aquila preserves read-your-writes under every (cache size, eviction
//     batch, readahead, write ratio) combination swept;
//   * SST round-trips arbitrary key/value shapes.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/cache/freelist.h"
#include "src/cache/lockfree_hash.h"
#include "src/cache/rbtree.h"
#include "src/core/aquila.h"
#include "src/kvs/sst.h"
#include "src/storage/pmem_device.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"

namespace aquila {
namespace {

// --- Histogram -------------------------------------------------------------------

class HistogramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramPropertyTest, PercentilesBracketTrueQuantiles) {
  uint64_t scale = GetParam();
  Histogram h;
  std::vector<uint64_t> values;
  Rng rng(scale);
  for (int i = 0; i < 5000; i++) {
    uint64_t v = rng.Uniform(scale) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    uint64_t truth = values[static_cast<size_t>(q * (values.size() - 1))];
    uint64_t est = h.Percentile(q);
    // Log-bucketing: <= 12.5% relative error plus one bucket of slack.
    EXPECT_LE(est, truth + truth / 7 + 2) << "q=" << q << " scale=" << scale;
    EXPECT_GE(est + est / 7 + 2, truth) << "q=" << q << " scale=" << scale;
  }
  EXPECT_EQ(h.Percentile(1.0), h.Max());
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramPropertyTest,
                         ::testing::Values(16, 1000, 65536, 10000000, 3000000000ull));

// --- Request distributions ----------------------------------------------------------

class DistributionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistributionTest, ZipfianInRangeAndSkewed) {
  uint64_t n = GetParam();
  ZipfianGenerator zipf(n);
  std::map<uint64_t, uint64_t> counts;
  for (int i = 0; i < 20000; i++) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // Rank 0 must be the clear leader.
  uint64_t max_count = 0;
  for (auto& [v, c] : counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_EQ(counts[0], max_count);
  EXPECT_GT(counts[0], 20000u / 20);  // >= 5% on item 0 for theta=.99
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistributionTest,
                         ::testing::Values(10, 1000, 100000, 10000000));

// --- Lock-free hash vs reference map -----------------------------------------------

class HashModelTest : public ::testing::TestWithParam<int> {};

TEST_P(HashModelTest, MatchesReferenceUnderRandomOps) {
  int capacity_log2 = GetParam();
  LockFreeHash hash(1ull << capacity_log2);
  std::map<uint64_t, uint64_t> model;
  Rng rng(capacity_log2 * 7 + 1);
  uint64_t key_space = (1ull << capacity_log2) / 4;  // stay under load 0.5
  for (int i = 0; i < 20000; i++) {
    uint64_t key = rng.Uniform(key_space) + 1;
    switch (rng.Uniform(3)) {
      case 0: {
        bool inserted = hash.Insert(key, i);
        EXPECT_EQ(inserted, model.count(key) == 0) << key;
        if (inserted) {
          model[key] = i;
        }
        break;
      }
      case 1: {
        bool removed = hash.Remove(key);
        EXPECT_EQ(removed, model.erase(key) == 1) << key;
        break;
      }
      default: {
        uint64_t value;
        bool found = hash.Lookup(key, &value);
        auto it = model.find(key);
        ASSERT_EQ(found, it != model.end()) << key;
        if (found) {
          EXPECT_EQ(value, it->second);
        }
      }
    }
    ASSERT_EQ(hash.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, HashModelTest, ::testing::Values(6, 10, 14));

// --- RB-tree fuzz -------------------------------------------------------------------

struct FuzzNode {
  RbNode node;
  uint64_t key;
};

struct FuzzKeyOf {
  uint64_t operator()(const RbNode* n) const {
    return reinterpret_cast<const FuzzNode*>(reinterpret_cast<const char*>(n) -
                                             offsetof(FuzzNode, node))
        ->key;
  }
};

class RbTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbTreeFuzzTest, InvariantsUnderInterleavedOps) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  RbTree<FuzzKeyOf> tree;
  std::vector<FuzzNode> pool(400);
  std::vector<size_t> linked;
  std::multiset<uint64_t> model;
  for (int step = 0; step < 4000; step++) {
    if ((linked.size() < pool.size() && rng.OneIn(2)) || linked.empty()) {
      // Insert a free node.
      size_t idx;
      do {
        idx = rng.Uniform(pool.size());
      } while (pool[idx].node.linked);
      pool[idx].key = rng.Uniform(500);
      tree.Insert(&pool[idx].node);
      model.insert(pool[idx].key);
      linked.push_back(idx);
    } else {
      size_t pick = rng.Uniform(linked.size());
      size_t idx = linked[pick];
      tree.Remove(&pool[idx].node);
      model.erase(model.find(pool[idx].key));
      linked.erase(linked.begin() + pick);
    }
    if (step % 200 == 0) {
      ASSERT_GE(tree.Validate(), 1) << "step " << step;
      ASSERT_EQ(tree.size(), model.size());
    }
  }
  // Final in-order traversal equals the model.
  std::multiset<uint64_t> seen;
  for (RbNode* n = tree.First(); n != nullptr; n = RbTree<FuzzKeyOf>::Next(n)) {
    seen.insert(FuzzKeyOf()(n));
  }
  EXPECT_EQ(seen, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeFuzzTest, ::testing::Values(1, 7, 42, 1234, 99999));

// --- Freelist conservation -----------------------------------------------------------

struct FreelistShape {
  uint32_t threshold;
  uint32_t batch;
  int numa_nodes;
};

class FreelistShapeTest : public ::testing::TestWithParam<FreelistShape> {};

TEST_P(FreelistShapeTest, ConservesFramesUnderChurn) {
  FreelistShape shape = GetParam();
  TwoLevelFreelist::Options options;
  options.core_queue_threshold = shape.threshold;
  options.move_batch = shape.batch;
  options.numa_nodes = shape.numa_nodes;
  constexpr uint32_t kFrames = 2048;
  TwoLevelFreelist freelist(kFrames, options);
  freelist.AddFrames(0, kFrames);

  Rng rng(shape.threshold * 31 + shape.batch);
  std::vector<FrameId> held;
  std::vector<bool> owned(kFrames, false);
  for (int i = 0; i < 50000; i++) {
    int core = static_cast<int>(rng.Uniform(8));
    if (rng.OneIn(2) && held.size() < kFrames) {
      FrameId f = freelist.Alloc(core);
      if (f != kInvalidFrame) {
        ASSERT_LT(f, kFrames);
        ASSERT_FALSE(owned[f]) << "frame " << f << " double-allocated";
        owned[f] = true;
        held.push_back(f);
      }
    } else if (!held.empty()) {
      size_t pick = rng.Uniform(held.size());
      FrameId f = held[pick];
      held.erase(held.begin() + pick);
      owned[f] = false;
      freelist.Free(core, f);
    }
  }
  while (!held.empty()) {
    freelist.Free(0, held.back());
    held.pop_back();
  }
  EXPECT_EQ(freelist.ApproxFree(), kFrames);
  // Everything is allocatable again. Core queues are private to their core
  // (the paper's design), so the drain must visit every core.
  int reclaimed = 0;
  for (int core = 0; core < 8; core++) {
    while (freelist.Alloc(core) != kInvalidFrame) {
      reclaimed++;
    }
  }
  EXPECT_EQ(reclaimed, static_cast<int>(kFrames));
}

INSTANTIATE_TEST_SUITE_P(Shapes, FreelistShapeTest,
                         ::testing::Values(FreelistShape{1, 1, 1}, FreelistShape{16, 8, 2},
                                           FreelistShape{512, 256, 2},
                                           FreelistShape{64, 64, 4}));

// --- SerializedResource conservation ---------------------------------------------------

class ResourceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResourceTest, NeverCompletesEarlyAndConservesService) {
  uint64_t service = GetParam();
  SerializedResource resource;
  Rng rng(service);
  uint64_t arrival = 0;
  uint64_t total = 0;
  for (int i = 0; i < 2000; i++) {
    arrival += rng.Uniform(3 * service + 1);
    uint64_t done = resource.Reserve(arrival, service);
    EXPECT_GE(done, arrival + service);
    total += service;
  }
  EXPECT_EQ(resource.TotalServiceCycles(), total);
  EXPECT_EQ(resource.Acquisitions(), 2000u);
}

INSTANTIATE_TEST_SUITE_P(ServiceTimes, ResourceTest,
                         ::testing::Values(1, 250, 900, 16384, 100000));

// --- Aquila read-your-writes sweep ------------------------------------------------------

struct AquilaShape {
  uint64_t cache_pages;
  uint32_t eviction_batch;
  uint32_t readahead;
  int write_percent;
};

class AquilaSweepTest : public ::testing::TestWithParam<AquilaShape> {};

TEST_P(AquilaSweepTest, ReadYourWritesUnderEviction) {
  AquilaShape shape = GetParam();
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 16ull << 20;
  PmemDevice device(dev_options);

  Aquila::Options options;
  options.cache.capacity_pages = shape.cache_pages;
  options.cache.max_pages = shape.cache_pages * 2;
  options.cache.eviction_batch = shape.eviction_batch;
  options.readahead_pages = shape.readahead;
  Aquila runtime(options);

  DeviceBacking backing(&device, 0, device.capacity_bytes());
  StatusOr<MemoryMap*> map =
      runtime.Map(&backing, device.capacity_bytes(), kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  if (shape.readahead > 0) {
    ASSERT_TRUE((*map)->Advise(0, device.capacity_bytes(), Advice::kSequential).ok());
  }

  std::map<uint64_t, uint64_t> model;
  Rng rng(shape.cache_pages + shape.write_percent);
  uint64_t slots = device.capacity_bytes() / 64;
  for (int i = 0; i < 20000; i++) {
    uint64_t offset = rng.Uniform(slots) * 64;
    if (static_cast<int>(rng.Uniform(100)) < shape.write_percent) {
      uint64_t value = rng.Next();
      (*map)->StoreValue<uint64_t>(offset, value);
      model[offset] = value;
    } else {
      uint64_t got = (*map)->LoadValue<uint64_t>(offset);
      auto it = model.find(offset);
      uint64_t expect = it == model.end() ? 0 : it->second;
      ASSERT_EQ(got, expect) << "offset " << offset << " at op " << i;
    }
  }
  // msync then verify the device itself.
  ASSERT_TRUE((*map)->Sync(0, device.capacity_bytes()).ok());
  for (const auto& [offset, value] : model) {
    uint64_t on_device;
    std::memcpy(&on_device, device.dax_base() + offset, 8);
    ASSERT_EQ(on_device, value) << offset;
  }
  ASSERT_TRUE(runtime.Unmap(*map).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AquilaSweepTest,
    ::testing::Values(AquilaShape{64, 16, 0, 30},     // tiny cache, constant eviction
                      AquilaShape{512, 64, 0, 50},    // medium cache, write-heavy
                      AquilaShape{512, 512, 8, 10},   // big batches + readahead
                      AquilaShape{4096, 64, 0, 30},   // everything fits
                      AquilaShape{64, 8, 4, 70}));    // thrash + readahead + writes

// --- SST round-trip shapes ---------------------------------------------------------------

struct SstShape {
  int entries;
  int key_len;
  int value_len;
  uint64_t block_size;
};

class SstShapeTest : public ::testing::TestWithParam<SstShape> {};

TEST_P(SstShapeTest, RoundTripsAllEntries) {
  SstShape shape = GetParam();
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 128ull << 20;
  PmemDevice device(dev_options);
  auto store = Blobstore::Format(ThisVcpu(), &device, Blobstore::Options{});
  ASSERT_TRUE(store.ok());
  BlobNamespace ns(store->get());
  KvsEnv::Options env_options;
  env_options.store = store->get();
  env_options.ns = &ns;
  KvsEnv env(env_options);

  auto file = env.NewWritableFile("/shape.sst");
  ASSERT_TRUE(file.ok());
  SstOptions sst_options;
  sst_options.block_size = shape.block_size;
  SstBuilder builder(file->get(), sst_options);
  Rng rng(shape.entries);
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < shape.entries; i++) {
    char key[64];
    std::snprintf(key, sizeof(key), "%0*d", shape.key_len, i);
    std::string value(shape.value_len, static_cast<char>('a' + (i % 26)));
    entries.emplace_back(key, value);
    builder.Add(Slice(key), i, ValueType::kValue, value);
  }
  ASSERT_TRUE(builder.Finish().ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto raf = env.NewRandomAccessFile("/shape.sst");
  ASSERT_TRUE(raf.ok());
  auto reader = SstReader::Open(std::move(*raf), nullptr, 1);
  ASSERT_TRUE(reader.ok());
  for (const auto& [key, expect] : entries) {
    std::string value;
    bool found, deleted;
    ASSERT_TRUE((*reader)->Get(Slice(key), &value, &found, &deleted).ok());
    ASSERT_TRUE(found) << key;
    EXPECT_EQ(value, expect);
  }
  // Full iteration sees exactly the inserted set, in order.
  SstReader::Iterator it(reader->get());
  size_t count = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    ASSERT_LT(count, entries.size());
    EXPECT_EQ(it.key().ToString(), entries[count].first);
    count++;
  }
  EXPECT_EQ(count, entries.size());
}

INSTANTIATE_TEST_SUITE_P(Shapes, SstShapeTest,
                         ::testing::Values(SstShape{1, 8, 8, 4096},          // singleton
                                           SstShape{500, 8, 1024, 4096},     // 1 KB values
                                           SstShape{2000, 30, 100, 4096},    // YCSB keys
                                           SstShape{300, 8, 9000, 4096},     // value > block
                                           SstShape{1000, 16, 64, 512}));    // tiny blocks

}  // namespace
}  // namespace aquila
