// Unit tests for src/mem: software page table and per-core TLBs with
// batched shootdown.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/mem/page_table.h"
#include "src/mem/tlb.h"
#include "src/util/bitops.h"

namespace aquila {
namespace {

TEST(PageTableTest, InstallLookupRemove) {
  PageTable pt;
  uint64_t vaddr = 0x500000001000ull;
  EXPECT_EQ(pt.Lookup(vaddr), 0u);
  EXPECT_TRUE(pt.Install(vaddr, 42ull << kPageShift, Pte::kAccessed));
  uint64_t pte = pt.Lookup(vaddr);
  EXPECT_TRUE(Pte::Present(pte));
  EXPECT_FALSE(Pte::Writable(pte));
  EXPECT_EQ(Pte::Gpa(pte) >> kPageShift, 42u);
  EXPECT_EQ(pt.present_count(), 1u);

  // Double install fails.
  EXPECT_FALSE(pt.Install(vaddr, 43ull << kPageShift, 0));

  uint64_t old = pt.Remove(vaddr);
  EXPECT_TRUE(Pte::Present(old));
  EXPECT_EQ(pt.Lookup(vaddr), 0u);
  EXPECT_EQ(pt.present_count(), 0u);
  // Removing twice is harmless.
  EXPECT_EQ(pt.Remove(vaddr), 0u);
}

TEST(PageTableTest, DistinguishesNearbyPages) {
  PageTable pt;
  uint64_t base = 0x500000000000ull;
  for (uint64_t i = 0; i < 1024; i++) {
    ASSERT_TRUE(pt.Install(base + i * kPageSize, i << kPageShift, 0));
  }
  for (uint64_t i = 0; i < 1024; i++) {
    EXPECT_EQ(Pte::Gpa(pt.Lookup(base + i * kPageSize)) >> kPageShift, i);
  }
}

TEST(PageTableTest, SparseAddresses) {
  PageTable pt;
  // Spread across distinct top-level entries.
  std::vector<uint64_t> addrs = {0x0000001000ull, 0x7f0000002000ull, 0x003400005000ull,
                                 0x100000000000ull};
  for (size_t i = 0; i < addrs.size(); i++) {
    ASSERT_TRUE(pt.Install(addrs[i], (i + 1) << kPageShift, Pte::kWritable));
  }
  for (size_t i = 0; i < addrs.size(); i++) {
    uint64_t pte = pt.Lookup(addrs[i]);
    EXPECT_TRUE(Pte::Writable(pte));
    EXPECT_EQ(Pte::Gpa(pte) >> kPageShift, i + 1);
  }
}

TEST(PageTableTest, AtomicFlagUpdates) {
  PageTable pt;
  uint64_t vaddr = 0x600000000000ull;
  ASSERT_TRUE(pt.Install(vaddr, 7ull << kPageShift, Pte::kAccessed));
  pt.Walk(vaddr)->fetch_or(Pte::kWritable | Pte::kDirty, std::memory_order_acq_rel);
  uint64_t pte = pt.Lookup(vaddr);
  EXPECT_TRUE(Pte::Writable(pte));
  EXPECT_TRUE(Pte::Dirty(pte));
  pt.Walk(vaddr)->fetch_and(~Pte::kWritable, std::memory_order_acq_rel);
  EXPECT_FALSE(Pte::Writable(pt.Lookup(vaddr)));
  EXPECT_EQ(Pte::Gpa(pt.Lookup(vaddr)) >> kPageShift, 7u);
}

TEST(PageTableTest, ConcurrentInstallDisjointPages) {
  PageTable pt;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&pt, t] {
      uint64_t base = 0x500000000000ull + static_cast<uint64_t>(t) * kPerThread * kPageSize;
      for (uint64_t i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(pt.Install(base + i * kPageSize, (t * kPerThread + i) << kPageShift, 0));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(pt.present_count(), kThreads * kPerThread);
}

TEST(PageTableTest, ConcurrentInstallSamePageOneWinner) {
  for (int round = 0; round < 20; round++) {
    PageTable pt;
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
      threads.emplace_back([&pt, &winners, t] {
        if (pt.Install(0x700000000000ull, static_cast<uint64_t>(t + 1) << kPageShift, 0)) {
          winners.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    EXPECT_EQ(winners.load(), 1);
  }
}

TEST(TlbTest, InsertLookupInvalidate) {
  TlbSet tlb;
  EXPECT_FALSE(tlb.Lookup(0, 100).hit);
  tlb.Insert(0, 100, /*writable=*/false);
  auto r = tlb.Lookup(0, 100);
  EXPECT_TRUE(r.hit);
  EXPECT_FALSE(r.writable);
  tlb.Insert(0, 100, /*writable=*/true);
  EXPECT_TRUE(tlb.Lookup(0, 100).writable);
  // Other cores have their own TLB.
  EXPECT_FALSE(tlb.Lookup(1, 100).hit);
  tlb.InvalidatePage(0, 100);
  EXPECT_FALSE(tlb.Lookup(0, 100).hit);
}

TEST(TlbTest, DirectMappedConflict) {
  TlbSet tlb;
  tlb.Insert(0, 5, false);
  tlb.Insert(0, 5 + TlbSet::kEntries, false);  // same slot
  EXPECT_FALSE(tlb.Lookup(0, 5).hit);
  EXPECT_TRUE(tlb.Lookup(0, 5 + TlbSet::kEntries).hit);
}

TEST(TlbTest, ShootdownInvalidatesAllCores) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  SimClock clock;
  for (int core = 0; core < 4; core++) {
    tlb.Insert(core, 7, true);
    tlb.Insert(core, 9, true);
  }
  std::vector<uint64_t> vpns = {7, 9};
  tlb.Shootdown(clock, /*initiator=*/0, /*active_cores=*/4, vpns, fabric);
  for (int core = 0; core < 4; core++) {
    EXPECT_FALSE(tlb.Lookup(core, 7).hit) << core;
    EXPECT_FALSE(tlb.Lookup(core, 9).hit) << core;
  }
  // One IPI per remote core, not per page (batching).
  EXPECT_EQ(fabric.TotalSent(), 3u);
  EXPECT_EQ(tlb.shootdowns(), 1u);
  EXPECT_GT(clock.Now(), 0u);
}

TEST(TlbTest, MaskedShootdownSkipsUnmappedCores) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  SimClock clock;
  tlb.Insert(0, 7, true);
  tlb.Insert(2, 7, true);
  tlb.Insert(3, 42, true);  // unrelated page on an unmapped core survives
  std::vector<PageShootdown> pages = {{7, /*cpu_mask=*/0b0101, /*tlb_epoch=*/0}};
  tlb.Shootdown(clock, /*initiator=*/0, /*active_cores=*/4, pages, fabric,
                ShootdownMaskMode::kMask);
  EXPECT_FALSE(tlb.Lookup(0, 7).hit);
  EXPECT_FALSE(tlb.Lookup(2, 7).hit);
  EXPECT_TRUE(tlb.Lookup(3, 42).hit);
  // Only core 2 is a remote target; cores 1 and 3 have no bit in the mask.
  EXPECT_EQ(fabric.TotalSent(), 1u);
  EXPECT_EQ(tlb.ipis_sent(), 1u);
  EXPECT_EQ(tlb.ipis_elided(), 2u);
  EXPECT_EQ(tlb.shootdowns_local(), 0u);
}

TEST(TlbTest, InitiatorOnlyMaskElidesRemotePhase) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  SimClock clock;
  tlb.Insert(0, 7, true);
  std::vector<PageShootdown> pages = {{7, /*cpu_mask=*/0b0001, /*tlb_epoch=*/0}};
  tlb.Shootdown(clock, /*initiator=*/0, /*active_cores=*/4, pages, fabric,
                ShootdownMaskMode::kMask);
  EXPECT_FALSE(tlb.Lookup(0, 7).hit);
  EXPECT_EQ(fabric.TotalSent(), 0u);
  EXPECT_EQ(tlb.ipis_elided(), 3u);
  EXPECT_EQ(tlb.shootdowns_local(), 1u);
  // The initiator still pays its local invalidation.
  EXPECT_GT(clock.Now(), 0u);
}

TEST(TlbTest, GenerationElidesCoresFlushedAfterInsert) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  SimClock clock;
  tlb.Insert(0, 7, true);
  uint64_t insert_epoch = tlb.Insert(1, 7, true);
  // Core 1's whole TLB is flushed after the insert: it cannot hold the
  // translation any more, so kMaskGen skips the IPI even though the mask
  // names it...
  tlb.FlushCore(1);
  EXPECT_GT(tlb.CoreFlushEpoch(1), insert_epoch);
  std::vector<PageShootdown> pages = {{7, /*cpu_mask=*/0b0011, insert_epoch}};
  tlb.Shootdown(clock, /*initiator=*/0, /*active_cores=*/4, pages, fabric,
                ShootdownMaskMode::kMaskGen);
  EXPECT_EQ(fabric.TotalSent(), 0u);
  EXPECT_EQ(tlb.shootdowns_local(), 1u);

  // ...while plain kMask still pays it (the mask alone cannot know).
  TlbSet tlb2;
  PostedIpiFabric fabric2;
  uint64_t epoch2 = tlb2.Insert(1, 7, true);
  tlb2.FlushCore(1);
  std::vector<PageShootdown> pages2 = {{7, /*cpu_mask=*/0b0011, epoch2}};
  tlb2.Shootdown(clock, /*initiator=*/0, /*active_cores=*/4, pages2, fabric2,
                 ShootdownMaskMode::kMask);
  EXPECT_EQ(fabric2.TotalSent(), 1u);
}

TEST(TlbTest, GenerationNeverElidesInsertAfterFlush) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  SimClock clock;
  tlb.FlushCore(1);
  // The insert happens AFTER the flush: flush_epoch == insert_epoch, and the
  // strict > comparison must keep the IPI.
  uint64_t insert_epoch = tlb.Insert(1, 7, true);
  EXPECT_EQ(tlb.CoreFlushEpoch(1), insert_epoch);
  std::vector<PageShootdown> pages = {{7, /*cpu_mask=*/0b0010, insert_epoch}};
  tlb.Shootdown(clock, /*initiator=*/0, /*active_cores=*/4, pages, fabric,
                ShootdownMaskMode::kMaskGen);
  EXPECT_EQ(fabric.TotalSent(), 1u);
  EXPECT_FALSE(tlb.Lookup(1, 7).hit);
}

TEST(TlbTest, EmptyBatchIsFree) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  SimClock clock;
  tlb.Shootdown(clock, 0, 8, std::span<const uint64_t>(), fabric);
  std::vector<PageShootdown> none;
  tlb.Shootdown(clock, 0, 8, none, fabric, ShootdownMaskMode::kMaskGen);
  EXPECT_EQ(tlb.shootdowns(), 0u);
  EXPECT_EQ(fabric.TotalSent(), 0u);
  EXPECT_EQ(clock.Now(), 0u);
}

TEST(TlbTest, ClampedBatchFullFlushesVictims) {
  const CostModel& costs = GlobalCostModel();
  // Enough pages that per-core invalidation cost exceeds one full flush.
  size_t batch = costs.tlb_full_flush / costs.tlb_invalidate_page + 2;
  TlbSet tlb;
  PostedIpiFabric fabric;
  SimClock clock;
  // Unrelated entries: the charged cost is a full flush, so the simulated
  // TLB state must lose them too (cost/behavior match).
  tlb.Insert(0, 100000, true);
  tlb.Insert(1, 100000, true);
  std::vector<PageShootdown> pages;
  for (size_t i = 0; i < batch; i++) {
    pages.push_back({i, /*cpu_mask=*/0b0011, /*tlb_epoch=*/0});
  }
  tlb.Shootdown(clock, /*initiator=*/0, /*active_cores=*/2, pages, fabric,
                ShootdownMaskMode::kMask);
  EXPECT_FALSE(tlb.Lookup(0, 100000).hit);
  EXPECT_FALSE(tlb.Lookup(1, 100000).hit);
  // The victims' flush epochs advanced: later kMaskGen shootdowns of pages
  // inserted before this batch need no IPI to them.
  EXPECT_GT(tlb.CoreFlushEpoch(0), 0u);
  EXPECT_GT(tlb.CoreFlushEpoch(1), 0u);
  EXPECT_EQ(fabric.TotalSent(), 1u);
}

TEST(TlbTest, ActiveCoresClampedToMaxCores) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  SimClock clock;
  std::vector<uint64_t> vpns = {7};
  tlb.Shootdown(clock, 0, CoreRegistry::kMaxCores + 100, vpns, fabric);
  EXPECT_EQ(fabric.TotalSent(), static_cast<uint64_t>(CoreRegistry::kMaxCores - 1));
}

TEST(TlbTest, InsertReturnsCurrentEpochAndFlushAdvancesIt) {
  TlbSet tlb;
  uint64_t e0 = tlb.Insert(0, 7, false);
  EXPECT_EQ(e0, tlb.CurrentEpoch());
  tlb.FlushCore(0);
  tlb.FlushCore(3);
  EXPECT_EQ(tlb.CurrentEpoch(), e0 + 2);
  uint64_t e1 = tlb.Insert(0, 7, false);
  EXPECT_EQ(e1, e0 + 2);
  // Per-core flush marks track where each core last flushed.
  EXPECT_EQ(tlb.CoreFlushEpoch(0), e0 + 1);
  EXPECT_EQ(tlb.CoreFlushEpoch(3), e0 + 2);
  EXPECT_EQ(tlb.CoreFlushEpoch(1), 0u);
}

TEST(TlbTest, BatchedShootdownCheaperThanPerPage) {
  const CostModel& costs = GlobalCostModel();
  PostedIpiFabric fabric;
  TlbSet tlb;
  std::vector<uint64_t> vpns(512);
  for (size_t i = 0; i < vpns.size(); i++) {
    vpns[i] = i;
  }
  SimClock batched;
  tlb.Shootdown(batched, 0, 8, vpns, fabric);

  SimClock per_page;
  TlbSet tlb2;
  PostedIpiFabric fabric2;
  for (uint64_t vpn : vpns) {
    tlb2.Shootdown(per_page, 0, 8, std::span(&vpn, 1), fabric2);
  }
  // 512 pages in one IPI per core vs 512 IPIs per core.
  EXPECT_LT(batched.Now() * 50, per_page.Now());
  EXPECT_EQ(fabric.TotalSent(), 7u);
  EXPECT_EQ(fabric2.TotalSent(), 7u * 512);
  (void)costs;
}

}  // namespace
}  // namespace aquila
