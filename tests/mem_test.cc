// Unit tests for src/mem: software page table and per-core TLBs with
// batched shootdown.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/mem/page_table.h"
#include "src/mem/tlb.h"
#include "src/util/bitops.h"

namespace aquila {
namespace {

TEST(PageTableTest, InstallLookupRemove) {
  PageTable pt;
  uint64_t vaddr = 0x500000001000ull;
  EXPECT_EQ(pt.Lookup(vaddr), 0u);
  EXPECT_TRUE(pt.Install(vaddr, 42ull << kPageShift, Pte::kAccessed));
  uint64_t pte = pt.Lookup(vaddr);
  EXPECT_TRUE(Pte::Present(pte));
  EXPECT_FALSE(Pte::Writable(pte));
  EXPECT_EQ(Pte::Gpa(pte) >> kPageShift, 42u);
  EXPECT_EQ(pt.present_count(), 1u);

  // Double install fails.
  EXPECT_FALSE(pt.Install(vaddr, 43ull << kPageShift, 0));

  uint64_t old = pt.Remove(vaddr);
  EXPECT_TRUE(Pte::Present(old));
  EXPECT_EQ(pt.Lookup(vaddr), 0u);
  EXPECT_EQ(pt.present_count(), 0u);
  // Removing twice is harmless.
  EXPECT_EQ(pt.Remove(vaddr), 0u);
}

TEST(PageTableTest, DistinguishesNearbyPages) {
  PageTable pt;
  uint64_t base = 0x500000000000ull;
  for (uint64_t i = 0; i < 1024; i++) {
    ASSERT_TRUE(pt.Install(base + i * kPageSize, i << kPageShift, 0));
  }
  for (uint64_t i = 0; i < 1024; i++) {
    EXPECT_EQ(Pte::Gpa(pt.Lookup(base + i * kPageSize)) >> kPageShift, i);
  }
}

TEST(PageTableTest, SparseAddresses) {
  PageTable pt;
  // Spread across distinct top-level entries.
  std::vector<uint64_t> addrs = {0x0000001000ull, 0x7f0000002000ull, 0x003400005000ull,
                                 0x100000000000ull};
  for (size_t i = 0; i < addrs.size(); i++) {
    ASSERT_TRUE(pt.Install(addrs[i], (i + 1) << kPageShift, Pte::kWritable));
  }
  for (size_t i = 0; i < addrs.size(); i++) {
    uint64_t pte = pt.Lookup(addrs[i]);
    EXPECT_TRUE(Pte::Writable(pte));
    EXPECT_EQ(Pte::Gpa(pte) >> kPageShift, i + 1);
  }
}

TEST(PageTableTest, AtomicFlagUpdates) {
  PageTable pt;
  uint64_t vaddr = 0x600000000000ull;
  ASSERT_TRUE(pt.Install(vaddr, 7ull << kPageShift, Pte::kAccessed));
  pt.Walk(vaddr)->fetch_or(Pte::kWritable | Pte::kDirty, std::memory_order_acq_rel);
  uint64_t pte = pt.Lookup(vaddr);
  EXPECT_TRUE(Pte::Writable(pte));
  EXPECT_TRUE(Pte::Dirty(pte));
  pt.Walk(vaddr)->fetch_and(~Pte::kWritable, std::memory_order_acq_rel);
  EXPECT_FALSE(Pte::Writable(pt.Lookup(vaddr)));
  EXPECT_EQ(Pte::Gpa(pt.Lookup(vaddr)) >> kPageShift, 7u);
}

TEST(PageTableTest, ConcurrentInstallDisjointPages) {
  PageTable pt;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&pt, t] {
      uint64_t base = 0x500000000000ull + static_cast<uint64_t>(t) * kPerThread * kPageSize;
      for (uint64_t i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(pt.Install(base + i * kPageSize, (t * kPerThread + i) << kPageShift, 0));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(pt.present_count(), kThreads * kPerThread);
}

TEST(PageTableTest, ConcurrentInstallSamePageOneWinner) {
  for (int round = 0; round < 20; round++) {
    PageTable pt;
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
      threads.emplace_back([&pt, &winners, t] {
        if (pt.Install(0x700000000000ull, static_cast<uint64_t>(t + 1) << kPageShift, 0)) {
          winners.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    EXPECT_EQ(winners.load(), 1);
  }
}

TEST(TlbTest, InsertLookupInvalidate) {
  TlbSet tlb;
  EXPECT_FALSE(tlb.Lookup(0, 100).hit);
  tlb.Insert(0, 100, /*writable=*/false);
  auto r = tlb.Lookup(0, 100);
  EXPECT_TRUE(r.hit);
  EXPECT_FALSE(r.writable);
  tlb.Insert(0, 100, /*writable=*/true);
  EXPECT_TRUE(tlb.Lookup(0, 100).writable);
  // Other cores have their own TLB.
  EXPECT_FALSE(tlb.Lookup(1, 100).hit);
  tlb.InvalidatePage(0, 100);
  EXPECT_FALSE(tlb.Lookup(0, 100).hit);
}

TEST(TlbTest, DirectMappedConflict) {
  TlbSet tlb;
  tlb.Insert(0, 5, false);
  tlb.Insert(0, 5 + TlbSet::kEntries, false);  // same slot
  EXPECT_FALSE(tlb.Lookup(0, 5).hit);
  EXPECT_TRUE(tlb.Lookup(0, 5 + TlbSet::kEntries).hit);
}

TEST(TlbTest, ShootdownInvalidatesAllCores) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  SimClock clock;
  for (int core = 0; core < 4; core++) {
    tlb.Insert(core, 7, true);
    tlb.Insert(core, 9, true);
  }
  std::vector<uint64_t> vpns = {7, 9};
  tlb.Shootdown(clock, /*initiator=*/0, /*active_cores=*/4, vpns, fabric);
  for (int core = 0; core < 4; core++) {
    EXPECT_FALSE(tlb.Lookup(core, 7).hit) << core;
    EXPECT_FALSE(tlb.Lookup(core, 9).hit) << core;
  }
  // One IPI per remote core, not per page (batching).
  EXPECT_EQ(fabric.TotalSent(), 3u);
  EXPECT_EQ(tlb.shootdowns(), 1u);
  EXPECT_GT(clock.Now(), 0u);
}

TEST(TlbTest, BatchedShootdownCheaperThanPerPage) {
  const CostModel& costs = GlobalCostModel();
  PostedIpiFabric fabric;
  TlbSet tlb;
  std::vector<uint64_t> vpns(512);
  for (size_t i = 0; i < vpns.size(); i++) {
    vpns[i] = i;
  }
  SimClock batched;
  tlb.Shootdown(batched, 0, 8, vpns, fabric);

  SimClock per_page;
  TlbSet tlb2;
  PostedIpiFabric fabric2;
  for (uint64_t vpn : vpns) {
    tlb2.Shootdown(per_page, 0, 8, std::span(&vpn, 1), fabric2);
  }
  // 512 pages in one IPI per core vs 512 IPIs per core.
  EXPECT_LT(batched.Now() * 50, per_page.Now());
  EXPECT_EQ(fabric.TotalSent(), 7u);
  EXPECT_EQ(fabric2.TotalSent(), 7u * 512);
  (void)costs;
}

}  // namespace
}  // namespace aquila
