// Tests for the Linux-mmap baseline simulator and its kmmap variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/linuxsim/linux_mmap.h"
#include "src/storage/pmem_device.h"

namespace aquila {
namespace {

class LinuxSimTest : public ::testing::Test {
 protected:
  LinuxSimTest() {
    PmemDevice::Options dev_options;
    dev_options.capacity_bytes = 64ull << 20;
    dev_options.copy_flavor = CopyFlavor::kPlain;  // kernel path: no SIMD
    device_ = std::make_unique<PmemDevice>(dev_options);
    backing_ = std::make_unique<DeviceBacking>(device_.get(), 0, 32ull << 20);
    for (uint64_t i = 0; i < (32ull << 20); i += 4096) {
      device_->dax_base()[i] = static_cast<uint8_t>(i >> 12);
    }
  }

  std::unique_ptr<LinuxMmapEngine> MakeEngine(uint64_t cache_pages, bool kmmap = false) {
    if (kmmap) {
      return std::make_unique<LinuxMmapEngine>(LinuxMmapEngine::KmmapOptions(cache_pages));
    }
    LinuxMmapEngine::Options options;
    options.cache_pages = cache_pages;
    return std::make_unique<LinuxMmapEngine>(options);
  }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<DeviceBacking> backing_;
};

TEST_F(LinuxSimTest, FaultChargesRing3Trap) {
  auto engine = MakeEngine(1024);
  auto map = engine->Map(backing_.get(), 1 << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  Vcpu& vcpu = ThisVcpu();
  uint64_t traps = vcpu.counters().ring3_traps;
  EXPECT_TRUE((*map)->TouchRead(0).faulted);
  EXPECT_EQ(vcpu.counters().ring3_traps, traps + 1);
  // Hit afterwards: free, no trap.
  EXPECT_FALSE((*map)->TouchRead(64).faulted);
  EXPECT_EQ(vcpu.counters().ring3_traps, traps + 1);
  ASSERT_TRUE(engine->Unmap(*map).ok());
}

TEST_F(LinuxSimTest, FaultReadAheadIs128K) {
  auto engine = MakeEngine(1024);
  auto map = engine->Map(backing_.get(), 4 << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE((*map)->TouchRead(0).faulted);
  // Linux mapped 32 pages: the next 31 accesses are hits.
  for (uint64_t p = 1; p < 32; p++) {
    EXPECT_FALSE((*map)->TouchRead(p * 4096).faulted) << p;
  }
  EXPECT_TRUE((*map)->TouchRead(32 * 4096).faulted);
  EXPECT_EQ(engine->stats().readahead_pages.load(), 31u * 2);
  ASSERT_TRUE(engine->Unmap(*map).ok());
}

TEST_F(LinuxSimTest, KmmapHasNoReadAhead) {
  auto engine = MakeEngine(1024, /*kmmap=*/true);
  EXPECT_STREQ(engine->name(), "kmmap");
  auto map = engine->Map(backing_.get(), 4 << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE((*map)->TouchRead(0).faulted);
  EXPECT_TRUE((*map)->TouchRead(4096).faulted);  // neighbor missed too
  EXPECT_EQ(engine->stats().readahead_pages.load(), 0u);
  ASSERT_TRUE(engine->Unmap(*map).ok());
}

TEST_F(LinuxSimTest, DirtyMarkingTakesFaultThroughTreeLock) {
  auto engine = MakeEngine(1024);
  auto map = engine->Map(backing_.get(), 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  (*map)->TouchRead(0);  // resident + clean
  Vcpu& vcpu = ThisVcpu();
  uint64_t traps = vcpu.counters().ring3_traps;
  EXPECT_TRUE((*map)->TouchWrite(0).faulted);  // dirty-marking fault
  EXPECT_EQ(vcpu.counters().ring3_traps, traps + 1);
  EXPECT_EQ(engine->stats().dirty_marks.load(), 1u);
  EXPECT_FALSE((*map)->TouchWrite(8).faulted);  // now writable: free
  ASSERT_TRUE(engine->Unmap(*map).ok());
}

TEST_F(LinuxSimTest, MsyncWritesBack) {
  auto engine = MakeEngine(1024);
  auto map = engine->Map(backing_.get(), 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  std::vector<uint8_t> data(4096, 0xED);
  ASSERT_TRUE((*map)->Write(3 * 4096, std::span<const uint8_t>(data)).ok());
  EXPECT_NE(device_->dax_base()[3 * 4096], 0xED);
  ASSERT_TRUE((*map)->Sync(0, 1 << 20).ok());
  EXPECT_EQ(device_->dax_base()[3 * 4096], 0xED);
  ASSERT_TRUE(engine->Unmap(*map).ok());
}

TEST_F(LinuxSimTest, UnmapFlushesDirty) {
  auto engine = MakeEngine(1024);
  auto map = engine->Map(backing_.get(), 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  std::vector<uint8_t> data(4096, 0x3C);
  ASSERT_TRUE((*map)->Write(5 * 4096, std::span<const uint8_t>(data)).ok());
  ASSERT_TRUE(engine->Unmap(*map).ok());
  EXPECT_EQ(device_->dax_base()[5 * 4096], 0x3C);
  EXPECT_EQ(engine->resident_pages(), 0u);
}

TEST_F(LinuxSimTest, CgroupLimitForcesEviction) {
  auto engine = MakeEngine(64);  // 256 KB cache
  auto map = engine->Map(backing_.get(), 8 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  // Touch far more pages than fit.
  for (uint64_t p = 0; p < 512; p++) {
    (*map)->TouchWrite(p * 4096 + 128);
  }
  EXPECT_GT(engine->stats().evicted_pages.load(), 0u);
  EXPECT_LE(engine->resident_pages(), 64u);
  // Dirty evictions were written back: re-read sees the increments.
  std::vector<uint8_t> buf(1);
  ASSERT_TRUE((*map)->Read(128, std::span(buf)).ok());
  EXPECT_EQ(buf[0], 1u);
  ASSERT_TRUE(engine->Unmap(*map).ok());
}

TEST_F(LinuxSimTest, SharedTreeLockSerializesFaults) {
  // Two workers faulting the same file must queue on the same modeled tree
  // lock: their combined simulated fault time exceeds one worker's alone.
  auto engine = MakeEngine(4096);
  auto map = engine->Map(backing_.get(), 32 << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  (*map)->Advise(0, 32 << 20, Advice::kRandom);  // disable readahead

  SimClock solo;
  {
    // Single worker baseline, measured via its own thread.
    std::thread t([&] {
      SimClock& clock = ThisThreadClock();
      uint64_t start = clock.Now();
      for (int i = 0; i < 400; i++) {
        (*map)->TouchRead(static_cast<uint64_t>(i) * 4096);
      }
      solo.Charge(CostCategory::kUserWork, clock.Now() - start);
    });
    t.join();
  }
  // 16 contenders: the per-file tree lock's serialized service alone
  // (16 x 400 x ~900 cycles) exceeds the solo runtime, so the slowest
  // worker must take much longer than solo regardless of interleaving.
  constexpr int kContenders = 16;
  std::vector<uint64_t> durations(kContenders);
  std::vector<std::thread> pool;
  for (int t = 0; t < kContenders; t++) {
    pool.emplace_back([&, t] {
      SimClock& clock = ThisThreadClock();
      uint64_t start = clock.Now();
      for (int i = 0; i < 400; i++) {
        (*map)->TouchRead((800 + static_cast<uint64_t>(t) * 400 + i) * 4096);
      }
      durations[t] = clock.Now() - start;
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  uint64_t max_duration = *std::max_element(durations.begin(), durations.end());
  // Under contention the slowest must take noticeably longer than solo.
  EXPECT_GT(max_duration, solo.Now() * 3 / 2);
  ASSERT_TRUE(engine->Unmap(*map).ok());
}

}  // namespace
}  // namespace aquila
