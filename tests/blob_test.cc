// Unit tests for src/blob: blobstore lifecycle, extents, persistence, and
// the path namespace.
#include <gtest/gtest.h>

#include <cstring>

#include "src/blob/blob_namespace.h"
#include "src/blob/blobstore.h"
#include "src/util/bitops.h"
#include "src/storage/pmem_device.h"

namespace aquila {
namespace {

class BlobstoreTest : public ::testing::Test {
 protected:
  BlobstoreTest() {
    PmemDevice::Options options;
    options.capacity_bytes = 64ull << 20;
    dev_ = std::make_unique<PmemDevice>(options);
    Blobstore::Options bs_options;
    bs_options.cluster_size = 64 * 1024;
    bs_options.metadata_bytes = 1ull << 20;
    auto store = Blobstore::Format(vcpu_, dev_.get(), bs_options);
    AQUILA_CHECK(store.ok());
    store_ = std::move(*store);
  }

  Vcpu vcpu_{0};
  std::unique_ptr<PmemDevice> dev_;
  std::unique_ptr<Blobstore> store_;
};

TEST_F(BlobstoreTest, CreateResizeDelete) {
  StatusOr<BlobId> id = store_->CreateBlob(4);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*store_->BlobClusterCount(*id), 4u);
  uint64_t free_before = store_->free_clusters();
  ASSERT_TRUE(store_->ResizeBlob(*id, 10).ok());
  EXPECT_EQ(*store_->BlobClusterCount(*id), 10u);
  EXPECT_EQ(store_->free_clusters(), free_before - 6);
  ASSERT_TRUE(store_->ResizeBlob(*id, 2).ok());
  EXPECT_EQ(*store_->BlobClusterCount(*id), 2u);
  ASSERT_TRUE(store_->DeleteBlob(*id).ok());
  EXPECT_FALSE(store_->BlobClusterCount(*id).ok());
  EXPECT_EQ(store_->free_clusters(), free_before + 4);
}

TEST_F(BlobstoreTest, DataRoundTrip) {
  StatusOr<BlobId> id = store_->CreateBlob(4);
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> out(100 * 1024);
  for (size_t i = 0; i < out.size(); i++) {
    out[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_TRUE(store_->WriteBlob(vcpu_, *id, 12345, std::span<const uint8_t>(out)).ok());
  std::vector<uint8_t> in(out.size());
  ASSERT_TRUE(store_->ReadBlob(vcpu_, *id, 12345, std::span(in)).ok());
  EXPECT_EQ(in, out);
}

TEST_F(BlobstoreTest, ReadBeyondSizeFails) {
  StatusOr<BlobId> id = store_->CreateBlob(1);
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> buf(kPageSize);
  EXPECT_FALSE(store_->ReadBlob(vcpu_, *id, 64 * 1024, std::span(buf)).ok());
}

TEST_F(BlobstoreTest, TranslateOffsetContiguity) {
  StatusOr<BlobId> id = store_->CreateBlob(4);
  ASSERT_TRUE(id.ok());
  StatusOr<uint64_t> d0 = store_->TranslateOffset(*id, 0);
  StatusOr<uint64_t> d1 = store_->TranslateOffset(*id, 64 * 1024);
  ASSERT_TRUE(d0.ok());
  ASSERT_TRUE(d1.ok());
  // Fresh store: clusters come from one run.
  EXPECT_EQ(*d1, *d0 + 64 * 1024);
  // In-cluster offsets are preserved.
  EXPECT_EQ(*store_->TranslateOffset(*id, 100), *d0 + 100);
}

TEST_F(BlobstoreTest, FragmentationProducesMultipleExtents) {
  // a-b-c, delete b, then create something larger than the hole.
  StatusOr<BlobId> a = store_->CreateBlob(2);
  StatusOr<BlobId> b = store_->CreateBlob(2);
  StatusOr<BlobId> c = store_->CreateBlob(2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  uint64_t free_before = store_->free_clusters();
  ASSERT_TRUE(store_->DeleteBlob(*b).ok());
  StatusOr<BlobId> d = store_->CreateBlob(free_before + 2);
  ASSERT_TRUE(d.ok());
  // All data addressable despite the discontiguity.
  std::vector<uint8_t> out(3 * 64 * 1024, 0xEE);
  ASSERT_TRUE(store_->WriteBlob(vcpu_, *d, 0, std::span<const uint8_t>(out)).ok());
  std::vector<uint8_t> in(out.size());
  ASSERT_TRUE(store_->ReadBlob(vcpu_, *d, 0, std::span(in)).ok());
  EXPECT_EQ(in, out);
}

TEST_F(BlobstoreTest, Xattrs) {
  StatusOr<BlobId> id = store_->CreateBlob(1);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->SetXattr(*id, "name", "sst-000001.sst").ok());
  EXPECT_EQ(*store_->GetXattr(*id, "name"), "sst-000001.sst");
  EXPECT_FALSE(store_->GetXattr(*id, "missing").ok());
  ASSERT_TRUE(store_->SetXattr(*id, "name", "renamed").ok());
  EXPECT_EQ(*store_->GetXattr(*id, "name"), "renamed");
}

TEST_F(BlobstoreTest, PersistsAcrossRemount) {
  StatusOr<BlobId> id = store_->CreateBlob(3);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->SetXattr(*id, "name", "data.bin").ok());
  std::vector<uint8_t> out(64 * 1024, 0x42);
  ASSERT_TRUE(store_->WriteBlob(vcpu_, *id, 0, std::span<const uint8_t>(out)).ok());
  ASSERT_TRUE(store_->Sync(vcpu_).ok());

  // Remount from the same device.
  StatusOr<std::unique_ptr<Blobstore>> reloaded = Blobstore::Load(vcpu_, dev_.get());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*(*reloaded)->BlobClusterCount(*id), 3u);
  EXPECT_EQ(*(*reloaded)->GetXattr(*id, "name"), "data.bin");
  std::vector<uint8_t> in(out.size());
  ASSERT_TRUE((*reloaded)->ReadBlob(vcpu_, *id, 0, std::span(in)).ok());
  EXPECT_EQ(in, out);
  // New blobs do not collide with recovered ids.
  StatusOr<BlobId> fresh = (*reloaded)->CreateBlob(1);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, *id);
}

TEST_F(BlobstoreTest, LoadRejectsUnformattedDevice) {
  PmemDevice::Options options;
  options.capacity_bytes = 1ull << 20;
  PmemDevice blank(options);
  EXPECT_FALSE(Blobstore::Load(vcpu_, &blank).ok());
}

TEST_F(BlobstoreTest, OutOfSpace) {
  uint64_t free = store_->free_clusters();
  EXPECT_FALSE(store_->CreateBlob(free + 1).ok());
  StatusOr<BlobId> id = store_->CreateBlob(free);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store_->free_clusters(), 0u);
  EXPECT_FALSE(store_->CreateBlob(1).ok());
}

TEST_F(BlobstoreTest, NamespaceOpenCreateUnlinkRename) {
  BlobNamespace ns(store_.get());
  StatusOr<BlobId> id = ns.Open("/db/000001.sst", /*create=*/true, 128 * 1024);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*ns.Lookup("/db/000001.sst"), *id);
  EXPECT_EQ(*ns.Open("/db/000001.sst", false), *id);
  EXPECT_FALSE(ns.Open("/db/missing", false).ok());

  ASSERT_TRUE(ns.Rename("/db/000001.sst", "/db/000002.sst").ok());
  EXPECT_FALSE(ns.Lookup("/db/000001.sst").ok());
  EXPECT_EQ(*ns.Lookup("/db/000002.sst"), *id);

  ASSERT_TRUE(ns.Unlink("/db/000002.sst").ok());
  EXPECT_FALSE(ns.Lookup("/db/000002.sst").ok());
  EXPECT_FALSE(store_->BlobClusterCount(*id).ok());  // blob deleted
}

TEST_F(BlobstoreTest, NamespaceRecovery) {
  BlobNamespace ns(store_.get());
  StatusOr<BlobId> id = ns.Open("/wal/000007.log", true, 64 * 1024);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->Sync(vcpu_).ok());

  StatusOr<std::unique_ptr<Blobstore>> reloaded = Blobstore::Load(vcpu_, dev_.get());
  ASSERT_TRUE(reloaded.ok());
  BlobNamespace ns2(reloaded->get());
  ASSERT_TRUE(ns2.Recover().ok());
  EXPECT_EQ(*ns2.Lookup("/wal/000007.log"), *id);
  EXPECT_EQ(ns2.List().size(), 1u);
}

}  // namespace
}  // namespace aquila
