// Unit tests for src/vmx: EPT, hypervisor grants/EPT faults, vCPU transition
// accounting, posted-IPI fabric.
#include <gtest/gtest.h>

#include <cstring>

#include "src/util/bitops.h"
#include "src/vmx/ept.h"
#include "src/vmx/hypervisor.h"
#include "src/vmx/ipi.h"
#include "src/vmx/vcpu.h"

namespace aquila {
namespace {

TEST(EptTest, MapTranslateUnmap) {
  ExtendedPageTable ept;
  ASSERT_TRUE(ept.Map(0x100000, 0x500000, 0x10000, kPageSize).ok());
  uint64_t hpa = 0;
  EXPECT_TRUE(ept.Translate(0x100000, &hpa));
  EXPECT_EQ(hpa, 0x500000u);
  EXPECT_TRUE(ept.Translate(0x100000 + 0x8123, &hpa));
  EXPECT_EQ(hpa, 0x508123u);
  EXPECT_FALSE(ept.Translate(0x100000 + 0x10000, &hpa));
  EXPECT_FALSE(ept.Translate(0x0, &hpa));
  EXPECT_EQ(ept.MappedBytes(), 0x10000u);
  ASSERT_TRUE(ept.Unmap(0x100000, 0x10000).ok());
  EXPECT_FALSE(ept.Translate(0x100000, &hpa));
  EXPECT_EQ(ept.MappedBytes(), 0u);
}

TEST(EptTest, RejectsOverlap) {
  ExtendedPageTable ept;
  ASSERT_TRUE(ept.Map(0x10000, 0, 0x10000, kPageSize).ok());
  EXPECT_FALSE(ept.Map(0x18000, 0, 0x10000, kPageSize).ok());
  EXPECT_FALSE(ept.Map(0x8000, 0, 0x10000, kPageSize).ok());
  EXPECT_TRUE(ept.Map(0x20000, 0, 0x1000, kPageSize).ok());
}

TEST(EptTest, RejectsMisaligned) {
  ExtendedPageTable ept;
  EXPECT_FALSE(ept.Map(0x100, 0, 0x1000, kPageSize).ok());
  EXPECT_FALSE(ept.Map(0x1000, 0, 0x100, kPageSize).ok());
  EXPECT_FALSE(ept.Map(kPageSize, 0, kHugePage2M, kHugePage2M).ok());  // gpa misaligned
}

TEST(EptTest, HugePages) {
  ExtendedPageTable ept;
  ASSERT_TRUE(ept.Map(kHugePage1G, 0, kHugePage1G, kHugePage1G).ok());
  uint64_t hpa = 0;
  EXPECT_TRUE(ept.Translate(kHugePage1G + 12345, &hpa));
  EXPECT_EQ(hpa, 12345u);
  EXPECT_EQ(ept.EntryCount(), 1u);
}

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest() {
    Hypervisor::Options options;
    options.host_memory_bytes = 64ull << 20;
    options.chunk_size = 1ull << 20;
    hv_ = std::make_unique<Hypervisor>(options);
    guest_ = hv_->CreateGuest();
  }

  std::unique_ptr<Hypervisor> hv_;
  int guest_;
};

TEST_F(HypervisorTest, GrantAndLazyBacking) {
  Vcpu vcpu(0);
  StatusOr<uint64_t> gpa = hv_->VmcallGrantGpaRange(vcpu, guest_, 4ull << 20);
  ASSERT_TRUE(gpa.ok());
  EXPECT_EQ(hv_->granted_bytes(guest_), 4ull << 20);
  EXPECT_EQ(hv_->backed_bytes(guest_), 0u);  // lazy
  EXPECT_EQ(vcpu.counters().vmcalls, 1u);

  // First touch raises an EPT fault and installs backing for one chunk.
  uint8_t* p = hv_->ResolveGpa(vcpu, guest_, *gpa + 123);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(vcpu.counters().ept_faults, 1u);
  EXPECT_EQ(hv_->backed_bytes(guest_), 1ull << 20);

  // Same chunk: no further fault.
  uint8_t* q = hv_->ResolveGpa(vcpu, guest_, *gpa + 4096);
  EXPECT_EQ(vcpu.counters().ept_faults, 1u);
  EXPECT_EQ(q, p - 123 + 4096);

  // Data written through one resolution is visible through another.
  std::memset(p, 0xAB, 64);
  EXPECT_EQ(hv_->ResolveGpa(vcpu, guest_, *gpa + 123)[0], 0xAB);
}

TEST_F(HypervisorTest, EptFaultOutsideGrantFails) {
  Vcpu vcpu(0);
  Status status = hv_->HandleEptFault(vcpu, guest_, 0xdeadbeef000ull);
  EXPECT_FALSE(status.ok());
}

TEST_F(HypervisorTest, ReleaseReturnsMemory) {
  Vcpu vcpu(0);
  StatusOr<uint64_t> gpa = hv_->VmcallGrantGpaRange(vcpu, guest_, 2ull << 20);
  ASSERT_TRUE(gpa.ok());
  hv_->ResolveGpa(vcpu, guest_, *gpa);
  hv_->ResolveGpa(vcpu, guest_, *gpa + (1ull << 20));
  uint64_t allocated = hv_->host_allocated_bytes();
  EXPECT_EQ(allocated, 2ull << 20);
  ASSERT_TRUE(hv_->VmcallReleaseGpaRange(vcpu, guest_, *gpa, 2ull << 20).ok());
  EXPECT_EQ(hv_->granted_bytes(guest_), 0u);
  EXPECT_EQ(hv_->host_allocated_bytes(), 0u);
  // Released GPA no longer resolves.
  EXPECT_FALSE(hv_->HandleEptFault(vcpu, guest_, *gpa).ok());
}

TEST_F(HypervisorTest, GrantsAreDisjoint) {
  Vcpu vcpu(0);
  StatusOr<uint64_t> a = hv_->VmcallGrantGpaRange(vcpu, guest_, 1ull << 20);
  StatusOr<uint64_t> b = hv_->VmcallGrantGpaRange(vcpu, guest_, 1ull << 20);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(*b, *a + (1ull << 20));
}

TEST(VcpuTest, TransitionCostsMatchModel) {
  const CostModel& costs = GlobalCostModel();
  Vcpu vcpu(0);
  vcpu.ChargeRing3Trap();
  EXPECT_EQ(vcpu.clock().Now(), costs.ring3_trap);
  uint64_t before = vcpu.clock().Now();
  vcpu.ChargeRing0Exception();
  EXPECT_EQ(vcpu.clock().Now() - before, costs.ring0_exception);
  EXPECT_EQ(vcpu.counters().ring3_traps, 1u);
  EXPECT_EQ(vcpu.counters().ring0_exceptions, 1u);
  // The paper's headline: the ring-0 exception is ~2.33x cheaper.
  EXPECT_LT(costs.ring0_exception * 2, costs.ring3_trap);
}

TEST(IpiFabricTest, SendChargesSenderAndTarget) {
  const CostModel& costs = GlobalCostModel();
  PostedIpiFabric fabric(PostedIpiFabric::SendPath::kVmexitProtected);
  SimClock sender, target;
  CoreRegistry::SetCurrentCoreForTest(0);
  fabric.Send(sender, /*target_core=*/1, /*handler_cycles=*/500);
  EXPECT_EQ(sender.Now(), costs.ipi_send_vmexit);
  EXPECT_EQ(target.Now(), 0u);  // not yet absorbed
  fabric.Absorb(target, 1);
  EXPECT_EQ(target.Now(), costs.ipi_receive + 500);
  fabric.Absorb(target, 1);  // idempotent once drained
  EXPECT_EQ(target.Now(), costs.ipi_receive + 500);
  EXPECT_EQ(fabric.TotalSent(), 1u);
}

TEST(IpiFabricTest, PostedSendIsCheaper) {
  const CostModel& costs = GlobalCostModel();
  PostedIpiFabric fabric(PostedIpiFabric::SendPath::kPosted);
  SimClock sender;
  CoreRegistry::SetCurrentCoreForTest(0);
  fabric.Send(sender, 1, 0);
  EXPECT_EQ(sender.Now(), costs.ipi_send_posted);
}

TEST(IpiFabricTest, RateLimitThrottlesSender) {
  PostedIpiFabric fabric(PostedIpiFabric::SendPath::kVmexitProtected);
  fabric.set_rate_limit_per_ms(10);
  SimClock sender;
  CoreRegistry::SetCurrentCoreForTest(0);
  for (int i = 0; i < 25; i++) {
    fabric.Send(sender, 1, 0);
  }
  EXPECT_GE(fabric.TotalThrottled(), 1u);
  // Throttled sends pushed the clock past at least one full window.
  EXPECT_GT(sender.Now(), GlobalCostModel().cycles_per_us * 1000);
}

}  // namespace
}  // namespace aquila
