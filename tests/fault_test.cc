// Fault injection and recovery: the FaultInjectingDevice schedule, the
// BlockDevice retry policy, mmio degraded mode, linuxsim msync error
// propagation, and crash consistency of the WAL / SST / blobstore /
// Kreon on-device formats (power-cut, torn-tail, and bit-flip scenarios).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/blob/blob_namespace.h"
#include "src/blob/blobstore.h"
#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/kvs/coding.h"
#include "src/kvs/env.h"
#include "src/kvs/kreon_db.h"
#include "src/kvs/lsm_db.h"
#include "src/kvs/sst.h"
#include "src/linuxsim/linux_mmap.h"
#include "src/storage/fault_device.h"
#include "src/storage/nvme_device.h"
#include "src/storage/pmem_device.h"
#include "src/util/crc32c.h"

namespace aquila {
namespace {

std::unique_ptr<PmemDevice> MakePmem(uint64_t bytes) {
  PmemDevice::Options options;
  options.capacity_bytes = bytes;
  return std::make_unique<PmemDevice>(options);
}

// --- Fault schedule -------------------------------------------------------------

TEST(FaultDeviceTest, NthOpTriggerFailsExactlyOnce) {
  auto pmem = MakePmem(16ull << 20);
  FaultInjectingDevice::Options fopts;
  fopts.fail_writes = {1};
  FaultInjectingDevice dev(pmem.get(), fopts);
  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize, 0x42);
  // Attempt 1 fails, the retry (attempt 2) succeeds: the caller never sees
  // the transient error, only the counters do.
  ASSERT_TRUE(dev.Write(vcpu, 0, std::span<const uint8_t>(buf)).ok());
  EXPECT_EQ(dev.fault_stats().injected_write_errors.load(), 1u);
  EXPECT_EQ(dev.stats().io_errors.load(), 1u);
  EXPECT_EQ(dev.stats().io_retries.load(), 1u);
  EXPECT_EQ(dev.stats().io_gave_up.load(), 0u);
  // The data still made it through.
  std::vector<uint8_t> in(kPageSize, 0);
  ASSERT_TRUE(dev.Read(vcpu, 0, std::span(in)).ok());
  EXPECT_EQ(in, buf);
}

TEST(FaultDeviceTest, PersistentFailureExhaustsRetryBudget) {
  auto pmem = MakePmem(16ull << 20);
  FaultInjectingDevice::Options fopts;
  fopts.fail_reads = {1, 2, 3};  // every attempt of the first request
  FaultInjectingDevice dev(pmem.get(), fopts);
  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize);
  Status status = dev.Read(vcpu, 0, std::span(buf));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(dev.stats().io_errors.load(), 3u);
  EXPECT_EQ(dev.stats().io_retries.load(), 2u);
  EXPECT_EQ(dev.stats().io_gave_up.load(), 1u);
  // The next request starts a fresh schedule position and succeeds.
  ASSERT_TRUE(dev.Read(vcpu, 0, std::span(buf)).ok());
}

TEST(FaultDeviceTest, RetryBackoffChargesSimulatedTime) {
  auto pmem = MakePmem(16ull << 20);
  FaultInjectingDevice::Options fopts;
  fopts.fail_writes = {1};
  FaultInjectingDevice dev(pmem.get(), fopts);
  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize, 1);
  uint64_t idle_before = vcpu.clock().Breakdown()[CostCategory::kIdle];
  ASSERT_TRUE(dev.Write(vcpu, 0, std::span<const uint8_t>(buf)).ok());
  EXPECT_GE(vcpu.clock().Breakdown()[CostCategory::kIdle] - idle_before,
            dev.retry_policy().initial_backoff_cycles);
}

TEST(FaultDeviceTest, SameSeedSameFaults) {
  auto run = [](uint64_t seed) {
    auto pmem = MakePmem(16ull << 20);
    FaultInjectingDevice::Options fopts;
    fopts.seed = seed;
    fopts.read_error_rate = 0.3;
    FaultInjectingDevice dev(pmem.get(), fopts);
    Vcpu vcpu(0);
    std::vector<uint8_t> buf(kPageSize);
    for (int i = 0; i < 50; i++) {
      (void)dev.Read(vcpu, (static_cast<uint64_t>(i) % 16) * kPageSize, std::span(buf));
    }
    return dev.fault_stats().injected_read_errors.load();
  };
  uint64_t a = run(7);
  EXPECT_EQ(a, run(7));  // reproducible
  EXPECT_GT(a, 0u);      // and actually injecting
}

TEST(FaultDeviceTest, LatencySpikeChargesDeviceTime) {
  auto pmem = MakePmem(16ull << 20);
  FaultInjectingDevice::Options fopts;
  fopts.latency_spike_rate = 1.0;
  fopts.latency_spike_cycles = 5'000'000;
  FaultInjectingDevice dev(pmem.get(), fopts);
  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize);
  uint64_t io_before = vcpu.clock().Breakdown()[CostCategory::kDeviceIo];
  ASSERT_TRUE(dev.Read(vcpu, 0, std::span(buf)).ok());
  EXPECT_GE(vcpu.clock().Breakdown()[CostCategory::kDeviceIo] - io_before,
            fopts.latency_spike_cycles);
  EXPECT_EQ(dev.fault_stats().latency_spikes.load(), 1u);
}

TEST(FaultDeviceTest, QueueLatencySpikeExtendsCompletionNotSubmitter) {
  // On a native device queue the spike is extra media time on the command:
  // it shows up as a later ready_at when the completion reaps, never as CPU
  // time blocking the submitter (that would defeat the async overlap).
  NvmeController::Options copts;
  copts.capacity_bytes = 16ull << 20;
  NvmeController ctrl(copts);
  NvmeDevice nvme(&ctrl);
  FaultInjectingDevice::Options fopts;
  fopts.latency_spike_rate = 1.0;
  fopts.latency_spike_cycles = 5'000'000;
  FaultInjectingDevice dev(&nvme, fopts);
  ASSERT_TRUE(dev.supports_queueing());
  auto queue = dev.CreateQueue(4);
  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize);
  uint64_t before = vcpu.clock().Now();
  ASSERT_TRUE(queue->SubmitRead(vcpu, 0, std::span(buf), 7).ok());
  EXPECT_LT(vcpu.clock().Now() - before, fopts.latency_spike_cycles);
  EXPECT_EQ(dev.fault_stats().latency_spikes.load(), 1u);

  std::vector<DeviceQueue::Completion> done;
  ASSERT_TRUE(queue->WaitMin(vcpu, 1, &done).ok());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].status.ok());
  EXPECT_EQ(done[0].user_data, 7u);
  EXPECT_GE(done[0].ready_at - done[0].submit_at, fopts.latency_spike_cycles);
  // With nothing to overlap, waiting out the spiked command advanced the
  // clock past the extended deadline.
  EXPECT_GE(vcpu.clock().Now() - before, fopts.latency_spike_cycles);
}

TEST(FaultDeviceTest, TornWriteLeavesPrefixOnMedium) {
  auto pmem = MakePmem(16ull << 20);
  FaultInjectingDevice::Options fopts;
  fopts.seed = 99;
  fopts.fail_writes = {1, 2, 3};  // all attempts fail: the tear survives
  fopts.torn_writes = true;
  FaultInjectingDevice dev(pmem.get(), fopts);
  Vcpu vcpu(0);
  std::vector<uint8_t> buf(4 * kPageSize, 0xEE);
  EXPECT_FALSE(dev.Write(vcpu, 0, std::span<const uint8_t>(buf)).ok());
  EXPECT_EQ(dev.fault_stats().injected_write_errors.load(), 3u);
  // The medium holds a (possibly empty) prefix of the request and nothing
  // beyond it: find the first untouched byte, everything after matches it.
  const uint8_t* dax = pmem->dax_base();
  size_t prefix = 0;
  while (prefix < buf.size() && dax[prefix] == 0xEE) {
    prefix++;
  }
  for (size_t i = prefix; i < buf.size(); i++) {
    ASSERT_EQ(dax[i], 0) << i;
  }
}

TEST(FaultDeviceTest, PowerCutDropsUnflushedWrites) {
  auto pmem = MakePmem(16ull << 20);
  FaultInjectingDevice::Options fopts;
  fopts.buffer_unflushed_writes = true;
  FaultInjectingDevice dev(pmem.get(), fopts);
  Vcpu vcpu(0);
  std::vector<uint8_t> a(kPageSize, 0xAA), b(kPageSize, 0xBB);
  ASSERT_TRUE(dev.Write(vcpu, 0, std::span<const uint8_t>(a)).ok());
  ASSERT_TRUE(dev.Flush(vcpu).ok());
  ASSERT_TRUE(dev.Write(vcpu, 4 * kPageSize, std::span<const uint8_t>(b)).ok());
  // Before the cut, reads see the write cache.
  std::vector<uint8_t> in(kPageSize);
  ASSERT_TRUE(dev.Read(vcpu, 4 * kPageSize, std::span(in)).ok());
  EXPECT_EQ(in, b);
  // But the medium does not.
  EXPECT_EQ(pmem->dax_base()[4 * kPageSize], 0);

  dev.PowerCut();
  EXPECT_TRUE(dev.offline());
  EXPECT_FALSE(dev.Read(vcpu, 0, std::span(in)).ok());
  dev.Revive();
  ASSERT_TRUE(dev.Read(vcpu, 0, std::span(in)).ok());
  EXPECT_EQ(in, a);  // flushed data survived
  ASSERT_TRUE(dev.Read(vcpu, 4 * kPageSize, std::span(in)).ok());
  EXPECT_EQ(in, std::vector<uint8_t>(kPageSize, 0));  // unflushed data gone
}

// --- mmio degraded mode ---------------------------------------------------------

class DegradedMmioTest : public ::testing::Test {
 protected:
  DegradedMmioTest() {
    pmem_ = MakePmem(64ull << 20);
    FaultInjectingDevice::Options fopts;
    fopts.write_error_rate = 1.0;  // every write attempt fails
    faults_ = std::make_unique<FaultInjectingDevice>(pmem_.get(), fopts);
    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 256ull << 20;
    options.cache.capacity_pages = 1024;
    options.cache.max_pages = 4096;
    options.cache.eviction_batch = 64;
    runtime_ = std::make_unique<Aquila>(options);
    backing_ = std::make_unique<DeviceBacking>(faults_.get(), 0, 16ull << 20);
  }

  std::unique_ptr<PmemDevice> pmem_;
  std::unique_ptr<FaultInjectingDevice> faults_;
  std::unique_ptr<DeviceBacking> backing_;
  std::unique_ptr<Aquila> runtime_;
};

TEST_F(DegradedMmioTest, MsyncReportsErrorThenMapDegradesReadOnly) {
  StatusOr<MemoryMap*> map = runtime_->Map(backing_.get(), 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* aq_map = static_cast<AquilaMap*>(*map);
  std::vector<uint8_t> buf(kPageSize, 0x5A);
  ASSERT_TRUE((*map)->Write(0, std::span<const uint8_t>(buf)).ok());

  // Msync fails (no abort), the page stays dirty, and each failure counts
  // toward the degradation limit.
  uint32_t limit = runtime_->options().writeback_failure_limit;
  for (uint32_t i = 0; i < limit; i++) {
    EXPECT_FALSE(aq_map->degraded());
    Status status = (*map)->Sync(0, kPageSize);
    EXPECT_EQ(status.code(), StatusCode::kIoError) << i;
    EXPECT_EQ(runtime_->cache().TotalDirty(), 1u) << i;
  }
  EXPECT_TRUE(aq_map->degraded());
  EXPECT_GE(runtime_->fault_stats().writeback_errors.load(), limit);
  EXPECT_GT(faults_->fault_stats().injected_write_errors.load(), 0u);
  EXPECT_GT(faults_->stats().io_retries.load(), 0u);

  // Degraded: writes are refused, reads still served from cache/device.
  EXPECT_EQ((*map)->Write(0, std::span<const uint8_t>(buf)).code(), StatusCode::kIoError);
  std::vector<uint8_t> in(kPageSize);
  ASSERT_TRUE((*map)->Read(0, std::span(in)).ok());
  EXPECT_EQ(in, buf);  // the dirty page is still resident and readable

  // Unmap surfaces the writeback failure as a Status, not a crash.
  EXPECT_FALSE(runtime_->Unmap(*map).ok());
}

TEST_F(DegradedMmioTest, RearmWritebackRecoversDegradedMappingAfterHeal) {
  StatusOr<MemoryMap*> map = runtime_->Map(backing_.get(), 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* aq_map = static_cast<AquilaMap*>(*map);
  std::vector<uint8_t> buf(kPageSize, 0x7C);
  ASSERT_TRUE((*map)->Write(0, std::span<const uint8_t>(buf)).ok());
  for (uint32_t i = 0; i < runtime_->options().writeback_failure_limit; i++) {
    EXPECT_FALSE((*map)->Sync(0, kPageSize).ok());
  }
  ASSERT_TRUE(aq_map->degraded());
  EXPECT_EQ((*map)->Write(0, std::span<const uint8_t>(buf)).code(), StatusCode::kIoError);

  // Device heals; one rearm restores write service and msync durability.
  faults_->set_write_error_rate(0.0);
  ASSERT_TRUE(aq_map->RearmWriteback().ok());
  EXPECT_FALSE(aq_map->degraded());
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  EXPECT_EQ(runtime_->cache().TotalDirty(), 0u);
  std::vector<uint8_t> fresh(kPageSize, 0x7D);
  ASSERT_TRUE((*map)->Write(0, std::span<const uint8_t>(fresh)).ok());
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  // The failure streak restarted from zero: the healed data is on-device.
  std::vector<uint8_t> in(kPageSize);
  ASSERT_TRUE((*map)->Read(0, std::span(in)).ok());
  EXPECT_EQ(in, fresh);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(DegradedMmioTest, WritebackSuccessResetsFailureStreak) {
  StatusOr<MemoryMap*> map = runtime_->Map(backing_.get(), 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* aq_map = static_cast<AquilaMap*>(*map);
  std::vector<uint8_t> buf(kPageSize, 0x11);
  ASSERT_TRUE((*map)->Write(0, std::span<const uint8_t>(buf)).ok());
  EXPECT_FALSE((*map)->Sync(0, kPageSize).ok());
  EXPECT_FALSE((*map)->Sync(0, kPageSize).ok());
  // The device recovers before the limit is reached.
  faults_->set_write_error_rate(0.0);
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  EXPECT_FALSE(aq_map->degraded());
  // A fresh failure streak must start from zero again.
  ASSERT_TRUE((*map)->Write(0, std::span<const uint8_t>(buf)).ok());
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// --- async writeback failure handling -------------------------------------------

// Same degradation ladder as DegradedMmioTest, but the failures arrive as
// DeviceQueue completions instead of synchronous WritePages errors. Runs in
// both capability modes: the sync-emulation shim (fault device over pmem,
// supports_queueing() == false) and the native NVMe queue with injection at
// the FaultInjectingQueue layer.
class AsyncDegradedMmioTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    const bool use_nvme = GetParam();
    BlockDevice* inner;
    if (use_nvme) {
      NvmeController::Options copts;
      copts.capacity_bytes = 64ull << 20;
      ctrl_ = std::make_unique<NvmeController>(copts);
      nvme_ = std::make_unique<NvmeDevice>(ctrl_.get());
      inner = nvme_.get();
    } else {
      pmem_ = MakePmem(64ull << 20);
      inner = pmem_.get();
    }
    FaultInjectingDevice::Options fopts;
    fopts.write_error_rate = 1.0;
    faults_ = std::make_unique<FaultInjectingDevice>(inner, fopts);
    ASSERT_EQ(faults_->supports_queueing(), use_nvme);

    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 256ull << 20;
    options.cache.capacity_pages = 1024;
    options.cache.max_pages = 4096;
    options.cache.eviction_batch = 64;
    options.async_writeback = true;
    options.async_queue_depth = 8;
    runtime_ = std::make_unique<Aquila>(options);
    backing_ = std::make_unique<DeviceBacking>(faults_.get(), 0, 16ull << 20);
  }

  // Reaps until the failed writeback's completion restores the page dirty.
  void ReapUntilRestored() {
    Vcpu& vcpu = ThisVcpu();
    for (int i = 0; i < 1000 && runtime_->cache().TotalDirty() == 0; i++) {
      runtime_->HarvestAsyncWritebacks(vcpu, HarvestMode::kWaitOne);
    }
    ASSERT_EQ(runtime_->cache().TotalDirty(), 1u);
  }

  std::unique_ptr<PmemDevice> pmem_;
  std::unique_ptr<NvmeController> ctrl_;
  std::unique_ptr<NvmeDevice> nvme_;
  std::unique_ptr<FaultInjectingDevice> faults_;
  std::unique_ptr<DeviceBacking> backing_;
  std::unique_ptr<Aquila> runtime_;
};

TEST_P(AsyncDegradedMmioTest, CompletionErrorsRestoreDirtyAndDegrade) {
  StatusOr<MemoryMap*> map = runtime_->Map(backing_.get(), 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* aq_map = static_cast<AquilaMap*>(*map);
  std::vector<uint8_t> buf(kPageSize, 0x5A);
  ASSERT_TRUE((*map)->Write(0, std::span<const uint8_t>(buf)).ok());

  uint32_t limit = runtime_->options().writeback_failure_limit;
  for (uint32_t i = 0; i < limit; i++) {
    EXPECT_FALSE(aq_map->degraded()) << i;
    // Submission succeeds — the I/O error travels in the completion.
    ASSERT_TRUE((*map)->Advise(0, kPageSize, Advice::kDontNeed).ok()) << i;
    ReapUntilRestored();
  }
  EXPECT_TRUE(aq_map->degraded());
  EXPECT_GE(runtime_->fault_stats().writeback_errors.load(), limit);
  EXPECT_GT(faults_->fault_stats().injected_write_errors.load(), 0u);

  // Degraded parity with the sync pipeline: writes refused, reads served.
  EXPECT_EQ((*map)->Write(0, std::span<const uint8_t>(buf)).code(), StatusCode::kIoError);
  std::vector<uint8_t> in(kPageSize);
  ASSERT_TRUE((*map)->Read(0, std::span(in)).ok());
  EXPECT_EQ(in, buf);

  // Unmap surfaces the final (synchronous) writeback failure as a Status.
  EXPECT_FALSE(runtime_->Unmap(*map).ok());
}

TEST_P(AsyncDegradedMmioTest, CompletionSuccessResetsFailureStreak) {
  StatusOr<MemoryMap*> map = runtime_->Map(backing_.get(), 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* aq_map = static_cast<AquilaMap*>(*map);
  std::vector<uint8_t> buf(kPageSize, 0x11);
  ASSERT_TRUE((*map)->Write(0, std::span<const uint8_t>(buf)).ok());
  ASSERT_TRUE((*map)->Advise(0, kPageSize, Advice::kDontNeed).ok());
  ReapUntilRestored();
  ASSERT_TRUE((*map)->Advise(0, kPageSize, Advice::kDontNeed).ok());
  ReapUntilRestored();

  // The device recovers before the limit: the next completion succeeds,
  // resets the streak, and actually releases the page.
  faults_->set_write_error_rate(0.0);
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  EXPECT_FALSE(aq_map->degraded());
  EXPECT_EQ(runtime_->cache().TotalDirty(), 0u);
  ASSERT_TRUE((*map)->Write(0, std::span<const uint8_t>(buf)).ok());
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

INSTANTIATE_TEST_SUITE_P(ShimAndNative, AsyncDegradedMmioTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "NvmeQueue" : "SyncShim";
                         });

// --- linuxsim msync error propagation -------------------------------------------

TEST(LinuxSimFaultTest, MsyncPropagatesWritebackError) {
  auto pmem = MakePmem(64ull << 20);
  FaultInjectingDevice::Options fopts;
  fopts.write_error_rate = 1.0;
  FaultInjectingDevice faults(pmem.get(), fopts);
  DeviceBacking backing(&faults, 0, 16ull << 20);
  LinuxMmapEngine::Options options;
  options.cache_pages = 1024;
  LinuxMmapEngine engine(options);
  auto map = engine.Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->TouchWrite(0).faulted);
  EXPECT_EQ((*map)->Sync(0, kPageSize).code(), StatusCode::kIoError);
  EXPECT_GT(engine.stats().writeback_errors.load(), 0u);
  // The page is still dirty: once the device heals, msync succeeds.
  faults.set_write_error_rate(0.0);
  EXPECT_TRUE((*map)->Sync(0, kPageSize).ok());
  ASSERT_TRUE(engine.Unmap(*map).ok());
}

// --- Crash consistency: WAL + blobstore power cut -------------------------------

TEST(CrashConsistencyTest, PowerCutPreservesSyncedWalAndSuperblock) {
  auto pmem = MakePmem(512ull << 20);
  FaultInjectingDevice::Options fopts;
  fopts.buffer_unflushed_writes = true;
  FaultInjectingDevice faults(pmem.get(), fopts);
  Vcpu& vcpu = ThisVcpu();

  Blobstore::Options bs_options;
  bs_options.cluster_size = 64 * 1024;
  bs_options.metadata_bytes = 1ull << 20;
  auto store = Blobstore::Format(vcpu, &faults, bs_options);
  ASSERT_TRUE(store.ok());
  BlobNamespace ns(store->get());
  KvsEnv::Options env_options;
  env_options.store = store->get();
  env_options.ns = &ns;
  env_options.read_path = ReadPath::kDirectIo;
  KvsEnv env(env_options);

  LsmDb::Options db_options;
  db_options.env = &env;
  db_options.memtable_bytes = 1 << 20;  // everything stays in WAL + memtable
  auto db = LsmDb::Open(db_options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE((*db)->Put("acked" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  // Durability barrier: WAL data, then the blobstore metadata that names it.
  ASSERT_TRUE((*db)->SyncWal().ok());
  ASSERT_TRUE((*store)->Sync(vcpu).ok());
  // More writes after the barrier; these are allowed to vanish.
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE((*db)->Put("unsynced" + std::to_string(i), "x").ok());
  }

  faults.PowerCut();

  // "Reboot": load the store from the raw medium, which holds exactly the
  // flushed state. No data acknowledged by the barrier may be missing.
  auto store2 = Blobstore::Load(vcpu, pmem.get());
  ASSERT_TRUE(store2.ok());
  BlobNamespace ns2(store2->get());
  ASSERT_TRUE(ns2.Recover().ok());
  KvsEnv::Options env2_options;
  env2_options.store = store2->get();
  env2_options.ns = &ns2;
  env2_options.read_path = ReadPath::kDirectIo;
  KvsEnv env2(env2_options);
  LsmDb::Options db2_options;
  db2_options.env = &env2;
  db2_options.memtable_bytes = 1 << 20;
  auto db2 = LsmDb::Open(db2_options);
  ASSERT_TRUE(db2.ok());
  for (int i = 0; i < 200; i++) {
    std::string value;
    bool found;
    ASSERT_TRUE((*db2)->Get("acked" + std::to_string(i), &value, &found).ok());
    ASSERT_TRUE(found) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

// --- Crash consistency: torn WAL tail -------------------------------------------

// Mirrors LsmDb's WAL record format (lsm_db.cc):
//   fixed32 crc | fixed32 klen | fixed32 vlen | u8 type | key | value
void AppendWalRecord(std::string* out, const std::string& key, const std::string& value) {
  size_t crc_pos = out->size();
  PutFixed32(out, 0);
  PutFixed32(out, static_cast<uint32_t>(key.size()));
  PutFixed32(out, static_cast<uint32_t>(value.size()));
  out->push_back(static_cast<char>(ValueType::kValue));
  out->append(key);
  out->append(value);
  uint32_t crc = Crc32c(out->data() + crc_pos + 4, out->size() - crc_pos - 4);
  EncodeFixed32(out->data() + crc_pos, crc);
}

class WalReplayTest : public ::testing::Test {
 protected:
  WalReplayTest() {
    device_ = MakePmem(256ull << 20);
    Blobstore::Options bs_options;
    bs_options.cluster_size = 64 * 1024;
    bs_options.metadata_bytes = 1ull << 20;
    auto store = Blobstore::Format(ThisVcpu(), device_.get(), bs_options);
    AQUILA_CHECK(store.ok());
    store_ = std::move(*store);
    ns_ = std::make_unique<BlobNamespace>(store_.get());
    KvsEnv::Options env_options;
    env_options.store = store_.get();
    env_options.ns = ns_.get();
    env_options.read_path = ReadPath::kDirectIo;
    env_ = std::make_unique<KvsEnv>(env_options);
  }

  // Writes `data` as the database's WAL file, as if a crash left it behind.
  void PlantWal(const std::string& data) {
    auto file = env_->NewWritableFile("/db/WAL");
    AQUILA_CHECK(file.ok());
    AQUILA_CHECK((*file)->Append(data).ok());
    AQUILA_CHECK((*file)->Close().ok());
  }

  std::unique_ptr<LsmDb> OpenDb() {
    LsmDb::Options options;
    options.env = env_.get();
    options.name = "/db";
    auto db = LsmDb::Open(options);
    AQUILA_CHECK(db.ok());
    return std::move(*db);
  }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<Blobstore> store_;
  std::unique_ptr<BlobNamespace> ns_;
  std::unique_ptr<KvsEnv> env_;
};

TEST_F(WalReplayTest, CleanLogReplaysFully) {
  std::string wal;
  for (int i = 0; i < 50; i++) {
    AppendWalRecord(&wal, "wk" + std::to_string(i), "wv" + std::to_string(i));
  }
  PlantWal(wal);
  auto db = OpenDb();
  for (int i = 0; i < 50; i++) {
    std::string value;
    bool found;
    ASSERT_TRUE(db->Get("wk" + std::to_string(i), &value, &found).ok());
    ASSERT_TRUE(found) << i;
    EXPECT_EQ(value, "wv" + std::to_string(i));
  }
}

TEST_F(WalReplayTest, TornTailIsTruncatedNotFatal) {
  std::string wal;
  for (int i = 0; i < 50; i++) {
    AppendWalRecord(&wal, "wk" + std::to_string(i), "wv" + std::to_string(i));
  }
  // A record whose payload was cut off mid-write.
  std::string torn;
  AppendWalRecord(&torn, "tornkey", std::string(100, 't'));
  wal.append(torn.data(), torn.size() - 60);
  PlantWal(wal);
  auto db = OpenDb();
  std::string value;
  bool found;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Get("wk" + std::to_string(i), &value, &found).ok());
    ASSERT_TRUE(found) << i;
  }
  ASSERT_TRUE(db->Get("tornkey", &value, &found).ok());
  EXPECT_FALSE(found);
}

TEST_F(WalReplayTest, CorruptRecordTruncatesReplayThere) {
  std::string wal;
  for (int i = 0; i < 10; i++) {
    AppendWalRecord(&wal, "good" + std::to_string(i), "v");
  }
  size_t corrupt_at = wal.size();
  AppendWalRecord(&wal, "evil", "payload");
  wal[corrupt_at + 20] ^= 0x01;  // flip a payload bit: CRC must catch it
  AppendWalRecord(&wal, "after", "v");  // valid, but unreachable past the tear
  PlantWal(wal);
  auto db = OpenDb();
  std::string value;
  bool found;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Get("good" + std::to_string(i), &value, &found).ok());
    ASSERT_TRUE(found) << i;
  }
  ASSERT_TRUE(db->Get("evil", &value, &found).ok());
  EXPECT_FALSE(found);
  ASSERT_TRUE(db->Get("after", &value, &found).ok());
  EXPECT_FALSE(found);
}

// --- Crash consistency: SST block checksums -------------------------------------

TEST_F(WalReplayTest, SstBlockBitFlipIsDetected) {
  auto file = env_->NewWritableFile("/t.sst");
  ASSERT_TRUE(file.ok());
  SstBuilder builder(file->get(), SstOptions{});
  for (int i = 0; i < 1000; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    builder.Add(Slice(key), static_cast<uint64_t>(i), ValueType::kValue,
                "FLIPTARGET-" + std::to_string(i) + std::string(64, 'z'));
  }
  ASSERT_TRUE(builder.Finish().ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  // Flip one bit of key000500's value directly on the medium.
  const std::string needle = "FLIPTARGET-500z";
  uint8_t* dax = device_->dax_base();
  uint64_t capacity = device_->capacity_bytes();
  uint8_t* hit = static_cast<uint8_t*>(
      memmem(dax, capacity, needle.data(), needle.size()));
  ASSERT_NE(hit, nullptr);
  *hit ^= 0x40;

  auto raf = env_->NewRandomAccessFile("/t.sst");
  ASSERT_TRUE(raf.ok());
  auto reader = SstReader::Open(std::move(*raf), nullptr, 1);
  ASSERT_TRUE(reader.ok());
  std::string value;
  bool found, deleted;
  Status status = (*reader)->Get("key000500", &value, &found, &deleted);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // Other blocks are unaffected.
  ASSERT_TRUE((*reader)->Get("key000001", &value, &found, &deleted).ok());
  EXPECT_TRUE(found);
}

// --- Crash consistency: blobstore dual superblock -------------------------------

TEST(BlobstoreCrashTest, InterruptedSyncKeepsPreviousGeneration) {
  auto pmem = MakePmem(128ull << 20);
  Vcpu& vcpu = ThisVcpu();
  Blobstore::Options bs_options;
  bs_options.cluster_size = 64 * 1024;
  bs_options.metadata_bytes = 1ull << 20;
  BlobId keeper;
  {
    // Generation 1 is written straight to the medium.
    auto store = Blobstore::Format(vcpu, pmem.get(), bs_options);
    ASSERT_TRUE(store.ok());
    auto blob = (*store)->CreateBlob(1);
    ASSERT_TRUE(blob.ok());
    keeper = *blob;
    ASSERT_TRUE((*store)->SetXattr(keeper, "name", "survivor").ok());
    ASSERT_TRUE((*store)->Sync(vcpu).ok());
  }
  {
    // Generation 2's Sync is cut between its two flush barriers: the new
    // payload reaches the medium, the superblock that references it does not.
    FaultInjectingDevice::Options fopts;
    fopts.buffer_unflushed_writes = true;
    // Flush 1 (the payload barrier) succeeds; flush 2 (the superblock
    // barrier) fails on every retry attempt, so the new superblock never
    // leaves the volatile write cache.
    fopts.fail_flushes = {2, 3, 4};
    FaultInjectingDevice faults(pmem.get(), fopts);
    auto store = Blobstore::Load(vcpu, &faults);
    ASSERT_TRUE(store.ok());
    auto blob = (*store)->CreateBlob(1);
    ASSERT_TRUE(blob.ok());
    EXPECT_FALSE((*store)->Sync(vcpu).ok());
    faults.PowerCut();
  }
  // Recovery finds generation 1 intact: the survivor blob, not the new one.
  auto store = Blobstore::Load(vcpu, pmem.get());
  ASSERT_TRUE(store.ok());
  std::vector<BlobId> blobs = (*store)->ListBlobs();
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0], keeper);
  auto name = (*store)->GetXattr(keeper, "name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "survivor");
}

TEST(BlobstoreCrashTest, CorruptNewestSuperblockFallsBackToOlder) {
  auto pmem = MakePmem(128ull << 20);
  Vcpu& vcpu = ThisVcpu();
  Blobstore::Options bs_options;
  bs_options.cluster_size = 64 * 1024;
  bs_options.metadata_bytes = 1ull << 20;
  {
    auto store = Blobstore::Format(vcpu, pmem.get(), bs_options);  // gen 1
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->CreateBlob(1).ok());
    ASSERT_TRUE((*store)->Sync(vcpu).ok());  // gen 2 -> slot 0
  }
  // A bit rots in the newest superblock (generation 2 lives in slot 0).
  pmem->dax_base()[40] ^= 0x10;
  auto store = Blobstore::Load(vcpu, pmem.get());
  ASSERT_TRUE(store.ok());
  // Generation 1 (empty store) is what recovery can trust.
  EXPECT_TRUE((*store)->ListBlobs().empty());
}

TEST(BlobstoreCrashTest, BlankDeviceStillRejectedCleanly) {
  auto pmem = MakePmem(64ull << 20);
  auto store = Blobstore::Load(ThisVcpu(), pmem.get());
  EXPECT_EQ(store.status().code(), StatusCode::kFailedPrecondition);
}

// --- Crash consistency: Kreon superblock ----------------------------------------

class KreonCrashTest : public ::testing::Test {
 protected:
  KreonCrashTest() {
    device_ = MakePmem(128ull << 20);
    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 256ull << 20;
    options.cache.capacity_pages = 8192;
    options.cache.max_pages = 16384;
    options.cache.eviction_batch = 64;
    runtime_ = std::make_unique<Aquila>(options);
    backing_ = std::make_unique<DeviceBacking>(device_.get(), 0, device_->capacity_bytes());
    auto map = runtime_->Map(backing_.get(), device_->capacity_bytes(),
                             kProtRead | kProtWrite);
    AQUILA_CHECK(map.ok());
    map_ = *map;
  }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<DeviceBacking> backing_;
  std::unique_ptr<Aquila> runtime_;
  MemoryMap* map_;
};

TEST_F(KreonCrashTest, CorruptSuperblockFailsRecoveryThenHealsWhenRestored) {
  {
    auto db = KreonDb::Open(map_, KreonDb::Options{});
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE((*db)->Put("kc" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*db)->Persist().ok());
  }
  // Flip a byte inside the persisted superblock's entry count. The magic
  // stays intact, so only the CRC can catch this.
  uint8_t original = map_->LoadValue<uint8_t>(32);
  map_->StoreValue<uint8_t>(32, original ^ 0x01);
  EXPECT_FALSE(KreonDb::Open(map_, KreonDb::Options{}).ok());
  // Restoring the byte makes recovery succeed again.
  map_->StoreValue<uint8_t>(32, original);
  auto db = KreonDb::Open(map_, KreonDb::Options{});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->entries(), 100u);
  std::string value;
  bool found;
  ASSERT_TRUE((*db)->Get("kc42", &value, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(value, "v42");
}

}  // namespace
}  // namespace aquila
