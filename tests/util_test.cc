// Unit tests for src/util: histogram, RNG distributions, simulated clocks,
// serialized resources, bit helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "src/util/bitops.h"
#include "src/util/crc32c.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace {

TEST(Crc32cTest, KnownAnswers) {
  // RFC 3720 §B.4 test vector.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const char* data = "memory-mapped I/O on steroids";
  size_t len = std::strlen(data);
  uint32_t one_shot = Crc32c(data, len);
  for (size_t split = 0; split <= len; split++) {
    uint32_t crc = Crc32cExtend(0, data, split);
    crc = Crc32cExtend(crc, data + split, len - split);
    EXPECT_EQ(crc, one_shot) << split;
  }
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  std::vector<uint8_t> buf(64, 0xA5);
  uint32_t base = Crc32c(buf.data(), buf.size());
  for (size_t i = 0; i < buf.size(); i++) {
    buf[i] ^= 0x01;
    EXPECT_NE(Crc32c(buf.data(), buf.size()), base) << i;
    buf[i] ^= 0x01;
  }
}

TEST(BitopsTest, AlignmentHelpers) {
  EXPECT_EQ(AlignUp(1, 4096), 4096u);
  EXPECT_EQ(AlignUp(4096, 4096), 4096u);
  EXPECT_EQ(AlignDown(4097, 4096), 4096u);
  EXPECT_TRUE(IsAligned(8192, 4096));
  EXPECT_FALSE(IsAligned(8191, 4096));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(96));
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(PageIndex(8192 + 17), 2u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; v++) {
    h.Record(v);
  }
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  // Bucketed percentiles have ~6% relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 500.0, 40.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 990.0, 70.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.Max(), 1000000u);
  EXPECT_EQ(a.Min(), 10u);
}

TEST(HistogramTest, ConcurrentRecording) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; i++) {
        h.Record(100);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.Count(), 40000u);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, ZeroValueIsCounted) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, MergeWithEmptyPreservesMinMax) {
  Histogram a, empty;
  a.Record(10);
  a.Record(500);
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_EQ(a.Min(), 10u);
  EXPECT_EQ(a.Max(), 500u);
  // Merging into an empty histogram adopts the source's extremes.
  Histogram b;
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_EQ(b.Min(), 10u);
  EXPECT_EQ(b.Max(), 500u);
}

TEST(HistogramTest, HugeValuesStayInRange) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX - 1);
  h.Record(1);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), UINT64_MAX);
  // Bucket midpoints near the top octave would overshoot the observed range
  // without clamping; every quantile must stay within [Min(), Max()].
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    uint64_t v = h.Percentile(q);
    EXPECT_GE(v, h.Min()) << q;
    EXPECT_LE(v, h.Max()) << q;
  }
}

TEST(HistogramTest, SumAndResetBehave) {
  Histogram h;
  h.Record(100);
  h.Record(250);
  EXPECT_EQ(h.Sum(), 350u);
  EXPECT_NEAR(h.Mean(), 175.0, 0.01);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  h.Record(7);
  EXPECT_EQ(h.Min(), 7u);
  EXPECT_EQ(h.Max(), 7u);
}

TEST(RngTest, UniformRange) {
  Rng rng(42);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.Uniform(100), 100u);
  }
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(ZipfianTest, SkewTowardsHead) {
  ZipfianGenerator zipf(10000);
  uint64_t head = 0, total = 100000;
  for (uint64_t i = 0; i < total; i++) {
    if (zipf.Next() < 100) {
      head++;
    }
  }
  // With theta=0.99, the top 1% of items draws >40% of accesses.
  EXPECT_GT(head, total * 2 / 5);
}

TEST(ZipfianTest, StaysInRange) {
  ScrambledZipfianGenerator zipf(1000);
  for (int i = 0; i < 100000; i++) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(LatestTest, SkewsTowardsNewest) {
  LatestGenerator latest(10000);
  uint64_t recent = 0, total = 100000;
  for (uint64_t i = 0; i < total; i++) {
    if (latest.Next() >= 9900) {
      recent++;
    }
  }
  EXPECT_GT(recent, total * 2 / 5);
}

TEST(SimClockTest, ChargeAccumulates) {
  SimClock clock;
  clock.Charge(CostCategory::kTrap, 100);
  clock.Charge(CostCategory::kDeviceIo, 50);
  clock.Charge(CostCategory::kTrap, 25);
  EXPECT_EQ(clock.Now(), 175u);
  EXPECT_EQ(clock.Breakdown()[CostCategory::kTrap], 125u);
  EXPECT_EQ(clock.Breakdown()[CostCategory::kDeviceIo], 50u);
  EXPECT_EQ(clock.Breakdown().Total(), 175u);
}

TEST(SimClockTest, AdvanceToChargesIdle) {
  SimClock clock;
  clock.Charge(CostCategory::kUserWork, 100);
  clock.AdvanceTo(300);
  EXPECT_EQ(clock.Now(), 300u);
  EXPECT_EQ(clock.Breakdown()[CostCategory::kIdle], 200u);
  clock.AdvanceTo(50);  // in the past: no-op
  EXPECT_EQ(clock.Now(), 300u);
}

TEST(SerializedResourceTest, SequentialService) {
  SerializedResource res;
  SimClock a, b;
  res.Acquire(a, CostCategory::kDeviceIo, 100);
  EXPECT_EQ(a.Now(), 100u);
  // b arrives at t=0 but the server is busy until t=100.
  res.Acquire(b, CostCategory::kDeviceIo, 100);
  EXPECT_EQ(b.Now(), 200u);
  EXPECT_EQ(b.Breakdown()[CostCategory::kIdle], 100u);
  EXPECT_EQ(res.TotalQueueingCycles(), 100u);
  EXPECT_EQ(res.Acquisitions(), 2u);
}

TEST(SerializedResourceTest, ReserveDoesNotTouchClock) {
  SerializedResource res;
  uint64_t done1 = res.Reserve(0, 50);
  uint64_t done2 = res.Reserve(0, 50);
  EXPECT_EQ(done1, 50u);
  EXPECT_EQ(done2, 100u);
}

TEST(SerializedResourceTest, ConcurrentAcquisitionsSerialize) {
  SerializedResource res;
  constexpr int kThreads = 8;
  constexpr int kOps = 1000;
  std::vector<std::thread> threads;
  std::vector<uint64_t> finals(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&res, &finals, t] {
      SimClock clock;
      for (int i = 0; i < kOps; i++) {
        res.Acquire(clock, CostCategory::kDeviceIo, 10);
      }
      finals[t] = clock.Now();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Total service is serialized: the last finisher saw all 8*1000*10 cycles.
  uint64_t max_final = *std::max_element(finals.begin(), finals.end());
  EXPECT_EQ(max_final, static_cast<uint64_t>(kThreads) * kOps * 10);
  EXPECT_EQ(res.TotalServiceCycles(), static_cast<uint64_t>(kThreads) * kOps * 10);
}

TEST(CostBreakdownTest, Arithmetic) {
  CostBreakdown a, b;
  a.cycles[0] = 100;
  b.cycles[0] = 30;
  CostBreakdown diff = a - b;
  EXPECT_EQ(diff.cycles[0], 70u);
  diff += b;
  EXPECT_EQ(diff.cycles[0], 100u);
}

}  // namespace
}  // namespace aquila
