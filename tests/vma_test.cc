// Unit tests for src/vma: radix-tree VMA management and per-entry locks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/vma/vma_tree.h"

namespace aquila {
namespace {

TEST(VmaTreeTest, InsertFindRemove) {
  VmaTree tree;
  Vma vma;
  vma.start_page = 1000;
  vma.page_count = 16;
  vma.mapping_id = 1;
  ASSERT_TRUE(tree.Insert(&vma).ok());
  EXPECT_EQ(tree.mapped_pages(), 16u);
  EXPECT_EQ(tree.Find(1000), &vma);
  EXPECT_EQ(tree.Find(1015), &vma);
  EXPECT_EQ(tree.Find(999), nullptr);
  EXPECT_EQ(tree.Find(1016), nullptr);
  ASSERT_TRUE(tree.Remove(&vma).ok());
  EXPECT_EQ(tree.Find(1000), nullptr);
  EXPECT_EQ(tree.mapped_pages(), 0u);
}

TEST(VmaTreeTest, RejectsOverlapAndRollsBack) {
  VmaTree tree;
  Vma a, b;
  a.start_page = 100;
  a.page_count = 10;
  b.start_page = 105;
  b.page_count = 10;
  ASSERT_TRUE(tree.Insert(&a).ok());
  EXPECT_FALSE(tree.Insert(&b).ok());
  // The failed insert must not leave b's non-overlapping prefix behind.
  EXPECT_EQ(tree.Find(104), &a);
  EXPECT_EQ(tree.Find(110), nullptr);
  EXPECT_EQ(tree.mapped_pages(), 10u);
}

TEST(VmaTreeTest, EntryLocking) {
  VmaTree tree;
  Vma vma;
  vma.start_page = 50;
  vma.page_count = 4;
  ASSERT_TRUE(tree.Insert(&vma).ok());

  Vma* locked = tree.LockEntry(51);
  EXPECT_EQ(locked, &vma);
  // Another page in the same VMA is independently lockable.
  Vma* other;
  EXPECT_TRUE(tree.TryLockEntry(52, &other));
  EXPECT_EQ(other, &vma);
  // The locked page is not.
  EXPECT_FALSE(tree.TryLockEntry(51, &other));
  tree.UnlockEntry(51);
  tree.UnlockEntry(52);
  EXPECT_TRUE(tree.TryLockEntry(51, &other));
  tree.UnlockEntry(51);
  ASSERT_TRUE(tree.Remove(&vma).ok());
}

TEST(VmaTreeTest, LockEntryUnmappedReturnsNull) {
  VmaTree tree;
  EXPECT_EQ(tree.LockEntry(12345), nullptr);
  Vma* out;
  EXPECT_FALSE(tree.TryLockEntry(12345, &out));
}

TEST(VmaTreeTest, RemoveWaitsForEntryLock) {
  VmaTree tree;
  Vma vma;
  vma.start_page = 10;
  vma.page_count = 2;
  ASSERT_TRUE(tree.Insert(&vma).ok());
  Vma* locked = tree.LockEntry(10);
  ASSERT_EQ(locked, &vma);

  std::atomic<bool> removed{false};
  std::thread remover([&] {
    ASSERT_TRUE(tree.Remove(&vma).ok());
    removed.store(true);
  });
  // The remover must block on the held entry lock.
  for (int i = 0; i < 1000 && !removed.load(); i++) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(removed.load());
  tree.UnlockEntry(10);
  remover.join();
  EXPECT_TRUE(removed.load());
  EXPECT_EQ(tree.Find(10), nullptr);
}

TEST(VmaTreeTest, ManyConcurrentMappers) {
  VmaTree tree;
  constexpr int kThreads = 8;
  constexpr int kMapsPerThread = 100;
  std::vector<std::vector<Vma>> vmas(kThreads, std::vector<Vma>(kMapsPerThread));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kMapsPerThread; i++) {
        Vma& vma = vmas[t][i];
        vma.start_page = (static_cast<uint64_t>(t) * kMapsPerThread + i) * 64;
        vma.page_count = 32;
        ASSERT_TRUE(tree.Insert(&vma).ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(tree.mapped_pages(), kThreads * kMapsPerThread * 32u);
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kMapsPerThread; i++) {
      EXPECT_EQ(tree.Find(vmas[t][i].start_page + 7), &vmas[t][i]);
    }
  }
}

TEST(VaAllocatorTest, DisjointRanges) {
  VaAllocator alloc;
  uint64_t a = alloc.Allocate(100);
  uint64_t b = alloc.Allocate(100);
  EXPECT_GE(b, a + 101 * kPageSize);  // guard page between ranges
  EXPECT_TRUE(IsAligned(a, kPageSize));
  EXPECT_GE(a, VaAllocator::kBase);
}

}  // namespace
}  // namespace aquila
