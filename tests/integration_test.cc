// Cross-stack integration tests: the full pipeline (device -> blobstore ->
// LSM / Kreon -> mmio engine -> YCSB) under stress, plus multi-mapping
// cache sharing and crash-style reopen cycles.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "src/core/aquila.h"
#include "src/kvs/kreon_db.h"
#include "src/kvs/lsm_db.h"
#include "src/linuxsim/linux_mmap.h"
#include "src/storage/nvme_device.h"
#include "src/storage/pmem_device.h"
#include "src/util/rng.h"
#include "src/ycsb/runner.h"

namespace aquila {
namespace {

// LSM over Aquila-mmio over NVMe with a cache far smaller than the dataset,
// mixed read/write workload across threads, then reopen and verify.
TEST(FullStackTest, LsmOverAquilaOverNvmeWithThrashingCache) {
  NvmeController::Options nvme_options;
  nvme_options.capacity_bytes = 512ull << 20;
  NvmeController controller(nvme_options);
  NvmeDevice device(&controller);

  auto store = Blobstore::Format(ThisVcpu(), &device, Blobstore::Options{});
  ASSERT_TRUE(store.ok());
  BlobNamespace ns(store->get());

  Aquila::Options aq_options;
  aq_options.cache.capacity_pages = 256;  // 1 MB cache (dataset ~4 MB)
  aq_options.cache.max_pages = 2048;
  aq_options.cache.eviction_batch = 64;
  Aquila runtime(aq_options);

  KvsEnv::Options env_options;
  env_options.store = store->get();
  env_options.ns = &ns;
  env_options.read_path = ReadPath::kMmio;
  env_options.mmio_engine = &runtime;
  KvsEnv env(env_options);

  LsmDb::Options db_options;
  db_options.env = &env;
  db_options.name = "/stress";
  db_options.memtable_bytes = 512 * 1024;

  std::map<std::string, std::string> model;
  {
    auto db = LsmDb::Open(db_options);
    ASSERT_TRUE(db.ok());
    // Mixed write phase (single writer thread — the LSM serializes writers
    // anyway) interleaved with reads from two readers.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> write_floor{0};
    std::thread readers[2];
    std::atomic<int> read_errors{0};
    for (int r = 0; r < 2; r++) {
      readers[r] = std::thread([&, r] {
        runtime.EnterThread();
        Rng rng(r + 100);
        std::string value;
        while (!stop.load(std::memory_order_relaxed)) {
          uint64_t floor = write_floor.load(std::memory_order_relaxed);
          if (floor == 0) {
            continue;
          }
          uint64_t id = rng.Uniform(floor);
          bool found = false;
          std::string key = "sk" + std::to_string(id);
          if (!(*db)->Get(key, &value, &found).ok() || !found) {
            read_errors.fetch_add(1);
          }
        }
      });
    }
    for (uint64_t i = 0; i < 10000; i++) {
      std::string key = "sk" + std::to_string(i);
      std::string value = "val-" + std::to_string(i * 7) + std::string(380, 'x');
      ASSERT_TRUE((*db)->Put(key, value).ok());
      model[key] = value;
      write_floor.store(i + 1, std::memory_order_release);
    }
    stop.store(true);
    for (auto& t : readers) {
      t.join();
    }
    EXPECT_EQ(read_errors.load(), 0);
    EXPECT_GT(runtime.fault_stats().evicted_pages.load(), 0u);
  }

  // Reopen (manifest + WAL recovery) and verify every record.
  auto db = LsmDb::Open(db_options);
  ASSERT_TRUE(db.ok());
  std::string value;
  for (const auto& [key, expect] : model) {
    bool found = false;
    ASSERT_TRUE((*db)->Get(key, &value, &found).ok());
    ASSERT_TRUE(found) << key;
    ASSERT_EQ(value, expect) << key;
  }
}

// Several mappings (different backings) share one Aquila cache: eviction
// from one mapping must never corrupt another.
TEST(FullStackTest, MultipleMappingsShareOneCache) {
  constexpr int kMaps = 4;
  constexpr uint64_t kBytes = 8ull << 20;
  std::vector<std::unique_ptr<PmemDevice>> devices;
  std::vector<std::unique_ptr<DeviceBacking>> backings;
  for (int i = 0; i < kMaps; i++) {
    PmemDevice::Options o;
    o.capacity_bytes = kBytes;
    devices.push_back(std::make_unique<PmemDevice>(o));
  }

  Aquila::Options options;
  options.cache.capacity_pages = 1024;  // 4 MB for 32 MB of mappings
  options.cache.max_pages = 4096;
  options.cache.eviction_batch = 64;
  Aquila runtime(options);

  std::vector<MemoryMap*> maps;
  for (int i = 0; i < kMaps; i++) {
    backings.push_back(std::make_unique<DeviceBacking>(devices[i].get(), 0, kBytes));
    auto map = runtime.Map(backings.back().get(), kBytes, kProtRead | kProtWrite);
    ASSERT_TRUE(map.ok());
    maps.push_back(*map);
  }

  // Each mapping gets a distinct pattern written at every page.
  std::vector<std::thread> writers;
  for (int i = 0; i < kMaps; i++) {
    writers.emplace_back([&, i] {
      runtime.EnterThread();
      Rng rng(i + 1);
      for (int op = 0; op < 8000; op++) {
        uint64_t page = rng.Uniform(kBytes / kPageSize);
        maps[i]->StoreValue<uint64_t>(page * kPageSize + 8 * i,
                                      (static_cast<uint64_t>(i) << 56) | page);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  // Verify, then sync everything and verify on the devices.
  for (int i = 0; i < kMaps; i++) {
    ASSERT_TRUE(maps[i]->Sync(0, kBytes).ok());
  }
  int checked = 0;
  for (int i = 0; i < kMaps; i++) {
    for (uint64_t page = 0; page < kBytes / kPageSize; page++) {
      uint64_t on_device;
      std::memcpy(&on_device, devices[i]->dax_base() + page * kPageSize + 8 * i, 8);
      if (on_device != 0) {
        ASSERT_EQ(on_device, (static_cast<uint64_t>(i) << 56) | page)
            << "map " << i << " page " << page;
        checked++;
      }
    }
    ASSERT_TRUE(runtime.Unmap(maps[i]).ok());
  }
  EXPECT_GT(checked, 1000);
  EXPECT_GT(runtime.fault_stats().evicted_pages.load(), 0u);
}

// Kreon over the kmmap baseline (the Fig 9 comparator) is functionally
// identical to Kreon over Aquila on the same workload.
TEST(FullStackTest, KreonEquivalentOverBothEngines) {
  YcsbWorkload workload = YcsbWorkload::A();
  workload.record_count = 2000;
  workload.operation_count = 4000;
  workload.value_bytes = 256;

  auto run = [&](MmioEngine* engine, BlockDevice* device) {
    engine->EnterThread();
    DeviceBacking backing(device, 0, device->capacity_bytes());
    auto map = engine->Map(&backing, device->capacity_bytes(), kProtRead | kProtWrite);
    AQUILA_CHECK(map.ok());
    auto db = KreonDb::Open(*map, KreonDb::Options{});
    AQUILA_CHECK(db.ok());
    YcsbRunner::Options run_options;
    run_options.thread_init = [engine] { engine->EnterThread(); };
    YcsbRunner runner(db->get(), workload, run_options);
    AQUILA_CHECK(runner.Load().ok());
    StatusOr<YcsbReport> report = runner.Run();
    AQUILA_CHECK(report.ok());
    // Deterministic workload: collect a checksum of the visible state.
    uint64_t checksum = 0;
    std::string value;
    for (uint64_t i = 0; i < workload.record_count; i++) {
      bool found = false;
      std::string key = YcsbKey(i, workload.key_bytes);
      AQUILA_CHECK((*db)->Get(key, &value, &found).ok());
      if (found) {
        checksum ^= FnvHash64(value.size() * 1315423911u + i);
        for (char c : value.substr(0, 8)) {
          checksum = checksum * 131 + static_cast<unsigned char>(c);
        }
      }
    }
    db->reset();
    AQUILA_CHECK(engine->Unmap(*map).ok());
    return std::pair(report->failed_reads, checksum);
  };

  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 64ull << 20;

  PmemDevice dev1(dev_options);
  auto kmmap = std::make_unique<LinuxMmapEngine>(LinuxMmapEngine::KmmapOptions(2048));
  auto [kmmap_failed, kmmap_sum] = run(kmmap.get(), &dev1);

  PmemDevice dev2(dev_options);
  Aquila::Options aq_options;
  aq_options.cache.capacity_pages = 2048;
  aq_options.cache.max_pages = 8192;
  aq_options.cache.eviction_batch = 64;
  Aquila aquila_engine(aq_options);
  auto [aq_failed, aq_sum] = run(&aquila_engine, &dev2);

  EXPECT_EQ(kmmap_failed, 0u);
  EXPECT_EQ(aq_failed, 0u);
  EXPECT_EQ(kmmap_sum, aq_sum);
}

}  // namespace
}  // namespace aquila
