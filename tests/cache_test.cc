// Unit tests for src/cache: red-black tree, lock-free hash, two-level
// freelist, dirty trees, page cache frame lifecycle and resizing.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "src/cache/dirty_tree.h"
#include "src/cache/freelist.h"
#include "src/cache/lockfree_hash.h"
#include "src/cache/page_cache.h"
#include "src/cache/rbtree.h"
#include "src/util/rng.h"

namespace aquila {
namespace {

// --- Red-black tree -----------------------------------------------------------

struct TestNode {
  RbNode node;
  uint64_t key;
};

struct TestKeyOf {
  uint64_t operator()(const RbNode* n) const {
    return reinterpret_cast<const TestNode*>(reinterpret_cast<const char*>(n) -
                                             offsetof(TestNode, node))
        ->key;
  }
};

TEST(RbTreeTest, SortedIterationAfterRandomInsert) {
  RbTree<TestKeyOf> tree;
  std::vector<TestNode> nodes(1000);
  std::mt19937_64 rng(1);
  for (size_t i = 0; i < nodes.size(); i++) {
    nodes[i].key = rng();
    tree.Insert(&nodes[i].node);
  }
  EXPECT_GE(tree.Validate(), 1);
  EXPECT_EQ(tree.size(), nodes.size());
  uint64_t prev = 0;
  size_t count = 0;
  for (RbNode* n = tree.First(); n != nullptr; n = RbTree<TestKeyOf>::Next(n)) {
    uint64_t key = TestKeyOf()(n);
    EXPECT_GE(key, prev);
    prev = key;
    count++;
  }
  EXPECT_EQ(count, nodes.size());
}

TEST(RbTreeTest, RemoveKeepsInvariants) {
  RbTree<TestKeyOf> tree;
  std::vector<TestNode> nodes(500);
  std::mt19937_64 rng(7);
  for (size_t i = 0; i < nodes.size(); i++) {
    nodes[i].key = rng() % 10000;
    tree.Insert(&nodes[i].node);
  }
  // Shuffle removal order via indices: the nodes themselves are linked into
  // the tree and must not move.
  std::vector<size_t> order(nodes.size());
  for (size_t i = 0; i < order.size(); i++) {
    order[i] = i;
  }
  std::shuffle(order.begin(), order.end(), rng);
  for (size_t i = 0; i < order.size(); i++) {
    tree.Remove(&nodes[order[i]].node);
    if (i % 50 == 0) {
      ASSERT_GE(tree.Validate(), 1) << "after " << i << " removals";
    }
  }
  EXPECT_TRUE(tree.empty());
}

TEST(RbTreeTest, LowerBound) {
  RbTree<TestKeyOf> tree;
  std::vector<TestNode> nodes(10);
  for (size_t i = 0; i < nodes.size(); i++) {
    nodes[i].key = i * 10;  // 0, 10, ..., 90
    tree.Insert(&nodes[i].node);
  }
  EXPECT_EQ(TestKeyOf()(tree.LowerBound(0)), 0u);
  EXPECT_EQ(TestKeyOf()(tree.LowerBound(15)), 20u);
  EXPECT_EQ(TestKeyOf()(tree.LowerBound(90)), 90u);
  EXPECT_EQ(tree.LowerBound(91), nullptr);
}

// --- Lock-free hash -------------------------------------------------------------

TEST(LockFreeHashTest, InsertLookupRemove) {
  LockFreeHash hash(128);
  EXPECT_TRUE(hash.Insert(7, 70));
  EXPECT_FALSE(hash.Insert(7, 71));  // duplicate
  uint64_t v = 0;
  EXPECT_TRUE(hash.Lookup(7, &v));
  EXPECT_EQ(v, 70u);
  EXPECT_FALSE(hash.Lookup(8, &v));
  EXPECT_TRUE(hash.Remove(7));
  EXPECT_FALSE(hash.Remove(7));
  EXPECT_FALSE(hash.Lookup(7, &v));
  EXPECT_EQ(hash.size(), 0u);
}

TEST(LockFreeHashTest, TombstoneReuse) {
  LockFreeHash hash(64);
  // Insert/remove the same set repeatedly: the table must not fill up with
  // tombstones (inserts reuse them).
  for (int round = 0; round < 1000; round++) {
    for (uint64_t k = 1; k <= 20; k++) {
      ASSERT_TRUE(hash.Insert(k, k * 2));
    }
    for (uint64_t k = 1; k <= 20; k++) {
      ASSERT_TRUE(hash.Remove(k));
    }
  }
  EXPECT_EQ(hash.size(), 0u);
}

// Regression guard for the early-stop invariant: an insert scan terminates
// at the first EMPTY slot (empties are never re-created), so probe lengths
// are O(probe chain), never O(capacity). If someone breaks the early stop —
// e.g. by continuing the scan past EMPTY "just in case" — these bounds blow
// up from single digits to the table size and the test fails loudly.
TEST(LockFreeHashTest, InsertProbeLengthStopsAtFirstEmpty) {
  LockFreeHash hash(1024);
  LockFreeHash::ProbeStats before = hash.probe_stats();
  ASSERT_TRUE(hash.Insert(0x42, 1));
  LockFreeHash::ProbeStats after = hash.probe_stats();
  EXPECT_EQ(after.insert_calls - before.insert_calls, 1u);
  // Empty table: the home slot is EMPTY, one probe total.
  EXPECT_EQ(after.insert_probes - before.insert_probes, 1u);

  // A tombstone does not reopen the scan: reinsert after remove probes the
  // tombstoned home slot plus the EMPTY slot behind it, nothing more.
  ASSERT_TRUE(hash.Remove(0x42));
  before = hash.probe_stats();
  ASSERT_TRUE(hash.Insert(0x42, 2));
  after = hash.probe_stats();
  EXPECT_LE(after.insert_probes - before.insert_probes, 2u);

  // At the production load factor (0.5) the MEAN probe length stays small
  // even with heavy tombstone churn; ~capacity/2 here would mean the scan
  // stopped honoring EMPTY slots.
  LockFreeHash big(2048);
  for (uint64_t k = 1; k <= 1024; k++) {
    ASSERT_TRUE(big.Insert(k, k));
  }
  for (int round = 0; round < 20; round++) {
    for (uint64_t k = 1; k <= 1024; k += 2) {
      ASSERT_TRUE(big.Remove(k));
      ASSERT_TRUE(big.Insert(k, k));
    }
  }
  LockFreeHash::ProbeStats s = big.probe_stats();
  ASSERT_GT(s.insert_calls, 0u);
  EXPECT_LT(s.insert_probes / s.insert_calls, 8u);
}

TEST(LockFreeHashTest, ConcurrentDisjointKeys) {
  LockFreeHash hash(1 << 16);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&hash, t] {
      uint64_t base = static_cast<uint64_t>(t) * kPerThread + 1;
      for (uint64_t i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(hash.Insert(base + i, base + i));
      }
      uint64_t v;
      for (uint64_t i = 0; i < kPerThread; i++) {
        ASSERT_TRUE(hash.Lookup(base + i, &v));
        ASSERT_EQ(v, base + i);
      }
      for (uint64_t i = 0; i < kPerThread; i += 2) {
        ASSERT_TRUE(hash.Remove(base + i));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(hash.size(), kThreads * kPerThread / 2);
}

TEST(LockFreeHashTest, ConcurrentSameKeyInsertOneWinner) {
  for (int round = 0; round < 50; round++) {
    LockFreeHash hash(64);
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
      threads.emplace_back([&hash, &winners, t] {
        if (hash.Insert(42, static_cast<uint64_t>(t))) {
          winners.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    EXPECT_EQ(winners.load(), 1);
    EXPECT_EQ(hash.size(), 1u);
  }
}

// --- Freelist --------------------------------------------------------------------

TEST(FreelistTest, AllocFromSeededQueues) {
  TwoLevelFreelist::Options options;
  TwoLevelFreelist fl(1024, options);
  fl.AddFrames(0, 1024);
  EXPECT_EQ(fl.ApproxFree(), 1024u);
  std::vector<bool> seen(1024, false);
  for (int i = 0; i < 1024; i++) {
    FrameId f = fl.Alloc(0);
    ASSERT_NE(f, kInvalidFrame);
    ASSERT_LT(f, 1024u);
    ASSERT_FALSE(seen[f]) << "double allocation of frame " << f;
    seen[f] = true;
  }
  EXPECT_EQ(fl.Alloc(0), kInvalidFrame);
}

TEST(FreelistTest, FreeGoesToCoreQueueFirst) {
  TwoLevelFreelist::Options options;
  options.core_queue_threshold = 8;
  options.move_batch = 4;
  TwoLevelFreelist fl(64, options);
  fl.AddFrames(0, 64);
  std::vector<FrameId> held;
  for (int i = 0; i < 64; i++) {
    held.push_back(fl.Alloc(1));
  }
  for (FrameId f : held) {
    fl.Free(1, f);
  }
  EXPECT_EQ(fl.ApproxFree(), 64u);
  // Overflow moved batches from the core queue to the NUMA queue.
  EXPECT_GT(fl.stats().batch_moves.load(), 0u);
  // Core-local allocation hits after frees.
  FrameId f = fl.Alloc(1);
  EXPECT_NE(f, kInvalidFrame);
  EXPECT_GT(fl.stats().core_hits.load(), 0u);
}

TEST(FreelistTest, RemoteNumaFallback) {
  TwoLevelFreelist::Options options;
  options.numa_nodes = 2;
  TwoLevelFreelist fl(16, options);
  fl.AddFrames(0, 16);
  // Drain everything from core 0 (NUMA node 0): it must also pull from the
  // remote node's queue.
  int got = 0;
  while (fl.Alloc(0) != kInvalidFrame) {
    got++;
  }
  EXPECT_EQ(got, 16);
  EXPECT_GT(fl.stats().remote_hits.load(), 0u);
}

TEST(FreelistTest, ConcurrentAllocFreeNoDuplicates) {
  TwoLevelFreelist::Options options;
  options.core_queue_threshold = 32;
  options.move_batch = 16;
  constexpr uint32_t kFrames = 4096;
  TwoLevelFreelist fl(kFrames, options);
  fl.AddFrames(0, kFrames);
  std::vector<std::atomic<int>> owners(kFrames);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      std::vector<FrameId> mine;
      Rng rng(t + 1);
      for (int i = 0; i < 20000; i++) {
        if (mine.size() < 64 && rng.OneIn(2)) {
          FrameId f = fl.Alloc(t % CoreRegistry::kMaxCores);
          if (f != kInvalidFrame) {
            if (owners[f].fetch_add(1) != 0) {
              failed.store(true);
            }
            mine.push_back(f);
          }
        } else if (!mine.empty()) {
          FrameId f = mine.back();
          mine.pop_back();
          owners[f].fetch_sub(1);
          fl.Free(t % CoreRegistry::kMaxCores, f);
        }
      }
      for (FrameId f : mine) {
        owners[f].fetch_sub(1);
        fl.Free(t % CoreRegistry::kMaxCores, f);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(failed.load()) << "a frame was allocated to two owners";
  EXPECT_EQ(fl.ApproxFree(), kFrames);
}

// --- Dirty trees ------------------------------------------------------------------

TEST(DirtyTreeTest, CollectBatchSortedRuns) {
  DirtyTreeSet set;
  std::vector<DirtyItem> items(100);
  for (size_t i = 0; i < items.size(); i++) {
    items[i].sort_key = 1000 - i * 10;
    set.Insert(static_cast<int>(i % 2), &items[i]);
  }
  EXPECT_EQ(set.TotalDirty(), 100u);
  std::vector<DirtyItem*> out(100);
  size_t n = set.CollectBatch(0, 100, out.data());
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(set.TotalDirty(), 0u);
  // Items from core 0's tree come first, in ascending key order.
  for (size_t i = 1; i < 50; i++) {
    EXPECT_GT(out[i]->sort_key, out[i - 1]->sort_key);
  }
}

TEST(DirtyTreeTest, CollectRange) {
  DirtyTreeSet set;
  std::vector<DirtyItem> items(20);
  for (size_t i = 0; i < items.size(); i++) {
    items[i].sort_key = i;
    set.Insert(static_cast<int>(i % 4), &items[i]);
  }
  std::vector<DirtyItem*> out;
  set.CollectRange(5, 9, &out);
  EXPECT_EQ(out.size(), 5u);
  for (DirtyItem* item : out) {
    EXPECT_GE(item->sort_key, 5u);
    EXPECT_LE(item->sort_key, 9u);
  }
  EXPECT_EQ(set.TotalDirty(), 15u);
}

TEST(DirtyTreeTest, RemoveIsIdempotent) {
  DirtyTreeSet set;
  DirtyItem item;
  item.sort_key = 5;
  set.Insert(0, &item);
  set.Remove(&item);
  set.Remove(&item);
  EXPECT_EQ(set.TotalDirty(), 0u);
}

// --- PageCache ---------------------------------------------------------------------

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest() {
    Hypervisor::Options hv_options;
    hv_options.host_memory_bytes = 256ull << 20;
    hv_options.chunk_size = 1ull << 20;
    hv_ = std::make_unique<Hypervisor>(hv_options);
    guest_ = hv_->CreateGuest();
    PageCache::Options options;
    options.capacity_pages = 1024;
    options.max_pages = 8192;
    cache_ = std::make_unique<PageCache>(hv_.get(), guest_, vcpu_, options);
  }

  Vcpu vcpu_{0};
  std::unique_ptr<Hypervisor> hv_;
  int guest_;
  std::unique_ptr<PageCache> cache_;
};

TEST_F(PageCacheTest, FrameLifecycle) {
  FrameId f = cache_->AllocFrame(vcpu_, 0);
  ASSERT_NE(f, kInvalidFrame);
  EXPECT_EQ(cache_->frame(f).state.load(), FrameState::kFilling);
  uint8_t* data = cache_->FrameData(vcpu_, f);
  ASSERT_NE(data, nullptr);
  data[0] = 0x11;
  EXPECT_TRUE(cache_->InsertMapping(0x8000000000000001ull, f));
  cache_->frame(f).state.store(FrameState::kResident);
  FrameId found;
  EXPECT_TRUE(cache_->Lookup(0x8000000000000001ull, &found));
  EXPECT_EQ(found, f);
  EXPECT_TRUE(cache_->RemoveMapping(0x8000000000000001ull));
  cache_->FreeFrame(0, f);
  EXPECT_EQ(cache_->frame(f).state.load(), FrameState::kFree);
}

TEST_F(PageCacheTest, ExhaustionAndVictimSelection) {
  std::vector<FrameId> frames;
  FrameId f;
  while ((f = cache_->AllocFrame(vcpu_, 0)) != kInvalidFrame) {
    cache_->frame(f).vaddr = (frames.size() + 1) * kPageSize;
    cache_->frame(f).state.store(FrameState::kResident);
    frames.push_back(f);
  }
  EXPECT_EQ(frames.size(), 1024u);

  // First sweep clears reference bits; a bounded sweep still claims a batch.
  std::vector<FrameId> victims(512);
  size_t n = cache_->SelectVictims(512, victims.data());
  EXPECT_EQ(n, 512u);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(cache_->frame(victims[i]).state.load(), FrameState::kEvicting);
  }
}

TEST_F(PageCacheTest, ReferencedFramesGetSecondChance) {
  FrameId hot = cache_->AllocFrame(vcpu_, 0);
  FrameId cold = cache_->AllocFrame(vcpu_, 0);
  cache_->frame(hot).state.store(FrameState::kResident);
  cache_->frame(hot).referenced.store(1);
  cache_->frame(cold).state.store(FrameState::kResident);
  cache_->frame(cold).referenced.store(0);
  std::vector<FrameId> victims(1);
  size_t n = cache_->SelectVictims(1, victims.data());
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(victims[0], cold);
}

TEST_F(PageCacheTest, GrowAddsCapacityViaHypervisor) {
  uint64_t granted_before = hv_->granted_bytes(guest_);
  ASSERT_TRUE(cache_->Grow(vcpu_, 1024).ok());
  EXPECT_EQ(cache_->capacity_pages(), 2048u);
  EXPECT_GT(hv_->granted_bytes(guest_), granted_before);
  // All 2048 frames allocatable.
  int got = 0;
  while (cache_->AllocFrame(vcpu_, 0) != kInvalidFrame) {
    got++;
  }
  EXPECT_EQ(got, 2048);
}

TEST_F(PageCacheTest, GrowBeyondMaxFails) {
  EXPECT_FALSE(cache_->Grow(vcpu_, 100000).ok());
}

TEST_F(PageCacheTest, ShrinkReleasesWholeGrant) {
  ASSERT_TRUE(cache_->Grow(vcpu_, 1024).ok());
  // Touch a frame in the new grant so backing exists.
  uint64_t backed_before = hv_->backed_bytes(guest_);
  StatusOr<uint64_t> removed = cache_->Shrink(vcpu_, 2048);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2048u);
  EXPECT_EQ(cache_->capacity_pages(), 0u);
  EXPECT_EQ(cache_->AllocFrame(vcpu_, 0), kInvalidFrame);
  EXPECT_LE(hv_->backed_bytes(guest_), backed_before);
  EXPECT_EQ(hv_->granted_bytes(guest_), 0u);
}

TEST_F(PageCacheTest, TlbInsertNoteAccumulatesMaskAndEpoch) {
  FrameId f = cache_->AllocFrame(vcpu_, 0);
  Frame& frame = cache_->frame(f);
  EXPECT_EQ(frame.cpu_mask.load(), 0u);
  EXPECT_EQ(frame.tlb_epoch.load(), 0u);
  NoteTlbInsert(frame, 0, /*epoch=*/3);
  NoteTlbInsert(frame, 5, /*epoch=*/7);
  EXPECT_EQ(frame.cpu_mask.load(), (1ull << 0) | (1ull << 5));
  EXPECT_EQ(frame.tlb_epoch.load(), 7u);
  // The epoch is a CAS-max: a slow publisher cannot regress it, and the mask
  // only grows (like Linux mm_cpumask) while the frame stays in circulation.
  NoteTlbInsert(frame, 5, /*epoch=*/2);
  EXPECT_EQ(frame.tlb_epoch.load(), 7u);
  EXPECT_EQ(frame.cpu_mask.load(), (1ull << 0) | (1ull << 5));
  // Core ids wrap mod 64 into the mask, matching the shootdown's targeting.
  NoteTlbInsert(frame, 64 + 9, /*epoch=*/7);
  EXPECT_EQ(frame.cpu_mask.load(), (1ull << 0) | (1ull << 5) | (1ull << 9));
  cache_->FreeFrame(0, f);
}

TEST_F(PageCacheTest, RecycleResetsShootdownRoutingState) {
  FrameId f = cache_->AllocFrame(vcpu_, 0);
  Frame& frame = cache_->frame(f);
  NoteTlbInsert(frame, 3, /*epoch=*/11);
  ASSERT_NE(frame.cpu_mask.load(), 0u);
  cache_->FreeFrame(0, f);
  // The next identity this frame takes must start with no mapped cores:
  // stale bits would send IPIs for cores that never saw the new page.
  EXPECT_EQ(frame.cpu_mask.load(), 0u);
  EXPECT_EQ(frame.tlb_epoch.load(), 0u);
}

TEST_F(PageCacheTest, DirtyBookkeeping) {
  FrameId f = cache_->AllocFrame(vcpu_, 0);
  cache_->frame(f).state.store(FrameState::kResident);
  cache_->MarkDirty(2, f, /*sort_key=*/777);
  EXPECT_EQ(cache_->TotalDirty(), 1u);
  std::vector<FrameId> out(4);
  size_t n = cache_->CollectDirtyBatch(2, 4, out.data());
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0], f);
  EXPECT_EQ(cache_->TotalDirty(), 0u);
}

}  // namespace
}  // namespace aquila
