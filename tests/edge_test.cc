// Edge-case and failure-injection tests that cut across modules:
// partial-range msync, remap shrink, cache shrink under load, out-of-space
// propagation, blobstore churn against a reference model, and zero-length /
// boundary conditions.
#include <gtest/gtest.h>

#include <map>

#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/kvs/lsm_db.h"
#include "src/storage/pmem_device.h"
#include "src/util/rng.h"

namespace aquila {
namespace {

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest() {
    PmemDevice::Options dev_options;
    dev_options.capacity_bytes = 32ull << 20;
    device_ = std::make_unique<PmemDevice>(dev_options);
    backing_ = std::make_unique<DeviceBacking>(device_.get(), 0, device_->capacity_bytes());
    Aquila::Options options;
    options.cache.capacity_pages = 2048;
    options.cache.max_pages = 8192;
    options.cache.eviction_batch = 64;
    runtime_ = std::make_unique<Aquila>(options);
  }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<DeviceBacking> backing_;
  std::unique_ptr<Aquila> runtime_;
};

TEST_F(EdgeTest, PartialMsyncOnlyFlushesRange) {
  auto map = runtime_->Map(backing_.get(), 16ull << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  (*map)->TouchWrite(0);                 // page 0 dirty
  (*map)->TouchWrite(100 * kPageSize);   // page 100 dirty
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());  // flush only page 0
  EXPECT_EQ(device_->dax_base()[0], 1u);
  EXPECT_EQ(device_->dax_base()[100 * kPageSize], 0u);  // still only in cache
  EXPECT_EQ(runtime_->cache().TotalDirty(), 1u);        // page 100 stays dirty
  ASSERT_TRUE((*map)->Sync(100 * kPageSize, kPageSize).ok());
  EXPECT_EQ(device_->dax_base()[100 * kPageSize], 1u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(EdgeTest, MsyncRejectsBadRanges) {
  auto map = runtime_->Map(backing_.get(), 1ull << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  EXPECT_FALSE((*map)->Sync(0, 0).ok());
  EXPECT_FALSE((*map)->Sync(1ull << 20, kPageSize).ok());
  EXPECT_TRUE((*map)->Sync((1ull << 20) - kPageSize, kPageSize).ok());
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(EdgeTest, RemapShrinkDropsTail) {
  auto map = runtime_->Map(backing_.get(), 4ull << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  (*map)->TouchWrite(0);
  (*map)->TouchWrite((3ull << 20) + 5);  // in the tail that will be cut
  StatusOr<MemoryMap*> smaller = runtime_->Remap(*map, 1ull << 20);
  ASSERT_TRUE(smaller.ok());
  EXPECT_EQ((*smaller)->length(), 1ull << 20);
  // The tail page was written back when dropped.
  EXPECT_EQ(device_->dax_base()[(3ull << 20) + 5], 1u);
  // Accesses beyond the new length fail.
  std::vector<uint8_t> buf(8);
  EXPECT_FALSE((*smaller)->Read(2ull << 20, std::span(buf)).ok());
  // The kept prefix is intact.
  ASSERT_TRUE((*smaller)->Read(0, std::span(buf)).ok());
  EXPECT_EQ(buf[0], 1u);
  ASSERT_TRUE(runtime_->Unmap(*smaller).ok());
}

TEST_F(EdgeTest, CacheShrinkWithResidentPagesIsPartial) {
  auto map = runtime_->Map(backing_.get(), 8ull << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  // Make most of the cache resident.
  for (uint64_t page = 0; page < 1800; page++) {
    (*map)->TouchRead(page * kPageSize);
  }
  // Shrink can only take free frames; it must not steal resident ones.
  StatusOr<uint64_t> removed = runtime_->ShrinkCache(8ull << 20);
  ASSERT_TRUE(removed.ok());
  EXPECT_LT(*removed, 8ull << 20);
  // Everything still readable (resident pages untouched by the shrink).
  for (uint64_t page = 0; page < 1800; page += 97) {
    EXPECT_FALSE((*map)->TouchRead(page * kPageSize).faulted) << page;
  }
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(EdgeTest, MappingLargerThanBackingRejected) {
  EXPECT_FALSE(runtime_->Map(backing_.get(), device_->capacity_bytes() + kPageSize,
                             kProtRead).ok());
  EXPECT_FALSE(runtime_->MapTransparent(backing_.get(), device_->capacity_bytes() + kPageSize,
                                        kProtRead).ok());
}

TEST_F(EdgeTest, UnalignedLengthMappingZeroFillsTail) {
  // Map 1.5 pages: the second page's tail beyond the mapping is still a full
  // cache page; reads of the in-range part work, out-of-range rejected.
  uint64_t length = kPageSize + kPageSize / 2;
  auto map = runtime_->Map(backing_.get(), length, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  std::vector<uint8_t> buf(16);
  ASSERT_TRUE((*map)->Read(length - 16, std::span(buf)).ok());
  EXPECT_FALSE((*map)->Read(length - 8, std::span(buf)).ok());
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(EdgeTest, RemapOfTransparentMappingRejected) {
  auto map = runtime_->MapTransparent(backing_.get(), 1ull << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  StatusOr<MemoryMap*> remapped = runtime_->Remap(*map, 2ull << 20);
  EXPECT_FALSE(remapped.ok());
  EXPECT_EQ(remapped.status().code(), StatusCode::kUnimplemented);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(EdgeTest, WillNeedPrefetchesWithoutTranslations) {
  auto map = runtime_->Map(backing_.get(), 4ull << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, 64 * kPageSize, Advice::kWillNeed).ok());
  // The prefetched pages are cached (no device read on access) but take a
  // minor fault for the translation.
  uint64_t majors = runtime_->fault_stats().major_faults.load();
  uint64_t minors = runtime_->fault_stats().minor_faults.load();
  for (uint64_t page = 1; page < 8; page++) {
    (*map)->TouchRead(page * kPageSize);
  }
  EXPECT_EQ(runtime_->fault_stats().major_faults.load(), majors);
  EXPECT_GT(runtime_->fault_stats().minor_faults.load(), minors);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST(BlobChurnTest, RandomLifecycleMatchesModel) {
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 32ull << 20;
  PmemDevice device(dev_options);
  Blobstore::Options options;
  options.cluster_size = 64 * 1024;
  options.metadata_bytes = 2ull << 20;
  auto store = Blobstore::Format(ThisVcpu(), &device, options);
  ASSERT_TRUE(store.ok());

  std::map<BlobId, uint64_t> model;  // id -> cluster count
  Rng rng(17);
  uint64_t total_clusters = (*store)->total_data_clusters();
  for (int op = 0; op < 2000; op++) {
    switch (rng.Uniform(3)) {
      case 0: {
        uint64_t clusters = rng.Uniform(8);
        StatusOr<BlobId> id = (*store)->CreateBlob(clusters);
        if (id.ok()) {
          model[*id] = clusters;
        }
        break;
      }
      case 1: {
        if (model.empty()) {
          break;
        }
        auto it = model.begin();
        std::advance(it, rng.Uniform(model.size()));
        uint64_t clusters = rng.Uniform(16);
        if ((*store)->ResizeBlob(it->first, clusters).ok()) {
          it->second = clusters;
        }
        break;
      }
      default: {
        if (model.empty()) {
          break;
        }
        auto it = model.begin();
        std::advance(it, rng.Uniform(model.size()));
        ASSERT_TRUE((*store)->DeleteBlob(it->first).ok());
        model.erase(it);
      }
    }
    // Invariant: free + allocated == total.
    uint64_t allocated = 0;
    for (const auto& [id, clusters] : model) {
      allocated += clusters;
    }
    ASSERT_EQ((*store)->free_clusters() + allocated, total_clusters) << "op " << op;
  }
  // Survives a remount with the same shape.
  ASSERT_TRUE((*store)->Sync(ThisVcpu()).ok());
  auto reloaded = Blobstore::Load(ThisVcpu(), &device);
  ASSERT_TRUE(reloaded.ok());
  for (const auto& [id, clusters] : model) {
    EXPECT_EQ(*(*reloaded)->BlobClusterCount(id), clusters) << id;
  }
  EXPECT_EQ((*reloaded)->ListBlobs().size(), model.size());
}

TEST(LsmEdgeTest, EmptyDbAndEmptyValueBehave) {
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 64ull << 20;
  PmemDevice device(dev_options);
  auto store = Blobstore::Format(ThisVcpu(), &device, Blobstore::Options{});
  ASSERT_TRUE(store.ok());
  BlobNamespace ns(store->get());
  KvsEnv::Options env_options;
  env_options.store = store->get();
  env_options.ns = &ns;
  KvsEnv env(env_options);
  LsmDb::Options options;
  options.env = &env;
  auto db = LsmDb::Open(options);
  ASSERT_TRUE(db.ok());

  std::string value;
  bool found = true;
  ASSERT_TRUE((*db)->Get("nothing", &value, &found).ok());
  EXPECT_FALSE(found);
  int visits = 0;
  ASSERT_TRUE((*db)->Scan("", 10, [&](const Slice&, const Slice&) { visits++; }).ok());
  EXPECT_EQ(visits, 0);

  // Empty value round-trips (and survives a flush).
  ASSERT_TRUE((*db)->Put("empty", "").ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Get("empty", &value, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(value, "");

  // Delete of a non-existent key is fine; the tombstone still shadows later
  // lookups after compaction to the bottom level.
  ASSERT_TRUE((*db)->Delete("never-existed").ok());
  ASSERT_TRUE((*db)->Get("never-existed", &value, &found).ok());
  EXPECT_FALSE(found);
}

}  // namespace
}  // namespace aquila
