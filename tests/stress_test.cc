// Concurrency torture harness (ISSUE 3).
//
// Hammers the lock-free structures and the full fault pipeline from many
// threads with adversarial schedules. Every test here is written to be
// TSan-clean under the stress_test_tsan variant: assertions share state only
// through atomics, and the pipeline test partitions msync/madvise slices per
// thread because concurrent msync-vs-store on the *same byte range* is an
// application-level race by mmap semantics, not a runtime bug (DESIGN §8).
//
// Thread counts scale with AQUILA_STRESS_THREADS (default 4): the TSan
// variant runs the same binaries ~10x slower, and CI hosts may have one
// core, so the default stays modest while still forcing interleavings via
// oversubscription.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "src/cache/dirty_tree.h"
#include "src/cache/freelist.h"
#include "src/cache/lockfree_hash.h"
#include "src/cache/page_cache.h"
#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/core/sched.h"
#include "src/storage/nvme_device.h"
#include "src/storage/pmem_device.h"
#include "src/util/cpu.h"
#include "src/util/rng.h"

namespace aquila {
namespace {

// bench/common.h style env knob: AQUILA_STRESS_THREADS overrides the default
// worker count for every test in this file.
int StressThreads() {
  if (const char* s = std::getenv("AQUILA_STRESS_THREADS"); s != nullptr) {
    int n = std::atoi(s);
    if (n >= 1 && n <= CoreRegistry::kMaxCores) {
      return n;
    }
  }
  return 4;
}

// --- LockFreeHash ------------------------------------------------------------------

// Insert/remove/get churn with tombstone reuse: each thread owns a disjoint
// key range and cycles every key through insert -> lookup -> remove, so slots
// accumulate tombstones and inserts must reuse them. Cross-thread readers
// look up foreign keys the whole time; any hit must carry the exact value
// the owner published (value == key * 3 + 1), never kValueUnset garbage and
// never another key's value.
TEST(HashStressTest, ChurnWithTombstoneReuseAndForeignReaders) {
  const int kThreads = StressThreads();
  const uint64_t kKeysPerThread = 512;
  // Load factor <= 0.5 like production (capacity 2x the live-key ceiling).
  LockFreeHash hash(2 * kThreads * kKeysPerThread);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_value{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(t * 7919 + 11);
      uint64_t base = 1 + static_cast<uint64_t>(t) * kKeysPerThread;
      for (int round = 0; round < 200; round++) {
        for (uint64_t k = base; k < base + kKeysPerThread; k++) {
          ASSERT_TRUE(hash.Insert(k, k * 3 + 1));
        }
        // Read back own keys (must hit) and probe a foreign thread's range
        // (may hit or miss depending on its phase; value must be exact).
        for (uint64_t k = base; k < base + kKeysPerThread; k++) {
          uint64_t v = 0;
          ASSERT_TRUE(hash.Lookup(k, &v));
          if (v != k * 3 + 1) {
            bad_value.fetch_add(1);
          }
          uint64_t foreign =
              1 + rng.Uniform(static_cast<uint64_t>(kThreads) * kKeysPerThread);
          if (hash.Lookup(foreign, &v) && v != foreign * 3 + 1) {
            bad_value.fetch_add(1);
          }
        }
        for (uint64_t k = base; k < base + kKeysPerThread; k++) {
          ASSERT_TRUE(hash.Remove(k));
        }
      }
      stop.store(true);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(bad_value.load(), 0u);
  EXPECT_EQ(hash.size(), 0u);
}

// Remove/Get protocol (ISSUE satellite): one writer flips a single hot key
// between present and absent; readers must see exactly {absent} or
// {present, correct value}. A broken two-release protocol in Remove shows up
// here as a stale value (generation mismatch) or as a reader wedged in the
// kValueUnset spin loop (test hangs).
TEST(HashStressTest, RemoveGetProtocolOnHotKey) {
  LockFreeHash hash(64);
  constexpr uint64_t kHotKey = 0x1234;
  const int kReaders = StressThreads();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> stale_values{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; t++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t v = 0;
        if (hash.Lookup(kHotKey, &v)) {
          // Writer only ever publishes odd generation numbers > 0; anything
          // else (kValueUnset leaking through, a removed generation's bits
          // reread after reuse) is a protocol violation.
          if (v == LockFreeHash::kValueUnset || (v & 1) == 0) {
            stale_values.fetch_add(1);
          }
        }
      }
    });
  }

  // The writer also churns neighbour keys so the hot key's slot sits inside
  // a live probe chain with tombstones on both sides.
  for (uint64_t gen = 1; gen < 40001; gen += 2) {
    ASSERT_TRUE(hash.Insert(kHotKey, gen));
    ASSERT_TRUE(hash.Insert(kHotKey + 64, gen));  // same bucket modulo 64
    ASSERT_TRUE(hash.Remove(kHotKey));
    ASSERT_TRUE(hash.Remove(kHotKey + 64));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(stale_values.load(), 0u);
  EXPECT_EQ(hash.size(), 0u);
}

// --- TwoLevelFreelist --------------------------------------------------------------

// Batch migration under contention (ISSUE satellite): tiny core queues force
// constant core->NUMA overflow batches while threads on distinct cores
// drain and refill. The atomic owners array proves no frame is ever handed
// to two threads at once; a sampler thread checks ApproxFree stays
// conservative (never above true capacity) throughout.
TEST(FreelistStressTest, BatchMigrationNoDoubleHandout) {
  constexpr uint32_t kFrames = 2048;
  const int kThreads = StressThreads();
  TwoLevelFreelist::Options options;
  options.core_queue_threshold = 8;  // overflow constantly
  options.move_batch = 4;
  TwoLevelFreelist fl(kFrames, options);
  fl.AddFrames(0, kFrames);

  std::vector<std::atomic<int>> owners(kFrames);
  for (auto& o : owners) {
    o.store(0);
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> double_handout{false};
  std::atomic<bool> approx_overshoot{false};

  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (fl.ApproxFree() > kFrames) {
        approx_overshoot.store(true);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Distinct cores spread across both NUMA nodes so alloc exercises
      // core hit -> NUMA refill -> remote steal, and frees overflow into
      // different NUMA queues.
      int core = t % CoreRegistry::kMaxCores;
      Rng rng(t * 31337 + 5);
      std::vector<FrameId> held;
      held.reserve(256);
      for (int i = 0; i < 30000; i++) {
        if (held.size() < 128 && rng.OneIn(2)) {
          FrameId f = fl.Alloc(core);
          if (f == kInvalidFrame) {
            continue;  // other threads hold everything; fine
          }
          ASSERT_LT(f, kFrames);
          if (owners[f].fetch_add(1, std::memory_order_acq_rel) != 0) {
            double_handout.store(true);
          }
          held.push_back(f);
        } else if (!held.empty()) {
          FrameId f = held.back();
          held.pop_back();
          owners[f].fetch_sub(1, std::memory_order_acq_rel);
          fl.Free(core, f);
        }
      }
      for (FrameId f : held) {
        owners[f].fetch_sub(1, std::memory_order_acq_rel);
        fl.Free(core, f);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_FALSE(double_handout.load()) << "a frame was allocated to two owners";
  EXPECT_FALSE(approx_overshoot.load()) << "ApproxFree exceeded true capacity";
  // Quiescent: every frame is back and the estimate is exact again.
  EXPECT_EQ(fl.ApproxFree(), kFrames);
  // The tiny thresholds guarantee the second level actually engaged.
  EXPECT_GT(fl.stats().batch_moves.load(), 0u);
  EXPECT_GT(fl.stats().numa_hits.load() + fl.stats().remote_hits.load(), 0u);
}

// Per-core exhaustion -> NUMA refill -> remote steal: one hoarder empties
// everything, then threads pinned to cores of the *other* NUMA node free and
// re-alloc so every level of the hierarchy is crossed.
TEST(FreelistStressTest, CrossNumaStealUnderContention) {
  constexpr uint32_t kFrames = 1024;
  const int kThreads = StressThreads();
  TwoLevelFreelist::Options options;
  options.core_queue_threshold = 16;
  options.move_batch = 8;
  TwoLevelFreelist fl(kFrames, options);
  fl.AddFrames(0, kFrames);

  // Drain the world from core 0 (NUMA node 0) — the tail of this loop is
  // remote steals from node 1's queue.
  std::vector<FrameId> hoard;
  FrameId f;
  while ((f = fl.Alloc(0)) != kInvalidFrame) {
    hoard.push_back(f);
  }
  ASSERT_EQ(hoard.size(), kFrames);
  EXPECT_GT(fl.stats().remote_hits.load(), 0u);
  EXPECT_EQ(fl.ApproxFree(), 0u);

  // Give each worker a disjoint slice of the hoard; workers free to odd
  // cores (node 1) and re-alloc from even cores (node 0), so every
  // successful re-alloc crossed core queue -> NUMA queue -> remote node.
  std::vector<std::atomic<int>> owners(kFrames);
  for (uint32_t i = 0; i < kFrames; i++) {
    owners[i].store(1);
  }
  std::atomic<bool> double_handout{false};
  std::vector<std::thread> threads;
  size_t slice = hoard.size() / kThreads;
  for (int t = 0; t < kThreads; t++) {
    size_t begin = t * slice;
    size_t end = (t == kThreads - 1) ? hoard.size() : begin + slice;
    threads.emplace_back([&, t, begin, end] {
      int free_core = 2 * t + 1;   // NUMA node 1
      int alloc_core = 2 * t + 2;  // NUMA node 0, empty core queue
      std::vector<FrameId> mine(hoard.begin() + begin, hoard.begin() + end);
      for (int round = 0; round < 50; round++) {
        for (FrameId id : mine) {
          owners[id].fetch_sub(1, std::memory_order_acq_rel);
          fl.Free(free_core % CoreRegistry::kMaxCores, id);
        }
        mine.clear();
        FrameId got;
        while (mine.size() < static_cast<size_t>(end - begin) &&
               (got = fl.Alloc(alloc_core % CoreRegistry::kMaxCores)) != kInvalidFrame) {
          ASSERT_LT(got, kFrames);
          if (owners[got].fetch_add(1, std::memory_order_acq_rel) != 0) {
            double_handout.store(true);
          }
          mine.push_back(got);
        }
      }
      for (FrameId id : mine) {
        owners[id].fetch_sub(1, std::memory_order_acq_rel);
        fl.Free(free_core % CoreRegistry::kMaxCores, id);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(double_handout.load());
  EXPECT_EQ(fl.ApproxFree(), kFrames);
  EXPECT_GT(fl.stats().batch_moves.load(), 0u);
}

// Aligned-run torture: AllocRun/FreeRun churning against single-frame
// Alloc/Free (which breaks runs under pressure), batch migration, and
// cross-NUMA run steals. Invariants: no frame is ever handed out twice
// (whether as part of a run or as a single), AllocRun results are always
// 2 MB-aligned in the anchor space, ApproxFree never exceeds capacity, and
// at quiescence every frame is back in the freelist.
TEST(FreelistStressTest, AlignedRunChurnNoDoubleHandout) {
  constexpr uint32_t kFrames = 8 * kRunFrames;
  constexpr uint64_t kAlignPage = 0;  // anchor already aligned
  const int kThreads = StressThreads();
  TwoLevelFreelist::Options options;
  options.core_queue_threshold = 16;
  options.move_batch = 8;
  options.carve_runs = true;
  TwoLevelFreelist fl(kFrames, options);
  fl.AddFrames(0, kFrames, kAlignPage);
  ASSERT_EQ(fl.ApproxFree(), kFrames);

  // Deterministic pre-pass: drain every run from core 0 — the runs seeded
  // round-robin onto node 1 come back as cross-NUMA steals — then return
  // them intact.
  {
    std::vector<FrameId> runs;
    FrameId first;
    while ((first = fl.AllocRun(0)) != kInvalidFrame) {
      ASSERT_EQ(first % kRunFrames, 0u);
      runs.push_back(first);
    }
    ASSERT_EQ(runs.size(), kFrames / kRunFrames);
    EXPECT_GT(fl.stats().run_steals.load(), 0u);
    for (FrameId r : runs) {
      fl.FreeRun(0, r);
    }
    ASSERT_EQ(fl.ApproxFree(), kFrames);
  }

  // owners[f] counts how many holders frame f has; it must never exceed 1.
  std::vector<std::atomic<int>> owners(kFrames);
  for (auto& o : owners) {
    o.store(0);
  }
  std::atomic<bool> double_handout{false};
  std::atomic<bool> stop{false};
  auto claim = [&](FrameId id) {
    ASSERT_LT(id, kFrames);
    if (owners[id].fetch_add(1, std::memory_order_acq_rel) != 0) {
      double_handout.store(true);
    }
  };
  auto release = [&](FrameId id) {
    owners[id].fetch_sub(1, std::memory_order_acq_rel);
  };

  // Sampler: ApproxFree is approximate but must never overshoot capacity
  // (run accounting bugs show up as phantom frames).
  std::atomic<bool> overshoot{false};
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (fl.ApproxFree() > kFrames) {
        overshoot.store(true);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      int core = t % CoreRegistry::kMaxCores;
      std::vector<FrameId> runs;    // held intact runs (first frame ids)
      std::vector<FrameId> singles; // held single frames
      for (int round = 0; round < 400; round++) {
        switch (round % 4) {
          case 0: {  // grab a run
            if (runs.size() < 2) {
              FrameId first = fl.AllocRun(core);
              if (first != kInvalidFrame) {
                ASSERT_EQ(first % kRunFrames, 0u);
                for (uint32_t i = 0; i < kRunFrames; i++) {
                  claim(first + i);
                }
                runs.push_back(first);
              }
            }
            break;
          }
          case 1: {  // return a run intact
            if (!runs.empty()) {
              FrameId first = runs.back();
              runs.pop_back();
              for (uint32_t i = 0; i < kRunFrames; i++) {
                release(first + i);
              }
              fl.FreeRun(core, first);
            }
            break;
          }
          case 2: {  // single-frame pressure (breaks runs when queues dry up)
            while (singles.size() < 64) {
              FrameId id = fl.Alloc(core);
              if (id == kInvalidFrame) {
                break;
              }
              claim(id);
              singles.push_back(id);
            }
            break;
          }
          default: {  // drain singles
            for (FrameId id : singles) {
              release(id);
              fl.Free(core, id);
            }
            singles.clear();
            break;
          }
        }
      }
      for (FrameId first : runs) {
        for (uint32_t i = 0; i < kRunFrames; i++) {
          release(first + i);
        }
        fl.FreeRun(core, first);
      }
      for (FrameId id : singles) {
        release(id);
        fl.Free(core, id);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_FALSE(double_handout.load());
  EXPECT_FALSE(overshoot.load());
  for (uint32_t i = 0; i < kFrames; i++) {
    ASSERT_EQ(owners[i].load(), 0) << "frame " << i;
  }
  // Everything came home: singles and surviving runs add back up exactly.
  EXPECT_EQ(fl.ApproxFree(), kFrames);
  EXPECT_GT(fl.stats().run_allocs.load(), 0u);
  EXPECT_GT(fl.stats().run_frees.load(), 0u);
  EXPECT_GT(fl.stats().runs_broken.load(), 0u);
}

// --- DirtyTreeSet + clock sweep ----------------------------------------------------

// Concurrent dirtying vs victim selection vs writeback collection on a real
// PageCache. Every dirty-state transition follows the production protocol:
// the caller first claims the frame (CAS kResident -> kFilling for faults,
// kResident -> kEvicting for eviction/writeback) — MarkDirty/ClearDirty on
// the SAME frame are serialized by that claim, exactly as the fault handler
// and msync do it; what this test hammers is everything the claim does NOT
// serialize: the per-core tree spinlocks, CollectBatch racing Insert/Remove
// of other frames, and the claim CASes themselves. The invariant is
// structural: no crash, no RB-tree corruption, and at quiescence the dirty
// count equals the number of frames whose dirty flag is set.
TEST(DirtyStressTest, ConcurrentDirtyingVsSweepAndCollect) {
  Hypervisor::Options hv_options;
  hv_options.host_memory_bytes = 64ull << 20;
  hv_options.chunk_size = 1ull << 20;
  Hypervisor hv(hv_options);
  int guest = hv.CreateGuest();
  Vcpu vcpu{0};
  PageCache::Options options;
  options.capacity_pages = 512;
  options.max_pages = 512;
  PageCache cache(&hv, guest, vcpu, options);

  // Materialize every frame as resident with a unique key, like a warmed
  // cache. vaddr stays 0 (readahead-style), so SelectVictims may claim any
  // frame without a VMA entry lock — exactly the hostile case the frame
  // ownership-handoff protocol must survive.
  std::vector<FrameId> frames;
  FrameId f;
  while ((f = cache.AllocFrame(vcpu, 0)) != kInvalidFrame) {
    Frame& fr = cache.frame(f);
    fr.key.store(0x100 + f, std::memory_order_relaxed);
    fr.state.store(FrameState::kResident, std::memory_order_release);
    frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 512u);

  const int kThreads = StressThreads();
  std::atomic<bool> stop{false};

  // Sweeper: claim eviction batches like the real evictor (victims arrive in
  // kEvicting), write them "back" (ClearDirty under the claim) and release.
  std::thread sweeper([&] {
    std::vector<FrameId> victims(64);
    while (!stop.load(std::memory_order_acquire)) {
      size_t n = cache.SelectVictims(victims.size(), victims.data());
      for (size_t i = 0; i < n; i++) {
        cache.ClearDirty(victims[i]);
        cache.frame(victims[i]).state.store(FrameState::kResident,
                                            std::memory_order_release);
      }
      std::this_thread::yield();
    }
  });

  // Collector: drain dirty batches (unlinks items, flags stay set), then
  // claim each frame msync-style before clearing its flag. The spin is
  // bounded: every other claimant releases promptly.
  std::thread collector([&] {
    std::vector<FrameId> batch(128);
    int core = 0;
    while (!stop.load(std::memory_order_acquire)) {
      size_t n = cache.CollectDirtyBatch(core, batch.size(), batch.data());
      for (size_t i = 0; i < n; i++) {
        Frame& fr = cache.frame(batch[i]);
        SpinBackoff backoff;
        FrameState expected = FrameState::kResident;
        while (!fr.state.compare_exchange_weak(expected, FrameState::kEvicting,
                                               std::memory_order_acq_rel)) {
          expected = FrameState::kResident;
          backoff.Pause();
        }
        cache.ClearDirty(batch[i]);
        fr.state.store(FrameState::kResident, std::memory_order_release);
      }
      core = (core + 1) % CoreRegistry::kMaxCores;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; t++) {
    workers.emplace_back([&, t] {
      Rng rng(t * 104729 + 7);
      int core = t % CoreRegistry::kMaxCores;
      for (int i = 0; i < 20000; i++) {
        FrameId id = frames[rng.Uniform(frames.size())];
        Frame& fr = cache.frame(id);
        // Fault-path pin: only touch dirty state while owning the frame.
        FrameState expected = FrameState::kResident;
        if (!fr.state.compare_exchange_strong(expected, FrameState::kFilling,
                                              std::memory_order_acq_rel)) {
          continue;  // sweeper/collector owns it right now
        }
        if (rng.OneIn(4)) {
          cache.ClearDirty(id);
        } else {
          cache.MarkDirty(core, id, fr.key.load(std::memory_order_relaxed) * kPageSize);
        }
        fr.state.store(FrameState::kResident, std::memory_order_release);
      }
    });
  }
  for (auto& t : workers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  sweeper.join();
  collector.join();

  // Quiescent consistency: linked items == set dirty flags.
  size_t flagged = 0;
  for (FrameId id : frames) {
    flagged += cache.frame(id).dirty.load(std::memory_order_relaxed);
  }
  EXPECT_EQ(cache.TotalDirty(), flagged);
  // And the structure still works: clear everything, tree must empty out.
  for (FrameId id : frames) {
    cache.ClearDirty(id);
  }
  EXPECT_EQ(cache.TotalDirty(), 0u);
}

// --- Full pipeline -----------------------------------------------------------------

// fault -> evict -> writeback -> shootdown from N threads on a shared map 2x
// the cache, with msync and madvise(DONTNEED) folded into the mix. Each
// thread syncs/drops only its own offset slice (concurrent msync of a range
// another thread is storing to races by *mmap semantics*; the runtime's own
// structures must still be clean, which the TSan variant checks).
TEST(PipelineStressTest, FaultEvictWritebackShootdownTorture) {
  constexpr uint64_t kDeviceBytes = 16ull << 20;
  constexpr uint64_t kCachePages = 1024;  // map is 2x this
  const int kThreads = StressThreads();

  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = kDeviceBytes;
  PmemDevice device(dev_options);
  for (uint64_t i = 0; i < kDeviceBytes; i++) {
    device.dax_base()[i] = static_cast<uint8_t>(i * 131 + 17);
  }

  Aquila::Options options;
  options.hypervisor.host_memory_bytes = 128ull << 20;
  options.hypervisor.chunk_size = 1ull << 20;
  options.cache.capacity_pages = kCachePages;
  options.cache.max_pages = kCachePages * 2;
  options.cache.eviction_batch = 64;
  options.cache.freelist.core_queue_threshold = 64;
  options.cache.freelist.move_batch = 32;
  Aquila runtime(options);

  constexpr uint64_t kBytes = 8ull << 20;  // 2x cache
  DeviceBacking backing(&device, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  const uint64_t pages = kBytes / kPageSize;
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      runtime.EnterThread();
      Rng rng(t * 6151 + 13);
      // Thread-private slice for msync/madvise: pages [t*stride, (t+1)*stride).
      const uint64_t stride = pages / static_cast<uint64_t>(kThreads);
      const uint64_t slice_lo = t * stride * kPageSize;
      const uint64_t slice_bytes = stride * kPageSize;
      for (int i = 0; i < 3000; i++) {
        uint64_t page = rng.Uniform(pages);
        uint64_t off = page * kPageSize + 64 + 8 * static_cast<uint64_t>(t);
        uint64_t value = (static_cast<uint64_t>(t) << 56) | (page * 2654435761ull);
        (*map)->StoreValue<uint64_t>(off, value);
        if ((*map)->LoadValue<uint64_t>(off) != value) {
          corrupt.store(true);
        }
        // Shared read-only byte must keep the device pattern forever, across
        // any number of evictions/writebacks/refills under it.
        uint64_t probe = rng.Uniform(pages) * kPageSize + 4000;
        if ((*map)->LoadValue<uint8_t>(probe) !=
            static_cast<uint8_t>(probe * 131 + 17)) {
          corrupt.store(true);
        }
        if (i % 256 == 255) {
          ASSERT_TRUE((*map)->Sync(slice_lo, slice_bytes).ok());
        }
        if (i % 512 == 511) {
          // Drop a quarter of the slice, then fault it back in sequentially
          // (exercises readahead frames, the lock-free-evictable kind).
          ASSERT_TRUE((*map)
                          ->Advise(slice_lo, slice_bytes / 4, Advice::kDontNeed)
                          .ok());
          ASSERT_TRUE((*map)
                          ->Advise(slice_lo, slice_bytes / 4, Advice::kSequential)
                          .ok());
          for (uint64_t p = 0; p < stride / 4; p++) {
            (*map)->TouchRead(slice_lo + p * kPageSize);
          }
        }
      }
      // Final sync of the slice so Unmap's flush has company.
      ASSERT_TRUE((*map)->Sync(slice_lo, slice_bytes).ok());
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(runtime.fault_stats().evicted_pages.load(), 0u);
  EXPECT_GT(runtime.fault_stats().writeback_pages.load(), 0u);
  ASSERT_TRUE(runtime.Unmap(*map).ok());

  // Durability spot-check: every thread's last store to its slice pages was
  // synced or flushed by Unmap; private slots must be on the device now.
  // (Exact values are rechecked per-thread above; here just confirm the
  // device no longer holds the pristine pattern everywhere.)
  bool any_written = false;
  for (uint64_t page = 0; page < pages && !any_written; page++) {
    uint64_t off = page * kPageSize + 64;
    if (std::memcmp(device.dax_base() + off, "\0\0\0\0\0\0\0\0", 8) != 0) {
      uint8_t pristine[8];
      for (int b = 0; b < 8; b++) {
        pristine[b] = static_cast<uint8_t>((off + b) * 131 + 17);
      }
      any_written = std::memcmp(device.dax_base() + off, pristine, 8) != 0;
    }
  }
  EXPECT_TRUE(any_written);
}

// Cooperative-mode pass over the same pipeline: the async engine plus the
// park-and-resume scheduler (src/core/sched.h). Each thread drives batched
// SubmitBatch/Poll requests — which park at in-flight fills, kWritingBack
// pins, and demand reads — interleaved with blocking stores, msync, and
// madvise churn on its own mapping, all sharing one undersized cache so
// parked fills race eviction and async writebacks from every core. The
// batch surface is per-thread by contract, so each thread gets its own map
// over a disjoint device slice; the cache, freelist, engine queues, and
// scheduler wake path are the shared state under torture.
TEST(PipelineStressTest, CooperativeBatchPipelineTorture) {
  const int kThreads = StressThreads();
  constexpr uint64_t kSliceBytes = 2ull << 20;
  const uint64_t kDeviceBytes = static_cast<uint64_t>(kThreads) * kSliceBytes;

  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = kDeviceBytes;
  PmemDevice device(dev_options);
  for (uint64_t i = 0; i < kDeviceBytes; i++) {
    device.dax_base()[i] = static_cast<uint8_t>(i * 131 + 17);
  }

  Aquila::Options options;
  options.hypervisor.host_memory_bytes = 128ull << 20;
  options.hypervisor.chunk_size = 1ull << 20;
  // Half the combined slices fit: every thread's batches run under
  // eviction pressure and submit async writebacks of other threads' dirt.
  options.cache.capacity_pages = kDeviceBytes / kPageSize / 2;
  options.cache.max_pages = options.cache.capacity_pages * 2;
  options.cache.eviction_batch = 64;
  options.cache.freelist.core_queue_threshold = 64;
  options.cache.freelist.move_batch = 32;
  options.async_writeback = true;
  options.coop_sched = true;
  Aquila runtime(options);

  std::atomic<bool> corrupt{false};
  std::atomic<uint64_t> completions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      runtime.EnterThread();
      DeviceBacking backing(&device, t * kSliceBytes, kSliceBytes);
      StatusOr<MemoryMap*> map =
          runtime.Map(&backing, kSliceBytes, kProtRead | kProtWrite);
      ASSERT_TRUE(map.ok());
      const uint64_t pages = kSliceBytes / kPageSize;
      ASSERT_TRUE((*map)->Advise(0, kSliceBytes, Advice::kRandom).ok());
      Rng rng(t * 6151 + 13);
      std::vector<MmioRequest> batch;
      std::vector<MmioCompletion> done(16);
      for (int i = 0; i < 600; i++) {
        // A batch of random touches: reads park on demand fills, writes
        // additionally hit kWritingBack pins left by eviction.
        batch.clear();
        const uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(8));
        for (uint32_t j = 0; j < n; j++) {
          MmioRequest req;
          req.kind = rng.OneIn(4) ? MmioRequest::Kind::kWrite : MmioRequest::Kind::kRead;
          req.offset = rng.Uniform(pages) * kPageSize;
          req.user_tag = j;
          batch.push_back(req);
        }
        ASSERT_TRUE((*map)->SubmitBatch(std::span(batch.data(), n)).ok());
        uint32_t reaped = 0;
        while (reaped < n) {
          size_t got = (*map)->Poll(std::span(done.data(), n - reaped));
          ASSERT_GT(got, 0u);
          for (size_t c = 0; c < got; c++) {
            if (!done[c].status.ok()) {
              corrupt.store(true);
            }
          }
          reaped += static_cast<uint32_t>(got);
        }
        completions.fetch_add(n, std::memory_order_relaxed);
        // Blocking ops interleaved on the same map: private slot integrity
        // across parks, plus the shared read-only device pattern.
        uint64_t page = rng.Uniform(pages);
        uint64_t off = page * kPageSize + 64;
        uint64_t value = (static_cast<uint64_t>(t) << 56) | (page * 2654435761ull);
        (*map)->StoreValue<uint64_t>(off, value);
        if ((*map)->LoadValue<uint64_t>(off) != value) {
          corrupt.store(true);
        }
        uint64_t probe = rng.Uniform(pages) * kPageSize + 4000;
        uint64_t dev_off = t * kSliceBytes + probe;
        if ((*map)->LoadValue<uint8_t>(probe) !=
            static_cast<uint8_t>(dev_off * 131 + 17)) {
          corrupt.store(true);
        }
        if (i % 128 == 127) {
          ASSERT_TRUE((*map)->Sync(0, kSliceBytes).ok());
        }
        if (i % 192 == 191) {
          ASSERT_TRUE((*map)->Advise(0, kSliceBytes / 4, Advice::kDontNeed).ok());
          ASSERT_TRUE((*map)->Advise(0, kSliceBytes, Advice::kRandom).ok());
        }
      }
      ASSERT_TRUE((*map)->Sync(0, kSliceBytes).ok());
      ASSERT_TRUE(runtime.Unmap(*map).ok());
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(completions.load(), 0u);
  ASSERT_NE(runtime.sched(), nullptr);
  EXPECT_GT(runtime.sched()->parked_total.load(), 0u);
  // Every consumed park was committed; KickParked may cancel (not resume) a
  // committed park whose completion raced in late, so <= rather than ==.
  EXPECT_LE(runtime.sched()->resumed_total.load(), runtime.sched()->parked_total.load());
  EXPECT_GT(runtime.sched()->resumed_total.load(), 0u);
  EXPECT_EQ(runtime.sched()->parked_depth.load(), 0);
  EXPECT_GT(runtime.fault_stats().evicted_pages.load(), 0u);
  EXPECT_GT(runtime.fault_stats().writeback_pages.load(), 0u);
}

// Mask-publication ordering torture (DESIGN.md §10): fault-path
// NoteTlbInsert races eviction/madvise shootdowns that capture each victim
// frame's cpu_mask/tlb_epoch, under mask+gen targeting with more simulated
// active cores than worker threads so both the mask and the generation
// elisions fire constantly. Data integrity proves no shootdown was lost to a
// mis-captured mask (the TLB is statistical, so a stale *entry* is benign,
// but a stale *byte* would mean the eviction pipeline broke); the counter
// invariants pin the fan-out accounting. The TSan variant runs this too —
// the mask protocol is lock-free by design and must be exactly-annotated
// atomics all the way down.
TEST(PipelineStressTest, MaskedShootdownVsFaultInsertTorture) {
  constexpr uint64_t kDeviceBytes = 16ull << 20;
  constexpr uint64_t kCachePages = 1024;  // map is 2x this
  const int kThreads = StressThreads();
  const int kActiveCores = CoreRegistry::kMaxCores / 4;  // 16 > kThreads

  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = kDeviceBytes;
  PmemDevice device(dev_options);
  for (uint64_t i = 0; i < kDeviceBytes; i++) {
    device.dax_base()[i] = static_cast<uint8_t>(i * 197 + 5);
  }

  Aquila::Options options;
  options.hypervisor.host_memory_bytes = 128ull << 20;
  options.hypervisor.chunk_size = 1ull << 20;
  options.cache.capacity_pages = kCachePages;
  options.cache.max_pages = kCachePages * 2;
  options.cache.eviction_batch = 64;
  options.cache.freelist.core_queue_threshold = 64;
  options.cache.freelist.move_batch = 32;
  options.active_cores = kActiveCores;
  options.shootdown_mask_mode = ShootdownMaskMode::kMaskGen;
  Aquila runtime(options);

  constexpr uint64_t kBytes = 8ull << 20;  // 2x cache: constant eviction
  DeviceBacking backing(&device, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  const uint64_t pages = kBytes / kPageSize;
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      runtime.EnterThread();
      Rng rng(t * 9973 + 7);
      const uint64_t stride = pages / static_cast<uint64_t>(kThreads);
      const uint64_t slice_lo = t * stride * kPageSize;
      for (int i = 0; i < 3000; i++) {
        // Hot re-faulting: reads re-Insert TLB entries (setting mask bits)
        // on pages an evictor may be capturing the mask of right now.
        uint64_t probe = rng.Uniform(pages) * kPageSize + 512;
        if ((*map)->LoadValue<uint8_t>(probe) !=
            static_cast<uint8_t>((probe)*197 + 5)) {
          corrupt.store(true);
        }
        if (i % 128 == 127) {
          // madvise(DONTNEED) over a private slice quarter: the third
          // shootdown path capturing masks under claim + entry lock.
          ASSERT_TRUE((*map)
                          ->Advise(slice_lo, stride * kPageSize / 4, Advice::kDontNeed)
                          .ok());
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(runtime.fault_stats().evicted_pages.load(), 0u);
  const uint64_t shootdowns = runtime.tlb().shootdowns();
  EXPECT_GT(shootdowns, 0u);
  // With 4x more simulated cores than faulting threads, most remote targets
  // never mapped anything: the mask protocol must elide them.
  EXPECT_GT(runtime.tlb().ipis_elided(), 0u);
  // Every remote core of every non-empty batch is either sent-to or elided;
  // at least active_cores-1 remotes exist per shootdown (exactly that many
  // when the initiator lies inside [0, active_cores)).
  EXPECT_GE(runtime.tlb().ipis_sent() + runtime.tlb().ipis_elided(),
            shootdowns * static_cast<uint64_t>(kActiveCores - 1));
  ASSERT_TRUE(runtime.Unmap(*map).ok());
}

// The same fault -> evict -> writeback -> shootdown torture with the async
// overlapped pipeline on: eviction submits to the NVMe device queue, dirty
// frames ride in kWritingBack across concurrent faults, completions reap on
// other threads' fault paths, and msync/unmap drain mid-flight. The TSan
// variant runs this too (the whole point: the new states and the engine lock
// must be race-free under adversarial schedules).
TEST(PipelineStressTest, AsyncFaultEvictWritebackTorture) {
  constexpr uint64_t kDeviceBytes = 16ull << 20;
  constexpr uint64_t kCachePages = 1024;  // map is 2x this
  const int kThreads = StressThreads();

  NvmeController::Options ctrl_options;
  ctrl_options.capacity_bytes = kDeviceBytes;
  NvmeController ctrl(ctrl_options);
  NvmeDevice device(&ctrl);
  {
    Vcpu fill_vcpu(0);
    std::vector<uint8_t> buf(kPageSize);
    for (uint64_t page = 0; page < kDeviceBytes / kPageSize; page++) {
      for (uint64_t i = 0; i < kPageSize; i++) {
        buf[i] = static_cast<uint8_t>((page * kPageSize + i) * 131 + 17);
      }
      ASSERT_TRUE(device.Write(fill_vcpu, page * kPageSize,
                               std::span<const uint8_t>(buf)).ok());
    }
  }

  Aquila::Options options;
  options.hypervisor.host_memory_bytes = 128ull << 20;
  options.hypervisor.chunk_size = 1ull << 20;
  options.cache.capacity_pages = kCachePages;
  options.cache.max_pages = kCachePages * 2;
  options.cache.eviction_batch = 64;
  options.cache.freelist.core_queue_threshold = 64;
  options.cache.freelist.move_batch = 32;
  options.async_writeback = true;
  options.async_queue_depth = 32;
  Aquila runtime(options);

  constexpr uint64_t kBytes = 8ull << 20;  // 2x cache
  DeviceBacking backing(&device, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  const uint64_t pages = kBytes / kPageSize;
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      runtime.EnterThread();
      Rng rng(t * 7919 + 29);
      const uint64_t stride = pages / static_cast<uint64_t>(kThreads);
      const uint64_t slice_lo = t * stride * kPageSize;
      const uint64_t slice_bytes = stride * kPageSize;
      for (int i = 0; i < 2000; i++) {
        uint64_t page = rng.Uniform(pages);
        uint64_t off = page * kPageSize + 64 + 8 * static_cast<uint64_t>(t);
        uint64_t value = (static_cast<uint64_t>(t) << 56) | (page * 2654435761ull);
        (*map)->StoreValue<uint64_t>(off, value);
        if ((*map)->LoadValue<uint64_t>(off) != value) {
          corrupt.store(true);
        }
        uint64_t probe = rng.Uniform(pages) * kPageSize + 4000;
        if ((*map)->LoadValue<uint8_t>(probe) !=
            static_cast<uint8_t>(probe * 131 + 17)) {
          corrupt.store(true);
        }
        if (i % 256 == 255) {
          ASSERT_TRUE((*map)->Sync(slice_lo, slice_bytes).ok());
        }
        if (i % 512 == 511) {
          ASSERT_TRUE((*map)
                          ->Advise(slice_lo, slice_bytes / 4, Advice::kDontNeed)
                          .ok());
          ASSERT_TRUE((*map)
                          ->Advise(slice_lo, slice_bytes / 4, Advice::kSequential)
                          .ok());
          for (uint64_t p = 0; p < stride / 4; p++) {
            (*map)->TouchRead(slice_lo + p * kPageSize);
          }
        }
      }
      ASSERT_TRUE((*map)->Sync(slice_lo, slice_bytes).ok());
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(runtime.fault_stats().evicted_pages.load(), 0u);
  EXPECT_GT(runtime.fault_stats().writeback_pages.load(), 0u);
  ASSERT_TRUE(runtime.Unmap(*map).ok());
  // Unmap drained every engine: the cache must be whole again.
  EXPECT_EQ(runtime.cache().ApproxFreeFrames(), kCachePages);
}

}  // namespace
}  // namespace aquila
