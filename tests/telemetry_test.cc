// Tests for src/telemetry: registry metrics and exposition, callback
// aggregation + RAII lifetime, scoped timers, the per-thread trace ring
// (including wraparound), Chrome trace export, and an end-to-end check that
// one registry snapshot covers every instrumented subsystem.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/blob/blob_namespace.h"
#include "src/core/aquila.h"
#include "src/core/backing.h"
#include "src/kvs/block_cache.h"
#include "src/kvs/env.h"
#include "src/kvs/lsm_db.h"
#include "src/storage/pmem_device.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/scoped_timer.h"
#include "src/telemetry/trace.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace {

using telemetry::MetricKind;
using telemetry::Registry;
using telemetry::TraceEventType;
using telemetry::Tracer;

// --- MetricsRegistry ------------------------------------------------------------

TEST(MetricsRegistryTest, CounterAddAndSnapshot) {
  telemetry::Counter* counter = Registry().GetCounter("aquila.test.reg_counter");
  // Get-or-create: the same name yields the same stable pointer.
  EXPECT_EQ(counter, Registry().GetCounter("aquila.test.reg_counter"));
  counter->Reset();
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 42u);

  telemetry::MetricsSnapshot snap = Registry().Snapshot();
  const telemetry::MetricSample* sample = snap.Find("aquila.test.reg_counter");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kCounter);
  EXPECT_EQ(sample->value, 42u);
}

TEST(MetricsRegistryTest, ToTextAndToJsonRenderMetrics) {
  Registry().GetCounter("aquila.test.expo_counter")->Reset();
  Registry().GetCounter("aquila.test.expo_counter")->Add(7);
  Histogram* hist = Registry().GetHistogram("aquila.test.expo_hist");
  hist->Reset();
  hist->Record(100);

  std::string text = Registry().ToText();
  EXPECT_NE(text.find("# TYPE aquila_test_expo_counter counter"), std::string::npos);
  EXPECT_NE(text.find("aquila_test_expo_counter 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aquila_test_expo_hist summary"), std::string::npos);
  EXPECT_NE(text.find("aquila_test_expo_hist_count 1"), std::string::npos);

  std::string json = Registry().ToJson();
  EXPECT_NE(json.find("\"aquila.test.expo_counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"aquila.test.expo_hist\":{\"count\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, SameNameCallbacksAreSummed) {
  std::atomic<uint64_t> a{10};
  std::atomic<uint64_t> b{32};
  {
    telemetry::CallbackGroup group_a;
    telemetry::CallbackGroup group_b;
    group_a.AddCounter("aquila.test.summed_counter", a);
    group_b.AddCounter("aquila.test.summed_counter", b);
    const telemetry::MetricsSnapshot snap = Registry().Snapshot();
    const telemetry::MetricSample* sample = snap.Find("aquila.test.summed_counter");
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->value, 42u);
  }
  // Group destruction unregisters: the name disappears from snapshots.
  EXPECT_EQ(Registry().Snapshot().Find("aquila.test.summed_counter"), nullptr);
}

TEST(MetricsRegistryTest, GaugeCallbackReadsLiveValue) {
  uint64_t live = 5;
  telemetry::CallbackGroup group;
  group.AddGauge("aquila.test.live_gauge", [&live] { return live; });
  ASSERT_NE(Registry().Snapshot().Find("aquila.test.live_gauge"), nullptr);
  EXPECT_EQ(Registry().Snapshot().Find("aquila.test.live_gauge")->value, 5u);
  live = 9;
  EXPECT_EQ(Registry().Snapshot().Find("aquila.test.live_gauge")->value, 9u);
}

TEST(MetricsRegistryTest, ValidNameEnforcesConvention) {
  EXPECT_TRUE(telemetry::MetricsRegistry::ValidName("aquila.core.major_faults"));
  EXPECT_TRUE(telemetry::MetricsRegistry::ValidName("aquila.cache.dirty_insert_tsc"));
  EXPECT_TRUE(telemetry::MetricsRegistry::ValidName("aquila.kvs.block_cache_hits"));
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName("aquila.core"));        // two segments
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName("core.major_faults"));  // wrong root
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName("aquila.Core.faults")); // uppercase
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName("aquila..faults"));     // empty segment
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName(""));
}

TEST(MetricsRegistryTest, ResetOwnedZeroesCountersAndHistograms) {
  telemetry::Counter* counter = Registry().GetCounter("aquila.test.reset_counter");
  Histogram* hist = Registry().GetHistogram("aquila.test.reset_hist");
  counter->Add(3);
  hist->Record(50);
  Registry().ResetOwned();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(hist->Count(), 0u);
}

// --- Scoped timers --------------------------------------------------------------

TEST(ScopedTimerTest, RecordsSimClockDelta) {
  Histogram* hist = Registry().GetHistogram("aquila.test.timer_cycles");
  hist->Reset();
  SimClock clock;
  clock.Charge(CostCategory::kUserWork, 100);  // pre-span time is not counted
  {
    telemetry::ScopedTimer timer(hist, clock);
    clock.Charge(CostCategory::kUserWork, 500);
  }
  ASSERT_EQ(hist->Count(), 1u);
  EXPECT_EQ(hist->Min(), 500u);
  EXPECT_EQ(hist->Max(), 500u);

  const telemetry::MetricsSnapshot snap = Registry().Snapshot();
  const telemetry::MetricSample* sample = snap.Find("aquila.test.timer_cycles");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kHistogram);
  EXPECT_EQ(sample->digest.count, 1u);
  EXPECT_EQ(sample->digest.min, 500u);
}

TEST(ScopedTimerTest, TscTimerRecordsSomething) {
  Histogram* hist = Registry().GetHistogram("aquila.test.tsc_cycles");
  hist->Reset();
  {
    telemetry::ScopedTscTimer timer(hist);
  }
  EXPECT_EQ(hist->Count(), 1u);
}

TEST(ScopedTimerTest, RecordSpanSinceRecordsHistogramAndTrace) {
  Histogram* hist = Registry().GetHistogram("aquila.test.span_cycles");
  hist->Reset();
  Tracer::SetEnabled(true);
  Tracer::Reset();
  SimClock clock;
  const uint64_t start = clock.Now();
  clock.Charge(CostCategory::kUserWork, 250);
  telemetry::RecordSpanSince(hist, TraceEventType::kMsync, clock, start, 17);
  EXPECT_EQ(hist->Count(), 1u);
  EXPECT_EQ(hist->Max(), 250u);
  std::vector<telemetry::TraceEvent> events = Tracer::CollectAll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kMsync);
  EXPECT_EQ(events[0].duration_cycles, 250u);
  EXPECT_EQ(events[0].arg, 17u);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

// --- Trace ring -----------------------------------------------------------------

TEST(TracerTest, DisabledRecordIsDropped) {
  Tracer::SetEnabled(false);
  Tracer::Reset();
  const uint64_t before = Tracer::TotalRecorded();
  Tracer::Record(TraceEventType::kVmcall, 1, 2, 3);
  EXPECT_EQ(Tracer::TotalRecorded(), before);
  EXPECT_TRUE(Tracer::CollectAll().empty());
}

TEST(TracerTest, TraceSpanRecordsCompleteEvent) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  SimClock clock;
  clock.Charge(CostCategory::kUserWork, 100);
  {
    telemetry::TraceSpan span(TraceEventType::kShootdown, clock, 7);
    clock.Charge(CostCategory::kUserWork, 250);
  }
  std::vector<telemetry::TraceEvent> events = Tracer::CollectAll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kShootdown);
  EXPECT_EQ(events[0].start_cycles, 100u);
  EXPECT_EQ(events[0].duration_cycles, 250u);
  EXPECT_EQ(events[0].arg, 7u);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

TEST(TracerTest, RingWraparoundKeepsNewestEvents) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  const uint64_t extra = 10;
  for (uint64_t i = 0; i < Tracer::kRingCapacity + extra; i++) {
    Tracer::Record(TraceEventType::kVmcall, i, 1, i);
  }
  EXPECT_EQ(Tracer::TotalRecorded(), Tracer::kRingCapacity + extra);
  std::vector<telemetry::TraceEvent> events = Tracer::CollectAll();
  ASSERT_EQ(events.size(), Tracer::kRingCapacity);
  // The oldest `extra` events were overwritten; retention is oldest-first.
  EXPECT_EQ(events.front().arg, extra);
  EXPECT_EQ(events.back().arg, Tracer::kRingCapacity + extra - 1);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

TEST(TracerTest, DumpChromeTraceIsStructurallyValid) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  Tracer::Record(TraceEventType::kFaultMajor, 2400, 2400, 0xabc);
  Tracer::Record(TraceEventType::kDeviceRead, 4800, 1200, 4096);
  std::string json = Tracer::DumpChromeTrace(/*cycles_per_us=*/2400);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault.major\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"device.read\""), std::string::npos);
  // 2400 cycles at 2400 cycles/us = 1 microsecond.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

// --- End-to-end coverage --------------------------------------------------------

// Exercises the full runtime (faults, evictions, device I/O, TLB, KVS) and
// asserts ONE exposition call reports metrics from every major subsystem.
TEST(TelemetryCoverageTest, OneSnapshotCoversAllSubsystems) {
  // An Aquila runtime small enough that touching 8 MB forces evictions.
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 64ull << 20;
  auto device = std::make_unique<PmemDevice>(dev_options);

  Aquila::Options options;
  options.hypervisor.host_memory_bytes = 256ull << 20;
  options.hypervisor.chunk_size = 1ull << 20;
  options.cache.capacity_pages = 1024;  // 4 MB cache
  options.cache.max_pages = 4096;
  options.cache.eviction_batch = 64;
  options.cache.freelist.core_queue_threshold = 64;
  options.cache.freelist.move_batch = 32;
  auto runtime = std::make_unique<Aquila>(options);

  constexpr uint64_t kMapBytes = 16ull << 20;
  DeviceBacking backing(device.get(), 0, kMapBytes);
  StatusOr<MemoryMap*> map = runtime->Map(&backing, kMapBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  for (uint64_t page = 0; page < (8ull << 20) / kPageSize; page++) {
    (*map)->TouchWrite(page * kPageSize);
  }
  (*map)->TouchRead(0);  // second touch of a resident page: TLB traffic
  ASSERT_TRUE(runtime->Unmap(*map).ok());

  // A small LSM store over a blobstore on a second device.
  PmemDevice::Options kvs_dev_options;
  kvs_dev_options.capacity_bytes = 256ull << 20;
  auto kvs_device = std::make_unique<PmemDevice>(kvs_dev_options);
  Blobstore::Options bs_options;
  bs_options.cluster_size = 64 * 1024;
  bs_options.metadata_bytes = 4ull << 20;
  auto store = Blobstore::Format(ThisVcpu(), kvs_device.get(), bs_options);
  ASSERT_TRUE(store.ok());
  BlobNamespace ns(store->get());
  KvsEnv::Options env_options;
  env_options.store = store->get();
  env_options.ns = &ns;
  env_options.read_path = ReadPath::kDirectIo;
  KvsEnv env(env_options);
  BlockCache cache(BlockCache::Options{});
  LsmDb::Options db_options;
  db_options.env = &env;
  db_options.block_cache = &cache;
  db_options.memtable_bytes = 64 * 1024;
  auto db = LsmDb::Open(db_options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE((*db)->Put("key" + std::to_string(i), std::string(100, 'v')).ok());
  }
  std::string value;
  bool found;
  ASSERT_TRUE((*db)->Get("key7", &value, &found).ok());

  // One exposition call; every subsystem must appear.
  std::string text = Registry().ToText();
  for (const char* needle : {
           "aquila_core_major_faults",     // core fault path
           "aquila_core_evicted_pages",    // core eviction path
           "aquila_cache_lookups",         // page cache
           "aquila_freelist_free_frames",  // freelist gauge
           "aquila_tlb_hits",              // TLB
           "aquila_vmx_ring0_exceptions",  // vCPU trap accounting
           "aquila_storage_reads",         // block devices
           "aquila_kvs_puts",              // LSM KV store
           "aquila_kvs_block_cache_hits",  // KVS block cache
       }) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing metric: " << needle;
  }

  // And the instrumented paths actually fired.
  const telemetry::MetricsSnapshot snap = Registry().Snapshot();
  EXPECT_GT(snap.Find("aquila.core.major_faults")->value, 0u);
  EXPECT_GT(snap.Find("aquila.core.evicted_pages")->value, 0u);
  EXPECT_GT(snap.Find("aquila.storage.reads")->value, 0u);
  EXPECT_GT(snap.Find("aquila.kvs.puts")->value, 1999u);
  EXPECT_GT(snap.Find("aquila.core.fault_major_cycles")->digest.count, 0u);
  EXPECT_GT(snap.Find("aquila.storage.read_cycles")->digest.count, 0u);
}

}  // namespace
}  // namespace aquila
