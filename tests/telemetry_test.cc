// Tests for src/telemetry: registry metrics and exposition, callback
// aggregation + RAII lifetime, scoped timers, the per-thread trace ring
// (including wraparound), Chrome trace export, and an end-to-end check that
// one registry snapshot covers every instrumented subsystem.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "src/blob/blob_namespace.h"
#include "src/core/aquila.h"
#include "src/core/backing.h"
#include "src/kvs/block_cache.h"
#include "src/kvs/env.h"
#include "src/kvs/lsm_db.h"
#include "src/storage/pmem_device.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/scoped_timer.h"
#include "src/telemetry/trace.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace {

using telemetry::MetricKind;
using telemetry::Registry;
using telemetry::TraceEventType;
using telemetry::Tracer;

// --- MetricsRegistry ------------------------------------------------------------

TEST(MetricsRegistryTest, CounterAddAndSnapshot) {
  telemetry::Counter* counter = Registry().GetCounter("aquila.test.reg_counter");
  // Get-or-create: the same name yields the same stable pointer.
  EXPECT_EQ(counter, Registry().GetCounter("aquila.test.reg_counter"));
  counter->Reset();
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 42u);

  telemetry::MetricsSnapshot snap = Registry().Snapshot();
  const telemetry::MetricSample* sample = snap.Find("aquila.test.reg_counter");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kCounter);
  EXPECT_EQ(sample->value, 42u);
}

TEST(MetricsRegistryTest, ToTextAndToJsonRenderMetrics) {
  Registry().GetCounter("aquila.test.expo_counter")->Reset();
  Registry().GetCounter("aquila.test.expo_counter")->Add(7);
  Histogram* hist = Registry().GetHistogram("aquila.test.expo_hist");
  hist->Reset();
  hist->Record(100);

  std::string text = Registry().ToText();
  EXPECT_NE(text.find("# TYPE aquila_test_expo_counter counter"), std::string::npos);
  EXPECT_NE(text.find("aquila_test_expo_counter 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aquila_test_expo_hist summary"), std::string::npos);
  EXPECT_NE(text.find("aquila_test_expo_hist_count 1"), std::string::npos);

  std::string json = Registry().ToJson();
  EXPECT_NE(json.find("\"aquila.test.expo_counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"aquila.test.expo_hist\":{\"count\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// Validates the Prometheus exposition format line by line: every series is
// introduced by a `# HELP` comment (carrying the original dotted name, which
// the '.' -> '_' mapping loses) followed by `# TYPE`, then only sample lines
// for that series until the next HELP. A scraper that trips over a stray
// line rejects the whole scrape, so the shape is a contract.
TEST(MetricsRegistryTest, ToTextExpositionFormatIsWellFormed) {
  Registry().GetCounter("aquila.test.fmt_counter")->Reset();
  Registry().GetCounter("aquila.test.fmt_counter")->Add(3);
  Histogram* hist = Registry().GetHistogram("aquila.test.fmt_hist");
  hist->Reset();
  hist->Record(100);
  uint64_t live = 11;
  telemetry::CallbackGroup group;
  group.AddGauge("aquila.test.fmt_gauge", [&live] { return live; });

  const std::string text = Registry().ToText();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');

  std::vector<std::string> lines;
  for (size_t pos = 0; pos < text.size();) {
    size_t eol = text.find('\n', pos);
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }

  std::string current;  // prom name introduced by the last HELP
  bool expect_type = false;
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# HELP ", 0) == 0) {
      ASSERT_FALSE(expect_type) << "HELP not followed by TYPE: " << line;
      current = line.substr(7, line.find(' ', 7) - 7);
      // The help text names the dotted original: aquila_x_y <- aquila.x.y.
      std::string dotted = current;
      for (char& c : dotted) {
        if (c == '_') {
          c = '.';
        }
      }
      EXPECT_NE(line.find("Aquila metric "), std::string::npos) << line;
      expect_type = true;
    } else if (line.rfind("# TYPE ", 0) == 0) {
      ASSERT_TRUE(expect_type) << "TYPE without preceding HELP: " << line;
      expect_type = false;
      const std::string rest = line.substr(7);
      ASSERT_EQ(rest.rfind(current + " ", 0), 0u)
          << "TYPE for " << rest << " under HELP for " << current;
      const std::string type = rest.substr(current.size() + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "summary") << line;
    } else {
      ASSERT_FALSE(expect_type) << "sample line between HELP and TYPE: " << line;
      ASSERT_FALSE(current.empty()) << "sample line before any HELP: " << line;
      // Sample lines belong to the current series: name, name{quantile=...},
      // name_sum or name_count, then a space and the value.
      ASSERT_EQ(line.rfind(current, 0), 0u) << line << " under series " << current;
      const char next = line[current.size()];
      EXPECT_TRUE(next == ' ' || next == '{' || next == '_') << line;
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos);
      for (size_t i = space + 1; i < line.size(); i++) {
        EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i]))) << line;
      }
    }
  }
  EXPECT_FALSE(expect_type) << "dangling HELP at end of exposition";

  // The three flavors registered above rendered with the right types.
  EXPECT_NE(text.find("# HELP aquila_test_fmt_counter Aquila metric "
                      "aquila.test.fmt_counter (monotonic counter).\n"
                      "# TYPE aquila_test_fmt_counter counter\n"
                      "aquila_test_fmt_counter 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP aquila_test_fmt_gauge Aquila metric "
                      "aquila.test.fmt_gauge (point-in-time gauge).\n"
                      "# TYPE aquila_test_fmt_gauge gauge\n"
                      "aquila_test_fmt_gauge 11\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP aquila_test_fmt_hist Aquila metric "
                      "aquila.test.fmt_hist (latency summary, simulated cycles).\n"
                      "# TYPE aquila_test_fmt_hist summary\n"
                      "aquila_test_fmt_hist{quantile=\"0.5\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("aquila_test_fmt_hist_sum 100\naquila_test_fmt_hist_count 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SameNameCallbacksAreSummed) {
  std::atomic<uint64_t> a{10};
  std::atomic<uint64_t> b{32};
  {
    telemetry::CallbackGroup group_a;
    telemetry::CallbackGroup group_b;
    group_a.AddCounter("aquila.test.summed_counter", a);
    group_b.AddCounter("aquila.test.summed_counter", b);
    const telemetry::MetricsSnapshot snap = Registry().Snapshot();
    const telemetry::MetricSample* sample = snap.Find("aquila.test.summed_counter");
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->value, 42u);
  }
  // Group destruction unregisters: the name disappears from snapshots.
  EXPECT_EQ(Registry().Snapshot().Find("aquila.test.summed_counter"), nullptr);
}

TEST(MetricsRegistryTest, GaugeCallbackReadsLiveValue) {
  uint64_t live = 5;
  telemetry::CallbackGroup group;
  group.AddGauge("aquila.test.live_gauge", [&live] { return live; });
  ASSERT_NE(Registry().Snapshot().Find("aquila.test.live_gauge"), nullptr);
  EXPECT_EQ(Registry().Snapshot().Find("aquila.test.live_gauge")->value, 5u);
  live = 9;
  EXPECT_EQ(Registry().Snapshot().Find("aquila.test.live_gauge")->value, 9u);
}

TEST(MetricsRegistryTest, ValidNameEnforcesConvention) {
  EXPECT_TRUE(telemetry::MetricsRegistry::ValidName("aquila.core.major_faults"));
  EXPECT_TRUE(telemetry::MetricsRegistry::ValidName("aquila.cache.dirty_insert_tsc"));
  EXPECT_TRUE(telemetry::MetricsRegistry::ValidName("aquila.kvs.block_cache_hits"));
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName("aquila.core"));        // two segments
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName("core.major_faults"));  // wrong root
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName("aquila.Core.faults")); // uppercase
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName("aquila..faults"));     // empty segment
  EXPECT_FALSE(telemetry::MetricsRegistry::ValidName(""));
}

TEST(MetricsRegistryTest, ResetOwnedZeroesCountersAndHistograms) {
  telemetry::Counter* counter = Registry().GetCounter("aquila.test.reset_counter");
  Histogram* hist = Registry().GetHistogram("aquila.test.reset_hist");
  counter->Add(3);
  hist->Record(50);
  Registry().ResetOwned();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(hist->Count(), 0u);
}

// --- Scoped timers --------------------------------------------------------------

TEST(ScopedTimerTest, RecordsSimClockDelta) {
  Histogram* hist = Registry().GetHistogram("aquila.test.timer_cycles");
  hist->Reset();
  SimClock clock;
  clock.Charge(CostCategory::kUserWork, 100);  // pre-span time is not counted
  {
    telemetry::ScopedTimer timer(hist, clock);
    clock.Charge(CostCategory::kUserWork, 500);
  }
  ASSERT_EQ(hist->Count(), 1u);
  EXPECT_EQ(hist->Min(), 500u);
  EXPECT_EQ(hist->Max(), 500u);

  const telemetry::MetricsSnapshot snap = Registry().Snapshot();
  const telemetry::MetricSample* sample = snap.Find("aquila.test.timer_cycles");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kHistogram);
  EXPECT_EQ(sample->digest.count, 1u);
  EXPECT_EQ(sample->digest.min, 500u);
}

TEST(ScopedTimerTest, TscTimerRecordsSomething) {
  Histogram* hist = Registry().GetHistogram("aquila.test.tsc_cycles");
  hist->Reset();
  {
    telemetry::ScopedTscTimer timer(hist);
  }
  EXPECT_EQ(hist->Count(), 1u);
}

TEST(ScopedTimerTest, RecordSpanSinceRecordsHistogramAndTrace) {
  Histogram* hist = Registry().GetHistogram("aquila.test.span_cycles");
  hist->Reset();
  Tracer::SetEnabled(true);
  Tracer::Reset();
  SimClock clock;
  const uint64_t start = clock.Now();
  clock.Charge(CostCategory::kUserWork, 250);
  telemetry::RecordSpanSince(hist, TraceEventType::kMsync, clock, start, 17);
  EXPECT_EQ(hist->Count(), 1u);
  EXPECT_EQ(hist->Max(), 250u);
  std::vector<telemetry::TraceEvent> events = Tracer::CollectAll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kMsync);
  EXPECT_EQ(events[0].duration_cycles, 250u);
  EXPECT_EQ(events[0].arg, 17u);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

// --- Trace ring -----------------------------------------------------------------

TEST(TracerTest, DisabledRecordIsDropped) {
  Tracer::SetEnabled(false);
  Tracer::Reset();
  const uint64_t before = Tracer::TotalRecorded();
  Tracer::Record(TraceEventType::kVmcall, 1, 2, 3);
  EXPECT_EQ(Tracer::TotalRecorded(), before);
  EXPECT_TRUE(Tracer::CollectAll().empty());
}

TEST(TracerTest, TraceSpanRecordsCompleteEvent) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  SimClock clock;
  clock.Charge(CostCategory::kUserWork, 100);
  {
    telemetry::TraceSpan span(TraceEventType::kShootdown, clock, 7);
    clock.Charge(CostCategory::kUserWork, 250);
  }
  std::vector<telemetry::TraceEvent> events = Tracer::CollectAll();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, TraceEventType::kShootdown);
  EXPECT_EQ(events[0].start_cycles, 100u);
  EXPECT_EQ(events[0].duration_cycles, 250u);
  EXPECT_EQ(events[0].arg, 7u);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

TEST(TracerTest, RingWraparoundKeepsNewestEvents) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  const uint64_t extra = 10;
  for (uint64_t i = 0; i < Tracer::kRingCapacity + extra; i++) {
    Tracer::Record(TraceEventType::kVmcall, i, 1, i);
  }
  EXPECT_EQ(Tracer::TotalRecorded(), Tracer::kRingCapacity + extra);
  std::vector<telemetry::TraceEvent> events = Tracer::CollectAll();
  ASSERT_EQ(events.size(), Tracer::kRingCapacity);
  // The oldest `extra` events were overwritten; retention is oldest-first.
  EXPECT_EQ(events.front().arg, extra);
  EXPECT_EQ(events.back().arg, Tracer::kRingCapacity + extra - 1);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

// Ring wraparound is silent data loss unless it is surfaced: the registry
// counter totals the overwritten events and the Chrome dump carries a
// per-thread metadata record so a viewer knows the window is truncated.
TEST(TracerTest, WraparoundSurfacesDroppedEvents) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  const uint64_t baseline = Tracer::DroppedEvents();
  EXPECT_EQ(baseline, 0u);  // Reset emptied every ring
  const uint64_t extra = 25;
  for (uint64_t i = 0; i < Tracer::kRingCapacity + extra; i++) {
    Tracer::Record(TraceEventType::kVmcall, i, 1, i);
  }
  EXPECT_EQ(Tracer::DroppedEvents(), extra);
  const telemetry::MetricSample* sample =
      Registry().Snapshot().Find("aquila.trace.dropped_events");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kCounter);
  EXPECT_EQ(sample->value, extra);

  std::string json = Tracer::DumpChromeTrace(/*cycles_per_us=*/2400);
  EXPECT_NE(json.find("\"name\":\"trace.dropped_events\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":" + std::to_string(extra)), std::string::npos);

  // A ring that did not wrap reports nothing.
  Tracer::Reset();
  Tracer::Record(TraceEventType::kVmcall, 1, 1, 1);
  EXPECT_EQ(Tracer::DroppedEvents(), 0u);
  EXPECT_EQ(Tracer::DumpChromeTrace(2400).find("trace.dropped_events"), std::string::npos);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

TEST(TracerTest, DumpChromeTraceIsStructurallyValid) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  Tracer::Record(TraceEventType::kFaultMajor, 2400, 2400, 0xabc);
  Tracer::Record(TraceEventType::kDeviceRead, 4800, 1200, 4096);
  std::string json = Tracer::DumpChromeTrace(/*cycles_per_us=*/2400);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault.major\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"device.read\""), std::string::npos);
  // 2400 cycles at 2400 cycles/us = 1 microsecond.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

// --- End-to-end coverage --------------------------------------------------------

// Exercises the full runtime (faults, evictions, device I/O, TLB, KVS) and
// asserts ONE exposition call reports metrics from every major subsystem.
TEST(TelemetryCoverageTest, OneSnapshotCoversAllSubsystems) {
  // An Aquila runtime small enough that touching 8 MB forces evictions.
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 64ull << 20;
  auto device = std::make_unique<PmemDevice>(dev_options);

  Aquila::Options options;
  options.hypervisor.host_memory_bytes = 256ull << 20;
  options.hypervisor.chunk_size = 1ull << 20;
  options.cache.capacity_pages = 1024;  // 4 MB cache
  options.cache.max_pages = 4096;
  options.cache.eviction_batch = 64;
  options.cache.freelist.core_queue_threshold = 64;
  options.cache.freelist.move_batch = 32;
  auto runtime = std::make_unique<Aquila>(options);

  constexpr uint64_t kMapBytes = 16ull << 20;
  DeviceBacking backing(device.get(), 0, kMapBytes);
  StatusOr<MemoryMap*> map = runtime->Map(&backing, kMapBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  for (uint64_t page = 0; page < (8ull << 20) / kPageSize; page++) {
    (*map)->TouchWrite(page * kPageSize);
  }
  (*map)->TouchRead(0);  // second touch of a resident page: TLB traffic
  ASSERT_TRUE(runtime->Unmap(*map).ok());

  // A small LSM store over a blobstore on a second device.
  PmemDevice::Options kvs_dev_options;
  kvs_dev_options.capacity_bytes = 256ull << 20;
  auto kvs_device = std::make_unique<PmemDevice>(kvs_dev_options);
  Blobstore::Options bs_options;
  bs_options.cluster_size = 64 * 1024;
  bs_options.metadata_bytes = 4ull << 20;
  auto store = Blobstore::Format(ThisVcpu(), kvs_device.get(), bs_options);
  ASSERT_TRUE(store.ok());
  BlobNamespace ns(store->get());
  KvsEnv::Options env_options;
  env_options.store = store->get();
  env_options.ns = &ns;
  env_options.read_path = ReadPath::kDirectIo;
  KvsEnv env(env_options);
  BlockCache cache(BlockCache::Options{});
  LsmDb::Options db_options;
  db_options.env = &env;
  db_options.block_cache = &cache;
  db_options.memtable_bytes = 64 * 1024;
  auto db = LsmDb::Open(db_options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE((*db)->Put("key" + std::to_string(i), std::string(100, 'v')).ok());
  }
  std::string value;
  bool found;
  ASSERT_TRUE((*db)->Get("key7", &value, &found).ok());

  // One exposition call; every subsystem must appear.
  std::string text = Registry().ToText();
  for (const char* needle : {
           "aquila_core_major_faults",     // core fault path
           "aquila_core_evicted_pages",    // core eviction path
           "aquila_cache_lookups",         // page cache
           "aquila_freelist_free_frames",  // freelist gauge
           "aquila_tlb_hits",              // TLB
           "aquila_vmx_ring0_exceptions",  // vCPU trap accounting
           "aquila_storage_reads",         // block devices
           "aquila_kvs_puts",              // LSM KV store
           "aquila_kvs_block_cache_hits",  // KVS block cache
       }) {
    EXPECT_NE(text.find(needle), std::string::npos) << "missing metric: " << needle;
  }

  // And the instrumented paths actually fired.
  const telemetry::MetricsSnapshot snap = Registry().Snapshot();
  EXPECT_GT(snap.Find("aquila.core.major_faults")->value, 0u);
  EXPECT_GT(snap.Find("aquila.core.evicted_pages")->value, 0u);
  EXPECT_GT(snap.Find("aquila.storage.reads")->value, 0u);
  EXPECT_GT(snap.Find("aquila.kvs.puts")->value, 1999u);
  EXPECT_GT(snap.Find("aquila.core.fault_major_cycles")->digest.count, 0u);
  EXPECT_GT(snap.Find("aquila.storage.read_cycles")->digest.count, 0u);
}

}  // namespace
}  // namespace aquila
