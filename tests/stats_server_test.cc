// Tests for src/telemetry/stats_server.h: the live HTTP stats endpoint.
//
// Starts a real server on an ephemeral loopback port and exercises all four
// routes with a blocking socket client, plus the error paths (unknown
// route, non-GET method, port already in use) and the Aquila option that
// wires the server into the runtime.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include "src/core/aquila.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/telemetry/stats_server.h"
#include "src/telemetry/trace.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace {

using telemetry::Registry;
using telemetry::SpanCollector;
using telemetry::StatsServer;
using telemetry::Tracer;

// Blocking HTTP/1.0 GET against 127.0.0.1:port; returns the full response
// (headers + body), or "" on connect failure.
std::string HttpRequest(int port, const std::string& request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return HttpRequest(port, "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n");
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

std::unique_ptr<StatsServer> StartEphemeral() {
  StatsServer::Options options;
  options.port = 0;  // ephemeral
  std::string error;
  std::unique_ptr<StatsServer> server = StatsServer::Start(options, &error);
  EXPECT_NE(server, nullptr) << error;
  return server;
}

TEST(StatsServerTest, MetricsRouteServesPrometheusText) {
  Registry().GetCounter("aquila.test.http_counter")->Reset();
  Registry().GetCounter("aquila.test.http_counter")->Add(5);
  auto server = StartEphemeral();
  ASSERT_NE(server, nullptr);
  EXPECT_GT(server->port(), 0);

  const std::string response = HttpGet(server->port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("# HELP aquila_test_http_counter"), std::string::npos);
  EXPECT_NE(body.find("# TYPE aquila_test_http_counter counter"), std::string::npos);
  EXPECT_NE(body.find("aquila_test_http_counter 5"), std::string::npos);
}

TEST(StatsServerTest, MetricsJsonRouteServesRegistryJson) {
  Registry().GetCounter("aquila.test.http_json_counter")->Reset();
  Registry().GetCounter("aquila.test.http_json_counter")->Add(9);
  auto server = StartEphemeral();
  ASSERT_NE(server, nullptr);

  const std::string response = HttpGet(server->port(), "/metrics.json");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"), std::string::npos);
  const std::string body = Body(response);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("\"aquila.test.http_json_counter\":9"), std::string::npos);
}

TEST(StatsServerTest, TracesRouteServesChromeTrace) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  Tracer::Record(telemetry::TraceEventType::kFaultMajor, 2400, 2400, 0x1);
  auto server = StartEphemeral();
  ASSERT_NE(server, nullptr);

  const std::string body = Body(HttpGet(server->port(), "/traces"));
  EXPECT_EQ(body.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(body.find("\"name\":\"fault.major\""), std::string::npos);
  Tracer::Reset();
  Tracer::SetEnabled(false);
}

TEST(StatsServerTest, SlowRouteServesSpanTrees) {
  SpanCollector::Options options;
  options.sample_every = 1;
  SpanCollector::Global().Configure(options);
  SpanCollector::Global().Reset();
  SimClock clock;
  {
    telemetry::RequestSpan root(clock, telemetry::SpanOp::kFaultMajor);
    telemetry::ChildSpan device(clock, telemetry::SpanPhase::kDevice);
    clock.Charge(CostCategory::kDeviceIo, 1200);
  }
  auto server = StartEphemeral();
  ASSERT_NE(server, nullptr);

  const std::string response = HttpGet(server->port(), "/slow");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_EQ(body.rfind("{\"attribution\":{", 0), 0u);
  EXPECT_NE(body.find("\"slow\":["), std::string::npos);
  EXPECT_NE(body.find("\"phase\":\"device\""), std::string::npos);

  SpanCollector::Global().Configure(SpanCollector::Options{});
  SpanCollector::Global().Reset();
}

TEST(StatsServerTest, UnknownRouteIs404) {
  auto server = StartEphemeral();
  ASSERT_NE(server, nullptr);
  const std::string response = HttpGet(server->port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.0 404 Not Found"), std::string::npos);
  // The 404 body lists what IS servable.
  EXPECT_NE(response.find("/metrics"), std::string::npos);
}

TEST(StatsServerTest, NonGetIs405) {
  auto server = StartEphemeral();
  ASSERT_NE(server, nullptr);
  const std::string response =
      HttpRequest(server->port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 405"), std::string::npos);
}

TEST(StatsServerTest, QueryStringIsIgnoredInRouting) {
  auto server = StartEphemeral();
  ASSERT_NE(server, nullptr);
  const std::string response = HttpGet(server->port(), "/metrics?foo=bar");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST(StatsServerTest, OccupiedPortFailsWithError) {
  auto server = StartEphemeral();
  ASSERT_NE(server, nullptr);
  StatsServer::Options options;
  options.port = server->port();
  std::string error;
  std::unique_ptr<StatsServer> second = StatsServer::Start(options, &error);
  EXPECT_EQ(second, nullptr);
  EXPECT_NE(error.find("bind"), std::string::npos);
}

TEST(StatsServerTest, ServerSurvivesManySequentialRequests) {
  auto server = StartEphemeral();
  ASSERT_NE(server, nullptr);
  for (int i = 0; i < 20; i++) {
    const std::string response = HttpGet(server->port(), "/metrics.json");
    ASSERT_NE(response.find("200 OK"), std::string::npos) << "request " << i;
  }
}

// Options::stats_server_port wires the server into the runtime: port 0
// binds an ephemeral port reachable while the runtime lives.
TEST(StatsServerTest, AquilaOptionStartsAndStopsTheServer) {
  int port = 0;
  {
    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 64ull << 20;
    options.hypervisor.chunk_size = 1ull << 20;
    options.cache.capacity_pages = 256;
    options.cache.max_pages = 1024;
    options.stats_server_port = 0;
    auto runtime = std::make_unique<Aquila>(options);
    ASSERT_NE(runtime->stats_server(), nullptr);
    port = runtime->stats_server()->port();
    EXPECT_GT(port, 0);
    const std::string response = HttpGet(port, "/metrics");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("aquila_core_major_faults"), std::string::npos);
  }
  // Destroying the runtime stops the server; the port no longer answers.
  EXPECT_EQ(HttpGet(port, "/metrics"), "");
}

}  // namespace
}  // namespace aquila
