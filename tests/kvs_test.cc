// Tests for src/kvs: memtable, bloom filter, block cache, SST files, the
// LSM store (both read paths), and the Kreon mmio store.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "src/core/aquila.h"
#include "src/kvs/block_cache.h"
#include "src/kvs/bloom.h"
#include "src/kvs/kreon_db.h"
#include "src/kvs/lsm_db.h"
#include "src/kvs/memtable.h"
#include "src/kvs/sst.h"
#include "src/storage/pmem_device.h"
#include "src/util/rng.h"

namespace aquila {
namespace {

// --- MemTable -------------------------------------------------------------------

TEST(MemTableTest, PutGetNewestWins) {
  MemTable table;
  table.Add(1, ValueType::kValue, "key1", "v1");
  table.Add(2, ValueType::kValue, "key1", "v2");
  std::string value;
  bool deleted;
  ASSERT_TRUE(table.Get("key1", &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "v2");
  EXPECT_FALSE(table.Get("key2", &value, &deleted));
}

TEST(MemTableTest, DeletionShadowsValue) {
  MemTable table;
  table.Add(1, ValueType::kValue, "k", "v");
  table.Add(2, ValueType::kDeletion, "k", "");
  std::string value;
  bool deleted;
  ASSERT_TRUE(table.Get("k", &value, &deleted));
  EXPECT_TRUE(deleted);
}

TEST(MemTableTest, IterationSortedByKeyThenNewest) {
  MemTable table;
  table.Add(1, ValueType::kValue, "b", "b1");
  table.Add(2, ValueType::kValue, "a", "a1");
  table.Add(3, ValueType::kValue, "b", "b2");
  table.Add(4, ValueType::kValue, "c", "c1");
  MemTable::Iterator it(&table);
  std::vector<std::pair<std::string, std::string>> seen;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    seen.emplace_back(it.key().ToString(), it.value().ToString());
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].first, "a");
  EXPECT_EQ(seen[1], (std::pair<std::string, std::string>{"b", "b2"}));  // newest first
  EXPECT_EQ(seen[2], (std::pair<std::string, std::string>{"b", "b1"}));
  EXPECT_EQ(seen[3].first, "c");
}

TEST(MemTableTest, ManyRandomKeys) {
  MemTable table;
  std::map<std::string, std::string> model;
  Rng rng(3);
  for (int i = 0; i < 5000; i++) {
    std::string key = "key" + std::to_string(rng.Uniform(1000));
    std::string value = "val" + std::to_string(i);
    table.Add(static_cast<uint64_t>(i + 1), ValueType::kValue, key, value);
    model[key] = value;
  }
  for (const auto& [key, expect] : model) {
    std::string value;
    bool deleted;
    ASSERT_TRUE(table.Get(key, &value, &deleted)) << key;
    EXPECT_EQ(value, expect);
  }
  EXPECT_EQ(table.entries(), 5000u);
}

// --- Bloom ----------------------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 2000; i++) {
    builder.AddKey("bloomkey" + std::to_string(i));
  }
  std::string data = builder.Finish();
  BloomFilter filter{Slice(data)};
  for (int i = 0; i < 2000; i++) {
    EXPECT_TRUE(filter.MayContain("bloomkey" + std::to_string(i))) << i;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 2000; i++) {
    builder.AddKey("present" + std::to_string(i));
  }
  std::string data = builder.Finish();
  BloomFilter filter{Slice(data)};
  int false_positives = 0;
  for (int i = 0; i < 10000; i++) {
    if (filter.MayContain("absent" + std::to_string(i))) {
      false_positives++;
    }
  }
  EXPECT_LT(false_positives, 300);  // ~1% expected at 10 bits/key
}

// --- BlockCache -----------------------------------------------------------------

TEST(BlockCacheTest, HitMissEvict) {
  BlockCache::Options options;
  options.capacity_bytes = 64 * 1024;
  options.shards = 1;
  BlockCache cache(options);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 0, std::make_shared<std::string>(4096, 'x'));
  auto hit = cache.Lookup(1, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 4096u);
  // Fill beyond capacity: LRU (the first block, untouched since) evicts.
  for (int i = 1; i < 32; i++) {
    cache.Insert(1, i * 4096, std::make_shared<std::string>(4096, 'y'));
  }
  EXPECT_GT(cache.stats().evictions.load(), 0u);
  EXPECT_LE(cache.UsedBytes(), options.capacity_bytes);
}

TEST(BlockCacheTest, LruKeepsHotBlocks) {
  BlockCache::Options options;
  options.capacity_bytes = 4 * (4096 + 64);
  options.shards = 1;
  BlockCache cache(options);
  for (int i = 0; i < 4; i++) {
    cache.Insert(1, i * 4096, std::make_shared<std::string>(4096, 'a'));
  }
  // Touch block 0 so it is MRU, then insert to force one eviction.
  ASSERT_NE(cache.Lookup(1, 0), nullptr);
  cache.Insert(1, 100 * 4096, std::make_shared<std::string>(4096, 'b'));
  EXPECT_NE(cache.Lookup(1, 0), nullptr);   // survived
  EXPECT_EQ(cache.Lookup(1, 4096), nullptr);  // LRU victim
}

TEST(BlockCacheTest, LookupChargesCycles) {
  BlockCache::Options options;
  BlockCache cache(options);
  SimClock& clock = ThisThreadClock();
  uint64_t before = clock.Breakdown()[CostCategory::kCacheMgmt];
  cache.Lookup(9, 9);
  EXPECT_GE(clock.Breakdown()[CostCategory::kCacheMgmt] - before, options.lookup_surcharge);
}

// --- SST + LSM over a real blobstore --------------------------------------------

class KvsFixture : public ::testing::Test {
 protected:
  KvsFixture() {
    PmemDevice::Options dev_options;
    dev_options.capacity_bytes = 512ull << 20;
    device_ = std::make_unique<PmemDevice>(dev_options);
    Blobstore::Options bs_options;
    bs_options.cluster_size = 64 * 1024;
    bs_options.metadata_bytes = 4ull << 20;
    auto store = Blobstore::Format(ThisVcpu(), device_.get(), bs_options);
    AQUILA_CHECK(store.ok());
    store_ = std::move(*store);
    ns_ = std::make_unique<BlobNamespace>(store_.get());
  }

  KvsEnv MakeEnv(ReadPath path, MmioEngine* engine = nullptr) {
    KvsEnv::Options options;
    options.store = store_.get();
    options.ns = ns_.get();
    options.read_path = path;
    options.mmio_engine = engine;
    return KvsEnv(options);
  }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<Blobstore> store_;
  std::unique_ptr<BlobNamespace> ns_;
};

TEST_F(KvsFixture, SstBuildAndRead) {
  KvsEnv env = MakeEnv(ReadPath::kDirectIo);
  auto file = env.NewWritableFile("/t1.sst");
  ASSERT_TRUE(file.ok());
  SstBuilder builder(file->get(), SstOptions{});
  for (int i = 0; i < 1000; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    builder.Add(Slice(key), 1000 + i, i % 7 == 3 ? ValueType::kDeletion : ValueType::kValue,
                "value" + std::to_string(i));
  }
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.num_entries(), 1000u);
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto raf = env.NewRandomAccessFile("/t1.sst");
  ASSERT_TRUE(raf.ok());
  auto reader = SstReader::Open(std::move(*raf), nullptr, 1);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->smallest_key(), "key000000");
  EXPECT_EQ((*reader)->largest_key(), "key000999");
  EXPECT_GT((*reader)->num_blocks(), 1u);

  for (int i = 0; i < 1000; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    std::string value;
    bool found, deleted;
    ASSERT_TRUE((*reader)->Get(Slice(key), &value, &found, &deleted).ok());
    ASSERT_TRUE(found) << key;
    if (i % 7 == 3) {
      EXPECT_TRUE(deleted);
    } else {
      EXPECT_EQ(value, "value" + std::to_string(i));
    }
  }
  std::string value;
  bool found, deleted;
  ASSERT_TRUE((*reader)->Get("missing", &value, &found, &deleted).ok());
  EXPECT_FALSE(found);
}

TEST_F(KvsFixture, SstIteratorOrderAndSeek) {
  KvsEnv env = MakeEnv(ReadPath::kDirectIo);
  auto file = env.NewWritableFile("/t2.sst");
  ASSERT_TRUE(file.ok());
  SstBuilder builder(file->get(), SstOptions{});
  for (int i = 0; i < 500; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i * 2);
    builder.Add(Slice(key), i, ValueType::kValue, std::string(100, 'v'));
  }
  ASSERT_TRUE(builder.Finish().ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  auto raf = env.NewRandomAccessFile("/t2.sst");
  ASSERT_TRUE(raf.ok());
  auto reader = SstReader::Open(std::move(*raf), nullptr, 2);
  ASSERT_TRUE(reader.ok());
  SstReader::Iterator it(reader->get());
  int count = 0;
  std::string prev;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    std::string key = it.key().ToString();
    EXPECT_GT(key, prev);
    prev = key;
    count++;
  }
  EXPECT_EQ(count, 500);
  ASSERT_TRUE(it.status().ok());

  it.Seek("key000101");  // between entries: lands on the next one
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "key000102");
  it.Seek("key000998");  // exact match on the largest key
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "key000998");
  it.Seek("key999999");  // beyond everything
  EXPECT_FALSE(it.Valid());
}

TEST_F(KvsFixture, LsmPutGetOverwriteDelete) {
  KvsEnv env = MakeEnv(ReadPath::kDirectIo);
  BlockCache cache(BlockCache::Options{});
  LsmDb::Options options;
  options.env = &env;
  options.block_cache = &cache;
  options.memtable_bytes = 256 * 1024;
  auto db = LsmDb::Open(options);
  ASSERT_TRUE(db.ok());

  std::map<std::string, std::string> model;
  Rng rng(11);
  for (int i = 0; i < 20000; i++) {
    std::string key = "k" + std::to_string(rng.Uniform(5000));
    if (rng.OneIn(10)) {
      ASSERT_TRUE((*db)->Delete(key).ok());
      model.erase(key);
    } else {
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE((*db)->Put(key, value).ok());
      model[key] = value;
    }
  }
  EXPECT_GT((*db)->stats().flushes.load(), 0u);
  EXPECT_GT((*db)->stats().compactions.load(), 0u);

  for (const auto& [key, expect] : model) {
    std::string value;
    bool found;
    ASSERT_TRUE((*db)->Get(key, &value, &found).ok());
    ASSERT_TRUE(found) << key;
    EXPECT_EQ(value, expect) << key;
  }
  // Deleted keys stay gone.
  for (int i = 0; i < 5000; i++) {
    std::string key = "k" + std::to_string(i);
    if (model.count(key) == 0) {
      std::string value;
      bool found;
      ASSERT_TRUE((*db)->Get(key, &value, &found).ok());
      EXPECT_FALSE(found) << key;
    }
  }
}

TEST_F(KvsFixture, LsmScanMergesLevelsAndMemtable) {
  KvsEnv env = MakeEnv(ReadPath::kDirectIo);
  LsmDb::Options options;
  options.env = &env;
  options.memtable_bytes = 64 * 1024;
  auto db = LsmDb::Open(options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 2000; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "s%06d", i);
    ASSERT_TRUE((*db)->Put(Slice(key), "val" + std::to_string(i)).ok());
  }
  // Overwrite some in the memtable after flushes.
  ASSERT_TRUE((*db)->Put("s000100", "fresh").ok());

  std::vector<std::pair<std::string, std::string>> seen;
  ASSERT_TRUE((*db)
                  ->Scan("s000098", 5,
                         [&](const Slice& k, const Slice& v) {
                           seen.emplace_back(k.ToString(), v.ToString());
                         })
                  .ok());
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0].first, "s000098");
  EXPECT_EQ(seen[2], (std::pair<std::string, std::string>{"s000100", "fresh"}));
  for (size_t i = 1; i < seen.size(); i++) {
    EXPECT_GT(seen[i].first, seen[i - 1].first);
  }
}

TEST_F(KvsFixture, LsmRecoversFromManifestAndWal) {
  KvsEnv env = MakeEnv(ReadPath::kDirectIo);
  LsmDb::Options options;
  options.env = &env;
  options.memtable_bytes = 64 * 1024;
  {
    auto db = LsmDb::Open(options);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE((*db)->Put("p" + std::to_string(i), "q" + std::to_string(i)).ok());
    }
    // 500 writes of ~10 bytes stay below the flush threshold for the tail:
    // some keys live only in WAL + memtable when we "crash" (no clean close
    // flush: simulate by flushing explicitly first, then writing more).
    ASSERT_TRUE((*db)->Flush().ok());
    for (int i = 500; i < 600; i++) {
      ASSERT_TRUE((*db)->Put("p" + std::to_string(i), "q" + std::to_string(i)).ok());
    }
    // Drop the DB object: the destructor flushes, but WAL replay is also
    // covered below by reopening with a WAL present.
  }
  auto db = LsmDb::Open(options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 600; i++) {
    std::string value;
    bool found;
    ASSERT_TRUE((*db)->Get("p" + std::to_string(i), &value, &found).ok());
    ASSERT_TRUE(found) << i;
    EXPECT_EQ(value, "q" + std::to_string(i));
  }
}

TEST_F(KvsFixture, LsmMmioModeMatchesDirectMode) {
  // Same dataset through both read paths must agree.
  Aquila::Options aq_options;
  aq_options.hypervisor.host_memory_bytes = 256ull << 20;
  aq_options.cache.capacity_pages = 4096;
  aq_options.cache.max_pages = 8192;
  aq_options.cache.eviction_batch = 64;
  Aquila runtime(aq_options);

  KvsEnv direct_env = MakeEnv(ReadPath::kDirectIo);
  LsmDb::Options options;
  options.env = &direct_env;
  options.memtable_bytes = 128 * 1024;
  options.name = "/dbx";
  {
    auto db = LsmDb::Open(options);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 3000; i++) {
      ASSERT_TRUE((*db)->Put("m" + std::to_string(i), "w" + std::to_string(i * 3)).ok());
    }
  }

  KvsEnv mmio_env = MakeEnv(ReadPath::kMmio, &runtime);
  LsmDb::Options mmio_options = options;
  mmio_options.env = &mmio_env;
  auto db = LsmDb::Open(mmio_options);
  ASSERT_TRUE(db.ok());
  uint64_t faults_before = runtime.fault_stats().major_faults.load();
  for (int i = 0; i < 3000; i++) {
    std::string value;
    bool found;
    ASSERT_TRUE((*db)->Get("m" + std::to_string(i), &value, &found).ok());
    ASSERT_TRUE(found) << i;
    EXPECT_EQ(value, "w" + std::to_string(i * 3));
  }
  // SST reads went through the mmio path.
  EXPECT_GT(runtime.fault_stats().major_faults.load(), faults_before);
}

// --- Kreon ----------------------------------------------------------------------

class KreonFixture : public ::testing::Test {
 protected:
  KreonFixture() {
    PmemDevice::Options dev_options;
    dev_options.capacity_bytes = 128ull << 20;
    device_ = std::make_unique<PmemDevice>(dev_options);
    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 256ull << 20;
    options.cache.capacity_pages = 8192;
    options.cache.max_pages = 16384;
    options.cache.eviction_batch = 64;
    runtime_ = std::make_unique<Aquila>(options);
    backing_ = std::make_unique<DeviceBacking>(device_.get(), 0, device_->capacity_bytes());
    auto map = runtime_->Map(backing_.get(), device_->capacity_bytes(),
                             kProtRead | kProtWrite);
    AQUILA_CHECK(map.ok());
    map_ = *map;
  }

  // Declaration order matters: the runtime's destructor tears down leaked
  // mappings, which writes back through the backing — the backing (and its
  // device) must outlive the runtime.
  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<DeviceBacking> backing_;
  std::unique_ptr<Aquila> runtime_;
  MemoryMap* map_;
};

TEST_F(KreonFixture, PutGetScanDelete) {
  auto db = KreonDb::Open(map_, KreonDb::Options{});
  ASSERT_TRUE(db.ok());
  std::map<std::string, std::string> model;
  Rng rng(5);
  for (int i = 0; i < 10000; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "kreon%08llu",
                  static_cast<unsigned long long>(rng.Uniform(3000)));
    std::string value = "value-" + std::to_string(i);
    ASSERT_TRUE((*db)->Put(Slice(key), value).ok());
    model[key] = value;
  }
  for (const auto& [key, expect] : model) {
    std::string value;
    bool found;
    ASSERT_TRUE((*db)->Get(key, &value, &found).ok());
    ASSERT_TRUE(found) << key;
    EXPECT_EQ(value, expect);
  }
  // Scan returns sorted keys.
  std::vector<std::string> keys;
  ASSERT_TRUE((*db)
                  ->Scan("kreon", 50,
                         [&](const Slice& k, const Slice& v) { keys.push_back(k.ToString()); })
                  .ok());
  ASSERT_EQ(keys.size(), 50u);
  for (size_t i = 1; i < keys.size(); i++) {
    EXPECT_GT(keys[i], keys[i - 1]);
  }
  // Delete hides a key.
  std::string victim = model.begin()->first;
  ASSERT_TRUE((*db)->Delete(victim).ok());
  std::string value;
  bool found;
  ASSERT_TRUE((*db)->Get(victim, &value, &found).ok());
  EXPECT_FALSE(found);
}

TEST_F(KreonFixture, PersistAndRecover) {
  {
    auto db = KreonDb::Open(map_, KreonDb::Options{});
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE((*db)->Put("persist" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*db)->Persist().ok());
  }
  // Reopen through the same mapping (superblock recovery path).
  auto db = KreonDb::Open(map_, KreonDb::Options{});
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->entries(), 500u);
  for (int i = 0; i < 500; i++) {
    std::string value;
    bool found;
    ASSERT_TRUE((*db)->Get("persist" + std::to_string(i), &value, &found).ok());
    ASSERT_TRUE(found) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST_F(KreonFixture, RejectsOversizeKeys) {
  auto db = KreonDb::Open(map_, KreonDb::Options{});
  ASSERT_TRUE(db.ok());
  std::string long_key(KreonDb::kMaxKeyBytes + 1, 'x');
  EXPECT_FALSE((*db)->Put(Slice(long_key), "v").ok());
  EXPECT_FALSE((*db)->Put(Slice("", 0), "v").ok());
}

}  // namespace
}  // namespace aquila
