// Hang-robust device I/O (ISSUE 7): the DeviceHealth state machine, the
// WatchdogQueue decorator (timeouts, cancel/retry with decorrelated jitter,
// hedged reads, fail-fast breaker), and the chaos-under-traffic harness that
// drives hangs, brownouts, error storms, and healing against concurrent
// mmio traffic while CRC-stamped pages prove no write is lost or duplicated.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/storage/device_health.h"
#include "src/storage/fault_device.h"
#include "src/storage/nvme_device.h"
#include "src/util/crc32c.h"
#include "src/util/rng.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace {

// --- DeviceHealth state machine ---------------------------------------------------

TEST(DeviceHealthTest, DisabledRecordsNothingAndShedsNothing) {
  DeviceHealth health;
  for (int i = 0; i < 32; i++) {
    health.RecordOutcome(i, DeviceHealth::Outcome::kError);
  }
  EXPECT_EQ(health.state(), DeviceHealth::State::kHealthy);
  EXPECT_FALSE(health.ShouldFailFast(1000));
  EXPECT_TRUE(health.allows_readahead());
  EXPECT_EQ(health.CapDepth(32), 32u);
  EXPECT_EQ(health.stats().state_changes.load(), 0u);
}

TEST(DeviceHealthTest, LadderClimbsBreakerOpensAndProbeReadmits) {
  DeviceHealth health;
  DeviceHealth::Options options;
  options.window_ops = 16;
  options.min_samples = 4;
  options.probe_interval_cycles = 1000;
  health.Enable(options);

  // A single early error must not move the state: min_samples gates.
  health.RecordOutcome(1, DeviceHealth::Outcome::kError);
  EXPECT_EQ(health.state(), DeviceHealth::State::kHealthy);

  for (int i = 0; i < 8; i++) {
    health.RecordOutcome(2 + i, DeviceHealth::Outcome::kOk);
  }
  EXPECT_EQ(health.state(), DeviceHealth::State::kHealthy);

  // Feed errors and watch the ladder climb monotonically to failed.
  bool saw_suspect = false;
  bool saw_degraded = false;
  uint64_t now = 100;
  while (health.state() != DeviceHealth::State::kFailed && now < 200) {
    health.RecordOutcome(now++, DeviceHealth::Outcome::kTimeout);
    saw_suspect |= health.state() == DeviceHealth::State::kSuspect;
    saw_degraded |= health.state() == DeviceHealth::State::kDegraded;
  }
  EXPECT_TRUE(saw_suspect);
  EXPECT_TRUE(saw_degraded);
  ASSERT_EQ(health.state(), DeviceHealth::State::kFailed);
  EXPECT_FALSE(health.allows_readahead());
  EXPECT_EQ(health.CapDepth(32), 8u);  // depth / degraded_depth_divisor
  EXPECT_EQ(health.CapDepth(2), 1u);   // never below one slot

  // Inside the probe interval the breaker fails fast; stragglers from
  // before it opened must not flip the state.
  EXPECT_TRUE(health.ShouldFailFast(now));
  health.RecordOutcome(now, DeviceHealth::Outcome::kOk);
  EXPECT_EQ(health.state(), DeviceHealth::State::kFailed);
  EXPECT_GE(health.stats().fail_fast.load(), 1u);

  // After the interval the next submission is admitted as the probe.
  EXPECT_FALSE(health.ShouldFailFast(now + 5000));
  EXPECT_EQ(health.state(), DeviceHealth::State::kProbing);
  EXPECT_EQ(health.stats().probes.load(), 1u);
  EXPECT_FALSE(health.allows_readahead());  // still shedding until the verdict

  // Probe verdict: ok clears the window and re-admits at full depth.
  health.RecordOutcome(now + 5001, DeviceHealth::Outcome::kOk);
  EXPECT_EQ(health.state(), DeviceHealth::State::kHealthy);
  EXPECT_TRUE(health.allows_readahead());
  EXPECT_EQ(health.CapDepth(32), 32u);
  // The slate is clean: one fresh error is again below min_samples.
  health.RecordOutcome(now + 5002, DeviceHealth::Outcome::kError);
  EXPECT_EQ(health.state(), DeviceHealth::State::kHealthy);
}

TEST(DeviceHealthTest, FailedProbeReopensBreaker) {
  DeviceHealth health;
  DeviceHealth::Options options;
  options.window_ops = 8;
  options.min_samples = 2;
  options.probe_interval_cycles = 1000;
  health.Enable(options);
  for (int i = 0; i < 8; i++) {
    health.RecordOutcome(i, DeviceHealth::Outcome::kError);
  }
  ASSERT_EQ(health.state(), DeviceHealth::State::kFailed);
  EXPECT_FALSE(health.ShouldFailFast(5000));  // admitted as probe
  health.RecordOutcome(5001, DeviceHealth::Outcome::kError);
  EXPECT_EQ(health.state(), DeviceHealth::State::kFailed);
  // The interval restarts from the failed probe, not the original trip.
  EXPECT_TRUE(health.ShouldFailFast(5500));
  EXPECT_FALSE(health.ShouldFailFast(6001));
  health.RecordOutcome(6002, DeviceHealth::Outcome::kOk);
  EXPECT_EQ(health.state(), DeviceHealth::State::kHealthy);
}

// --- WatchdogQueue over an injectable native queue --------------------------------

constexpr uint32_t kDepth = 4;

class WatchdogQueueTest : public ::testing::Test {
 protected:
  void Build(const FaultInjectingDevice::Options& fopts, WatchdogQueue::Options wopts) {
    NvmeController::Options copts;
    copts.capacity_bytes = 16ull << 20;
    ctrl_ = std::make_unique<NvmeController>(copts);
    nvme_ = std::make_unique<NvmeDevice>(ctrl_.get());
    faults_ = std::make_unique<FaultInjectingDevice>(nvme_.get(), fopts);
    ASSERT_TRUE(faults_->supports_queueing());
    DeviceHealth::Options hopts;
    hopts.probe_interval_cycles = 240'000;  // 100us
    health_.Enable(hopts);
    queue_ = std::make_unique<WatchdogQueue>(&health_, faults_->CreateQueue(kDepth), wopts);
  }

  // Reaps zombie legs (uncancellable inner commands of already-answered
  // ops) so the fixture tears down with an empty inner queue.
  void DrainZombies(Vcpu& vcpu) {
    std::vector<DeviceQueue::Completion> out;
    for (int i = 0; i < 64; i++) {
      vcpu.clock().Charge(CostCategory::kIdle, 1'000'000);
      queue_->Poll(vcpu, &out);
    }
  }

  DeviceHealth health_;
  std::unique_ptr<NvmeController> ctrl_;
  std::unique_ptr<NvmeDevice> nvme_;
  std::unique_ptr<FaultInjectingDevice> faults_;
  std::unique_ptr<WatchdogQueue> queue_;
};

TEST_F(WatchdogQueueTest, HungWriteIsCancelledRetriedAndCompletes) {
  FaultInjectingDevice::Options fopts;
  fopts.hang_writes = {1};  // the first write attempt is swallowed
  WatchdogQueue::Options wopts;
  wopts.timeout_cycles = 2'400'000;  // 1ms, far above the ~10us media time
  wopts.backoff_base_cycles = 10'000;
  Build(fopts, wopts);

  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize, 0xAB);
  ASSERT_TRUE(queue_->SubmitWrite(vcpu, 0, std::span<const uint8_t>(buf), 7).ok());
  std::vector<DeviceQueue::Completion> out;
  ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].user_data, 7u);
  EXPECT_TRUE(out[0].status.ok()) << out[0].status.ToString();

  EXPECT_EQ(faults_->fault_stats().injected_hangs.load(), 1u);
  EXPECT_EQ(health_.stats().timeouts.load(), 1u);
  EXPECT_EQ(health_.stats().watchdog_retries.load(), 1u);
  EXPECT_EQ(health_.stats().abandoned.load(), 0u);

  // The retry's data reached the medium (the hung attempt never did).
  std::vector<uint8_t> in(kPageSize);
  ASSERT_TRUE(nvme_->Read(vcpu, 0, std::span(in)).ok());
  EXPECT_EQ(in, buf);
}

TEST_F(WatchdogQueueTest, PersistentHangAbandonsWithDeadlineExceeded) {
  FaultInjectingDevice::Options fopts;
  fopts.hang_rate = 1.0;  // every attempt hangs
  WatchdogQueue::Options wopts;
  wopts.timeout_cycles = 240'000;  // 100us
  wopts.max_attempts = 2;
  wopts.backoff_base_cycles = 10'000;
  Build(fopts, wopts);

  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(queue_->SubmitRead(vcpu, 0, std::span(buf), 9).ok());
  std::vector<DeviceQueue::Completion> out;
  ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].user_data, 9u);
  EXPECT_EQ(out[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(health_.stats().timeouts.load(), 2u);  // one per attempt
  EXPECT_EQ(health_.stats().watchdog_retries.load(), 1u);
  EXPECT_EQ(health_.stats().abandoned.load(), 1u);

  // The queue stays usable: heal the device, the next op completes.
  faults_->set_hang_rate(0.0);
  ASSERT_TRUE(queue_->SubmitRead(vcpu, 0, std::span(buf), 10).ok());
  out.clear();
  ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].status.ok());
}

TEST_F(WatchdogQueueTest, ErrorCompletionsPassThroughWithoutTimeoutRetry) {
  FaultInjectingDevice::Options fopts;
  fopts.write_error_rate = 1.0;
  WatchdogQueue::Options wopts;
  wopts.timeout_cycles = 2'400'000;
  Build(fopts, wopts);

  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize, 0x33);
  ASSERT_TRUE(queue_->SubmitWrite(vcpu, 0, std::span<const uint8_t>(buf), 1).ok());
  std::vector<DeviceQueue::Completion> out;
  ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status.code(), StatusCode::kIoError);
  // Watchdog retries are for silence, not for errors: the error surfaced
  // immediately so the caller's own retry/degradation policy owns it.
  EXPECT_EQ(health_.stats().timeouts.load(), 0u);
  EXPECT_EQ(health_.stats().watchdog_retries.load(), 0u);
}

TEST_F(WatchdogQueueTest, HedgedReadWinsDuringBrownout) {
  FaultInjectingDevice::Options fopts;
  WatchdogQueue::Options wopts;
  wopts.timeout_cycles = 24'000'000;  // 10ms: the brownout must not time out
  wopts.hedge_reads = true;
  wopts.hedge_min_delay_cycles = 48'000;  // 20us
  Build(fopts, wopts);

  Vcpu vcpu(0);
  std::vector<uint8_t> seed(kPageSize);
  for (size_t i = 0; i < seed.size(); i++) {
    seed[i] = static_cast<uint8_t>(i * 13 + 5);
  }
  ASSERT_TRUE(nvme_->Write(vcpu, 0, std::span<const uint8_t>(seed)).ok());

  // The primary leg samples the brownout at submit (+1ms); the hedge leg,
  // issued 20us later after EndBrownout, completes first and wins.
  faults_->StartBrownout(2'400'000);
  std::vector<uint8_t> buf(kPageSize, 0);
  ASSERT_TRUE(queue_->SubmitRead(vcpu, 0, std::span(buf), 11).ok());
  faults_->EndBrownout();

  std::vector<DeviceQueue::Completion> out;
  ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].status.ok());
  EXPECT_EQ(buf, seed);
  EXPECT_EQ(health_.stats().hedges.load(), 1u);
  EXPECT_EQ(health_.stats().hedge_wins.load(), 1u);
  EXPECT_EQ(health_.stats().timeouts.load(), 0u);
  DrainZombies(vcpu);  // the browned-out primary completes as a zombie
}

TEST_F(WatchdogQueueTest, HedgeWinOverHungPrimaryReclaimsInnerSlot) {
  // Regression: when a hedge wins while the primary leg is hung, FinishOp
  // must cancel the hung leg and hand its inner slot back. Before the fix
  // each such op leaked one slot forever (Sweep only cancels for ops that
  // are not done), so more than kDepth hedge wins exhausted the inner queue
  // and every later submission failed kOutOfSpace.
  FaultInjectingDevice::Options fopts;
  for (uint64_t n = 1; n <= 2 * (kDepth + 2); n += 2) {
    fopts.hang_reads.push_back(n);  // every primary hangs, every hedge lands
  }
  WatchdogQueue::Options wopts;
  wopts.timeout_cycles = 24'000'000;  // 10ms: hedges resolve ops, not timeouts
  wopts.hedge_reads = true;
  wopts.hedge_min_delay_cycles = 48'000;  // 20us
  Build(fopts, wopts);

  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize);
  for (uint32_t i = 0; i < kDepth + 2; i++) {
    ASSERT_TRUE(queue_->SubmitRead(vcpu, 0, std::span(buf), 40 + i).ok()) << "op " << i;
    std::vector<DeviceQueue::Completion> out;
    ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].user_data, 40u + i);
    EXPECT_TRUE(out[0].status.ok()) << out[0].status.ToString();
  }
  EXPECT_EQ(faults_->fault_stats().injected_hangs.load(), kDepth + 2);
  EXPECT_EQ(health_.stats().hedge_wins.load(), kDepth + 2);
  EXPECT_EQ(health_.stats().timeouts.load(), 0u);
}

TEST_F(WatchdogQueueTest, HedgeDoesNotExtendPrimaryDeadline) {
  // Regression: issuing a hedge must not refresh the op's per-attempt
  // deadline — with both legs hung, the timeout fires at first_submit +
  // timeout_cycles, not hedge_submit + timeout_cycles.
  FaultInjectingDevice::Options fopts;
  fopts.hang_rate = 1.0;
  WatchdogQueue::Options wopts;
  wopts.timeout_cycles = 240'000;  // 100us
  wopts.max_attempts = 1;
  wopts.hedge_reads = true;
  wopts.hedge_min_delay_cycles = 48'000;  // 20us, well inside the deadline
  Build(fopts, wopts);

  Vcpu vcpu(0);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(queue_->SubmitRead(vcpu, 0, std::span(buf), 50).ok());
  std::vector<DeviceQueue::Completion> out;
  ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(health_.stats().hedges.load(), 1u);
  // WaitMin advances exactly to NextReadyAt, so the abandonment lands on
  // the original deadline; the buggy refresh pushed it to +148'000 cycles.
  EXPECT_EQ(out[0].ready_at - out[0].submit_at, wopts.timeout_cycles);
}

TEST_F(WatchdogQueueTest, OpenBreakerFailsFastThenProbeReadmits) {
  FaultInjectingDevice::Options fopts;
  WatchdogQueue::Options wopts;
  wopts.timeout_cycles = 2'400'000;
  Build(fopts, wopts);

  Vcpu vcpu(0);
  // Trip the breaker directly (the window is fed by completions in the
  // integration tests; here the ladder itself is not under test).
  for (int i = 0; i < 16; i++) {
    health_.RecordOutcome(vcpu.clock().Now(), DeviceHealth::Outcome::kTimeout);
  }
  ASSERT_EQ(health_.state(), DeviceHealth::State::kFailed);

  // Inside the probe interval: submission is acknowledged but the op fails
  // fast with kUnavailable, never touching the device (the destination
  // buffer keeps its sentinel bytes).
  std::vector<uint8_t> buf(kPageSize, 0xEE);
  ASSERT_TRUE(queue_->SubmitRead(vcpu, 0, std::span(buf), 21).ok());
  std::vector<DeviceQueue::Completion> out;
  ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].status.code(), StatusCode::kUnavailable);
  EXPECT_GE(health_.stats().fail_fast.load(), 1u);
  EXPECT_EQ(buf, std::vector<uint8_t>(kPageSize, 0xEE));

  // Past the interval the next op goes through as the probe; its success
  // re-admits the device.
  vcpu.clock().Charge(CostCategory::kIdle, 300'000);
  ASSERT_TRUE(queue_->SubmitRead(vcpu, 0, std::span(buf), 22).ok());
  out.clear();
  ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].status.ok());
  EXPECT_EQ(health_.state(), DeviceHealth::State::kHealthy);
  EXPECT_EQ(health_.stats().probes.load(), 1u);
}

TEST_F(WatchdogQueueTest, HealthStateCapsEffectiveDepth) {
  FaultInjectingDevice::Options fopts;
  WatchdogQueue::Options wopts;
  wopts.timeout_cycles = 2'400'000;
  Build(fopts, wopts);

  Vcpu vcpu(0);
  for (int i = 0; i < 16; i++) {
    health_.RecordOutcome(i, DeviceHealth::Outcome::kError);
  }
  // 16/16 bad crosses failed_threshold; walk it back to exactly degraded.
  ASSERT_EQ(health_.state(), DeviceHealth::State::kFailed);
  ASSERT_FALSE(health_.ShouldFailFast(500'000));  // probing
  health_.RecordOutcome(500'001, DeviceHealth::Outcome::kOk);  // healthy, window clear
  for (int i = 0; i < 8; i++) {
    health_.RecordOutcome(600'000 + i, DeviceHealth::Outcome::kOk);
    health_.RecordOutcome(600'100 + i, DeviceHealth::Outcome::kError);
  }
  ASSERT_EQ(health_.state(), DeviceHealth::State::kDegraded);  // 50% bad

  // Depth 4 / divisor 4 = 1: the second submission is shed as OutOfSpace.
  std::vector<uint8_t> a(kPageSize);
  std::vector<uint8_t> b(kPageSize);
  ASSERT_TRUE(queue_->SubmitRead(vcpu, 0, std::span(a), 31).ok());
  EXPECT_EQ(queue_->SubmitRead(vcpu, kPageSize, std::span(b), 32).code(),
            StatusCode::kOutOfSpace);
  std::vector<DeviceQueue::Completion> out;
  ASSERT_TRUE(queue_->Drain(vcpu, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].status.ok());
}

// --- Chaos under traffic ----------------------------------------------------------

// Every page the workers write carries this stamp: payload bytes from a
// version-seeded Rng, CRC32C over the payload, and enough identity to catch
// stale, torn, foreign, or duplicated data on readback.
constexpr uint32_t kStampMagic = 0xC4A05717u;
constexpr size_t kHeaderBytes = 24;  // 6 x u32; payload 8-byte aligned

void StampPage(std::span<uint8_t> page, uint32_t worker, uint32_t index, uint32_t version) {
  Rng fill(FnvHash64((static_cast<uint64_t>(worker) << 48) ^
                     (static_cast<uint64_t>(index) << 24) ^ version) | 1);
  for (size_t i = kHeaderBytes; i + 8 <= page.size(); i += 8) {
    uint64_t v = fill.Next();
    std::memcpy(&page[i], &v, 8);
  }
  uint32_t header[6] = {kStampMagic, worker, index, version,
                        Crc32c(page.data() + kHeaderBytes, page.size() - kHeaderBytes), 0};
  std::memcpy(page.data(), header, sizeof(header));
}

// Returns an empty string when `page` holds exactly version `expect` (or is
// still pristine zero when expect == 0); a diagnostic otherwise.
std::string CheckPage(std::span<const uint8_t> page, uint32_t worker, uint32_t index,
                      uint32_t expect) {
  if (expect == 0) {
    for (size_t i = 0; i < page.size(); i++) {
      if (page[i] != 0) {
        return "never-written page is not pristine zero";
      }
    }
    return "";
  }
  uint32_t header[6];
  std::memcpy(header, page.data(), sizeof(header));
  if (header[0] != kStampMagic) return "bad magic";
  if (header[1] != worker) return "foreign worker stamp";
  if (header[2] != index) return "foreign page stamp";
  if (header[3] != expect) {
    return "version " + std::to_string(header[3]) + " != expected " + std::to_string(expect);
  }
  if (header[4] != Crc32c(page.data() + kHeaderBytes, page.size() - kHeaderBytes)) {
    return "payload CRC mismatch (torn or mixed versions)";
  }
  return "";
}

// The harness: four workers hammer disjoint slices of one async-writeback
// mapping (writes, CRC-verified reads, msync, madvise) while a controller
// walks the device through hang injection, a brownout window, an error
// storm that opens the breaker and degrades the mapping, and a heal. A
// real-time monitor asserts global progress throughout (no wedge). After
// the storm: health must re-admit the device via a probe, RearmWriteback
// must restore the mapping, msync must succeed, and a full from-media
// readback must show exactly the last acknowledged version of every page.
TEST(ChaosTest, TrafficSurvivesHangsBrownoutsErrorStormAndHeals) {
  constexpr int kWorkers = 4;
  constexpr uint32_t kPagesPerWorker = 512;
  constexpr uint64_t kMapBytes = static_cast<uint64_t>(kWorkers) * kPagesPerWorker * kPageSize;
  constexpr uint32_t kTimeoutUs = 200;

  NvmeController::Options copts;
  copts.capacity_bytes = 64ull << 20;
  NvmeController ctrl(copts);
  NvmeDevice nvme(&ctrl);
  FaultInjectingDevice::Options fopts;
  FaultInjectingDevice faults(&nvme, fopts);
  ASSERT_TRUE(faults.supports_queueing());

  Aquila::Options options;
  options.hypervisor.host_memory_bytes = 256ull << 20;
  options.cache.capacity_pages = 1024;
  options.cache.max_pages = 4096;
  options.cache.eviction_batch = 64;
  options.async_writeback = true;
  options.async_queue_depth = 16;
  options.device_op_timeout_us = kTimeoutUs;
  options.hedge_reads = true;
  options.device_probe_interval_us = 200;
  Aquila runtime(options);
  DeviceBacking backing(&faults, 0, kMapBytes);

  StatusOr<MemoryMap*> map = runtime.Map(&backing, kMapBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* aq_map = static_cast<AquilaMap*>(*map);
  DeviceHealth& health = faults.health();
  ASSERT_TRUE(health.enabled());  // armed by the engine via device_op_timeout_us

  std::atomic<bool> stop{false};
  std::atomic<bool> give_up{false};
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> write_errors{0};
  std::atomic<uint64_t> read_errors{0};
  std::mutex corrupt_mu;
  std::string corrupt;  // first integrity violation, guarded by corrupt_mu
  // Worker w's last acknowledged version per page; read by the main thread
  // after join.
  std::vector<std::vector<uint32_t>> versions(
      kWorkers, std::vector<uint32_t>(kPagesPerWorker, 0));

  auto note_corrupt = [&](const std::string& what) {
    std::lock_guard<std::mutex> lock(corrupt_mu);
    if (corrupt.empty()) {
      corrupt = what;
    }
  };

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; w++) {
    workers.emplace_back([&, w] {
      runtime.EnterThread();
      Rng rng(w * 9973 + 7);
      const uint64_t slice_off = static_cast<uint64_t>(w) * kPagesPerWorker * kPageSize;
      const uint64_t slice_bytes = static_cast<uint64_t>(kPagesPerWorker) * kPageSize;
      std::vector<uint8_t> wbuf(kPageSize);
      std::vector<uint8_t> rbuf(kPageSize);
      std::vector<uint32_t>& version = versions[w];
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); i++) {
        uint32_t p = static_cast<uint32_t>(rng.Uniform(kPagesPerWorker));
        uint64_t off = slice_off + static_cast<uint64_t>(p) * kPageSize;
        // Writes are refused while the mapping is degraded read-only, so
        // behave like an application that saw the refusal: read instead.
        if (!aq_map->degraded() && rng.OneIn(2)) {
          StampPage(std::span(wbuf), static_cast<uint32_t>(w), p, version[p] + 1);
          Status s = (*map)->Write(off, std::span<const uint8_t>(wbuf));
          if (s.ok()) {
            version[p]++;
          } else {
            write_errors.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          Status s = (*map)->Read(off, std::span(rbuf));
          if (s.ok()) {
            std::string why = CheckPage(std::span<const uint8_t>(rbuf),
                                        static_cast<uint32_t>(w), p, version[p]);
            if (!why.empty()) {
              note_corrupt("worker " + std::to_string(w) + " page " + std::to_string(p) +
                           ": " + why);
            }
          } else {
            read_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (i % 128 == 127) {
          // Under chaos msync may legitimately fail; durability is settled
          // by the post-heal sync + readback below.
          (void)(*map)->Sync(slice_off, slice_bytes);
        }
        if (i % 512 == 511) {
          (void)(*map)->Advise(slice_off, slice_bytes / 4, Advice::kDontNeed);
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Real-time progress monitor: the whole point of the watchdog is that no
  // injected hang may wedge the pipeline. 15s with zero ops = wedged.
  std::thread monitor([&] {
    uint64_t last = 0;
    int stalls = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      uint64_t now = ops.load(std::memory_order_relaxed);
      stalls = now == last ? stalls + 1 : 0;
      last = now;
      if (stalls >= 60) {
        give_up.store(true, std::memory_order_relaxed);
        stop.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });

  auto wait_ops = [&](uint64_t delta) {
    uint64_t target = ops.load(std::memory_order_relaxed) + delta;
    while (ops.load(std::memory_order_relaxed) < target &&
           !give_up.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  };

  // Phase 1: clean warmup.
  wait_ops(1500);
  // Phase 2: hangs — 5% of submissions are swallowed; only the watchdog's
  // cancel+retry keeps the queue slots and the traffic alive.
  faults.set_hang_rate(0.05);
  wait_ops(1500);
  faults.set_hang_rate(0.0);
  // Phase 3: brownout — completions arrive but 3x past the deadline, so
  // timeouts, uncancellable zombies, hedges, and reconciliation all fire.
  faults.StartBrownout(3ull * kTimeoutUs * 2400);
  wait_ops(800);
  faults.EndBrownout();
  // Phase 4: error storm — every op errors until the breaker opens and the
  // writeback-failure ladder degrades the mapping read-only.
  faults.set_read_error_rate(1.0);
  faults.set_write_error_rate(1.0);
  auto storm_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (health.state() != DeviceHealth::State::kFailed &&
         std::chrono::steady_clock::now() < storm_deadline &&
         !give_up.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(health.state(), DeviceHealth::State::kFailed);
  // Phase 5: heal — worker traffic itself must trigger the probe that
  // re-admits the device within a probe interval.
  faults.set_read_error_rate(0.0);
  faults.set_write_error_rate(0.0);
  wait_ops(1500);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) {
    t.join();
  }
  monitor.join();
  ASSERT_FALSE(give_up.load()) << "pipeline wedged: op counter stopped advancing";
  {
    std::lock_guard<std::mutex> lock(corrupt_mu);
    ASSERT_EQ(corrupt, "");
  }

  // Recovery: touch the device until the breaker's probe re-admits it.
  // Fail-fast completions charge no device time and per-thread clocks
  // diverge, so this thread's clock may sit far behind the worker that
  // stamped failed_at; idle up to the published probe gate each round
  // instead of hoping traffic costs alone cross it.
  std::vector<uint8_t> page(kPageSize);
  for (int i = 0; i < 2000 && health.state() != DeviceHealth::State::kHealthy; i++) {
    if (uint64_t due = health.probe_due_at(); due != 0) {
      ThisVcpu().clock().AdvanceTo(due + 1, CostCategory::kIdle);
    }
    uint64_t off = (static_cast<uint64_t>(i) % (kMapBytes / kPageSize)) * kPageSize;
    (void)(*map)->Advise(off, kPageSize, Advice::kDontNeed);
    (void)(*map)->Read(off, std::span(page));
  }
  EXPECT_EQ(health.state(), DeviceHealth::State::kHealthy);
  EXPECT_TRUE(health.allows_readahead());

  // The mapping degraded during the storm; with the device healthy again,
  // re-arming restores write service and msync durability.
  if (aq_map->degraded()) {
    ASSERT_TRUE(aq_map->RearmWriteback().ok());
  }
  ASSERT_TRUE((*map)->Sync(0, kMapBytes).ok());
  EXPECT_EQ(runtime.cache().TotalDirty(), 0u);

  // From-media readback: drop every (now clean) cached page, then verify
  // each page holds exactly its last acknowledged version — nothing lost,
  // nothing stale, nothing torn.
  ASSERT_TRUE((*map)->Advise(0, kMapBytes, Advice::kDontNeed).ok());
  for (int w = 0; w < kWorkers; w++) {
    for (uint32_t p = 0; p < kPagesPerWorker; p++) {
      uint64_t off = (static_cast<uint64_t>(w) * kPagesPerWorker + p) * kPageSize;
      ASSERT_TRUE((*map)->Read(off, std::span(page)).ok()) << "w=" << w << " p=" << p;
      std::string why =
          CheckPage(std::span<const uint8_t>(page), static_cast<uint32_t>(w), p, versions[w][p]);
      ASSERT_EQ(why, "") << "worker " << w << " page " << p;
    }
  }

  // The storm actually exercised the machinery under test.
  EXPECT_GT(faults.fault_stats().injected_hangs.load(), 0u);
  EXPECT_GT(health.stats().timeouts.load(), 0u);
  EXPECT_GT(health.stats().watchdog_retries.load(), 0u);
  EXPECT_GT(health.stats().fail_fast.load(), 0u);
  EXPECT_GE(health.stats().probes.load(), 1u);
  EXPECT_GT(health.stats().state_changes.load(), 0u);
  EXPECT_GT(write_errors.load() + read_errors.load(), 0u);

  // The /health provider sees this device.
  std::string json = DeviceHealthRegistryJson();
  EXPECT_NE(json.find("\"state\":\"healthy\""), std::string::npos) << json;

  ASSERT_TRUE(runtime.Unmap(*map).ok());
}

}  // namespace
}  // namespace aquila
