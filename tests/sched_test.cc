// Cooperative fault scheduling (src/core/sched.h): the batched request
// surface over park-and-resume continuations. Covers the resume-once
// ticket protocol, demand-fill pin preservation across a park, terminal
// error delivery (device EIO and watchdog-abandoned reads), the blocking
// fallback, and a multi-thread torture mixing parked fills with eviction
// and msync churn. Also built as sched_test_tsan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/core/sched.h"
#include "src/storage/fault_device.h"
#include "src/storage/nvme_device.h"
#include "src/storage/pmem_device.h"
#include "src/util/rng.h"

namespace aquila {
namespace {

Aquila::Options CoopOptions(uint64_t cache_pages) {
  Aquila::Options options;
  options.hypervisor.host_memory_bytes = 256ull << 20;
  options.cache.capacity_pages = cache_pages;
  options.cache.max_pages = cache_pages * 4;
  options.cache.eviction_batch = 64;
  options.async_writeback = true;
  options.coop_sched = true;
  return options;
}

MmioRequest TouchReq(MmioRequest::Kind kind, uint64_t offset, uint64_t tag) {
  MmioRequest req;
  req.kind = kind;
  req.offset = offset;
  req.user_tag = tag;
  return req;
}

// Submits `requests` and polls until every one completes; returns the
// completions indexed by user_tag order of arrival.
std::vector<MmioCompletion> RunBatch(MemoryMap* map, std::span<const MmioRequest> requests) {
  EXPECT_TRUE(map->SubmitBatch(requests).ok());
  std::vector<MmioCompletion> out;
  std::vector<MmioCompletion> buf(requests.size());
  while (out.size() < requests.size()) {
    size_t got = map->Poll(std::span(buf.data(), buf.size()));
    EXPECT_GT(got, 0u) << "Poll made no progress with requests outstanding";
    if (got == 0) {
      break;
    }
    out.insert(out.end(), buf.begin(), buf.begin() + got);
  }
  return out;
}

// --- Basic park/resume ----------------------------------------------------------

TEST(SchedTest, BatchOverNvmeParksAndResumes) {
  NvmeController::Options copts;
  copts.capacity_bytes = 64ull << 20;
  NvmeController ctrl(copts);
  NvmeDevice nvme(&ctrl);
  Aquila runtime(CoopOptions(4096));
  const uint64_t kBytes = 8ull << 20;
  DeviceBacking backing(&nvme, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, kBytes, Advice::kRandom).ok());

  constexpr uint32_t kBatch = 8;
  std::vector<MmioRequest> batch;
  for (uint32_t i = 0; i < kBatch; i++) {
    batch.push_back(TouchReq(MmioRequest::Kind::kRead, i * kPageSize, i));
  }
  std::vector<MmioCompletion> done = RunBatch(*map, batch);
  ASSERT_EQ(done.size(), kBatch);
  std::set<uint64_t> tags;
  for (const MmioCompletion& c : done) {
    EXPECT_TRUE(c.status.ok());
    EXPECT_TRUE(c.faulted);  // cold cache: every touch was a major fault
    tags.insert(c.user_tag);
  }
  EXPECT_EQ(tags.size(), kBatch);  // each request completed exactly once

  ASSERT_NE(runtime.sched(), nullptr);
  EXPECT_GE(runtime.sched()->parked_total.load(), kBatch);  // all parked on fills
  EXPECT_GE(runtime.sched()->resumed_total.load(), kBatch);
  EXPECT_EQ(runtime.sched()->parked_depth.load(), 0);  // tables drained
  // Every batch fault was accounted exactly once as a major fault, and the
  // resumes as minor faults (the documented split accounting).
  EXPECT_EQ(runtime.fault_stats().major_faults.load(), kBatch);
  EXPECT_EQ(runtime.fault_stats().minor_faults.load(), kBatch);
  ASSERT_TRUE(runtime.Unmap(*map).ok());
}

// Several requests for the SAME page: one demand fill, the rest park as
// non-owners on the in-flight fill (park point a). Each must resume exactly
// once and complete exactly once.
TEST(SchedTest, SamePageWaitersResumeOnce) {
  NvmeController::Options copts;
  copts.capacity_bytes = 64ull << 20;
  NvmeController ctrl(copts);
  NvmeDevice nvme(&ctrl);
  Aquila runtime(CoopOptions(4096));
  const uint64_t kBytes = 4ull << 20;
  DeviceBacking backing(&nvme, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, kBytes, Advice::kRandom).ok());

  constexpr uint32_t kBatch = 6;
  std::vector<MmioRequest> batch;
  for (uint32_t i = 0; i < kBatch; i++) {
    batch.push_back(TouchReq(MmioRequest::Kind::kRead, /*offset=*/64, i));
  }
  std::vector<MmioCompletion> done = RunBatch(*map, batch);
  ASSERT_EQ(done.size(), kBatch);
  std::set<uint64_t> tags;
  for (const MmioCompletion& c : done) {
    EXPECT_TRUE(c.status.ok());
    tags.insert(c.user_tag);
  }
  EXPECT_EQ(tags.size(), kBatch);
  // One device read served the whole batch.
  EXPECT_EQ(runtime.fault_stats().major_faults.load(), 1u);
  EXPECT_EQ(runtime.sched()->parked_depth.load(), 0);
  ASSERT_TRUE(runtime.Unmap(*map).ok());
}

// The demand-fill frame stays pinned (kFilling) across the park: the bytes
// that land after the resume must be the device's, even with eviction
// pressure recycling every unpinned frame in between.
TEST(SchedTest, PinPreservedAcrossParkUnderPressure) {
  PmemDevice::Options dopts;
  dopts.capacity_bytes = 16ull << 20;
  PmemDevice device(dopts);
  for (uint64_t i = 0; i < dopts.capacity_bytes; i++) {
    device.dax_base()[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  // Cache far smaller than the map: every batch runs under eviction churn.
  Aquila runtime(CoopOptions(256));
  const uint64_t kBytes = 8ull << 20;
  DeviceBacking backing(&device, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, kBytes, Advice::kRandom).ok());

  const uint64_t pages = kBytes / kPageSize;
  Rng rng(42);
  for (int round = 0; round < 50; round++) {
    std::vector<MmioRequest> batch;
    for (uint32_t i = 0; i < 8; i++) {
      batch.push_back(
          TouchReq(MmioRequest::Kind::kRead, rng.Uniform(pages) * kPageSize, i));
    }
    std::vector<MmioCompletion> done = RunBatch(*map, batch);
    ASSERT_EQ(done.size(), batch.size());
    for (const MmioCompletion& c : done) {
      ASSERT_TRUE(c.status.ok());
    }
    // Re-read one page through the bulk path and check the device pattern —
    // a frame recycled out from under a parked fill would corrupt this.
    uint64_t probe = batch[0].offset + 4000;
    uint8_t byte = 0;
    ASSERT_TRUE((*map)->Read(probe, std::span(&byte, 1)).ok());
    ASSERT_EQ(byte, static_cast<uint8_t>(probe * 131 + 17)) << "round " << round;
  }
  EXPECT_GT(runtime.fault_stats().evicted_pages.load(), 0u);  // pressure was real
  EXPECT_GT(runtime.sched()->parked_total.load(), 0u);
  ASSERT_TRUE(runtime.Unmap(*map).ok());
}

// --- Error delivery -------------------------------------------------------------

// A failed demand fill resolves the parked owner with the device's error
// status instead of crashing or wedging; after the device heals the same
// page faults in cleanly.
TEST(SchedTest, ErrorCompletionResumesWithStatus) {
  NvmeController::Options copts;
  copts.capacity_bytes = 64ull << 20;
  NvmeController ctrl(copts);
  NvmeDevice nvme(&ctrl);
  FaultInjectingDevice::Options fopts;
  fopts.read_error_rate = 1.0;
  FaultInjectingDevice faults(&nvme, fopts);
  Aquila runtime(CoopOptions(4096));
  const uint64_t kBytes = 4ull << 20;
  DeviceBacking backing(&faults, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, kBytes, Advice::kRandom).ok());

  std::vector<MmioRequest> batch = {TouchReq(MmioRequest::Kind::kRead, 0, 1)};
  std::vector<MmioCompletion> done = RunBatch(*map, batch);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].status.ok());
  EXPECT_TRUE(done[0].faulted);
  EXPECT_EQ(runtime.sched()->parked_depth.load(), 0);

  // Device heals: the same request now succeeds (nothing leaked or wedged).
  faults.set_read_error_rate(0.0);
  done = RunBatch(*map, batch);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].status.ok());
  ASSERT_TRUE(runtime.Unmap(*map).ok());
}

// A hung read leg under the PR 7 watchdog: the parked owner receives the
// synthesized kDeadlineExceeded once the retry budget exhausts — it parks,
// then fails cleanly, and the engine keeps serving other pages.
TEST(SchedTest, WatchdogAbandonedFillFailsParkedOwnerCleanly) {
  NvmeController::Options copts;
  copts.capacity_bytes = 64ull << 20;
  NvmeController ctrl(copts);
  NvmeDevice nvme(&ctrl);
  FaultInjectingDevice::Options fopts;
  // Hang the first page's demand read and both watchdog retries of it
  // (max_attempts = 3), exhausting the retry budget.
  fopts.hang_reads = {1, 2, 3};
  FaultInjectingDevice faults(&nvme, fopts);
  Aquila::Options options = CoopOptions(4096);
  options.device_op_timeout_us = 30;  // arm the watchdog
  Aquila runtime(options);
  const uint64_t kBytes = 4ull << 20;
  DeviceBacking backing(&faults, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, kBytes, Advice::kRandom).ok());

  std::vector<MmioRequest> batch = {TouchReq(MmioRequest::Kind::kRead, 0, 7)};
  std::vector<MmioCompletion> done = RunBatch(*map, batch);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].status.ok());
  EXPECT_GT(faults.fault_stats().injected_hangs.load(), 0u);

  // The hang burned its schedule entries; once the health breaker's probe
  // window passes, other pages read fine and the first page recovers too —
  // the runtime never wedged. Successful traffic walks the health ladder
  // back down so teardown's flush is admitted.
  uint64_t healthy = 0;
  for (int round = 0; round < 64; round++) {
    batch = {TouchReq(MmioRequest::Kind::kRead, (1 + round % 16) * kPageSize, 100 + round)};
    done = RunBatch(*map, batch);
    ASSERT_EQ(done.size(), 1u);
    healthy += done[0].status.ok() ? 1 : 0;
  }
  EXPECT_GT(healthy, 32u);  // fail-fasts during the probe window are fine
  batch = {TouchReq(MmioRequest::Kind::kRead, 0, 9)};
  done = RunBatch(*map, batch);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].status.ok());  // the originally hung page heals
  EXPECT_EQ(runtime.sched()->parked_depth.load(), 0);
  Status unmap_status = runtime.Unmap(*map);
  ASSERT_TRUE(unmap_status.ok()) << unmap_status.message();
}

// --- Fallbacks ------------------------------------------------------------------

// Without coop_sched the batched surface degrades to the synchronous loop
// (every request completes during SubmitBatch) with identical results.
TEST(SchedTest, SyncFallbackWithoutScheduler) {
  PmemDevice::Options dopts;
  dopts.capacity_bytes = 16ull << 20;
  PmemDevice device(dopts);
  Aquila::Options options = CoopOptions(1024);
  options.coop_sched = false;  // async pipeline on, scheduler off
  Aquila runtime(options);
  EXPECT_EQ(runtime.sched(), nullptr);
  const uint64_t kBytes = 2ull << 20;
  DeviceBacking backing(&device, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  std::vector<MmioRequest> batch = {TouchReq(MmioRequest::Kind::kRead, 0, 0),
                                    TouchReq(MmioRequest::Kind::kWrite, kPageSize, 1),
                                    TouchReq(MmioRequest::Kind::kPrefetch, 2 * kPageSize, 2)};
  ASSERT_TRUE((*map)->SubmitBatch(batch).ok());
  std::vector<MmioCompletion> buf(8);
  size_t got = (*map)->Poll(std::span(buf.data(), buf.size()));
  ASSERT_EQ(got, 3u);
  for (size_t i = 0; i < got; i++) {
    EXPECT_TRUE(buf[i].status.ok()) << i;
    EXPECT_EQ(buf[i].user_tag, i);
  }
  EXPECT_TRUE(buf[0].faulted);
  EXPECT_TRUE(buf[1].faulted);
  EXPECT_FALSE(buf[2].faulted);  // prefetches never report faults
  EXPECT_EQ((*map)->Poll(std::span(buf.data(), buf.size())), 0u);  // drained
  ASSERT_TRUE(runtime.Unmap(*map).ok());
}

// Bulk (non-empty span) and prefetch requests ride the batch surface under
// the scheduler too (synchronously for now).
TEST(SchedTest, BulkAndPrefetchRequestsUnderScheduler) {
  PmemDevice::Options dopts;
  dopts.capacity_bytes = 16ull << 20;
  PmemDevice device(dopts);
  for (uint64_t i = 0; i < dopts.capacity_bytes; i++) {
    device.dax_base()[i] = static_cast<uint8_t>(i & 0xFF);
  }
  Aquila runtime(CoopOptions(1024));
  const uint64_t kBytes = 2ull << 20;
  DeviceBacking backing(&device, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  std::vector<uint8_t> data(256, 0);
  std::vector<MmioRequest> batch(2);
  batch[0].kind = MmioRequest::Kind::kRead;
  batch[0].offset = 512;
  batch[0].data = std::span(data);
  batch[0].user_tag = 0;
  batch[1].kind = MmioRequest::Kind::kPrefetch;
  batch[1].offset = 4 * kPageSize;
  batch[1].user_tag = 1;
  std::vector<MmioCompletion> done = RunBatch(*map, batch);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done[0].status.ok());
  EXPECT_TRUE(done[1].status.ok());
  for (size_t i = 0; i < data.size(); i++) {
    ASSERT_EQ(data[i], static_cast<uint8_t>((512 + i) & 0xFF));
  }
  ASSERT_TRUE(runtime.Unmap(*map).ok());
}

// --- Torture --------------------------------------------------------------------

// Multi-thread batches over per-thread mappings sharing one small cache:
// parked demand fills race eviction (which recycles unpinned frames and
// submits async writebacks), msync drains, and madvise drops, from every
// core at once. Data integrity proves pins survive parks; completion
// accounting proves resume-once. Also the TSan variant's main course.
TEST(SchedTortureTest, ParkedFillsVsEvictionAndMsyncChurn) {
  constexpr int kThreads = 4;
  constexpr uint64_t kSliceBytes = 2ull << 20;
  PmemDevice::Options dopts;
  dopts.capacity_bytes = kThreads * kSliceBytes;
  PmemDevice device(dopts);
  for (uint64_t i = 0; i < dopts.capacity_bytes; i++) {
    device.dax_base()[i] = static_cast<uint8_t>(i * 197 + 5);
  }
  // Cache holds a quarter of the combined slices: constant eviction.
  Aquila runtime(CoopOptions(kThreads * kSliceBytes / kPageSize / 4));

  std::atomic<bool> corrupt{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      runtime.EnterThread();
      DeviceBacking backing(&device, t * kSliceBytes, kSliceBytes);
      StatusOr<MemoryMap*> map =
          runtime.Map(&backing, kSliceBytes, kProtRead | kProtWrite);
      ASSERT_TRUE(map.ok());
      ASSERT_TRUE((*map)->Advise(0, kSliceBytes, Advice::kRandom).ok());
      const uint64_t pages = kSliceBytes / kPageSize;
      Rng rng(t * 7919 + 3);
      std::vector<MmioRequest> batch;
      std::vector<MmioCompletion> buf(16);
      for (int round = 0; round < 150; round++) {
        batch.clear();
        const uint32_t n = 1 + rng.Uniform(8);
        for (uint32_t i = 0; i < n; i++) {
          bool write = rng.Uniform(4) == 0;
          batch.push_back(TouchReq(write ? MmioRequest::Kind::kWrite
                                         : MmioRequest::Kind::kRead,
                                   rng.Uniform(pages) * kPageSize, round * 100 + i));
        }
        ASSERT_TRUE((*map)->SubmitBatch(std::span(batch)).ok());
        size_t got = 0;
        while (got < batch.size()) {
          size_t k = (*map)->Poll(std::span(buf.data(), buf.size()));
          ASSERT_GT(k, 0u);
          for (size_t i = 0; i < k; i++) {
            if (!buf[i].status.ok()) {
              corrupt.store(true);
            }
          }
          got += k;
        }
        completed.fetch_add(got);
        // Shared-pattern probe through the blocking path: any frame recycled
        // from under a parked fill shows up as a corrupt byte here.
        uint64_t probe = rng.Uniform(pages) * kPageSize + 2048;
        uint8_t byte = 0;
        ASSERT_TRUE((*map)->Read(probe, std::span(&byte, 1)).ok());
        uint64_t dev_off = t * kSliceBytes + probe;
        // Write touches increment the first byte of the page, far from 2048.
        if (byte != static_cast<uint8_t>(dev_off * 197 + 5)) {
          corrupt.store(true);
        }
        if (round % 32 == 31) {
          ASSERT_TRUE((*map)->Sync(0, kSliceBytes).ok());
        }
        if (round % 48 == 47) {
          ASSERT_TRUE((*map)->Advise(0, kSliceBytes / 2, Advice::kDontNeed).ok());
        }
      }
      ASSERT_TRUE(runtime.Unmap(*map).ok());
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(completed.load(), 0u);
  EXPECT_GT(runtime.sched()->parked_total.load(), 0u);
  EXPECT_EQ(runtime.sched()->parked_depth.load(), 0);
  EXPECT_GT(runtime.fault_stats().evicted_pages.load(), 0u);
}

}  // namespace
}  // namespace aquila
