// End-to-end tests for the Aquila runtime: mapping lifecycle, fault paths,
// dirty tracking, eviction + writeback, msync, madvise, mprotect, mremap,
// dynamic cache resizing, and multi-threaded integrity.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/storage/device_queue.h"
#include "src/storage/nvme_device.h"
#include "src/storage/pmem_device.h"
#include "src/util/rng.h"

namespace aquila {
namespace {

class AquilaTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kDeviceBytes = 64ull << 20;
  static constexpr uint64_t kCachePages = 1024;  // 4 MB cache

  AquilaTest() {
    PmemDevice::Options dev_options;
    dev_options.capacity_bytes = kDeviceBytes;
    device_ = std::make_unique<PmemDevice>(dev_options);

    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 256ull << 20;
    options.hypervisor.chunk_size = 1ull << 20;
    options.cache.capacity_pages = kCachePages;
    options.cache.max_pages = kCachePages * 4;
    options.cache.eviction_batch = 64;  // scaled for small test caches
    options.cache.freelist.core_queue_threshold = 64;
    options.cache.freelist.move_batch = 32;
    runtime_ = std::make_unique<Aquila>(options);
  }

  // Fills device offset range with a deterministic pattern.
  void FillDevice(uint64_t offset, uint64_t bytes) {
    uint8_t* dax = device_->dax_base();
    for (uint64_t i = 0; i < bytes; i++) {
      dax[offset + i] = PatternAt(offset + i);
    }
  }

  static uint8_t PatternAt(uint64_t offset) { return static_cast<uint8_t>(offset * 131 + 17); }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<Aquila> runtime_;
};

TEST_F(AquilaTest, ReadSeesDeviceContents) {
  FillDevice(0, 1 << 20);
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  std::vector<uint8_t> buf(10000);
  ASSERT_TRUE((*map)->Read(123456, std::span(buf)).ok());
  for (size_t i = 0; i < buf.size(); i++) {
    ASSERT_EQ(buf[i], PatternAt(123456 + i)) << i;
  }
  EXPECT_GT(runtime_->fault_stats().major_faults.load(), 0u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, HitsTakeNoFaultAndNoTransition) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE((*map)->TouchRead(0).faulted);  // miss
  Vcpu& vcpu = ThisVcpu();
  uint64_t exceptions = vcpu.counters().ring0_exceptions;
  uint64_t majors = runtime_->fault_stats().major_faults.load();
  for (int i = 0; i < 100; i++) {
    EXPECT_FALSE((*map)->TouchRead(i * 8).faulted);  // hits within page 0
  }
  EXPECT_EQ(vcpu.counters().ring0_exceptions, exceptions);
  EXPECT_EQ(runtime_->fault_stats().major_faults.load(), majors);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, AquilaFaultIsRing0NoVmexit) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  (*map)->TouchRead(0);  // warm the EPT chunk
  Vcpu& vcpu = ThisVcpu();
  uint64_t exceptions = vcpu.counters().ring0_exceptions;
  uint64_t traps = vcpu.counters().ring3_traps;
  uint64_t vmexits = vcpu.counters().vmexits;
  EXPECT_TRUE((*map)->TouchRead(kPageSize).faulted);  // a fresh miss
  EXPECT_EQ(vcpu.counters().ring0_exceptions, exceptions + 1);
  EXPECT_EQ(vcpu.counters().ring3_traps, traps);       // no domain switch
  EXPECT_EQ(vcpu.counters().vmexits, vmexits);         // no hypervisor
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, WriteFaultTracksDirtyAndMsyncPersists) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  std::vector<uint8_t> out(kPageSize * 3, 0xAA);
  ASSERT_TRUE((*map)->Write(kPageSize, std::span<const uint8_t>(out)).ok());
  EXPECT_EQ(runtime_->cache().TotalDirty(), 3u);
  // Not yet on the device.
  EXPECT_NE(device_->dax_base()[kPageSize], 0xAA);
  ASSERT_TRUE((*map)->Sync(kPageSize, out.size()).ok());
  EXPECT_EQ(runtime_->cache().TotalDirty(), 0u);
  EXPECT_EQ(device_->dax_base()[kPageSize], 0xAA);
  EXPECT_EQ(device_->dax_base()[kPageSize + out.size() - 1], 0xAA);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, ReadThenWriteTakesUpgradeFault) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE((*map)->TouchRead(0).faulted);  // read fault: mapped read-only
  uint64_t majors = runtime_->fault_stats().major_faults.load();
  uint64_t upgrades = runtime_->fault_stats().write_upgrades.load();
  EXPECT_TRUE((*map)->TouchWrite(0).faulted);  // write on RO page: upgrade fault
  EXPECT_EQ(runtime_->fault_stats().major_faults.load(), majors);
  EXPECT_EQ(runtime_->fault_stats().write_upgrades.load(), upgrades + 1);
  EXPECT_EQ(runtime_->cache().TotalDirty(), 1u);
  // Second write: plain hit.
  EXPECT_FALSE((*map)->TouchWrite(8).faulted);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, MsyncAfterRewriteCatchesNewWrites) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  (*map)->TouchWrite(0);
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  uint8_t after_first = device_->dax_base()[0];
  // msync write-protected the page: the next store must re-fault and re-dirty.
  uint64_t upgrades = runtime_->fault_stats().write_upgrades.load();
  EXPECT_TRUE((*map)->TouchWrite(0).faulted);
  EXPECT_EQ(runtime_->fault_stats().write_upgrades.load(), upgrades + 1);
  EXPECT_EQ(runtime_->cache().TotalDirty(), 1u);
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  EXPECT_EQ(device_->dax_base()[0], static_cast<uint8_t>(after_first + 1));
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, EvictionPreservesDataIntegrity) {
  // Working set 4x the cache: every page round-trips through eviction.
  constexpr uint64_t kBytes = 16ull << 20;
  FillDevice(0, kBytes);
  DeviceBacking backing(device_.get(), 0, kBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  // Pass 1: increment the first byte of every page.
  constexpr uint64_t kPages = kBytes / kPageSize;
  for (uint64_t p = 0; p < kPages; p++) {
    (*map)->TouchWrite(p * kPageSize);
  }
  EXPECT_GT(runtime_->fault_stats().evicted_pages.load(), 0u);
  EXPECT_GT(runtime_->fault_stats().writeback_pages.load(), 0u);

  // Pass 2: verify every page saw exactly one increment (writebacks and
  // refetches preserved both the written byte and the rest of the page).
  for (uint64_t p = 0; p < kPages; p++) {
    uint64_t off = p * kPageSize;
    std::vector<uint8_t> buf(16);
    ASSERT_TRUE((*map)->Read(off, std::span(buf)).ok());
    ASSERT_EQ(buf[0], static_cast<uint8_t>(PatternAt(off) + 1)) << "page " << p;
    ASSERT_EQ(buf[1], PatternAt(off + 1)) << "page " << p;
  }
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, UnmapFlushesDirtyPages) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  std::vector<uint8_t> out(kPageSize, 0x5C);
  ASSERT_TRUE((*map)->Write(7 * kPageSize, std::span<const uint8_t>(out)).ok());
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
  EXPECT_EQ(device_->dax_base()[7 * kPageSize], 0x5C);
  EXPECT_EQ(runtime_->cache().TotalDirty(), 0u);
  // All frames returned.
  EXPECT_EQ(runtime_->cache().ApproxFreeFrames(), kCachePages);
}

TEST_F(AquilaTest, SequentialAdviceTriggersReadAhead) {
  FillDevice(0, 1 << 20);
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, 1 << 20, Advice::kSequential).ok());
  EXPECT_TRUE((*map)->TouchRead(0).faulted);
  EXPECT_GT(runtime_->fault_stats().readahead_pages.load(), 0u);
  // The next pages are already cached: minor faults at most, no device read.
  uint64_t majors = runtime_->fault_stats().major_faults.load();
  for (uint64_t p = 1; p <= runtime_->options().readahead_pages; p++) {
    (*map)->TouchRead(p * kPageSize);
  }
  EXPECT_EQ(runtime_->fault_stats().major_faults.load(), majors);
  EXPECT_GT(runtime_->fault_stats().minor_faults.load(), 0u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, DontNeedDropsPages) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  (*map)->TouchWrite(0);
  (*map)->TouchRead(kPageSize);
  ASSERT_TRUE((*map)->Advise(0, 2 * kPageSize, Advice::kDontNeed).ok());
  EXPECT_EQ(runtime_->cache().TotalDirty(), 0u);
  // Dirty data was written back, not lost.
  uint64_t majors = runtime_->fault_stats().major_faults.load();
  EXPECT_TRUE((*map)->TouchRead(0).faulted);  // faults again
  EXPECT_EQ(runtime_->fault_stats().major_faults.load(), majors + 1);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, MprotectBlocksWritesAndDowngrades) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* amap = static_cast<AquilaMap*>(*map);
  (*map)->TouchWrite(0);
  uint64_t shootdowns = runtime_->tlb().shootdowns();
  ASSERT_TRUE(amap->Protect(kProtRead).ok());
  EXPECT_GT(runtime_->tlb().shootdowns(), shootdowns);
  std::vector<uint8_t> buf(8, 1);
  EXPECT_FALSE((*map)->Write(0, std::span<const uint8_t>(buf)).ok());
  EXPECT_TRUE((*map)->Read(0, std::span(buf)).ok());
  ASSERT_TRUE(amap->Protect(kProtRead | kProtWrite).ok());
  EXPECT_TRUE((*map)->Write(0, std::span<const uint8_t>(buf)).ok());
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, RemapPreservesCachedData) {
  FillDevice(0, 2 << 20);
  DeviceBacking backing(device_.get(), 0, 2 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  (*map)->TouchWrite(0);  // dirty page carried across the remap
  uint64_t majors = runtime_->fault_stats().major_faults.load();
  StatusOr<MemoryMap*> bigger = runtime_->Remap(*map, 2 << 20);
  ASSERT_TRUE(bigger.ok());
  EXPECT_EQ((*bigger)->length(), 2ull << 20);
  // Cached page moved, not refetched.
  std::vector<uint8_t> buf(4);
  ASSERT_TRUE((*bigger)->Read(0, std::span(buf)).ok());
  EXPECT_EQ(buf[0], static_cast<uint8_t>(PatternAt(0) + 1));
  EXPECT_EQ(runtime_->fault_stats().major_faults.load(), majors);
  // The grown tail is reachable.
  ASSERT_TRUE((*bigger)->Read((2 << 20) - 16, std::span(buf)).ok());
  ASSERT_TRUE(runtime_->Unmap(*bigger).ok());
}

TEST_F(AquilaTest, MapValidation) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  EXPECT_FALSE(runtime_->Map(&backing, 0, kProtRead).ok());
  EXPECT_FALSE(runtime_->Map(&backing, 2 << 20, kProtRead).ok());  // beyond backing
  EXPECT_FALSE(runtime_->Map(&backing, 1 << 20, 0).ok());
  EXPECT_FALSE(runtime_->Unmap(reinterpret_cast<MemoryMap*>(&backing)).ok());
}

TEST_F(AquilaTest, AccessBeyondMappingRejected) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  std::vector<uint8_t> buf(16);
  EXPECT_FALSE((*map)->Read((1 << 20) - 8, std::span(buf)).ok());
  EXPECT_TRUE((*map)->Read((1 << 20) - 16, std::span(buf)).ok());
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, GrowAndShrinkCache) {
  uint64_t before = runtime_->cache().capacity_pages();
  ASSERT_TRUE(runtime_->GrowCache(4ull << 20).ok());
  EXPECT_EQ(runtime_->cache().capacity_pages(), before + 1024);
  StatusOr<uint64_t> shrunk = runtime_->ShrinkCache(4ull << 20);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_EQ(*shrunk, 4ull << 20);
  EXPECT_EQ(runtime_->cache().capacity_pages(), before);
}

TEST_F(AquilaTest, MultiThreadedSharedMapIntegrity) {
  // Many threads hammer a shared mapping 2x the cache size with writes to
  // thread-private slots and reads of a shared pattern.
  constexpr uint64_t kBytes = 8ull << 20;
  constexpr int kThreads = 8;
  FillDevice(0, kBytes);
  DeviceBacking backing(device_.get(), 0, kBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  std::vector<std::thread> threads;
  std::atomic<bool> corrupt{false};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      runtime_->EnterThread();
      Rng rng(t * 977 + 3);
      for (int i = 0; i < 4000; i++) {
        uint64_t page = rng.Uniform(kBytes / kPageSize);
        // Each thread owns byte `16 + t` of every page.
        uint64_t off = page * kPageSize + 16 + static_cast<uint64_t>(t);
        uint8_t value = static_cast<uint8_t>(t * 37 + (page & 0x3f));
        (*map)->StoreValue<uint8_t>(off, value);
        uint8_t read_back = (*map)->LoadValue<uint8_t>(off);
        if (read_back != value) {
          corrupt.store(true);
        }
        // Shared read-only byte retains the device pattern.
        uint8_t shared = (*map)->LoadValue<uint8_t>(page * kPageSize + 4000);
        if (shared != PatternAt(page * kPageSize + 4000)) {
          corrupt.store(true);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(runtime_->fault_stats().evicted_pages.load(), 0u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AquilaTest, BlobBackedMapping) {
  Blobstore::Options bs_options;
  bs_options.cluster_size = 64 * 1024;
  bs_options.metadata_bytes = 256 * 1024;
  Vcpu& vcpu = ThisVcpu();
  StatusOr<std::unique_ptr<Blobstore>> store =
      Blobstore::Format(vcpu, device_.get(), bs_options);
  ASSERT_TRUE(store.ok());
  StatusOr<BlobId> blob = (*store)->CreateBlob(16);  // 1 MB
  ASSERT_TRUE(blob.ok());
  std::vector<uint8_t> init(1 << 20);
  for (size_t i = 0; i < init.size(); i++) {
    init[i] = static_cast<uint8_t>(i % 251);
  }
  ASSERT_TRUE((*store)->WriteBlob(vcpu, *blob, 0, std::span<const uint8_t>(init)).ok());

  BlobBacking backing(store->get(), *blob);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  std::vector<uint8_t> buf(1000);
  ASSERT_TRUE((*map)->Read(500000, std::span(buf)).ok());
  for (size_t i = 0; i < buf.size(); i++) {
    ASSERT_EQ(buf[i], static_cast<uint8_t>((500000 + i) % 251));
  }
  std::vector<uint8_t> out(kPageSize, 0x99);
  ASSERT_TRUE((*map)->Write(128 * 1024, std::span<const uint8_t>(out)).ok());
  ASSERT_TRUE((*map)->Sync(0, 1 << 20).ok());
  std::vector<uint8_t> check(kPageSize);
  ASSERT_TRUE((*store)->ReadBlob(vcpu, *blob, 128 * 1024, std::span(check)).ok());
  EXPECT_EQ(check, out);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// --- Async overlapped writeback/readahead pipeline ---------------------------
//
// Same runtime, Options::async_writeback = true, over an NVMe backing whose
// medium genuinely overlaps queued commands. Semantics must match the sync
// pipeline exactly; only the timing differs.
class AsyncAquilaTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kDeviceBytes = 64ull << 20;
  static constexpr uint64_t kCachePages = 1024;  // 4 MB cache

  AsyncAquilaTest() {
    NvmeController::Options ctrl_options;
    ctrl_options.capacity_bytes = kDeviceBytes;
    ctrl_ = std::make_unique<NvmeController>(ctrl_options);
    device_ = std::make_unique<NvmeDevice>(ctrl_.get());

    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 256ull << 20;
    options.hypervisor.chunk_size = 1ull << 20;
    options.cache.capacity_pages = kCachePages;
    options.cache.max_pages = kCachePages * 4;
    options.cache.eviction_batch = 64;
    options.cache.freelist.core_queue_threshold = 64;
    options.cache.freelist.move_batch = 32;
    options.async_writeback = true;
    options.async_queue_depth = 16;
    runtime_ = std::make_unique<Aquila>(options);
  }

  void FillDevice(uint64_t offset, uint64_t bytes) {
    std::vector<uint8_t> buf(kPageSize);
    Vcpu& vcpu = ThisVcpu();
    for (uint64_t page = 0; page < bytes / kPageSize; page++) {
      for (uint64_t i = 0; i < kPageSize; i++) {
        buf[i] = PatternAt(offset + page * kPageSize + i);
      }
      ASSERT_TRUE(device_->Write(vcpu, offset + page * kPageSize,
                                 std::span<const uint8_t>(buf)).ok());
    }
  }

  uint8_t DeviceByte(uint64_t offset) {
    std::vector<uint8_t> buf(kPageSize);
    Vcpu& vcpu = ThisVcpu();
    uint64_t page_offset = offset & ~(kPageSize - 1);
    AQUILA_CHECK(device_->Read(vcpu, page_offset, std::span(buf)).ok());
    return buf[offset - page_offset];
  }

  static uint8_t PatternAt(uint64_t offset) { return static_cast<uint8_t>(offset * 131 + 17); }

  std::unique_ptr<NvmeController> ctrl_;
  std::unique_ptr<NvmeDevice> device_;
  std::unique_ptr<Aquila> runtime_;
};

TEST_F(AsyncAquilaTest, EvictionRoundTripPreservesData) {
  // Working set 4x the cache: every page round-trips through the async
  // writeback pipeline (kWritingBack, completion reap) and back.
  constexpr uint64_t kBytes = 16ull << 20;
  FillDevice(0, kBytes);
  DeviceBacking backing(device_.get(), 0, kBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  constexpr uint64_t kPages = kBytes / kPageSize;
  for (uint64_t p = 0; p < kPages; p++) {
    (*map)->TouchWrite(p * kPageSize);
  }
  EXPECT_GT(runtime_->fault_stats().evicted_pages.load(), 0u);
  EXPECT_GT(runtime_->fault_stats().writeback_pages.load(), 0u);

  for (uint64_t p = 0; p < kPages; p++) {
    uint64_t off = p * kPageSize;
    std::vector<uint8_t> buf(16);
    ASSERT_TRUE((*map)->Read(off, std::span(buf)).ok());
    ASSERT_EQ(buf[0], static_cast<uint8_t>(PatternAt(off) + 1)) << "page " << p;
    ASSERT_EQ(buf[1], PatternAt(off + 1)) << "page " << p;
  }
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
  // Unmap drained the engine: every frame is back on the freelist.
  EXPECT_EQ(runtime_->cache().ApproxFreeFrames(), kCachePages);
}

TEST_F(AsyncAquilaTest, MsyncDrainsInFlightWritebacks) {
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  std::vector<uint8_t> out(kPageSize * 3, 0xAB);
  ASSERT_TRUE((*map)->Write(kPageSize, std::span<const uint8_t>(out)).ok());
  EXPECT_EQ(runtime_->cache().TotalDirty(), 3u);
  ASSERT_TRUE((*map)->Sync(kPageSize, out.size()).ok());
  EXPECT_EQ(runtime_->cache().TotalDirty(), 0u);
  EXPECT_EQ(DeviceByte(kPageSize), 0xAB);
  EXPECT_EQ(DeviceByte(kPageSize + out.size() - 1), 0xAB);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AsyncAquilaTest, DontNeedSubmitsAsyncAndRefaultSeesWrittenData) {
  FillDevice(0, 1 << 20);
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  (*map)->TouchWrite(0);
  uint8_t written = static_cast<uint8_t>(PatternAt(0) + 1);
  ASSERT_TRUE((*map)->Advise(0, kPageSize, Advice::kDontNeed).ok());
  EXPECT_EQ(runtime_->cache().TotalDirty(), 0u);
  // The page is in kWritingBack (or already reaped): a re-fault must wait
  // out the in-flight write and then read the acknowledged data back.
  std::vector<uint8_t> buf(1);
  ASSERT_TRUE((*map)->Read(0, std::span(buf)).ok());
  EXPECT_EQ(buf[0], written);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AsyncAquilaTest, ReadAheadFillsPublishOnHarvest) {
  FillDevice(0, 1 << 20);
  DeviceBacking backing(device_.get(), 0, 1 << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 1 << 20, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, 1 << 20, Advice::kSequential).ok());
  EXPECT_TRUE((*map)->TouchRead(0).faulted);  // miss: kicks off async fills
  // msync drains the engine, publishing every completed fill.
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  EXPECT_GT(runtime_->fault_stats().readahead_pages.load(), 0u);
  // The published pages hit as minor faults at most — no device read.
  uint64_t majors = runtime_->fault_stats().major_faults.load();
  for (uint64_t p = 1; p <= runtime_->options().readahead_pages; p++) {
    std::vector<uint8_t> buf(4);
    ASSERT_TRUE((*map)->Read(p * kPageSize, std::span(buf)).ok());
    ASSERT_EQ(buf[0], PatternAt(p * kPageSize));
  }
  EXPECT_EQ(runtime_->fault_stats().major_faults.load(), majors);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AsyncAquilaTest, SequentialScanAwaitsFillsWithoutDuplicateReads) {
  // A sequential scan must consume in-flight fills (AwaitFill) and re-arm
  // the window from the high-water mark — every page is read from the device
  // exactly once, either by the prefetcher or by a major fault, never both.
  constexpr uint64_t kBytes = 2ull << 20;  // 512 pages, fits in cache
  constexpr uint64_t kPages = kBytes / kPageSize;
  FillDevice(0, kBytes);
  DeviceBacking backing(device_.get(), 0, kBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, kBytes, Advice::kSequential).ok());
  for (uint64_t p = 0; p < kPages; p++) {
    std::vector<uint8_t> buf(2);
    ASSERT_TRUE((*map)->Read(p * kPageSize, std::span(buf)).ok());
    ASSERT_EQ(buf[0], PatternAt(p * kPageSize)) << "page " << p;
  }
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());  // drain any trailing fills
  FaultStats& stats = runtime_->fault_stats();
  EXPECT_EQ(stats.major_faults.load() + stats.readahead_pages.load(), kPages);
  // The stream rides the prefetcher: only a handful of window restarts fault
  // all the way to the device.
  EXPECT_LT(stats.major_faults.load(), kPages / 8);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(AsyncAquilaTest, RescanAfterSequentialScanStillPrefetches) {
  // The readahead high-water mark must retreat when a new stream starts
  // below it: after a full scan to EOF, a second scan from offset 0 has to
  // prefetch again instead of degrading every fault to a blocking major.
  constexpr uint64_t kBytes = 8ull << 20;  // 2048 pages, 2x the cache
  constexpr uint64_t kPages = kBytes / kPageSize;
  FillDevice(0, kBytes);
  DeviceBacking backing(device_.get(), 0, kBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, kBytes, Advice::kSequential).ok());
  std::vector<uint8_t> buf(2);
  for (uint64_t p = 0; p < kPages; p++) {
    ASSERT_TRUE((*map)->Read(p * kPageSize, std::span(buf)).ok());
  }
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());  // drain trailing fills
  uint64_t after_first = runtime_->fault_stats().readahead_pages.load();
  EXPECT_GT(after_first, 0u);

  for (uint64_t p = 0; p < kPages; p++) {
    ASSERT_TRUE((*map)->Read(p * kPageSize, std::span(buf)).ok());
    ASSERT_EQ(buf[0], PatternAt(p * kPageSize)) << "page " << p;
  }
  ASSERT_TRUE((*map)->Sync(0, kPageSize).ok());
  uint64_t after_second = runtime_->fault_stats().readahead_pages.load();
  // The first scan evicted the early pages, so the re-scan faults on them —
  // and must ride the prefetcher again, not fall off the mark.
  EXPECT_GT(after_second, after_first + 64);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// DeviceQueue decorator that rejects the first `budget` write submissions at
// the machinery level (kInvalidArgument before the command reaches the
// device), then forwards normally. Models a transient queue rejection.
class RejectingQueue : public DeviceQueue {
 public:
  RejectingQueue(std::unique_ptr<DeviceQueue> inner, std::atomic<int>* budget)
      : DeviceQueue(inner->depth()), inner_(std::move(inner)), budget_(budget) {}

  const char* name() const override { return "rejecting"; }
  uint64_t io_alignment() const override { return inner_->io_alignment(); }

  Status SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                    uint64_t user_data) override {
    Status status = inner_->SubmitRead(vcpu, offset, dst, user_data);
    if (!status.ok()) {
      return status;
    }
    NoteSubmit(vcpu.clock().Now());
    return Status::Ok();
  }

  Status SubmitWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src,
                     uint64_t user_data) override {
    if (budget_->load(std::memory_order_relaxed) > 0 &&
        budget_->fetch_sub(1, std::memory_order_relaxed) > 0) {
      return Status::InvalidArgument("injected submission rejection");
    }
    Status status = inner_->SubmitWrite(vcpu, offset, src, user_data);
    if (!status.ok()) {
      return status;
    }
    NoteSubmit(vcpu.clock().Now());
    return Status::Ok();
  }

  uint32_t Poll(Vcpu& vcpu, std::vector<Completion>* out) override {
    std::vector<Completion> inner_done;
    inner_->Poll(vcpu, &inner_done);
    uint64_t now = vcpu.clock().Now();
    for (Completion& c : inner_done) {
      NoteComplete(now, 0);
      out->push_back(std::move(c));
    }
    return static_cast<uint32_t>(inner_done.size());
  }

  uint64_t NextReadyAt() const override { return inner_->NextReadyAt(); }

 private:
  std::unique_ptr<DeviceQueue> inner_;
  std::atomic<int>* budget_;
};

class RejectingDevice : public BlockDevice {
 public:
  explicit RejectingDevice(BlockDevice* inner) : inner_(inner) {}

  const char* name() const override { return "rejecting"; }
  uint64_t capacity_bytes() const override { return inner_->capacity_bytes(); }
  uint64_t io_alignment() const override { return inner_->io_alignment(); }
  bool supports_queueing() const override { return inner_->supports_queueing(); }
  std::unique_ptr<DeviceQueue> CreateQueue(uint32_t depth) override {
    return std::make_unique<RejectingQueue>(inner_->CreateQueue(depth), &budget_);
  }

  void set_budget(int n) { budget_.store(n, std::memory_order_relaxed); }
  int budget() const { return budget_.load(std::memory_order_relaxed); }

 protected:
  Status DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) override {
    return inner_->Read(vcpu, offset, dst);
  }
  Status DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) override {
    return inner_->Write(vcpu, offset, src);
  }

 private:
  BlockDevice* inner_;
  std::atomic<int> budget_{0};
};

TEST_F(AsyncAquilaTest, EvictionSubmissionRejectionIsNotAFaultErrorAndLeaksNothing) {
  // A submission-machinery rejection during async eviction must not surface
  // as a fault error for the (unrelated) faulting page, must not skip the
  // batched shootdown, and must not leak the batch's clean victims: the
  // rejected frame is restored dirty-in-place and retried by a later round.
  constexpr uint64_t kBytes = 8ull << 20;  // 2x the cache
  constexpr uint64_t kPages = kBytes / kPageSize;
  FillDevice(0, kBytes);
  RejectingDevice rejecting(device_.get());
  DeviceBacking backing(&rejecting, 0, kBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  rejecting.set_budget(1);  // below writeback_failure_limit: no degradation

  // Mixed clean/dirty working set: the rejected eviction batch contains both
  // kinds of victims, so the clean-frame release after a rejection is
  // exercised too.
  std::vector<uint8_t> one(1);
  for (uint64_t p = 0; p < kPages; p++) {
    uint64_t off = p * kPageSize;
    if (p % 2 == 0) {
      one[0] = static_cast<uint8_t>(p * 7 + 3);
      ASSERT_TRUE((*map)->Write(off, std::span<const uint8_t>(one)).ok()) << "page " << p;
    } else {
      ASSERT_TRUE((*map)->Read(off, std::span(one)).ok()) << "page " << p;
    }
  }
  EXPECT_EQ(rejecting.budget(), 0);  // the rejection fired
  EXPECT_GT(runtime_->fault_stats().writeback_errors.load(), 0u);
  EXPECT_FALSE(static_cast<AquilaMap*>(*map)->degraded());

  // The rejected page's data survived the failed round: verify everything.
  for (uint64_t p = 0; p < kPages; p++) {
    uint64_t off = p * kPageSize;
    ASSERT_TRUE((*map)->Read(off, std::span(one)).ok()) << "page " << p;
    uint8_t want = p % 2 == 0 ? static_cast<uint8_t>(p * 7 + 3) : PatternAt(off);
    ASSERT_EQ(one[0], want) << "page " << p;
  }
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
  // No clean victim leaked from the rejected round.
  EXPECT_EQ(runtime_->cache().ApproxFreeFrames(), kCachePages);
}

TEST_F(AsyncAquilaTest, MultiThreadedAsyncIntegrity) {
  constexpr uint64_t kBytes = 8ull << 20;
  constexpr int kThreads = 8;
  FillDevice(0, kBytes);
  DeviceBacking backing(device_.get(), 0, kBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  std::vector<std::thread> threads;
  std::atomic<bool> corrupt{false};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      runtime_->EnterThread();
      Rng rng(t * 977 + 3);
      for (int i = 0; i < 2000; i++) {
        uint64_t page = rng.Uniform(kBytes / kPageSize);
        uint64_t off = page * kPageSize + 16 + static_cast<uint64_t>(t);
        uint8_t value = static_cast<uint8_t>(t * 37 + (page & 0x3f));
        (*map)->StoreValue<uint8_t>(off, value);
        if ((*map)->LoadValue<uint8_t>(off) != value) {
          corrupt.store(true);
        }
        uint8_t shared = (*map)->LoadValue<uint8_t>(page * kPageSize + 4000);
        if (shared != PatternAt(page * kPageSize + 4000)) {
          corrupt.store(true);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(runtime_->fault_stats().evicted_pages.load(), 0u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
  EXPECT_EQ(runtime_->cache().ApproxFreeFrames(), kCachePages);
}

}  // namespace
}  // namespace aquila
