// Tests for the YCSB workload generator and runner.
#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "src/ycsb/runner.h"
#include "src/ycsb/workload.h"

namespace aquila {
namespace {

// In-memory reference store for runner plumbing tests.
class MapStore : public KvStore {
 public:
  Status Put(const Slice& key, const Slice& value) override {
    std::lock_guard<std::mutex> guard(mu_);
    map_[key.ToString()] = value.ToString();
    return Status::Ok();
  }
  Status Delete(const Slice& key) override {
    std::lock_guard<std::mutex> guard(mu_);
    map_.erase(key.ToString());
    return Status::Ok();
  }
  Status Get(const Slice& key, std::string* value, bool* found) override {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = map_.find(key.ToString());
    *found = it != map_.end();
    if (*found) {
      *value = it->second;
    }
    ThisThreadClock().Charge(CostCategory::kUserWork, 1000);
    return Status::Ok();
  }
  Status Scan(const Slice& start, int count,
              const std::function<void(const Slice&, const Slice&)>& visit) override {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = map_.lower_bound(start.ToString());
    for (int i = 0; i < count && it != map_.end(); ++i, ++it) {
      visit(Slice(it->first), Slice(it->second));
    }
    return Status::Ok();
  }
  size_t size() const { return map_.size(); }

 private:
  std::mutex mu_;
  std::map<std::string, std::string> map_;
};

TEST(YcsbWorkloadTest, KeyShapeAndDeterminism) {
  std::string key = YcsbKey(123, 30);
  EXPECT_EQ(key.size(), 30u);
  EXPECT_EQ(key.substr(0, 4), "user");
  EXPECT_EQ(key, YcsbKey(123, 30));
  EXPECT_NE(key, YcsbKey(124, 30));
  EXPECT_EQ(YcsbValue(7, 1024).size(), 1024u);
  EXPECT_EQ(YcsbValue(7, 1024), YcsbValue(7, 1024));
}

TEST(YcsbWorkloadTest, StandardMixesSumToOne) {
  for (const YcsbWorkload& w : {YcsbWorkload::A(), YcsbWorkload::B(), YcsbWorkload::C(),
                                YcsbWorkload::D(), YcsbWorkload::E(), YcsbWorkload::F()}) {
    double total = w.read_proportion + w.update_proportion + w.insert_proportion +
                   w.scan_proportion + w.rmw_proportion;
    EXPECT_NEAR(total, 1.0, 1e-9) << w.name;
  }
  EXPECT_EQ(YcsbWorkload::D().distribution, YcsbDistribution::kLatest);
}

TEST(YcsbRunnerTest, LoadInsertsAllRecords) {
  MapStore store;
  YcsbWorkload w = YcsbWorkload::C();
  w.record_count = 500;
  w.operation_count = 100;
  w.value_bytes = 64;
  YcsbRunner runner(&store, w, YcsbRunner::Options{});
  ASSERT_TRUE(runner.Load().ok());
  EXPECT_EQ(store.size(), 500u);
}

TEST(YcsbRunnerTest, ReadOnlyWorkloadFindsEverything) {
  MapStore store;
  YcsbWorkload w = YcsbWorkload::C();
  w.record_count = 500;
  w.operation_count = 2000;
  w.value_bytes = 64;
  w.distribution = YcsbDistribution::kUniform;
  YcsbRunner runner(&store, w, YcsbRunner::Options{});
  ASSERT_TRUE(runner.Load().ok());
  StatusOr<YcsbReport> report = runner.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->operations, 2000u);
  EXPECT_EQ(report->failed_reads, 0u);
  EXPECT_GT(report->throughput_kops, 0.0);
  EXPECT_GT(report->avg_latency_us, 0.0);
  EXPECT_GE(report->p999_latency_us, report->p99_latency_us);
  // The MapStore charges 1000 cycles/Get = ~0.42 us.
  EXPECT_NEAR(report->avg_latency_us, 0.42, 0.2);
}

TEST(YcsbRunnerTest, MultiThreadedRun) {
  MapStore store;
  YcsbWorkload w = YcsbWorkload::A();
  w.record_count = 300;
  w.operation_count = 4000;
  w.value_bytes = 32;
  YcsbRunner::Options options;
  options.threads = 4;
  YcsbRunner runner(&store, w, options);
  ASSERT_TRUE(runner.Load().ok());
  StatusOr<YcsbReport> report = runner.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->operations, 4000u);
  EXPECT_EQ(report->failed_reads, 0u);
}

TEST(YcsbRunnerTest, InsertWorkloadGrowsStore) {
  MapStore store;
  YcsbWorkload w = YcsbWorkload::D();
  w.record_count = 200;
  w.operation_count = 1000;
  w.value_bytes = 32;
  YcsbRunner runner(&store, w, YcsbRunner::Options{});
  ASSERT_TRUE(runner.Load().ok());
  StatusOr<YcsbReport> report = runner.Run();
  ASSERT_TRUE(report.ok());
  // ~5% inserts.
  EXPECT_GT(store.size(), 210u);
  EXPECT_EQ(report->failed_reads, 0u);  // latest distribution stays in range
}

TEST(YcsbRunnerTest, ScanWorkloadRuns) {
  MapStore store;
  YcsbWorkload w = YcsbWorkload::E();
  w.record_count = 200;
  w.operation_count = 500;
  w.value_bytes = 32;
  YcsbRunner runner(&store, w, YcsbRunner::Options{});
  ASSERT_TRUE(runner.Load().ok());
  StatusOr<YcsbReport> report = runner.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->operations, 500u);
}

}  // namespace
}  // namespace aquila
