// ShootdownMaskMode::kReuseElide: deferred shootdowns on the frame-recycle
// path (DESIGN.md §10).
//
// Exact-count units pin the counter semantics (one elide per same-owner
// reuse, one mismatch per cross-owner handout), the teardown drain, and the
// TLB-entry effects of each resolution. The stale-translation detector
// walks every core's TLB slots at quiesce and checks the §10 safety
// invariant directly: a valid entry must either match the live PTE for its
// vpn or be covered by a pending deferral for the same (vpn, frame) whose
// mask names the core — i.e. no entry can reach a frame owned by a
// different (region, vaddr) incarnation. The churn stress runs the detector
// after an adversarial mix of eviction pressure, transient drops, and
// madvise(DONTNEED); the TSan build runs this file too, and a
// -DAQUILA_RACE_INJECT=ON build stretches the FreeFrame reset -> freelist
// publish window the stamped recycle protocol depends on (the satellite
// ordering assert lives in PageCache::AllocFrame).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/storage/pmem_device.h"
#include "src/util/rng.h"

namespace aquila {
namespace {

// The §10 deferred-shootdown safety invariant, checked entry by entry.
// Meaningful only at quiesce (no concurrent faults/evictions): the frame
// payload rides a relaxed parallel array.
void ExpectNoStaleTranslations(Aquila& runtime) {
  TlbSet& tlb = runtime.tlb();
  for (int core = 0; core < CoreRegistry::kMaxCores; core++) {
    for (int slot = 0; slot < TlbSet::kEntries; slot++) {
      TlbSet::EntrySnapshot snap = tlb.ReadEntryForTest(core, slot);
      if (!snap.valid || snap.frame == TlbSet::kNoFramePayload) {
        continue;
      }
      // PTEs carry the frame id shifted up (the install path's "gpa"), so
      // agreement means the entry resolves to the frame the PTE maps today.
      uint64_t pte = runtime.page_table().Lookup(snap.vpn << kPageShift);
      if (Pte::Present(pte) && (Pte::Gpa(pte) >> kPageShift) == snap.frame) {
        continue;  // live translation: entry and PTE agree on the frame
      }
      DeferredShootdown d;
      if (tlb.PeekDeferred(snap.vpn, &d) && d.frame == snap.frame &&
          (d.cpu_mask & (1ull << (core & 63))) != 0) {
        // Deferral window: the frame is free but still holds this (region,
        // vpn) incarnation's clean bytes, and the parked shootdown names
        // this core — the entry is stale-but-benign by construction.
        continue;
      }
      ADD_FAILURE() << "stale translation: core " << core << " slot " << slot
                    << " vpn " << snap.vpn << " -> frame " << snap.frame
                    << " has neither a matching PTE nor a covering deferral"
                    << " (pte=0x" << std::hex << pte << std::dec
                    << " deferred=" << tlb.PeekDeferred(snap.vpn, &d) << ")";
    }
  }
}

class ReuseElideTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kDeviceBytes = 32ull << 20;

  void MakeRuntime(uint64_t cache_pages, int active_cores) {
    PmemDevice::Options dev_options;
    dev_options.capacity_bytes = kDeviceBytes;
    device_ = std::make_unique<PmemDevice>(dev_options);
    for (uint64_t i = 0; i < kDeviceBytes; i++) {
      device_->dax_base()[i] = static_cast<uint8_t>(i * 131 + 17);
    }
    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 128ull << 20;
    options.hypervisor.chunk_size = 1ull << 20;
    options.cache.capacity_pages = cache_pages;
    options.cache.max_pages = cache_pages * 2;
    options.cache.eviction_batch = 64;
    options.cache.freelist.core_queue_threshold = 64;
    options.cache.freelist.move_batch = 32;
    options.active_cores = active_cores;
    options.shootdown_mask_mode = ShootdownMaskMode::kReuseElide;
    runtime_ = std::make_unique<Aquila>(options);
  }

  // Runs `body` on a worker pinned to core 0 so mask/counter expectations
  // are deterministic regardless of the gtest main thread's core id.
  template <typename Fn>
  void OnCore0(Fn body) {
    std::thread worker([&] {
      CoreRegistry::SetCurrentCoreForTest(0);
      runtime_->EnterThread();
      body();
    });
    worker.join();
  }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<Aquila> runtime_;
};

// touch P -> drop P -> touch P: the refault pops the just-freed frame (core
// queues are LIFO), the stamp matches the deferral, and the shootdown is
// elided outright — no Shootdown round ever runs, the stale TLB entry
// becomes live-correct again, and the counters move exactly once.
TEST_F(ReuseElideTest, SameOwnerReuseElidesExactlyOnce) {
  MakeRuntime(/*cache_pages=*/1024, /*active_cores=*/4);
  DeviceBacking backing(device_.get(), 0, 4ull << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 4ull << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  const uint64_t start_page = static_cast<AquilaMap*>(*map)->vma().start_page;
  constexpr uint64_t kOffset = 37 * kPageSize;
  OnCore0([&] {
    ASSERT_TRUE((*map)->Advise(0, (*map)->length(), Advice::kRandom).ok());
    (*map)->TouchRead(kOffset + 64);
    ASSERT_TRUE((*map)->Advise(kOffset, kPageSize, Advice::kDontNeed).ok());
    EXPECT_EQ(runtime_->tlb().deferred_pending(), 1u);
    // The drop itself must not have flushed anything: the batch was empty.
    EXPECT_EQ(runtime_->tlb().shootdowns(), 0u);
    (*map)->TouchRead(kOffset + 64);
  });
  EXPECT_EQ(runtime_->tlb().reuse_elided(), 1u);
  EXPECT_EQ(runtime_->tlb().reuse_mismatch(), 0u);
  EXPECT_EQ(runtime_->tlb().shootdowns(), 0u);
  EXPECT_EQ(runtime_->tlb().deferred_pending(), 0u);
  // The elision re-legitimized the entry: it must match the live PTE again.
  const uint64_t vpn = start_page + kOffset / kPageSize;
  TlbSet::EntrySnapshot snap =
      runtime_->tlb().ReadEntryForTest(0, static_cast<int>(vpn) & (TlbSet::kEntries - 1));
  EXPECT_TRUE(snap.valid);
  EXPECT_EQ(snap.vpn, vpn);
  ExpectNoStaleTranslations(*runtime_);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// touch P -> drop P -> touch Q: the freed frame is handed to a different
// owner, so the parked shootdown must execute (one mismatch) and P's stale
// entry must be gone before Q's translation goes live on the frame.
TEST_F(ReuseElideTest, CrossOwnerHandoutExecutesExactlyOnce) {
  MakeRuntime(/*cache_pages=*/1024, /*active_cores=*/4);
  DeviceBacking backing(device_.get(), 0, 4ull << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 4ull << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  const uint64_t start_page = static_cast<AquilaMap*>(*map)->vma().start_page;
  constexpr uint64_t kDropOffset = 11 * kPageSize;
  constexpr uint64_t kOtherOffset = 200 * kPageSize;
  OnCore0([&] {
    ASSERT_TRUE((*map)->Advise(0, (*map)->length(), Advice::kRandom).ok());
    (*map)->TouchRead(kDropOffset + 64);
    ASSERT_TRUE((*map)->Advise(kDropOffset, kPageSize, Advice::kDontNeed).ok());
    EXPECT_EQ(runtime_->tlb().deferred_pending(), 1u);
    (*map)->TouchRead(kOtherOffset + 64);
  });
  EXPECT_EQ(runtime_->tlb().reuse_elided(), 0u);
  EXPECT_EQ(runtime_->tlb().reuse_mismatch(), 1u);
  EXPECT_EQ(runtime_->tlb().deferred_pending(), 0u);
  // The executed deferral must have invalidated P's entry on core 0 (the
  // slot either went empty or was re-used by another vpn).
  const uint64_t dropped_vpn = start_page + kDropOffset / kPageSize;
  TlbSet::EntrySnapshot snap = runtime_->tlb().ReadEntryForTest(
      0, static_cast<int>(dropped_vpn) & (TlbSet::kEntries - 1));
  EXPECT_TRUE(!snap.valid || snap.vpn != dropped_vpn);
  ExpectNoStaleTranslations(*runtime_);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// A deferral still parked at Unmap is drained into the teardown batch: it
// counts as neither an elide nor a mismatch, and nothing leaks.
TEST_F(ReuseElideTest, TeardownDrainsParkedDeferrals) {
  MakeRuntime(/*cache_pages=*/1024, /*active_cores=*/4);
  DeviceBacking backing(device_.get(), 0, 4ull << 20);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 4ull << 20, kProtRead);
  ASSERT_TRUE(map.ok());
  OnCore0([&] {
    ASSERT_TRUE((*map)->Advise(0, (*map)->length(), Advice::kRandom).ok());
    // Touch first, drop second: a drop-then-touch interleaving would hand
    // each dropped frame to the next page's fault (a counted mismatch).
    for (int i = 0; i < 8; i++) {
      (*map)->TouchRead(static_cast<uint64_t>(i) * kPageSize + 64);
    }
    for (int i = 0; i < 8; i++) {
      ASSERT_TRUE(
          (*map)->Advise(static_cast<uint64_t>(i) * kPageSize, kPageSize, Advice::kDontNeed)
              .ok());
    }
  });
  EXPECT_EQ(runtime_->tlb().deferred_pending(), 8u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
  EXPECT_EQ(runtime_->tlb().deferred_pending(), 0u);
  EXPECT_EQ(runtime_->tlb().reuse_elided(), 0u);
  EXPECT_EQ(runtime_->tlb().reuse_mismatch(), 0u);
  ExpectNoStaleTranslations(*runtime_);
}

// The masked Shootdown's epoch-sanity rule (a capture can never carry an
// epoch from the future; the broadcast default ~0 is the documented
// exception) exercised directly on a bare TlbSet.
TEST(TlbEpochCaptureTest, BroadcastDefaultAndPastEpochsAccepted) {
  TlbSet tlb;
  SimClock clock;
  PostedIpiFabric fabric;
  tlb.Insert(0, 100, false);
  tlb.Insert(1, 100, false);
  tlb.FlushCore(1);  // epoch -> 1
  // Default-initialized rows are broadcast-equivalent: mask ~0, epoch ~0.
  PageShootdown broadcast_row{100, ~0ull, ~0ull};
  tlb.Shootdown(clock, 0, 2, std::span<const PageShootdown>(&broadcast_row, 1), fabric,
                ShootdownMaskMode::kMaskGen);
  // A properly captured row carries an epoch no newer than the global one.
  PageShootdown captured{100, 0b11, tlb.CurrentEpoch()};
  tlb.Shootdown(clock, 0, 2, std::span<const PageShootdown>(&captured, 1), fabric,
                ShootdownMaskMode::kMaskGen);
  EXPECT_EQ(tlb.shootdowns(), 2u);
}

// Multi-threaded churn: eviction pressure (2x cache), transient drops (the
// elision's target pattern), DONTNEED slices, and cross-thread frame
// stealing, followed by the detector at quiesce. Data integrity doubles as
// the end-to-end proof that no elision ever skipped a flush it owed: a
// wrong byte would mean a core read through a translation whose frame had
// been handed to another owner. Also the satellite-1 stress: every
// AllocFrame under this churn re-asserts the FreeFrame reset -> release
// publish ordering (stamped recycles included).
TEST_F(ReuseElideTest, ChurnDetectorFindsNoStaleTranslations) {
  constexpr int kThreads = 4;
  constexpr uint64_t kBytesPerThread = 2ull << 20;
  MakeRuntime(/*cache_pages=*/(kThreads * kBytesPerThread / kPageSize) / 2,
              /*active_cores=*/kThreads);

  std::vector<std::unique_ptr<DeviceBacking>> backings;
  std::vector<MemoryMap*> maps(kThreads);
  for (int t = 0; t < kThreads; t++) {
    backings.push_back(std::make_unique<DeviceBacking>(
        device_.get(), static_cast<uint64_t>(t) * kBytesPerThread, kBytesPerThread));
    StatusOr<MemoryMap*> map =
        runtime_->Map(backings.back().get(), kBytesPerThread, kProtRead);
    ASSERT_TRUE(map.ok());
    maps[t] = *map;
  }

  std::atomic<bool> corrupt{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      CoreRegistry::SetCurrentCoreForTest(t);
      runtime_->EnterThread();
      MemoryMap* map = maps[t];
      ASSERT_TRUE(map->Advise(0, map->length(), Advice::kRandom).ok());
      Rng rng(t * 6151 + 3);
      const uint64_t pages = map->length() / kPageSize;
      const uint64_t dev_base = static_cast<uint64_t>(t) * kBytesPerThread;
      for (int i = 0; i < 4000; i++) {
        uint64_t off = rng.Uniform(pages) * kPageSize + 512;
        uint8_t value = 0;
        ASSERT_TRUE(map->Read(off, std::span<uint8_t>(&value, 1)).ok());
        if (value != static_cast<uint8_t>((dev_base + off) * 131 + 17)) {
          corrupt.store(true);
        }
        if (i % 16 == 15) {
          // Transient drop of the page just read: the refault is the
          // same-owner reuse the elision targets.
          ASSERT_TRUE(map->Advise(off & ~(kPageSize - 1), kPageSize, Advice::kDontNeed).ok());
          ASSERT_TRUE(map->Read(off, std::span<uint8_t>(&value, 1)).ok());
          if (value != static_cast<uint8_t>((dev_base + off) * 131 + 17)) {
            corrupt.store(true);
          }
        }
        if (i % 512 == 511) {
          ASSERT_TRUE(map->Advise(0, map->length() / 4, Advice::kDontNeed).ok());
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(corrupt.load());
  EXPECT_GT(runtime_->fault_stats().evicted_pages.load(), 0u);
  EXPECT_GT(runtime_->tlb().reuse_elided(), 0u);
  EXPECT_GT(runtime_->tlb().reuse_mismatch(), 0u);
  ExpectNoStaleTranslations(*runtime_);
  for (MemoryMap* map : maps) {
    ASSERT_TRUE(runtime_->Unmap(map).ok());
  }
  EXPECT_EQ(runtime_->tlb().deferred_pending(), 0u);
}

}  // namespace
}  // namespace aquila
