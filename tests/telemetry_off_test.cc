// Compiled with AQUILA_TELEMETRY_ENABLED=0 (see tests/CMakeLists.txt): the
// recording entry points in this translation unit must compile to no-ops
// while the registry/exposition API stays linkable and functional. This is
// the compile-level contract that lets AQUILA_TELEMETRY=OFF builds strip
// every hot-path recording without ifdefs at call sites.
#include <gtest/gtest.h>

#if AQUILA_TELEMETRY_ENABLED
#error "telemetry_off_test must be compiled with AQUILA_TELEMETRY_ENABLED=0"
#endif

#include <string>

#include "src/telemetry/metrics.h"
#include "src/telemetry/scoped_timer.h"
#include "src/telemetry/trace.h"
#include "src/util/sim_clock.h"

namespace aquila {
namespace {

using telemetry::Registry;
using telemetry::TraceEventType;
using telemetry::Tracer;

TEST(TelemetryOffTest, CounterAddIsNoOp) {
  telemetry::Counter* counter = Registry().GetCounter("aquila.test.off_counter");
  counter->Reset();
  counter->Add();
  counter->Add(41);
  EXPECT_EQ(counter->Value(), 0u);
}

TEST(TelemetryOffTest, ScopedTimerRecordsNothing) {
  Histogram* hist = Registry().GetHistogram("aquila.test.off_timer");
  hist->Reset();
  SimClock clock;
  {
    telemetry::ScopedTimer timer(hist, clock);
    clock.Charge(CostCategory::kUserWork, 500);
  }
  {
    telemetry::ScopedTscTimer tsc_timer(hist);
  }
  telemetry::RecordSpanSince(hist, TraceEventType::kMsync, clock, 0, 1);
  EXPECT_EQ(hist->Count(), 0u);
}

TEST(TelemetryOffTest, TraceSpanIsEmptyAndRecordsNothing) {
  Tracer::SetEnabled(true);
  Tracer::Reset();
  const uint64_t before = Tracer::TotalRecorded();
  SimClock clock;
  {
    telemetry::TraceSpan span(TraceEventType::kShootdown, clock, 7);
    clock.Charge(CostCategory::kUserWork, 100);
  }
  EXPECT_EQ(Tracer::TotalRecorded(), before);
  Tracer::SetEnabled(false);
  // The OFF-mode span carries no state.
  EXPECT_EQ(sizeof(telemetry::TraceSpan), 1u);
  EXPECT_EQ(sizeof(telemetry::ScopedTimer), 1u);
}

TEST(TelemetryOffTest, ExpositionStillWorks) {
  telemetry::CallbackGroup group;
  group.AddGauge("aquila.test.off_gauge", [] { return 11; });
  std::string text = Registry().ToText();
  EXPECT_NE(text.find("aquila_test_off_gauge 11"), std::string::npos);
  std::string json = Registry().ToJson();
  EXPECT_NE(json.find("\"aquila.test.off_gauge\":11"), std::string::npos);
}

}  // namespace
}  // namespace aquila
