// Trap-mode (transparent mapping) tests: raw pointer loads/stores served by
// real SIGSEGV faults through the Aquila fault path, with cache frames
// aliased out of the hypervisor's memfd.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/core/trap_driver.h"
#include "src/storage/pmem_device.h"
#include "src/util/rng.h"

namespace aquila {
namespace {

class TrapModeTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kBytes = 32ull << 20;

  TrapModeTest() {
    PmemDevice::Options dev_options;
    dev_options.capacity_bytes = kBytes;
    device_ = std::make_unique<PmemDevice>(dev_options);
    backing_ = std::make_unique<DeviceBacking>(device_.get(), 0, kBytes);

    Aquila::Options options;
    options.cache.capacity_pages = 1024;  // 4 MB cache over a 32 MB mapping
    options.cache.max_pages = 4096;
    options.cache.eviction_batch = 64;
    runtime_ = std::make_unique<Aquila>(options);
  }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<DeviceBacking> backing_;
  std::unique_ptr<Aquila> runtime_;
};

TEST_F(TrapModeTest, RawLoadsSeeDeviceContents) {
  for (uint64_t i = 0; i < kBytes; i += kPageSize) {
    device_->dax_base()[i] = static_cast<uint8_t>(i >> kPageShift);
  }
  StatusOr<MemoryMap*> map = runtime_->MapTransparent(backing_.get(), kBytes, kProtRead);
  ASSERT_TRUE(map.ok());
  auto* amap = static_cast<AquilaMap*>(*map);
  ASSERT_TRUE(amap->transparent());
  volatile uint8_t* data = amap->data();
  uint64_t faults_before = TrapDriver::HandledFaults();
  for (uint64_t page = 0; page < 64; page++) {
    ASSERT_EQ(data[page * kPageSize], static_cast<uint8_t>(page)) << page;
  }
  EXPECT_GE(TrapDriver::HandledFaults() - faults_before, 64u);
  // Second pass: genuine hardware hits, zero handler invocations.
  uint64_t faults_mid = TrapDriver::HandledFaults();
  for (uint64_t page = 0; page < 64; page++) {
    ASSERT_EQ(data[page * kPageSize], static_cast<uint8_t>(page));
  }
  EXPECT_EQ(TrapDriver::HandledFaults(), faults_mid);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(TrapModeTest, RawStoresTrackDirtyAndPersist) {
  StatusOr<MemoryMap*> map =
      runtime_->MapTransparent(backing_.get(), kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* amap = static_cast<AquilaMap*>(*map);
  uint8_t* data = amap->data();

  // Read first (maps RO), then store: the store takes the upgrade fault.
  volatile uint8_t sink = data[0];
  (void)sink;
  uint64_t upgrades_before = runtime_->fault_stats().write_upgrades.load();
  data[0] = 0xAB;
  EXPECT_EQ(runtime_->fault_stats().write_upgrades.load(), upgrades_before + 1);
  // Subsequent stores to the same page: pure hardware.
  uint64_t handled = TrapDriver::HandledFaults();
  data[1] = 0xCD;
  data[4000] = 0xEF;
  EXPECT_EQ(TrapDriver::HandledFaults(), handled);

  EXPECT_EQ(runtime_->cache().TotalDirty(), 1u);
  ASSERT_TRUE((*map)->Sync(0, kBytes).ok());
  EXPECT_EQ(device_->dax_base()[0], 0xAB);
  EXPECT_EQ(device_->dax_base()[1], 0xCD);
  EXPECT_EQ(device_->dax_base()[4000], 0xEF);

  // msync write-protected the page: the next store re-faults and re-dirties.
  uint64_t upgrades_mid = runtime_->fault_stats().write_upgrades.load();
  data[8] = 0x11;
  EXPECT_EQ(runtime_->fault_stats().write_upgrades.load(), upgrades_mid + 1);
  EXPECT_EQ(runtime_->cache().TotalDirty(), 1u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(TrapModeTest, SurvivesEvictionUnderRawAccess) {
  // Mapping is 8x the cache: raw pointer traffic forces real unmap/remap
  // cycles through eviction; data must round-trip through writeback.
  StatusOr<MemoryMap*> map =
      runtime_->MapTransparent(backing_.get(), kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* amap = static_cast<AquilaMap*>(*map);
  uint8_t* data = amap->data();

  constexpr uint64_t kPages = kBytes / kPageSize;
  for (uint64_t page = 0; page < kPages; page++) {
    uint64_t value = page * 2654435761ull + 7;
    std::memcpy(data + page * kPageSize + 16, &value, sizeof(value));
  }
  EXPECT_GT(runtime_->fault_stats().evicted_pages.load(), 0u);
  uint64_t writebacks = runtime_->fault_stats().writeback_pages.load();
  EXPECT_GT(writebacks, 0u);

  for (uint64_t page = 0; page < kPages; page++) {
    uint64_t value;
    std::memcpy(&value, data + page * kPageSize + 16, sizeof(value));
    ASSERT_EQ(value, page * 2654435761ull + 7) << page;
  }
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(TrapModeTest, MultiThreadedRawAccess) {
  StatusOr<MemoryMap*> map =
      runtime_->MapTransparent(backing_.get(), kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* amap = static_cast<AquilaMap*>(*map);
  uint8_t* data = amap->data();

  constexpr int kThreads = 4;
  std::atomic<bool> corrupt{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; t++) {
    pool.emplace_back([&, t] {
      runtime_->EnterThread();
      Rng rng(t + 31);
      for (int op = 0; op < 3000; op++) {
        uint64_t page = rng.Uniform(kBytes / kPageSize);
        uint8_t* slot = data + page * kPageSize + 32 + t;
        uint8_t value = static_cast<uint8_t>(t * 53 + (page & 0x3f));
        *slot = value;
        if (*slot != value) {
          corrupt.store(true);
        }
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  EXPECT_FALSE(corrupt.load());
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

TEST_F(TrapModeTest, SoftAndTrapAccessorsInterop) {
  // The MemoryMap interface still works on a transparent mapping, and both
  // views are coherent (they are the same frames).
  StatusOr<MemoryMap*> map =
      runtime_->MapTransparent(backing_.get(), kBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  auto* amap = static_cast<AquilaMap*>(*map);
  uint8_t* data = amap->data();

  (*map)->StoreValue<uint64_t>(123456, 0xfeedface);  // soft write
  uint64_t raw;
  std::memcpy(&raw, data + 123456, 8);  // raw read of the same frame
  EXPECT_EQ(raw, 0xfeedfaceull);

  uint64_t other = 0xdeadbeef;
  std::memcpy(data + 200000, &other, 8);  // raw write
  EXPECT_EQ((*map)->LoadValue<uint64_t>(200000), 0xdeadbeefull);  // soft read
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

}  // namespace
}  // namespace aquila
