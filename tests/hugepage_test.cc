// Transparent 2 MB huge-page mmio (DESIGN.md §14): aligned-run freelist
// carving, guest-PT huge leaves, fault-around, density-triggered promotion,
// and the demotion paths (dirty divergence, kDontNeed, eviction pressure).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/cache/freelist.h"
#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/mem/page_table.h"
#include "src/storage/pmem_device.h"

namespace aquila {
namespace {

constexpr uint64_t kSpanBytes = kHugePage2M;
constexpr uint64_t kSpanPages = kHugePage2M / kPageSize;  // 512

// --- TwoLevelFreelist aligned runs -------------------------------------------------

// Carving with a misaligned anchor: runs must start where the *global* page
// number (anchor + frame) is 2 MB-aligned, leftovers become singles, and
// ApproxFree accounts for both without drift across AllocRun/FreeRun.
TEST(FreelistRunTest, MisalignedAnchorCarvesAlignedRuns) {
  constexpr uint32_t kFrames = 2048;
  constexpr uint64_t kAnchor = 300;  // global page number of frame 0
  TwoLevelFreelist::Options options;
  options.carve_runs = true;
  TwoLevelFreelist fl(kFrames, options);
  fl.AddFrames(0, kFrames, kAnchor);
  EXPECT_EQ(fl.ApproxFree(), kFrames);

  // lead = 212 singles, then 3 runs (212, 724, 1236), then 300 tail singles.
  std::vector<FrameId> runs;
  FrameId first;
  while ((first = fl.AllocRun(0)) != kInvalidFrame) {
    EXPECT_EQ((kAnchor + first) % kRunFrames, 0u) << first;
    runs.push_back(first);
    EXPECT_EQ(fl.ApproxFree(), kFrames - runs.size() * kRunFrames);
  }
  EXPECT_EQ(runs.size(), 3u);
  EXPECT_EQ(fl.stats().run_allocs.load(), 3u);

  // Singles (lead + tail) are still allocatable without touching runs.
  uint32_t singles = 0;
  while (fl.Alloc(0) != kInvalidFrame) {
    singles++;
  }
  EXPECT_EQ(singles, kFrames - 3 * kRunFrames);
  EXPECT_EQ(fl.stats().runs_broken.load(), 0u);  // runs were already out
  EXPECT_EQ(fl.ApproxFree(), 0u);

  for (FrameId r : runs) {
    fl.FreeRun(0, r);
  }
  EXPECT_EQ(fl.ApproxFree(), 3u * kRunFrames);
}

// 4K pressure breaks an intact run into singles exactly once and ApproxFree
// stays exact through the break.
TEST(FreelistRunTest, SinglePressureBreaksRun) {
  constexpr uint32_t kFrames = kRunFrames;  // one aligned run, no singles
  TwoLevelFreelist::Options options;
  options.carve_runs = true;
  TwoLevelFreelist fl(kFrames, options);
  fl.AddFrames(0, kFrames, 0);
  EXPECT_EQ(fl.ApproxFree(), kFrames);

  FrameId f = fl.Alloc(0);
  ASSERT_NE(f, kInvalidFrame);
  EXPECT_EQ(fl.stats().runs_broken.load(), 1u);
  EXPECT_EQ(fl.ApproxFree(), kFrames - 1);
  EXPECT_EQ(fl.AllocRun(0), kInvalidFrame);  // the run is gone
  fl.Free(0, f);
  EXPECT_EQ(fl.ApproxFree(), kFrames);
}

// --- PageTable huge leaves ---------------------------------------------------------

TEST(PageTableHugeTest, InstallLookupSplit) {
  PageTable pt;
  const uint64_t base = kHugePage2M * 4;
  const FrameId run = 1024;

  // Promotion protocol: the 4K entries come out first, then the huge leaf
  // goes in (displacing the emptied leaf table).
  ASSERT_TRUE(pt.Install(base + 5 * kPageSize, (run + 5ull) << kPageShift, Pte::kAccessed));
  EXPECT_NE(pt.Remove(base + 5 * kPageSize), 0u);
  ASSERT_TRUE(pt.InstallHuge(base, static_cast<uint64_t>(run) << kPageShift, Pte::kAccessed));
  EXPECT_FALSE(pt.InstallHuge(base, static_cast<uint64_t>(run) << kPageShift, Pte::kAccessed));

  // Lookup synthesizes a per-4K view: contiguous GPAs, kHuge tagged, never
  // writable (huge leaves are read-only by construction).
  for (uint64_t i : {0ull, 1ull, 255ull, 511ull}) {
    uint64_t pte = pt.Lookup(base + i * kPageSize);
    ASSERT_TRUE(Pte::Present(pte)) << i;
    EXPECT_TRUE(Pte::Huge(pte)) << i;
    EXPECT_FALSE(Pte::Writable(pte)) << i;
    EXPECT_EQ(Pte::Gpa(pte), (run + i) << kPageShift) << i;
  }
  // No 4K slot exists under the leaf, and per-page Remove refuses to tear it.
  EXPECT_EQ(pt.WalkExisting(base + 7 * kPageSize), nullptr);
  EXPECT_EQ(pt.Remove(base + 7 * kPageSize), 0u);
  EXPECT_TRUE(Pte::Present(pt.Lookup(base + 7 * kPageSize)));

  // Split rebuilds bit-identical 4K translations (minus the kHuge tag).
  uint64_t huge = pt.SplitHuge(base);
  ASSERT_TRUE(Pte::Huge(huge));
  EXPECT_EQ(pt.SplitHuge(base), 0u);  // idempotent
  for (uint64_t i : {0ull, 511ull}) {
    uint64_t pte = pt.Lookup(base + i * kPageSize);
    ASSERT_TRUE(Pte::Present(pte)) << i;
    EXPECT_FALSE(Pte::Huge(pte)) << i;
    EXPECT_EQ(Pte::Gpa(pte), (run + i) << kPageShift) << i;
  }
  EXPECT_NE(pt.Remove(base + 9 * kPageSize), 0u);  // 4K ops work again
}

// --- End-to-end promotion/demotion -------------------------------------------------

class HugePageTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kDeviceBytes = 32ull << 20;
  static constexpr uint64_t kCachePages = 2048;  // 8 MB cache = 4 aligned runs

  HugePageTest() {
    PmemDevice::Options dev_options;
    dev_options.capacity_bytes = kDeviceBytes;
    device_ = std::make_unique<PmemDevice>(dev_options);
    uint8_t* dax = device_->dax_base();
    for (uint64_t i = 0; i < kDeviceBytes; i++) {
      dax[i] = PatternAt(i);
    }
  }

  // Fresh runtime per test so each can pick its own promotion knobs. The
  // default 4 MB EPT chunks keep runs hardware-realizable (2 MB-aligned
  // inside one chunk).
  void MakeRuntime(bool huge, uint32_t threshold, uint32_t fault_around) {
    Aquila::Options options;
    options.hypervisor.host_memory_bytes = 256ull << 20;
    options.cache.capacity_pages = kCachePages;
    options.cache.max_pages = kCachePages * 4;
    options.cache.eviction_batch = 64;
    options.cache.freelist.core_queue_threshold = 64;
    options.cache.freelist.move_batch = 32;
    options.huge_pages = huge;
    options.huge_promote_threshold = threshold;
    options.fault_around_pages = fault_around;
    runtime_ = std::make_unique<Aquila>(options);
  }

  static uint8_t PatternAt(uint64_t offset) { return static_cast<uint8_t>(offset * 131 + 17); }

  // Verifies `bytes` of the mapping against the device pattern.
  void VerifyPattern(MemoryMap* map, uint64_t offset, uint64_t bytes) {
    std::vector<uint8_t> buf(4096);
    for (uint64_t at = offset; at < offset + bytes; at += buf.size()) {
      ASSERT_TRUE(map->Read(at, std::span(buf)).ok());
      for (size_t i = 0; i < buf.size(); i++) {
        ASSERT_EQ(buf[i], PatternAt(at + i)) << at + i;
      }
    }
  }

  uint64_t LookupPte(MemoryMap* map, uint64_t file_page) {
    auto* m = static_cast<AquilaMap*>(map);
    return runtime_->page_table().Lookup((m->vma().start_page + file_page) * kPageSize);
  }

  std::unique_ptr<PmemDevice> device_;
  std::unique_ptr<Aquila> runtime_;
};

// huge_pages off: no span trackers, no promotions, behavior identical to the
// pre-huge runtime.
TEST_F(HugePageTest, OffModeNeverPromotes) {
  MakeRuntime(false, 1, 16);
  DeviceBacking backing(device_.get(), 0, 4 * kSpanBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 4 * kSpanBytes, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, 4 * kSpanBytes, Advice::kSequential).ok());
  VerifyPattern(*map, 0, 4 * kSpanBytes);
  EXPECT_EQ(runtime_->huge_stats().promotions.load(), 0u);
  EXPECT_EQ(runtime_->huge_stats().fault_around_mapped.load(), 0u);
  EXPECT_EQ(runtime_->huge_stats().runs_carved.load(), 0u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// Fault-around (promotion disabled via threshold 0): readahead publishes
// frames, fault-around installs their PTEs under the same fault, and the
// readahead mark advances past them — no page is ever filled twice.
TEST_F(HugePageTest, FaultAroundMapsReadaheadNeighbors) {
  const uint64_t kScanPages = 1024;

  // Baseline: fault-around off. Every readahead frame costs a later fault.
  MakeRuntime(true, 0, 0);
  uint64_t base_minors;
  {
    DeviceBacking backing(device_.get(), 0, kScanPages * kPageSize);
    StatusOr<MemoryMap*> map = runtime_->Map(&backing, kScanPages * kPageSize, kProtRead);
    ASSERT_TRUE(map.ok());
    ASSERT_TRUE((*map)->Advise(0, kScanPages * kPageSize, Advice::kSequential).ok());
    for (uint64_t p = 0; p < kScanPages; p++) {
      (*map)->TouchRead(p * kPageSize);
    }
    base_minors = runtime_->fault_stats().minor_faults.load();
    EXPECT_GT(base_minors, 0u);
    EXPECT_EQ(runtime_->huge_stats().fault_around_mapped.load(), 0u);
    ASSERT_TRUE(runtime_->Unmap(*map).ok());
  }

  MakeRuntime(true, 0, 16);
  DeviceBacking backing(device_.get(), 0, kScanPages * kPageSize);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kScanPages * kPageSize, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, kScanPages * kPageSize, Advice::kSequential).ok());
  for (uint64_t p = 0; p < kScanPages; p++) {
    (*map)->TouchRead(p * kPageSize);
  }
  const auto& fs = runtime_->fault_stats();
  EXPECT_GT(runtime_->huge_stats().fault_around_mapped.load(), 0u);
  // Fault-around absorbed the minor faults the baseline paid.
  EXPECT_LT(fs.minor_faults.load(), base_minors);
  // No double prefetch: each scanned page was filled at most once, by a
  // major fault or by one readahead window (+ one trailing window).
  EXPECT_LE(fs.major_faults.load() + fs.readahead_pages.load(),
            kScanPages + runtime_->options().readahead_pages);
  VerifyPattern(*map, 0, kScanPages * kPageSize);
  EXPECT_EQ(runtime_->huge_stats().promotions.load(), 0u);  // threshold 0
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// Density-triggered promotion: after `threshold` resident pages the span
// collapses into one huge leaf, and the rest of the 2 MB is fault-free.
TEST_F(HugePageTest, PromotesAfterThresholdAndServesSpanFaultFree) {
  MakeRuntime(true, 64, 0);
  DeviceBacking backing(device_.get(), 0, 2 * kSpanBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 2 * kSpanBytes, kProtRead);
  ASSERT_TRUE(map.ok());

  for (uint64_t p = 0; p < 64; p++) {
    EXPECT_TRUE((*map)->TouchRead(p * kPageSize).faulted) << p;
  }
  EXPECT_EQ(runtime_->huge_stats().promotions.load(), 1u);
  EXPECT_EQ(runtime_->huge_stats().runs_carved.load(), 1u);
  EXPECT_TRUE(Pte::Huge(LookupPte(*map, 0)));
  EXPECT_TRUE(Pte::Huge(LookupPte(*map, kSpanPages - 1)));

  uint64_t majors = runtime_->fault_stats().major_faults.load();
  for (uint64_t p = 64; p < kSpanPages; p++) {
    EXPECT_FALSE((*map)->TouchRead(p * kPageSize).faulted) << p;
  }
  EXPECT_EQ(runtime_->fault_stats().major_faults.load(), majors);
  VerifyPattern(*map, 0, kSpanBytes);

  // The second span was never touched: still 4K, not promoted.
  EXPECT_EQ(runtime_->huge_stats().promotions.load(), 1u);
  EXPECT_FALSE(Pte::Present(LookupPte(*map, kSpanPages)));
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// kSequential advice drops the density requirement to a single resident
// page: the very first touch of a span promotes it.
TEST_F(HugePageTest, SequentialAdvicePromotesOnFirstTouch) {
  MakeRuntime(true, 64, 8);
  DeviceBacking backing(device_.get(), 0, 2 * kSpanBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 2 * kSpanBytes, kProtRead);
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE((*map)->Advise(0, 2 * kSpanBytes, Advice::kSequential).ok());

  EXPECT_TRUE((*map)->TouchRead(0).faulted);
  EXPECT_EQ(runtime_->huge_stats().promotions.load(), 1u);
  uint64_t majors = runtime_->fault_stats().major_faults.load();
  for (uint64_t p = 1; p < kSpanPages; p++) {
    EXPECT_FALSE((*map)->TouchRead(p * kPageSize).faulted) << p;
  }
  EXPECT_EQ(runtime_->fault_stats().major_faults.load(), majors);
  VerifyPattern(*map, 0, kSpanBytes);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// Dirty divergence: huge leaves are read-only, so the first write takes a
// fault that demotes the span back to 4K and dirties only that one page.
TEST_F(HugePageTest, WriteDemotesSpanAndDirtiesOnePage) {
  MakeRuntime(true, 16, 0);
  DeviceBacking backing(device_.get(), 0, kSpanBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kSpanBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  for (uint64_t p = 0; p < 16; p++) {
    (*map)->TouchRead(p * kPageSize);
  }
  ASSERT_EQ(runtime_->huge_stats().promotions.load(), 1u);

  const uint64_t kWriteAt = 100 * kPageSize + 13;
  std::vector<uint8_t> val = {0xAA, 0xBB, 0xCC};
  ASSERT_TRUE((*map)->Write(kWriteAt, std::span(val)).ok());
  EXPECT_EQ(runtime_->huge_stats().demotions.load(), 1u);
  EXPECT_FALSE(Pte::Huge(LookupPte(*map, 0)));
  EXPECT_TRUE(Pte::Writable(LookupPte(*map, 100)));   // the written page
  EXPECT_FALSE(Pte::Writable(LookupPte(*map, 101)));  // its neighbor stayed clean

  // msync pushes exactly that page's bytes; the rest of the span still
  // matches the device pattern.
  ASSERT_TRUE((*map)->Sync(0, kSpanBytes).ok());
  EXPECT_EQ(device_->dax_base()[kWriteAt], 0xAA);
  EXPECT_EQ(device_->dax_base()[kWriteAt + 3], PatternAt(kWriteAt + 3));
  VerifyPattern(*map, 0, 100 * kPageSize);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// Partial kDontNeed inside a huge span demotes first, then drops only the
// advised pages; the rest of the span survives and re-reads correctly.
TEST_F(HugePageTest, DontNeedDemotesBeforeDroppingPages) {
  MakeRuntime(true, 16, 0);
  DeviceBacking backing(device_.get(), 0, kSpanBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kSpanBytes, kProtRead);
  ASSERT_TRUE(map.ok());
  for (uint64_t p = 0; p < 16; p++) {
    (*map)->TouchRead(p * kPageSize);
  }
  ASSERT_EQ(runtime_->huge_stats().promotions.load(), 1u);

  ASSERT_TRUE((*map)->Advise(0, 64 * kPageSize, Advice::kDontNeed).ok());
  EXPECT_EQ(runtime_->huge_stats().demotions.load(), 1u);
  EXPECT_FALSE(Pte::Present(LookupPte(*map, 0)));    // dropped
  EXPECT_TRUE(Pte::Present(LookupPte(*map, 64)));    // survived the split
  EXPECT_FALSE(Pte::Huge(LookupPte(*map, 64)));
  VerifyPattern(*map, 0, kSpanBytes);  // dropped pages refault fine
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// Under eviction pressure the sweep demotes huge spans before reclaiming
// their frames (per-page Remove cannot tear a huge leaf).
TEST_F(HugePageTest, EvictionPressureDemotesSpans) {
  MakeRuntime(true, 8, 0);
  const uint64_t kMapBytes = 16ull << 20;  // 2x the cache
  DeviceBacking backing(device_.get(), 0, kMapBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kMapBytes, kProtRead);
  ASSERT_TRUE(map.ok());

  for (uint64_t p = 0; p < kMapBytes / kPageSize; p++) {
    (*map)->TouchRead(p * kPageSize);
  }
  EXPECT_GT(runtime_->huge_stats().promotions.load(), 0u);
  EXPECT_GT(runtime_->huge_stats().demotions.load(), 0u);
  EXPECT_GT(runtime_->fault_stats().evicted_pages.load(), 0u);
  VerifyPattern(*map, 0, kSpanBytes);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// Promote/demote/repromote cycles preserve data, including bytes written
// while the span was 4K.
TEST_F(HugePageTest, DataIntegrityThroughPromoteDemoteCycles) {
  MakeRuntime(true, 16, 0);
  DeviceBacking backing(device_.get(), 0, kSpanBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, kSpanBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());

  for (int cycle = 0; cycle < 3; cycle++) {
    if (cycle == 0) {
      for (uint64_t p = 0; p < 16; p++) {
        (*map)->TouchRead(p * kPageSize);
      }
    } else {
      // Promotion is fault-driven and every page is still resident after
      // the previous demotion: drop one page so a fresh fault re-runs the
      // density check over the (still-dense) span.
      ASSERT_TRUE((*map)->Advise(0, kPageSize, Advice::kDontNeed).ok());
      EXPECT_TRUE((*map)->TouchRead(0).faulted);
    }
    EXPECT_EQ(runtime_->huge_stats().promotions.load(),
              static_cast<uint64_t>(cycle) + 1)
        << cycle;
    // Write the pattern value back: exercises demote + dirty without
    // changing the expected contents.
    const uint64_t at = (200 + cycle) * kPageSize;
    std::vector<uint8_t> val(kPageSize);
    for (uint64_t i = 0; i < kPageSize; i++) {
      val[i] = PatternAt(at + i);
    }
    ASSERT_TRUE((*map)->Write(at, std::span(val)).ok());
    ASSERT_TRUE((*map)->Sync(0, kSpanBytes).ok());
    VerifyPattern(*map, 0, kSpanBytes);
  }
  EXPECT_GE(runtime_->huge_stats().demotions.load(), 3u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

// Concurrent readers and writers racing promotions and demotions across two
// spans: the TryLock-only promoter and the spinning demoter must neither
// deadlock nor lose data. Writers store the pattern value, so every read —
// before, during, or after a transition — must see the pattern.
TEST_F(HugePageTest, ConcurrentTouchPromoteDemoteTorture) {
  MakeRuntime(true, 16, 8);
  DeviceBacking backing(device_.get(), 0, 2 * kSpanBytes);
  StatusOr<MemoryMap*> map = runtime_->Map(&backing, 2 * kSpanBytes, kProtRead | kProtWrite);
  ASSERT_TRUE(map.ok());
  MemoryMap* m = *map;

  // Promote both spans deterministically before the race starts — once a
  // write dirties a span it stays 4K until msync, so promotions during the
  // mixed phase are not guaranteed.
  for (uint64_t span = 0; span < 2; span++) {
    for (uint64_t p = 0; p < 16; p++) {
      m->TouchRead((span * kSpanPages + p) * kPageSize);
    }
  }
  ASSERT_EQ(runtime_->huge_stats().promotions.load(), 2u);

  const int kThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      uint64_t seed = 0x9e3779b97f4a7c15ull * (t + 1);
      std::vector<uint8_t> buf(64);
      for (int i = 0; i < 3000 && !failed.load(std::memory_order_relaxed); i++) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t page = (seed >> 33) % (2 * kSpanPages);
        uint64_t at = page * kPageSize + (seed & 0xFC0);
        if ((seed & 0xF) == 0) {
          for (size_t j = 0; j < buf.size(); j++) {
            buf[j] = PatternAt(at + j);
          }
          if (!m->Write(at, std::span(buf)).ok()) {
            failed.store(true);
          }
        } else {
          if (!m->Read(at, std::span(buf)).ok()) {
            failed.store(true);
            continue;
          }
          for (size_t j = 0; j < buf.size(); j++) {
            if (buf[j] != PatternAt(at + j)) {
              failed.store(true);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  VerifyPattern(m, 0, 2 * kSpanBytes);
  // The first write into each (initially huge) span demoted it.
  EXPECT_GE(runtime_->huge_stats().promotions.load(), 2u);
  EXPECT_GT(runtime_->huge_stats().demotions.load(), 0u);
  ASSERT_TRUE(runtime_->Unmap(*map).ok());
}

}  // namespace
}  // namespace aquila
