// Key-value store example: the mini-RocksDB running its SST reads through
// Aquila mmio (the §6.1 configuration), exercised with a small YCSB mix.
//
// Shows the full storage stack: NVMe controller -> blobstore (file->blob
// translation) -> LSM tree -> mmio reads via Aquila.
#include <cstdio>

#include "src/core/aquila.h"
#include "src/kvs/lsm_db.h"
#include "src/storage/nvme_device.h"
#include "src/ycsb/runner.h"

using namespace aquila;

int main() {
  // SPDK-style NVMe device + blobstore with a file namespace.
  NvmeController::Options nvme_options;
  nvme_options.capacity_bytes = 512ull << 20;
  NvmeController controller(nvme_options);
  NvmeDevice device(&controller);

  auto store = Blobstore::Format(ThisVcpu(), &device, Blobstore::Options{});
  if (!store.ok()) {
    AQUILA_LOG(ERROR, "format failed: %s", store.status().ToString().c_str());
    return 1;
  }
  BlobNamespace ns(store->get());

  // Aquila provides the mmio path for SST reads.
  Aquila::Options aq_options;
  aq_options.cache.capacity_pages = (16ull << 20) / kPageSize;
  aq_options.cache.max_pages = (64ull << 20) / kPageSize;
  Aquila runtime(aq_options);

  KvsEnv::Options env_options;
  env_options.store = store->get();
  env_options.ns = &ns;
  env_options.read_path = ReadPath::kMmio;
  env_options.mmio_engine = &runtime;
  KvsEnv env(env_options);

  LsmDb::Options db_options;
  db_options.env = &env;
  db_options.name = "/exampledb";
  StatusOr<std::unique_ptr<LsmDb>> db = LsmDb::Open(db_options);
  if (!db.ok()) {
    AQUILA_LOG(ERROR, "open failed: %s", db.status().ToString().c_str());
    return 1;
  }

  // Load 8K records, then run YCSB-B (95% reads / 5% updates).
  YcsbWorkload workload = YcsbWorkload::B();
  workload.record_count = 8 * 1024;
  workload.operation_count = 20000;
  YcsbRunner::Options run_options;
  run_options.threads = 2;
  run_options.thread_init = [&runtime] { runtime.EnterThread(); };
  YcsbRunner runner(db->get(), workload, run_options);
  if (Status status = runner.Load(); !status.ok()) {
    AQUILA_LOG(ERROR, "load failed: %s", status.ToString().c_str());
    return 1;
  }
  StatusOr<YcsbReport> report = runner.Run();
  if (!report.ok()) {
    AQUILA_LOG(ERROR, "run failed: %s", report.status().ToString().c_str());
    return 1;
  }
  std::printf("YCSB-B over Aquila mmio: %s\n", report->ToString().c_str());

  // Point reads and scans through the public KvStore interface.
  std::string value;
  bool found;
  std::string key = YcsbKey(42, workload.key_bytes);
  (void)(*db)->Get(key, &value, &found);
  std::printf("Get(%s...): found=%d, %zu bytes\n", key.substr(0, 12).c_str(), found,
              value.size());

  int scanned = 0;
  (void)(*db)->Scan(key, 5, [&](const Slice& k, const Slice& v) { scanned++; });
  std::printf("Scan from that key returned %d records\n", scanned);

  std::printf("LSM stats: %llu flushes, %llu compactions; Aquila faults: %llu major\n",
              static_cast<unsigned long long>((*db)->stats().flushes.load()),
              static_cast<unsigned long long>((*db)->stats().compactions.load()),
              static_cast<unsigned long long>(runtime.fault_stats().major_faults.load()));
  db->reset();  // close (unmaps SSTs) before the engine goes away
  return 0;
}
