// Heap extension with TRANSPARENT pointers (trap mode): the §6.2 use case
// in its strongest form. The application works with a plain C array that is
// actually 8x larger than the DRAM cache backing it — ordinary loads and
// stores, no accessor API. Misses take real hardware page faults (delivered
// as SIGSEGV), which the Aquila fault path resolves by aliasing cache frames
// out of the hypervisor's memfd; hits are served entirely by the MMU.
#include <cstdio>
#include <cstring>

#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/core/trap_driver.h"
#include "src/storage/pmem_device.h"
#include "src/util/rng.h"

using namespace aquila;

int main() {
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 64ull << 20;
  PmemDevice device(dev_options);

  Aquila::Options options;
  options.cache.capacity_pages = (8ull << 20) / kPageSize;  // 8 MB cache
  options.cache.max_pages = (32ull << 20) / kPageSize;
  Aquila runtime(options);

  DeviceBacking backing(&device, 0, device.capacity_bytes());
  StatusOr<MemoryMap*> map =
      runtime.MapTransparent(&backing, device.capacity_bytes(), kProtRead | kProtWrite);
  if (!map.ok()) {
    AQUILA_LOG(ERROR, "transparent map failed: %s", map.status().ToString().c_str());
    return 1;
  }

  // The "extended heap": a 8M-element array of 64-bit counters (64 MB) over
  // an 8 MB cache. This is just a pointer.
  auto* counters = reinterpret_cast<uint64_t*>(static_cast<AquilaMap*>(*map)->data());
  const uint64_t n = device.capacity_bytes() / sizeof(uint64_t);

  // Random increments — a workload nobody would write against an accessor
  // API, but trivial against a plain array.
  Rng rng(2021);
  for (int i = 0; i < 200000; i++) {
    counters[rng.Uniform(n)]++;
  }
  uint64_t total = 0;
  for (uint64_t i = 0; i < n; i += 4096) {
    total += counters[i];
  }
  std::printf("array of %llu uint64s over an 8 MB cache; sampled sum = %llu\n",
              static_cast<unsigned long long>(n), static_cast<unsigned long long>(total));

  const FaultStats& stats = runtime.fault_stats();
  std::printf("real page faults handled: %llu | major %llu, upgrades %llu, evicted %llu, "
              "written back %llu\n",
              static_cast<unsigned long long>(TrapDriver::HandledFaults()),
              static_cast<unsigned long long>(stats.major_faults.load()),
              static_cast<unsigned long long>(stats.write_upgrades.load()),
              static_cast<unsigned long long>(stats.evicted_pages.load()),
              static_cast<unsigned long long>(stats.writeback_pages.load()));

  // Durability still works: msync, then check the device.
  counters[7] = 777;
  if (Status status = (*map)->Sync(0, device.capacity_bytes()); !status.ok()) {
    AQUILA_LOG(ERROR, "msync failed: %s", status.ToString().c_str());
    return 1;
  }
  uint64_t on_device;
  std::memcpy(&on_device, device.dax_base() + 7 * sizeof(uint64_t), sizeof(on_device));
  std::printf("after msync, device word 7 = %llu\n",
              static_cast<unsigned long long>(on_device));

  (void)runtime.Unmap(*map);
  return 0;
}
