// Customizing the I/O path — the flexibility argument of the paper (§3.3,
// contribution 1): the same application code runs over different device
// access methods, cache sizes, advice policies, and IPI send paths, all
// chosen per mapping / per runtime instead of baked into the kernel.
//
// This example measures one workload (random point reads of 64-byte
// records) under four configurations and prints the modeled cost per read.
#include <cstdio>

#include "src/core/aquila.h"
#include "src/storage/host_device.h"
#include "src/storage/nvme_device.h"
#include "src/storage/pmem_device.h"
#include "src/util/rng.h"

using namespace aquila;

namespace {

double MeasureReads(Aquila& runtime, BlockDevice* device, Advice advice, int reads) {
  DeviceBacking backing(device, 0, 64ull << 20);
  StatusOr<MemoryMap*> map = runtime.Map(&backing, 64ull << 20, kProtRead);
  AQUILA_CHECK(map.ok());
  (void)(*map)->Advise(0, 64ull << 20, advice);
  SimClock& clock = ThisThreadClock();
  Rng rng(99);
  uint64_t start = clock.Now();
  for (int i = 0; i < reads; i++) {
    uint64_t offset = advice == Advice::kSequential
                          ? static_cast<uint64_t>(i) * 64 % (64ull << 20)
                          : rng.Uniform((64ull << 20) / 64) * 64;
    (void)(*map)->LoadValue<uint64_t>(offset);
  }
  double cycles = static_cast<double>(clock.Now() - start) / reads;
  (void)runtime.Unmap(*map);
  return cycles;
}

}  // namespace

int main() {
  constexpr int kReads = 20000;
  std::printf("%-34s %14s\n", "configuration", "cycles/read");

  {
    // 1. DAX pmem, direct from non-root ring 0 (the Aquila fast path).
    PmemDevice::Options o;
    o.capacity_bytes = 64ull << 20;
    PmemDevice pmem(o);
    Aquila::Options a;
    a.cache.capacity_pages = (16ull << 20) / kPageSize;
    a.cache.max_pages = (64ull << 20) / kPageSize;
    Aquila runtime(a);
    std::printf("%-34s %14.0f\n", "pmem, DAX direct, random",
                MeasureReads(runtime, &pmem, Advice::kRandom, kReads));
  }
  {
    // 2. Same device, but through the host kernel (syscall per miss):
    //    what a guest without direct device access pays.
    PmemDevice::Options o;
    o.capacity_bytes = 64ull << 20;
    o.copy_flavor = CopyFlavor::kPlain;
    PmemDevice pmem(o);
    HostIoDevice host(&pmem, HostIoDevice::EntryPath::kVmcall);
    Aquila::Options a;
    a.cache.capacity_pages = (16ull << 20) / kPageSize;
    a.cache.max_pages = (64ull << 20) / kPageSize;
    Aquila runtime(a);
    std::printf("%-34s %14.0f\n", "pmem, via host kernel, random",
                MeasureReads(runtime, &host, Advice::kRandom, kReads));
  }
  {
    // 3. NVMe over SPDK queue pairs, sequential scan with read-ahead: the
    //    madvise policy turns misses into batched device reads.
    NvmeController::Options o;
    o.capacity_bytes = 64ull << 20;
    NvmeController controller(o);
    NvmeDevice nvme(&controller);
    Aquila::Options a;
    a.cache.capacity_pages = (16ull << 20) / kPageSize;
    a.cache.max_pages = (64ull << 20) / kPageSize;
    a.readahead_pages = 16;
    Aquila runtime(a);
    std::printf("%-34s %14.0f\n", "nvme, SPDK direct, sequential+RA",
                MeasureReads(runtime, &nvme, Advice::kSequential, kReads));
  }
  {
    // 4. NVMe random reads with a tiny cache: eviction in the common path,
    //    posted (vmexit-less) IPIs instead of the DoS-protected send.
    NvmeController::Options o;
    o.capacity_bytes = 64ull << 20;
    NvmeController controller(o);
    NvmeDevice nvme(&controller);
    Aquila::Options a;
    a.cache.capacity_pages = (2ull << 20) / kPageSize;
    a.cache.max_pages = (8ull << 20) / kPageSize;
    a.ipi_send_path = PostedIpiFabric::SendPath::kPosted;
    Aquila runtime(a);
    std::printf("%-34s %14.0f\n", "nvme, tiny cache, posted IPIs",
                MeasureReads(runtime, &nvme, Advice::kRandom, kReads));
  }
  return 0;
}
