// Quickstart: map a storage device through Aquila and use it like memory.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The three integration points the paper advertises (§4):
//   1. construct the Aquila runtime once at startup;
//   2. call EnterThread() on every thread that will touch mappings;
//   3. use Map()/Unmap() where you would mmap/munmap — everything else
//      (faults, caching, eviction, writeback) is transparent.
#include <cstdio>
#include <cstring>

#include "src/core/aquila.h"
#include "src/storage/pmem_device.h"

using namespace aquila;

int main() {
  // A byte-addressable pmem device (64 MB). Swap in NvmeDevice for an
  // SPDK-style NVMe drive — the mmio path is identical.
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 64ull << 20;
  PmemDevice device(dev_options);

  // The library OS: an 8 MB DRAM I/O cache, growable at runtime.
  Aquila::Options options;
  options.cache.capacity_pages = (8ull << 20) / kPageSize;
  options.cache.max_pages = (32ull << 20) / kPageSize;
  Aquila runtime(options);

  // mmap the whole device, read/write.
  DeviceBacking backing(&device, 0, device.capacity_bytes());
  StatusOr<MemoryMap*> map =
      runtime.Map(&backing, device.capacity_bytes(), kProtRead | kProtWrite);
  if (!map.ok()) {
    AQUILA_LOG(ERROR, "map failed: %s", map.status().ToString().c_str());
    return 1;
  }

  // Stores go to the DRAM cache; the first touch of a page faults it in.
  const char message[] = "hello, memory-mapped storage";
  (void)(*map)->Write(4096, std::span(reinterpret_cast<const uint8_t*>(message),
                                      sizeof(message)));

  // Loads are cache hits after that — no software on the common path.
  char read_back[sizeof(message)];
  (void)(*map)->Read(4096, std::span(reinterpret_cast<uint8_t*>(read_back),
                                     sizeof(read_back)));
  std::printf("read back: \"%s\"\n", read_back);

  // msync makes the dirty page durable on the device.
  (void)(*map)->Sync(0, device.capacity_bytes());
  std::printf("after msync, device byte = '%c'\n", device.dax_base()[4096]);

  // Dynamic cache resizing goes through the hypervisor (operation 5).
  (void)runtime.GrowCache(8ull << 20);
  std::printf("cache grown to %llu pages\n",
              static_cast<unsigned long long>(runtime.cache().capacity_pages()));

  const FaultStats& stats = runtime.fault_stats();
  std::printf("faults: %llu major, %llu minor, %llu write-upgrades\n",
              static_cast<unsigned long long>(stats.major_faults.load()),
              static_cast<unsigned long long>(stats.minor_faults.load()),
              static_cast<unsigned long long>(stats.write_upgrades.load()));

  (void)runtime.Unmap(*map);
  return 0;
}
