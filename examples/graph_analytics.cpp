// Graph analytics example: the §6.2 scenario — extend the application heap
// over a fast storage device and run Ligra-style BFS on a graph that does
// not fit in the DRAM cache.
//
// The graph arrays and the BFS parent array are allocated from an MmioHeap
// (a bump allocator over an Aquila mapping); the only changes versus an
// in-memory run are the allocator and a per-thread EnterThread() — exactly
// the "minimal modifications, only during initialization" the paper claims.
#include <cstdio>

#include "src/core/aquila.h"
#include "src/graph/bfs.h"
#include "src/graph/rmat.h"
#include "src/storage/pmem_device.h"

using namespace aquila;

int main() {
  PmemDevice::Options dev_options;
  dev_options.capacity_bytes = 256ull << 20;
  PmemDevice device(dev_options);

  Aquila::Options options;
  options.cache.capacity_pages = (8ull << 20) / kPageSize;  // cache << heap
  options.cache.max_pages = (64ull << 20) / kPageSize;
  Aquila runtime(options);

  DeviceBacking backing(&device, 0, device.capacity_bytes());
  StatusOr<MemoryMap*> map =
      runtime.Map(&backing, device.capacity_bytes(), kProtRead | kProtWrite);
  if (!map.ok()) {
    AQUILA_LOG(ERROR, "map failed: %s", map.status().ToString().c_str());
    return 1;
  }

  // R-MAT graph: 256K vertices, ~2.5M directed edges -> ~44 MB heap.
  uint64_t vertices = 256 * 1024;
  auto edges = GenerateRmat(vertices, vertices * 10);
  MmioHeap heap(*map);
  Graph graph = BuildGraph(vertices, std::move(edges), &heap);
  auto parents = heap.AllocArray(vertices);
  std::printf("graph on storage-backed heap: %llu vertices, %llu undirected edges, "
              "%llu MB heap, %llu MB cache\n",
              static_cast<unsigned long long>(graph.num_vertices()),
              static_cast<unsigned long long>(graph.num_edges() / 2),
              static_cast<unsigned long long>(heap.used_bytes() >> 20),
              static_cast<unsigned long long>(runtime.cache().capacity_pages() * kPageSize >>
                                              20));

  LigraOptions ligra;
  ligra.threads = 4;
  ligra.thread_init = [&runtime] { runtime.EnterThread(); };
  BfsResult result = Bfs(graph, /*source=*/0, parents.get(), ligra);

  std::printf("BFS reached %llu vertices in %d rounds\n",
              static_cast<unsigned long long>(result.reached), result.rounds);
  const FaultStats& stats = runtime.fault_stats();
  std::printf("mmio: %llu major faults, %llu evicted pages, %llu written back\n",
              static_cast<unsigned long long>(stats.major_faults.load()),
              static_cast<unsigned long long>(stats.evicted_pages.load()),
              static_cast<unsigned long long>(stats.writeback_pages.load()));

  (void)runtime.Unmap(*map);
  return 0;
}
