// Cooperative fault scheduling: parked faults vs blocking faults on an
// out-of-memory random-read workload (NVMe).
//
// Every touch misses (dataset 4x the cache, readahead off), so each request
// pays a device read. The blocking engine serializes them: one touch, one
// ~10us round-trip, repeat. The cooperative engine submits a batch of B
// touch requests; each one parks at its major fault after submitting an
// async demand fill, so B device reads overlap and the batch completes in
// roughly one round-trip. Throughput should scale with B until the queue
// or the device's internal parallelism saturates.
//
// Emits BENCH_fault_overlap.json (blocking vs coop kIOPS per concurrency)
// and GATES in-bench: coop must be >= 2x blocking at fill concurrency >= 4.
// `--smoke` shrinks the run for CI; the gate still applies.
#include <cinttypes>
#include <cstring>
#include <vector>

#include "bench/common.h"
#include "src/util/rng.h"

namespace aquila {
namespace bench {
namespace {

struct Row {
  uint32_t concurrency;
  double blocking_kiops;
  double coop_kiops;
  double speedup;
};

// Random single-page touch reads through the batched surface, B at a time.
// Returns simulated kIOPS. The same seed drives both engines so they fault
// on the same page sequence.
double RunEngine(bool coop, uint32_t concurrency, uint64_t ops, uint64_t data_bytes,
                 uint64_t cache_bytes, uint32_t seed) {
  auto device = MakeNvme(data_bytes);
  Aquila::Options options = AquilaOptions(cache_bytes);
  // Both engines run over the async pipeline so the only difference is
  // parking at the fault versus blocking in it.
  options.async_writeback = true;
  options.coop_sched = coop;
  auto runtime = std::make_unique<Aquila>(options);
  DeviceBacking backing(device->direct, 0, data_bytes);
  auto map = runtime->Map(&backing, data_bytes, kProtRead);
  AQUILA_CHECK(map.ok());
  // Readahead off: every batch request is its own demand fill.
  AQUILA_CHECK((*map)->Advise(0, data_bytes, Advice::kRandom).ok());

  Vcpu& vcpu = ThisVcpu();
  Rng rng(seed);
  const uint64_t pages = data_bytes / kPageSize;
  std::vector<MmioRequest> batch(concurrency);
  std::vector<MmioCompletion> completions(concurrency);
  const uint64_t start = vcpu.clock().Now();
  uint64_t done = 0;
  while (done < ops) {
    const uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(concurrency, ops - done));
    for (uint32_t i = 0; i < n; i++) {
      batch[i] = MmioRequest{};
      batch[i].kind = MmioRequest::Kind::kRead;
      batch[i].offset = rng.Uniform(pages) * kPageSize;
      batch[i].user_tag = done + i;
    }
    AQUILA_CHECK((*map)->SubmitBatch(std::span(batch.data(), n)).ok());
    uint32_t reaped = 0;
    while (reaped < n) {
      size_t got = (*map)->Poll(std::span(completions.data(), n - reaped));
      AQUILA_CHECK(got > 0);
      for (size_t i = 0; i < got; i++) {
        AQUILA_CHECK(completions[i].status.ok());
      }
      reaped += static_cast<uint32_t>(got);
    }
    done += n;
  }
  const uint64_t elapsed = vcpu.clock().Now() - start;
  AQUILA_CHECK(runtime->Unmap(*map).ok());
  const uint64_t cycles_per_us = GlobalCostModel().cycles_per_us;
  return static_cast<double>(ops) /
         (static_cast<double>(elapsed) / (cycles_per_us * 1e6)) / 1e3;
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main(int argc, char** argv) {
  using namespace aquila;
  using namespace aquila::bench;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  PrintHeader("Cooperative fault overlap: out-of-memory random 4K reads, NVMe");
  const uint64_t kDataBytes = smoke ? (8ull << 20) : Scaled(64ull << 20);
  const uint64_t kCacheBytes = kDataBytes / 4;
  const uint64_t kOps = smoke ? 512 : Scaled(4000);
  const uint32_t kConcurrency[] = {1, 2, 4, 8, 16};

  std::vector<Row> rows;
  for (uint32_t b : kConcurrency) {
    Row row;
    row.concurrency = b;
    row.blocking_kiops = RunEngine(/*coop=*/false, b, kOps, kDataBytes, kCacheBytes, 7 + b);
    row.coop_kiops = RunEngine(/*coop=*/true, b, kOps, kDataBytes, kCacheBytes, 7 + b);
    row.speedup = row.coop_kiops / row.blocking_kiops;
    std::printf("concurrency %2u   blocking %8.1f kIOPS   coop %8.1f kIOPS   %5.2fx\n", b,
                row.blocking_kiops, row.coop_kiops, row.speedup);
    rows.push_back(row);
  }

  BenchJsonWriter json("fault_overlap", smoke, /*threads=*/1);
  json.AddMeta("workload", "\"out-of-memory random 4K touch reads, NVMe, batched\"");
  json.AddMeta("ops", std::to_string(kOps));
  json.BeginSection("sweep");
  for (const Row& row : rows) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"concurrency\": %u, \"blocking_kiops\": %.1f, "
                  "\"coop_kiops\": %.1f, \"speedup\": %.2f}",
                  row.concurrency, row.blocking_kiops, row.coop_kiops, row.speedup);
    json.AddRow(buf);
  }
  json.Write();

  // Acceptance gate: overlapped fills must at least double single-core
  // out-of-memory throughput once four fills can be in flight.
  bool ok = true;
  for (const Row& row : rows) {
    if (row.concurrency >= 4 && row.speedup < 2.0) {
      std::fprintf(stderr, "GATE FAILED: concurrency %u speedup %.2fx < 2x\n",
                   row.concurrency, row.speedup);
      ok = false;
    }
  }
  if (ok) {
    std::printf("\ngate: coop >= 2x blocking at fill concurrency >= 4 -- PASS\n");
  }
  return ok ? 0 : 1;
}
