// Shared scaffolding for the paper-reproduction benchmarks.
//
// Every bench prints the rows of one table/figure from the paper's
// evaluation (see DESIGN.md section 4 and EXPERIMENTS.md). Geometry is
// scaled MB-for-GB relative to the paper's testbed; set AQUILA_BENCH_SCALE
// (e.g. 4) to enlarge datasets/ops proportionally.
#ifndef AQUILA_BENCH_COMMON_H_
#define AQUILA_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/blob/blob_namespace.h"
#include "src/core/aquila.h"
#include "src/linuxsim/linux_mmap.h"
#include "src/storage/fault_device.h"
#include "src/storage/host_device.h"
#include "src/storage/nvme_device.h"
#include "src/storage/pmem_device.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/telemetry/trace.h"
#include "src/util/logging.h"

namespace aquila {
namespace bench {

inline double Scale() {
  const char* s = std::getenv("AQUILA_BENCH_SCALE");
  if (s == nullptr) {
    return 1.0;
  }
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline uint64_t Scaled(uint64_t base) { return static_cast<uint64_t>(base * Scale()); }

// One simulated storage device of either kind, with both the direct-access
// path and the host-kernel-mediated path.
struct TestDevice {
  const char* kind = "";  // "pmem" or "nvme"
  std::unique_ptr<PmemDevice> pmem;
  std::unique_ptr<NvmeController> nvme_ctrl;
  std::unique_ptr<NvmeDevice> nvme;
  std::unique_ptr<FaultInjectingDevice> faults;  // set iff AQUILA_FAULT_SEED
  std::unique_ptr<HostIoDevice> host;  // syscall-mediated access to `direct`
  BlockDevice* direct = nullptr;       // direct (SPDK / DAX) access

  // Devices (and their callback metrics) are torn down before the atexit
  // AQUILA_METRICS dump, so an injection run reports its tally here.
  ~TestDevice() {
    if (faults == nullptr) {
      return;
    }
    const FaultInjectingDevice::FaultStats& fs = faults->fault_stats();
    const DeviceStats& s = faults->stats();
    std::printf(
        "[fault-injection] %s: injected %llu (%llu read / %llu write / %llu "
        "flush), retries %llu, gave up %llu\n",
        kind,
        static_cast<unsigned long long>(fs.total_injected.load()),
        static_cast<unsigned long long>(fs.injected_read_errors.load()),
        static_cast<unsigned long long>(fs.injected_write_errors.load()),
        static_cast<unsigned long long>(fs.injected_flush_errors.load()),
        static_cast<unsigned long long>(s.io_retries.load()),
        static_cast<unsigned long long>(s.io_gave_up.load()));
  }
};

inline double EnvRate(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr) {
    return 0.0;
  }
  double v = std::atof(s);
  return v >= 0.0 && v < 1.0 ? v : 0.0;
}

// When AQUILA_FAULT_SEED is set, interposes a FaultInjectingDevice between
// the medium and every consumer so benchmarks run against a flaky device:
//   AQUILA_FAULT_SEED=<n>        arm injection with a reproducible schedule
//   AQUILA_FAULT_READ_ERR=<p>    per-read error probability (default 0)
//   AQUILA_FAULT_WRITE_ERR=<p>   per-write error probability (default 0)
// Retries/give-ups surface in the AQUILA_METRICS=1 dump as
// aquila.storage.io_retries / io_gave_up / injected_faults.
inline void MaybeInjectFaults(TestDevice* dev) {
  const char* seed = std::getenv("AQUILA_FAULT_SEED");
  if (seed == nullptr || *seed == '\0') {
    return;
  }
  FaultInjectingDevice::Options options;
  options.seed = std::strtoull(seed, nullptr, 10);
  options.read_error_rate = EnvRate("AQUILA_FAULT_READ_ERR");
  options.write_error_rate = EnvRate("AQUILA_FAULT_WRITE_ERR");
  dev->faults = std::make_unique<FaultInjectingDevice>(dev->direct, options);
  dev->direct = dev->faults.get();
}

inline std::unique_ptr<TestDevice> MakePmem(uint64_t capacity,
                                            CopyFlavor flavor = CopyFlavor::kStreaming) {
  auto dev = std::make_unique<TestDevice>();
  dev->kind = "pmem";
  PmemDevice::Options options;
  options.capacity_bytes = capacity;
  options.copy_flavor = flavor;
  dev->pmem = std::make_unique<PmemDevice>(options);
  dev->direct = dev->pmem.get();
  MaybeInjectFaults(dev.get());
  dev->host = std::make_unique<HostIoDevice>(dev->direct, HostIoDevice::EntryPath::kSyscall);
  return dev;
}

inline std::unique_ptr<TestDevice> MakeNvme(uint64_t capacity) {
  auto dev = std::make_unique<TestDevice>();
  dev->kind = "nvme";
  NvmeController::Options options;
  options.capacity_bytes = capacity;
  dev->nvme_ctrl = std::make_unique<NvmeController>(options);
  dev->nvme = std::make_unique<NvmeDevice>(dev->nvme_ctrl.get());
  dev->direct = dev->nvme.get();
  MaybeInjectFaults(dev.get());
  dev->host = std::make_unique<HostIoDevice>(dev->direct, HostIoDevice::EntryPath::kSyscall);
  return dev;
}

// Parses a shootdown-mode name; falls back to `fallback` on anything else.
inline ShootdownMaskMode ParseShootdownMode(const char* s, ShootdownMaskMode fallback) {
  if (s == nullptr) {
    return fallback;
  }
  std::string mode(s);
  if (mode == "broadcast") {
    return ShootdownMaskMode::kBroadcast;
  }
  if (mode == "mask") {
    return ShootdownMaskMode::kMask;
  }
  if (mode == "mask+gen" || mode == "maskgen" || mode == "mask_gen") {
    return ShootdownMaskMode::kMaskGen;
  }
  if (mode == "reuse" || mode == "reuse_elide") {
    return ShootdownMaskMode::kReuseElide;
  }
  return fallback;
}

// Standard Aquila runtime for a given cache size. The async overlapped
// writeback/readahead pipeline (Options::async_writeback) is off by default,
// matching the library default; set AQUILA_ASYNC_WRITEBACK=1 to turn it on
// for any benchmark, and AQUILA_ASYNC_QUEUE_DEPTH=<n> to size the
// per-mapping device queue (default 32). AQUILA_SHOOTDOWN_MODE
// (broadcast|mask|mask+gen|reuse) overrides the shootdown IPI targeting
// policy (default mask+gen, the library default; reuse adds the deferred
// same-owner elision of DESIGN.md §10). Observability knobs:
// AQUILA_SPAN_SAMPLE=<n> samples 1-in-n requests into the span collector,
// AQUILA_SLOW_TRACE_US=<us> keeps whole trees for sampled requests slower
// than that, and AQUILA_STATS_PORT=<p> serves /metrics, /metrics.json,
// /traces and /slow on 127.0.0.1:<p> (0 picks an ephemeral port).
inline Aquila::Options AquilaOptions(uint64_t cache_bytes, int active_cores = 0) {
  Aquila::Options options;
  if (const char* async = std::getenv("AQUILA_ASYNC_WRITEBACK");
      async != nullptr && *async != '\0' && *async != '0') {
    options.async_writeback = true;
  }
  options.shootdown_mask_mode = ParseShootdownMode(std::getenv("AQUILA_SHOOTDOWN_MODE"),
                                                   options.shootdown_mask_mode);
  if (const char* depth = std::getenv("AQUILA_ASYNC_QUEUE_DEPTH"); depth != nullptr) {
    int n = std::atoi(depth);
    if (n >= 1) {
      options.async_queue_depth = static_cast<uint32_t>(n);
    }
  }
  // Hang robustness: AQUILA_DEVICE_TIMEOUT_US=<us> arms the watchdog queue
  // and the device health breaker (0/unset keeps the raw queue — no
  // watchdog state, bit-identical sim metrics); AQUILA_HEDGE_READS=1 adds
  // hedged reads on top.
  if (const char* timeout = std::getenv("AQUILA_DEVICE_TIMEOUT_US"); timeout != nullptr) {
    int n = std::atoi(timeout);
    if (n >= 0) {
      options.device_op_timeout_us = static_cast<uint32_t>(n);
    }
  }
  if (const char* hedge = std::getenv("AQUILA_HEDGE_READS");
      hedge != nullptr && *hedge != '\0' && *hedge != '0') {
    options.hedge_reads = true;
  }
  // Cooperative fault scheduling: AQUILA_COOP_SCHED=1 parks batch requests
  // at fault-path wait points and overlaps their fills (requires the async
  // pipeline, which it turns on); unset keeps the blocking path bit-identical.
  // AQUILA_SCHED_MAX_PARKED=<n> caps each core's parked table (default 64).
  if (const char* coop = std::getenv("AQUILA_COOP_SCHED");
      coop != nullptr && *coop != '\0' && *coop != '0') {
    options.coop_sched = true;
    options.async_writeback = true;
  }
  if (const char* parked = std::getenv("AQUILA_SCHED_MAX_PARKED"); parked != nullptr) {
    int n = std::atoi(parked);
    if (n >= 1) {
      options.sched_max_parked = static_cast<uint32_t>(n);
    }
  }
  // Transparent 2 MB huge pages: AQUILA_HUGE_PAGES=1 turns on run carving,
  // fault-around, and density-triggered promotion (unset keeps the 4K path
  // bit-identical). AQUILA_HUGE_PROMOTE_THRESHOLD=<n> sets the resident-PTE
  // density that triggers promotion (0 = fault-around only);
  // AQUILA_FAULT_AROUND=<n> sets the per-fault neighbor-mapping budget.
  if (const char* huge = std::getenv("AQUILA_HUGE_PAGES");
      huge != nullptr && *huge != '\0' && *huge != '0') {
    options.huge_pages = true;
  }
  if (const char* thr = std::getenv("AQUILA_HUGE_PROMOTE_THRESHOLD"); thr != nullptr) {
    int n = std::atoi(thr);
    if (n >= 0) {
      options.huge_promote_threshold = static_cast<uint32_t>(n);
    }
  }
  if (const char* fa = std::getenv("AQUILA_FAULT_AROUND"); fa != nullptr) {
    int n = std::atoi(fa);
    if (n >= 0) {
      options.fault_around_pages = static_cast<uint32_t>(n);
    }
  }
  if (const char* sample = std::getenv("AQUILA_SPAN_SAMPLE"); sample != nullptr) {
    int n = std::atoi(sample);
    if (n >= 1) {
      options.span_sample_every = static_cast<uint32_t>(n);
    }
  }
  if (const char* slow = std::getenv("AQUILA_SLOW_TRACE_US"); slow != nullptr) {
    int n = std::atoi(slow);
    if (n >= 0) {
      options.slow_trace_us = static_cast<uint32_t>(n);
    }
  }
  if (const char* port = std::getenv("AQUILA_STATS_PORT"); port != nullptr && *port != '\0') {
    options.stats_server_port = std::atoi(port);
  }
  options.hypervisor.host_memory_bytes = 4ull << 30;
  options.hypervisor.chunk_size = 4ull << 20;
  options.cache.capacity_pages = cache_bytes / kPageSize;
  options.cache.max_pages = options.cache.capacity_pages * 2;
  // Scale the paper's 512-page eviction batch with the (scaled-down) cache.
  options.cache.eviction_batch =
      static_cast<uint32_t>(std::min<uint64_t>(512, options.cache.capacity_pages / 16 + 1));
  options.cache.freelist.core_queue_threshold =
      static_cast<uint32_t>(options.cache.capacity_pages / 64 + 16);
  options.cache.freelist.move_batch = options.cache.freelist.core_queue_threshold / 2 + 1;
  options.active_cores = active_cores;
  return options;
}

inline std::unique_ptr<Aquila> MakeAquila(uint64_t cache_bytes, int active_cores = 0) {
  return std::make_unique<Aquila>(AquilaOptions(cache_bytes, active_cores));
}

inline std::unique_ptr<LinuxMmapEngine> MakeLinuxMmap(uint64_t cache_bytes) {
  LinuxMmapEngine::Options options;
  options.cache_pages = cache_bytes / kPageSize;
  return std::make_unique<LinuxMmapEngine>(options);
}

inline std::unique_ptr<LinuxMmapEngine> MakeKmmap(uint64_t cache_bytes) {
  return std::make_unique<LinuxMmapEngine>(
      LinuxMmapEngine::KmmapOptions(cache_bytes / kPageSize));
}

// A blobstore + namespace over a device (the KV-store substrate).
struct BlobEnv {
  std::unique_ptr<Blobstore> store;
  std::unique_ptr<BlobNamespace> ns;
};

inline BlobEnv MakeBlobEnv(BlockDevice* device) {
  BlobEnv env;
  Blobstore::Options options;
  options.cluster_size = 256 * 1024;
  options.metadata_bytes = 8ull << 20;
  auto store = Blobstore::Format(ThisVcpu(), device, options);
  AQUILA_CHECK(store.ok());
  env.store = std::move(*store);
  env.ns = std::make_unique<BlobNamespace>(env.store.get());
  return env;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline double CyclesToUs(uint64_t cycles) {
  return static_cast<double>(cycles) / static_cast<double>(GlobalCostModel().cycles_per_us);
}

#ifndef AQUILA_GIT_REV
#define AQUILA_GIT_REV "unknown"
#endif

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Unified envelope for every BENCH_*.json artifact (schema aquila-bench-v1).
// Each benchmark wraps its row arrays in the same metadata header — bench
// name, git revision, UTC timestamp, thread count, smoke flag, and the
// AQUILA_* environment knobs that shaped the run — so tools/bench_compare.py
// can diff any two artifacts without bench-specific parsing.
//
// Usage:
//   BenchJsonWriter json("tlb_shootdown", smoke, /*threads=*/8);
//   json.AddMeta("ops_per_thread", std::to_string(ops));
//   json.BeginSection("sweep");
//   json.AddRow("{\"cores\": 4, ...}");   // pre-formatted JSON object
//   json.Write();                         // -> BENCH_tlb_shootdown.json
class BenchJsonWriter {
 public:
  BenchJsonWriter(const char* bench, bool smoke, int threads)
      : bench_(bench), smoke_(smoke), threads_(threads) {}

  // Extra bench-specific metadata; `json_value` is a raw JSON value
  // (already quoted if a string).
  void AddMeta(const char* key, const std::string& json_value) {
    meta_.emplace_back(key, json_value);
  }

  // Subsequent AddRow calls append to this named array under "rows".
  void BeginSection(const char* name) { sections_.push_back({name, {}}); }

  // `json_object` is one pre-formatted JSON object (no trailing comma).
  void AddRow(const std::string& json_object) {
    AQUILA_CHECK(!sections_.empty());
    sections_.back().second.push_back(json_object);
  }

  // Writes BENCH_<bench>.json in the working directory.
  void Write() const {
    std::string path = std::string("BENCH_") + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    AQUILA_CHECK(f != nullptr);
    char timestamp[32] = "unknown";
    std::time_t now = std::time(nullptr);
    struct tm utc;
    if (gmtime_r(&now, &utc) != nullptr) {
      std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    }
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"aquila-bench-v1\",\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"git_rev\": \"%s\",\n"
                 "  \"timestamp_utc\": \"%s\",\n"
                 "  \"threads\": %d,\n"
                 "  \"smoke\": %s,\n",
                 JsonEscape(bench_).c_str(), JsonEscape(AQUILA_GIT_REV).c_str(), timestamp,
                 threads_, smoke_ ? "true" : "false");
    // The knobs that change what a benchmark measures; unset ones are
    // omitted so a diff flags configuration drift between two runs.
    static const char* const kKnobs[] = {
        "AQUILA_BENCH_SCALE",       "AQUILA_ASYNC_WRITEBACK", "AQUILA_ASYNC_QUEUE_DEPTH",
        "AQUILA_SHOOTDOWN_MODE",    "AQUILA_SPAN_SAMPLE",     "AQUILA_SLOW_TRACE_US",
        "AQUILA_STATS_PORT",        "AQUILA_FAULT_SEED",      "AQUILA_FAULT_READ_ERR",
        "AQUILA_FAULT_WRITE_ERR",   "AQUILA_DEVICE_TIMEOUT_US", "AQUILA_HEDGE_READS",
        "AQUILA_COOP_SCHED",        "AQUILA_SCHED_MAX_PARKED",
        "AQUILA_HUGE_PAGES",        "AQUILA_HUGE_PROMOTE_THRESHOLD",
        "AQUILA_FAULT_AROUND",
    };
    std::fprintf(f, "  \"options\": {");
    bool first = true;
    for (const char* knob : kKnobs) {
      const char* v = std::getenv(knob);
      if (v == nullptr || *v == '\0') {
        continue;
      }
      std::fprintf(f, "%s\"%s\": \"%s\"", first ? "" : ", ", knob, JsonEscape(v).c_str());
      first = false;
    }
    std::fprintf(f, "},\n");
    for (const auto& [key, value] : meta_) {
      std::fprintf(f, "  \"%s\": %s,\n", JsonEscape(key).c_str(), value.c_str());
    }
    std::fprintf(f, "  \"rows\": {\n");
    for (size_t s = 0; s < sections_.size(); s++) {
      const auto& [name, rows] = sections_[s];
      std::fprintf(f, "    \"%s\": [\n", JsonEscape(name).c_str());
      for (size_t i = 0; i < rows.size(); i++) {
        std::fprintf(f, "      %s%s\n", rows[i].c_str(), i + 1 == rows.size() ? "" : ",");
      }
      std::fprintf(f, "    ]%s\n", s + 1 == sections_.size() ? "" : ",");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string bench_;
  bool smoke_;
  int threads_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, std::vector<std::string>>> sections_;
};

// End-of-run telemetry exposition, controlled by environment variables:
//   AQUILA_METRICS=1       print the registry's Prometheus-style text dump
//   AQUILA_TRACE=<path>    arm the tracer at startup and write a Chrome
//                          trace (open in ui.perfetto.dev) at exit
inline void ReportTelemetry() {
  if (const char* metrics = std::getenv("AQUILA_METRICS");
      metrics != nullptr && *metrics != '\0' && *metrics != '0') {
    std::fputs(telemetry::Registry().ToText().c_str(), stdout);
  }
  // Per-request attribution whenever span sampling recorded anything
  // (AQUILA_SPAN_SAMPLE armed it and requests actually finalized).
  if (telemetry::SpanCollector::Global().finalized() > 0) {
    std::fputs(telemetry::SpanCollector::Global().AttributionText().c_str(), stdout);
  }
  const char* trace_path = std::getenv("AQUILA_TRACE");
  if (trace_path == nullptr || *trace_path == '\0') {
    return;
  }
  std::string json = telemetry::Tracer::DumpChromeTrace(GlobalCostModel().cycles_per_us);
  std::FILE* f = std::fopen(trace_path, "w");
  if (f == nullptr) {
    AQUILA_LOG(ERROR, "cannot write trace file %s", trace_path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  AQUILA_LOG(INFO, "wrote %zu-byte Chrome trace to %s (open in ui.perfetto.dev)",
             json.size(), trace_path);
}

// Arms tracing when AQUILA_TRACE is set and reports telemetry at exit.
// Instantiated once per benchmark binary via the inline variable below.
struct TelemetryBenchInit {
  TelemetryBenchInit() {
    const char* trace_path = std::getenv("AQUILA_TRACE");
    if (trace_path != nullptr && *trace_path != '\0') {
      telemetry::Tracer::SetEnabled(true);
    }
    std::atexit(+[] { ReportTelemetry(); });
  }
};

inline TelemetryBenchInit g_telemetry_bench_init;

}  // namespace bench
}  // namespace aquila

#endif  // AQUILA_BENCH_COMMON_H_
