// Ablations of Aquila's design choices (DESIGN.md §5):
//   * batched vs per-page TLB shootdown (§4.1: one IPI per 512 pages);
//   * two-level (per-core/per-NUMA) freelist vs a single shared queue;
//   * lock-free hash vs a mutex-protected map for the cached-page index;
//   * per-core dirty trees vs one shared tree.
// The shootdown ablation reports modeled cycles; the structure ablations are
// real multi-threaded throughput on the host.
#include <benchmark/benchmark.h>

#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/cache/dirty_tree.h"
#include "src/cache/freelist.h"
#include "src/cache/lockfree_hash.h"
#include "src/mem/tlb.h"
#include "src/util/rng.h"
#include "src/vmx/ipi.h"

namespace aquila {
namespace {

void BM_ShootdownBatched(benchmark::State& state) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  std::vector<uint64_t> vpns(512);
  for (size_t i = 0; i < vpns.size(); i++) {
    vpns[i] = i;
  }
  uint64_t modeled = 0;
  for (auto _ : state) {
    SimClock clock;
    tlb.Shootdown(clock, 0, 16, vpns, fabric);
    modeled = clock.Now();
    benchmark::DoNotOptimize(modeled);
  }
  state.counters["modeled_cycles_per_page"] = static_cast<double>(modeled) / 512;
}
BENCHMARK(BM_ShootdownBatched);

void BM_ShootdownPerPage(benchmark::State& state) {
  TlbSet tlb;
  PostedIpiFabric fabric;
  uint64_t modeled = 0;
  for (auto _ : state) {
    SimClock clock;
    for (uint64_t vpn = 0; vpn < 512; vpn++) {
      tlb.Shootdown(clock, 0, 16, std::span(&vpn, 1), fabric);
    }
    modeled = clock.Now();
    benchmark::DoNotOptimize(modeled);
  }
  state.counters["modeled_cycles_per_page"] = static_cast<double>(modeled) / 512;
}
BENCHMARK(BM_ShootdownPerPage);

template <bool kTwoLevel>
void BM_FreelistAllocFree(benchmark::State& state) {
  // Shared across the benchmark's threads; gbench barriers at loop
  // start/end make the thread-0 setup/teardown safe.
  static TwoLevelFreelist* freelist = nullptr;
  if (state.thread_index() == 0) {
    TwoLevelFreelist::Options options;
    options.numa_nodes = kTwoLevel ? 2 : 1;
    // Single-queue ablation: a zero threshold forwards every free to the
    // one NUMA queue, so all threads contend there.
    options.core_queue_threshold = kTwoLevel ? 128 : 0;
    options.move_batch = kTwoLevel ? 64 : 1;
    freelist = new TwoLevelFreelist(1 << 16, options);
    freelist->AddFrames(0, 1 << 16);
  }
  int core = state.thread_index() % CoreRegistry::kMaxCores;
  std::vector<FrameId> held;
  for (auto _ : state) {
    FrameId frame = freelist->Alloc(core);
    if (frame != kInvalidFrame) {
      held.push_back(frame);
    }
    if (held.size() >= 32 || frame == kInvalidFrame) {
      for (FrameId f : held) {
        freelist->Free(core, f);
      }
      held.clear();
    }
  }
  if (state.thread_index() == 0) {
    delete freelist;
    freelist = nullptr;
  }
}
BENCHMARK(BM_FreelistAllocFree<true>)->Name("BM_FreelistTwoLevel")->Threads(8);
BENCHMARK(BM_FreelistAllocFree<false>)->Name("BM_FreelistSingleQueue")->Threads(8);

void BM_LockFreeHashMixed(benchmark::State& state) {
  static LockFreeHash* hash = nullptr;
  if (state.thread_index() == 0) {
    hash = new LockFreeHash(1 << 18);
  }
  Rng rng(state.thread_index() + 1);
  uint64_t base = static_cast<uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    uint64_t key = base | (rng.Uniform(4096) + 1);
    uint64_t value;
    if (rng.OneIn(4)) {
      if (!hash->Insert(key, key)) {
        hash->Remove(key);
      }
    } else {
      benchmark::DoNotOptimize(hash->Lookup(key, &value));
    }
  }
  if (state.thread_index() == 0) {
    delete hash;
    hash = nullptr;
  }
}
BENCHMARK(BM_LockFreeHashMixed)->Threads(8);

void BM_LockedMapMixed(benchmark::State& state) {
  static std::mutex* mu = nullptr;
  static std::map<uint64_t, uint64_t>* map = nullptr;
  if (state.thread_index() == 0) {
    mu = new std::mutex();
    map = new std::map<uint64_t, uint64_t>();
  }
  Rng rng(state.thread_index() + 1);
  uint64_t base = static_cast<uint64_t>(state.thread_index()) << 32;
  for (auto _ : state) {
    uint64_t key = base | (rng.Uniform(4096) + 1);
    std::lock_guard<std::mutex> guard(*mu);
    if (rng.OneIn(4)) {
      auto [it, inserted] = map->emplace(key, key);
      if (!inserted) {
        map->erase(it);
      }
    } else {
      auto it = map->find(key);
      benchmark::DoNotOptimize(it == map->end());
    }
  }
  if (state.thread_index() == 0) {
    delete map;
    delete mu;
    map = nullptr;
    mu = nullptr;
  }
}
BENCHMARK(BM_LockedMapMixed)->Threads(8);

template <bool kPerCore>
void BM_DirtyTrees(benchmark::State& state) {
  static DirtyTreeSet* set = nullptr;
  if (state.thread_index() == 0) {
    set = new DirtyTreeSet();
  }
  std::vector<DirtyItem> items(256);
  Rng rng(state.thread_index() + 7);
  int core = kPerCore ? state.thread_index() % CoreRegistry::kMaxCores : 0;
  for (auto _ : state) {
    for (auto& item : items) {
      item.sort_key = rng.Next();
      set->Insert(core, &item);
    }
    for (auto& item : items) {
      set->Remove(&item);
    }
  }
  if (state.thread_index() == 0) {
    delete set;
    set = nullptr;
  }
}
BENCHMARK(BM_DirtyTrees<true>)->Name("BM_DirtyTreesPerCore")->Threads(8);
BENCHMARK(BM_DirtyTrees<false>)->Name("BM_DirtyTreeShared")->Threads(8);

}  // namespace
}  // namespace aquila

BENCHMARK_MAIN();
