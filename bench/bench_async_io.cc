// I/O configuration ablation — the comparison §3.3 defers to future work:
// the same random-4K-read workload over every access method the paper
// lists, on the NVMe model:
//
//   sync-syscall : pread per request through the host kernel;
//   io_uring     : batched async submission, syscall amortized over the
//                  batch, completion path via shared memory;
//   spdk-poll    : user-space queue pairs, no kernel at all;
//   aquila-mmio  : faults on first touch, free hits thereafter.
//
// Expected shape (§7.1): async batching cuts CPU cycles per op and lifts
// throughput, but raises per-request latency (a request waits for its
// batch); SPDK removes the kernel entirely; mmio wins once the working set
// caches.
//
// The DeviceQueue sweep at the end drives the unified submission/completion
// API at queue depths 1/8/32 and writes BENCH_async_pipeline.json
// (throughput + p99 per depth) as the perf trajectory for future PRs.
// `--smoke` shrinks the run for CI.
#include <cinttypes>
#include <cstring>
#include <vector>

#include "bench/common.h"
#include "src/storage/async_io.h"
#include "src/storage/device_queue.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"

namespace aquila {
namespace bench {
namespace {

struct Row {
  double kiops;
  double avg_us;
  double p99_us;
  double cpu_cycles_per_op;  // cycles the CPU spends, excluding device waits
};

void Print(const char* name, const Row& row) {
  std::printf("%-14s %10.1f kIOPS   avg %7.2f us   p99 %7.2f us   cpu %6.0f cyc/op\n", name,
              row.kiops, row.avg_us, row.p99_us, row.cpu_cycles_per_op);
}

Row Finish(Histogram& latency, uint64_t ops, uint64_t elapsed, const CostBreakdown& delta) {
  Row row;
  uint64_t cycles_per_us = GlobalCostModel().cycles_per_us;
  row.kiops = static_cast<double>(ops) /
              (static_cast<double>(elapsed) / (cycles_per_us * 1e6)) / 1e3;
  row.avg_us = latency.Mean() / cycles_per_us;
  row.p99_us = static_cast<double>(latency.Percentile(0.99)) / cycles_per_us;
  uint64_t cpu = delta.Total() - delta[CostCategory::kDeviceIo] - delta[CostCategory::kIdle];
  row.cpu_cycles_per_op = static_cast<double>(cpu) / ops;
  return row;
}

// Random 4K reads through the unified DeviceQueue API at a fixed queue
// depth, keeping the queue saturated. Latency is end-to-end per request
// (submit to reap), so deeper queues trade p99 for throughput.
Row RunQueueDepth(uint32_t depth, uint64_t ops, uint64_t data_bytes) {
  auto device = MakeNvme(data_bytes);
  std::unique_ptr<DeviceQueue> queue = device->direct->CreateQueue(depth);
  Vcpu& vcpu = ThisVcpu();
  Histogram latency;
  Rng rng(100 + depth);
  const uint64_t pages = data_bytes / kPageSize;
  std::vector<std::vector<uint8_t>> buffers(depth, std::vector<uint8_t>(kPageSize));
  std::vector<uint32_t> free_bufs;
  for (uint32_t i = 0; i < depth; i++) {
    free_bufs.push_back(i);
  }
  std::vector<DeviceQueue::Completion> completions;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t start = vcpu.clock().Now();
  CostBreakdown before = vcpu.clock().Breakdown();
  while (completed < ops) {
    while (submitted < ops && !free_bufs.empty()) {
      uint32_t buf = free_bufs.back();
      Status status = queue->SubmitRead(vcpu, rng.Uniform(pages) * kPageSize,
                                        std::span(buffers[buf]), buf);
      if (!status.ok()) {
        AQUILA_CHECK(status.code() == StatusCode::kOutOfSpace);
        break;
      }
      free_bufs.pop_back();
      submitted++;
    }
    completions.clear();
    if (queue->Poll(vcpu, &completions) == 0 && queue->in_flight() > 0) {
      (void)queue->WaitMin(vcpu, 1, &completions);
    }
    uint64_t now = vcpu.clock().Now();
    for (const DeviceQueue::Completion& c : completions) {
      AQUILA_CHECK(c.status.ok());
      latency.Record(now - c.submit_at);
      free_bufs.push_back(static_cast<uint32_t>(c.user_data));
      completed++;
    }
  }
  return Finish(latency, ops, vcpu.clock().Now() - start, vcpu.clock().Breakdown() - before);
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main(int argc, char** argv) {
  using namespace aquila;
  using namespace aquila::bench;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  PrintHeader("I/O configurations (paper §3.3 future work): random 4K reads, NVMe");
  const uint64_t kDataBytes = smoke ? (8ull << 20) : Scaled(64ull << 20);
  const uint64_t kOps = smoke ? 512 : Scaled(4000);
  const uint64_t kPages = kDataBytes / kPageSize;

  // --- synchronous pread through the host kernel -------------------------------
  {
    auto device = MakeNvme(kDataBytes);
    Vcpu& vcpu = ThisVcpu();
    Histogram latency;
    Rng rng(1);
    std::vector<uint8_t> buf(kPageSize);
    uint64_t start = vcpu.clock().Now();
    CostBreakdown before = vcpu.clock().Breakdown();
    for (uint64_t i = 0; i < kOps; i++) {
      uint64_t begin = vcpu.clock().Now();
      AQUILA_CHECK(device->host->Read(vcpu, rng.Uniform(kPages) * kPageSize,
                                      std::span(buf)).ok());
      latency.Record(vcpu.clock().Now() - begin);
    }
    Row row = Finish(latency, kOps, vcpu.clock().Now() - start,
                     vcpu.clock().Breakdown() - before);
    Print("sync-syscall", row);
  }

  // --- io_uring: batches of 32 ----------------------------------------------------
  {
    auto device = MakeNvme(kDataBytes);
    AsyncIoRing ring(*device->direct, AsyncIoRing::Options{});
    Vcpu& vcpu = ThisVcpu();
    Histogram latency;
    Rng rng(2);
    constexpr uint32_t kBatch = 32;
    std::vector<std::vector<uint8_t>> buffers(kBatch, std::vector<uint8_t>(kPageSize));
    std::vector<AsyncIoRing::Completion> completions;
    uint64_t start = vcpu.clock().Now();
    CostBreakdown before = vcpu.clock().Breakdown();
    for (uint64_t done = 0; done < kOps; done += kBatch) {
      for (uint32_t i = 0; i < kBatch; i++) {
        AQUILA_CHECK(ring.PrepareRead(rng.Uniform(kPages) * kPageSize,
                                      std::span(buffers[i]), i).ok());
      }
      uint64_t batch_start = vcpu.clock().Now();
      AQUILA_CHECK(ring.Submit(vcpu).ok());
      completions.clear();
      AQUILA_CHECK(ring.WaitFor(vcpu, kBatch, &completions).ok());
      // Per-request latency includes waiting for the whole batch (the tail
      // cost of batching the paper calls out).
      for (uint32_t i = 0; i < kBatch; i++) {
        latency.Record(vcpu.clock().Now() - batch_start);
      }
    }
    Row row = Finish(latency, kOps, vcpu.clock().Now() - start,
                     vcpu.clock().Breakdown() - before);
    Print("io_uring-32", row);
  }

  // --- SPDK polling ------------------------------------------------------------------
  {
    auto device = MakeNvme(kDataBytes);
    Vcpu& vcpu = ThisVcpu();
    Histogram latency;
    Rng rng(3);
    std::vector<uint8_t> buf(kPageSize);
    uint64_t start = vcpu.clock().Now();
    CostBreakdown before = vcpu.clock().Breakdown();
    for (uint64_t i = 0; i < kOps; i++) {
      uint64_t begin = vcpu.clock().Now();
      AQUILA_CHECK(device->direct->Read(vcpu, rng.Uniform(kPages) * kPageSize,
                                        std::span(buf)).ok());
      latency.Record(vcpu.clock().Now() - begin);
    }
    Row row = Finish(latency, kOps, vcpu.clock().Now() - start,
                     vcpu.clock().Breakdown() - before);
    Print("spdk-poll", row);
  }

  // --- Aquila mmio (cache half the dataset) --------------------------------------------
  {
    auto device = MakeNvme(kDataBytes);
    auto runtime = MakeAquila(kDataBytes / 2);
    DeviceBacking backing(device->direct, 0, kDataBytes);
    auto map = runtime->Map(&backing, kDataBytes, kProtRead);
    AQUILA_CHECK(map.ok());
    (void)(*map)->Advise(0, kDataBytes, Advice::kRandom);
    Vcpu& vcpu = ThisVcpu();
    Histogram latency;
    Rng rng(4);
    uint64_t start = vcpu.clock().Now();
    CostBreakdown before = vcpu.clock().Breakdown();
    // Driven through the batched surface (one request per batch keeps the
    // per-op latency measurement): the sync fallback services the touch
    // during SubmitBatch; AQUILA_COOP_SCHED=1 routes it via the scheduler.
    MmioCompletion completion;
    for (uint64_t i = 0; i < kOps; i++) {
      uint64_t begin = vcpu.clock().Now();
      MmioRequest req;
      req.kind = MmioRequest::Kind::kRead;
      req.offset = rng.Uniform(kPages) * kPageSize;
      req.user_tag = i;
      AQUILA_CHECK((*map)->SubmitBatch(std::span(&req, 1)).ok());
      while ((*map)->Poll(std::span(&completion, 1)) == 0) {
      }
      AQUILA_CHECK(completion.status.ok());
      latency.Record(vcpu.clock().Now() - begin);
    }
    Row row = Finish(latency, kOps, vcpu.clock().Now() - start,
                     vcpu.clock().Breakdown() - before);
    Print("aquila-mmio", row);
    AQUILA_CHECK(runtime->Unmap(*map).ok());
  }

  std::printf("\nexpected shape: io_uring > sync in IOPS and CPU/op but worse per-request "
              "latency; spdk removes kernel cycles; mmio amortizes to ~zero on hits\n");

  // --- DeviceQueue sweep: BENCH_async_pipeline.json ----------------------------------
  PrintHeader("DeviceQueue sweep: random 4K reads at queue depth 1/8/32");
  const uint32_t kDepths[] = {1, 8, 32};
  std::vector<Row> sweep;
  for (uint32_t depth : kDepths) {
    Row row = RunQueueDepth(depth, kOps, kDataBytes);
    char label[32];
    std::snprintf(label, sizeof(label), "queue-depth-%u", depth);
    Print(label, row);
    sweep.push_back(row);
  }

  BenchJsonWriter json("async_pipeline", smoke, /*threads=*/1);
  json.AddMeta("workload", "\"random 4K reads, NVMe DeviceQueue\"");
  json.AddMeta("ops", std::to_string(kOps));
  json.BeginSection("sweep");
  for (size_t i = 0; i < sweep.size(); i++) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"queue_depth\": %u, \"kiops\": %.1f, \"avg_us\": %.2f, "
                  "\"p99_us\": %.2f, \"cpu_cycles_per_op\": %.0f}",
                  kDepths[i], sweep[i].kiops, sweep[i].avg_us, sweep[i].p99_us,
                  sweep[i].cpu_cycles_per_op);
    json.AddRow(buf);
  }
  json.Write();
  return 0;
}
