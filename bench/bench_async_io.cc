// I/O configuration ablation — the comparison §3.3 defers to future work:
// the same random-4K-read workload over every access method the paper
// lists, on the NVMe model:
//
//   sync-syscall : pread per request through the host kernel;
//   io_uring     : batched async submission, syscall amortized over the
//                  batch, completion path via shared memory;
//   spdk-poll    : user-space queue pairs, no kernel at all;
//   aquila-mmio  : faults on first touch, free hits thereafter.
//
// Expected shape (§7.1): async batching cuts CPU cycles per op and lifts
// throughput, but raises per-request latency (a request waits for its
// batch); SPDK removes the kernel entirely; mmio wins once the working set
// caches.
#include <cinttypes>

#include "bench/common.h"
#include "src/storage/async_io.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"

namespace aquila {
namespace bench {
namespace {

struct Row {
  double kiops;
  double avg_us;
  double p99_us;
  double cpu_cycles_per_op;  // cycles the CPU spends, excluding device waits
};

void Print(const char* name, const Row& row) {
  std::printf("%-14s %10.1f kIOPS   avg %7.2f us   p99 %7.2f us   cpu %6.0f cyc/op\n", name,
              row.kiops, row.avg_us, row.p99_us, row.cpu_cycles_per_op);
}

Row Finish(Histogram& latency, uint64_t ops, uint64_t elapsed, const CostBreakdown& delta) {
  Row row;
  uint64_t cycles_per_us = GlobalCostModel().cycles_per_us;
  row.kiops = static_cast<double>(ops) /
              (static_cast<double>(elapsed) / (cycles_per_us * 1e6)) / 1e3;
  row.avg_us = latency.Mean() / cycles_per_us;
  row.p99_us = static_cast<double>(latency.Percentile(0.99)) / cycles_per_us;
  uint64_t cpu = delta.Total() - delta[CostCategory::kDeviceIo] - delta[CostCategory::kIdle];
  row.cpu_cycles_per_op = static_cast<double>(cpu) / ops;
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main() {
  using namespace aquila;
  using namespace aquila::bench;
  PrintHeader("I/O configurations (paper §3.3 future work): random 4K reads, NVMe");
  const uint64_t kDataBytes = Scaled(64ull << 20);
  const uint64_t kOps = Scaled(4000);
  const uint64_t kPages = kDataBytes / kPageSize;

  // --- synchronous pread through the host kernel -------------------------------
  {
    auto device = MakeNvme(kDataBytes);
    Vcpu& vcpu = ThisVcpu();
    Histogram latency;
    Rng rng(1);
    std::vector<uint8_t> buf(kPageSize);
    uint64_t start = vcpu.clock().Now();
    CostBreakdown before = vcpu.clock().Breakdown();
    for (uint64_t i = 0; i < kOps; i++) {
      uint64_t begin = vcpu.clock().Now();
      AQUILA_CHECK(device->host->Read(vcpu, rng.Uniform(kPages) * kPageSize,
                                      std::span(buf)).ok());
      latency.Record(vcpu.clock().Now() - begin);
    }
    Row row = Finish(latency, kOps, vcpu.clock().Now() - start,
                     vcpu.clock().Breakdown() - before);
    Print("sync-syscall", row);
  }

  // --- io_uring: batches of 32 ----------------------------------------------------
  {
    auto device = MakeNvme(kDataBytes);
    AsyncIoRing ring(device->nvme_ctrl.get(), AsyncIoRing::Options{});
    Vcpu& vcpu = ThisVcpu();
    Histogram latency;
    Rng rng(2);
    constexpr uint32_t kBatch = 32;
    std::vector<std::vector<uint8_t>> buffers(kBatch, std::vector<uint8_t>(kPageSize));
    std::vector<AsyncIoRing::Completion> completions;
    uint64_t start = vcpu.clock().Now();
    CostBreakdown before = vcpu.clock().Breakdown();
    for (uint64_t done = 0; done < kOps; done += kBatch) {
      for (uint32_t i = 0; i < kBatch; i++) {
        AQUILA_CHECK(ring.PrepareRead(rng.Uniform(kPages) * kPageSize,
                                      std::span(buffers[i]), i).ok());
      }
      uint64_t batch_start = vcpu.clock().Now();
      AQUILA_CHECK(ring.Submit(vcpu).ok());
      completions.clear();
      AQUILA_CHECK(ring.WaitFor(vcpu, kBatch, &completions).ok());
      // Per-request latency includes waiting for the whole batch (the tail
      // cost of batching the paper calls out).
      for (uint32_t i = 0; i < kBatch; i++) {
        latency.Record(vcpu.clock().Now() - batch_start);
      }
    }
    Row row = Finish(latency, kOps, vcpu.clock().Now() - start,
                     vcpu.clock().Breakdown() - before);
    Print("io_uring-32", row);
  }

  // --- SPDK polling ------------------------------------------------------------------
  {
    auto device = MakeNvme(kDataBytes);
    Vcpu& vcpu = ThisVcpu();
    Histogram latency;
    Rng rng(3);
    std::vector<uint8_t> buf(kPageSize);
    uint64_t start = vcpu.clock().Now();
    CostBreakdown before = vcpu.clock().Breakdown();
    for (uint64_t i = 0; i < kOps; i++) {
      uint64_t begin = vcpu.clock().Now();
      AQUILA_CHECK(device->direct->Read(vcpu, rng.Uniform(kPages) * kPageSize,
                                        std::span(buf)).ok());
      latency.Record(vcpu.clock().Now() - begin);
    }
    Row row = Finish(latency, kOps, vcpu.clock().Now() - start,
                     vcpu.clock().Breakdown() - before);
    Print("spdk-poll", row);
  }

  // --- Aquila mmio (cache half the dataset) --------------------------------------------
  {
    auto device = MakeNvme(kDataBytes);
    auto runtime = MakeAquila(kDataBytes / 2);
    DeviceBacking backing(device->direct, 0, kDataBytes);
    auto map = runtime->Map(&backing, kDataBytes, kProtRead);
    AQUILA_CHECK(map.ok());
    (void)(*map)->Advise(0, kDataBytes, Advice::kRandom);
    Vcpu& vcpu = ThisVcpu();
    Histogram latency;
    Rng rng(4);
    uint64_t start = vcpu.clock().Now();
    CostBreakdown before = vcpu.clock().Breakdown();
    for (uint64_t i = 0; i < kOps; i++) {
      uint64_t begin = vcpu.clock().Now();
      (*map)->TouchRead(rng.Uniform(kPages) * kPageSize);
      latency.Record(vcpu.clock().Now() - begin);
    }
    Row row = Finish(latency, kOps, vcpu.clock().Now() - start,
                     vcpu.clock().Breakdown() - before);
    Print("aquila-mmio", row);
    AQUILA_CHECK(runtime->Unmap(*map).ok());
  }

  std::printf("\nexpected shape: io_uring > sync in IOPS and CPU/op but worse per-request "
              "latency; spdk removes kernel cycles; mmio amortizes to ~zero on hits\n");
  return 0;
}
