// Targeted TLB-shootdown microbenchmark (DESIGN.md §10).
//
// Part 1 — eviction churn: N threads random-read private mappings sized 4x
// the cache, so every miss evicts and every eviction batch shoots down. Every
// 8th op also drops the page it just read (Advise kDontNeed) and touches it
// again — a transient drop whose refault reuses the just-freed frame (every
// 16th drop interposes a fault on another page first, forcing a cross-owner
// handout of the dropped frame). The
// same workload runs under broadcast, mask+gen, and reuse (deferred-elision)
// IPI targeting at 1/4/8 cores; the table reports simulated shootdown cycles
// per evicted page (initiator invalidation + IPI sends + absorbed victim
// handler time, i.e. the whole CostCategory::kTlbShootdown bill), IPIs per
// shootdown, and the reuse elide/mismatch counters. With private streams no
// remote core ever maps a victim page, so mask+gen collapses the remote
// phase while broadcast pays one IPI per other active core; reuse must beat
// mask+gen at 8 cores by eliding same-owner recycles outright (the in-bench
// acceptance gate below).
//
// Part 2 — the reused-pages elision on a single thread: a sequential scan
// with active_cores=4 must elide every remote IPI (aquila.tlb.ipis_elided
// > 0 and no IPIs sent) because only the scanning core ever inserts
// translations. The run aborts if elision fails — this is the acceptance
// gate for the per-frame core mask.
//
// Emits BENCH_tlb_shootdown.json; `--smoke` shrinks the run for CI, which
// keeps a perf trajectory for the shootdown fan-out.
#include <cinttypes>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/util/rng.h"

namespace aquila {
namespace bench {
namespace {

struct Row {
  int cores = 0;
  const char* mode_name = "";
  double cycles_per_evicted_page = 0;
  double ipis_per_shootdown = 0;
  uint64_t shootdowns = 0;
  uint64_t ipis_sent = 0;
  uint64_t ipis_elided = 0;
  uint64_t shootdowns_local = 0;
  uint64_t evicted_pages = 0;
  uint64_t reuse_elided = 0;
  uint64_t reuse_mismatch = 0;
};

// Random reads over per-thread private mappings with a 4:1 data:cache ratio.
Row RunEvictionChurn(ShootdownMaskMode mode, const char* mode_name, int threads,
                     uint64_t data_bytes_per_thread, uint64_t ops_per_thread) {
  const uint64_t cache_bytes = data_bytes_per_thread * threads / 4;
  auto device = MakePmem(data_bytes_per_thread * threads);
  Aquila::Options options = AquilaOptions(cache_bytes, /*active_cores=*/threads);
  options.shootdown_mask_mode = mode;
  auto runtime = std::make_unique<Aquila>(options);

  std::vector<std::unique_ptr<DeviceBacking>> backings;
  std::vector<MemoryMap*> maps(threads);
  for (int t = 0; t < threads; t++) {
    backings.push_back(std::make_unique<DeviceBacking>(
        device->direct, static_cast<uint64_t>(t) * data_bytes_per_thread,
        data_bytes_per_thread));
    auto map = runtime->Map(backings.back().get(), data_bytes_per_thread, kProtRead);
    AQUILA_CHECK(map.ok());
    maps[t] = *map;
  }

  std::atomic<uint64_t> shootdown_cycles{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; t++) {
    pool.emplace_back([&, t] {
      // Pin the logical core id so thread t IS core t: the shootdown loop
      // targets cores [0, active_cores), and the per-frame masks must name
      // the cores that actually fault, or the comparison would measure the
      // id-assignment accident of earlier runs in this process.
      CoreRegistry::SetCurrentCoreForTest(t);
      runtime->EnterThread();
      MemoryMap* map = maps[t];
      (void)map->Advise(0, map->length(), Advice::kRandom);
      Rng rng(t * 7919 + 13);
      SimClock& clock = ThisThreadClock();
      uint64_t map_pages = map->length() / kPageSize;
      CostBreakdown before = clock.Breakdown();
      uint64_t last_offset = 0;
      for (uint64_t i = 0; i < ops_per_thread; i++) {
        last_offset = rng.Uniform(map_pages) * kPageSize + 64;
        map->TouchRead(last_offset);
        if ((i & 7u) == 7u) {
          // Transient drop: discard the page just read, then touch it again.
          // The core freelist queue is LIFO, so the refault pops the frame
          // the drop just freed — under kReuseElide that is a same-owner
          // reuse and the drop's shootdown is elided; every other mode pays
          // a one-page shootdown for it.
          uint64_t drop_page = last_offset & ~(kPageSize - 1);
          (void)map->Advise(drop_page, kPageSize, Advice::kDontNeed);
          if ((i & 127u) == 127u) {
            // Every 16th drop faults a DIFFERENT page before the re-touch:
            // when that page misses, its allocation pops the just-freed
            // frame, so under kReuseElide the parked shootdown executes as
            // a cross-owner mismatch — the counter the 8-core gate checks.
            map->TouchRead((drop_page + kPageSize) % map->length() + 64);
          }
          map->TouchRead(last_offset);
        }
      }
      CostBreakdown delta = clock.Breakdown() - before;
      shootdown_cycles.fetch_add(delta[CostCategory::kTlbShootdown],
                                 std::memory_order_relaxed);
    });
  }
  for (auto& th : pool) {
    th.join();
  }

  // Counters captured before Unmap so teardown shootdowns stay out of the row.
  Row row;
  row.cores = threads;
  row.mode_name = mode_name;
  row.shootdowns = runtime->tlb().shootdowns();
  row.ipis_sent = runtime->tlb().ipis_sent();
  row.ipis_elided = runtime->tlb().ipis_elided();
  row.shootdowns_local = runtime->tlb().shootdowns_local();
  row.reuse_elided = runtime->tlb().reuse_elided();
  row.reuse_mismatch = runtime->tlb().reuse_mismatch();
  row.evicted_pages = runtime->fault_stats().evicted_pages.load();
  if (row.evicted_pages > 0) {
    row.cycles_per_evicted_page =
        static_cast<double>(shootdown_cycles.load()) / row.evicted_pages;
  }
  if (row.shootdowns > 0) {
    row.ipis_per_shootdown = static_cast<double>(row.ipis_sent) / row.shootdowns;
  }
  for (MemoryMap* map : maps) {
    AQUILA_CHECK(runtime->Unmap(map).ok());
  }
  return row;
}

// Single-threaded sequential scan with 4 simulated active cores: every
// eviction shootdown must stay initiator-local under mask+gen. Returns the
// (elided, local, sent) counters for the JSON record.
Row RunSeqScanElision(uint64_t data_bytes) {
  auto device = MakePmem(data_bytes);
  Aquila::Options options = AquilaOptions(data_bytes / 4, /*active_cores=*/4);
  options.shootdown_mask_mode = ShootdownMaskMode::kMaskGen;
  auto runtime = std::make_unique<Aquila>(options);
  DeviceBacking backing(device->direct, 0, data_bytes);
  auto map = runtime->Map(&backing, data_bytes, kProtRead);
  AQUILA_CHECK(map.ok());
  (void)(*map)->Advise(0, data_bytes, Advice::kSequential);
  for (uint64_t offset = 0; offset < data_bytes; offset += kPageSize) {
    (*map)->TouchRead(offset);
  }
  Row row;
  row.cores = 4;
  row.mode_name = "mask+gen";
  row.shootdowns = runtime->tlb().shootdowns();
  row.ipis_sent = runtime->tlb().ipis_sent();
  row.ipis_elided = runtime->tlb().ipis_elided();
  row.shootdowns_local = runtime->tlb().shootdowns_local();
  row.evicted_pages = runtime->fault_stats().evicted_pages.load();
  AQUILA_CHECK(runtime->Unmap(*map).ok());
  // The acceptance gate: a lone scanning core must elide every remote IPI.
  AQUILA_CHECK(row.shootdowns > 0);
  AQUILA_CHECK(row.ipis_elided > 0);
  AQUILA_CHECK(row.ipis_sent == 0);
  AQUILA_CHECK(row.shootdowns_local == row.shootdowns);
  return row;
}

void PrintRow(const Row& row) {
  std::printf("%-10s %5d cores | %10.1f cyc/evicted-page | %6.2f IPIs/shootdown | "
              "sent %8" PRIu64 "  elided %8" PRIu64 "  local %6" PRIu64
              " | reuse %6" PRIu64 "/%6" PRIu64 "\n",
              row.mode_name, row.cores, row.cycles_per_evicted_page, row.ipis_per_shootdown,
              row.ipis_sent, row.ipis_elided, row.shootdowns_local, row.reuse_elided,
              row.reuse_mismatch);
}

std::string JsonRow(const Row& row) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"cores\": %d, \"mode\": \"%s\", \"cycles_per_evicted_page\": %.1f, "
                "\"ipis_per_shootdown\": %.2f, \"shootdowns\": %" PRIu64
                ", \"ipis_sent\": %" PRIu64 ", \"ipis_elided\": %" PRIu64
                ", \"shootdowns_local\": %" PRIu64 ", \"evicted_pages\": %" PRIu64
                ", \"reuse_elided\": %" PRIu64 ", \"reuse_mismatch\": %" PRIu64 "}",
                row.cores, row.mode_name, row.cycles_per_evicted_page, row.ipis_per_shootdown,
                row.shootdowns, row.ipis_sent, row.ipis_elided, row.shootdowns_local,
                row.evicted_pages, row.reuse_elided, row.reuse_mismatch);
  return buf;
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main(int argc, char** argv) {
  using namespace aquila;
  using namespace aquila::bench;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t kDataPerThread = smoke ? (2ull << 20) : Scaled(8ull << 20);
  const uint64_t kOpsPerThread = smoke ? 800 : Scaled(4000);

  PrintHeader("TLB shootdown fan-out: private random reads + transient drops, 4:1 data:cache");
  const int kCores[] = {1, 4, 8};
  struct ModeCase {
    ShootdownMaskMode mode;
    const char* name;
  };
  const ModeCase kModes[] = {{ShootdownMaskMode::kBroadcast, "broadcast"},
                             {ShootdownMaskMode::kMaskGen, "mask+gen"},
                             {ShootdownMaskMode::kReuseElide, "reuse"}};
  std::vector<Row> sweep;
  for (int cores : kCores) {
    for (const ModeCase& mc : kModes) {
      Row row = RunEvictionChurn(mc.mode, mc.name, cores, kDataPerThread, kOpsPerThread);
      PrintRow(row);
      sweep.push_back(row);
    }
  }

  // Acceptance gate (DESIGN.md §10): at 8 cores the reuse mode must beat
  // mask+gen on the whole shootdown bill, and both new counters must move —
  // elisions from the transient drops, mismatches when an intervening fault
  // steals a dropped frame before its owner re-touches the page.
  const Row* maskgen8 = nullptr;
  const Row* reuse8 = nullptr;
  for (const Row& row : sweep) {
    if (row.cores != 8) continue;
    if (std::strcmp(row.mode_name, "mask+gen") == 0) maskgen8 = &row;
    if (std::strcmp(row.mode_name, "reuse") == 0) reuse8 = &row;
  }
  AQUILA_CHECK(maskgen8 != nullptr && reuse8 != nullptr);
  AQUILA_CHECK(reuse8->reuse_elided > 0);
  AQUILA_CHECK(reuse8->reuse_mismatch > 0);
  AQUILA_CHECK(reuse8->cycles_per_evicted_page < maskgen8->cycles_per_evicted_page);

  PrintHeader("Reused-pages elision: 1 thread sequential scan, active_cores=4");
  Row seq = RunSeqScanElision(smoke ? (8ull << 20) : Scaled(32ull << 20));
  PrintRow(seq);
  std::printf("every shootdown stayed initiator-local (%" PRIu64 " elided IPIs)\n",
              seq.ipis_elided);

  BenchJsonWriter json("tlb_shootdown", smoke, /*threads=*/8);
  json.AddMeta("workload",
               "\"private random reads + transient drops (1/8 ops, 1/16 cross-owner), "
               "4:1 data:cache, eviction churn\"");
  json.AddMeta("ops_per_thread", std::to_string(kOpsPerThread));
  json.BeginSection("sweep");
  for (const Row& row : sweep) {
    json.AddRow(JsonRow(row));
  }
  json.BeginSection("seq_scan_single_thread");
  json.AddRow(JsonRow(seq));
  json.Write();
  return 0;
}
