// Figure 6: extending the application heap over fast storage — Ligra BFS on
// an R-MAT graph with the heap placed on an mmio mapping (§6.2).
//
//  (a)/(b) execution time for mmap vs Aquila (pmem and NVMe) vs DRAM-only,
//          with the DRAM cache at 1/8 and 1/4 of the heap footprint,
//          threads 1..16;
//  (c)     execution-time breakdown (user/system/idle) at 16 threads with
//          the small cache.
//
// Paper: R-MAT, 100M vertices, 10x directed edges, 18 GB graph, ~64 GB heap;
// Aquila up to 4.14x faster than mmap at 16 threads and closes the gap to
// in-memory execution from 11.8x to 2.8x.
#include <cinttypes>

#include "bench/common.h"
#include "src/graph/bfs.h"
#include "src/graph/rmat.h"

namespace aquila {
namespace bench {
namespace {

struct RunOut {
  double seconds;
  CostBreakdown breakdown;
};

// Builds the graph on the given heap (or DRAM) and runs BFS once.
RunOut RunBfs(const std::vector<std::pair<uint64_t, uint64_t>>& edges, uint64_t vertices,
              MmioHeap* heap, int threads, const std::function<void()>& thread_init) {
  std::unique_ptr<WordArray> parents;
  std::unique_ptr<Graph> graph;
  if (heap != nullptr) {
    graph = std::make_unique<Graph>(BuildGraph(vertices, edges, heap));
    parents = heap->AllocArray(vertices);
  } else {
    graph = std::make_unique<Graph>(BuildGraph(vertices, edges, nullptr));
    parents = std::make_unique<DramWordArray>(vertices);
  }
  LigraOptions options;
  options.threads = threads;
  options.thread_init = thread_init;

  SimClock& clock = ThisThreadClock();
  uint64_t start = clock.Now();
  CostBreakdown before = clock.Breakdown();
  BfsResult result = Bfs(*graph, 0, parents.get(), options);
  AQUILA_CHECK(result.reached > vertices / 2);
  RunOut out;
  out.seconds = static_cast<double>(clock.Now() - start) /
                (static_cast<double>(GlobalCostModel().cycles_per_us) * 1e6);
  out.breakdown = clock.Breakdown() - before;
  return out;
}

void PrintBreakdownRow(const char* name, const CostBreakdown& b) {
  // Fig 6(c) buckets: user = application compute; system = kernel/runtime
  // work (traps, cache mgmt, copies, TLB, syscalls); iowait = device + queueing.
  uint64_t user = b[CostCategory::kUserWork];
  uint64_t system = b[CostCategory::kTrap] + b[CostCategory::kVmExit] +
                    b[CostCategory::kPageTable] + b[CostCategory::kCacheMgmt] +
                    b[CostCategory::kDirtyTracking] + b[CostCategory::kTlbShootdown] +
                    b[CostCategory::kMemcpy] + b[CostCategory::kSyscall];
  uint64_t iowait = b[CostCategory::kDeviceIo] + b[CostCategory::kIdle];
  double total = static_cast<double>(user + system + iowait);
  if (total == 0) {
    total = 1;
  }
  std::printf("  %-12s user %5.1f%%  system %5.1f%%  io+idle %5.1f%%\n", name, user * 100 / total,
              system * 100 / total, iowait * 100 / total);
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main() {
  using namespace aquila;
  using namespace aquila::bench;

  // Scaled graph: 160K vertices, 1.6M directed edges (paper: 100M / 1G).
  uint64_t vertices = Scaled(160) * 1024;
  auto edges = GenerateRmat(vertices, vertices * 10);

  // Heap footprint: offsets + symmetrized edges + parents.
  uint64_t approx_heap = (vertices + 1 + edges.size() * 2 + vertices) * 8;
  uint64_t mapping_bytes = approx_heap * 3 / 2;
  std::printf("graph: %" PRIu64 " vertices, ~%zu directed edges, heap ~%" PRIu64 " MB\n",
              vertices, edges.size(), approx_heap >> 20);

  CostBreakdown mmap_bd, aquila_bd;
  for (uint64_t divisor : {8, 4}) {
    uint64_t cache_bytes = approx_heap / divisor;
    std::printf("\n=== Fig 6(%s): BFS execution time (s), DRAM cache = heap/%" PRIu64 " ===\n",
                divisor == 8 ? "a" : "b", divisor);
    std::printf("%-8s %12s %12s %12s %12s | %8s\n", "threads", "mmap-pmem", "aquila-pmem",
                "aquila-nvme", "dram-only", "speedup");
    for (int threads : {1, 2, 4, 8, 16}) {
      auto pmem1 = MakePmem(mapping_bytes, CopyFlavor::kPlain);
      auto mmap_engine = MakeLinuxMmap(cache_bytes);
      DeviceBacking b1(pmem1->direct, 0, mapping_bytes);
      auto m1 = mmap_engine->Map(&b1, mapping_bytes, kProtRead | kProtWrite);
      AQUILA_CHECK(m1.ok());
      MmioHeap h1(*m1);
      RunOut mmap_run = RunBfs(edges, vertices, &h1, threads,
                               [&e = *mmap_engine] { e.EnterThread(); });
      AQUILA_CHECK(mmap_engine->Unmap(*m1).ok());

      auto pmem2 = MakePmem(mapping_bytes);
      auto aq1 = MakeAquila(cache_bytes, threads + 1);
      DeviceBacking b2(pmem2->direct, 0, mapping_bytes);
      auto m2 = aq1->Map(&b2, mapping_bytes, kProtRead | kProtWrite);
      AQUILA_CHECK(m2.ok());
      MmioHeap h2(*m2);
      RunOut aquila_pmem = RunBfs(edges, vertices, &h2, threads,
                                  [&e = *aq1] { e.EnterThread(); });
      AQUILA_CHECK(aq1->Unmap(*m2).ok());

      auto nvme = MakeNvme(mapping_bytes);
      auto aq2 = MakeAquila(cache_bytes, threads + 1);
      DeviceBacking b3(nvme->direct, 0, mapping_bytes);
      auto m3 = aq2->Map(&b3, mapping_bytes, kProtRead | kProtWrite);
      AQUILA_CHECK(m3.ok());
      MmioHeap h3(*m3);
      RunOut aquila_nvme = RunBfs(edges, vertices, &h3, threads,
                                  [&e = *aq2] { e.EnterThread(); });
      AQUILA_CHECK(aq2->Unmap(*m3).ok());

      RunOut dram = RunBfs(edges, vertices, nullptr, threads, {});

      std::printf("%-8d %12.3f %12.3f %12.3f %12.3f | %6.2fx\n", threads, mmap_run.seconds,
                  aquila_pmem.seconds, aquila_nvme.seconds, dram.seconds,
                  mmap_run.seconds / aquila_pmem.seconds);
      if (divisor == 8 && threads == 16) {
        mmap_bd = mmap_run.breakdown;
        aquila_bd = aquila_pmem.breakdown;
      }
    }
  }

  PrintHeader("Fig 6(c): execution-time breakdown, 16 threads, cache = heap/8 (pmem)");
  PrintBreakdownRow("mmap", mmap_bd);
  PrintBreakdownRow("aquila", aquila_bd);
  std::printf("\npaper: Aquila 1.56x (1 thr) .. 4.14x (16 thr) faster than mmap at 8 GB "
              "cache; mmap system time 61.8%% vs Aquila 43.8%%, user 10.6%% vs 55.9%%\n");
  return 0;
}
