// Chaos trajectory for the hang-robust device I/O stack: the WatchdogQueue
// (deadlines, cancel/retry with decorrelated jitter, hedged reads) and the
// DeviceHealth breaker, driven phase by phase over the injectable NVMe
// model:
//
//   clean     : baseline — watchdog armed but idle (its cost when healthy);
//   hang      : 2% of commands are swallowed; cancel+retry keeps slots alive;
//   brownout  : every completion 3x past the deadline — timeouts, zombies,
//               hedges, reconciliation;
//   storm     : every op errors until the breaker opens and fails fast;
//   heal      : injection off — the probe must re-admit the device and
//               throughput must recover.
//
// Each phase reports completed/failed ops, simulated throughput, and the
// watchdog/health counter deltas; everything lands in BENCH_chaos.json
// (schema aquila-bench-v1) for tools/bench_compare.py. `--smoke` shrinks
// the run for CI.
#include <cinttypes>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/storage/device_health.h"
#include "src/util/rng.h"

namespace aquila {
namespace bench {
namespace {

struct PhaseRow {
  std::string phase;
  uint64_t ok_ops = 0;
  uint64_t failed_ops = 0;
  double sim_ms = 0;
  double kiops = 0;
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  uint64_t abandoned = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t fail_fast = 0;
  uint64_t probes = 0;
};

struct StatsSnap {
  uint64_t timeouts, retries, abandoned, hedges, hedge_wins, fail_fast, probes;
};

StatsSnap Snap(const DeviceHealth& health) {
  const DeviceHealth::Stats& s = health.stats();
  return {s.timeouts.load(),  s.watchdog_retries.load(), s.abandoned.load(),
          s.hedges.load(),    s.hedge_wins.load(),       s.fail_fast.load(),
          s.probes.load()};
}

// Keeps the watchdog queue saturated with random 4K reads and writes for
// `ops` completions (failed ones count: under chaos an error IS an outcome),
// tolerating shed submissions while the breaker caps the effective depth.
PhaseRow RunPhase(const char* phase, WatchdogQueue& queue, DeviceHealth& health,
                  uint64_t pages, uint64_t ops, uint64_t seed) {
  Vcpu& vcpu = ThisVcpu();
  PhaseRow row;
  row.phase = phase;
  Rng rng(seed);
  const uint32_t depth = queue.depth();
  std::vector<std::vector<uint8_t>> buffers(depth, std::vector<uint8_t>(kPageSize, 0x5C));
  std::vector<uint32_t> free_bufs;
  for (uint32_t i = 0; i < depth; i++) {
    free_bufs.push_back(i);
  }
  StatsSnap before = Snap(health);
  uint64_t start = vcpu.clock().Now();
  uint64_t completed = 0;
  uint64_t submitted = 0;
  std::vector<DeviceQueue::Completion> completions;
  while (completed < ops) {
    while (submitted < ops && !free_bufs.empty()) {
      uint32_t buf = free_bufs.back();
      uint64_t offset = rng.Uniform(pages) * kPageSize;
      Status status =
          rng.OneIn(2)
              ? queue.SubmitRead(vcpu, offset, std::span(buffers[buf]), buf)
              : queue.SubmitWrite(vcpu, offset, std::span<const uint8_t>(buffers[buf]), buf);
      if (!status.ok()) {
        AQUILA_CHECK(status.code() == StatusCode::kOutOfSpace);
        break;  // full or health-capped: reap first
      }
      free_bufs.pop_back();
      submitted++;
    }
    completions.clear();
    if (queue.Poll(vcpu, &completions) == 0 && queue.in_flight() > 0) {
      (void)queue.WaitMin(vcpu, 1, &completions);
    }
    for (const DeviceQueue::Completion& c : completions) {
      if (c.status.ok()) {
        row.ok_ops++;
      } else {
        row.failed_ops++;
      }
      free_bufs.push_back(static_cast<uint32_t>(c.user_data));
      completed++;
    }
  }
  uint64_t elapsed = vcpu.clock().Now() - start;
  StatsSnap after = Snap(health);
  row.sim_ms = CyclesToUs(elapsed) / 1e3;
  row.kiops = elapsed > 0 ? static_cast<double>(completed) /
                                (CyclesToUs(elapsed) / 1e6) / 1e3
                          : 0;
  row.timeouts = after.timeouts - before.timeouts;
  row.retries = after.retries - before.retries;
  row.abandoned = after.abandoned - before.abandoned;
  row.hedges = after.hedges - before.hedges;
  row.hedge_wins = after.hedge_wins - before.hedge_wins;
  row.fail_fast = after.fail_fast - before.fail_fast;
  row.probes = after.probes - before.probes;
  return row;
}

void Print(const PhaseRow& row) {
  std::printf("%-9s %8" PRIu64 " ok %7" PRIu64 " err %9.2f sim-ms %8.1f kIOPS   "
              "to %5" PRIu64 "  rt %5" PRIu64 "  ab %4" PRIu64 "  hg %4" PRIu64
              "  ff %5" PRIu64 "  pr %2" PRIu64 "\n",
              row.phase.c_str(), row.ok_ops, row.failed_ops, row.sim_ms, row.kiops,
              row.timeouts, row.retries, row.abandoned, row.hedges, row.fail_fast, row.probes);
}

std::string Json(const PhaseRow& row) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"phase\": \"%s\", \"ok_ops\": %" PRIu64 ", \"failed_ops\": %" PRIu64
                ", \"sim_ms\": %.3f, \"kiops\": %.2f, \"timeouts\": %" PRIu64
                ", \"retries\": %" PRIu64 ", \"abandoned\": %" PRIu64 ", \"hedges\": %" PRIu64
                ", \"hedge_wins\": %" PRIu64 ", \"fail_fast\": %" PRIu64
                ", \"probes\": %" PRIu64 "}",
                row.phase.c_str(), row.ok_ops, row.failed_ops, row.sim_ms, row.kiops,
                row.timeouts, row.retries, row.abandoned, row.hedges, row.hedge_wins,
                row.fail_fast, row.probes);
  return buf;
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main(int argc, char** argv) {
  using namespace aquila;
  using namespace aquila::bench;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t kDataBytes = smoke ? (8ull << 20) : Scaled(64ull << 20);
  const uint64_t kOps = smoke ? 2000 : Scaled(20000);
  const uint64_t kPages = kDataBytes / kPageSize;
  constexpr uint64_t kTimeoutCycles = 480'000;  // 200us at 2.4GHz

  NvmeController::Options copts;
  copts.capacity_bytes = kDataBytes;
  NvmeController ctrl(copts);
  NvmeDevice nvme(&ctrl);
  FaultInjectingDevice::Options fopts;
  FaultInjectingDevice faults(&nvme, fopts);

  DeviceHealth& health = faults.health();
  DeviceHealth::Options hopts;
  hopts.probe_interval_cycles = 2'400'000;  // 1ms
  health.Enable(hopts);
  WatchdogQueue::Options wopts;
  wopts.timeout_cycles = kTimeoutCycles;
  wopts.hedge_reads = true;
  WatchdogQueue queue(&health, faults.CreateQueue(32), wopts);

  PrintHeader("chaos: watchdog + health breaker over injectable NVMe, random 4K mixed");
  std::vector<PhaseRow> rows;

  rows.push_back(RunPhase("clean", queue, health, kPages, kOps, 11));

  faults.set_hang_rate(0.02);
  rows.push_back(RunPhase("hang", queue, health, kPages, kOps, 12));
  faults.set_hang_rate(0.0);

  faults.StartBrownout(3 * kTimeoutCycles);
  rows.push_back(RunPhase("brownout", queue, health, kPages, kOps / 4, 13));
  faults.EndBrownout();

  faults.set_read_error_rate(1.0);
  faults.set_write_error_rate(1.0);
  rows.push_back(RunPhase("storm", queue, health, kPages, kOps / 4, 14));
  faults.set_read_error_rate(0.0);
  faults.set_write_error_rate(0.0);

  // Fail-fast completions are synthesized without device time, so the storm
  // leaves the clock pinned near failed_at; idle out to the published probe
  // gate so the heal phase's first submission is admitted as the probe.
  if (uint64_t due = health.probe_due_at(); due != 0) {
    ThisVcpu().clock().AdvanceTo(due + 1, CostCategory::kIdle);
  }
  rows.push_back(RunPhase("heal", queue, health, kPages, kOps, 15));
  AQUILA_CHECK(health.state() == DeviceHealth::State::kHealthy);

  for (const PhaseRow& row : rows) {
    Print(row);
  }

  BenchJsonWriter json("chaos", smoke, /*threads=*/1);
  json.AddMeta("timeout_us", std::to_string(kTimeoutCycles / GlobalCostModel().cycles_per_us));
  json.AddMeta("queue_depth", "32");
  json.BeginSection("phases");
  for (const PhaseRow& row : rows) {
    json.AddRow(Json(row));
  }
  json.Write();
  return 0;
}
