// Figure 7: RocksDB read-path execution breakdown (cycles per Get), for the
// user-space-cache configuration vs the Aquila port (§6.3).
//
// Paper buckets:
//   device I/O       — time on the medium (excl. kernel entry): kDeviceIo+kMemcpy
//   cache management — everything spent managing the I/O cache, including
//                      syscalls on the explicit path and fault handling on
//                      the mmio path: kCacheMgmt+kSyscall+kTrap+kDirty+
//                      kTlbShootdown+kPageTable+kVmExit+kIdle
//   get              — RocksDB processing outside the cache: kUserWork
// Paper numbers: user-space cache 65.4K total (4.8K device, 45.2K cache
// mgmt of which 13K syscalls, 15.3K get); Aquila 3.9K device, 17.5K cache
// mgmt, 18.5K get — 2.58x less cache management, 40% more throughput.
#include <cinttypes>

#include "bench/common.h"
#include "src/kvs/lsm_db.h"
#include "src/ycsb/runner.h"

namespace aquila {
namespace bench {
namespace {

struct Row {
  double device = 0;
  double cache_mgmt = 0;
  double get = 0;
  double total = 0;
  double kops = 0;
};

Row RunMode(Blobstore* store, BlobNamespace* ns, const char* mode, uint64_t records,
            uint64_t cache_bytes) {
  KvsEnv::Options env_options;
  env_options.store = store;
  env_options.ns = ns;
  std::unique_ptr<BlockCache> block_cache;
  std::unique_ptr<Aquila> aquila_engine;
  std::function<void()> thread_init;
  if (std::string(mode) == "user-cache") {
    env_options.read_path = ReadPath::kDirectIo;
    BlockCache::Options bc;
    bc.capacity_bytes = cache_bytes;
    block_cache = std::make_unique<BlockCache>(bc);
  } else {
    env_options.read_path = ReadPath::kMmio;
    aquila_engine = MakeAquila(cache_bytes);
    env_options.mmio_engine = aquila_engine.get();
    thread_init = [&engine = *aquila_engine] { engine.EnterThread(); };
  }
  KvsEnv env(env_options);
  LsmDb::Options db_options;
  db_options.env = &env;
  db_options.block_cache = block_cache.get();
  db_options.name = "/db";
  db_options.enable_wal = false;
  auto db = LsmDb::Open(db_options);
  AQUILA_CHECK(db.ok());

  YcsbWorkload workload = YcsbWorkload::C();
  workload.record_count = records;
  workload.operation_count = Scaled(8000);
  workload.distribution = YcsbDistribution::kUniform;
  YcsbRunner::Options run_options;
  run_options.thread_init = thread_init;
  YcsbRunner runner(db->get(), workload, run_options);
  StatusOr<YcsbReport> report = runner.Run();
  AQUILA_CHECK(report.ok());

  double ops = static_cast<double>(report->operations);
  const CostBreakdown& b = report->breakdown;
  Row row;
  row.device = (b[CostCategory::kDeviceIo] + b[CostCategory::kMemcpy]) / ops;
  row.cache_mgmt = (b[CostCategory::kCacheMgmt] + b[CostCategory::kSyscall] +
                    b[CostCategory::kTrap] + b[CostCategory::kDirtyTracking] +
                    b[CostCategory::kTlbShootdown] + b[CostCategory::kPageTable] +
                    b[CostCategory::kVmExit] + b[CostCategory::kIdle]) /
                   ops;
  row.get = b[CostCategory::kUserWork] / ops;
  row.total = b.Total() / ops;
  row.kops = report->throughput_kops;
  db->reset();
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main() {
  using namespace aquila;
  using namespace aquila::bench;
  PrintHeader("Fig 7: RocksDB read breakdown, cycles per Get (out-of-memory dataset, pmem)");
  uint64_t records = Scaled(48) * 1024;      // ~48 MB of values
  uint64_t cache_bytes = Scaled(12ull << 20);  // 4x smaller

  auto device = MakePmem(records * 1400 * 4 + (256ull << 20));
  BlobEnv blobs = MakeBlobEnv(device->direct);
  {
    KvsEnv::Options env_options;
    env_options.store = blobs.store.get();
    env_options.ns = blobs.ns.get();
    env_options.read_path = ReadPath::kDirectIo;
    KvsEnv env(env_options);
    LsmDb::Options db_options;
    db_options.env = &env;
    db_options.name = "/db";
    db_options.enable_wal = false;
    auto db = LsmDb::Open(db_options);
    AQUILA_CHECK(db.ok());
    YcsbWorkload load = YcsbWorkload::C();
    load.record_count = records;
    YcsbRunner loader(db->get(), load, YcsbRunner::Options{});
    AQUILA_CHECK(loader.Load().ok());
    AQUILA_CHECK((*db)->Flush().ok());
  }

  Row user = RunMode(blobs.store.get(), blobs.ns.get(), "user-cache", records, cache_bytes);
  Row aquila_row = RunMode(blobs.store.get(), blobs.ns.get(), "aquila", records, cache_bytes);

  std::printf("%-12s %10s %12s %10s %10s %10s\n", "config", "device", "cache-mgmt", "get",
              "total", "kops/s");
  std::printf("%-12s %10.0f %12.0f %10.0f %10.0f %10.1f\n", "user-cache", user.device,
              user.cache_mgmt, user.get, user.total, user.kops);
  std::printf("%-12s %10.0f %12.0f %10.0f %10.0f %10.1f\n", "aquila", aquila_row.device,
              aquila_row.cache_mgmt, aquila_row.get, aquila_row.total, aquila_row.kops);
  std::printf("\ncache-management ratio user/aquila = %.2fx (paper: 2.58x)\n",
              user.cache_mgmt / aquila_row.cache_mgmt);
  std::printf("throughput gain aquila/user = %.0f%% (paper: 40%%)\n",
              (aquila_row.kops / user.kops - 1) * 100);
  std::printf("paper absolute: user-cache 4.8K/45.2K/15.3K = 65.4K total; "
              "aquila 3.9K/17.5K/18.5K\n");
  return 0;
}
