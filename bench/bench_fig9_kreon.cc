// Figure 9 (+ Table 1): Kreon over kmmap vs Kreon over Aquila, all six YCSB
// workloads, single thread, dataset larger than the cache, for NVMe and
// pmem devices (§6.4).
//
// Kreon is mmio-native: every B-tree node touch and log access goes through
// the mapping, so its throughput/latency track the mmio path underneath.
// kmmap is the Linux baseline with Kreon's kernel tweaks (no fault
// read-ahead, lazy writeback) — still kernel traps and shared locks.
#include <cinttypes>

#include "bench/common.h"
#include "src/kvs/kreon_db.h"
#include "src/ycsb/runner.h"

namespace aquila {
namespace bench {
namespace {

void PrintTable1() {
  std::printf("Table 1: standard YCSB workloads\n");
  std::printf("  A: 50%% reads, 50%% updates          B: 95%% reads, 5%% updates\n");
  std::printf("  C: 100%% reads                       D: 95%% reads, 5%% inserts (latest)\n");
  std::printf("  E: 95%% scans, 5%% inserts            F: 50%% reads, 50%% read-modify-write\n");
}

struct Result {
  double kops;
  double avg_us;
  double p999_us;
};

Result RunOne(MmioEngine* engine, BlockDevice* device, const YcsbWorkload& workload) {
  engine->EnterThread();
  DeviceBacking backing(device, 0, device->capacity_bytes());
  StatusOr<MemoryMap*> map =
      engine->Map(&backing, device->capacity_bytes(), kProtRead | kProtWrite);
  AQUILA_CHECK(map.ok());
  auto db = KreonDb::Open(*map, KreonDb::Options{});
  AQUILA_CHECK(db.ok());

  YcsbRunner::Options run_options;
  run_options.thread_init = [engine] { engine->EnterThread(); };
  YcsbRunner runner(db->get(), workload, run_options);
  AQUILA_CHECK(runner.Load().ok());
  StatusOr<YcsbReport> report = runner.Run();
  AQUILA_CHECK(report.ok());
  db->reset();  // persists via msync before the map goes away
  AQUILA_CHECK(engine->Unmap(*map).ok());
  return Result{report->throughput_kops, report->avg_latency_us, report->p999_latency_us};
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main() {
  using namespace aquila;
  using namespace aquila::bench;
  PrintHeader("Fig 9: Kreon over kmmap vs Aquila, YCSB A-F, 1 thread, out-of-memory");
  PrintTable1();

  // Paper: 16 GB dataset, 8 GB cache. Scaled: ~24 MB of records in a 96 MB
  // mapping, 12 MB cache.
  uint64_t mapping_bytes = Scaled(96ull << 20);
  uint64_t cache_bytes = Scaled(12ull << 20);
  uint64_t records = Scaled(16) * 1024;

  std::printf("\n%-5s %-3s | %9s %9s %10s | %9s %9s %10s | %7s %7s\n", "dev", "wl",
              "kmmap-kop", "avg-us", "p99.9-us", "aqla-kop", "avg-us", "p99.9-us", "thr-x",
              "p999-x");
  for (const char* kind : {"nvme", "pmem"}) {
    for (const YcsbWorkload& base : {YcsbWorkload::A(), YcsbWorkload::B(), YcsbWorkload::C(),
                                     YcsbWorkload::D(), YcsbWorkload::E(), YcsbWorkload::F()}) {
      YcsbWorkload workload = base;
      workload.record_count = records;
      workload.operation_count = Scaled(base.scan_proportion > 0 ? 800 : 5000);
      workload.max_scan_len = 50;

      auto dev1 = std::string(kind) == "pmem" ? MakePmem(mapping_bytes)
                                              : MakeNvme(mapping_bytes);
      auto kmmap = MakeKmmap(cache_bytes);
      Result km = RunOne(kmmap.get(), dev1->direct, workload);

      auto dev2 = std::string(kind) == "pmem" ? MakePmem(mapping_bytes)
                                              : MakeNvme(mapping_bytes);
      auto aquila_engine = MakeAquila(cache_bytes);
      Result aq = RunOne(aquila_engine.get(), dev2->direct, workload);

      std::printf("%-5s %-3s | %9.1f %9.2f %10.2f | %9.1f %9.2f %10.2f | %6.2fx %6.2fx\n",
                  kind, workload.name.c_str(), km.kops, km.avg_us, km.p999_us, aq.kops,
                  aq.avg_us, aq.p999_us, aq.kops / km.kops, km.p999_us / aq.p999_us);
    }
  }
  std::printf("\npaper: NVMe ~1.02x throughput (device-bound), 1.29x avg / 3.78x p99.9 "
              "latency; pmem 1.22x throughput, 1.43x avg / 13.72x p99.9\n");
  return 0;
}
