// Figure 8: page-fault overhead microbenchmarks.
//
//  (a) average page-fault breakdown, dataset fits in memory (no evictions):
//      Linux mmap vs Aquila over a pmem device;
//  (b) same with a dataset larger than the cache (evictions, writebacks and
//      TLB shootdowns in the common path);
//  (c) cost of one fault under each device-access method: Cache-Hit,
//      DAX-pmem, HOST-pmem, SPDK-NVMe, HOST-NVMe.
//
// The microbenchmark matches §5: threads issue loads/stores at random
// offsets of a mapped region such that each access faults (madvise RANDOM;
// every page touched once).
#include <cinttypes>

#include "bench/common.h"
#include "src/util/rng.h"

namespace aquila {
namespace bench {
namespace {

struct FaultRun {
  double faults = 0;
  CostBreakdown breakdown;
  uint64_t cycles_per_fault() const {
    return faults > 0 ? static_cast<uint64_t>(breakdown.Total() / faults) : 0;
  }
};

// Touches `pages` distinct pages of `map`, `write_fraction` of them with
// stores. Random advice shuffles the page order; sequential advice walks the
// mapping in order (the readahead-friendly shape).
FaultRun RunFaults(MemoryMap* map, uint64_t pages, double write_fraction, uint64_t seed,
                   Advice advice = Advice::kRandom) {
  SimClock& clock = ThisThreadClock();
  (void)map->Advise(0, map->length(), advice);
  Rng rng(seed);
  uint64_t map_pages = map->length() / kPageSize;
  std::vector<uint32_t> order(map_pages);
  for (uint64_t i = 0; i < map_pages; i++) {
    order[i] = static_cast<uint32_t>(i);
  }
  if (advice == Advice::kRandom) {
    for (uint64_t i = map_pages - 1; i > 0; i--) {
      std::swap(order[i], order[rng.Uniform(i + 1)]);
    }
  }
  CostBreakdown before = clock.Breakdown();
  uint64_t faults = 0;
  for (uint64_t i = 0; i < pages; i++) {
    uint64_t offset = static_cast<uint64_t>(order[i % map_pages]) * kPageSize + 64;
    bool write = rng.NextDouble() < write_fraction;
    faults += (write ? map->TouchWrite(offset) : map->TouchRead(offset)).faulted;
  }
  FaultRun run;
  run.faults = static_cast<double>(faults);
  run.breakdown = clock.Breakdown() - before;
  return run;
}

void PrintBreakdownRow(const char* label, const FaultRun& run) {
  auto per = [&](CostCategory c) {
    return run.faults > 0 ? static_cast<uint64_t>(run.breakdown[c] / run.faults) : 0;
  };
  std::printf(
      "%-18s total=%6" PRIu64 " | trap=%5" PRIu64 " vmexit=%5" PRIu64 " pgtbl=%5" PRIu64
      " cache=%5" PRIu64 " dirty=%5" PRIu64 " tlb=%5" PRIu64 " devio=%5" PRIu64
      " memcpy=%5" PRIu64 " syscall=%5" PRIu64 " idle=%5" PRIu64 "\n",
      label, run.cycles_per_fault(), per(CostCategory::kTrap), per(CostCategory::kVmExit),
      per(CostCategory::kPageTable), per(CostCategory::kCacheMgmt),
      per(CostCategory::kDirtyTracking), per(CostCategory::kTlbShootdown),
      per(CostCategory::kDeviceIo), per(CostCategory::kMemcpy), per(CostCategory::kSyscall),
      per(CostCategory::kIdle));
}

void PartA() {
  PrintHeader("Fig 8(a): page-fault breakdown, dataset fits in memory (pmem), cycles/fault");
  uint64_t data_bytes = Scaled(16ull << 20);
  uint64_t cache_bytes = data_bytes * 2;
  uint64_t pages = data_bytes / kPageSize;

  {
    auto device = MakePmem(data_bytes, CopyFlavor::kPlain);  // kernel copies
    auto engine = MakeLinuxMmap(cache_bytes);
    DeviceBacking backing(device->direct, 0, data_bytes);
    auto map = engine->Map(&backing, data_bytes, kProtRead | kProtWrite);
    AQUILA_CHECK(map.ok());
    FaultRun run = RunFaults(*map, pages, 0.0, 1);
    PrintBreakdownRow("linux-mmap", run);
    AQUILA_CHECK(engine->Unmap(*map).ok());
  }
  {
    auto device = MakePmem(data_bytes);
    auto runtime = MakeAquila(cache_bytes);
    DeviceBacking backing(device->direct, 0, data_bytes);
    auto map = runtime->Map(&backing, data_bytes, kProtRead | kProtWrite);
    AQUILA_CHECK(map.ok());
    FaultRun run = RunFaults(*map, pages, 0.0, 1);
    PrintBreakdownRow("aquila", run);
    AQUILA_CHECK(runtime->Unmap(*map).ok());
    std::printf("paper: Linux ~5380 cycles/fault (trap 1287); Aquila trap 552 (2.33x lower); "
                "fault excl. I/O 2724 vs Aquila ~2179\n");
  }
}

void PartB() {
  PrintHeader("Fig 8(b): page-fault breakdown with evictions (out-of-memory), cycles/fault");
  uint64_t cache_bytes = Scaled(8ull << 20);
  uint64_t data_bytes = cache_bytes * 12;  // paper: 8 GB cache, 100 GB dataset
  uint64_t touches = data_bytes / kPageSize;

  {
    auto device = MakePmem(data_bytes, CopyFlavor::kPlain);
    auto engine = MakeLinuxMmap(cache_bytes);
    DeviceBacking backing(device->direct, 0, data_bytes);
    auto map = engine->Map(&backing, data_bytes, kProtRead | kProtWrite);
    AQUILA_CHECK(map.ok());
    FaultRun run = RunFaults(*map, touches, 0.5, 2);
    PrintBreakdownRow("linux-mmap", run);
    uint64_t linux_total = run.cycles_per_fault();
    AQUILA_CHECK(engine->Unmap(*map).ok());

    auto device2 = MakePmem(data_bytes);
    auto runtime = MakeAquila(cache_bytes);
    DeviceBacking backing2(device2->direct, 0, data_bytes);
    auto map2 = runtime->Map(&backing2, data_bytes, kProtRead | kProtWrite);
    AQUILA_CHECK(map2.ok());
    FaultRun run2 = RunFaults(*map2, touches, 0.5, 2);
    PrintBreakdownRow("aquila", run2);
    AQUILA_CHECK(runtime->Unmap(*map2).ok());
    std::printf("overhead ratio linux/aquila = %.2fx (paper: 2.06x)\n",
                static_cast<double>(linux_total) /
                    static_cast<double>(run2.cycles_per_fault()));
  }

  // Same out-of-memory pressure over NVMe (sequential scan), sync vs async:
  // the device queue lets read-ahead fills and the eviction batch's writeback
  // overlap continued fault handling, where the sync path stalls the faulting
  // thread on every read-ahead batch and every writeback drain.
  {
    auto run_nvme = [&](bool async) {
      auto device = MakeNvme(data_bytes);
      Aquila::Options options = AquilaOptions(cache_bytes);
      options.async_writeback = async;
      // The sync leg forces the pipeline off; the scheduler requires it, so
      // an AQUILA_COOP_SCHED=1 run drops back to blocking faults here.
      options.coop_sched = options.coop_sched && async;
      auto runtime = std::make_unique<Aquila>(options);
      DeviceBacking backing(device->direct, 0, data_bytes);
      auto map = runtime->Map(&backing, data_bytes, kProtRead | kProtWrite);
      AQUILA_CHECK(map.ok());
      FaultRun run = RunFaults(*map, touches, 0.5, 2, Advice::kSequential);
      PrintBreakdownRow(async ? "aquila-nvme-async" : "aquila-nvme-sync", run);
      AQUILA_CHECK(runtime->Unmap(*map).ok());
      return run.cycles_per_fault();
    };
    uint64_t sync_cpf = run_nvme(false);
    uint64_t async_cpf = run_nvme(true);
    std::printf("async writeback saves %.1f%% cycles/fault over NVMe (target: >=15%%)\n",
                100.0 * (1.0 - static_cast<double>(async_cpf) /
                                   static_cast<double>(sync_cpf)));
  }
}

void PartC() {
  PrintHeader("Fig 8(c): device access methods in Aquila, cycles/fault");
  uint64_t data_bytes = Scaled(16ull << 20);
  uint64_t cache_bytes = data_bytes * 2;
  uint64_t pages = data_bytes / kPageSize / 2;

  struct Config {
    const char* name;
    std::unique_ptr<TestDevice> device;
    BlockDevice* target;
  };
  auto run_config = [&](const char* name, BlockDevice* target) {
    auto runtime = MakeAquila(cache_bytes);
    DeviceBacking backing(target, 0, data_bytes);
    auto map = runtime->Map(&backing, data_bytes, kProtRead | kProtWrite);
    AQUILA_CHECK(map.ok());
    FaultRun run = RunFaults(*map, pages, 0.0, 3);
    PrintBreakdownRow(name, run);
    AQUILA_CHECK(runtime->Unmap(*map).ok());
    return run.cycles_per_fault();
  };

  // Cache-Hit: pages already resident (prefetched), fault only installs the
  // translation (the paper's 2179-cycle case).
  {
    auto device = MakePmem(data_bytes);
    auto runtime = MakeAquila(cache_bytes);
    DeviceBacking backing(device->direct, 0, data_bytes);
    auto map = runtime->Map(&backing, data_bytes, kProtRead | kProtWrite);
    AQUILA_CHECK(map.ok());
    AQUILA_CHECK((*map)->Advise(0, data_bytes, Advice::kWillNeed).ok());  // prefetch all
    SimClock& clock = ThisThreadClock();
    CostBreakdown before = clock.Breakdown();
    Rng rng(4);
    uint64_t faults = 0;
    for (uint64_t i = 0; i < pages; i++) {
      faults += (*map)->TouchRead(rng.Uniform(data_bytes / kPageSize) * kPageSize).faulted;
    }
    FaultRun run;
    run.faults = static_cast<double>(faults);
    run.breakdown = clock.Breakdown() - before;
    PrintBreakdownRow("cache-hit", run);
    AQUILA_CHECK(runtime->Unmap(*map).ok());
  }

  auto pmem_dax = MakePmem(data_bytes);
  uint64_t dax = run_config("dax-pmem", pmem_dax->direct);
  auto pmem_host = MakePmem(data_bytes, CopyFlavor::kPlain);
  uint64_t host_pmem = run_config("host-pmem", pmem_host->host.get());
  auto nvme = MakeNvme(data_bytes);
  uint64_t spdk = run_config("spdk-nvme", nvme->direct);
  auto nvme_host = MakeNvme(data_bytes);
  uint64_t host_nvme = run_config("host-nvme", nvme_host->host.get());
  std::printf("host-pmem/dax-pmem = %.2fx (paper: 7.77x with device included in that figure's "
              "host path)\nhost-nvme/spdk-nvme = %.2fx (paper: 1.53x)\n",
              static_cast<double>(host_pmem) / static_cast<double>(dax),
              static_cast<double>(host_nvme) / static_cast<double>(spdk));
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main() {
  aquila::bench::PartA();
  aquila::bench::PartB();
  aquila::bench::PartC();
  return 0;
}
