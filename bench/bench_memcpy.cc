// §3.3 ablation: plain memcpy vs non-temporal (streaming) copy for the 4 KB
// page transfers between the DRAM cache and byte-addressable pmem.
//
// The paper measures ~2400 cycles for a non-SIMD 4 KB copy and ~900 cycles
// for the AVX2 streaming variant (plus 300 cycles FPU save/restore paid only
// on copying faults) — the streaming copy also avoids polluting the
// processor cache with device data. Run on real hardware, the host's own
// numbers appear here next to the model constants.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "src/storage/nt_memcpy.h"
#include "src/util/bitops.h"
#include "src/vmx/cost_model.h"

namespace aquila {
namespace {

constexpr size_t kSpan = 64ull << 20;  // exceed LLC so copies hit memory

struct Buffers {
  std::unique_ptr<uint8_t[]> src;
  std::unique_ptr<uint8_t[]> dst;
  uint8_t* src_aligned;
  uint8_t* dst_aligned;
};

Buffers MakeBuffers() {
  Buffers b;
  b.src = std::make_unique<uint8_t[]>(kSpan + 64);
  b.dst = std::make_unique<uint8_t[]>(kSpan + 64);
  b.src_aligned = reinterpret_cast<uint8_t*>(
      AlignUp(reinterpret_cast<uintptr_t>(b.src.get()), 64));
  b.dst_aligned = reinterpret_cast<uint8_t*>(
      AlignUp(reinterpret_cast<uintptr_t>(b.dst.get()), 64));
  std::memset(b.src_aligned, 0x5A, kSpan);
  std::memset(b.dst_aligned, 0, kSpan);
  return b;
}

void BM_PlainMemcpy4K(benchmark::State& state) {
  Buffers b = MakeBuffers();
  size_t offset = 0;
  for (auto _ : state) {
    PlainMemcpy(b.dst_aligned + offset, b.src_aligned + offset, kPageSize);
    offset = (offset + kPageSize) % kSpan;
    benchmark::DoNotOptimize(b.dst_aligned[offset]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
  state.counters["model_cycles"] = static_cast<double>(GlobalCostModel().memcpy_4k_plain);
}
BENCHMARK(BM_PlainMemcpy4K);

void BM_StreamingMemcpy4K(benchmark::State& state) {
  Buffers b = MakeBuffers();
  size_t offset = 0;
  for (auto _ : state) {
    NtMemcpy(b.dst_aligned + offset, b.src_aligned + offset, kPageSize);
    offset = (offset + kPageSize) % kSpan;
    benchmark::DoNotOptimize(b.dst_aligned[offset]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kPageSize);
  state.counters["model_cycles"] = static_cast<double>(GlobalCostModel().memcpy_4k_nt +
                                                       GlobalCostModel().fpu_save_restore);
}
BENCHMARK(BM_StreamingMemcpy4K);

}  // namespace
}  // namespace aquila

BENCHMARK_MAIN();
