// Figure 5: RocksDB (mini-LSM) under YCSB workload C (100% uniform random
// reads), comparing three I/O paths —
//   read/write : direct I/O + user-space block cache (RocksDB's recommended
//                configuration);
//   mmap       : SST reads through the Linux-mmap baseline;
//   aquila     : SST reads through Aquila mmio;
// over (a) a dataset that fits in the cache and (b) a dataset 4x larger,
// for both a pmem and an NVMe device (§6.1).
#include <cinttypes>

#include "bench/common.h"
#include "src/kvs/lsm_db.h"
#include "src/ycsb/runner.h"

namespace aquila {
namespace bench {
namespace {

struct Dataset {
  std::unique_ptr<TestDevice> device;
  BlobEnv blobs;
  uint64_t records;
};

LsmDb::Options DbOptions(KvsEnv* env, BlockCache* cache) {
  LsmDb::Options options;
  options.env = env;
  options.block_cache = cache;
  options.name = "/db";
  options.memtable_bytes = 2ull << 20;
  options.sst_target_bytes = 4ull << 20;
  options.enable_wal = false;  // load-then-read benchmark
  return options;
}

Dataset LoadDataset(const char* kind, uint64_t records) {
  Dataset ds;
  uint64_t capacity = records * 1400 * 4 + (256ull << 20);
  ds.device = std::string(kind) == "pmem" ? MakePmem(capacity) : MakeNvme(capacity);
  ds.blobs = MakeBlobEnv(ds.device->direct);
  ds.records = records;

  KvsEnv::Options env_options;
  env_options.store = ds.blobs.store.get();
  env_options.ns = ds.blobs.ns.get();
  env_options.read_path = ReadPath::kDirectIo;
  KvsEnv env(env_options);
  auto db = LsmDb::Open(DbOptions(&env, nullptr));
  AQUILA_CHECK(db.ok());
  YcsbWorkload load = YcsbWorkload::C();
  load.record_count = records;
  YcsbRunner runner(db->get(), load, YcsbRunner::Options{});
  Status load_status = runner.Load();
  if (!load_status.ok()) {
    AQUILA_LOG(ERROR, "load failed: %s", load_status.ToString().c_str());
    AQUILA_CHECK(false);
  }
  AQUILA_CHECK((*db)->Flush().ok());
  return ds;
}

void RunConfig(Dataset& ds, const char* mode, uint64_t cache_bytes, int threads) {
  KvsEnv::Options env_options;
  env_options.store = ds.blobs.store.get();
  env_options.ns = ds.blobs.ns.get();

  std::unique_ptr<BlockCache> block_cache;
  std::unique_ptr<LinuxMmapEngine> linux_engine;
  std::unique_ptr<Aquila> aquila_engine;
  std::function<void()> thread_init;

  if (std::string(mode) == "read/write") {
    env_options.read_path = ReadPath::kDirectIo;
    BlockCache::Options bc;
    bc.capacity_bytes = cache_bytes;
    block_cache = std::make_unique<BlockCache>(bc);
  } else if (std::string(mode) == "mmap") {
    env_options.read_path = ReadPath::kMmio;
    linux_engine = MakeLinuxMmap(cache_bytes);
    env_options.mmio_engine = linux_engine.get();
    thread_init = [&engine = *linux_engine] { engine.EnterThread(); };
  } else {
    env_options.read_path = ReadPath::kMmio;
    aquila_engine = MakeAquila(cache_bytes);
    env_options.mmio_engine = aquila_engine.get();
    thread_init = [&engine = *aquila_engine] { engine.EnterThread(); };
  }

  KvsEnv env(env_options);
  auto db = LsmDb::Open(DbOptions(&env, block_cache.get()));
  AQUILA_CHECK(db.ok());

  YcsbWorkload workload = YcsbWorkload::C();
  workload.record_count = ds.records;
  workload.operation_count = Scaled(6000) * threads;
  workload.distribution = YcsbDistribution::kUniform;
  YcsbRunner::Options run_options;
  run_options.threads = threads;
  run_options.thread_init = thread_init;
  YcsbRunner runner(db->get(), workload, run_options);
  StatusOr<YcsbReport> report = runner.Run();
  AQUILA_CHECK(report.ok());
  std::printf("%-6s %-10s thr=%-2d | %8.1f kops/s | avg %7.2f us | p99 %8.2f | p99.9 %8.2f\n",
              ds.device->kind, mode, threads, report->throughput_kops,
              report->avg_latency_us, report->p99_latency_us, report->p999_latency_us);
  if (std::getenv("AQUILA_BENCH_VERBOSE") != nullptr) {
    std::printf("    breakdown/op: %s\n",
                (report->breakdown.ToString()).c_str());
  }

  // Unmap all mmio SST mappings before the engines die.
  db->reset();
}

void RunPart(const char* title, uint64_t records, uint64_t cache_bytes) {
  PrintHeader(title);
  for (const char* kind : {"pmem", "nvme"}) {
    Dataset ds = LoadDataset(kind, records);
    for (int threads : {1, 4, 8}) {
      for (const char* mode : {"read/write", "mmap", "aquila"}) {
        RunConfig(ds, mode, cache_bytes, threads);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main() {
  using namespace aquila::bench;
  // Paper: 8 GB cache; datasets 8 GB (fits) and 32 GB (4x). Scaled MB-for-GB
  // with value size kept at 1 KB.
  uint64_t cache = Scaled(24ull << 20);
  RunPart("Fig 5(a): YCSB-C, dataset fits in the cache", Scaled(16) * 1024, cache);
  RunPart("Fig 5(b): YCSB-C, dataset 4x the cache", Scaled(64) * 1024, cache);
  std::printf("\npaper: (a) mmap beats read/write, Aquila up to 1.15x over mmap; "
              "(b) mmap collapses (128K readahead for 1K reads), Aquila >= read/write, "
              "up to 1.65x on pmem at high thread counts\n");
  return 0;
}
