// Transparent 2 MB huge-page mmio (DESIGN.md §14): guest-fault and
// cycles/page trajectory for the three mapping tiers on a dense scan, plus
// a Ligra-BFS leg where promotion has to coexist with dirty data and
// eviction pressure.
//
//  dense scan  8 threads sweep disjoint span-aligned slices of a pmem
//              mapping under kSequential advice. 4K-only pays one guest
//              fault per page; fault-around batches the readahead window's
//              PTE installs under one fault; huge promotes each 2 MB span
//              on its first touch and serves the other 511 pages from one
//              leaf.
//  ligra bfs   the fig-6 workload (R-MAT graph heap over mmio, cache =
//              heap/4): graph build dirties the heap, msync cleans it, then
//              BFS refaults it through eviction churn — promotions must win
//              against demotions instead of a clean read-only stream.
//
// Emits BENCH_hugepage.json (aquila-bench-v1) and GATES in-bench on the
// dense scan: huge mode must take >= 4x fewer guest faults than 4K-only
// AND spend fewer cycles per page. `--smoke` shrinks the run for CI; the
// gates still apply.
#include <cinttypes>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/graph/bfs.h"
#include "src/graph/rmat.h"

namespace aquila {
namespace bench {
namespace {

struct Mode {
  const char* name;
  bool huge_pages;
  uint32_t promote_threshold;
  uint32_t fault_around;
};

constexpr Mode kModes[] = {
    {"4k", false, 0, 0},
    {"fault_around", true, 0, 16},  // threshold 0 disables promotion
    {"huge", true, 64, 16},
};

uint64_t GuestFaults(const Aquila& runtime) {
  const FaultStats& fs = runtime.fault_stats();
  return fs.major_faults.load() + fs.minor_faults.load() + fs.write_upgrades.load();
}

Aquila::Options ModeOptions(const Mode& mode, uint64_t cache_bytes, int active_cores) {
  Aquila::Options options = AquilaOptions(cache_bytes, active_cores);
  // Explicit per-mode knobs override the AQUILA_HUGE_* env defaults so the
  // three rows always measure the three tiers.
  options.huge_pages = mode.huge_pages;
  options.huge_promote_threshold = mode.promote_threshold;
  options.fault_around_pages = mode.fault_around;
  return options;
}

struct ScanOut {
  uint64_t guest_faults;
  double cycles_per_page;
  uint64_t promotions;
  uint64_t demotions;
  uint64_t fault_around_mapped;
  uint64_t runs_carved;
  CostBreakdown breakdown;
};

// `threads` workers sweep disjoint, span-aligned slices of one shared
// mapping, one TouchRead per page.
ScanOut RunScan(const Mode& mode, int threads, uint64_t data_bytes, uint64_t cache_bytes) {
  auto device = MakePmem(data_bytes);
  auto runtime = std::make_unique<Aquila>(ModeOptions(mode, cache_bytes, threads + 1));
  DeviceBacking backing(device->direct, 0, data_bytes);
  auto map = runtime->Map(&backing, data_bytes, kProtRead);
  AQUILA_CHECK(map.ok());
  AQUILA_CHECK((*map)->Advise(0, data_bytes, Advice::kSequential).ok());

  const uint64_t pages = data_bytes / kPageSize;
  const uint64_t slice = pages / threads;
  std::atomic<uint64_t> cycles{0};
  std::mutex breakdown_mu;
  CostBreakdown breakdown;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; t++) {
    pool.emplace_back([&, t] {
      CoreRegistry::SetCurrentCoreForTest(t + 1);  // main thread keeps core 0
      runtime->EnterThread();
      SimClock& clock = ThisThreadClock();
      const uint64_t start = clock.Now();
      const CostBreakdown before = clock.Breakdown();
      const uint64_t begin = t * slice;
      const uint64_t end = (t == threads - 1) ? pages : begin + slice;
      for (uint64_t p = begin; p < end; p++) {
        (*map)->TouchRead(p * kPageSize + 64);
      }
      cycles.fetch_add(clock.Now() - start, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(breakdown_mu);
      breakdown += clock.Breakdown() - before;
    });
  }
  for (auto& th : pool) {
    th.join();
  }

  ScanOut out;
  out.breakdown = breakdown;
  out.guest_faults = GuestFaults(*runtime);
  out.cycles_per_page = static_cast<double>(cycles.load()) / static_cast<double>(pages);
  out.promotions = runtime->huge_stats().promotions.load();
  out.demotions = runtime->huge_stats().demotions.load();
  out.fault_around_mapped = runtime->huge_stats().fault_around_mapped.load();
  out.runs_carved = runtime->huge_stats().runs_carved.load();
  AQUILA_CHECK(runtime->Unmap(*map).ok());
  return out;
}

struct BfsOut {
  double seconds;
  uint64_t guest_faults;
  uint64_t promotions;
  uint64_t demotions;
};

// Fig-6-style leg: build the graph heap on the mapping (dirtying it), msync
// it clean, then run BFS with the DRAM cache at a quarter of the heap.
BfsOut RunLigraBfs(const Mode& mode, const std::vector<std::pair<uint64_t, uint64_t>>& edges,
                   uint64_t vertices, uint64_t mapping_bytes, uint64_t cache_bytes,
                   int threads) {
  auto device = MakePmem(mapping_bytes);
  auto runtime = std::make_unique<Aquila>(ModeOptions(mode, cache_bytes, threads + 1));
  DeviceBacking backing(device->direct, 0, mapping_bytes);
  auto map = runtime->Map(&backing, mapping_bytes, kProtRead | kProtWrite);
  AQUILA_CHECK(map.ok());

  MmioHeap heap(*map);
  Graph graph = BuildGraph(vertices, edges, &heap);
  std::unique_ptr<WordArray> parents = heap.AllocArray(vertices);
  // Clean the build's dirty pages so BFS reads meet promotable (clean)
  // spans, exactly as a loader handing off to a read-mostly phase would.
  AQUILA_CHECK((*map)->Sync(0, mapping_bytes).ok());

  LigraOptions options;
  options.threads = threads;
  options.thread_init = [&runtime] { runtime->EnterThread(); };

  const uint64_t faults_before = GuestFaults(*runtime);
  SimClock& clock = ThisThreadClock();
  const uint64_t start = clock.Now();
  BfsResult result = Bfs(graph, 0, parents.get(), options);
  AQUILA_CHECK(result.reached > vertices / 2);

  BfsOut out;
  out.seconds = static_cast<double>(clock.Now() - start) /
                (static_cast<double>(GlobalCostModel().cycles_per_us) * 1e6);
  out.guest_faults = GuestFaults(*runtime) - faults_before;
  out.promotions = runtime->huge_stats().promotions.load();
  out.demotions = runtime->huge_stats().demotions.load();
  AQUILA_CHECK(runtime->Unmap(*map).ok());
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main(int argc, char** argv) {
  using namespace aquila;
  using namespace aquila::bench;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  PrintHeader("Transparent 2 MB huge pages: dense scan + Ligra BFS");
  const int kThreads = 8;
  const uint64_t kScanBytes = smoke ? (16ull << 20) : Scaled(64ull << 20);
  const uint64_t kScanCache = kScanBytes + (kScanBytes / 2);  // in-memory scan

  std::printf("=== dense scan: %d threads, %" PRIu64 " MB pmem mapping ===\n", kThreads,
              kScanBytes >> 20);
  std::printf("%-14s %12s %14s %11s %10s %13s %11s\n", "mode", "guest_faults", "cycles/page",
              "promotions", "demotions", "fault_around", "runs_carved");
  ScanOut scans[3];
  for (size_t m = 0; m < 3; m++) {
    scans[m] = RunScan(kModes[m], kThreads, kScanBytes, kScanCache);
    std::printf("%-14s %12" PRIu64 " %14.1f %11" PRIu64 " %10" PRIu64 " %13" PRIu64
                " %11" PRIu64 "\n",
                kModes[m].name, scans[m].guest_faults, scans[m].cycles_per_page,
                scans[m].promotions, scans[m].demotions, scans[m].fault_around_mapped,
                scans[m].runs_carved);
  }
  for (size_t m = 0; m < 3; m++) {
    std::printf("  %-12s %s\n", kModes[m].name, scans[m].breakdown.ToString().c_str());
  }

  // Scaled R-MAT graph, heap over mmio. The cache sits at half the heap so
  // BFS churns through eviction, but never below two aligned runs — a cache
  // under kRunFrames frames carves no runs at all and the huge leg would
  // silently degenerate to 4K.
  const uint64_t vertices = (smoke ? 8 : Scaled(40)) * 1024;
  auto edges = GenerateRmat(vertices, vertices * 10);
  const uint64_t approx_heap = (vertices + 1 + edges.size() * 2 + vertices) * 8;
  const uint64_t mapping_bytes = approx_heap * 3 / 2;
  const uint64_t bfs_cache = std::max(approx_heap, uint64_t{6} << 20);
  std::printf("\n=== ligra bfs: %d threads, %" PRIu64 " vertices, heap ~%" PRIu64
              " MB, cache ~= heap ===\n",
              kThreads, vertices, approx_heap >> 20);
  std::printf("%-14s %10s %12s %11s %10s\n", "mode", "seconds", "guest_faults", "promotions",
              "demotions");
  BfsOut bfs[2];
  const Mode* bfs_modes[2] = {&kModes[0], &kModes[2]};
  for (size_t m = 0; m < 2; m++) {
    bfs[m] = RunLigraBfs(*bfs_modes[m], edges, vertices, mapping_bytes, bfs_cache, kThreads);
    std::printf("%-14s %10.3f %12" PRIu64 " %11" PRIu64 " %10" PRIu64 "\n", bfs_modes[m]->name,
                bfs[m].seconds, bfs[m].guest_faults, bfs[m].promotions, bfs[m].demotions);
  }

  BenchJsonWriter json("hugepage", smoke, kThreads);
  json.AddMeta("scan_bytes", std::to_string(kScanBytes));
  json.AddMeta("bfs_vertices", std::to_string(vertices));
  json.BeginSection("dense_scan");
  for (size_t m = 0; m < 3; m++) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\": \"%s\", \"guest_faults\": %" PRIu64
                  ", \"cycles_per_page\": %.1f, \"promotions\": %" PRIu64
                  ", \"fault_around_mapped\": %" PRIu64 "}",
                  kModes[m].name, scans[m].guest_faults, scans[m].cycles_per_page,
                  scans[m].promotions, scans[m].fault_around_mapped);
    json.AddRow(buf);
  }
  json.BeginSection("ligra_bfs");
  for (size_t m = 0; m < 2; m++) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"mode\": \"%s\", \"seconds\": %.3f, \"guest_faults\": %" PRIu64
                  ", \"promotions\": %" PRIu64 ", \"demotions\": %" PRIu64 "}",
                  bfs_modes[m]->name, bfs[m].seconds, bfs[m].guest_faults, bfs[m].promotions,
                  bfs[m].demotions);
    json.AddRow(buf);
  }
  json.Write();

  // Acceptance gates (dense scan, huge vs 4K-only).
  bool ok = true;
  if (scans[2].guest_faults * 4 > scans[0].guest_faults) {
    std::fprintf(stderr, "GATE FAILED: huge guest faults %" PRIu64 " not >= 4x below 4k %" PRIu64
                         "\n",
                 scans[2].guest_faults, scans[0].guest_faults);
    ok = false;
  }
  if (scans[2].cycles_per_page >= scans[0].cycles_per_page) {
    std::fprintf(stderr, "GATE FAILED: huge cycles/page %.1f not below 4k %.1f\n",
                 scans[2].cycles_per_page, scans[0].cycles_per_page);
    ok = false;
  }
  if (ok) {
    std::printf("\ngate: huge >= 4x fewer guest faults and cheaper per page than 4K -- PASS\n");
  }
  return ok ? 0 : 1;
}
