// Figure 10: scalability of Aquila vs Linux mmap with random reads, for a
// single shared file and a private file per thread, with the dataset
// (a) fitting in memory and (b) 8x larger than the cache.
//
// The Linux baseline's per-file tree lock (and the global lru lock) are
// modeled as serialized resources, so the shared-file configuration shows
// the contention collapse of §6.5 deterministically. Latency percentiles
// come from per-op simulated-cycle samples.
#include <cinttypes>
#include <algorithm>
#include <functional>
#include <thread>

#include "bench/common.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"

namespace aquila {
namespace bench {
namespace {

struct RunResult {
  double mops = 0;
  double avg_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  // Simulated cycles charged to CostCategory::kTlbShootdown per op, summed
  // across threads. Isolates the eviction-path shootdown bill, which the
  // aggregate avg-us column drowns under device-read cost; this is the column
  // the broadcast-vs-mask+gen comparison in EXPERIMENTS.md is measured on.
  double shootdown_cyc_per_op = 0;
};

// `maps[t]` is the mapping thread t reads from (all equal for shared mode).
// `thread_init` receives the thread index so engines can pin thread t to
// core t — CoreRegistry hands out globally incrementing ids, so without the
// pin a later run's threads sit outside [0, active_cores) and the per-frame
// cpu_mask would never intersect the shootdown target population.
RunResult RunThreads(const std::vector<MemoryMap*>& maps, int threads, uint64_t ops_per_thread,
                     const std::function<void(int)>& thread_init) {
  Histogram latency;
  std::vector<uint64_t> durations(threads, 0);
  std::vector<uint64_t> shootdown_cycles(threads, 0);
  uint64_t origin = ThisThreadClock().Now();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; t++) {
    pool.emplace_back([&, t] {
      if (thread_init) {
        thread_init(t);
      }
      ThisThreadClock().JumpTo(origin);
      MemoryMap* map = maps[t];
      (void)map->Advise(0, map->length(), Advice::kRandom);
      Rng rng(t * 7919 + 13);
      SimClock& clock = ThisThreadClock();
      uint64_t start = clock.Now();
      CostBreakdown before = clock.Breakdown();
      uint64_t map_pages = map->length() / kPageSize;
      for (uint64_t i = 0; i < ops_per_thread; i++) {
        uint64_t begin = clock.Now();
        map->TouchRead(rng.Uniform(map_pages) * kPageSize + 128);
        latency.Record(clock.Now() - begin);
      }
      durations[t] = clock.Now() - start;
      CostBreakdown delta = clock.Breakdown() - before;
      shootdown_cycles[t] = delta[CostCategory::kTlbShootdown];
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  RunResult result;
  uint64_t slowest = *std::max_element(durations.begin(), durations.end());
  uint64_t cycles_per_us = GlobalCostModel().cycles_per_us;
  if (slowest > 0) {
    result.mops = static_cast<double>(ops_per_thread) * threads /
                  (static_cast<double>(slowest) / cycles_per_us);
  }
  result.avg_us = latency.Mean() / static_cast<double>(cycles_per_us);
  result.p99_us = static_cast<double>(latency.Percentile(0.99)) / cycles_per_us;
  result.p999_us = static_cast<double>(latency.Percentile(0.999)) / cycles_per_us;
  uint64_t shootdown_total = 0;
  for (uint64_t c : shootdown_cycles) {
    shootdown_total += c;
  }
  result.shootdown_cyc_per_op =
      static_cast<double>(shootdown_total) / (static_cast<double>(ops_per_thread) * threads);
  return result;
}

void RunCase(const char* title, uint64_t shared_data_bytes, uint64_t private_data_bytes,
             uint64_t cache_bytes) {
  PrintHeader(title);
  const int thread_counts[] = {1, 2, 4, 8, 16, 32};
  // Ops sized so random reads are mostly cold misses at every thread count
  // (the paper's dataset is far larger than any run's access count).
  uint64_t ops = Scaled(1800);

  std::printf("%-8s %-8s | %10s %9s %9s %9s | %10s %9s %9s %9s %10s | %7s\n", "layout",
              "threads", "mmap-Mops", "avg-us", "p99", "p99.9", "aqla-Mops", "avg-us", "p99",
              "p99.9", "sd-cyc/op", "speedup");
  for (const char* layout : {"shared", "private"}) {
    bool shared = std::string(layout) == "shared";
    for (int threads : thread_counts) {
      uint64_t data_bytes = shared ? shared_data_bytes : private_data_bytes;
      // --- Linux mmap ---------------------------------------------------------
      RunResult linux_result;
      {
        auto device = MakePmem(data_bytes * (shared ? 1 : 32), CopyFlavor::kPlain);
        auto engine = MakeLinuxMmap(cache_bytes);
        std::vector<std::unique_ptr<DeviceBacking>> backings;
        std::vector<MemoryMap*> maps(threads);
        if (shared) {
          backings.push_back(std::make_unique<DeviceBacking>(device->direct, 0, data_bytes));
          auto map = engine->Map(backings[0].get(), data_bytes, kProtRead);
          AQUILA_CHECK(map.ok());
          for (int t = 0; t < threads; t++) {
            maps[t] = *map;
          }
        } else {
          for (int t = 0; t < threads; t++) {
            backings.push_back(std::make_unique<DeviceBacking>(
                device->direct, static_cast<uint64_t>(t) * data_bytes, data_bytes));
            auto map = engine->Map(backings.back().get(), data_bytes, kProtRead);
            AQUILA_CHECK(map.ok());
            maps[t] = *map;
          }
        }
        linux_result = RunThreads(maps, threads, ops, [&](int) { engine->EnterThread(); });
      }
      // --- Aquila ---------------------------------------------------------------
      RunResult aquila_result;
      {
        auto device = MakePmem(data_bytes * (shared ? 1 : 32));
        auto runtime = MakeAquila(cache_bytes, /*active_cores=*/threads);
        std::vector<std::unique_ptr<DeviceBacking>> backings;
        std::vector<MemoryMap*> maps(threads);
        if (shared) {
          backings.push_back(std::make_unique<DeviceBacking>(device->direct, 0, data_bytes));
          auto map = runtime->Map(backings[0].get(), data_bytes, kProtRead);
          AQUILA_CHECK(map.ok());
          for (int t = 0; t < threads; t++) {
            maps[t] = *map;
          }
        } else {
          for (int t = 0; t < threads; t++) {
            backings.push_back(std::make_unique<DeviceBacking>(
                device->direct, static_cast<uint64_t>(t) * data_bytes, data_bytes));
            auto map = runtime->Map(backings.back().get(), data_bytes, kProtRead);
            AQUILA_CHECK(map.ok());
            maps[t] = *map;
          }
        }
        aquila_result = RunThreads(maps, threads, ops, [&](int t) {
          CoreRegistry::SetCurrentCoreForTest(t);
          runtime->EnterThread();
        });
        for (MemoryMap* map : maps) {
          if (map != nullptr) {
            (void)runtime->Unmap(map);
            for (int t = 0; t < threads; t++) {
              if (maps[t] == map) {
                maps[t] = nullptr;
              }
            }
          }
        }
      }
      std::printf(
          "%-8s %-8d | %10.3f %9.2f %9.2f %9.2f | %10.3f %9.2f %9.2f %9.2f %10.2f | %6.2fx\n",
          layout, threads, linux_result.mops, linux_result.avg_us, linux_result.p99_us,
          linux_result.p999_us, aquila_result.mops, aquila_result.avg_us, aquila_result.p99_us,
          aquila_result.p999_us, aquila_result.shootdown_cyc_per_op,
          aquila_result.mops / linux_result.mops);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace aquila

int main() {
  using aquila::bench::RunCase;
  using aquila::bench::Scaled;
  // (a) dataset fits in memory (paper: 100 GB data, 100 GB DRAM).
  RunCase("Fig 10(a): random reads, dataset fits in memory",
          Scaled(256ull << 20), Scaled(8ull << 20), Scaled(512ull << 20));
  // (b) dataset ~16x the cache (paper: 100 GB data, 8 GB DRAM).
  RunCase("Fig 10(b): random reads, dataset larger than memory",
          Scaled(256ull << 20), Scaled(8ull << 20), Scaled(16ull << 20));
  std::printf("\npaper: shared-file in-memory speedup 1.81x..8.37x (1..32 thr); "
              "out-of-memory 2.17x..12.92x; private-file 1.82x..1.99x and 2.21x..2.84x\n");
  return 0;
}
