// YCSB workload definitions (Cooper et al. [15]; Table 1 of the paper).
//
// The generator matches the YCSB-C client the paper uses: 30-byte keys
// ("user" + zero-padded hashed id), 1 KB values, scrambled-zipfian request
// distribution by default (uniform for the Fig 5 experiments), and the
// standard A-F operation mixes.
#ifndef AQUILA_SRC_YCSB_WORKLOAD_H_
#define AQUILA_SRC_YCSB_WORKLOAD_H_

#include <cstdint>
#include <string>

namespace aquila {

enum class YcsbDistribution {
  kUniform,
  kZipfian,
  kLatest,
};

struct YcsbWorkload {
  std::string name;
  double read_proportion = 0;
  double update_proportion = 0;
  double insert_proportion = 0;
  double scan_proportion = 0;
  double rmw_proportion = 0;  // read-modify-write
  YcsbDistribution distribution = YcsbDistribution::kZipfian;
  uint64_t record_count = 1000000;
  uint64_t operation_count = 1000000;
  uint32_t key_bytes = 30;
  uint32_t value_bytes = 1024;
  uint32_t max_scan_len = 100;

  // Table 1: the six standard workloads.
  static YcsbWorkload A() {
    YcsbWorkload w;
    w.name = "A";
    w.read_proportion = 0.5;
    w.update_proportion = 0.5;
    return w;
  }
  static YcsbWorkload B() {
    YcsbWorkload w;
    w.name = "B";
    w.read_proportion = 0.95;
    w.update_proportion = 0.05;
    return w;
  }
  static YcsbWorkload C() {
    YcsbWorkload w;
    w.name = "C";
    w.read_proportion = 1.0;
    return w;
  }
  static YcsbWorkload D() {
    YcsbWorkload w;
    w.name = "D";
    w.read_proportion = 0.95;
    w.insert_proportion = 0.05;
    w.distribution = YcsbDistribution::kLatest;
    return w;
  }
  static YcsbWorkload E() {
    YcsbWorkload w;
    w.name = "E";
    w.scan_proportion = 0.95;
    w.insert_proportion = 0.05;
    return w;
  }
  static YcsbWorkload F() {
    YcsbWorkload w;
    w.name = "F";
    w.read_proportion = 0.5;
    w.rmw_proportion = 0.5;
    return w;
  }
};

// Deterministic key for record id `i`: "user" + zero-padded scrambled id,
// padded to key_bytes.
std::string YcsbKey(uint64_t id, uint32_t key_bytes);

// Deterministic value payload for record id `i`.
std::string YcsbValue(uint64_t id, uint32_t value_bytes);

}  // namespace aquila

#endif  // AQUILA_SRC_YCSB_WORKLOAD_H_
