#include "src/ycsb/workload.h"

#include <cstdio>

#include "src/util/rng.h"

namespace aquila {

std::string YcsbKey(uint64_t id, uint32_t key_bytes) {
  char buf[64];
  int n = std::snprintf(buf, sizeof(buf), "user%020llu",
                        static_cast<unsigned long long>(FnvHash64(id)));
  std::string key(buf, n);
  if (key.size() < key_bytes) {
    key.append(key_bytes - key.size(), 'k');
  } else {
    key.resize(key_bytes);
  }
  return key;
}

std::string YcsbValue(uint64_t id, uint32_t value_bytes) {
  std::string value(value_bytes, '\0');
  Rng rng(id + 1);
  for (size_t i = 0; i < value.size(); i++) {
    value[i] = static_cast<char>('a' + rng.Uniform(26));
  }
  return value;
}

}  // namespace aquila
