// Multi-threaded YCSB runner over any KvStore.
//
// Latency is measured on each thread's *simulated* clock (device time,
// queueing, privilege transitions and measured software cycles all land
// there — see src/util/sim_clock.h), so throughput and tail latency reflect
// the modeled machine rather than the host container. The runner reports
// ops/sec, avg/p99/p99.9 latency in microseconds, and the per-category cost
// breakdown the paper's Figure 7 plots.
#ifndef AQUILA_SRC_YCSB_RUNNER_H_
#define AQUILA_SRC_YCSB_RUNNER_H_

#include <functional>
#include <string>

#include "src/kvs/kv_store.h"
#include "src/util/histogram.h"
#include "src/util/sim_clock.h"
#include "src/ycsb/workload.h"

namespace aquila {

struct YcsbReport {
  double throughput_kops = 0;     // thousands of ops per simulated second
  double avg_latency_us = 0;
  double p99_latency_us = 0;
  double p999_latency_us = 0;
  uint64_t operations = 0;
  uint64_t failed_reads = 0;      // keys that should have been found but were not
  CostBreakdown breakdown;        // summed over worker threads
  double cycles_per_op = 0;

  std::string ToString() const;
};

class YcsbRunner {
 public:
  struct Options {
    int threads = 1;
    // Per-thread hook (engine EnterThread etc.).
    std::function<void()> thread_init;
    uint64_t seed = 42;
  };

  YcsbRunner(KvStore* store, const YcsbWorkload& workload, const Options& options);

  // Load phase: inserts record_count records (sequential ids).
  Status Load();

  // Run phase: operation_count ops split across threads.
  StatusOr<YcsbReport> Run();

 private:
  KvStore* store_;
  YcsbWorkload workload_;
  Options options_;
  std::atomic<uint64_t> inserted_records_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_YCSB_RUNNER_H_
