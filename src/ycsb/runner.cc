#include "src/ycsb/runner.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/util/rng.h"
#include "src/vmx/cost_model.h"

namespace aquila {

std::string YcsbReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%.1f kops/s | avg %.2f us | p99 %.2f us | p99.9 %.2f us | %.0f cyc/op",
                throughput_kops, avg_latency_us, p99_latency_us, p999_latency_us,
                cycles_per_op);
  return buf;
}

YcsbRunner::YcsbRunner(KvStore* store, const YcsbWorkload& workload, const Options& options)
    : store_(store), workload_(workload), options_(options) {}

Status YcsbRunner::Load() {
  if (options_.thread_init) {
    options_.thread_init();
  }
  for (uint64_t i = 0; i < workload_.record_count; i++) {
    std::string key = YcsbKey(i, workload_.key_bytes);
    std::string value = YcsbValue(i, workload_.value_bytes);
    AQUILA_RETURN_IF_ERROR(store_->Put(Slice(key), Slice(value)));
  }
  inserted_records_.store(workload_.record_count, std::memory_order_relaxed);
  return Status::Ok();
}

StatusOr<YcsbReport> YcsbRunner::Run() {
  inserted_records_.store(workload_.record_count, std::memory_order_relaxed);
  const int threads = std::max(1, options_.threads);
  const uint64_t ops_per_thread = workload_.operation_count / threads;

  Histogram latency;
  std::vector<uint64_t> thread_cycles(threads, 0);
  std::vector<CostBreakdown> thread_breakdowns(threads);
  std::atomic<uint64_t> failed_reads{0};
  std::atomic<bool> error{false};

  uint64_t origin = ThisThreadClock().Now();
  auto worker = [&](int tid) {
    if (options_.thread_init) {
      options_.thread_init();
    }
    // Cores share wall-clock time: sync to the coordinator before working.
    ThisThreadClock().JumpTo(origin);
    Rng rng(options_.seed * 7919 + tid + 1);
    ZipfianGenerator zipf(workload_.record_count, ZipfianGenerator::kDefaultTheta,
                          options_.seed + tid * 131);
    LatestGenerator latest(workload_.record_count, options_.seed + tid * 131);

    SimClock& clock = ThisThreadClock();
    uint64_t run_start = clock.Now();
    CostBreakdown breakdown_start = clock.Breakdown();

    std::string value;
    for (uint64_t op = 0; op < ops_per_thread && !error.load(std::memory_order_relaxed);
         op++) {
      uint64_t current_records = inserted_records_.load(std::memory_order_relaxed);
      latest.AdvanceTo(current_records);
      uint64_t id = 0;
      switch (workload_.distribution) {
        case YcsbDistribution::kUniform:
          id = rng.Uniform(current_records);
          break;
        case YcsbDistribution::kZipfian:
          id = FnvHash64(zipf.Next()) % current_records;
          break;
        case YcsbDistribution::kLatest:
          id = latest.Next();
          break;
      }
      std::string key = YcsbKey(id, workload_.key_bytes);

      double dice = rng.NextDouble();
      uint64_t op_start = clock.Now();
      Status status;
      if (dice < workload_.read_proportion) {
        bool found = false;
        status = store_->Get(Slice(key), &value, &found);
        if (status.ok() && !found) {
          failed_reads.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (dice < workload_.read_proportion + workload_.update_proportion) {
        std::string update = YcsbValue(id ^ op, workload_.value_bytes);
        status = store_->Put(Slice(key), Slice(update));
      } else if (dice < workload_.read_proportion + workload_.update_proportion +
                            workload_.insert_proportion) {
        uint64_t new_id = inserted_records_.fetch_add(1, std::memory_order_relaxed);
        std::string new_key = YcsbKey(new_id, workload_.key_bytes);
        std::string new_value = YcsbValue(new_id, workload_.value_bytes);
        status = store_->Put(Slice(new_key), Slice(new_value));
      } else if (dice < workload_.read_proportion + workload_.update_proportion +
                            workload_.insert_proportion + workload_.scan_proportion) {
        int len = static_cast<int>(rng.Uniform(workload_.max_scan_len)) + 1;
        status = store_->Scan(Slice(key), len, [](const Slice&, const Slice&) {});
      } else {
        // Read-modify-write.
        bool found = false;
        status = store_->Get(Slice(key), &value, &found);
        if (status.ok()) {
          std::string update = YcsbValue(id ^ op, workload_.value_bytes);
          status = store_->Put(Slice(key), Slice(update));
        }
      }
      if (!status.ok()) {
        error.store(true, std::memory_order_relaxed);
        break;
      }
      latency.Record(clock.Now() - op_start);
    }
    thread_cycles[tid] = clock.Now() - run_start;
    thread_breakdowns[tid] = clock.Breakdown() - breakdown_start;
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; t++) {
      pool.emplace_back(worker, t);
    }
    for (auto& t : pool) {
      t.join();
    }
    ThisThreadClock().JumpTo(origin + *std::max_element(thread_cycles.begin(),
                                                        thread_cycles.end()));
  }
  if (error.load()) {
    return Status::IoError("a YCSB operation failed");
  }

  YcsbReport report;
  report.operations = latency.Count();
  report.failed_reads = failed_reads.load();
  uint64_t cycles_per_us = GlobalCostModel().cycles_per_us;
  report.avg_latency_us = latency.Mean() / static_cast<double>(cycles_per_us);
  report.p99_latency_us =
      static_cast<double>(latency.Percentile(0.99)) / static_cast<double>(cycles_per_us);
  report.p999_latency_us =
      static_cast<double>(latency.Percentile(0.999)) / static_cast<double>(cycles_per_us);
  // Throughput: ops / wall time of the slowest worker (cores run in
  // parallel in the model).
  uint64_t max_cycles = *std::max_element(thread_cycles.begin(), thread_cycles.end());
  if (max_cycles > 0) {
    double seconds =
        static_cast<double>(max_cycles) / (static_cast<double>(cycles_per_us) * 1e6);
    report.throughput_kops = static_cast<double>(report.operations) / seconds / 1e3;
  }
  uint64_t total_cycles = 0;
  for (int t = 0; t < threads; t++) {
    report.breakdown += thread_breakdowns[t];
    total_cycles += thread_cycles[t];
  }
  if (report.operations > 0) {
    report.cycles_per_op =
        static_cast<double>(total_cycles) / static_cast<double>(report.operations);
  }
  return report;
}

}  // namespace aquila
