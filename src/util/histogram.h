// Log-bucketed latency histogram with percentile queries.
//
// Layout mirrors HdrHistogram's idea at much lower resolution: values are
// bucketed by (exponent, 8 linear sub-buckets), giving <= ~6% relative error
// per bucket, which is ample for avg/p99/p99.9 reporting. Recording is a
// single relaxed atomic increment so one histogram can be shared by many
// workers, and histograms are mergeable for per-thread recording.
#ifndef AQUILA_SRC_UTIL_HISTOGRAM_H_
#define AQUILA_SRC_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace aquila {

class Histogram {
 public:
  Histogram();

  // Records one sample (e.g. nanoseconds or cycles). Thread-safe.
  void Record(uint64_t value);

  // Adds all samples from `other` into this histogram.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t Count() const;
  uint64_t Sum() const;
  double Mean() const;
  uint64_t Min() const;
  uint64_t Max() const;

  // Value at quantile q in [0, 1], e.g. 0.999 for p99.9. Returns 0 on an
  // empty histogram; otherwise the result is clamped to [Min(), Max()], so
  // bucket-midpoint error never reports a value outside the observed range.
  uint64_t Percentile(double q) const;

  // One-line summary: count/mean/p50/p99/p99.9/max.
  std::string Summary() const;

 private:
  // Values < 16 get exact buckets 0..15; each power-of-two octave above
  // splits into kSubBuckets linear sub-buckets. Exponents 4..63 cover the
  // full uint64_t range, so no recordable value lands past the last bucket.
  static constexpr int kSubBuckets = 8;
  static constexpr int kBuckets = 16 + (64 - 4) * kSubBuckets;

  static int BucketFor(uint64_t value);
  static uint64_t BucketMidpoint(int bucket);

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_UTIL_HISTOGRAM_H_
