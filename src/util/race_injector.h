// Seeded schedule perturbation for the concurrency stress harness.
//
// `AQUILA_RACE_POINT("subsystem.site")` marks a state transition whose
// neighborhood is interesting to interleave: the instant before a frame is
// published/claimed, between a freelist pop and its push, between clearing a
// frame's identity and its kFree store. In normal builds the macro compiles
// to nothing — zero code, zero branch, no string in the binary. Configured
// with -DAQUILA_RACE_INJECT=ON, each point randomly yields the thread or
// burns a short random pause window, widening exactly the windows a data
// race needs, so the stress tests (and TSan) hit interleavings that an
// uninstrumented scheduler on a small host would almost never produce.
//
// The schedule is reproducible: AQUILA_RACE_SEED=<n> seeds a per-thread
// xorshift stream (thread streams are decorrelated by arrival order, which
// is itself deterministic for a fixed test). AQUILA_RACE_ONEIN=<n> tunes the
// perturbation rate (default 8: one point in eight perturbs).
#ifndef AQUILA_SRC_UTIL_RACE_INJECTOR_H_
#define AQUILA_SRC_UTIL_RACE_INJECTOR_H_

#if AQUILA_RACE_INJECT

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "src/util/cpu.h"
#include "src/util/rng.h"

namespace aquila {
namespace race {

struct Config {
  uint64_t seed = 1;
  uint32_t one_in = 8;  // perturb one point in `one_in`
};

inline const Config& GlobalConfig() {
  static const Config config = [] {
    Config c;
    if (const char* s = std::getenv("AQUILA_RACE_SEED"); s != nullptr && *s != '\0') {
      c.seed = std::strtoull(s, nullptr, 10);
    }
    if (const char* s = std::getenv("AQUILA_RACE_ONEIN"); s != nullptr && *s != '\0') {
      uint64_t v = std::strtoull(s, nullptr, 10);
      if (v > 0) {
        c.one_in = static_cast<uint32_t>(v);
      }
    }
    return c;
  }();
  return config;
}

inline std::atomic<uint64_t>& PerturbCount() {
  static std::atomic<uint64_t> count{0};
  return count;
}

inline uint64_t SiteHash(const char* site) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char* p = site; *p != '\0'; p++) {
    hash ^= static_cast<uint8_t>(*p);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// Perturbs the schedule at `site` with probability 1/one_in: half the
// perturbations yield (force a reschedule on a loaded host), half spin a
// random sub-microsecond window (stretch the racy interval without a
// context switch). The site string feeds the stream so distinct points in
// the same thread diverge even when hit back-to-back.
inline void Perturb(const char* site) {
  static std::atomic<uint64_t> next_thread{0};
  thread_local Rng rng(GlobalConfig().seed * 0x9e3779b97f4a7c15ull +
                       (next_thread.fetch_add(1, std::memory_order_relaxed) + 1) *
                           0xbf58476d1ce4e5b9ull);
  uint64_t roll = rng.Next() ^ SiteHash(site);
  if (roll % GlobalConfig().one_in != 0) {
    return;
  }
  PerturbCount().fetch_add(1, std::memory_order_relaxed);
  if (roll & 0x100) {
    std::this_thread::yield();
  } else {
    uint32_t spins = static_cast<uint32_t>((roll >> 16) & 0xff);
    for (uint32_t i = 0; i < spins; i++) {
      CpuRelax();
    }
  }
}

}  // namespace race
}  // namespace aquila

#define AQUILA_RACE_POINT(site) ::aquila::race::Perturb(site)

#else  // !AQUILA_RACE_INJECT

#define AQUILA_RACE_POINT(site) ((void)0)

#endif  // AQUILA_RACE_INJECT

#endif  // AQUILA_SRC_UTIL_RACE_INJECTOR_H_
