// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// persistent structure: WAL records, SST blocks, the blobstore superblock
// and the Kreon superblock. Software slicing-by-8 implementation (the
// container may lack SSE4.2; correctness matters here, not throughput).
#ifndef AQUILA_SRC_UTIL_CRC32C_H_
#define AQUILA_SRC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace aquila {

// Extends `crc` (the running checksum of bytes seen so far, 0 initially)
// with `n` more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// Checksum of one contiguous buffer.
inline uint32_t Crc32c(const void* data, size_t n) { return Crc32cExtend(0, data, n); }

}  // namespace aquila

#endif  // AQUILA_SRC_UTIL_CRC32C_H_
