// Bit / alignment helpers shared by the memory and storage layers.
#ifndef AQUILA_SRC_UTIL_BITOPS_H_
#define AQUILA_SRC_UTIL_BITOPS_H_

#include <bit>
#include <cstdint>

namespace aquila {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kHugePage2M = 2ull << 20;
inline constexpr uint64_t kHugePage1G = 1ull << 30;

constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr uint64_t AlignDown(uint64_t v, uint64_t alignment) { return v & ~(alignment - 1); }

constexpr uint64_t AlignUp(uint64_t v, uint64_t alignment) {
  return AlignDown(v + alignment - 1, alignment);
}

constexpr bool IsAligned(uint64_t v, uint64_t alignment) { return (v & (alignment - 1)) == 0; }

constexpr uint64_t PageIndex(uint64_t addr) { return addr >> kPageShift; }
constexpr uint64_t PageBase(uint64_t addr) { return AlignDown(addr, kPageSize); }

constexpr uint64_t NextPowerOfTwo(uint64_t v) { return v <= 1 ? 1 : std::bit_ceil(v); }

// Mixer used by hash tables over page indices (splitmix64 finalizer).
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace aquila

#endif  // AQUILA_SRC_UTIL_BITOPS_H_
