#include "src/util/cpu.h"

#include <sched.h>

namespace aquila {

void SpinBackoff::Yield() { sched_yield(); }

}  // namespace aquila
