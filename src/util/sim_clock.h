// Simulated-time framework.
//
// The reproduction runs every software path for real (hash tables, trees,
// page tables, memcpy) but *time* is accounted on per-thread simulated
// clocks, for two reasons:
//   1. Privilege transitions (ring3 traps, vmexits, IPIs) cannot be executed
//      in an unprivileged container; their costs are charged from the
//      paper's measured constants (see src/vmx/cost_model.h).
//   2. The host has a single physical CPU; genuine 32-thread parallelism is
//      not observable. Per-thread clocks advance independently (cores run in
//      parallel in the model) and *shared* resources — the Linux baseline's
//      page-tree lock, device bandwidth — are modeled as FCFS servers whose
//      queueing delay is charged to the waiting thread. This reproduces the
//      contention collapse of the single-lock baseline deterministically.
//
// Every charge lands in a CostCategory so benches can print the paper's
// breakdown figures (Fig 7, Fig 8) directly from the accounting.
#ifndef AQUILA_SRC_UTIL_SIM_CLOCK_H_
#define AQUILA_SRC_UTIL_SIM_CLOCK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace aquila {

enum class CostCategory : int {
  kTrap = 0,        // protection-domain switch (ring3 -> ring0 or ring0 exception)
  kVmExit,          // vmexit/vmentry round trips, vmcalls, EPT faults
  kPageTable,       // page-table walk / install / remove
  kCacheMgmt,       // DRAM-cache lookup, allocation, eviction bookkeeping
  kDirtyTracking,   // dirty-tree insert/remove, writeback sorting
  kTlbShootdown,    // IPI send/receive + invalidation
  kDeviceIo,        // time on the storage device itself
  kMemcpy,          // DRAM<->pmem copies (incl. FPU save/restore)
  kSyscall,         // kernel entry/exit + kernel I/O path for explicit I/O
  kUserWork,        // application-level processing (KV get, BFS, ...)
  kIdle,            // queueing delay on shared resources (lock / device)
  kCategories,      // count sentinel
};

const char* CostCategoryName(CostCategory c);

// Per-category cycle totals. Copyable snapshot type.
struct CostBreakdown {
  std::array<uint64_t, static_cast<size_t>(CostCategory::kCategories)> cycles{};

  uint64_t Total() const;
  uint64_t operator[](CostCategory c) const { return cycles[static_cast<size_t>(c)]; }
  CostBreakdown& operator+=(const CostBreakdown& other);
  CostBreakdown operator-(const CostBreakdown& other) const;
  std::string ToString() const;
};

// A per-thread simulated clock. Not thread-safe; each worker owns one.
class SimClock {
 public:
  // Advances simulated time by `cycles`, attributed to `category`.
  void Charge(CostCategory category, uint64_t cycles) {
    now_ += cycles;
    breakdown_.cycles[static_cast<size_t>(category)] += cycles;
  }

  // Advances simulated time to at least `deadline` (used when a shared
  // resource releases this thread at a later simulated time). The wait is
  // charged to `category` (idle/queueing by default; device polling loops
  // charge kDeviceIo because the CPU busy-waits).
  void AdvanceTo(uint64_t deadline, CostCategory category = CostCategory::kIdle) {
    if (deadline > now_) {
      breakdown_.cycles[static_cast<size_t>(category)] += deadline - now_;
      now_ = deadline;
    }
  }

  // Synchronizes this clock forward to `t` WITHOUT charging anything: cores
  // of one machine share wall-clock time, so a freshly spawned worker thread
  // jumps to the coordinator's current simulated time before doing work (and
  // the coordinator jumps to the slowest worker's end after a join). Never
  // moves backwards.
  void JumpTo(uint64_t t) {
    if (t > now_) {
      now_ = t;
    }
  }

  uint64_t Now() const { return now_; }
  const CostBreakdown& Breakdown() const { return breakdown_; }

  void Reset() {
    now_ = 0;
    breakdown_ = CostBreakdown{};
  }

 private:
  uint64_t now_ = 0;
  CostBreakdown breakdown_;
};

// Returns the calling thread's simulated clock (one per OS thread; defined
// in src/vmx/vcpu.cc — it aliases the thread's vCPU clock).
SimClock& ThisThreadClock();

// A serialized server shared between threads: a lock's critical section, a
// device channel, the hypervisor. The server can perform at most one cycle
// of service per cycle of simulated time; a request arriving at simulated
// time `t` for `service_cycles` completes once the server has spare capacity
// after `t`, and the gap is queueing delay.
//
// Capacity is accounted in fixed windows of simulated time (a bucket ring),
// NOT as a single free-at timestamp. This makes the model insensitive to
// host scheduling order: worker threads of a simulation are time-sliced
// arbitrarily on however many host CPUs exist, so reservations arrive in
// wall-clock order, not simulated-time order — a thread that happens to run
// first must not book the server solid into the simulated future when the
// server was actually idle at the other threads' simulated arrival times.
// Each bucket packs (epoch, used) into one atomic, so accounting is exact
// under concurrency.
class SerializedResource {
 public:
  // `window_cycles` is the capacity-accounting granularity (and the largest
  // single-bucket grab); larger requests span consecutive windows.
  explicit SerializedResource(uint64_t window_cycles = 16384);

  // Reserves the resource and advances `clock` past the queueing delay and
  // the service time. `service_category` receives the service cycles; the
  // queueing delay lands in kIdle. Returns the simulated completion time.
  uint64_t Acquire(SimClock& clock, CostCategory service_category, uint64_t service_cycles);

  // Non-blocking reservation for asynchronous users (e.g. NVMe submission
  // queues): books `service_cycles` of server capacity for a request
  // arriving at `arrival` and returns its completion time without touching
  // any clock. The caller later advances its clock to the returned deadline
  // when it polls for the completion.
  uint64_t Reserve(uint64_t arrival, uint64_t service_cycles);

  // Total cycles threads spent queueing on this resource.
  uint64_t TotalQueueingCycles() const { return queueing_.load(std::memory_order_relaxed); }
  uint64_t TotalServiceCycles() const { return service_.load(std::memory_order_relaxed); }
  uint64_t Acquisitions() const { return acquisitions_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  static constexpr size_t kBuckets = 8192;
  static constexpr uint64_t kUsedBits = 24;
  static constexpr uint64_t kUsedMask = (1ull << kUsedBits) - 1;

  static uint64_t Pack(uint64_t epoch, uint64_t used) { return (epoch << kUsedBits) | used; }
  static uint64_t EpochOf(uint64_t packed) { return packed >> kUsedBits; }
  static uint64_t UsedOf(uint64_t packed) { return packed & kUsedMask; }

  uint64_t window_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // packed (epoch, used)
  std::atomic<uint64_t> queueing_{0};
  std::atomic<uint64_t> service_{0};
  std::atomic<uint64_t> acquisitions_{0};
};

// RAII cycle measurement: charges the real (rdtsc-measured) duration of a
// scope to a category on a SimClock. Used for software paths we execute for
// real (hash lookups, tree ops, memcpy).
class ScopedMeasure {
 public:
  ScopedMeasure(SimClock& clock, CostCategory category);
  ~ScopedMeasure();

  ScopedMeasure(const ScopedMeasure&) = delete;
  ScopedMeasure& operator=(const ScopedMeasure&) = delete;

 private:
  SimClock& clock_;
  CostCategory category_;
  uint64_t start_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_UTIL_SIM_CLOCK_H_
