#include "src/util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace aquila {

Histogram::Histogram() : buckets_(kBuckets) {}

// Values < 16 are exact buckets 0..15; above that, each power-of-two octave
// splits into 8 linear sub-buckets (<= ~6% relative error).
int Histogram::BucketFor(uint64_t value) {
  if (value < 16) {
    return static_cast<int>(value);
  }
  int exponent = 63 - std::countl_zero(value);  // >= 4
  int sub = static_cast<int>(value >> (exponent - 3)) & 7;
  int bucket = 16 + (exponent - 4) * 8 + sub;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

uint64_t Histogram::BucketMidpoint(int bucket) {
  if (bucket < 16) {
    return static_cast<uint64_t>(bucket);
  }
  int exponent = 4 + (bucket - 16) / 8;
  int sub = (bucket - 16) % 8;
  uint64_t base = (1ull << exponent) + (static_cast<uint64_t>(sub) << (exponent - 3));
  uint64_t width = 1ull << (exponent - 3);
  return base + width / 2;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev_min = min_.load(std::memory_order_relaxed);
  while (value < prev_min &&
         !min_.compare_exchange_weak(prev_min, value, std::memory_order_relaxed)) {
  }
  uint64_t prev_max = max_.load(std::memory_order_relaxed);
  while (value > prev_max &&
         !max_.compare_exchange_weak(prev_max, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; i++) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) {
      buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  uint64_t other_min = other.min_.load(std::memory_order_relaxed);
  uint64_t prev_min = min_.load(std::memory_order_relaxed);
  while (other_min < prev_min &&
         !min_.compare_exchange_weak(prev_min, other_min, std::memory_order_relaxed)) {
  }
  uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  uint64_t prev_max = max_.load(std::memory_order_relaxed);
  while (other_max > prev_max &&
         !max_.compare_exchange_weak(prev_max, other_max, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const { return count_.load(std::memory_order_relaxed); }

uint64_t Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  uint64_t n = Count();
  if (n == 0) {
    return 0;
  }
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) / static_cast<double>(n);
}

uint64_t Histogram::Min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

uint64_t Histogram::Percentile(double q) const {
  uint64_t n = Count();
  if (n == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) {
    return Max();
  }
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; i++) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Clamp into the observed range: a bucket midpoint can under-shoot
      // Min() (single sample at the top of its bucket) or over-shoot Max().
      return std::clamp(BucketMidpoint(i), Min(), Max());
    }
  }
  return Max();
}

std::string Histogram::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p99=%llu p99.9=%llu max=%llu",
                static_cast<unsigned long long>(Count()), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(Percentile(0.999)),
                static_cast<unsigned long long>(Max()));
  return buf;
}

}  // namespace aquila
