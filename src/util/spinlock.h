// Spinlocks and small synchronization helpers used throughout the runtime.
//
// The fault path cannot block on OS mutexes (the paper's handlers run in
// non-root ring 0 with interrupts re-enabled), so all hot-path structures use
// TTAS spinlocks or lock-free algorithms; std::mutex appears only on cold
// management paths.
#ifndef AQUILA_SRC_UTIL_SPINLOCK_H_
#define AQUILA_SRC_UTIL_SPINLOCK_H_

#include <atomic>

#include "src/util/cpu.h"

namespace aquila {

// Test-and-test-and-set spinlock with exponential-free pause backoff.
class alignas(kCacheLineSize) SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    SpinBackoff backoff;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        backoff.Pause();
      }
    }
  }

  bool TryLock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void Unlock() { locked_.store(false, std::memory_order_release); }

  // std::lock_guard compatibility.
  void lock() { Lock(); }
  void unlock() { Unlock(); }
  bool try_lock() { return TryLock(); }

 private:
  std::atomic<bool> locked_{false};
};

// Reader-writer spinlock (write-preferring is unnecessary at our scales; this
// is the simple reader-count scheme Linux used for the mmap_sem fast path).
class alignas(kCacheLineSize) RwSpinLock {
 public:
  void LockShared() {
    SpinBackoff backoff;
    while (true) {
      int32_t v = state_.load(std::memory_order_relaxed);
      if (v >= 0 && state_.compare_exchange_weak(v, v + 1, std::memory_order_acquire)) {
        return;
      }
      backoff.Pause();
    }
  }

  void UnlockShared() { state_.fetch_sub(1, std::memory_order_release); }

  void LockExclusive() {
    SpinBackoff backoff;
    while (true) {
      int32_t expected = 0;
      if (state_.compare_exchange_weak(expected, -1, std::memory_order_acquire)) {
        return;
      }
      backoff.Pause();
    }
  }

  void UnlockExclusive() { state_.store(0, std::memory_order_release); }

 private:
  // 0 = free, >0 = reader count, -1 = writer.
  std::atomic<int32_t> state_{0};
};

template <typename LockType>
class SharedLockGuard {
 public:
  explicit SharedLockGuard(LockType& lock) : lock_(lock) { lock_.LockShared(); }
  ~SharedLockGuard() { lock_.UnlockShared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  LockType& lock_;
};

template <typename LockType>
class ExclusiveLockGuard {
 public:
  explicit ExclusiveLockGuard(LockType& lock) : lock_(lock) { lock_.LockExclusive(); }
  ~ExclusiveLockGuard() { lock_.UnlockExclusive(); }
  ExclusiveLockGuard(const ExclusiveLockGuard&) = delete;
  ExclusiveLockGuard& operator=(const ExclusiveLockGuard&) = delete;

 private:
  LockType& lock_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_UTIL_SPINLOCK_H_
