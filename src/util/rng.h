// Deterministic random-number generation for workloads and simulators.
//
// All generators are seedable and allocation-free so multi-threaded
// benchmark runners can keep one generator per worker without contention.
// The Zipfian/ScrambledZipfian/Latest generators follow the YCSB reference
// implementation (Gray et al.'s rejection-free zipfian), which the paper's
// YCSB-C client also uses.
#ifndef AQUILA_SRC_UTIL_RNG_H_
#define AQUILA_SRC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace aquila {

// xorshift64* — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  // Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n ? Next() % n : 0; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53)); }

  // True with probability num/den.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  uint64_t state_;
};

// 64-bit finalizer used to scatter zipfian ranks over the key space.
inline uint64_t FnvHash64(uint64_t v) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; i++) {
    hash ^= (v >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// Classic YCSB zipfian generator over [0, n). theta defaults to YCSB's 0.99.
class ZipfianGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  explicit ZipfianGenerator(uint64_t n, double theta = kDefaultTheta,
                            uint64_t seed = 0x5eed5eed5eedull)
      : items_(n), theta_(theta), rng_(seed) {
    zeta_n_ = Zeta(n, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) / (1.0 - zeta2_ / zeta_n_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zeta_n_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    return static_cast<uint64_t>(static_cast<double>(items_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  uint64_t items() const { return items_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t items_;
  double theta_;
  Rng rng_;
  double zeta_n_;
  double zeta2_;
  double alpha_;
  double eta_;
};

// ScrambledZipfian: zipfian ranks hashed over the item space so hot keys are
// spread out, matching YCSB's request distribution for workloads A-D/F.
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t n, uint64_t seed = 0x5eed5eed5eedull)
      : items_(n), zipf_(n, ZipfianGenerator::kDefaultTheta, seed) {}

  uint64_t Next() { return FnvHash64(zipf_.Next()) % items_; }

 private:
  uint64_t items_;
  ZipfianGenerator zipf_;
};

// Latest distribution: skewed towards the most recently inserted items
// (used by YCSB workload D).
class LatestGenerator {
 public:
  explicit LatestGenerator(uint64_t n, uint64_t seed = 0x5eed5eed5eedull)
      : max_(n ? n : 1), zipf_(n ? n : 1, ZipfianGenerator::kDefaultTheta, seed) {}

  void AdvanceTo(uint64_t new_max) {
    if (new_max > max_) {
      max_ = new_max;
    }
  }

  uint64_t Next() {
    uint64_t off = zipf_.Next() % max_;
    return max_ - 1 - off;
  }

 private:
  uint64_t max_;
  ZipfianGenerator zipf_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_UTIL_RNG_H_
