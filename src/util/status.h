// Status / StatusOr error propagation for the storage and blob layers.
//
// The fault path itself uses enums and never allocates; Status is reserved
// for management operations (blob create/resize, mmap argument validation)
// where readable error messages matter more than cycle counts.
#ifndef AQUILA_SRC_UTIL_STATUS_H_
#define AQUILA_SRC_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/util/logging.h"

namespace aquila {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfSpace,
  kIoError,
  kFailedPrecondition,
  kUnimplemented,
  kDeadlineExceeded,  // op overran its watchdog deadline (hung device)
  kUnavailable,       // device circuit breaker open: failed fast, not attempted
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfSpace(std::string m) { return Status(StatusCode::kOutOfSpace, std::move(m)); }
  static Status IoError(std::string m) { return Status(StatusCode::kIoError, std::move(m)); }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return message_.empty() ? CodeName() : CodeName() + ": " + message_;
  }

 private:
  std::string CodeName() const {
    switch (code_) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kAlreadyExists:
        return "AlreadyExists";
      case StatusCode::kOutOfSpace:
        return "OutOfSpace";
      case StatusCode::kIoError:
        return "IoError";
      case StatusCode::kFailedPrecondition:
        return "FailedPrecondition";
      case StatusCode::kUnimplemented:
        return "Unimplemented";
      case StatusCode::kDeadlineExceeded:
        return "DeadlineExceeded";
      case StatusCode::kUnavailable:
        return "Unavailable";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    AQUILA_CHECK(!std::get<Status>(value_).ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  T& value() {
    AQUILA_CHECK(ok());
    return std::get<T>(value_);
  }
  const T& value() const {
    AQUILA_CHECK(ok());
    return std::get<T>(value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> value_;
};

}  // namespace aquila

#define AQUILA_RETURN_IF_ERROR(expr)                    \
  do {                                                  \
    ::aquila::Status aquila_return_if_error_ = (expr);  \
    if (!aquila_return_if_error_.ok()) {                \
      return aquila_return_if_error_;                   \
    }                                                   \
  } while (0)

#endif  // AQUILA_SRC_UTIL_STATUS_H_
