#include "src/util/sim_clock.h"

#include <cstdio>

#include <ctime>

#include "src/util/cpu.h"

namespace aquila {

const char* CostCategoryName(CostCategory c) {
  switch (c) {
    case CostCategory::kTrap:
      return "trap";
    case CostCategory::kVmExit:
      return "vmexit";
    case CostCategory::kPageTable:
      return "page_table";
    case CostCategory::kCacheMgmt:
      return "cache_mgmt";
    case CostCategory::kDirtyTracking:
      return "dirty_tracking";
    case CostCategory::kTlbShootdown:
      return "tlb_shootdown";
    case CostCategory::kDeviceIo:
      return "device_io";
    case CostCategory::kMemcpy:
      return "memcpy";
    case CostCategory::kSyscall:
      return "syscall";
    case CostCategory::kUserWork:
      return "user_work";
    case CostCategory::kIdle:
      return "idle";
    case CostCategory::kCategories:
      break;
  }
  return "unknown";
}

uint64_t CostBreakdown::Total() const {
  uint64_t total = 0;
  for (uint64_t c : cycles) {
    total += c;
  }
  return total;
}

CostBreakdown& CostBreakdown::operator+=(const CostBreakdown& other) {
  for (size_t i = 0; i < cycles.size(); i++) {
    cycles[i] += other.cycles[i];
  }
  return *this;
}

CostBreakdown CostBreakdown::operator-(const CostBreakdown& other) const {
  CostBreakdown result = *this;
  for (size_t i = 0; i < cycles.size(); i++) {
    result.cycles[i] -= other.cycles[i];
  }
  return result;
}

std::string CostBreakdown::ToString() const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < cycles.size(); i++) {
    if (cycles[i] == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%s%s=%llu", out.empty() ? "" : " ",
                  CostCategoryName(static_cast<CostCategory>(i)),
                  static_cast<unsigned long long>(cycles[i]));
    out += buf;
  }
  return out;
}

SerializedResource::SerializedResource(uint64_t window_cycles)
    : window_(window_cycles),
      buckets_(std::make_unique<std::atomic<uint64_t>[]>(kBuckets)) {
  for (size_t i = 0; i < kBuckets; i++) {
    buckets_[i].store(Pack(0, 0), std::memory_order_relaxed);
  }
}

uint64_t SerializedResource::Acquire(SimClock& clock, CostCategory service_category,
                                     uint64_t service_cycles) {
  uint64_t arrival = clock.Now();
  uint64_t done = Reserve(arrival, service_cycles);
  // done >= arrival + service (Reserve clamps); the surplus is queueing.
  clock.AdvanceTo(done - service_cycles);
  clock.Charge(service_category, service_cycles);
  return done;
}

uint64_t SerializedResource::Reserve(uint64_t arrival, uint64_t service_cycles) {
  uint64_t remaining = service_cycles;
  uint64_t last_portion_end = 0;
  uint64_t epoch = arrival / window_;
  while (remaining > 0) {
    std::atomic<uint64_t>& bucket = buckets_[epoch % kBuckets];
    uint64_t packed = bucket.load(std::memory_order_acquire);
    uint64_t cur_epoch = EpochOf(packed);
    uint64_t cur_used = UsedOf(packed);
    if (cur_epoch > epoch) {
      // The ring already wrapped past this window (another thread's clock is
      // far ahead); treat the window as fully consumed.
      epoch++;
      continue;
    }
    if (cur_epoch < epoch) {
      // Stale window: reset and take in one CAS.
      uint64_t take = remaining < window_ ? remaining : window_;
      if (!bucket.compare_exchange_weak(packed, Pack(epoch, take),
                                        std::memory_order_acq_rel)) {
        continue;  // raced; re-read this bucket
      }
      last_portion_end = epoch * window_ + take;
      remaining -= take;
      epoch++;
      continue;
    }
    uint64_t space = window_ - cur_used;
    if (space == 0) {
      epoch++;
      continue;
    }
    uint64_t take = remaining < space ? remaining : space;
    if (!bucket.compare_exchange_weak(packed, Pack(epoch, cur_used + take),
                                      std::memory_order_acq_rel)) {
      continue;
    }
    last_portion_end = epoch * window_ + cur_used + take;
    remaining -= take;
    epoch++;
  }
  // Completion can never precede the uncontended arrival + service.
  uint64_t completion =
      last_portion_end > arrival + service_cycles ? last_portion_end : arrival + service_cycles;
  queueing_.fetch_add(completion - arrival - service_cycles, std::memory_order_relaxed);
  service_.fetch_add(service_cycles, std::memory_order_relaxed);
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return completion;
}

void SerializedResource::Reset() {
  for (size_t i = 0; i < kBuckets; i++) {
    buckets_[i].store(Pack(0, 0), std::memory_order_relaxed);
  }
  queueing_.store(0, std::memory_order_relaxed);
  service_.store(0, std::memory_order_relaxed);
  acquisitions_.store(0, std::memory_order_relaxed);
}

namespace {

// Per-thread CPU time in nanoseconds: unlike rdtsc, it excludes time the
// thread spends descheduled, so measurements stay meaningful when the
// simulation runs many worker threads on few host CPUs.
uint64_t ThreadCpuNs() {
  struct timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

ScopedMeasure::ScopedMeasure(SimClock& clock, CostCategory category)
    : clock_(clock), category_(category), start_(ThreadCpuNs()) {}

ScopedMeasure::~ScopedMeasure() {
  uint64_t elapsed_ns = ThreadCpuNs() - start_;
  // ns -> cycles at the modeled 2.4 GHz.
  clock_.Charge(category_, elapsed_ns * 24 / 10);
}

}  // namespace aquila
