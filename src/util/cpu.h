// Low-level CPU utilities: cycle counters, pause hints, cache-line geometry,
// and the logical-core registry used by all per-core data structures.
//
// The reproduction substrate models an N-core machine on top of however many
// OS threads the host actually provides. Every thread that participates in
// the Aquila runtime is assigned a stable *logical core id*; per-core
// structures (freelists, dirty trees, TLBs) are indexed by that id, so the
// sharding behaviour of the paper's dual-socket testbed is preserved even on
// a single physical CPU.
#ifndef AQUILA_SRC_UTIL_CPU_H_
#define AQUILA_SRC_UTIL_CPU_H_

#include <atomic>
#include <cstdint>

#if defined(__x86_64__)
#include <immintrin.h>
#include <x86intrin.h>
#endif

namespace aquila {

inline constexpr int kCacheLineSize = 64;

// Read the time-stamp counter. On non-x86 hosts falls back to a steady
// nanosecond clock scaled to a nominal 2.4 GHz (the paper's testbed clock).
inline uint64_t ReadCycles() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  uint64_t ns = static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + ts.tv_nsec;
  return ns * 24 / 10;
#endif
}

// Serializing cycle read for begin/end measurement pairs.
inline uint64_t ReadCyclesFenced() {
#if defined(__x86_64__)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return ReadCycles();
#endif
}

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Spin-wait helper: pause a few rounds, then yield the host CPU. Simulations
// oversubscribe host cores heavily (32 workers on 1 CPU); yielding lets the
// thread we are waiting on actually run instead of burning a quantum.
class SpinBackoff {
 public:
  void Pause() {
    if (++spins_ < 64) {
      CpuRelax();
    } else {
      Yield();
      spins_ = 0;
    }
  }

 private:
  static void Yield();
  int spins_ = 0;
};

// Logical-core registry. Threads call RegisterThisThread() once (done by
// Aquila::EnterThread) and CurrentCore() thereafter. Ids are dense, starting
// at 0, and never reused within a process lifetime modulo kMaxCores wrap.
class CoreRegistry {
 public:
  static constexpr int kMaxCores = 64;

  // Assigns (or returns the existing) logical core id for the calling thread.
  static int RegisterThisThread() {
    if (tls_core_id_ < 0) {
      tls_core_id_ = next_id_.fetch_add(1, std::memory_order_relaxed) % kMaxCores;
    }
    return tls_core_id_;
  }

  // Logical core id of the calling thread; auto-registers on first use so
  // helper threads and tests never observe a negative id.
  static int CurrentCore() {
    if (tls_core_id_ < 0) {
      return RegisterThisThread();
    }
    return tls_core_id_;
  }

  // Number of logical cores registered so far (upper bound kMaxCores).
  static int RegisteredCores() {
    int n = next_id_.load(std::memory_order_relaxed);
    return n < kMaxCores ? n : kMaxCores;
  }

  // Test-only: forces the calling thread's logical core id.
  static void SetCurrentCoreForTest(int core) { tls_core_id_ = core; }

 private:
  static inline std::atomic<int> next_id_{0};
  static inline thread_local int tls_core_id_ = -1;
};

// NUMA topology model: logical cores are split round-robin across
// kNumaNodes nodes, mirroring the paper's dual-socket layout.
struct NumaTopology {
  static constexpr int kNumaNodes = 2;
  static int NodeOfCore(int core) { return core % kNumaNodes; }
};

}  // namespace aquila

#endif  // AQUILA_SRC_UTIL_CPU_H_
