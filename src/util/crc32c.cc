#include "src/util/crc32c.h"

namespace aquila {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

struct Tables {
  uint32_t t[8][256];

  Tables() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int k = 0; k < 8; k++) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      for (int j = 1; j < 8; j++) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xff];
      }
    }
  }
};

const Tables& GetTables() {
  static Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tab = GetTables();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    n--;
  }
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    word ^= crc;
    crc = tab.t[7][word & 0xff] ^ tab.t[6][(word >> 8) & 0xff] ^
          tab.t[5][(word >> 16) & 0xff] ^ tab.t[4][(word >> 24) & 0xff] ^
          tab.t[3][(word >> 32) & 0xff] ^ tab.t[2][(word >> 40) & 0xff] ^
          tab.t[1][(word >> 48) & 0xff] ^ tab.t[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tab.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    n--;
  }
  return ~crc;
}

}  // namespace aquila
