// Minimal logging / assertion macros.
//
// AQUILA_CHECK is always on (internal invariants of the runtime must never be
// compiled out); AQUILA_DCHECK compiles away in NDEBUG builds like assert.
#ifndef AQUILA_SRC_UTIL_LOGGING_H_
#define AQUILA_SRC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace aquila {

[[noreturn]] inline void CheckFailure(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "AQUILA_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace aquila

#define AQUILA_CHECK(expr)                               \
  do {                                                   \
    if (!(expr)) {                                       \
      ::aquila::CheckFailure(__FILE__, __LINE__, #expr); \
    }                                                    \
  } while (0)

#ifdef NDEBUG
#define AQUILA_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define AQUILA_DCHECK(expr) AQUILA_CHECK(expr)
#endif

#endif  // AQUILA_SRC_UTIL_LOGGING_H_
