// Logging and assertion macros.
//
// AQUILA_CHECK is always on (internal invariants of the runtime must never be
// compiled out); AQUILA_DCHECK compiles away in NDEBUG builds like assert.
//
// AQUILA_LOG(level, fmt, ...) is leveled printf-style logging to stderr:
//
//   AQUILA_LOG(INFO, "wrote %zu-byte trace to %s", n, path);
//
// Levels are DEBUG < INFO < WARN < ERROR. The runtime threshold defaults to
// INFO and is read once from the AQUILA_LOG_LEVEL environment variable
// (DEBUG/INFO/WARN/ERROR/OFF, case-sensitive, or 0-4); tests can override it
// with SetGlobalLogLevel(). Messages below the threshold cost one branch.
#ifndef AQUILA_SRC_UTIL_LOGGING_H_
#define AQUILA_SRC_UTIL_LOGGING_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aquila {

[[noreturn]] inline void CheckFailure(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "AQUILA_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

namespace internal {

inline LogLevel ParseLogLevel(const char* s) {
  if (s == nullptr || *s == '\0') {
    return LogLevel::kInfo;
  }
  if (std::strcmp(s, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "WARN") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "ERROR") == 0) return LogLevel::kError;
  if (std::strcmp(s, "OFF") == 0) return LogLevel::kOff;
  if (s[0] >= '0' && s[0] <= '4' && s[1] == '\0') {
    return static_cast<LogLevel>(s[0] - '0');
  }
  return LogLevel::kInfo;
}

inline LogLevel& GlobalLogLevelSlot() {
  static LogLevel level = ParseLogLevel(std::getenv("AQUILA_LOG_LEVEL"));
  return level;
}

inline char LogLevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return 'D';
    case LogLevel::kInfo: return 'I';
    case LogLevel::kWarn: return 'W';
    default: return 'E';
  }
}

inline void LogMessage(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

inline void LogMessage(LogLevel level, const char* file, int line, const char* fmt, ...) {
  // Basename only: full paths bury the message.
  const char* base = std::strrchr(file, '/');
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%c %s:%d] %s\n", LogLevelTag(level),
               base != nullptr ? base + 1 : file, line, buf);
}

// Tokens the AQUILA_LOG macro pastes (AQUILA_LOG(INFO, ...) -> kLevel_INFO).
inline constexpr LogLevel kLevel_DEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLevel_INFO = LogLevel::kInfo;
inline constexpr LogLevel kLevel_WARN = LogLevel::kWarn;
inline constexpr LogLevel kLevel_ERROR = LogLevel::kError;

}  // namespace internal

inline LogLevel GlobalLogLevel() { return internal::GlobalLogLevelSlot(); }
inline void SetGlobalLogLevel(LogLevel level) { internal::GlobalLogLevelSlot() = level; }

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(GlobalLogLevel());
}

}  // namespace aquila

#define AQUILA_LOG(level, ...)                                                         \
  do {                                                                                 \
    if (::aquila::LogEnabled(::aquila::internal::kLevel_##level)) {                    \
      ::aquila::internal::LogMessage(::aquila::internal::kLevel_##level, __FILE__,     \
                                     __LINE__, __VA_ARGS__);                           \
    }                                                                                  \
  } while (0)

#define AQUILA_CHECK(expr)                               \
  do {                                                   \
    if (!(expr)) {                                       \
      ::aquila::CheckFailure(__FILE__, __LINE__, #expr); \
    }                                                    \
  } while (0)

#ifdef NDEBUG
#define AQUILA_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define AQUILA_DCHECK(expr) AQUILA_CHECK(expr)
#endif

#endif  // AQUILA_SRC_UTIL_LOGGING_H_
