// Per-core dirty-page trees (§3.2 "Dirty page write-back").
//
// Dirty pages live in a structure separate from the clean-page hash so that
// writeback and msync never scan the cache: per-core red-black trees keyed
// by device offset, each behind its own short spinlock. Multiple sorted
// trees trade a little global order (writeback emits per-tree sorted runs,
// which is what the paper merges into large I/Os) for the elimination of a
// single contended dirty-list lock — the exact contention FastMap found in
// Linux.
#ifndef AQUILA_SRC_CACHE_DIRTY_TREE_H_
#define AQUILA_SRC_CACHE_DIRTY_TREE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/cache/rbtree.h"
#include "src/util/cpu.h"
#include "src/util/spinlock.h"

namespace aquila {

// The cache frame embeds one of these; DirtyTreeSet is agnostic to the
// containing type beyond the sort key and node.
//
// owner_core is the item's routing word: it names the per-core lock that
// guards `node` and is itself written only while holding that lock. Readers
// outside any lock (Remove's first step) use it as a hint and re-validate
// after locking — hence atomic, not guarded.
struct DirtyItem {
  RbNode node;            // guarded-by: cores_[owner_core].lock in DirtyTreeSet
  uint64_t sort_key = 0;  // guarded-by: frame owner (set before insert, stable while linked)
  std::atomic<int16_t> owner_core{-1};
};

class DirtyTreeSet {
 public:
  DirtyTreeSet() = default;

  // Inserts `item` into `core`'s tree. The caller guarantees the item is not
  // currently in any tree (dirty-bit 0 -> 1 transition under the page's VMA
  // entry lock).
  void Insert(int core, DirtyItem* item);

  // Removes `item` from whichever tree holds it. No-op if not linked.
  void Remove(DirtyItem* item);

  // Claims up to `max` dirty items for writeback, in per-core sorted runs
  // starting at `start_core` (the evicting core drains its own tree first).
  // Claimed items are unlinked; returns the count.
  size_t CollectBatch(int start_core, size_t max, DirtyItem** out);

  // Claims every item with sort_key in [lo, hi] (msync over one mapping).
  void CollectRange(uint64_t lo, uint64_t hi, std::vector<DirtyItem*>* out);

  size_t TotalDirty() const;

 private:
  struct KeyOf {
    uint64_t operator()(const RbNode* node) const {
      return reinterpret_cast<const DirtyItem*>(
                 reinterpret_cast<const char*>(node) - offsetof(DirtyItem, node))
          ->sort_key;
    }
  };

  struct alignas(kCacheLineSize) PerCore {
    mutable SpinLock lock;
    RbTree<KeyOf> tree;
  };

  static DirtyItem* ItemOf(RbNode* node) {
    return reinterpret_cast<DirtyItem*>(reinterpret_cast<char*>(node) -
                                        offsetof(DirtyItem, node));
  }

  std::array<PerCore, CoreRegistry::kMaxCores> cores_{};
};

}  // namespace aquila

#endif  // AQUILA_SRC_CACHE_DIRTY_TREE_H_
