// Intrusive red-black tree.
//
// Used for the per-core dirty-page trees (§3.2): dirty pages must be kept
// sorted by device offset so evictions and msync can merge them into large
// sequential writebacks, and the paper uses one tree per core to avoid a
// single contended lock. Nodes are embedded in the owning object (cache
// frames), so insert/remove never allocate — a requirement for running
// inside the fault handler.
//
// This is a textbook left-leaning-free CLRS red-black tree with parent
// pointers; not thread-safe (each per-core tree carries its own lock in
// DirtyTreeSet).
#ifndef AQUILA_SRC_CACHE_RBTREE_H_
#define AQUILA_SRC_CACHE_RBTREE_H_

#include <cstdint>

#include "src/util/logging.h"

namespace aquila {

struct RbNode {
  RbNode* parent = nullptr;
  RbNode* left = nullptr;
  RbNode* right = nullptr;
  bool red = false;
  bool linked = false;  // membership flag, guards double-insert/remove
};

// Comparator: strict weak ordering over nodes, provided per-tree as a
// function of the containing object. KeyOf maps node -> uint64 sort key.
template <typename KeyOfNode>
class RbTree {
 public:
  RbTree() = default;
  explicit RbTree(KeyOfNode key_of) : key_of_(key_of) {}

  bool empty() const { return root_ == nullptr; }
  size_t size() const { return size_; }

  void Insert(RbNode* node) {
    AQUILA_DCHECK(!node->linked);
    node->parent = node->left = node->right = nullptr;
    node->red = true;
    node->linked = true;
    size_++;

    RbNode** link = &root_;
    RbNode* parent = nullptr;
    uint64_t key = key_of_(node);
    while (*link != nullptr) {
      parent = *link;
      link = key < key_of_(parent) ? &parent->left : &parent->right;
    }
    node->parent = parent;
    *link = node;
    FixupInsert(node);
  }

  void Remove(RbNode* node) {
    AQUILA_DCHECK(node->linked);
    node->linked = false;
    size_--;

    RbNode* child;
    RbNode* parent;
    bool red;
    if (node->left == nullptr) {
      child = node->right;
      parent = node->parent;
      red = node->red;
      Transplant(node, child);
    } else if (node->right == nullptr) {
      child = node->left;
      parent = node->parent;
      red = node->red;
      Transplant(node, child);
    } else {
      RbNode* successor = Minimum(node->right);
      red = successor->red;
      child = successor->right;
      if (successor->parent == node) {
        parent = successor;
      } else {
        parent = successor->parent;
        Transplant(successor, successor->right);
        successor->right = node->right;
        successor->right->parent = successor;
      }
      Transplant(node, successor);
      successor->left = node->left;
      successor->left->parent = successor;
      successor->red = node->red;
    }
    if (!red) {
      FixupRemove(child, parent);
    }
    node->parent = node->left = node->right = nullptr;
  }

  // Smallest node, or null.
  RbNode* First() const { return root_ == nullptr ? nullptr : Minimum(root_); }

  // In-order successor.
  static RbNode* Next(RbNode* node) {
    if (node->right != nullptr) {
      return Minimum(node->right);
    }
    RbNode* parent = node->parent;
    while (parent != nullptr && node == parent->right) {
      node = parent;
      parent = parent->parent;
    }
    return parent;
  }

  // First node with key >= `key`, or null.
  RbNode* LowerBound(uint64_t key) const {
    RbNode* node = root_;
    RbNode* best = nullptr;
    while (node != nullptr) {
      if (key_of_(node) >= key) {
        best = node;
        node = node->left;
      } else {
        node = node->right;
      }
    }
    return best;
  }

  // Validates RB invariants (test hook). Returns black height, -1 on error.
  int Validate() const { return ValidateFrom(root_, nullptr); }

 private:
  static RbNode* Minimum(RbNode* node) {
    while (node->left != nullptr) {
      node = node->left;
    }
    return node;
  }

  void RotateLeft(RbNode* node) {
    RbNode* r = node->right;
    node->right = r->left;
    if (r->left != nullptr) {
      r->left->parent = node;
    }
    r->parent = node->parent;
    if (node->parent == nullptr) {
      root_ = r;
    } else if (node == node->parent->left) {
      node->parent->left = r;
    } else {
      node->parent->right = r;
    }
    r->left = node;
    node->parent = r;
  }

  void RotateRight(RbNode* node) {
    RbNode* l = node->left;
    node->left = l->right;
    if (l->right != nullptr) {
      l->right->parent = node;
    }
    l->parent = node->parent;
    if (node->parent == nullptr) {
      root_ = l;
    } else if (node == node->parent->right) {
      node->parent->right = l;
    } else {
      node->parent->left = l;
    }
    l->right = node;
    node->parent = l;
  }

  void Transplant(RbNode* out, RbNode* in) {
    if (out->parent == nullptr) {
      root_ = in;
    } else if (out == out->parent->left) {
      out->parent->left = in;
    } else {
      out->parent->right = in;
    }
    if (in != nullptr) {
      in->parent = out->parent;
    }
  }

  void FixupInsert(RbNode* node) {
    while (node->parent != nullptr && node->parent->red) {
      RbNode* parent = node->parent;
      RbNode* grand = parent->parent;
      if (parent == grand->left) {
        RbNode* uncle = grand->right;
        if (uncle != nullptr && uncle->red) {
          parent->red = uncle->red = false;
          grand->red = true;
          node = grand;
        } else {
          if (node == parent->right) {
            node = parent;
            RotateLeft(node);
            parent = node->parent;
          }
          parent->red = false;
          grand->red = true;
          RotateRight(grand);
        }
      } else {
        RbNode* uncle = grand->left;
        if (uncle != nullptr && uncle->red) {
          parent->red = uncle->red = false;
          grand->red = true;
          node = grand;
        } else {
          if (node == parent->left) {
            node = parent;
            RotateRight(node);
            parent = node->parent;
          }
          parent->red = false;
          grand->red = true;
          RotateLeft(grand);
        }
      }
    }
    root_->red = false;
  }

  void FixupRemove(RbNode* node, RbNode* parent) {
    while (node != root_ && (node == nullptr || !node->red)) {
      if (node == parent->left) {
        RbNode* sibling = parent->right;
        if (sibling->red) {
          sibling->red = false;
          parent->red = true;
          RotateLeft(parent);
          sibling = parent->right;
        }
        if ((sibling->left == nullptr || !sibling->left->red) &&
            (sibling->right == nullptr || !sibling->right->red)) {
          sibling->red = true;
          node = parent;
          parent = node->parent;
        } else {
          if (sibling->right == nullptr || !sibling->right->red) {
            if (sibling->left != nullptr) {
              sibling->left->red = false;
            }
            sibling->red = true;
            RotateRight(sibling);
            sibling = parent->right;
          }
          sibling->red = parent->red;
          parent->red = false;
          if (sibling->right != nullptr) {
            sibling->right->red = false;
          }
          RotateLeft(parent);
          node = root_;
          break;
        }
      } else {
        RbNode* sibling = parent->left;
        if (sibling->red) {
          sibling->red = false;
          parent->red = true;
          RotateRight(parent);
          sibling = parent->left;
        }
        if ((sibling->left == nullptr || !sibling->left->red) &&
            (sibling->right == nullptr || !sibling->right->red)) {
          sibling->red = true;
          node = parent;
          parent = node->parent;
        } else {
          if (sibling->left == nullptr || !sibling->left->red) {
            if (sibling->right != nullptr) {
              sibling->right->red = false;
            }
            sibling->red = true;
            RotateLeft(sibling);
            sibling = parent->left;
          }
          sibling->red = parent->red;
          parent->red = false;
          if (sibling->left != nullptr) {
            sibling->left->red = false;
          }
          RotateRight(parent);
          node = root_;
          break;
        }
      }
    }
    if (node != nullptr) {
      node->red = false;
    }
  }

  int ValidateFrom(const RbNode* node, const RbNode* parent) const {
    if (node == nullptr) {
      return 1;
    }
    if (node->parent != parent) {
      return -1;
    }
    if (node->red && ((node->left != nullptr && node->left->red) ||
                      (node->right != nullptr && node->right->red))) {
      return -1;
    }
    if (node->left != nullptr && key_of_(node->left) > key_of_(node)) {
      return -1;
    }
    if (node->right != nullptr && key_of_(node->right) < key_of_(node)) {
      return -1;
    }
    int lh = ValidateFrom(node->left, node);
    int rh = ValidateFrom(node->right, node);
    if (lh < 0 || rh < 0 || lh != rh) {
      return -1;
    }
    return lh + (node->red ? 0 : 1);
  }

  RbNode* root_ = nullptr;
  size_t size_ = 0;
  KeyOfNode key_of_{};
};

}  // namespace aquila

#endif  // AQUILA_SRC_CACHE_RBTREE_H_
