#include "src/cache/page_cache.h"

#include "src/util/logging.h"
#include "src/util/race_injector.h"

namespace aquila {

PageCache::PageCache(Hypervisor* hypervisor, int guest, Vcpu& vcpu, const Options& options)
    : hypervisor_(hypervisor),
      guest_(guest),
      options_(options),
      frames_(std::make_unique<Frame[]>(options.max_pages)),
      hash_(options.max_pages * 2),
      freelist_(static_cast<uint32_t>(options.max_pages), options.freelist) {
  AQUILA_CHECK(options_.capacity_pages <= options_.max_pages);
  Status status = Grow(vcpu, options_.capacity_pages);
  AQUILA_CHECK(status.ok());

  metrics_.AddCounter("aquila.cache.lookups", stats_.lookups);
  metrics_.AddCounter("aquila.cache.lookup_hits", stats_.lookup_hits);
  metrics_.AddCounter("aquila.cache.evictions", stats_.evictions);
  metrics_.AddCounter("aquila.cache.clock_sweeps", stats_.clock_sweeps);
  metrics_.AddGauge("aquila.cache.capacity_pages", [this] { return capacity_pages(); });
  metrics_.AddCounter("aquila.freelist.core_hits", freelist_.stats().core_hits);
  metrics_.AddCounter("aquila.freelist.numa_hits", freelist_.stats().numa_hits);
  metrics_.AddCounter("aquila.freelist.remote_hits", freelist_.stats().remote_hits);
  metrics_.AddCounter("aquila.freelist.batch_moves", freelist_.stats().batch_moves);
  metrics_.AddGauge("aquila.freelist.free_frames", [this] { return freelist_.ApproxFree(); });
}

bool PageCache::Lookup(uint64_t key, FrameId* frame) {
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);
  uint64_t value;
  if (!hash_.Lookup(key, &value)) {
    return false;
  }
  stats_.lookup_hits.fetch_add(1, std::memory_order_relaxed);
  *frame = static_cast<FrameId>(value);
  return true;
}

bool PageCache::InsertMapping(uint64_t key, FrameId frame) { return hash_.Insert(key, frame); }

bool PageCache::RemoveMapping(uint64_t key) { return hash_.Remove(key); }

uint8_t* PageCache::FrameData(Vcpu& vcpu, FrameId id) {
  Frame& f = frames_[id];
  uint8_t* data = f.data.load(std::memory_order_acquire);
  if (data == nullptr) {
    // Racing resolvers are fine: ResolveGpa is idempotent (the EPT mapping is
    // established under the hypervisor's locks), so both compute the same
    // pointer and the second store is a no-op.
    data = hypervisor_->ResolveGpa(vcpu, guest_, f.gpa);
    f.data.store(data, std::memory_order_release);
  }
  return data;
}

FrameId PageCache::AllocFrame(Vcpu& vcpu, int core) {
  return AllocFrame(vcpu, core, nullptr);
}

FrameId PageCache::AllocFrame(Vcpu& vcpu, int core, ReuseStamp* stamp_out) {
  ReuseStamp stamp;
  FrameId id = freelist_.Alloc(core, &stamp);
  if (id == kInvalidFrame) {
    return kInvalidFrame;
  }
  Frame& f = frames_[id];
  AQUILA_DCHECK(f.state.load(std::memory_order_relaxed) == FrameState::kFree);
  // FreeFrame's routing-state resets are sequenced before the freelist Push
  // CAS (release) and this read is sequenced after the Pop CAS (acquire), so
  // a previous incarnation's mask/epoch can never leak into the new one.
  // This ordering is load-bearing for kReuseElide: the reuse stamp rides the
  // same edge.
  AQUILA_DCHECK(f.cpu_mask.load(std::memory_order_relaxed) == 0);
  AQUILA_DCHECK(f.tlb_epoch.load(std::memory_order_relaxed) == 0);
  // A deferred stamp must reach a resolver; a caller that discards it would
  // leave the parked shootdown dangling in the TLB's deferred table.
  AQUILA_DCHECK(stamp_out != nullptr || !stamp.deferred);
  if (stamp_out != nullptr) {
    *stamp_out = stamp;
  }
  AQUILA_RACE_POINT("page_cache.alloc.pre_filling");
  f.state.store(FrameState::kFilling, std::memory_order_relaxed);
  f.referenced.store(1, std::memory_order_relaxed);
  return id;
}

void PageCache::FreeFrame(int core, FrameId id) { FreeFrame(core, id, ReuseStamp{}); }

void PageCache::FreeFrame(int core, FrameId id, const ReuseStamp& stamp) {
  Frame& f = frames_[id];
  f.key.store(0, std::memory_order_relaxed);
  f.vaddr.store(0, std::memory_order_relaxed);
  f.dirty.store(0, std::memory_order_relaxed);
  // Recycle resets the shootdown-routing state: the next identity this frame
  // takes starts with no mapped cores and no insert epoch (DESIGN.md §10).
  // The stores may be relaxed ONLY because the freelist Push below is a
  // release edge and AllocFrame reads after the matching acquire Pop: the
  // resets (and the reuse stamp, which rides the same edge) happen-before
  // the next allocation. A concurrently allocating core can therefore never
  // observe this incarnation's mask/epoch — AllocFrame DCHECKs it, and the
  // race points below let the stress harness stretch the window.
  f.cpu_mask.store(0, std::memory_order_relaxed);
  f.tlb_epoch.store(0, std::memory_order_relaxed);
  AQUILA_RACE_POINT("page_cache.free.pre_publish");
  f.state.store(FrameState::kFree, std::memory_order_release);
  AQUILA_RACE_POINT("page_cache.free.pre_freelist");
  freelist_.Free(core, id, stamp);
}

void PageCache::FreeFrames(int core, const FrameId* ids, uint32_t count) {
  // Same reset-then-publish contract as FreeFrame; the batch PushChain is
  // the release edge that publishes every reset at once.
  for (uint32_t i = 0; i < count; i++) {
    Frame& f = frames_[ids[i]];
    f.key.store(0, std::memory_order_relaxed);
    f.vaddr.store(0, std::memory_order_relaxed);
    f.dirty.store(0, std::memory_order_relaxed);
    f.cpu_mask.store(0, std::memory_order_relaxed);
    f.tlb_epoch.store(0, std::memory_order_relaxed);
    f.state.store(FrameState::kFree, std::memory_order_release);
  }
  freelist_.FreeBatch(core, ids, count);
}

size_t PageCache::SelectVictims(size_t max, FrameId* out) {
  stats_.clock_sweeps.fetch_add(1, std::memory_order_relaxed);
  uint64_t total = total_frames_.load(std::memory_order_acquire);
  if (total == 0) {
    return 0;
  }
  size_t n = 0;
  // Bound the sweep: with every frame referenced, two full rotations clear
  // all bits and then claim.
  uint64_t limit = total * 2 + max;
  for (uint64_t step = 0; step < limit && n < max; step++) {
    uint64_t slot = clock_hand_.fetch_add(1, std::memory_order_relaxed) % total;
    Frame& f = frames_[slot];
    FrameState state = f.state.load(std::memory_order_acquire);
    if (state != FrameState::kResident) {
      continue;
    }
    if (f.referenced.exchange(0, std::memory_order_relaxed) != 0) {
      continue;  // second chance
    }
    AQUILA_RACE_POINT("page_cache.sweep.pre_claim");
    FrameState expected = FrameState::kResident;
    if (f.state.compare_exchange_strong(expected, FrameState::kEvicting,
                                        std::memory_order_acq_rel)) {
      out[n++] = static_cast<FrameId>(slot);
    }
  }
  stats_.evictions.fetch_add(n, std::memory_order_relaxed);
  return n;
}

void PageCache::MarkDirty(int core, FrameId id, uint64_t sort_key) {
  Frame& f = frames_[id];
  // The dirty flag's 0 -> 1 edge owns the tree insertion. Losing the race
  // (e.g. msync's restore path vs. a write-upgrade fault that re-dirtied the
  // page right after the shootdown) means the item is already linked with
  // the same sort key; inserting again would corrupt the RB tree.
  if (f.dirty.exchange(1, std::memory_order_acq_rel) != 0) {
    return;
  }
  f.dirty_item.sort_key = sort_key;
  AQUILA_RACE_POINT("page_cache.mark_dirty.pre_insert");
  dirty_.Insert(core, &f.dirty_item);
}

void PageCache::ClearDirty(FrameId id) {
  Frame& f = frames_[id];
  dirty_.Remove(&f.dirty_item);
  f.dirty.store(0, std::memory_order_relaxed);
}

size_t PageCache::CollectDirtyBatch(int start_core, size_t max, FrameId* out) {
  std::vector<DirtyItem*> items(max);
  size_t n = dirty_.CollectBatch(start_core, max, items.data());
  for (size_t i = 0; i < n; i++) {
    Frame* f = reinterpret_cast<Frame*>(reinterpret_cast<char*>(items[i]) -
                                        offsetof(Frame, dirty_item));
    out[i] = IndexOf(f);
  }
  return n;
}

void PageCache::CollectDirtyRange(uint64_t lo, uint64_t hi, std::vector<FrameId>* out) {
  std::vector<DirtyItem*> items;
  dirty_.CollectRange(lo, hi, &items);
  out->reserve(out->size() + items.size());
  for (DirtyItem* item : items) {
    Frame* f = reinterpret_cast<Frame*>(reinterpret_cast<char*>(item) -
                                        offsetof(Frame, dirty_item));
    out->push_back(IndexOf(f));
  }
}

Status PageCache::Grow(Vcpu& vcpu, uint64_t add_pages) {
  if (add_pages == 0) {
    return Status::Ok();
  }
  std::lock_guard<SpinLock> guard(grow_lock_);
  uint64_t current = total_frames_.load(std::memory_order_relaxed);
  if (current + add_pages > options_.max_pages) {
    return Status::OutOfSpace("cache growth beyond max_pages");
  }
  StatusOr<uint64_t> gpa = hypervisor_->VmcallGrantGpaRange(vcpu, guest_, add_pages * kPageSize);
  if (!gpa.ok()) {
    return gpa.status();
  }
  auto range = std::make_unique<GpaRange>();
  range->base_gpa = *gpa;
  range->first_frame = static_cast<FrameId>(current);
  range->frame_count = static_cast<uint32_t>(add_pages);
  // gpa is written here, before AddFrames' release publication hands the
  // frames to other cores, and never again — hence plain (see Frame).
  for (uint64_t i = 0; i < add_pages; i++) {
    Frame& f = frames_[current + i];
    f.gpa = *gpa + i * kPageSize;
    f.data.store(nullptr, std::memory_order_relaxed);
    f.state.store(FrameState::kFree, std::memory_order_relaxed);
  }
  ranges_.push_back(std::move(range));
  total_frames_.store(current + add_pages, std::memory_order_release);
  // The GPA page of the first frame anchors run carving: runs are aligned in
  // GPA space, so each one's 2 MB of backing is naturally aligned and falls
  // inside a single EPT chunk mapping (grants are chunk-aligned).
  freelist_.AddFrames(static_cast<FrameId>(current), static_cast<uint32_t>(add_pages),
                      *gpa >> kPageShift);
  capacity_pages_.fetch_add(add_pages, std::memory_order_relaxed);
  return Status::Ok();
}

FrameId PageCache::AllocRun(int core) {
  FrameId first = freelist_.AllocRun(core);
  if (first == kInvalidFrame) {
    return kInvalidFrame;
  }
  for (uint32_t i = 0; i < kRunFrames; i++) {
    Frame& f = frames_[first + i];
    AQUILA_DCHECK(f.state.load(std::memory_order_relaxed) == FrameState::kFree);
    // Same contract as AllocFrame: the run queue's Pop acquire pairs with the
    // release that published the frames, so the previous incarnations'
    // routing-state resets are visible here. Run frames carry no reuse
    // stamps — the promotion path resolves per-page deferrals itself before
    // any translation goes live.
    AQUILA_DCHECK(f.cpu_mask.load(std::memory_order_relaxed) == 0);
    AQUILA_DCHECK(f.tlb_epoch.load(std::memory_order_relaxed) == 0);
    f.state.store(FrameState::kFilling, std::memory_order_relaxed);
    f.referenced.store(1, std::memory_order_relaxed);
  }
  return first;
}

void PageCache::FreeRun(int core, FrameId first) {
  for (uint32_t i = 0; i < kRunFrames; i++) {
    Frame& f = frames_[first + i];
    f.key.store(0, std::memory_order_relaxed);
    f.vaddr.store(0, std::memory_order_relaxed);
    f.dirty.store(0, std::memory_order_relaxed);
    f.cpu_mask.store(0, std::memory_order_relaxed);
    f.tlb_epoch.store(0, std::memory_order_relaxed);
    f.state.store(FrameState::kFree, std::memory_order_release);
  }
  freelist_.FreeRun(core, first);
}

StatusOr<uint64_t> PageCache::Shrink(Vcpu& vcpu, uint64_t remove_pages,
                                     std::vector<uint64_t>* deferred_vpns) {
  std::lock_guard<SpinLock> guard(grow_lock_);
  uint64_t removed = 0;
  int core = CoreRegistry::CurrentCore();
  while (removed < remove_pages) {
    ReuseStamp stamp;
    FrameId id = freelist_.Alloc(core, &stamp);
    if (id == kInvalidFrame) {
      break;  // no more free frames; caller may evict and retry
    }
    if (stamp.deferred) {
      // The frame leaves circulation, so its parked shootdown can never be
      // elided again — surface the vpn for the caller to execute.
      AQUILA_DCHECK(deferred_vpns != nullptr);
      if (deferred_vpns != nullptr) {
        deferred_vpns->push_back(stamp.vpn);
      }
    }
    Frame& f = frames_[id];
    f.state.store(FrameState::kOffline, std::memory_order_release);
    removed++;
    // Find the owning range and count the offline frame.
    for (auto& range : ranges_) {
      if (id >= range->first_frame && id < range->first_frame + range->frame_count) {
        uint32_t off = range->offline_frames.fetch_add(1, std::memory_order_relaxed) + 1;
        if (off == range->frame_count && !range->released) {
          Status status = hypervisor_->VmcallReleaseGpaRange(
              vcpu, guest_, range->base_gpa,
              static_cast<uint64_t>(range->frame_count) * kPageSize);
          if (status.ok()) {
            range->released = true;
            for (uint32_t i = 0; i < range->frame_count; i++) {
              frames_[range->first_frame + i].data.store(nullptr, std::memory_order_relaxed);
            }
          }
        }
        break;
      }
    }
  }
  capacity_pages_.fetch_sub(removed, std::memory_order_relaxed);
  return removed;
}

}  // namespace aquila
