// Lock-free, hierarchical two-level freelist for DRAM-cache frames (§3.2).
//
// Level 1: one queue per NUMA node. Level 2: one queue per core. A core
// allocates from, in order: its own queue, its NUMA node's queue, remote
// NUMA queues. Frees go to the core queue; when the core queue exceeds a
// threshold, a batch is moved to the NUMA queue ("all page movement between
// first and second level queues is performed in batches", 4096 pages in the
// paper, scaled here). The combination of per-core queues, batching, and
// lock-free stacks is what keeps allocation contention negligible.
//
// Frames are dense 32-bit ids; the stacks are intrusive over a shared
// next[] array (one slot per frame), so no allocation ever happens on the
// fault path. ABA on the Treiber stacks is prevented with a 32-bit tag
// packed next to the top-of-stack id.
#ifndef AQUILA_SRC_CACHE_FREELIST_H_
#define AQUILA_SRC_CACHE_FREELIST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/cpu.h"
#include "src/util/logging.h"

namespace aquila {

using FrameId = uint32_t;
inline constexpr FrameId kInvalidFrame = ~0u;

// Frames per 2 MB aligned run (kHugePage2M / kPageSize). Runs are the unit
// the huge-page promotion path allocates: 512 frames whose backing GPAs are
// contiguous and 2 MB-aligned, so one guest-PT entry and one EPT chunk cover
// all of them.
inline constexpr uint32_t kRunFrames = 512;

// Last-owner stamp carried with a frame through the freelist (DESIGN.md
// §10): written by the freeing core immediately before the Push CAS and read
// by the allocating core only after the Pop CAS, so the acq_rel edges on the
// stack heads are what publish it — the stamp needs no atomics of its own.
// Batch moves between levels travel by frame id (Pop acquire + PushChain
// release), so the happens-before chain extends through every hop, including
// cross-NUMA steals. Fields mirror DeferredShootdown in src/mem/tlb.h but
// stay POD here so the cache layer does not depend on the TLB layer.
struct ReuseStamp {
  uint64_t vpn = 0;        // last mapped virtual page (0 = never mapped)
  uint64_t region = 0;     // owning mapping id at free time
  uint64_t cpu_mask = 0;   // cores that held a translation at free time
  uint64_t tlb_epoch = 0;  // global flush epoch at the page's last insert
  int32_t core = -1;       // core that freed the frame
  bool deferred = false;   // a DeferredShootdown for vpn is parked in TlbSet
  bool valid = false;      // written by a stamped Free (vs a default reset)
};

// Treiber stack of frame ids, intrusive over a shared next[] array.
class FrameStack {
 public:
  // `next` must outlive the stack and have one slot per possible frame id.
  explicit FrameStack(std::atomic<uint32_t>* next = nullptr) : next_(next) {}

  void BindNextArray(std::atomic<uint32_t>* next) { next_ = next; }

  void Push(FrameId frame);

  // Pushes a locally pre-linked chain [first..last] of `count` frames with a
  // single CAS. next[last] is overwritten.
  void PushChain(FrameId first, FrameId last, uint32_t count);

  // Pops one frame; kInvalidFrame when empty.
  FrameId Pop();

  // Pops up to `max` frames into `out`; returns the number popped.
  uint32_t PopBatch(FrameId* out, uint32_t max);

  uint32_t ApproxSize() const { return size_.load(std::memory_order_relaxed); }

 private:
  static constexpr uint64_t kNil = 0xffffffffull;
  static uint64_t Pack(uint64_t tag, uint64_t top) { return (tag << 32) | top; }
  static uint32_t Top(uint64_t packed) { return static_cast<uint32_t>(packed & 0xffffffffull); }
  static uint64_t Tag(uint64_t packed) { return packed >> 32; }

  alignas(kCacheLineSize) std::atomic<uint64_t> head_{Pack(0, kNil)};
  std::atomic<uint32_t> size_{0};
  std::atomic<uint32_t>* next_;
};

class TwoLevelFreelist {
 public:
  struct Options {
    // Core-queue occupancy above which a batch moves to the NUMA queue.
    uint32_t core_queue_threshold = 512;
    // Frames moved per core->NUMA transfer.
    uint32_t move_batch = 256;
    int numa_nodes = NumaTopology::kNumaNodes;
    // Carve 2 MB-aligned kRunFrames-frame runs out of AddFrames and serve
    // them intact via AllocRun/FreeRun. Off by default: seeding order,
    // allocation behavior, and ApproxFree are byte-identical to the runless
    // freelist. Run integrity is structural — a run sits in a run queue as
    // one node and only moves whole (no batch migration path touches run
    // queues), so cross-NUMA steals can never tear one.
    bool carve_runs = false;
    // Intact runs the break-run fallback must leave for AllocRun. Broken
    // runs never re-form, so unbounded breaking permanently starves
    // promotion whenever sustained 4K demand precedes it (a graph build
    // before the read-mostly phase, say) — the watermark analog of the
    // kernel's high-order atomic reserves. Approximate: concurrent breakers
    // may dip slightly below. 0 = break freely. Only meaningful with
    // carve_runs; keep it well under the smallest expected run count or 4K
    // allocation degenerates to eviction-only.
    uint32_t reserve_runs = 0;
  };

  struct Stats {
    std::atomic<uint64_t> core_hits{0};
    std::atomic<uint64_t> numa_hits{0};
    std::atomic<uint64_t> remote_hits{0};
    std::atomic<uint64_t> batch_moves{0};
    std::atomic<uint64_t> run_allocs{0};    // intact runs handed out
    std::atomic<uint64_t> run_frees{0};     // intact runs returned
    std::atomic<uint64_t> run_steals{0};    // AllocRun served from a remote node
    std::atomic<uint64_t> runs_broken{0};   // runs split into singles under 4K pressure
  };

  // `max_frames` is the hard capacity: the largest frame id the cache can
  // ever grow to (bounded by the hypervisor's host memory). Fixed at
  // construction so the intrusive next[] array never reallocates under
  // concurrent lock-free pushes.
  TwoLevelFreelist(uint32_t max_frames, const Options& options);

  uint32_t capacity() const { return static_cast<uint32_t>(capacity_); }

  // Seeds the freelist with frames [first, first + count), spread across
  // NUMA queues. With Options::carve_runs, `align_page` is the global page
  // number of frame `first` in the space runs must be aligned in (the cache
  // passes its backing GPA >> 12): maximal runs are carved at offsets where
  // (align_page + (f - first)) % kRunFrames == 0, so every run's 2 MB of
  // backing GPA is naturally aligned and sits inside one EPT chunk. Leftover
  // frames outside aligned runs are spread as singles.
  void AddFrames(FrameId first, uint32_t count, uint64_t align_page = 0);

  // Allocates a frame for `core`; kInvalidFrame when every queue is empty
  // (the caller must evict).
  FrameId Alloc(int core);

  // Allocation that also reads back the frame's last-owner stamp (written by
  // the stamped Free below; default-valued for seeded or plainly freed
  // frames). The read is sequenced after the Pop, so the pop edge publishes
  // it.
  FrameId Alloc(int core, ReuseStamp* stamp_out);

  // Returns a frame from `core` (eviction places frames in the local core
  // queue, §3.2).
  void Free(int core, FrameId frame);

  // Free that records `stamp` as the frame's last owner. The stamp is
  // written before the Push, so the push edge publishes it with the frame.
  void Free(int core, FrameId frame, const ReuseStamp& stamp);

  // Returns a burst of frames straight to `core`'s NUMA queue in one
  // PushChain, skipping the core level. A burst parked in the freeing core's
  // queue is invisible to every other core (core queues are owner-only) and
  // can sit entirely under the overflow threshold — other cores then grind
  // through fruitless eviction sweeps while hundreds of frames idle. Level
  // movement is batched anyway (§3.2), so a batch-sized free starts at the
  // shared level. Stamps are reset: batch frees come from retirement paths
  // that already executed or captured their shootdowns.
  void FreeBatch(int core, const FrameId* frames, uint32_t count);

  // Pops an intact aligned run (local NUMA node first, then remote steal).
  // Returns the first frame id of the run — frames [first, first+kRunFrames)
  // are all owned by the caller — or kInvalidFrame when no intact run is
  // left (the caller falls back to 4K). Requires Options::carve_runs.
  FrameId AllocRun(int core);

  // Returns an intact run previously handed out by AllocRun (or carved by
  // AddFrames). The caller must own every frame of the run; partial returns
  // go through Free() frame by frame instead.
  void FreeRun(int core, FrameId first);

  // Cheap (approximate) "would AllocRun succeed" probe: promotion uses it to
  // skip the 512-lock protocol outright when every run is spent, instead of
  // discovering that after claiming the whole span.
  bool RunAvailable() const {
    for (const FrameStack& q : run_queues_) {
      if (q.ApproxSize() > 0) {
        return true;
      }
    }
    return false;
  }

  const Stats& stats() const { return stats_; }
  uint64_t ApproxFree() const;

 private:
  void AddSingles(FrameId first, uint32_t count);
  FrameId PopRun(int local_node);
  void MaybeOverflow(int core);

  Options options_;
  uint64_t capacity_;
  std::unique_ptr<std::atomic<uint32_t>[]> next_;
  // One stamp slot per frame, parallel to next_. Plain fields on purpose:
  // guarded-by: the owning stack's head CAS (written before Push, read after
  // Pop; a frame is reachable from exactly one queue at a time).
  std::unique_ptr<ReuseStamp[]> stamps_;
  std::vector<FrameStack> core_queues_;  // one per logical core
  std::vector<FrameStack> numa_queues_;  // one per NUMA node
  // One run queue per NUMA node, intrusive over the same next_[] array: a
  // run is linked into a queue by its first frame only, so a frame is
  // reachable from exactly one queue — a single queue (counted as 1 by
  // ApproxFree) or, via its run head, a run queue (counted as kRunFrames).
  // Populated only under Options::carve_runs.
  std::vector<FrameStack> run_queues_;
  Stats stats_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_CACHE_FREELIST_H_
