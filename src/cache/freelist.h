// Lock-free, hierarchical two-level freelist for DRAM-cache frames (§3.2).
//
// Level 1: one queue per NUMA node. Level 2: one queue per core. A core
// allocates from, in order: its own queue, its NUMA node's queue, remote
// NUMA queues. Frees go to the core queue; when the core queue exceeds a
// threshold, a batch is moved to the NUMA queue ("all page movement between
// first and second level queues is performed in batches", 4096 pages in the
// paper, scaled here). The combination of per-core queues, batching, and
// lock-free stacks is what keeps allocation contention negligible.
//
// Frames are dense 32-bit ids; the stacks are intrusive over a shared
// next[] array (one slot per frame), so no allocation ever happens on the
// fault path. ABA on the Treiber stacks is prevented with a 32-bit tag
// packed next to the top-of-stack id.
#ifndef AQUILA_SRC_CACHE_FREELIST_H_
#define AQUILA_SRC_CACHE_FREELIST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/cpu.h"
#include "src/util/logging.h"

namespace aquila {

using FrameId = uint32_t;
inline constexpr FrameId kInvalidFrame = ~0u;

// Last-owner stamp carried with a frame through the freelist (DESIGN.md
// §10): written by the freeing core immediately before the Push CAS and read
// by the allocating core only after the Pop CAS, so the acq_rel edges on the
// stack heads are what publish it — the stamp needs no atomics of its own.
// Batch moves between levels travel by frame id (Pop acquire + PushChain
// release), so the happens-before chain extends through every hop, including
// cross-NUMA steals. Fields mirror DeferredShootdown in src/mem/tlb.h but
// stay POD here so the cache layer does not depend on the TLB layer.
struct ReuseStamp {
  uint64_t vpn = 0;        // last mapped virtual page (0 = never mapped)
  uint64_t region = 0;     // owning mapping id at free time
  uint64_t cpu_mask = 0;   // cores that held a translation at free time
  uint64_t tlb_epoch = 0;  // global flush epoch at the page's last insert
  int32_t core = -1;       // core that freed the frame
  bool deferred = false;   // a DeferredShootdown for vpn is parked in TlbSet
  bool valid = false;      // written by a stamped Free (vs a default reset)
};

// Treiber stack of frame ids, intrusive over a shared next[] array.
class FrameStack {
 public:
  // `next` must outlive the stack and have one slot per possible frame id.
  explicit FrameStack(std::atomic<uint32_t>* next = nullptr) : next_(next) {}

  void BindNextArray(std::atomic<uint32_t>* next) { next_ = next; }

  void Push(FrameId frame);

  // Pushes a locally pre-linked chain [first..last] of `count` frames with a
  // single CAS. next[last] is overwritten.
  void PushChain(FrameId first, FrameId last, uint32_t count);

  // Pops one frame; kInvalidFrame when empty.
  FrameId Pop();

  // Pops up to `max` frames into `out`; returns the number popped.
  uint32_t PopBatch(FrameId* out, uint32_t max);

  uint32_t ApproxSize() const { return size_.load(std::memory_order_relaxed); }

 private:
  static constexpr uint64_t kNil = 0xffffffffull;
  static uint64_t Pack(uint64_t tag, uint64_t top) { return (tag << 32) | top; }
  static uint32_t Top(uint64_t packed) { return static_cast<uint32_t>(packed & 0xffffffffull); }
  static uint64_t Tag(uint64_t packed) { return packed >> 32; }

  alignas(kCacheLineSize) std::atomic<uint64_t> head_{Pack(0, kNil)};
  std::atomic<uint32_t> size_{0};
  std::atomic<uint32_t>* next_;
};

class TwoLevelFreelist {
 public:
  struct Options {
    // Core-queue occupancy above which a batch moves to the NUMA queue.
    uint32_t core_queue_threshold = 512;
    // Frames moved per core->NUMA transfer.
    uint32_t move_batch = 256;
    int numa_nodes = NumaTopology::kNumaNodes;
  };

  struct Stats {
    std::atomic<uint64_t> core_hits{0};
    std::atomic<uint64_t> numa_hits{0};
    std::atomic<uint64_t> remote_hits{0};
    std::atomic<uint64_t> batch_moves{0};
  };

  // `max_frames` is the hard capacity: the largest frame id the cache can
  // ever grow to (bounded by the hypervisor's host memory). Fixed at
  // construction so the intrusive next[] array never reallocates under
  // concurrent lock-free pushes.
  TwoLevelFreelist(uint32_t max_frames, const Options& options);

  uint32_t capacity() const { return static_cast<uint32_t>(capacity_); }

  // Seeds the freelist with frames [first, first + count), spread across
  // NUMA queues.
  void AddFrames(FrameId first, uint32_t count);

  // Allocates a frame for `core`; kInvalidFrame when every queue is empty
  // (the caller must evict).
  FrameId Alloc(int core);

  // Allocation that also reads back the frame's last-owner stamp (written by
  // the stamped Free below; default-valued for seeded or plainly freed
  // frames). The read is sequenced after the Pop, so the pop edge publishes
  // it.
  FrameId Alloc(int core, ReuseStamp* stamp_out);

  // Returns a frame from `core` (eviction places frames in the local core
  // queue, §3.2).
  void Free(int core, FrameId frame);

  // Free that records `stamp` as the frame's last owner. The stamp is
  // written before the Push, so the push edge publishes it with the frame.
  void Free(int core, FrameId frame, const ReuseStamp& stamp);

  const Stats& stats() const { return stats_; }
  uint64_t ApproxFree() const;

 private:
  void MaybeOverflow(int core);

  Options options_;
  uint64_t capacity_;
  std::unique_ptr<std::atomic<uint32_t>[]> next_;
  // One stamp slot per frame, parallel to next_. Plain fields on purpose:
  // guarded-by: the owning stack's head CAS (written before Push, read after
  // Pop; a frame is reachable from exactly one queue at a time).
  std::unique_ptr<ReuseStamp[]> stamps_;
  std::vector<FrameStack> core_queues_;  // one per logical core
  std::vector<FrameStack> numa_queues_;  // one per NUMA node
  Stats stats_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_CACHE_FREELIST_H_
