#include "src/cache/dirty_tree.h"

#include "src/telemetry/scoped_timer.h"

namespace aquila {

#if AQUILA_TELEMETRY_ENABLED
namespace {
// Real-TSC timers: these are spinlock-protected software sections executed
// for real, with no SimClock in scope.
Histogram* DirtyInsertHist() {
  static Histogram* hist =
      telemetry::Registry().GetHistogram("aquila.cache.dirty_insert_tsc");
  return hist;
}
Histogram* DirtyCollectHist() {
  static Histogram* hist =
      telemetry::Registry().GetHistogram("aquila.cache.dirty_collect_tsc");
  return hist;
}
}  // namespace
#endif

void DirtyTreeSet::Insert(int core, DirtyItem* item) {
  AQUILA_DCHECK(core >= 0 && core < CoreRegistry::kMaxCores);
  AQUILA_TELEMETRY_ONLY(telemetry::ScopedTscTimer timer(DirtyInsertHist()));
  PerCore& pc = cores_[core];
  std::lock_guard<SpinLock> guard(pc.lock);
  // owner_core is published under the tree lock, after which the item is
  // discoverable by collectors; writing it before the lock would let a racy
  // Remove lock the *new* core while the node is still being linked.
  item->owner_core.store(static_cast<int16_t>(core), std::memory_order_relaxed);
  pc.tree.Insert(&item->node);
}

void DirtyTreeSet::Remove(DirtyItem* item) {
  // owner_core is only a routing hint outside the lock: a collector may
  // unlink the item (owner -> -1) between our load and the lock acquisition,
  // so re-validate under the lock and retry until the hint is stable.
  while (true) {
    int core = item->owner_core.load(std::memory_order_acquire);
    if (core < 0) {
      return;
    }
    PerCore& pc = cores_[core];
    std::lock_guard<SpinLock> guard(pc.lock);
    if (item->owner_core.load(std::memory_order_relaxed) != core) {
      continue;  // moved or unlinked while we were acquiring; re-route
    }
    if (item->node.linked) {
      pc.tree.Remove(&item->node);
    }
    // Release keeps the invariant uniform: every unlink publishes -1 with
    // release so the acquire fast path above is always a full handoff edge.
    item->owner_core.store(-1, std::memory_order_release);
    return;
  }
}

size_t DirtyTreeSet::CollectBatch(int start_core, size_t max, DirtyItem** out) {
  AQUILA_TELEMETRY_ONLY(telemetry::ScopedTscTimer timer(DirtyCollectHist()));
  size_t n = 0;
  for (int i = 0; i < CoreRegistry::kMaxCores && n < max; i++) {
    PerCore& pc = cores_[(start_core + i) % CoreRegistry::kMaxCores];
    std::lock_guard<SpinLock> guard(pc.lock);
    while (n < max && !pc.tree.empty()) {
      RbNode* node = pc.tree.First();
      pc.tree.Remove(node);
      DirtyItem* item = ItemOf(node);
      // Release, not relaxed: collectors run WITHOUT the frame claim that
      // orders every other dirty-state transition, so this store is the only
      // happens-before edge between our tree-node writes and a later
      // re-Insert on another core (which reaches us through Remove's
      // owner_core acquire fast path when the re-dirtier clears first).
      item->owner_core.store(-1, std::memory_order_release);
      out[n++] = item;
    }
  }
  return n;
}

void DirtyTreeSet::CollectRange(uint64_t lo, uint64_t hi, std::vector<DirtyItem*>* out) {
  for (PerCore& pc : cores_) {
    std::lock_guard<SpinLock> guard(pc.lock);
    RbNode* node = pc.tree.LowerBound(lo);
    while (node != nullptr) {
      DirtyItem* item = ItemOf(node);
      if (item->sort_key > hi) {
        break;
      }
      RbNode* next = RbTree<KeyOf>::Next(node);
      pc.tree.Remove(node);
      // Release for the same claim-less handoff reason as CollectBatch.
      item->owner_core.store(-1, std::memory_order_release);
      out->push_back(item);
      node = next;
    }
  }
}

size_t DirtyTreeSet::TotalDirty() const {
  size_t total = 0;
  for (const PerCore& pc : cores_) {
    std::lock_guard<SpinLock> guard(pc.lock);
    total += pc.tree.size();
  }
  return total;
}

}  // namespace aquila
