#include "src/cache/dirty_tree.h"

#include "src/telemetry/scoped_timer.h"

namespace aquila {

#if AQUILA_TELEMETRY_ENABLED
namespace {
// Real-TSC timers: these are spinlock-protected software sections executed
// for real, with no SimClock in scope.
Histogram* DirtyInsertHist() {
  static Histogram* hist =
      telemetry::Registry().GetHistogram("aquila.cache.dirty_insert_tsc");
  return hist;
}
Histogram* DirtyCollectHist() {
  static Histogram* hist =
      telemetry::Registry().GetHistogram("aquila.cache.dirty_collect_tsc");
  return hist;
}
}  // namespace
#endif

void DirtyTreeSet::Insert(int core, DirtyItem* item) {
  AQUILA_DCHECK(core >= 0 && core < CoreRegistry::kMaxCores);
  AQUILA_TELEMETRY_ONLY(telemetry::ScopedTscTimer timer(DirtyInsertHist()));
  item->owner_core = static_cast<int16_t>(core);
  PerCore& pc = cores_[core];
  std::lock_guard<SpinLock> guard(pc.lock);
  pc.tree.Insert(&item->node);
}

void DirtyTreeSet::Remove(DirtyItem* item) {
  int core = item->owner_core;
  if (core < 0) {
    return;
  }
  PerCore& pc = cores_[core];
  std::lock_guard<SpinLock> guard(pc.lock);
  if (item->node.linked) {
    pc.tree.Remove(&item->node);
  }
  item->owner_core = -1;
}

size_t DirtyTreeSet::CollectBatch(int start_core, size_t max, DirtyItem** out) {
  AQUILA_TELEMETRY_ONLY(telemetry::ScopedTscTimer timer(DirtyCollectHist()));
  size_t n = 0;
  for (int i = 0; i < CoreRegistry::kMaxCores && n < max; i++) {
    PerCore& pc = cores_[(start_core + i) % CoreRegistry::kMaxCores];
    std::lock_guard<SpinLock> guard(pc.lock);
    while (n < max && !pc.tree.empty()) {
      RbNode* node = pc.tree.First();
      pc.tree.Remove(node);
      DirtyItem* item = ItemOf(node);
      item->owner_core = -1;
      out[n++] = item;
    }
  }
  return n;
}

void DirtyTreeSet::CollectRange(uint64_t lo, uint64_t hi, std::vector<DirtyItem*>* out) {
  for (PerCore& pc : cores_) {
    std::lock_guard<SpinLock> guard(pc.lock);
    RbNode* node = pc.tree.LowerBound(lo);
    while (node != nullptr) {
      DirtyItem* item = ItemOf(node);
      if (item->sort_key > hi) {
        break;
      }
      RbNode* next = RbTree<KeyOf>::Next(node);
      pc.tree.Remove(node);
      item->owner_core = -1;
      out->push_back(item);
      node = next;
    }
  }
}

size_t DirtyTreeSet::TotalDirty() const {
  size_t total = 0;
  for (const PerCore& pc : cores_) {
    std::lock_guard<SpinLock> guard(pc.lock);
    total += pc.tree.size();
  }
  return total;
}

}  // namespace aquila
