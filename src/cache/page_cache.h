// Aquila's DRAM I/O cache (§3.2, Figure 4).
//
// Composition:
//   - LockFreeHash      : page key -> frame, for fault-time lookups;
//   - TwoLevelFreelist  : per-core / per-NUMA frame allocation;
//   - DirtyTreeSet      : per-core red-black trees of dirty frames;
//   - clock sweep       : LRU approximation driven by fault-set reference
//                         bits, claiming eviction batches of 512 frames;
//   - Hypervisor grants : frames live in guest-physical ranges granted via
//                         vmcall and backed lazily through EPT faults
//                         (dynamic cache resizing, §3.5).
//
// The cache itself is policy-free about *what* eviction means: the fault
// handler (src/core) owns unmapping, TLB shootdown, and writeback, using
// SelectVictims() / CollectDirtyBatch() from here. Same-page races are
// excluded by the VMA per-entry lock held by callers; this layer guarantees
// internal consistency across different pages.
#ifndef AQUILA_SRC_CACHE_PAGE_CACHE_H_
#define AQUILA_SRC_CACHE_PAGE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/dirty_tree.h"
#include "src/cache/freelist.h"
#include "src/cache/lockfree_hash.h"
#include "src/telemetry/metrics.h"
#include "src/util/bitops.h"
#include "src/util/race_injector.h"
#include "src/vmx/hypervisor.h"

namespace aquila {

enum class FrameState : uint32_t {
  kFree = 0,     // in a freelist queue
  kFilling,      // claimed by a fault, I/O in flight
  kResident,     // mapped, in the hash table
  kEvicting,     // claimed by an evictor
  kWritingBack,  // dirty contents in flight to the device (async writeback);
                 // still in the hash table so faulters wait instead of
                 // re-reading a stale page from the device
  kOffline,      // removed by a cache shrink
};

// Frame identity fields follow an ownership-handoff protocol rather than a
// lock: key/vaddr are written by whoever owns the frame in a transient state
// (kFilling / kEvicting) and published by the release store of kResident;
// claimants (evictors, msync, the minor-fault pin) acquire ownership with a
// CAS kResident -> kEvicting/kFilling before touching them. They are atomics
// because *unclaimed* readers exist by design — the clock sweep and eviction
// classify candidates by key/vaddr before deciding to claim, and tolerate
// stale values by re-validating after the claim CAS.
struct Frame {
  std::atomic<FrameState> state{FrameState::kFree};
  std::atomic<uint8_t> referenced{0};  // clock ref bit, set on fault
  std::atomic<uint8_t> dirty{0};
  std::atomic<uint64_t> key{0};    // hash key while resident
  std::atomic<uint64_t> vaddr{0};  // mapped guest-virtual page; 0 = readahead
  uint64_t gpa = 0;                // guarded-by: written once under grow_lock_ before
                                   // the frame is published through the freelist
  std::atomic<uint8_t*> data{nullptr};  // resolved host pointer (EPT walk cached);
                                        // lazily resolved, idempotent, monotone
  DirtyItem dirty_item;  // guarded-by: owner core's DirtyTreeSet lock (+ frame claim)
  // mm_cpumask analog (DESIGN.md §10): bit c set <=> core c may hold a TLB
  // entry for this frame's translation. Grows monotonically while the frame
  // is in circulation — faulters OR their bit in under the page's VMA entry
  // lock; shootdown paths read it after claiming the frame (the entry lock /
  // claim CAS orders publication). Reset only on recycle (FreeFrame), never
  // on writeback or msync, because unclaimed hit-path readers may be setting
  // bits concurrently.
  std::atomic<uint64_t> cpu_mask{0};
  // Global TLB flush epoch at the frame's most recent Insert (CAS-max so a
  // slow faulter can never regress it). A core whose whole-TLB flush epoch
  // exceeds this value cannot hold the translation: the generation elision
  // input for ShootdownMaskMode::kMaskGen.
  std::atomic<uint64_t> tlb_epoch{0};
};

// Publishes a TLB insert on `core` into the frame's shootdown-routing state:
// called by the fault/hit paths right after TlbSet::Insert, with `epoch` the
// value Insert returned. Monotone on both fields — safe against concurrent
// publishers; the caller orders it against eviction via the VMA entry lock.
inline void NoteTlbInsert(Frame& frame, int core, uint64_t epoch) {
  AQUILA_RACE_POINT("page_cache.note_insert.pre_mask");
  frame.cpu_mask.fetch_or(1ull << (core & 63), std::memory_order_relaxed);
  uint64_t seen = frame.tlb_epoch.load(std::memory_order_relaxed);
  while (seen < epoch &&
         !frame.tlb_epoch.compare_exchange_weak(seen, epoch, std::memory_order_relaxed)) {
  }
}

class PageCache {
 public:
  struct Options {
    uint64_t capacity_pages = (64ull << 20) / kPageSize;  // initial size
    uint64_t max_pages = (512ull << 20) / kPageSize;      // growth ceiling
    uint32_t eviction_batch = 512;                        // paper's batch
    TwoLevelFreelist::Options freelist;
  };

  struct Stats {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> lookup_hits{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> clock_sweeps{0};
  };

  // Grants the initial capacity from the hypervisor (one vmcall), charged to
  // `vcpu`.
  PageCache(Hypervisor* hypervisor, int guest, Vcpu& vcpu, const Options& options);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // --- Lookup / mapping bookkeeping (lock-free) --------------------------------
  bool Lookup(uint64_t key, FrameId* frame);
  bool InsertMapping(uint64_t key, FrameId frame);
  bool RemoveMapping(uint64_t key);

  // --- Frames -------------------------------------------------------------------
  Frame& frame(FrameId id) { return frames_[id]; }
  FrameId IndexOf(const Frame* f) const { return static_cast<FrameId>(f - frames_.get()); }

  // Host memory of the frame; resolves GPA->HPA through the hypervisor on
  // first touch (EPT fault per chunk) and caches the pointer.
  uint8_t* FrameData(Vcpu& vcpu, FrameId id);

  // Allocation from the freelist; kInvalidFrame when empty (caller evicts).
  // The returned frame is in state kFilling. The stamped overload also
  // returns the frame's last-owner ReuseStamp (kReuseElide input); a caller
  // that may receive a deferred stamp MUST use it — dropping a deferred
  // stamp would leave its parked shootdown dangling.
  FrameId AllocFrame(Vcpu& vcpu, int core);
  FrameId AllocFrame(Vcpu& vcpu, int core, ReuseStamp* stamp_out);
  // Returns a frame to `core`'s queue (state -> kFree). The stamped overload
  // records the frame's last owner for the next allocator; both reset the
  // frame's routing state first — see the ordering contract in FreeFrame.
  void FreeFrame(int core, FrameId id);
  void FreeFrame(int core, FrameId id, const ReuseStamp& stamp);
  // Bulk free that publishes the whole batch to the NUMA level in one push:
  // for retirement bursts (huge-page promotion replacing up to 512 resident
  // 4K frames with a run) that would otherwise pile up invisibly in one
  // core's queue while allocation on other cores falls back to eviction.
  void FreeFrames(int core, const FrameId* ids, uint32_t count);

  // Allocates a 2 MB-aligned kRunFrames-frame run for huge-page promotion;
  // every frame comes back in state kFilling, owned by the caller. Returns
  // kInvalidFrame when no intact run is available (the caller stays at 4K).
  // Requires the freelist's carve_runs option.
  FrameId AllocRun(int core);
  // Returns an intact run handed out by AllocRun, resetting every frame like
  // FreeFrame. A fragmented run (demoted span) goes back frame by frame
  // through FreeFrame instead and never re-forms — runs are carved once at
  // Grow time.
  void FreeRun(int core, FrameId first);
  // Approximate "would AllocRun succeed": promotion's cheap pre-check.
  bool RunAvailable() const { return freelist_.RunAvailable(); }

  // --- Eviction support -----------------------------------------------------------
  // Clock sweep: claims up to `max` resident frames (state -> kEvicting) and
  // returns them. Frames with the reference bit set get a second chance.
  size_t SelectVictims(size_t max, FrameId* out);

  // --- Dirty tracking --------------------------------------------------------------
  // Idempotent: the dirty flag's 0 -> 1 edge (atomic exchange) decides which
  // caller links the item; an already-dirty frame is left untouched.
  void MarkDirty(int core, FrameId id, uint64_t sort_key);
  void ClearDirty(FrameId id);
  size_t CollectDirtyBatch(int start_core, size_t max, FrameId* out);
  void CollectDirtyRange(uint64_t lo, uint64_t hi, std::vector<FrameId>* out);
  size_t TotalDirty() const { return dirty_.TotalDirty(); }

  // --- Dynamic resizing (operation ⑤) -----------------------------------------------
  Status Grow(Vcpu& vcpu, uint64_t add_pages);
  // Takes up to `remove_pages` free frames out of circulation; whole grants
  // whose frames are all offline are returned to the host. Returns how many
  // frames went offline. Frames carrying a deferred reuse stamp report their
  // vpn through `deferred_vpns` so the caller can execute the parked
  // shootdown (an offlined frame's contents are gone, so the deferral can no
  // longer be elided).
  StatusOr<uint64_t> Shrink(Vcpu& vcpu, uint64_t remove_pages,
                            std::vector<uint64_t>* deferred_vpns = nullptr);

  uint64_t capacity_pages() const { return capacity_pages_.load(std::memory_order_relaxed); }
  uint64_t max_pages() const { return options_.max_pages; }
  uint32_t eviction_batch() const { return options_.eviction_batch; }
  const Stats& stats() const { return stats_; }
  const TwoLevelFreelist::Stats& freelist_stats() const { return freelist_.stats(); }
  uint64_t ApproxFreeFrames() const { return freelist_.ApproxFree(); }

 private:
  struct GpaRange {
    uint64_t base_gpa = 0;      // guarded-by: immutable after Grow publishes the range
    FrameId first_frame = 0;    // guarded-by: immutable after Grow publishes the range
    uint32_t frame_count = 0;   // guarded-by: immutable after Grow publishes the range
    std::atomic<uint32_t> offline_frames{0};
    bool released = false;      // guarded-by: grow_lock_
  };

  Hypervisor* hypervisor_;
  int guest_;
  Options options_;
  std::unique_ptr<Frame[]> frames_;  // preallocated to max_pages
  std::atomic<uint64_t> total_frames_{0};
  std::atomic<uint64_t> capacity_pages_{0};
  LockFreeHash hash_;
  TwoLevelFreelist freelist_;
  DirtyTreeSet dirty_;
  std::atomic<uint64_t> clock_hand_{0};
  Stats stats_;
  SpinLock grow_lock_;
  std::vector<std::unique_ptr<GpaRange>> ranges_;
  // Last member: callbacks read stats_/freelist_, so they unregister first.
  telemetry::CallbackGroup metrics_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_CACHE_PAGE_CACHE_H_
