#include "src/cache/freelist.h"

#include "src/util/race_injector.h"

namespace aquila {

void FrameStack::Push(FrameId frame) { PushChain(frame, frame, 1); }

void FrameStack::PushChain(FrameId first, FrameId last, uint32_t count) {
  uint64_t head = head_.load(std::memory_order_relaxed);
  while (true) {
    next_[last].store(Top(head), std::memory_order_relaxed);
    AQUILA_RACE_POINT("freelist.push.pre_cas");
    uint64_t desired = Pack(Tag(head) + 1, first);
    if (head_.compare_exchange_weak(head, desired, std::memory_order_acq_rel)) {
      size_.fetch_add(count, std::memory_order_relaxed);
      return;
    }
  }
}

FrameId FrameStack::Pop() {
  uint64_t head = head_.load(std::memory_order_acquire);
  while (true) {
    uint32_t top = Top(head);
    if (top == kNil) {
      return kInvalidFrame;
    }
    // The window between reading next_[top] and the CAS is the classic
    // Treiber ABA interval; the tag in the packed head is what makes a
    // pop-push-pop of the same frame fail the CAS. Stretch it under stress.
    uint32_t after = next_[top].load(std::memory_order_relaxed);
    AQUILA_RACE_POINT("freelist.pop.pre_cas");
    uint64_t desired = Pack(Tag(head) + 1, after);
    if (head_.compare_exchange_weak(head, desired, std::memory_order_acq_rel)) {
      size_.fetch_sub(1, std::memory_order_relaxed);
      return top;
    }
  }
}

uint32_t FrameStack::PopBatch(FrameId* out, uint32_t max) {
  uint32_t n = 0;
  while (n < max) {
    FrameId frame = Pop();
    if (frame == kInvalidFrame) {
      break;
    }
    out[n++] = frame;
  }
  return n;
}

TwoLevelFreelist::TwoLevelFreelist(uint32_t max_frames, const Options& options)
    : options_(options),
      capacity_(max_frames),
      next_(std::make_unique<std::atomic<uint32_t>[]>(max_frames)),
      stamps_(std::make_unique<ReuseStamp[]>(max_frames)),
      core_queues_(CoreRegistry::kMaxCores),
      numa_queues_(static_cast<size_t>(options.numa_nodes)),
      run_queues_(static_cast<size_t>(options.numa_nodes)) {
  AQUILA_CHECK(options_.numa_nodes >= 1);
  for (FrameStack& q : core_queues_) {
    q.BindNextArray(next_.get());
  }
  for (FrameStack& q : numa_queues_) {
    q.BindNextArray(next_.get());
  }
  for (FrameStack& q : run_queues_) {
    q.BindNextArray(next_.get());
  }
}

void TwoLevelFreelist::AddFrames(FrameId first, uint32_t count, uint64_t align_page) {
  AQUILA_CHECK(static_cast<uint64_t>(first) + count <= capacity_);
  if (!options_.carve_runs) {
    AddSingles(first, count);
    return;
  }
  // Carve maximal aligned runs; the lead-in below the first aligned offset
  // and the tail past the last full run stay single frames.
  uint32_t lead =
      static_cast<uint32_t>((kRunFrames - align_page % kRunFrames) % kRunFrames);
  if (lead >= count || count - lead < kRunFrames) {
    AddSingles(first, count);
    return;
  }
  FrameId run = first + lead;
  const FrameId end = first + count;
  uint32_t node = 0;
  const uint32_t nodes = static_cast<uint32_t>(run_queues_.size());
  while (run + kRunFrames <= end) {
    run_queues_[node % nodes].Push(run);
    node++;
    run += kRunFrames;
  }
  if (lead > 0) {
    AddSingles(first, lead);
  }
  if (run < end) {
    AddSingles(run, end - run);
  }
}

void TwoLevelFreelist::AddSingles(FrameId first, uint32_t count) {
  // Spread across NUMA queues in contiguous runs, pre-linking each run
  // locally so the publish is one CAS per queue.
  uint32_t nodes = static_cast<uint32_t>(numa_queues_.size());
  uint32_t per_node = count / nodes;
  uint32_t extra = count % nodes;
  FrameId cursor = first;
  for (uint32_t node = 0; node < nodes; node++) {
    uint32_t n = per_node + (node < extra ? 1 : 0);
    if (n == 0) {
      continue;
    }
    for (uint32_t i = 0; i + 1 < n; i++) {
      next_[cursor + i].store(cursor + i + 1, std::memory_order_relaxed);
    }
    numa_queues_[node].PushChain(cursor, cursor + n - 1, n);
    cursor += n;
  }
}

FrameId TwoLevelFreelist::Alloc(int core) {
  FrameId frame = core_queues_[core].Pop();
  if (frame != kInvalidFrame) {
    stats_.core_hits.fetch_add(1, std::memory_order_relaxed);
    return frame;
  }
  int local_node = NumaTopology::NodeOfCore(core) % static_cast<int>(numa_queues_.size());
  frame = numa_queues_[local_node].Pop();
  if (frame != kInvalidFrame) {
    stats_.numa_hits.fetch_add(1, std::memory_order_relaxed);
    return frame;
  }
  for (size_t i = 0; i < numa_queues_.size(); i++) {
    if (static_cast<int>(i) == local_node) {
      continue;
    }
    frame = numa_queues_[i].Pop();
    if (frame != kInvalidFrame) {
      stats_.remote_hits.fetch_add(1, std::memory_order_relaxed);
      return frame;
    }
  }
  if (options_.carve_runs) {
    // Last resort under 4K pressure: break an intact run into singles rather
    // than force an eviction while 2 MB of frames sit idle. The run is
    // popped whole before any of its frames become visible as singles, so
    // ApproxFree only ever understates across the transition. The reserve
    // watermark is checked approximately — a racing breaker can take the
    // count below it, which costs one promotion opportunity, not safety.
    uint32_t intact = 0;
    for (const FrameStack& q : run_queues_) {
      intact += q.ApproxSize();
    }
    if (intact <= options_.reserve_runs) {
      return kInvalidFrame;  // protect the last runs for promotion; evict
    }
    FrameId run = PopRun(local_node);
    if (run != kInvalidFrame) {
      // Run-queue frames carry no live stamps (runs never pass through the
      // stamped Free path), but the slots may hold garbage from an earlier
      // single-frame life — reset them before the frames re-enter the
      // stamped alloc path.
      for (uint32_t i = 0; i < kRunFrames; i++) {
        stamps_[run + i] = ReuseStamp{};
      }
      // Split the burst: a move_batch-sized chunk stays local for this
      // core's next allocations, the bulk goes to the NUMA queue where every
      // core can reach it. Parking all 511 in this core's queue (owner-only,
      // and under the overflow threshold) would hide them from allocation
      // everywhere else — with a mostly-run-carved freelist that is most of
      // the free memory, and other cores fall back to eviction sweeps while
      // it idles here.
      uint32_t keep = std::min(options_.move_batch, kRunFrames - 1);
      for (uint32_t i = 1; i + 1 < kRunFrames; i++) {
        next_[run + i].store(run + i + 1, std::memory_order_relaxed);
      }
      AQUILA_RACE_POINT("freelist.break_run.pre_push");
      core_queues_[core].PushChain(run + 1, run + keep, keep);
      if (keep < kRunFrames - 1) {
        numa_queues_[local_node].PushChain(run + keep + 1, run + kRunFrames - 1,
                                           kRunFrames - 1 - keep);
      }
      stats_.runs_broken.fetch_add(1, std::memory_order_relaxed);
      return run;
    }
  }
  return kInvalidFrame;
}

FrameId TwoLevelFreelist::PopRun(int local_node) {
  FrameId run = run_queues_[local_node].Pop();
  if (run != kInvalidFrame) {
    return run;
  }
  for (size_t i = 0; i < run_queues_.size(); i++) {
    if (static_cast<int>(i) == local_node) {
      continue;
    }
    run = run_queues_[i].Pop();
    if (run != kInvalidFrame) {
      stats_.run_steals.fetch_add(1, std::memory_order_relaxed);
      return run;
    }
  }
  return kInvalidFrame;
}

FrameId TwoLevelFreelist::AllocRun(int core) {
  AQUILA_DCHECK(options_.carve_runs);
  int local_node = NumaTopology::NodeOfCore(core) % static_cast<int>(run_queues_.size());
  FrameId run = PopRun(local_node);
  if (run != kInvalidFrame) {
    stats_.run_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return run;
}

void TwoLevelFreelist::FreeRun(int core, FrameId first) {
  AQUILA_DCHECK(options_.carve_runs);
  AQUILA_DCHECK(static_cast<uint64_t>(first) + kRunFrames <= capacity_);
  int local_node = NumaTopology::NodeOfCore(core) % static_cast<int>(run_queues_.size());
  run_queues_[local_node].Push(first);
  stats_.run_frees.fetch_add(1, std::memory_order_relaxed);
}

FrameId TwoLevelFreelist::Alloc(int core, ReuseStamp* stamp_out) {
  FrameId frame = Alloc(core);
  if (frame != kInvalidFrame && stamp_out != nullptr) {
    // Sequenced after the Pop CAS (acquire), which synchronizes with the
    // freeing core's Push CAS (release) — transitively through any batch
    // moves, which travel by frame id and never touch the stamp slot.
    *stamp_out = stamps_[frame];
  }
  return frame;
}

void TwoLevelFreelist::Free(int core, FrameId frame) {
  Free(core, frame, ReuseStamp{});
}

void TwoLevelFreelist::Free(int core, FrameId frame, const ReuseStamp& stamp) {
  // Plain store, published by the Push CAS below (release edge). While the
  // frame sits on a queue nothing reads or writes its stamp slot, so the
  // slot is owned by whoever holds the frame outside the stacks.
  stamps_[frame] = stamp;
  core_queues_[core].Push(frame);
  MaybeOverflow(core);
}

void TwoLevelFreelist::FreeBatch(int core, const FrameId* frames, uint32_t count) {
  if (count == 0) {
    return;
  }
  // Like the stamped Free: the slots are owned by the holder until the
  // publish CAS, and the PushChain release edge publishes the resets.
  for (uint32_t i = 0; i < count; i++) {
    stamps_[frames[i]] = ReuseStamp{};
  }
  for (uint32_t i = 0; i + 1 < count; i++) {
    next_[frames[i]].store(frames[i + 1], std::memory_order_relaxed);
  }
  AQUILA_RACE_POINT("freelist.free_batch.pre_publish");
  int node = NumaTopology::NodeOfCore(core) % static_cast<int>(numa_queues_.size());
  numa_queues_[node].PushChain(frames[0], frames[count - 1], count);
  stats_.batch_moves.fetch_add(1, std::memory_order_relaxed);
}

void TwoLevelFreelist::MaybeOverflow(int core) {
  if (core_queues_[core].ApproxSize() <= options_.core_queue_threshold) {
    return;
  }
  // Move a batch to the local NUMA queue: pop into a scratch chain, then
  // publish with one CAS.
  std::vector<FrameId> batch(options_.move_batch);
  uint32_t n = core_queues_[core].PopBatch(batch.data(), options_.move_batch);
  if (n == 0) {
    return;
  }
  // Between the pop above and the publish below the batch is invisible to
  // every queue — ApproxFree transiently understates. Stretch the window so
  // the stress harness can check the "conservative, never inflated" claim.
  AQUILA_RACE_POINT("freelist.migrate.pre_publish");
  for (uint32_t i = 0; i + 1 < n; i++) {
    next_[batch[i]].store(batch[i + 1], std::memory_order_relaxed);
  }
  int node = NumaTopology::NodeOfCore(core) % static_cast<int>(numa_queues_.size());
  numa_queues_[node].PushChain(batch[0], batch[n - 1], n);
  stats_.batch_moves.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TwoLevelFreelist::ApproxFree() const {
  uint64_t total = 0;
  for (const FrameStack& q : core_queues_) {
    total += q.ApproxSize();
  }
  for (const FrameStack& q : numa_queues_) {
    total += q.ApproxSize();
  }
  // Each queued run counts as kRunFrames. A frame is reachable from exactly
  // one queue — via its run head above, or as a single in the sums before —
  // never both, so runs cannot double-count. Both transitions that move
  // frames across the run/single boundary (AllocRun handing a run out,
  // Alloc's break-run fallback) pop the run *before* any of its frames are
  // republished as singles, so like the batch-migration window the estimate
  // transiently understates across a run boundary; it never inflates.
  for (const FrameStack& q : run_queues_) {
    total += static_cast<uint64_t>(q.ApproxSize()) * kRunFrames;
  }
  return total;
}

}  // namespace aquila
