// Lock-free open-addressing hash table: page key -> cache frame.
//
// This is the structure the paper contrasts with Linux's per-file radix tree
// behind a single lock (§6.5): all cached pages of all mappings live here,
// lookups are wait-free reads, and inserts/removes are single-CAS claims, so
// the shared-file scalability collapse of the baseline cannot happen.
//
// Design (after David et al. [16], "asynchronized concurrency"):
//  - fixed capacity, power of two, linear probing;
//  - slot := { atomic key, atomic value };
//  - insert claims an EMPTY or TOMBSTONE slot by CAS on the key, then
//    publishes the value (readers briefly spin on kValueUnset);
//  - remove stores TOMBSTONE into the key; probes continue past tombstones;
//  - same-page insert/remove races are excluded by the caller (the fault
//    handler holds the per-page VMA entry lock), so the table only needs to
//    be internally consistent across *different* keys.
//
// Capacity is 2x the frame count (load factor <= 0.5), so probe sequences
// stay short and tombstone buildup is bounded by reuse on insert.
#ifndef AQUILA_SRC_CACHE_LOCKFREE_HASH_H_
#define AQUILA_SRC_CACHE_LOCKFREE_HASH_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/util/bitops.h"
#include "src/util/cpu.h"
#include "src/util/logging.h"

namespace aquila {

class LockFreeHash {
 public:
  static constexpr uint64_t kEmptyKey = 0;
  static constexpr uint64_t kTombstoneKey = ~0ull;
  static constexpr uint64_t kValueUnset = ~0ull;

  // `capacity` is rounded up to a power of two. Keys 0 and ~0 are reserved.
  explicit LockFreeHash(uint64_t capacity)
      : capacity_(NextPowerOfTwo(capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {}

  // Inserts key -> value. Returns false if the key is already present.
  // Two-phase: scan the whole probe chain for the key (a tombstone does NOT
  // terminate the chain, so the key may live past one), remembering the
  // first reusable slot; then claim it with a CAS. Same-key concurrency is
  // excluded by the caller (per-page entry lock); racing *different* keys
  // may steal the remembered slot, in which case the scan restarts.
  bool Insert(uint64_t key, uint64_t value) {
    AQUILA_DCHECK(key != kEmptyKey && key != kTombstoneKey);
    uint64_t start = Mix64(key) & mask_;
    while (true) {
      uint64_t claim = capacity_;  // sentinel: none found
      bool saw_empty = false;
      uint64_t index = start;
      for (uint64_t probe = 0; probe < capacity_; probe++, index = (index + 1) & mask_) {
        uint64_t cur = slots_[index].key.load(std::memory_order_acquire);
        if (cur == key) {
          return false;
        }
        if (cur == kTombstoneKey) {
          if (claim == capacity_) {
            claim = index;
          }
        } else if (cur == kEmptyKey) {
          if (claim == capacity_) {
            claim = index;
          }
          saw_empty = true;
          break;
        }
      }
      AQUILA_CHECK(claim != capacity_);  // table full: capacity must exceed frames
      (void)saw_empty;
      Slot& slot = slots_[claim];
      uint64_t expected = slot.key.load(std::memory_order_acquire);
      if ((expected == kEmptyKey || expected == kTombstoneKey) &&
          slot.key.compare_exchange_strong(expected, key, std::memory_order_acq_rel)) {
        slot.value.store(value, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // A concurrent insert of a different key took the slot; rescan.
    }
  }

  // Looks up `key`. Returns true and sets *value on hit.
  bool Lookup(uint64_t key, uint64_t* value) const {
    uint64_t index = Mix64(key) & mask_;
    for (uint64_t probe = 0; probe < capacity_; probe++, index = (index + 1) & mask_) {
      const Slot& slot = slots_[index];
      uint64_t cur = slot.key.load(std::memory_order_acquire);
      if (cur == kEmptyKey) {
        return false;
      }
      if (cur == key) {
        uint64_t v = slot.value.load(std::memory_order_acquire);
        SpinBackoff backoff;
        while (v == kValueUnset) {  // insert in flight: value not yet published
          backoff.Pause();
          v = slot.value.load(std::memory_order_acquire);
        }
        // Re-check the key: the slot may have been removed and reused for a
        // different key between the two loads.
        if (slot.key.load(std::memory_order_acquire) != key) {
          return false;
        }
        *value = v;
        return true;
      }
    }
    return false;
  }

  // Removes `key`. Returns false when absent.
  bool Remove(uint64_t key) {
    uint64_t index = Mix64(key) & mask_;
    for (uint64_t probe = 0; probe < capacity_; probe++, index = (index + 1) & mask_) {
      Slot& slot = slots_[index];
      uint64_t cur = slot.key.load(std::memory_order_acquire);
      if (cur == kEmptyKey) {
        return false;
      }
      if (cur == key) {
        slot.value.store(kValueUnset, std::memory_order_release);
        slot.key.store(kTombstoneKey, std::memory_order_release);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }
  uint64_t capacity() const { return capacity_; }

 private:
  struct Slot {
    std::atomic<uint64_t> key{kEmptyKey};
    std::atomic<uint64_t> value{kValueUnset};
  };

  uint64_t capacity_;
  uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_CACHE_LOCKFREE_HASH_H_
