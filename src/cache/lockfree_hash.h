// Lock-free open-addressing hash table: page key -> cache frame.
//
// This is the structure the paper contrasts with Linux's per-file radix tree
// behind a single lock (§6.5): all cached pages of all mappings live here,
// lookups are wait-free reads, and inserts/removes are single-CAS claims, so
// the shared-file scalability collapse of the baseline cannot happen.
//
// Design (after David et al. [16], "asynchronized concurrency"):
//  - fixed capacity, power of two, linear probing;
//  - slot := { atomic key, atomic value };
//  - insert claims an EMPTY or TOMBSTONE slot by CAS on the key, then
//    publishes the value (readers briefly spin on kValueUnset);
//  - remove unsets the value, THEN stores TOMBSTONE into the key. This store
//    order is load-bearing: an insert reusing the tombstone claims the key
//    with an acquire CAS that happens-after the value unset, so a reader that
//    observes the new key can never observe the removed entry's stale value —
//    it sees kValueUnset (and waits) or the new value. Probes continue past
//    tombstones;
//  - empty slots are never re-created (a removed key only ever becomes a
//    tombstone), so the first EMPTY slot in a probe chain proves the key is
//    absent and every scan — insert, lookup, remove — stops there;
//  - readers that wait out kValueUnset re-validate the key inside the spin
//    loop: a concurrent remove parks the value at kValueUnset before
//    tombstoning the key, and a reader that kept spinning without re-checking
//    the key could wait forever (or return a value for the wrong key once the
//    slot is reused);
//  - same-page insert/remove races are excluded by the caller (the fault
//    handler holds the per-page VMA entry lock), so the table only needs to
//    be internally consistent across *different* keys.
//
// Capacity is 2x the frame count (load factor <= 0.5), so probe sequences
// stay short and tombstone buildup is bounded by reuse on insert.
#ifndef AQUILA_SRC_CACHE_LOCKFREE_HASH_H_
#define AQUILA_SRC_CACHE_LOCKFREE_HASH_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/util/bitops.h"
#include "src/util/cpu.h"
#include "src/util/logging.h"

namespace aquila {

class LockFreeHash {
 public:
  static constexpr uint64_t kEmptyKey = 0;
  static constexpr uint64_t kTombstoneKey = ~0ull;
  static constexpr uint64_t kValueUnset = ~0ull;

  // `capacity` is rounded up to a power of two. Keys 0 and ~0 are reserved.
  explicit LockFreeHash(uint64_t capacity)
      : capacity_(NextPowerOfTwo(capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {}

  // Inserts key -> value. Returns false if the key is already present.
  // Two-phase: scan the whole probe chain for the key (a tombstone does NOT
  // terminate the chain, so the key may live past one), remembering the
  // first reusable slot; then claim it with a CAS. Same-key concurrency is
  // excluded by the caller (per-page entry lock); racing *different* keys
  // may steal the remembered slot, in which case the scan restarts.
  bool Insert(uint64_t key, uint64_t value) {
    AQUILA_DCHECK(key != kEmptyKey && key != kTombstoneKey);
    uint64_t start = Mix64(key) & mask_;
    uint64_t probes = 0;
    while (true) {
      uint64_t claim = capacity_;  // sentinel: none found
      uint64_t index = start;
      for (uint64_t probe = 0; probe < capacity_; probe++, index = (index + 1) & mask_) {
        probes++;
        uint64_t cur = slots_[index].key.load(std::memory_order_acquire);
        if (cur == key) {
          RecordInsertProbes(probes);
          return false;
        }
        if (cur == kTombstoneKey) {
          if (claim == capacity_) {
            claim = index;
          }
        } else if (cur == kEmptyKey) {
          // An EMPTY slot terminates the chain: empties are never re-created
          // (Remove only ever writes tombstones), so no matching key can live
          // past this slot. Claiming here — not probing the rest of the table
          // — is what keeps inserts O(chain) instead of O(capacity).
          if (claim == capacity_) {
            claim = index;
          }
          break;
        }
      }
      AQUILA_CHECK(claim != capacity_);  // table full: capacity must exceed frames
      Slot& slot = slots_[claim];
      uint64_t expected = slot.key.load(std::memory_order_acquire);
      if ((expected == kEmptyKey || expected == kTombstoneKey) &&
          slot.key.compare_exchange_strong(expected, key, std::memory_order_acq_rel)) {
        slot.value.store(value, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        RecordInsertProbes(probes);
        return true;
      }
      // A concurrent insert of a different key took the slot; rescan.
    }
  }

  // Looks up `key`. Returns true and sets *value on hit.
  bool Lookup(uint64_t key, uint64_t* value) const {
    uint64_t index = Mix64(key) & mask_;
    for (uint64_t probe = 0; probe < capacity_; probe++, index = (index + 1) & mask_) {
      const Slot& slot = slots_[index];
      uint64_t cur = slot.key.load(std::memory_order_acquire);
      if (cur == kEmptyKey) {
        return false;
      }
      if (cur == key) {
        uint64_t v = slot.value.load(std::memory_order_acquire);
        SpinBackoff backoff;
        while (v == kValueUnset) {
          // Either an insert is in flight (value not yet published) or a
          // remove parked the value at kValueUnset just before tombstoning
          // the key. Re-validate the key each iteration: without it a racing
          // Remove leaves this loop spinning until the slot is reused — and a
          // reuse for a *different* key would then hand back that key's value.
          if (slot.key.load(std::memory_order_acquire) != key) {
            return false;  // removed (or reused) while we waited
          }
          backoff.Pause();
          v = slot.value.load(std::memory_order_acquire);
        }
        // Re-check the key: the slot may have been removed and reused for a
        // different key between the two loads.
        if (slot.key.load(std::memory_order_acquire) != key) {
          return false;
        }
        *value = v;
        return true;
      }
    }
    return false;
  }

  // Removes `key`. Returns false when absent.
  bool Remove(uint64_t key) {
    uint64_t index = Mix64(key) & mask_;
    for (uint64_t probe = 0; probe < capacity_; probe++, index = (index + 1) & mask_) {
      Slot& slot = slots_[index];
      uint64_t cur = slot.key.load(std::memory_order_acquire);
      if (cur == kEmptyKey) {
        return false;
      }
      if (cur == key) {
        // Protocol order matters: park the value at kValueUnset BEFORE
        // tombstoning the key. An insert that reuses this tombstone claims
        // the key with an acquire CAS ordered after both stores, so readers
        // that observe the new key can only observe kValueUnset (and wait
        // for the insert's publication) — never this entry's stale value.
        // Readers spinning on kValueUnset re-validate the key (see Lookup),
        // which bounds their wait when no insert follows.
        slot.value.store(kValueUnset, std::memory_order_release);
        slot.key.store(kTombstoneKey, std::memory_order_release);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }
  uint64_t capacity() const { return capacity_; }

  // Probe-length accounting for the insert path (the only non-wait-free op:
  // a scan that fails to stop at the first empty slot degrades to
  // O(capacity) and this is how the regression test catches it). Inserts run
  // on the miss path only, so two relaxed adds per insert cost nothing the
  // paper's hit-path scalability claim cares about.
  struct ProbeStats {
    uint64_t insert_calls = 0;
    uint64_t insert_probes = 0;  // total slots examined across all inserts
  };
  ProbeStats probe_stats() const {
    ProbeStats s;
    s.insert_calls = insert_calls_.load(std::memory_order_relaxed);
    s.insert_probes = insert_probes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> key{kEmptyKey};
    std::atomic<uint64_t> value{kValueUnset};
  };

  void RecordInsertProbes(uint64_t probes) {
    insert_calls_.fetch_add(1, std::memory_order_relaxed);
    insert_probes_.fetch_add(probes, std::memory_order_relaxed);
  }

  uint64_t capacity_;                // guarded-by: immutable after construction
  uint64_t mask_;                    // guarded-by: immutable after construction
  std::unique_ptr<Slot[]> slots_;    // guarded-by: immutable after construction
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> insert_calls_{0};
  std::atomic<uint64_t> insert_probes_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_CACHE_LOCKFREE_HASH_H_
