// DeviceQueue: queueing as a first-class BlockDevice capability.
//
// A DeviceQueue is a bounded submission/completion queue over one device,
// the storage-side half of the async writeback/readahead pipeline. The
// contract mirrors the simulation's device model: data moves at submit (the
// bytes are copied to/from the medium immediately) while the completion only
// gates *simulated time* — Poll() reaps completions whose device time has
// passed, and WaitMin()/Drain() advance the caller's clock only when it
// genuinely has nothing else to do. That split is what lets the fault path
// overlap continued fault handling with in-flight writebacks.
//
// Devices whose medium actually overlaps queued commands (NVMe) implement a
// native queue; every other device answers supports_queueing() == false and
// gets the sync-emulation shim (SyncDeviceQueue) from
// BlockDevice::CreateQueue — each op executes through the synchronous public
// entry points at submit time and completes immediately. Same interface, no
// overlap: callers write one pipeline and the device decides whether it
// pays off.
//
// Queues are single-owner (SPDK's queue-pair contract): a caller that shares
// one across threads wraps it in its own lock. The in-flight count is the
// only state readable from other threads (it feeds the depth gauge).
#ifndef AQUILA_SRC_STORAGE_DEVICE_QUEUE_H_
#define AQUILA_SRC_STORAGE_DEVICE_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/util/status.h"
#include "src/vmx/vcpu.h"

namespace aquila {

class BlockDevice;

class DeviceQueue {
 public:
  struct Completion {
    uint64_t user_data = 0;
    Status status;
    // Simulated time the command was submitted / completed on the device.
    // ready_at == submit_at for the sync-emulation shim; the gap is what the
    // caller overlapped with useful work (or paid in WaitMin).
    uint64_t submit_at = 0;
    uint64_t ready_at = 0;
  };

  explicit DeviceQueue(uint32_t depth);
  virtual ~DeviceQueue() = default;

  DeviceQueue(const DeviceQueue&) = delete;
  DeviceQueue& operator=(const DeviceQueue&) = delete;

  virtual const char* name() const = 0;

  // Required offset/size alignment for submissions (native NVMe queues speak
  // whole LBAs; the shim inherits the device's io_alignment()).
  virtual uint64_t io_alignment() const = 0;

  // Queues one operation. The buffer is consumed before returning (data
  // moves at submit), so the caller may not touch it until the matching
  // completion is reaped, but needs no stable request object. Fails with
  // kOutOfSpace when the queue is full (Poll or WaitMin first) and
  // kInvalidArgument for misaligned/out-of-range requests; an I/O error is
  // NOT a submission failure — it travels in the completion's status.
  virtual Status SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                            uint64_t user_data) = 0;
  virtual Status SubmitWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src,
                             uint64_t user_data) = 0;

  // Reaps completions whose device time has passed; appends to `out` and
  // returns how many. Never advances simulated time past "now".
  virtual uint32_t Poll(Vcpu& vcpu, std::vector<Completion>* out) = 0;

  // Earliest outstanding completion time, UINT64_MAX when nothing is queued
  // on the medium (buffered immediate completions report 0: already ready).
  virtual uint64_t NextReadyAt() const = 0;

  // Best-effort cancellation of one in-flight command by its user_data.
  // Returns true when the command was withdrawn and its completion will
  // NEVER be delivered (the watchdog layer uses this to reclaim slots from
  // hung ops). Queues whose medium has already accepted the command — every
  // native and shim queue here, since data moves at submit — return false:
  // the completion still arrives and the caller must reconcile it.
  virtual bool Cancel(uint64_t user_data) {
    (void)user_data;
    return false;
  }

  // Busy-waits (advancing simulated time, charged as device I/O) until at
  // least `min` completions have been reaped into `out` by this call.
  Status WaitMin(Vcpu& vcpu, uint32_t min, std::vector<Completion>* out);

  // Reaps every outstanding completion.
  Status Drain(Vcpu& vcpu, std::vector<Completion>* out);

  uint32_t depth() const { return depth_; }
  uint32_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

 protected:
  bool Full() const { return in_flight() >= depth_; }

  // Bookkeeping hooks implementations call once per submitted command and
  // once per reaped completion. `submit_at` == 0 skips the latency
  // histogram (decorators forwarding an inner queue's completion pass 0 —
  // the inner queue already recorded it).
  void NoteSubmit(uint64_t now);
  void NoteComplete(uint64_t now, uint64_t submit_at);

 private:
  const uint32_t depth_;
  std::atomic<uint32_t> in_flight_{0};
  // Last member: the gauge reads in_flight_, so it unregisters first.
  telemetry::CallbackGroup metrics_;
};

// Sync-emulation shim: the capability fallback for devices whose medium has
// no command queue (pmem is byte-addressable; host files block in the
// kernel). Each submission executes through the device's public synchronous
// entry points — so NVI validation, retry policy, stats, and fault
// injection all still apply — and the completion is buffered ready for the
// next Poll(). The pipeline above sees identical semantics minus the
// overlap.
class SyncDeviceQueue : public DeviceQueue {
 public:
  SyncDeviceQueue(BlockDevice* device, uint32_t depth);

  const char* name() const override { return "sync-shim"; }
  uint64_t io_alignment() const override;

  Status SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                    uint64_t user_data) override;
  Status SubmitWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src,
                     uint64_t user_data) override;
  uint32_t Poll(Vcpu& vcpu, std::vector<Completion>* out) override;
  uint64_t NextReadyAt() const override;

 private:
  BlockDevice* device_;
  std::vector<Completion> done_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_DEVICE_QUEUE_H_
