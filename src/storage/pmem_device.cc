#include "src/storage/pmem_device.h"

#include <sys/mman.h>

#include <cstring>

#include "src/util/bitops.h"
#include "src/util/logging.h"
#include "src/vmx/cost_model.h"

namespace aquila {

PmemDevice::PmemDevice(const Options& options) : options_(options) {
  void* mem = mmap(nullptr, options_.capacity_bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  AQUILA_CHECK(mem != MAP_FAILED);
  base_ = static_cast<uint8_t*>(mem);
}

PmemDevice::~PmemDevice() {
  if (base_ != nullptr) {
    munmap(base_, options_.capacity_bytes);
  }
}

Status PmemDevice::CheckRange(uint64_t offset, uint64_t bytes) const {
  if (offset + bytes > options_.capacity_bytes || offset + bytes < offset) {
    return Status::InvalidArgument("pmem access out of range");
  }
  return Status::Ok();
}

uint64_t PmemDevice::CopyCostCycles(uint64_t bytes) const {
  const CostModel& costs = GlobalCostModel();
  uint64_t per_4k = options_.copy_flavor == CopyFlavor::kStreaming ? costs.memcpy_4k_nt
                                                                   : costs.memcpy_4k_plain;
  uint64_t cost = (bytes * per_4k) / kPageSize;
  if (options_.charge_fpu_state && options_.copy_flavor == CopyFlavor::kStreaming) {
    cost += costs.fpu_save_restore;
  }
  return cost;
}

Status PmemDevice::DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) {
  AQUILA_RETURN_IF_ERROR(CheckRange(offset, dst.size()));
  // Only the transfer occupies the shared channel; the access latency
  // overlaps across concurrent readers.
  uint64_t transfer =
      options_.channel_cycles_per_4k * ((dst.size() + kPageSize - 1) / kPageSize);
  channel_.Acquire(vcpu.clock(), CostCategory::kDeviceIo, transfer);
  vcpu.clock().Charge(CostCategory::kDeviceIo, options_.read_latency_cycles);
  // The CPU performs the copy on byte-addressable devices.
  vcpu.clock().Charge(CostCategory::kMemcpy, CopyCostCycles(dst.size()));
  if (options_.copy_flavor == CopyFlavor::kStreaming && IsAligned(dst.size(), 64) &&
      (reinterpret_cast<uintptr_t>(dst.data()) & 15) == 0 && IsAligned(offset, 16)) {
    NtMemcpy(dst.data(), base_ + offset, dst.size());
  } else {
    std::memcpy(dst.data(), base_ + offset, dst.size());
  }
  return Status::Ok();
}

Status PmemDevice::DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) {
  AQUILA_RETURN_IF_ERROR(CheckRange(offset, src.size()));
  uint64_t transfer =
      options_.channel_cycles_per_4k * ((src.size() + kPageSize - 1) / kPageSize);
  channel_.Acquire(vcpu.clock(), CostCategory::kDeviceIo, transfer);
  vcpu.clock().Charge(CostCategory::kDeviceIo, options_.write_latency_cycles);
  vcpu.clock().Charge(CostCategory::kMemcpy, CopyCostCycles(src.size()));
  if (options_.copy_flavor == CopyFlavor::kStreaming && IsAligned(src.size(), 64) &&
      (reinterpret_cast<uintptr_t>(src.data()) & 15) == 0 && IsAligned(offset, 16)) {
    NtMemcpy(base_ + offset, src.data(), src.size());
  } else {
    std::memcpy(base_ + offset, src.data(), src.size());
  }
  return Status::Ok();
}

}  // namespace aquila
