// io_uring-style asynchronous I/O ring (§3.3 / §7.1).
//
// The paper lists the I/O access methods an Aquila application can choose
// from — synchronous read/write syscalls, asynchronous io_uring/libaio,
// SPDK polling, and mmio — and defers the evaluation of the alternatives to
// future work. This implements the io_uring point in that design space so
// bench_async_io can fill in the comparison:
//
//   * submission ring: the application queues SQEs without entering the
//     kernel; one Submit() (io_uring_enter) syscall launches the whole
//     batch — batching amortizes the kernel entry, the kernel block path is
//     still paid per request;
//   * completion ring: shared memory — harvesting completions costs no
//     syscall at all (the paper's §7.1 description of io_uring);
//   * the latency cost of batching shows up naturally: an SQE's completion
//     time is measured from Submit(), not from Prepare().
//
// The ring drives any BlockDevice through the generic DeviceQueue capability
// (src/storage/device_queue.h). Devices whose medium cannot overlap queued
// commands (supports_queueing() == false) are rejected with kUnimplemented —
// an emulated ring over a synchronous device would report the overlap the
// device cannot deliver, which is exactly the misconfiguration the error
// points at.
#ifndef AQUILA_SRC_STORAGE_ASYNC_IO_H_
#define AQUILA_SRC_STORAGE_ASYNC_IO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/storage/block_device.h"
#include "src/storage/device_queue.h"
#include "src/util/status.h"

namespace aquila {

class AsyncIoRing {
 public:
  struct Options {
    uint32_t queue_depth = 128;
    // Kernel block-layer work per request (cheaper than the synchronous
    // path: no per-request entry/exit, plugging amortizes work).
    uint64_t kernel_per_request_cycles = 2500;
  };

  struct Completion {
    uint64_t user_data = 0;
    Status status;
  };

  AsyncIoRing(BlockDevice& device, const Options& options);

  // Queues an operation (no kernel entry, no simulated cost). Fails when the
  // ring is full (Submit() or Harvest() first), with kUnimplemented when the
  // device does not support queueing, and with kInvalidArgument for requests
  // misaligned to the device queue's LBA contract.
  Status PrepareRead(uint64_t offset, std::span<uint8_t> dst, uint64_t user_data);
  Status PrepareWrite(uint64_t offset, std::span<const uint8_t> src, uint64_t user_data);

  // io_uring_enter: ONE syscall submits everything queued since the last
  // Submit. Returns how many entries were submitted.
  StatusOr<uint32_t> Submit(Vcpu& vcpu);

  // Reaps completions whose device time has passed (no syscall). Appends to
  // `out`; returns the number reaped.
  uint32_t Harvest(Vcpu& vcpu, std::vector<Completion>* out);

  // Busy-waits (advancing simulated time) until at least `min` completions
  // are available, then harvests them.
  Status WaitFor(Vcpu& vcpu, uint32_t min, std::vector<Completion>* out);

  uint32_t prepared() const { return static_cast<uint32_t>(pending_.size()); }
  uint32_t in_flight() const { return queue_ ? queue_->in_flight() : 0; }

 private:
  struct Sqe {
    bool write;
    uint64_t offset;
    uint8_t* buffer;
    uint64_t bytes;
    uint64_t user_data;
  };

  Status CheckQueue() const;
  uint32_t Convert(std::vector<DeviceQueue::Completion>& raw,
                   std::vector<Completion>* out);

  Options options_;
  uint64_t capacity_bytes_;
  std::unique_ptr<DeviceQueue> queue_;  // null when the device can't queue
  Status queue_status_;                 // kUnimplemented explanation when null
  std::vector<Sqe> pending_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_ASYNC_IO_H_
