#include "src/storage/fault_device.h"

#include <algorithm>
#include <cstring>

#include "src/util/sim_clock.h"

namespace aquila {

namespace {

bool Scheduled(const std::vector<uint64_t>& triggers, uint64_t attempt) {
  return std::find(triggers.begin(), triggers.end(), attempt) != triggers.end();
}

}  // namespace

FaultInjectingDevice::FaultInjectingDevice(BlockDevice* inner, const Options& options)
    : inner_(inner), options_(options), rng_(options.seed) {
  metrics_.AddCounter("aquila.storage.injected_faults", fault_stats_.total_injected);
}

FaultInjectingDevice::Verdict FaultInjectingDevice::ShouldFail(OpKind kind, uint64_t req_size,
                                                               uint64_t* spike_cycles,
                                                               uint64_t* torn_prefix) {
  *spike_cycles = 0;
  *torn_prefix = 0;
  std::lock_guard<std::mutex> lock(mu_);

  uint64_t attempt = 0;
  double rate = 0.0;
  switch (kind) {
    case OpKind::kRead:
      attempt = ++read_attempts_;
      rate = options_.read_error_rate;
      break;
    case OpKind::kWrite:
      attempt = ++write_attempts_;
      rate = options_.write_error_rate;
      break;
    case OpKind::kFlush:
      attempt = ++flush_attempts_;
      rate = options_.flush_error_rate;
      break;
  }

  const std::vector<uint64_t>& triggers = kind == OpKind::kRead    ? options_.fail_reads
                                          : kind == OpKind::kWrite ? options_.fail_writes
                                                                   : options_.fail_flushes;
  bool fail = Scheduled(triggers, attempt);
  // The probability draw happens whenever a rate is configured so the rng
  // stream stays aligned across runs regardless of which branch fires.
  if (rate > 0.0 && rng_.NextDouble() < rate) {
    fail = true;
  }

  if (fail) {
    if (kind == OpKind::kWrite && options_.torn_writes && req_size > 0) {
      const uint64_t align = io_alignment();
      *torn_prefix = rng_.Uniform(req_size) / align * align;
    }
    return Verdict::kFail;
  }
  // Hang check after the error check: a command must survive the error roll
  // before it can wedge. Draws only happen when configured, so existing
  // seeds' rng streams are unchanged.
  if (kind != OpKind::kFlush) {
    const std::vector<uint64_t>& hang_triggers =
        kind == OpKind::kRead ? options_.hang_reads : options_.hang_writes;
    bool hang = Scheduled(hang_triggers, attempt);
    if (options_.hang_rate > 0.0 && rng_.NextDouble() < options_.hang_rate) {
      hang = true;
    }
    if (hang) {
      return Verdict::kHang;
    }
  }
  if (options_.latency_spike_rate > 0.0 && rng_.NextDouble() < options_.latency_spike_rate) {
    *spike_cycles = options_.latency_spike_cycles;
  }
  // An active brownout window slows every completing op, error-free.
  *spike_cycles += brownout_extra_cycles_.load(std::memory_order_relaxed);
  return Verdict::kOk;
}

Status FaultInjectingDevice::DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) {
  if (offline()) {
    return Status::IoError("device offline (power cut)");
  }
  uint64_t spike = 0, torn = 0;
  Verdict verdict = ShouldFail(OpKind::kRead, dst.size(), &spike, &torn);
  if (verdict == Verdict::kHang) {
    // The sync path cannot block forever: model the hang as a bounded stall
    // on the medium followed by the driver's abort.
    fault_stats_.injected_hangs.fetch_add(1, std::memory_order_relaxed);
    fault_stats_.total_injected.fetch_add(1, std::memory_order_relaxed);
    vcpu.clock().Charge(CostCategory::kDeviceIo, options_.sync_hang_stall_cycles);
    return Status::IoError("injected hang (sync path: stalled then aborted)");
  }
  if (verdict == Verdict::kFail) {
    fault_stats_.injected_read_errors.fetch_add(1, std::memory_order_relaxed);
    fault_stats_.total_injected.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected read error");
  }
  if (spike != 0) {
    fault_stats_.latency_spikes.fetch_add(1, std::memory_order_relaxed);
    vcpu.clock().Charge(CostCategory::kDeviceIo, spike);
  }
  AQUILA_RETURN_IF_ERROR(inner_->Read(vcpu, offset, dst));
  if (options_.buffer_unflushed_writes) {
    std::lock_guard<std::mutex> lock(mu_);
    OverlayPatchLocked(offset, dst);
  }
  return Status::Ok();
}

Status FaultInjectingDevice::DoWrite(Vcpu& vcpu, uint64_t offset,
                                     std::span<const uint8_t> src) {
  if (offline()) {
    return Status::IoError("device offline (power cut)");
  }
  uint64_t spike = 0, torn = 0;
  Verdict verdict = ShouldFail(OpKind::kWrite, src.size(), &spike, &torn);
  if (verdict == Verdict::kHang) {
    fault_stats_.injected_hangs.fetch_add(1, std::memory_order_relaxed);
    fault_stats_.total_injected.fetch_add(1, std::memory_order_relaxed);
    vcpu.clock().Charge(CostCategory::kDeviceIo, options_.sync_hang_stall_cycles);
    return Status::IoError("injected hang (sync path: stalled then aborted)");
  }
  if (verdict == Verdict::kFail) {
    if (torn != 0) {
      fault_stats_.torn_writes.fetch_add(1, std::memory_order_relaxed);
      if (options_.buffer_unflushed_writes) {
        std::lock_guard<std::mutex> lock(mu_);
        OverlayInsertLocked(offset, src.first(torn));
      } else {
        // Best effort: the prefix reaches the medium even though the
        // request as a whole is reported failed.
        (void)inner_->Write(vcpu, offset, src.first(torn));
      }
    }
    fault_stats_.injected_write_errors.fetch_add(1, std::memory_order_relaxed);
    fault_stats_.total_injected.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected write error");
  }
  if (spike != 0) {
    fault_stats_.latency_spikes.fetch_add(1, std::memory_order_relaxed);
    vcpu.clock().Charge(CostCategory::kDeviceIo, spike);
  }
  if (options_.buffer_unflushed_writes) {
    std::lock_guard<std::mutex> lock(mu_);
    OverlayInsertLocked(offset, src);
    // Charge the transfer as if it hit the device's volatile write cache.
    vcpu.clock().Charge(CostCategory::kDeviceIo, 1);
    return Status::Ok();
  }
  return inner_->Write(vcpu, offset, src);
}

Status FaultInjectingDevice::DoFlush(Vcpu& vcpu) {
  if (offline()) {
    return Status::IoError("device offline (power cut)");
  }
  uint64_t spike = 0, torn = 0;
  if (ShouldFail(OpKind::kFlush, 0, &spike, &torn) == Verdict::kFail) {
    fault_stats_.injected_flush_errors.fetch_add(1, std::memory_order_relaxed);
    fault_stats_.total_injected.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected flush error");
  }
  if (spike != 0) {
    fault_stats_.latency_spikes.fetch_add(1, std::memory_order_relaxed);
    vcpu.clock().Charge(CostCategory::kDeviceIo, spike);
  }
  if (options_.buffer_unflushed_writes) {
    std::lock_guard<std::mutex> lock(mu_);
    AQUILA_RETURN_IF_ERROR(ApplyOverlayLocked(vcpu));
  }
  return inner_->Flush(vcpu);
}

std::unique_ptr<DeviceQueue> FaultInjectingDevice::CreateQueue(uint32_t depth) {
  if (!supports_queueing()) {
    // Shim over THIS device (not the inner one) so every op still funnels
    // through DoRead/DoWrite — injection and the write-cache overlay apply.
    return BlockDevice::CreateQueue(depth);
  }
  return std::make_unique<FaultInjectingQueue>(this, inner_->CreateQueue(depth));
}

FaultInjectingQueue::FaultInjectingQueue(FaultInjectingDevice* device,
                                         std::unique_ptr<DeviceQueue> inner)
    : DeviceQueue(inner->depth()), device_(device), inner_(std::move(inner)) {}

void FaultInjectingQueue::BufferFailure(Vcpu& vcpu, uint64_t user_data, Status status) {
  uint64_t now = vcpu.clock().Now();
  NoteSubmit(now);
  failed_.push_back(Completion{user_data, std::move(status), now, now});
}

Status FaultInjectingQueue::SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                                       uint64_t user_data) {
  if (Full()) {
    return Status::OutOfSpace("device queue full");
  }
  if (device_->offline()) {
    BufferFailure(vcpu, user_data, Status::IoError("device offline (power cut)"));
    return Status::Ok();
  }
  uint64_t spike = 0, torn = 0;
  FaultInjectingDevice::Verdict verdict =
      device_->ShouldFail(FaultInjectingDevice::OpKind::kRead, dst.size(), &spike, &torn);
  if (verdict == FaultInjectingDevice::Verdict::kHang) {
    // Swallowed before the medium: accepted, in flight, never completes.
    device_->fault_stats_.injected_hangs.fetch_add(1, std::memory_order_relaxed);
    device_->fault_stats_.total_injected.fetch_add(1, std::memory_order_relaxed);
    hung_.emplace(user_data, vcpu.clock().Now());
    NoteSubmit(vcpu.clock().Now());
    return Status::Ok();
  }
  if (verdict == FaultInjectingDevice::Verdict::kFail) {
    device_->fault_stats_.injected_read_errors.fetch_add(1, std::memory_order_relaxed);
    device_->fault_stats_.total_injected.fetch_add(1, std::memory_order_relaxed);
    BufferFailure(vcpu, user_data, Status::IoError("injected read error"));
    return Status::Ok();
  }
  AQUILA_RETURN_IF_ERROR(inner_->SubmitRead(vcpu, offset, dst, user_data));
  if (spike != 0) {
    // The spike is extra media time on this command, not CPU time on the
    // submitter: it surfaces as a later ready_at when the completion reaps,
    // so the async path overlaps it like any other device latency.
    device_->fault_stats_.latency_spikes.fetch_add(1, std::memory_order_relaxed);
    spike_cycles_[user_data] = spike;
  }
  NoteSubmit(vcpu.clock().Now());
  return Status::Ok();
}

Status FaultInjectingQueue::SubmitWrite(Vcpu& vcpu, uint64_t offset,
                                        std::span<const uint8_t> src, uint64_t user_data) {
  if (Full()) {
    return Status::OutOfSpace("device queue full");
  }
  if (device_->offline()) {
    BufferFailure(vcpu, user_data, Status::IoError("device offline (power cut)"));
    return Status::Ok();
  }
  uint64_t spike = 0, torn = 0;
  FaultInjectingDevice::Verdict verdict =
      device_->ShouldFail(FaultInjectingDevice::OpKind::kWrite, src.size(), &spike, &torn);
  if (verdict == FaultInjectingDevice::Verdict::kHang) {
    // Swallowed before the medium: the data is lost unless the caller's
    // watchdog retries the command after cancelling this one.
    device_->fault_stats_.injected_hangs.fetch_add(1, std::memory_order_relaxed);
    device_->fault_stats_.total_injected.fetch_add(1, std::memory_order_relaxed);
    hung_.emplace(user_data, vcpu.clock().Now());
    NoteSubmit(vcpu.clock().Now());
    return Status::Ok();
  }
  if (verdict == FaultInjectingDevice::Verdict::kFail) {
    if (torn != 0) {
      device_->fault_stats_.torn_writes.fetch_add(1, std::memory_order_relaxed);
      // Best effort: the prefix reaches the medium even though the command
      // is reported failed in its completion.
      (void)device_->inner_->Write(vcpu, offset, src.first(torn));
    }
    device_->fault_stats_.injected_write_errors.fetch_add(1, std::memory_order_relaxed);
    device_->fault_stats_.total_injected.fetch_add(1, std::memory_order_relaxed);
    BufferFailure(vcpu, user_data, Status::IoError("injected write error"));
    return Status::Ok();
  }
  AQUILA_RETURN_IF_ERROR(inner_->SubmitWrite(vcpu, offset, src, user_data));
  if (spike != 0) {
    // As in SubmitRead: the spike extends the command's completion, it does
    // not block the submitter.
    device_->fault_stats_.latency_spikes.fetch_add(1, std::memory_order_relaxed);
    spike_cycles_[user_data] = spike;
  }
  NoteSubmit(vcpu.clock().Now());
  return Status::Ok();
}

uint32_t FaultInjectingQueue::Poll(Vcpu& vcpu, std::vector<Completion>* out) {
  uint64_t now = vcpu.clock().Now();
  uint32_t reaped = static_cast<uint32_t>(failed_.size());
  for (Completion& c : failed_) {
    NoteComplete(now, c.submit_at);
    out->push_back(std::move(c));
  }
  failed_.clear();
  std::vector<Completion> inner_done;
  inner_->Poll(vcpu, &inner_done);
  for (Completion& c : inner_done) {
    auto spike = spike_cycles_.find(c.user_data);
    if (spike != spike_cycles_.end()) {
      // The injected spike extended this command's media time; hold the
      // completion back until the extended deadline passes. delayed_ is
      // kept sorted by the extended ready_at so spiked completions release
      // in deadline order, not submission order.
      c.ready_at += spike->second;
      spike_cycles_.erase(spike);
      if (c.ready_at > now) {
        auto pos = std::upper_bound(
            delayed_.begin(), delayed_.end(), c,
            [](const Completion& a, const Completion& b) { return a.ready_at < b.ready_at; });
        delayed_.insert(pos, std::move(c));
        continue;
      }
    }
    // submit_at == 0: the inner queue already recorded this completion's
    // latency; only the in-flight count changes at this layer.
    NoteComplete(now, 0);
    reaped++;
    out->push_back(std::move(c));
  }
  // Sorted by ready_at, so draining from the front releases strictly in
  // deadline order.
  auto it = delayed_.begin();
  while (it != delayed_.end() && it->ready_at <= now) {
    NoteComplete(now, 0);
    reaped++;
    out->push_back(std::move(*it));
    ++it;
  }
  delayed_.erase(delayed_.begin(), it);
  return reaped;
}

bool FaultInjectingQueue::Cancel(uint64_t user_data) {
  auto it = hung_.find(user_data);
  if (it == hung_.end()) {
    // Anything that reached the inner queue (or the failure buffer) will
    // still deliver a completion; the caller must reconcile it.
    return false;
  }
  hung_.erase(it);
  // The command is gone for good: balance its NoteSubmit. submit_at == 0
  // keeps it out of the latency histogram.
  NoteComplete(0, 0);
  return true;
}

uint64_t FaultInjectingQueue::NextReadyAt() const {
  if (!failed_.empty()) {
    return 0;
  }
  uint64_t next = inner_->NextReadyAt();
  for (const Completion& c : delayed_) {
    next = std::min(next, c.ready_at);
  }
  return next;
}

void FaultInjectingDevice::PowerCut() {
  std::lock_guard<std::mutex> lock(mu_);
  overlay_.clear();
  offline_.store(true, std::memory_order_release);
}

void FaultInjectingDevice::Revive() { offline_.store(false, std::memory_order_release); }

void FaultInjectingDevice::set_read_error_rate(double rate) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.read_error_rate = rate;
}

void FaultInjectingDevice::set_write_error_rate(double rate) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.write_error_rate = rate;
}

void FaultInjectingDevice::set_hang_rate(double rate) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.hang_rate = rate;
}

void FaultInjectingDevice::OverlayInsertLocked(uint64_t offset, std::span<const uint8_t> src) {
  if (src.empty()) {
    return;
  }
  const uint64_t end = offset + src.size();
  // Trim the extent starting before `offset` that overlaps the new range.
  auto it = overlay_.lower_bound(offset);
  if (it != overlay_.begin()) {
    auto prev = std::prev(it);
    const uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end > offset) {
      if (prev_end > end) {
        std::vector<uint8_t> tail(prev->second.begin() + static_cast<ptrdiff_t>(end - prev->first),
                                  prev->second.end());
        overlay_.emplace(end, std::move(tail));
      }
      prev->second.resize(offset - prev->first);
    }
  }
  // Drop or split extents starting inside the new range.
  it = overlay_.lower_bound(offset);
  while (it != overlay_.end() && it->first < end) {
    const uint64_t it_end = it->first + it->second.size();
    if (it_end <= end) {
      it = overlay_.erase(it);
    } else {
      std::vector<uint8_t> tail(it->second.begin() + static_cast<ptrdiff_t>(end - it->first),
                                it->second.end());
      overlay_.erase(it);
      overlay_.emplace(end, std::move(tail));
      break;
    }
  }
  overlay_.emplace(offset, std::vector<uint8_t>(src.begin(), src.end()));
}

void FaultInjectingDevice::OverlayPatchLocked(uint64_t offset, std::span<uint8_t> dst) const {
  const uint64_t end = offset + dst.size();
  auto it = overlay_.upper_bound(offset);
  if (it != overlay_.begin()) {
    --it;
  }
  for (; it != overlay_.end() && it->first < end; ++it) {
    const uint64_t it_end = it->first + it->second.size();
    if (it_end <= offset) {
      continue;
    }
    const uint64_t lo = std::max(offset, it->first);
    const uint64_t hi = std::min(end, it_end);
    std::memcpy(dst.data() + (lo - offset), it->second.data() + (lo - it->first), hi - lo);
  }
}

Status FaultInjectingDevice::ApplyOverlayLocked(Vcpu& vcpu) {
  auto it = overlay_.begin();
  while (it != overlay_.end()) {
    AQUILA_RETURN_IF_ERROR(inner_->Write(vcpu, it->first, it->second));
    it = overlay_.erase(it);
  }
  return Status::Ok();
}

}  // namespace aquila
