// SPDK-style user-space NVMe model (§3.3 "Direct access to NVMe").
//
// Aquila maps NVMe configuration registers into non-root ring 0 and drives
// the device through SPDK: per-thread submission/completion queue pairs,
// doorbell writes, and polled completions — no syscall, no interrupt. This
// model reproduces that machinery:
//
//   NvmeController — the device: a flash image, timing parameters calibrated
//       to the paper's Intel Optane P4800X (~10 us access latency, ~500 K
//       random 4 KB IOPS), and a channel modeled as a serialized resource so
//       concurrent queues observe bandwidth saturation and queueing.
//   NvmeQueuePair  — single-owner (per-core) SQ/CQ pair with a bounded ring:
//       Submit() books media time and returns a command id; Poll()/Wait()
//       reap completions, advancing the caller's simulated clock (polling
//       burns CPU, charged to kDeviceIo as on real SPDK).
//   NvmeDevice     — synchronous BlockDevice facade over per-core queue
//       pairs; WriteBatch overlaps an eviction batch on the queue before
//       draining it, which is where mmio writeback gets its batching win.
//
// Data movement is real (the flash image holds the bytes); only timing is
// modeled.
#ifndef AQUILA_SRC_STORAGE_NVME_DEVICE_H_
#define AQUILA_SRC_STORAGE_NVME_DEVICE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/storage/block_device.h"
#include "src/storage/device_queue.h"
#include "src/util/cpu.h"
#include "src/util/sim_clock.h"
#include "src/util/spinlock.h"

namespace aquila {

enum class NvmeOpcode : uint8_t {
  kFlush = 0x00,
  kWrite = 0x01,
  kRead = 0x02,
};

struct NvmeCommand {
  NvmeOpcode opcode = NvmeOpcode::kFlush;
  uint64_t slba = 0;   // starting LBA (512-byte blocks)
  uint32_t nlb = 0;    // number of blocks
  void* prp = nullptr; // data buffer
};

class NvmeController {
 public:
  static constexpr uint64_t kLbaSize = 512;

  struct Options {
    uint64_t capacity_bytes = 1ull << 30;
    // Media latency per command (~10 us at 2.4 GHz).
    uint64_t read_latency_cycles = 24000;
    uint64_t write_latency_cycles = 24000;
    // Channel occupancy per 4 KB transferred (~500 K IOPS -> 2 us -> 4800).
    uint64_t channel_cycles_per_4k = 4800;
    // CPU cost of building a descriptor + doorbell write (SPDK submit path)
    // and of reaping one completion.
    uint64_t submit_cost_cycles = 200;
    uint64_t complete_cost_cycles = 150;
    uint32_t queue_depth = 128;
  };

  explicit NvmeController(const Options& options);
  ~NvmeController();

  NvmeController(const NvmeController&) = delete;
  NvmeController& operator=(const NvmeController&) = delete;

  const Options& options() const { return options_; }
  uint64_t capacity_bytes() const { return options_.capacity_bytes; }
  uint8_t* flash() { return flash_; }

  // Books media/channel time for one command; returns its completion time.
  uint64_t ReserveMedia(uint64_t arrival, NvmeOpcode opcode, uint64_t bytes);

 private:
  Options options_;
  uint8_t* flash_ = nullptr;
  SerializedResource channel_;
};

// One SQ/CQ pair. Single-owner: not thread-safe (SPDK's contract).
class NvmeQueuePair {
 public:
  NvmeQueuePair(NvmeController* controller, uint32_t depth);

  // Submits a command. Fails with OutOfSpace when the ring is full (caller
  // must Poll first). Returns the command id.
  StatusOr<uint16_t> Submit(Vcpu& vcpu, const NvmeCommand& cmd);

  // Reaps completions whose media time has passed; returns how many.
  // Non-blocking with respect to simulated time.
  int Poll(Vcpu& vcpu);

  // Busy-polls (advancing simulated time) until command `cid` completes.
  Status Wait(Vcpu& vcpu, uint16_t cid);

  // Drains every outstanding command.
  Status WaitAll(Vcpu& vcpu);

  uint32_t outstanding() const { return outstanding_; }
  uint32_t depth() const { return depth_; }

 private:
  struct Slot {
    bool in_use = false;
    bool done = false;
    uint16_t cid = 0;
    uint64_t ready_at = 0;
  };

  NvmeController* controller_;
  uint32_t depth_;
  uint32_t outstanding_ = 0;
  uint16_t next_cid_ = 1;
  std::vector<Slot> slots_;
};

// Native DeviceQueue over one NvmeController: the SPDK queue-pair model
// behind the generic submission/completion interface. Submit charges the
// doorbell cost and books media time; Poll charges the per-completion reap
// cost once the media is done. Single-owner, like NvmeQueuePair.
class NvmeDeviceQueue : public DeviceQueue {
 public:
  NvmeDeviceQueue(NvmeController* controller, uint32_t depth);

  const char* name() const override { return "nvme"; }
  uint64_t io_alignment() const override { return NvmeController::kLbaSize; }

  Status SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                    uint64_t user_data) override;
  Status SubmitWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src,
                     uint64_t user_data) override;
  uint32_t Poll(Vcpu& vcpu, std::vector<Completion>* out) override;
  uint64_t NextReadyAt() const override;

 private:
  struct Slot {
    bool in_use = false;
    uint64_t user_data = 0;
    uint64_t submit_at = 0;
    uint64_t ready_at = 0;
  };

  Status Submit(Vcpu& vcpu, NvmeOpcode opcode, uint64_t offset, uint8_t* buffer,
                uint64_t bytes, uint64_t user_data);

  NvmeController* controller_;
  std::vector<Slot> slots_;
};

// Synchronous BlockDevice facade over per-core queue pairs (SPDK path: no
// syscalls, direct device access from non-root ring 0).
class NvmeDevice : public BlockDevice {
 public:
  explicit NvmeDevice(NvmeController* controller);

  const char* name() const override { return "nvme"; }
  uint64_t capacity_bytes() const override { return controller_->capacity_bytes(); }
  // Byte-granular at this interface: partial LBAs are bounced internally
  // (read-modify-write), exactly like the kernel's block layer.
  uint64_t io_alignment() const override { return 1; }

  bool supports_queueing() const override { return true; }
  std::unique_ptr<DeviceQueue> CreateQueue(uint32_t depth) override;

 protected:
  Status DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) override;
  Status DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) override;
  Status DoWriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                      std::span<const uint8_t* const> pages, uint64_t page_bytes) override;
  Status DoReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                     std::span<uint8_t* const> pages, uint64_t page_bytes) override;

 private:
  NvmeQueuePair& QueueForThisCore();

  NvmeController* controller_;
  SpinLock qp_lock_;
  std::array<std::unique_ptr<NvmeQueuePair>, CoreRegistry::kMaxCores> qps_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_NVME_DEVICE_H_
