// Per-device health tracking and the hang-robust watchdog queue decorator.
//
// PR 2 hardened the storage stack against I/O that *fails* (error returns,
// torn writes, crash consistency); this layer hardens it against I/O that
// *stalls* — commands that never complete (firmware hang), complete 10-100x
// late (brownout), or flap between the two. Both pieces sit at the
// DeviceQueue seam so every backend (native NVMe queue, sync-emulation shim,
// fault decorator) inherits them:
//
//   - DeviceHealth: one per BlockDevice. A sliding window over recent op
//     outcomes (ok / error / timeout) drives a five-state machine
//       healthy -> suspect -> degraded -> failed -> probing -> healthy
//     acting as a circuit breaker: `degraded` sheds read-ahead and caps the
//     effective queue depth; `failed` fails submissions fast (kUnavailable,
//     no timeout wait) so the existing writeback_failure_limit machinery
//     flips affected regions into degraded-read-only mode; after a probe
//     interval the next submission is let through as a probe whose outcome
//     either re-admits the device or re-opens the breaker. Passive until
//     Enable() — the default build records nothing and sheds nothing.
//
//   - WatchdogQueue: a DeviceQueue decorator created by the async engine
//     when Options::device_op_timeout_us > 0. Every submission carries a
//     sim-clock deadline; the reaper-side sweep in Poll() detects overdue
//     ops, withdraws hung commands (Cancel) or abandons them to complete as
//     discarded zombies, and retries with capped exponential backoff plus
//     decorrelated jitter before synthesizing a kDeadlineExceeded
//     completion. Reads can additionally be hedged: a second submission
//     into a side buffer after a p99-based delay, first completion wins,
//     the loser is reconciled (discarded, or memcpy'd over on a hedge win).
//     NextReadyAt() always reports the earliest deadline/backoff expiry, so
//     WaitMin/Drain keep advancing simulated time past a hung command
//     instead of wedging the faulting core.
//
// Neither piece exists on the hot path unless opted in: with the timeout at
// its default 0 the engine uses the raw device queue and DeviceHealth stays
// disabled, so simulated metrics are bit-identical to the pre-watchdog
// pipeline.
#ifndef AQUILA_SRC_STORAGE_DEVICE_HEALTH_H_
#define AQUILA_SRC_STORAGE_DEVICE_HEALTH_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/device_queue.h"
#include "src/telemetry/metrics.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace aquila {

class DeviceHealth {
 public:
  enum class State : uint8_t {
    kHealthy = 0,
    kSuspect,   // elevated error/timeout rate; observe only
    kDegraded,  // shed read-ahead, cap queue depth
    kFailed,    // breaker open: fail fast, wait for the probe interval
    kProbing,   // one op in flight as the re-admission probe
  };
  enum class Outcome : uint8_t { kOk = 0, kError, kTimeout };

  struct Options {
    // Sliding outcome window (op count). Rates below are computed over it.
    uint32_t window_ops = 32;
    // No upward state transition before this many samples are in the window
    // (one unlucky first op must not open the breaker).
    uint32_t min_samples = 8;
    double suspect_threshold = 0.125;
    double degraded_threshold = 0.375;
    double failed_threshold = 0.625;
    // Simulated cycles after entering kFailed before the next submission is
    // admitted as a probe.
    uint64_t probe_interval_cycles = 2'400'000;  // 1ms at 2.4GHz
    // kDegraded caps the effective queue depth to depth / divisor (min 1).
    uint32_t degraded_depth_divisor = 4;
  };

  struct Stats {
    std::atomic<uint64_t> timeouts{0};        // watchdog deadlines that fired
    std::atomic<uint64_t> watchdog_retries{0};
    std::atomic<uint64_t> abandoned{0};       // ops given up as kDeadlineExceeded
    std::atomic<uint64_t> hedges{0};          // hedge reads submitted
    std::atomic<uint64_t> hedge_wins{0};      // hedge completed before primary
    std::atomic<uint64_t> fail_fast{0};       // submissions short-circuited
    std::atomic<uint64_t> probes{0};          // ops admitted as probes
    std::atomic<uint64_t> state_changes{0};
  };

  DeviceHealth();
  ~DeviceHealth();

  DeviceHealth(const DeviceHealth&) = delete;
  DeviceHealth& operator=(const DeviceHealth&) = delete;

  // Arms outcome recording and the circuit breaker. Idempotent; later calls
  // update the thresholds. Until enabled every query answers "healthy".
  void Enable(const Options& options);
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  // Shown in the /health endpoint next to the state (set once, first wins).
  // After the first successful set this is a lock-free no-op, so callers may
  // invoke it on every access without adding hot-path mutex traffic.
  void set_label(const char* label);

  // Feeds the sliding window and advances the state machine. `now` is the
  // recording thread's simulated time (timestamps only order the window).
  void RecordOutcome(uint64_t now, Outcome outcome);

  // Circuit breaker check at submit. True: fail the op fast (kUnavailable)
  // without touching the device. When the probe interval has elapsed the
  // state flips to kProbing and this returns false — the caller's op goes
  // through as the probe and its outcome decides re-admission.
  bool ShouldFailFast(uint64_t now);

  State state() const { return state_.load(std::memory_order_acquire); }
  // False while degraded/failed/probing: speculative prefetch is the first
  // load a sick device should shed.
  bool allows_readahead() const;
  // Effective queue depth under the current state (full_depth when healthy).
  uint32_t CapDepth(uint32_t full_depth) const;

  // Sim time at which a kFailed device admits its next probe (0 when the
  // breaker is not open). Per-thread clocks diverge, so a recovering caller
  // whose own clock lags the thread that tripped the breaker can idle up to
  // this point instead of guessing how far ahead that thread ran.
  uint64_t probe_due_at() const;

  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

  // One JSON object for the /health endpoint.
  std::string ToJson() const;

  static const char* StateName(State state);

 private:
  void TransitionLocked(State next);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> label_set_{false};  // fast-path guard for set_label
  std::atomic<State> state_{State::kHealthy};
  Stats stats_;

  mutable std::mutex mu_;
  Options options_;            // guarded by mu_
  std::deque<Outcome> window_;  // guarded by mu_
  uint32_t window_bad_ = 0;     // errors+timeouts currently in window_
  uint64_t failed_at_ = 0;      // sim time kFailed was entered
  std::string label_;           // guarded by mu_
  // Last member: the gauge reads state_, so it unregisters first.
  telemetry::CallbackGroup metrics_;
};

// Serializes every live DeviceHealth instance for the stats server's
// /health route (registered as the telemetry-layer health provider).
std::string DeviceHealthRegistryJson();

// DeviceQueue decorator implementing the completion watchdog (deadlines,
// retries with backoff+jitter, hedged reads) on top of any inner queue.
// Single-owner like every DeviceQueue; the async engine's lock serializes
// all calls.
class WatchdogQueue : public DeviceQueue {
 public:
  struct Options {
    // Per-attempt completion deadline in simulated cycles (> 0).
    uint64_t timeout_cycles = 0;
    // Total submissions per op, the first included.
    uint32_t max_attempts = 3;
    // Retry backoff: decorrelated jitter in [base, min(cap, 3*prev)].
    uint64_t backoff_base_cycles = 20'000;
    uint64_t backoff_cap_cycles = 2'000'000;
    // Jitter seed (deterministic runs; vary for different schedules).
    uint64_t jitter_seed = 0x77a7c0de;
    // Hedged reads: after a p99-based delay, submit the read a second time
    // into a side buffer; first completion wins, the loser is discarded.
    bool hedge_reads = false;
    // Floor for the hedge delay while the latency reservoir warms up.
    uint64_t hedge_min_delay_cycles = 48'000;  // 20us at 2.4GHz
  };

  WatchdogQueue(DeviceHealth* health, std::unique_ptr<DeviceQueue> inner,
                const Options& options);
  ~WatchdogQueue() override;

  const char* name() const override { return "watchdog"; }
  uint64_t io_alignment() const override { return inner_->io_alignment(); }

  Status SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                    uint64_t user_data) override;
  Status SubmitWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src,
                     uint64_t user_data) override;
  uint32_t Poll(Vcpu& vcpu, std::vector<Completion>* out) override;
  uint64_t NextReadyAt() const override;

 private:
  struct Op {
    bool is_read = false;
    uint64_t offset = 0;
    uint64_t user_data = 0;  // caller's tag, returned in the completion
    std::span<uint8_t> read_dst;
    std::span<const uint8_t> write_src;
    uint64_t first_submit_at = 0;
    uint64_t deadline = 0;      // active while at least one leg is in flight
    uint64_t resubmit_at = 0;   // nonzero: waiting out backoff before a retry
    uint64_t backoff = 0;       // previous backoff (decorrelated jitter state)
    uint32_t attempts = 0;      // submissions so far (legs, retries included)
    uint32_t outstanding = 0;   // legs in flight on the inner queue
    bool hedged = false;        // a hedge leg was issued for this op
    bool done = false;          // caller completion delivered; legs are zombies
    bool has_error = false;     // stashed failure awaiting the last leg
    Status error;
    std::vector<uint8_t> hedge_buf;  // hedge leg's side buffer
  };
  struct Leg {
    uint64_t op_id = 0;
    bool is_hedge = false;
  };

  Status SubmitOp(Vcpu& vcpu, bool is_read, uint64_t offset, std::span<uint8_t> dst,
                  std::span<const uint8_t> src, uint64_t user_data);
  // Issues one leg of `op` on the inner queue (initial, retry, or hedge).
  Status SubmitLeg(Vcpu& vcpu, uint64_t op_id, Op& op, bool hedge);
  void HandleInnerCompletion(Vcpu& vcpu, const Completion& c, uint64_t now);
  // Deadline/backoff/hedge sweep: the reaper-side watchdog.
  void Sweep(Vcpu& vcpu, uint64_t now);
  void FinishOp(uint64_t op_id, Op& op, Completion completion, uint64_t now);
  void MaybeEraseOp(uint64_t op_id, const Op& op);
  uint64_t NextBackoff(Op& op);
  uint64_t HedgeDelay() const;
  uint32_t EffectiveDepth() const;

  DeviceHealth* health_;
  std::unique_ptr<DeviceQueue> inner_;
  Options options_;
  uint64_t next_op_ = 1;
  uint64_t next_token_ = 1;   // inner user_data; fresh per leg so a stale
                              // completion can never match a retry
  Rng jitter_;                // decorrelated-jitter draws (deterministic)
  std::map<uint64_t, Op> ops_;      // op_id -> op
  std::map<uint64_t, Leg> tokens_;  // inner token -> leg
  std::vector<Completion> ready_;   // synthesized completions (fail-fast,
                                    // abandoned) awaiting the next Poll
  std::vector<uint64_t> latencies_; // recent ok-completion cycles (p99 feed)
  size_t latency_next_ = 0;
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_DEVICE_HEALTH_H_
