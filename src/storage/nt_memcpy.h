// Page-sized memory copies, with a non-temporal (streaming) variant.
//
// §3.3 of the paper: the Linux kernel cannot use SIMD in memcpy without a
// costly FPU state save/restore, so kernel copies of 4 KB cost ~2400 cycles;
// Aquila uses AVX2 streaming stores (cache-bypassing) for ~900 cycles plus
// a 300-cycle FPU save/restore paid only on faults that actually copy.
// We implement the streaming copy with SSE2 _mm_stream_si128 (guaranteed on
// x86-64; AVX2 is used when the compiler targets it) and measure both
// variants in bench_memcpy.
#ifndef AQUILA_SRC_STORAGE_NT_MEMCPY_H_
#define AQUILA_SRC_STORAGE_NT_MEMCPY_H_

#include <cstddef>
#include <cstdint>

namespace aquila {

// Streaming (cache-bypassing) copy. `dst` and `src` must be 16-byte aligned
// and `bytes` a multiple of 64. Ends with a store fence so the data is
// globally visible (required before declaring a writeback durable).
void NtMemcpy(void* dst, const void* src, size_t bytes);

// Plain libc copy (the non-SIMD kernel path stand-in).
void PlainMemcpy(void* dst, const void* src, size_t bytes);

// Copies one 4 KB page using the requested flavor.
enum class CopyFlavor { kPlain, kStreaming };
void CopyPage(void* dst, const void* src, CopyFlavor flavor);

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_NT_MEMCPY_H_
