#include "src/storage/nt_memcpy.h"

#include <cstring>

#include "src/util/bitops.h"
#include "src/util/logging.h"

#if defined(__x86_64__)
#include <emmintrin.h>
#endif

namespace aquila {

void NtMemcpy(void* dst, const void* src, size_t bytes) {
#if defined(__x86_64__)
  AQUILA_DCHECK((reinterpret_cast<uintptr_t>(dst) & 15) == 0);
  AQUILA_DCHECK((reinterpret_cast<uintptr_t>(src) & 15) == 0);
  AQUILA_DCHECK(bytes % 64 == 0);
  auto* d = static_cast<__m128i*>(dst);
  const auto* s = static_cast<const __m128i*>(src);
  for (size_t i = 0; i < bytes / 16; i += 4) {
    __m128i a = _mm_load_si128(s + i);
    __m128i b = _mm_load_si128(s + i + 1);
    __m128i c = _mm_load_si128(s + i + 2);
    __m128i e = _mm_load_si128(s + i + 3);
    _mm_stream_si128(d + i, a);
    _mm_stream_si128(d + i + 1, b);
    _mm_stream_si128(d + i + 2, c);
    _mm_stream_si128(d + i + 3, e);
  }
  _mm_sfence();
#else
  std::memcpy(dst, src, bytes);
#endif
}

void PlainMemcpy(void* dst, const void* src, size_t bytes) { std::memcpy(dst, src, bytes); }

void CopyPage(void* dst, const void* src, CopyFlavor flavor) {
  if (flavor == CopyFlavor::kStreaming) {
    NtMemcpy(dst, src, kPageSize);
  } else {
    PlainMemcpy(dst, src, kPageSize);
  }
}

}  // namespace aquila
