#include "src/storage/nvme_device.h"

#include <sys/mman.h>

#include <cstring>
#include <vector>

#include "src/util/bitops.h"
#include "src/util/logging.h"

namespace aquila {

NvmeController::NvmeController(const Options& options) : options_(options) {
  void* mem = mmap(nullptr, options_.capacity_bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  AQUILA_CHECK(mem != MAP_FAILED);
  flash_ = static_cast<uint8_t*>(mem);
}

NvmeController::~NvmeController() {
  if (flash_ != nullptr) {
    munmap(flash_, options_.capacity_bytes);
  }
}

uint64_t NvmeController::ReserveMedia(uint64_t arrival, NvmeOpcode opcode, uint64_t bytes) {
  uint64_t latency = opcode == NvmeOpcode::kWrite ? options_.write_latency_cycles
                                                  : options_.read_latency_cycles;
  uint64_t transfer = options_.channel_cycles_per_4k * ((bytes + kPageSize - 1) / kPageSize);
  // The channel serializes transfers; fixed access latency overlaps between
  // commands (it is internal device parallelism), so only the transfer slice
  // is serialized and the latency is added on top.
  uint64_t channel_done = channel_.Reserve(arrival, transfer);
  return channel_done + latency;
}

NvmeQueuePair::NvmeQueuePair(NvmeController* controller, uint32_t depth)
    : controller_(controller), depth_(depth), slots_(depth) {}

StatusOr<uint16_t> NvmeQueuePair::Submit(Vcpu& vcpu, const NvmeCommand& cmd) {
  if (outstanding_ >= depth_) {
    return Status::OutOfSpace("submission queue full");
  }
  uint64_t bytes = static_cast<uint64_t>(cmd.nlb) * NvmeController::kLbaSize;
  uint64_t offset = cmd.slba * NvmeController::kLbaSize;
  if (offset + bytes > controller_->capacity_bytes()) {
    return Status::InvalidArgument("NVMe command out of range");
  }

  // SPDK submit path: build descriptor, ring doorbell.
  vcpu.clock().Charge(CostCategory::kDeviceIo, controller_->options().submit_cost_cycles);

  // DMA the data now (the model resolves data at submission; completion only
  // gates time). Writes copy into flash, reads out of it.
  if (cmd.opcode == NvmeOpcode::kWrite) {
    std::memcpy(controller_->flash() + offset, cmd.prp, bytes);
  } else if (cmd.opcode == NvmeOpcode::kRead) {
    std::memcpy(cmd.prp, controller_->flash() + offset, bytes);
  }

  uint64_t ready_at = controller_->ReserveMedia(vcpu.clock().Now(), cmd.opcode, bytes);

  for (Slot& slot : slots_) {
    if (!slot.in_use) {
      slot.in_use = true;
      slot.done = false;
      slot.cid = next_cid_++;
      if (next_cid_ == 0) {
        next_cid_ = 1;
      }
      slot.ready_at = ready_at;
      outstanding_++;
      return slot.cid;
    }
  }
  return Status::OutOfSpace("submission queue full");
}

int NvmeQueuePair::Poll(Vcpu& vcpu) {
  int reaped = 0;
  uint64_t now = vcpu.clock().Now();
  for (Slot& slot : slots_) {
    if (slot.in_use && !slot.done && slot.ready_at <= now) {
      slot.done = true;
      slot.in_use = false;
      outstanding_--;
      reaped++;
      vcpu.clock().Charge(CostCategory::kDeviceIo, controller_->options().complete_cost_cycles);
    }
  }
  return reaped;
}

Status NvmeQueuePair::Wait(Vcpu& vcpu, uint16_t cid) {
  for (Slot& slot : slots_) {
    if (slot.in_use && slot.cid == cid) {
      // Busy-poll: the CPU spins on the completion queue until the media is
      // done; the wait is device time from the thread's perspective.
      vcpu.clock().AdvanceTo(slot.ready_at, CostCategory::kDeviceIo);
      slot.done = true;
      slot.in_use = false;
      outstanding_--;
      vcpu.clock().Charge(CostCategory::kDeviceIo, controller_->options().complete_cost_cycles);
      return Status::Ok();
    }
  }
  return Status::NotFound("command id not outstanding");
}

Status NvmeQueuePair::WaitAll(Vcpu& vcpu) {
  uint64_t latest = 0;
  for (Slot& slot : slots_) {
    if (slot.in_use && slot.ready_at > latest) {
      latest = slot.ready_at;
    }
  }
  if (latest != 0) {
    vcpu.clock().AdvanceTo(latest, CostCategory::kDeviceIo);
  }
  Poll(vcpu);
  AQUILA_CHECK(outstanding_ == 0);
  return Status::Ok();
}

NvmeDeviceQueue::NvmeDeviceQueue(NvmeController* controller, uint32_t depth)
    : DeviceQueue(depth), controller_(controller), slots_(this->depth()) {}

Status NvmeDeviceQueue::Submit(Vcpu& vcpu, NvmeOpcode opcode, uint64_t offset,
                               uint8_t* buffer, uint64_t bytes, uint64_t user_data) {
  if (Full()) {
    return Status::OutOfSpace("device queue full");
  }
  if (!IsAligned(offset, NvmeController::kLbaSize) ||
      !IsAligned(bytes, NvmeController::kLbaSize) || bytes == 0 ||
      offset + bytes > controller_->capacity_bytes()) {
    return Status::InvalidArgument("unaligned or out-of-range NVMe submission");
  }
  // SPDK submit path: build descriptor, ring doorbell; DMA resolves the
  // data now, the completion only gates simulated time.
  vcpu.clock().Charge(CostCategory::kDeviceIo, controller_->options().submit_cost_cycles);
  if (opcode == NvmeOpcode::kWrite) {
    std::memcpy(controller_->flash() + offset, buffer, bytes);
  } else {
    std::memcpy(buffer, controller_->flash() + offset, bytes);
  }
  uint64_t now = vcpu.clock().Now();
  uint64_t ready_at = controller_->ReserveMedia(now, opcode, bytes);
  for (Slot& slot : slots_) {
    if (!slot.in_use) {
      slot = Slot{true, user_data, now, ready_at};
      NoteSubmit(now);
      return Status::Ok();
    }
  }
  return Status::OutOfSpace("device queue full");
}

Status NvmeDeviceQueue::SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                                   uint64_t user_data) {
  return Submit(vcpu, NvmeOpcode::kRead, offset, dst.data(), dst.size(), user_data);
}

Status NvmeDeviceQueue::SubmitWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src,
                                    uint64_t user_data) {
  return Submit(vcpu, NvmeOpcode::kWrite, offset, const_cast<uint8_t*>(src.data()), src.size(),
                user_data);
}

uint32_t NvmeDeviceQueue::Poll(Vcpu& vcpu, std::vector<Completion>* out) {
  uint32_t reaped = 0;
  uint64_t now = vcpu.clock().Now();
  for (Slot& slot : slots_) {
    if (slot.in_use && slot.ready_at <= now) {
      slot.in_use = false;
      vcpu.clock().Charge(CostCategory::kDeviceIo, controller_->options().complete_cost_cycles);
      NoteComplete(now, slot.submit_at);
      out->push_back(Completion{slot.user_data, Status::Ok(), slot.submit_at, slot.ready_at});
      reaped++;
    }
  }
  return reaped;
}

uint64_t NvmeDeviceQueue::NextReadyAt() const {
  uint64_t next = UINT64_MAX;
  for (const Slot& slot : slots_) {
    if (slot.in_use && slot.ready_at < next) {
      next = slot.ready_at;
    }
  }
  return next;
}

NvmeDevice::NvmeDevice(NvmeController* controller) : controller_(controller) {}

std::unique_ptr<DeviceQueue> NvmeDevice::CreateQueue(uint32_t depth) {
  return std::make_unique<NvmeDeviceQueue>(controller_, depth);
}

NvmeQueuePair& NvmeDevice::QueueForThisCore() {
  int core = CoreRegistry::CurrentCore();
  if (qps_[core] == nullptr) {
    std::lock_guard<SpinLock> guard(qp_lock_);
    if (qps_[core] == nullptr) {
      qps_[core] =
          std::make_unique<NvmeQueuePair>(controller_, controller_->options().queue_depth);
    }
  }
  return *qps_[core];
}

namespace {

bool LbaAligned(uint64_t offset, uint64_t size) {
  return IsAligned(offset, NvmeController::kLbaSize) &&
         IsAligned(size, NvmeController::kLbaSize) && size > 0;
}

}  // namespace

Status NvmeDevice::DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) {
  if (!LbaAligned(offset, dst.size())) {
    // Block devices speak whole LBAs; bounce unaligned requests (the kernel
    // and SPDK helpers do the same for callers without O_DIRECT alignment).
    uint64_t lo = AlignDown(offset, NvmeController::kLbaSize);
    uint64_t hi = AlignUp(offset + dst.size(), NvmeController::kLbaSize);
    std::vector<uint8_t> bounce(hi - lo);
    AQUILA_RETURN_IF_ERROR(DoRead(vcpu, lo, std::span(bounce)));
    std::memcpy(dst.data(), bounce.data() + (offset - lo), dst.size());
    return Status::Ok();
  }
  NvmeQueuePair& qp = QueueForThisCore();
  NvmeCommand cmd{NvmeOpcode::kRead, offset / NvmeController::kLbaSize,
                  static_cast<uint32_t>(dst.size() / NvmeController::kLbaSize), dst.data()};
  StatusOr<uint16_t> cid = qp.Submit(vcpu, cmd);
  if (!cid.ok()) {
    return cid.status();
  }
  return qp.Wait(vcpu, *cid);
}

Status NvmeDevice::DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) {
  if (!LbaAligned(offset, src.size())) {
    // Read-modify-write the partial head/tail blocks.
    uint64_t lo = AlignDown(offset, NvmeController::kLbaSize);
    uint64_t hi = AlignUp(offset + src.size(), NvmeController::kLbaSize);
    if (hi > capacity_bytes()) {
      return Status::InvalidArgument("NVMe write beyond capacity");
    }
    std::vector<uint8_t> bounce(hi - lo);
    AQUILA_RETURN_IF_ERROR(DoRead(vcpu, lo, std::span(bounce)));
    std::memcpy(bounce.data() + (offset - lo), src.data(), src.size());
    return DoWrite(vcpu, lo, std::span<const uint8_t>(bounce));
  }
  NvmeQueuePair& qp = QueueForThisCore();
  NvmeCommand cmd{NvmeOpcode::kWrite, offset / NvmeController::kLbaSize,
                  static_cast<uint32_t>(src.size() / NvmeController::kLbaSize),
                  const_cast<uint8_t*>(src.data())};
  StatusOr<uint16_t> cid = qp.Submit(vcpu, cmd);
  if (!cid.ok()) {
    return cid.status();
  }
  return qp.Wait(vcpu, *cid);
}

Status NvmeDevice::DoReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                               std::span<uint8_t* const> pages, uint64_t page_bytes) {
  NvmeQueuePair& qp = QueueForThisCore();
  for (size_t i = 0; i < offsets.size(); i++) {
    NvmeCommand cmd{NvmeOpcode::kRead, offsets[i] / NvmeController::kLbaSize,
                    static_cast<uint32_t>(page_bytes / NvmeController::kLbaSize), pages[i]};
    StatusOr<uint16_t> cid = qp.Submit(vcpu, cmd);
    if (!cid.ok()) {
      AQUILA_RETURN_IF_ERROR(qp.WaitAll(vcpu));
      cid = qp.Submit(vcpu, cmd);
      if (!cid.ok()) {
        return cid.status();
      }
    }
  }
  return qp.WaitAll(vcpu);
}

Status NvmeDevice::DoWriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                                std::span<const uint8_t* const> pages, uint64_t page_bytes) {
  NvmeQueuePair& qp = QueueForThisCore();
  for (size_t i = 0; i < offsets.size(); i++) {
    NvmeCommand cmd{NvmeOpcode::kWrite, offsets[i] / NvmeController::kLbaSize,
                    static_cast<uint32_t>(page_bytes / NvmeController::kLbaSize),
                    const_cast<uint8_t*>(pages[i])};
    StatusOr<uint16_t> cid = qp.Submit(vcpu, cmd);
    if (!cid.ok()) {
      // Ring full: drain and retry once.
      AQUILA_RETURN_IF_ERROR(qp.WaitAll(vcpu));
      cid = qp.Submit(vcpu, cmd);
      if (!cid.ok()) {
        return cid.status();
      }
    }
  }
  return qp.WaitAll(vcpu);
}

}  // namespace aquila
