// Storage device abstraction used by the DRAM cache, the blobstore, and the
// key-value stores.
//
// All devices are synchronous at this interface (the paper's mmio fault path
// issues synchronous reads; writebacks use the batched path below). Costs
// are charged to the calling vCPU's simulated clock:
//   - time on the device medium / channel        -> CostCategory::kDeviceIo
//   - CPU copies for byte-addressable devices    -> CostCategory::kMemcpy
//   - kernel path for host-mediated access       -> CostCategory::kSyscall
// Devices are shared resources: channel bandwidth is modeled with a
// SerializedResource, so concurrent readers observe queueing exactly like a
// saturated Optane drive.
//
// The interface is non-virtual (NVI): Read/Write/ReadBatch/WriteBatch do
// per-call accounting (DeviceStats, registry latency histograms, trace
// events) and dispatch to the protected DoRead/DoWrite/... hooks concrete
// devices implement. Stacked devices (HostIoDevice) call the public entry
// points of their inner device, so a request is counted once per layer it
// crosses — the registry sums the layers into runtime-wide totals.
#ifndef AQUILA_SRC_STORAGE_BLOCK_DEVICE_H_
#define AQUILA_SRC_STORAGE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <span>

#include "src/telemetry/metrics.h"
#include "src/util/status.h"
#include "src/vmx/vcpu.h"

namespace aquila {

struct DeviceStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
};

class BlockDevice {
 public:
  BlockDevice();
  virtual ~BlockDevice() = default;

  virtual const char* name() const = 0;
  virtual uint64_t capacity_bytes() const = 0;

  // Synchronous I/O. `offset` and sizes must be 512-byte aligned (all
  // callers use 4 KB pages). Blocking time is charged to `vcpu`.
  Status Read(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst);
  Status Write(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src);

  // Batched write path used by the eviction writeback: devices that support
  // queueing overlap the batch; the default loops over DoWrite.
  Status WriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                    std::span<const uint8_t* const> pages, uint64_t page_bytes);

  // Batched read path used by read-ahead. Default loops over DoRead.
  Status ReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                   std::span<uint8_t* const> pages, uint64_t page_bytes);

  // Flushes volatile device buffers (durability barrier for msync).
  virtual Status Flush(Vcpu& vcpu) { return Status::Ok(); }

  const DeviceStats& stats() const { return stats_; }

 protected:
  // Device implementations. Success accounting is done by the public
  // wrappers; implementations only move data and charge simulated time.
  virtual Status DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) = 0;
  virtual Status DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) = 0;
  virtual Status DoWriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                              std::span<const uint8_t* const> pages, uint64_t page_bytes);
  virtual Status DoReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                             std::span<uint8_t* const> pages, uint64_t page_bytes);

  DeviceStats stats_;

 private:
  // Last member: the callbacks read stats_, so they unregister first.
  telemetry::CallbackGroup metrics_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_BLOCK_DEVICE_H_
