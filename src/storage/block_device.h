// Storage device abstraction used by the DRAM cache, the blobstore, and the
// key-value stores.
//
// All devices are synchronous at this interface (the paper's mmio fault path
// issues synchronous reads; writebacks use the batched path below). Costs
// are charged to the calling vCPU's simulated clock:
//   - time on the device medium / channel        -> CostCategory::kDeviceIo
//   - CPU copies for byte-addressable devices    -> CostCategory::kMemcpy
//   - kernel path for host-mediated access       -> CostCategory::kSyscall
// Devices are shared resources: channel bandwidth is modeled with a
// SerializedResource, so concurrent readers observe queueing exactly like a
// saturated Optane drive.
#ifndef AQUILA_SRC_STORAGE_BLOCK_DEVICE_H_
#define AQUILA_SRC_STORAGE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <span>

#include "src/util/status.h"
#include "src/vmx/vcpu.h"

namespace aquila {

struct DeviceStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual const char* name() const = 0;
  virtual uint64_t capacity_bytes() const = 0;

  // Synchronous I/O. `offset` and sizes must be 512-byte aligned (all
  // callers use 4 KB pages). Blocking time is charged to `vcpu`.
  virtual Status Read(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) = 0;
  virtual Status Write(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) = 0;

  // Batched write path used by the eviction writeback: devices that support
  // queueing overlap the batch; the default loops over Write.
  virtual Status WriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                            std::span<const uint8_t* const> pages, uint64_t page_bytes);

  // Batched read path used by read-ahead. Default loops over Read.
  virtual Status ReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                           std::span<uint8_t* const> pages, uint64_t page_bytes);

  // Flushes volatile device buffers (durability barrier for msync).
  virtual Status Flush(Vcpu& vcpu) { return Status::Ok(); }

  const DeviceStats& stats() const { return stats_; }

 protected:
  void CountRead(uint64_t bytes) {
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
  void CountWrite(uint64_t bytes) {
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  }

  DeviceStats stats_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_BLOCK_DEVICE_H_
