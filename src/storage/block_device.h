// Storage device abstraction used by the DRAM cache, the blobstore, and the
// key-value stores.
//
// All devices are synchronous at this interface (the paper's mmio fault path
// issues synchronous reads; writebacks use the batched path below). Costs
// are charged to the calling vCPU's simulated clock:
//   - time on the device medium / channel        -> CostCategory::kDeviceIo
//   - CPU copies for byte-addressable devices    -> CostCategory::kMemcpy
//   - kernel path for host-mediated access       -> CostCategory::kSyscall
// Devices are shared resources: channel bandwidth is modeled with a
// SerializedResource, so concurrent readers observe queueing exactly like a
// saturated Optane drive.
//
// The interface is non-virtual (NVI): Read/Write/ReadBatch/WriteBatch/Flush
// do per-call accounting (DeviceStats, registry latency histograms, trace
// events), validate the request against the device's declared geometry
// (io_alignment(), capacity_bytes()), retry transient I/O errors with
// bounded exponential backoff (RetryPolicy, charged to the simulated
// clock), and dispatch to the protected DoRead/DoWrite/... hooks concrete
// devices implement. Stacked devices (HostIoDevice, FaultInjectingDevice)
// call the public entry points of their inner device, so a request is
// counted once per layer it crosses — the registry sums the layers into
// runtime-wide totals.
#ifndef AQUILA_SRC_STORAGE_BLOCK_DEVICE_H_
#define AQUILA_SRC_STORAGE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "src/storage/device_health.h"
#include "src/telemetry/metrics.h"
#include "src/util/status.h"
#include "src/vmx/vcpu.h"

namespace aquila {

struct DeviceStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  // Failure handling (see RetryPolicy): attempts that returned kIoError,
  // re-attempts issued after backoff, and requests that exhausted the
  // attempt budget.
  std::atomic<uint64_t> io_errors{0};
  std::atomic<uint64_t> io_retries{0};
  std::atomic<uint64_t> io_gave_up{0};
};

// Bounded exponential backoff for transient device errors. Only
// StatusCode::kIoError is considered transient; anything else (bad
// arguments, out of space) fails immediately. Backoff time models the
// driver's delayed requeue and is charged to the calling vCPU as idle time.
// Each step draws decorrelated jitter — uniform in
// [initial, min(cap, multiplier * prev)] — so concurrent retriers spread out
// instead of re-colliding in synchronized bursts.
struct RetryPolicy {
  uint32_t max_attempts = 3;              // total tries per request (>= 1)
  uint64_t initial_backoff_cycles = 20'000;
  uint32_t backoff_multiplier = 2;
  uint64_t max_backoff_cycles = 1'000'000;
};

class BlockDevice {
 public:
  BlockDevice();
  virtual ~BlockDevice() = default;

  virtual const char* name() const = 0;
  virtual uint64_t capacity_bytes() const = 0;

  // Required alignment for offsets and sizes at this interface. Devices
  // that accept byte-granular requests (pmem is byte-addressable; the NVMe
  // model bounces partial LBAs internally, like the kernel's
  // read-modify-write) return 1. The default is the classic 512-byte
  // sector contract. Misaligned or out-of-range requests fail with
  // kInvalidArgument in the public wrappers — uniformly, not per device.
  virtual uint64_t io_alignment() const { return 512; }

  // Synchronous I/O. Blocking time is charged to `vcpu`. Empty requests
  // succeed without touching the device.
  Status Read(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst);
  Status Write(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src);

  // Batched write path used by the eviction writeback: devices that support
  // queueing overlap the batch; the default loops over DoWrite.
  Status WriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                    std::span<const uint8_t* const> pages, uint64_t page_bytes);

  // Batched read path used by read-ahead. Default loops over DoRead.
  Status ReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                   std::span<uint8_t* const> pages, uint64_t page_bytes);

  // Flushes volatile device buffers (durability barrier for msync).
  Status Flush(Vcpu& vcpu);

  // --- Queueing capability (src/storage/device_queue.h) ---------------------
  // True when the device's medium genuinely overlaps queued commands (NVMe):
  // CreateQueue() then returns a native submission/completion queue whose
  // completions arrive at media time. The default answers false and
  // CreateQueue() falls back to the sync-emulation shim — same interface,
  // each op executed synchronously at submit — so pipeline code runs
  // unchanged on pmem/host devices. Decorators forward the inner device's
  // answer (and decorate the queue) unless their own semantics are
  // incompatible with deferred completion.
  virtual bool supports_queueing() const { return false; }
  virtual std::unique_ptr<DeviceQueue> CreateQueue(uint32_t depth);

  const DeviceStats& stats() const { return stats_; }

  const RetryPolicy& retry_policy() const { return retry_policy_; }
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }

  // Per-device health state machine (passive until Enable()d by a watchdog
  // layer). The label is attached lazily so the derived name() is resolvable.
  DeviceHealth& health() {
    health_.set_label(name());
    return health_;
  }
  const DeviceHealth& health() const { return health_; }

 protected:
  // Device implementations. Success accounting is done by the public
  // wrappers; implementations only move data and charge simulated time.
  virtual Status DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) = 0;
  virtual Status DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) = 0;
  virtual Status DoWriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                              std::span<const uint8_t* const> pages, uint64_t page_bytes);
  virtual Status DoReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                             std::span<uint8_t* const> pages, uint64_t page_bytes);
  virtual Status DoFlush(Vcpu& vcpu) { return Status::Ok(); }

  DeviceStats stats_;

 private:
  // Runs `op` under the retry policy, charging backoff to `vcpu`.
  template <typename Op>
  Status RunWithRetries(Vcpu& vcpu, Op&& op);

  Status ValidateRange(uint64_t offset, uint64_t size) const;
  Status ValidateBatch(std::span<const uint64_t> offsets, uint64_t page_bytes) const;

  RetryPolicy retry_policy_;
  DeviceHealth health_;
  // Jitter sequence for retry backoff: hashed per draw, so it stays
  // deterministic per device yet thread-safe without a shared Rng.
  std::atomic<uint64_t> retry_jitter_seq_{0};
  // Last member: the callbacks read stats_, so they unregister first.
  telemetry::CallbackGroup metrics_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_BLOCK_DEVICE_H_
