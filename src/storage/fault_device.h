// Fault-injecting BlockDevice decorator.
//
// Wraps any device and injects failures according to a seeded, reproducible
// schedule so the recovery machinery above the storage layer (retry policy,
// mmio degraded mode, WAL/superblock recovery) can be exercised
// deterministically:
//
//   - per-op error probability for reads / writes / flushes,
//   - exact Nth-op triggers (fail exactly the 3rd write, the 1st flush, ...),
//   - torn writes: a random prefix of the request reaches the medium before
//     the error is reported (models a partial sector write at power loss),
//   - latency spikes: occasional extra device time without an error,
//   - power-cut mode: with `buffer_unflushed_writes`, writes are held in a
//     volatile overlay until Flush() — PowerCut() discards the overlay and
//     takes the device offline, so only flushed data survives, exactly like
//     a disk write cache losing power.
//
// The decorator sits below the retry loop of its own NVI wrappers: each
// retry attempt re-rolls the schedule, so a transient (probabilistic or
// Nth-op) fault is observed once and the retry succeeds, while a persistent
// fault (offline device) exhausts the attempt budget and surfaces to the
// caller. Stack it under HostIoDevice to model kernel-path I/O errors, or
// use it directly for the paper's user-space device paths.
#ifndef AQUILA_SRC_STORAGE_FAULT_DEVICE_H_
#define AQUILA_SRC_STORAGE_FAULT_DEVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/storage/block_device.h"
#include "src/storage/device_queue.h"
#include "src/util/rng.h"

namespace aquila {

class FaultInjectingDevice : public BlockDevice {
 public:
  struct Options {
    // Seed for the injection schedule; identical seeds + identical request
    // streams reproduce identical faults.
    uint64_t seed = 1;

    // Probability in [0, 1) that an individual read/write/flush attempt
    // fails with kIoError.
    double read_error_rate = 0.0;
    double write_error_rate = 0.0;
    double flush_error_rate = 0.0;

    // Exact triggers: fail the Nth read/write/flush attempt (1-based,
    // counted per category across the device's lifetime). Retries count as
    // new attempts, so {3, 4} fails one write and its first retry.
    std::vector<uint64_t> fail_reads;
    std::vector<uint64_t> fail_writes;
    std::vector<uint64_t> fail_flushes;

    // When a write fails, first let a random prefix of it reach the medium
    // (torn write). Applies to both probabilistic and Nth-op write faults.
    bool torn_writes = false;

    // Probability that an op completes but takes `latency_spike_cycles`
    // longer (tail-latency injection): charged to kDeviceIo on the
    // synchronous path, added to the command's completion time (ready_at)
    // on a native device queue.
    double latency_spike_rate = 0.0;
    uint64_t latency_spike_cycles = 1'000'000;

    // Hang injection: the command is accepted and then never completes
    // (lost CQE / wedged firmware). On a native queue the submission is
    // swallowed — data never reaches the medium, no completion is ever
    // delivered, and only Cancel() reclaims the command (this is what the
    // watchdog layer exercises). The synchronous path cannot block forever,
    // so a sync hang stalls `sync_hang_stall_cycles` of device time and
    // then reports kIoError.
    double hang_rate = 0.0;
    std::vector<uint64_t> hang_reads;   // exact Nth-attempt triggers
    std::vector<uint64_t> hang_writes;
    uint64_t sync_hang_stall_cycles = 10'000'000;

    // Hold writes in a volatile overlay until Flush() applies them to the
    // inner device. Required for PowerCut() to have teeth: without it the
    // inner device has already absorbed every write.
    bool buffer_unflushed_writes = false;
  };

  struct FaultStats {
    std::atomic<uint64_t> injected_read_errors{0};
    std::atomic<uint64_t> injected_write_errors{0};
    std::atomic<uint64_t> injected_flush_errors{0};
    std::atomic<uint64_t> torn_writes{0};
    std::atomic<uint64_t> latency_spikes{0};
    std::atomic<uint64_t> injected_hangs{0};
    // Sum of the above error categories; exported to the telemetry
    // registry so fault runs are visible next to io_retries/io_gave_up.
    std::atomic<uint64_t> total_injected{0};
  };

  FaultInjectingDevice(BlockDevice* inner, const Options& options);

  const char* name() const override { return "fault"; }
  uint64_t capacity_bytes() const override { return inner_->capacity_bytes(); }
  uint64_t io_alignment() const override { return inner_->io_alignment(); }

  // Queueing passes through to the inner device, decorated so every
  // submission rolls the same injection schedule as the synchronous path
  // (injected failures surface as completed-with-error completions, torn
  // prefixes still reach the medium). Power-cut buffering is incompatible
  // with deferred completions — acknowledging a queued write that the
  // overlay may later discard would break the durability model — so
  // buffer_unflushed_writes forces the sync-emulation shim, which funnels
  // each op through DoWrite and the overlay as before.
  bool supports_queueing() const override {
    return !options_.buffer_unflushed_writes && inner_->supports_queueing();
  }
  std::unique_ptr<DeviceQueue> CreateQueue(uint32_t depth) override;

  // Simulates power loss: unflushed buffered writes are discarded and the
  // device goes offline (every subsequent op fails with kIoError until
  // Revive()). The inner device retains exactly the data that had been
  // Flush()ed.
  void PowerCut();

  // Brings the device back online after PowerCut(). The overlay stays
  // empty: this models reattaching the medium after reboot.
  void Revive();

  bool offline() const { return offline_.load(std::memory_order_acquire); }

  // Runtime adjustment of the probabilistic schedule: scenarios where a
  // device degrades, hangs, flaps, or heals mid-run.
  void set_read_error_rate(double rate);
  void set_write_error_rate(double rate);
  void set_hang_rate(double rate);

  // Brownout window: every op that would complete gains `extra_cycles` of
  // media time (10-100x latency without errors) until EndBrownout(). Safe
  // to toggle from a controller thread while workers submit.
  void StartBrownout(uint64_t extra_cycles) {
    brownout_extra_cycles_.store(extra_cycles, std::memory_order_relaxed);
  }
  void EndBrownout() { brownout_extra_cycles_.store(0, std::memory_order_relaxed); }

  const FaultStats& fault_stats() const { return fault_stats_; }

 protected:
  Status DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) override;
  Status DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) override;
  Status DoFlush(Vcpu& vcpu) override;
  // Batch hooks intentionally not overridden: the base-class default loops
  // over the virtual DoRead/DoWrite, so per-page injection (and per-attempt
  // schedule advance under retries) falls out for free.

 private:
  friend class FaultInjectingQueue;

  enum class OpKind { kRead, kWrite, kFlush };
  enum class Verdict { kOk, kFail, kHang };

  // Advances the schedule for one attempt. kFail: the attempt reports
  // kIoError. kHang: the command is accepted but never completes (queue
  // path) / stalls then fails (sync path). kOk completions roll the
  // latency-spike dice and pick up any active brownout window; failing
  // writes in torn mode additionally roll the prefix that still reaches
  // the medium (a multiple of io_alignment()).
  Verdict ShouldFail(OpKind kind, uint64_t req_size, uint64_t* spike_cycles,
                     uint64_t* torn_prefix);

  // Overlay helpers (mu_ held).
  void OverlayInsertLocked(uint64_t offset, std::span<const uint8_t> src);
  void OverlayPatchLocked(uint64_t offset, std::span<uint8_t> dst) const;
  Status ApplyOverlayLocked(Vcpu& vcpu);

  BlockDevice* inner_;
  Options options_;
  FaultStats fault_stats_;
  std::atomic<bool> offline_{false};
  std::atomic<uint64_t> brownout_extra_cycles_{0};

  mutable std::mutex mu_;
  Rng rng_;
  uint64_t read_attempts_ = 0;
  uint64_t write_attempts_ = 0;
  uint64_t flush_attempts_ = 0;
  // Unflushed writes, keyed by device offset. Extents never overlap:
  // inserts trim/split existing entries.
  std::map<uint64_t, std::vector<uint8_t>> overlay_;

  telemetry::CallbackGroup metrics_;
};

// DeviceQueue decorator for the async path: each submission advances the
// owning FaultInjectingDevice's seeded schedule exactly like a synchronous
// attempt. Injected failures never reach the inner queue — they are buffered
// as immediately-ready completions carrying kIoError (with the torn prefix
// written through synchronously first), which is how a real drive reports a
// per-command error in its CQE. Latency spikes extend the affected command's
// completion time (ready_at) instead of charging the submitter's clock — on
// a queue, device latency is exactly what the caller overlaps with continued
// work. There is no retry layer here: requeue-and-retry policy for async I/O
// belongs to the caller reaping the completion.
class FaultInjectingQueue : public DeviceQueue {
 public:
  FaultInjectingQueue(FaultInjectingDevice* device, std::unique_ptr<DeviceQueue> inner);

  const char* name() const override { return "fault"; }
  uint64_t io_alignment() const override { return inner_->io_alignment(); }

  Status SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                    uint64_t user_data) override;
  Status SubmitWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src,
                     uint64_t user_data) override;
  uint32_t Poll(Vcpu& vcpu, std::vector<Completion>* out) override;
  uint64_t NextReadyAt() const override;

  // Hung commands were swallowed before the medium, so withdrawal is real:
  // the completion will never be delivered. Returns true for those only.
  bool Cancel(uint64_t user_data) override;

 private:
  // Books an injected (or offline) failure as a ready completion.
  void BufferFailure(Vcpu& vcpu, uint64_t user_data, Status status);

  FaultInjectingDevice* device_;
  std::unique_ptr<DeviceQueue> inner_;
  std::vector<Completion> failed_;
  // Injected latency spikes, keyed by user_data at submit: the extra cycles
  // are added to the inner completion's ready_at at reap, and completions
  // whose extended deadline has not passed yet wait in delayed_, kept
  // sorted by ready_at so spiked completions release in deadline order.
  std::map<uint64_t, uint64_t> spike_cycles_;
  std::vector<Completion> delayed_;
  // Injected hangs: commands accepted (in-flight) but never completed and
  // never forwarded to the inner queue. Only Cancel() removes them.
  std::map<uint64_t, uint64_t> hung_;  // user_data -> submit time
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_FAULT_DEVICE_H_
