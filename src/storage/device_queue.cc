#include "src/storage/device_queue.h"

#include "src/storage/block_device.h"
#include "src/util/logging.h"

namespace aquila {

#if AQUILA_TELEMETRY_ENABLED
namespace {

// Shared across every queue instance (runtime-wide view); the per-queue
// depth gauge below keeps individual queues distinguishable by summing.
struct QueueMetrics {
  telemetry::Counter* submits =
      telemetry::Registry().GetCounter("aquila.storage.queue_submits");
  Histogram* inflight_at_submit =
      telemetry::Registry().GetHistogram("aquila.storage.queue_inflight_at_submit");
  Histogram* complete_cycles =
      telemetry::Registry().GetHistogram("aquila.storage.queue_complete_cycles");
};

const QueueMetrics& GetQueueMetrics() {
  static QueueMetrics metrics;
  return metrics;
}

}  // namespace
#endif

DeviceQueue::DeviceQueue(uint32_t depth) : depth_(depth == 0 ? 1 : depth) {
  metrics_.AddGauge("aquila.storage.queue_depth", [this] { return in_flight(); });
}

void DeviceQueue::NoteSubmit(uint64_t now) {
  (void)now;
#if AQUILA_TELEMETRY_ENABLED
  GetQueueMetrics().submits->Add();
  GetQueueMetrics().inflight_at_submit->Record(in_flight());
#endif
  in_flight_.fetch_add(1, std::memory_order_relaxed);
}

void DeviceQueue::NoteComplete(uint64_t now, uint64_t submit_at) {
  (void)now;
  (void)submit_at;
#if AQUILA_TELEMETRY_ENABLED
  if (submit_at != 0 && now >= submit_at) {
    GetQueueMetrics().complete_cycles->Record(now - submit_at);
  }
#endif
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

Status DeviceQueue::WaitMin(Vcpu& vcpu, uint32_t min, std::vector<Completion>* out) {
  uint32_t have = Poll(vcpu, out);
  while (have < min) {
    if (in_flight() == 0) {
      return Status::InvalidArgument("waiting for more completions than in flight");
    }
    uint64_t next = NextReadyAt();
    AQUILA_CHECK(next != UINT64_MAX);
    // Busy-poll the completion queue: the wait is device time from the
    // thread's perspective, exactly like NvmeQueuePair::Wait.
    vcpu.clock().AdvanceTo(next, CostCategory::kDeviceIo);
    have += Poll(vcpu, out);
  }
  return Status::Ok();
}

Status DeviceQueue::Drain(Vcpu& vcpu, std::vector<Completion>* out) {
  while (in_flight() > 0) {
    AQUILA_RETURN_IF_ERROR(WaitMin(vcpu, 1, out));
  }
  return Status::Ok();
}

SyncDeviceQueue::SyncDeviceQueue(BlockDevice* device, uint32_t depth)
    : DeviceQueue(depth), device_(device) {}

uint64_t SyncDeviceQueue::io_alignment() const { return device_->io_alignment(); }

Status SyncDeviceQueue::SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                                   uint64_t user_data) {
  if (Full()) {
    return Status::OutOfSpace("device queue full");
  }
  // Execute now through the public entry point (validation, retries, stats,
  // injection); only kInvalidArgument is a submission error — everything
  // else is a completed-with-error op and travels in the completion.
  Status status = device_->Read(vcpu, offset, dst);
  if (!status.ok() && status.code() == StatusCode::kInvalidArgument) {
    return status;
  }
  uint64_t now = vcpu.clock().Now();
  NoteSubmit(now);
  done_.push_back(Completion{user_data, status, now, now});
  return Status::Ok();
}

Status SyncDeviceQueue::SubmitWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src,
                                    uint64_t user_data) {
  if (Full()) {
    return Status::OutOfSpace("device queue full");
  }
  Status status = device_->Write(vcpu, offset, src);
  if (!status.ok() && status.code() == StatusCode::kInvalidArgument) {
    return status;
  }
  uint64_t now = vcpu.clock().Now();
  NoteSubmit(now);
  done_.push_back(Completion{user_data, status, now, now});
  return Status::Ok();
}

uint32_t SyncDeviceQueue::Poll(Vcpu& vcpu, std::vector<Completion>* out) {
  uint64_t now = vcpu.clock().Now();
  uint32_t reaped = static_cast<uint32_t>(done_.size());
  for (Completion& c : done_) {
    NoteComplete(now, c.submit_at);
    out->push_back(std::move(c));
  }
  done_.clear();
  return reaped;
}

uint64_t SyncDeviceQueue::NextReadyAt() const {
  return done_.empty() ? UINT64_MAX : 0;
}

}  // namespace aquila
