#include "src/storage/device_health.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/telemetry/span.h"
#include "src/telemetry/stats_server.h"

namespace aquila {

namespace {

// Live DeviceHealth instances, serialized by the /health endpoint. The
// provider hook keeps the dependency arrow pointing the right way: telemetry
// exposes a generic hook, this storage-side file installs it.
std::mutex& HealthRegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<DeviceHealth*>& HealthRegistry() {
  static std::vector<DeviceHealth*> instances;
  return instances;
}

void RegisterHealthInstance(DeviceHealth* health) {
  static std::once_flag provider_once;
  std::call_once(provider_once, [] {
    telemetry::SetHealthJsonProvider([] { return DeviceHealthRegistryJson(); });
  });
  std::lock_guard<std::mutex> lock(HealthRegistryMutex());
  HealthRegistry().push_back(health);
}

void UnregisterHealthInstance(DeviceHealth* health) {
  std::lock_guard<std::mutex> lock(HealthRegistryMutex());
  auto& instances = HealthRegistry();
  instances.erase(std::remove(instances.begin(), instances.end(), health), instances.end());
}

}  // namespace

DeviceHealth::DeviceHealth() {
  RegisterHealthInstance(this);
  metrics_.AddGauge("aquila.device.health_state",
                    [this] { return static_cast<uint64_t>(state_.load(std::memory_order_relaxed)); });
  metrics_.AddCounter("aquila.device.timeouts", stats_.timeouts);
  metrics_.AddCounter("aquila.device.watchdog_retries", stats_.watchdog_retries);
  metrics_.AddCounter("aquila.device.abandoned", stats_.abandoned);
  metrics_.AddCounter("aquila.device.hedges", stats_.hedges);
  metrics_.AddCounter("aquila.device.hedge_wins", stats_.hedge_wins);
  metrics_.AddCounter("aquila.device.fail_fast", stats_.fail_fast);
  metrics_.AddCounter("aquila.device.probes", stats_.probes);
  metrics_.AddCounter("aquila.device.state_changes", stats_.state_changes);
}

DeviceHealth::~DeviceHealth() { UnregisterHealthInstance(this); }

void DeviceHealth::Enable(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.window_ops == 0) options_.window_ops = 1;
  if (options_.min_samples == 0) options_.min_samples = 1;
  if (options_.degraded_depth_divisor == 0) options_.degraded_depth_divisor = 1;
  enabled_.store(true, std::memory_order_release);
}

void DeviceHealth::set_label(const char* label) {
  if (label == nullptr || label_set_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (label_.empty()) {
    label_ = label;
  }
  label_set_.store(true, std::memory_order_release);
}

const char* DeviceHealth::StateName(State state) {
  switch (state) {
    case State::kHealthy: return "healthy";
    case State::kSuspect: return "suspect";
    case State::kDegraded: return "degraded";
    case State::kFailed: return "failed";
    case State::kProbing: return "probing";
  }
  return "unknown";
}

void DeviceHealth::TransitionLocked(State next) {
  state_.store(next, std::memory_order_release);
  stats_.state_changes.fetch_add(1, std::memory_order_relaxed);
}

void DeviceHealth::RecordOutcome(uint64_t now, Outcome outcome) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  State s = state_.load(std::memory_order_relaxed);
  if (s == State::kProbing) {
    // The probe's verdict: re-admit with a clean slate or re-open the
    // breaker and wait out another probe interval.
    if (outcome == Outcome::kOk) {
      window_.clear();
      window_bad_ = 0;
      TransitionLocked(State::kHealthy);
    } else {
      failed_at_ = now;
      TransitionLocked(State::kFailed);
    }
    return;
  }
  window_.push_back(outcome);
  if (outcome != Outcome::kOk) {
    window_bad_++;
  }
  while (window_.size() > options_.window_ops) {
    if (window_.front() != Outcome::kOk) {
      window_bad_--;
    }
    window_.pop_front();
  }
  if (s == State::kFailed) {
    // Straggler completions from before the breaker opened; only a probe
    // can exit kFailed.
    return;
  }
  if (window_.size() < options_.min_samples) {
    return;
  }
  double bad = static_cast<double>(window_bad_) / static_cast<double>(window_.size());
  State next = State::kHealthy;
  if (bad >= options_.failed_threshold) {
    next = State::kFailed;
  } else if (bad >= options_.degraded_threshold) {
    next = State::kDegraded;
  } else if (bad >= options_.suspect_threshold) {
    next = State::kSuspect;
  }
  if (next != s) {
    if (next == State::kFailed) {
      failed_at_ = now;
    }
    TransitionLocked(next);
  }
}

bool DeviceHealth::ShouldFailFast(uint64_t now) {
  if (!enabled()) {
    return false;
  }
  if (state_.load(std::memory_order_acquire) != State::kFailed) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) != State::kFailed) {
    return false;
  }
  if (now >= failed_at_ + options_.probe_interval_cycles) {
    TransitionLocked(State::kProbing);
    stats_.probes.fetch_add(1, std::memory_order_relaxed);
    return false;  // the caller's op goes through as the probe
  }
  stats_.fail_fast.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DeviceHealth::allows_readahead() const {
  if (!enabled()) {
    return true;
  }
  State s = state();
  return s == State::kHealthy || s == State::kSuspect;
}

uint64_t DeviceHealth::probe_due_at() const {
  if (!enabled() || state() != State::kFailed) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return failed_at_ + options_.probe_interval_cycles;
}

uint32_t DeviceHealth::CapDepth(uint32_t full_depth) const {
  if (!enabled()) {
    return full_depth;
  }
  State s = state();
  if (s == State::kHealthy || s == State::kSuspect) {
    return full_depth;
  }
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t capped = full_depth / options_.degraded_depth_divisor;
  return capped > 0 ? capped : 1;
}

std::string DeviceHealth::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"device\":\"" << (label_.empty() ? "unnamed" : label_) << "\""
      << ",\"enabled\":" << (enabled_.load(std::memory_order_relaxed) ? "true" : "false")
      << ",\"state\":\"" << StateName(state_.load(std::memory_order_relaxed)) << "\""
      << ",\"window_ops\":" << window_.size()
      << ",\"window_bad\":" << window_bad_
      << ",\"timeouts\":" << stats_.timeouts.load(std::memory_order_relaxed)
      << ",\"watchdog_retries\":" << stats_.watchdog_retries.load(std::memory_order_relaxed)
      << ",\"abandoned\":" << stats_.abandoned.load(std::memory_order_relaxed)
      << ",\"hedges\":" << stats_.hedges.load(std::memory_order_relaxed)
      << ",\"hedge_wins\":" << stats_.hedge_wins.load(std::memory_order_relaxed)
      << ",\"fail_fast\":" << stats_.fail_fast.load(std::memory_order_relaxed)
      << ",\"probes\":" << stats_.probes.load(std::memory_order_relaxed)
      << ",\"state_changes\":" << stats_.state_changes.load(std::memory_order_relaxed) << "}";
  return out.str();
}

std::string DeviceHealthRegistryJson() {
  std::lock_guard<std::mutex> lock(HealthRegistryMutex());
  std::ostringstream out;
  out << "{\"devices\":[";
  bool first = true;
  for (const DeviceHealth* health : HealthRegistry()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << health->ToJson();
  }
  out << "]}";
  return out.str();
}

// ---------------------------------------------------------------------------
// WatchdogQueue

WatchdogQueue::WatchdogQueue(DeviceHealth* health, std::unique_ptr<DeviceQueue> inner,
                             const Options& options)
    : DeviceQueue(inner->depth()),
      health_(health),
      inner_(std::move(inner)),
      options_(options),
      jitter_(options.jitter_seed) {
  AQUILA_CHECK(health_ != nullptr);
  AQUILA_CHECK(options_.timeout_cycles > 0);
  if (options_.max_attempts == 0) {
    options_.max_attempts = 1;
  }
  if (options_.backoff_base_cycles == 0) {
    options_.backoff_base_cycles = 1;
  }
  latencies_.reserve(64);
}

WatchdogQueue::~WatchdogQueue() = default;

uint32_t WatchdogQueue::EffectiveDepth() const { return health_->CapDepth(depth()); }

Status WatchdogQueue::SubmitRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst,
                                 uint64_t user_data) {
  return SubmitOp(vcpu, /*is_read=*/true, offset, dst, {}, user_data);
}

Status WatchdogQueue::SubmitWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src,
                                  uint64_t user_data) {
  return SubmitOp(vcpu, /*is_read=*/false, offset, {}, src, user_data);
}

Status WatchdogQueue::SubmitOp(Vcpu& vcpu, bool is_read, uint64_t offset,
                               std::span<uint8_t> dst, std::span<const uint8_t> src,
                               uint64_t user_data) {
  // Gate on the caller-op count AND the inner queue's real occupancy: hedge
  // legs, retries, and uncancellable zombies hold inner slots that don't
  // count as watchdog ops, and the inner queue's raw rejection must never
  // leak to a caller that passed our depth check. Either way the caller
  // sheds load exactly as it would on a full queue.
  if (in_flight() >= EffectiveDepth() || inner_->in_flight() >= inner_->depth()) {
    return Status::OutOfSpace("watchdog queue at effective depth");
  }
  uint64_t now = vcpu.clock().Now();
  if (health_->ShouldFailFast(now)) {
    // Breaker open: synthesize the failure without touching the device so
    // the caller's writeback-failure machinery reacts immediately instead
    // of waiting out a timeout per op.
    Completion c;
    c.user_data = user_data;
    c.status = Status::Unavailable("device breaker open: failing fast");
    c.submit_at = now;
    c.ready_at = now;
    ready_.push_back(std::move(c));
    NoteSubmit(now);
    return Status::Ok();
  }
  uint64_t op_id = next_op_++;
  Op& op = ops_[op_id];
  op.is_read = is_read;
  op.offset = offset;
  op.user_data = user_data;
  op.read_dst = dst;
  op.write_src = src;
  op.first_submit_at = now;
  Status s = SubmitLeg(vcpu, op_id, op, /*hedge=*/false);
  if (!s.ok()) {
    ops_.erase(op_id);
    return s;
  }
  NoteSubmit(now);
  return Status::Ok();
}

Status WatchdogQueue::SubmitLeg(Vcpu& vcpu, uint64_t op_id, Op& op, bool hedge) {
  uint64_t token = next_token_++;
  Status s;
  if (!op.is_read) {
    s = inner_->SubmitWrite(vcpu, op.offset, op.write_src, token);
  } else if (hedge) {
    op.hedge_buf.resize(op.read_dst.size());
    s = inner_->SubmitRead(vcpu, op.offset, std::span<uint8_t>(op.hedge_buf), token);
  } else {
    s = inner_->SubmitRead(vcpu, op.offset, op.read_dst, token);
  }
  if (!s.ok()) {
    return s;
  }
  tokens_[token] = Leg{op_id, hedge};
  op.outstanding++;
  if (!hedge) {
    // Every new attempt buys the op a fresh deadline (per-attempt timeout).
    // A hedge rides the primary attempt's existing deadline: refreshing it
    // here would silently stretch the attempt to HedgeDelay + timeout and
    // delay timeout detection for exactly the ops that are already slow.
    op.attempts++;
    op.deadline = vcpu.clock().Now() + options_.timeout_cycles;
  }
  op.resubmit_at = 0;
  return s;
}

uint32_t WatchdogQueue::Poll(Vcpu& vcpu, std::vector<Completion>* out) {
  uint64_t now = vcpu.clock().Now();
  std::vector<Completion> inner_done;
  inner_->Poll(vcpu, &inner_done);
  for (const Completion& c : inner_done) {
    HandleInnerCompletion(vcpu, c, now);
  }
  Sweep(vcpu, now);
  uint32_t reaped = 0;
  for (Completion& c : ready_) {
    NoteComplete(now, 0);  // inner already recorded the real latency
    out->push_back(std::move(c));
    reaped++;
  }
  ready_.clear();
  return reaped;
}

void WatchdogQueue::HandleInnerCompletion(Vcpu& vcpu, const Completion& c, uint64_t now) {
  (void)vcpu;
  auto it = tokens_.find(c.user_data);
  if (it == tokens_.end()) {
    return;  // leg was cancelled and forgotten
  }
  Leg leg = it->second;
  tokens_.erase(it);
  auto oit = ops_.find(leg.op_id);
  AQUILA_CHECK(oit != ops_.end());
  Op& op = oit->second;
  AQUILA_CHECK(op.outstanding > 0);
  op.outstanding--;
  if (op.done) {
    // Zombie leg of an already-answered op (abandoned, or the losing side
    // of a hedge/retry race): the data landed idempotently; discard.
    MaybeEraseOp(leg.op_id, op);
    return;
  }
  if (c.status.ok()) {
    uint64_t latency = c.ready_at >= c.submit_at ? c.ready_at - c.submit_at : 0;
    if (latencies_.size() < 64) {
      latencies_.push_back(latency);
    } else {
      latencies_[latency_next_] = latency;
      latency_next_ = (latency_next_ + 1) % latencies_.size();
    }
    health_->RecordOutcome(now, DeviceHealth::Outcome::kOk);
    if (leg.is_hedge) {
      // Hedge won: reconcile its side buffer into the caller's destination.
      std::memcpy(op.read_dst.data(), op.hedge_buf.data(), op.read_dst.size());
      health_->stats().hedge_wins.fetch_add(1, std::memory_order_relaxed);
    }
    Completion done;
    done.user_data = op.user_data;
    done.status = Status::Ok();
    done.submit_at = c.submit_at;
    done.ready_at = c.ready_at;
    FinishOp(leg.op_id, op, std::move(done), now);
    return;
  }
  health_->RecordOutcome(now, DeviceHealth::Outcome::kError);
  if (op.outstanding > 0 || op.resubmit_at != 0) {
    // Another leg (or a scheduled retry) may still succeed; hold the error
    // until the op's fate is decided. The deadline bounds the wait.
    op.has_error = true;
    op.error = c.status;
    return;
  }
  Completion done;
  done.user_data = op.user_data;
  done.status = c.status;
  done.submit_at = c.submit_at;
  done.ready_at = c.ready_at;
  FinishOp(leg.op_id, op, std::move(done), now);
}

void WatchdogQueue::Sweep(Vcpu& vcpu, uint64_t now) {
  std::vector<uint64_t> ids;
  ids.reserve(ops_.size());
  for (const auto& [id, op] : ops_) {
    if (!op.done) {
      ids.push_back(id);
    }
  }
  for (uint64_t id : ids) {
    auto it = ops_.find(id);
    if (it == ops_.end()) {
      continue;
    }
    Op& op = it->second;
    if (op.done) {
      continue;
    }
    if (op.resubmit_at != 0) {
      if (now >= op.resubmit_at) {
        telemetry::ChildSpan span(vcpu.clock(), telemetry::SpanPhase::kWatchdog, op.offset);
        Status s = SubmitLeg(vcpu, id, op, /*hedge=*/false);
        if (s.ok()) {
          health_->stats().watchdog_retries.fetch_add(1, std::memory_order_relaxed);
        } else if (s.code() != StatusCode::kOutOfSpace) {
          // Unretryable submission failure: answer with it.
          Completion done;
          done.user_data = op.user_data;
          done.status = s;
          done.submit_at = op.first_submit_at;
          done.ready_at = now;
          health_->stats().abandoned.fetch_add(1, std::memory_order_relaxed);
          FinishOp(id, op, std::move(done), now);
        }
        // kOutOfSpace: inner full; resubmit_at stands, try next poll.
      }
      continue;
    }
    if (op.deadline != 0 && now >= op.deadline) {
      telemetry::ChildSpan span(vcpu.clock(), telemetry::SpanPhase::kWatchdog, op.offset);
      health_->stats().timeouts.fetch_add(1, std::memory_order_relaxed);
      health_->RecordOutcome(now, DeviceHealth::Outcome::kTimeout);
      // Withdraw whatever the inner queue will give back; legs that cannot
      // be cancelled stay mapped and still win if they complete before the
      // retry does (brownout reconciliation).
      for (auto tit = tokens_.begin(); tit != tokens_.end();) {
        if (tit->second.op_id == id && inner_->Cancel(tit->first)) {
          tit = tokens_.erase(tit);
          AQUILA_CHECK(op.outstanding > 0);
          op.outstanding--;
        } else {
          ++tit;
        }
      }
      if (op.attempts >= options_.max_attempts) {
        Completion done;
        done.user_data = op.user_data;
        done.status = op.has_error ? op.error
                                   : Status::DeadlineExceeded("device op overran watchdog deadline");
        done.submit_at = op.first_submit_at;
        done.ready_at = now;
        health_->stats().abandoned.fetch_add(1, std::memory_order_relaxed);
        FinishOp(id, op, std::move(done), now);
      } else {
        op.deadline = 0;
        op.resubmit_at = now + NextBackoff(op);
      }
      continue;
    }
    if (options_.hedge_reads && op.is_read && !op.hedged && op.outstanding == 1 &&
        now >= op.first_submit_at + HedgeDelay()) {
      Status s = SubmitLeg(vcpu, id, op, /*hedge=*/true);
      if (s.ok()) {
        op.hedged = true;
        health_->stats().hedges.fetch_add(1, std::memory_order_relaxed);
      }
      // A full inner queue skips the hedge silently; the primary leg still
      // has its deadline.
    }
  }
}

void WatchdogQueue::FinishOp(uint64_t op_id, Op& op, Completion completion, uint64_t now) {
  (void)now;
  op.done = true;
  op.deadline = 0;
  op.resubmit_at = 0;
  ready_.push_back(std::move(completion));
  // Withdraw every leg still in flight for this op — the hung primary a
  // hedge just beat, or the losing side of a retry race. Cancellable legs
  // hand their inner slot back now; without this, a hung leg's token and
  // slot would leak past the op's lifetime and permanently shrink the
  // queue's effective depth. Legs that refuse cancellation still complete
  // and drain as discarded zombies.
  for (auto tit = tokens_.begin(); tit != tokens_.end();) {
    if (tit->second.op_id == op_id && inner_->Cancel(tit->first)) {
      tit = tokens_.erase(tit);
      AQUILA_CHECK(op.outstanding > 0);
      op.outstanding--;
    } else {
      ++tit;
    }
  }
  MaybeEraseOp(op_id, op);
}

void WatchdogQueue::MaybeEraseOp(uint64_t op_id, const Op& op) {
  if (op.done && op.outstanding == 0) {
    ops_.erase(op_id);
  }
}

uint64_t WatchdogQueue::NextBackoff(Op& op) {
  // Decorrelated jitter (Brooker): uniform in [base, min(cap, 3 * prev)],
  // so concurrent retriers spread out instead of synchronizing into bursts.
  uint64_t prev = op.backoff != 0 ? op.backoff : options_.backoff_base_cycles;
  uint64_t lo = options_.backoff_base_cycles;
  uint64_t hi = std::min(options_.backoff_cap_cycles, prev * 3);
  if (hi <= lo) {
    op.backoff = lo;
  } else {
    op.backoff = lo + jitter_.Uniform(hi - lo + 1);
  }
  return op.backoff;
}

uint64_t WatchdogQueue::HedgeDelay() const {
  uint64_t delay = options_.hedge_min_delay_cycles;
  if (latencies_.size() >= 16) {
    std::vector<uint64_t> sorted(latencies_);
    size_t idx = sorted.size() * 99 / 100;
    if (idx >= sorted.size()) {
      idx = sorted.size() - 1;
    }
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<ptrdiff_t>(idx), sorted.end());
    delay = std::max(delay, sorted[idx]);
  }
  if (delay >= options_.timeout_cycles && options_.timeout_cycles > 1) {
    delay = options_.timeout_cycles - 1;  // hedge before the deadline fires
  }
  return delay;
}

uint64_t WatchdogQueue::NextReadyAt() const {
  if (!ready_.empty()) {
    return 0;
  }
  uint64_t next = inner_->NextReadyAt();
  // Only count resubmits/hedges the inner queue could actually accept; when
  // it is full, progress is gated on an inner completion (or a deadline),
  // both already in the min — reporting a stale past time here would let
  // WaitMin spin without advancing.
  bool inner_has_room = inner_->in_flight() < inner_->depth();
  for (const auto& [id, op] : ops_) {
    (void)id;
    if (op.done) {
      continue;
    }
    if (op.resubmit_at != 0) {
      if (inner_has_room) {
        next = std::min(next, op.resubmit_at);
      }
      continue;
    }
    if (op.deadline != 0) {
      next = std::min(next, op.deadline);
      if (options_.hedge_reads && op.is_read && !op.hedged && inner_has_room) {
        next = std::min(next, op.first_submit_at + HedgeDelay());
      }
    }
  }
  return next;
}

}  // namespace aquila
