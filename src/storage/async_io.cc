#include "src/storage/async_io.h"

#include <algorithm>
#include <cstring>

#include "src/telemetry/scoped_timer.h"
#include "src/util/bitops.h"
#include "src/util/logging.h"

namespace aquila {

AsyncIoRing::AsyncIoRing(NvmeController* controller, const Options& options)
    : controller_(controller), options_(options), ring_(options.queue_depth) {
  for (InFlight& entry : ring_) {
    entry.done = true;
  }
}

Status AsyncIoRing::PrepareRead(uint64_t offset, std::span<uint8_t> dst, uint64_t user_data) {
  if (pending_.size() + in_flight_ >= options_.queue_depth) {
    return Status::OutOfSpace("submission ring full");
  }
  if (!IsAligned(offset, NvmeController::kLbaSize) ||
      !IsAligned(dst.size(), NvmeController::kLbaSize) ||
      offset + dst.size() > controller_->capacity_bytes()) {
    return Status::InvalidArgument("unaligned or out-of-range read");
  }
  pending_.push_back(Sqe{NvmeOpcode::kRead, offset, dst.data(), dst.size(), user_data});
  return Status::Ok();
}

Status AsyncIoRing::PrepareWrite(uint64_t offset, std::span<const uint8_t> src,
                                 uint64_t user_data) {
  if (pending_.size() + in_flight_ >= options_.queue_depth) {
    return Status::OutOfSpace("submission ring full");
  }
  if (!IsAligned(offset, NvmeController::kLbaSize) ||
      !IsAligned(src.size(), NvmeController::kLbaSize) ||
      offset + src.size() > controller_->capacity_bytes()) {
    return Status::InvalidArgument("unaligned or out-of-range write");
  }
  pending_.push_back(Sqe{NvmeOpcode::kWrite, offset, const_cast<uint8_t*>(src.data()),
                         src.size(), user_data});
  return Status::Ok();
}

StatusOr<uint32_t> AsyncIoRing::Submit(Vcpu& vcpu) {
  if (pending_.empty()) {
    return 0u;
  }
#if AQUILA_TELEMETRY_ENABLED
  static telemetry::Counter* ring_submits =
      telemetry::Registry().GetCounter("aquila.storage.ring_submits");
  static telemetry::Counter* ring_sqes =
      telemetry::Registry().GetCounter("aquila.storage.ring_sqes");
  static Histogram* ring_latency =
      telemetry::Registry().GetHistogram("aquila.storage.ring_latency_cycles");
  ring_submits->Add();
  ring_sqes->Add(pending_.size());
  const uint64_t submit_start = vcpu.clock().Now();
#endif
  // ONE kernel entry for the whole batch.
  vcpu.ChargeSyscall();
  uint32_t submitted = 0;
  for (const Sqe& sqe : pending_) {
    // Per-request kernel block-layer work, then the device books media time.
    vcpu.clock().Charge(CostCategory::kSyscall, options_.kernel_per_request_cycles);
    if (sqe.opcode == NvmeOpcode::kWrite) {
      std::memcpy(controller_->flash() + sqe.offset, sqe.buffer, sqe.bytes);
    } else {
      std::memcpy(sqe.buffer, controller_->flash() + sqe.offset, sqe.bytes);
    }
    uint64_t ready_at = controller_->ReserveMedia(vcpu.clock().Now(), sqe.opcode, sqe.bytes);
    // Submit-to-completion latency as the application would measure it.
    AQUILA_TELEMETRY_ONLY(ring_latency->Record(ready_at - submit_start));
    // Find a free CQ slot (capacity guaranteed by the Prepare bound).
    bool placed = false;
    for (InFlight& entry : ring_) {
      if (entry.done) {
        entry = InFlight{ready_at, sqe.user_data, false};
        placed = true;
        break;
      }
    }
    AQUILA_CHECK(placed);
    in_flight_++;
    submitted++;
  }
  pending_.clear();
#if AQUILA_TELEMETRY_ENABLED
  if (telemetry::Tracer::Enabled()) {
    telemetry::Tracer::Record(telemetry::TraceEventType::kRingSubmit, submit_start,
                              vcpu.clock().Now() - submit_start, submitted);
  }
#endif
  return submitted;
}

uint32_t AsyncIoRing::Harvest(Vcpu& vcpu, std::vector<Completion>* out) {
  uint32_t reaped = 0;
  uint64_t now = vcpu.clock().Now();
  for (InFlight& entry : ring_) {
    if (!entry.done && entry.ready_at <= now) {
      entry.done = true;
      in_flight_--;
      out->push_back(Completion{entry.user_data, Status::Ok()});
      reaped++;
    }
  }
  return reaped;
}

Status AsyncIoRing::WaitFor(Vcpu& vcpu, uint32_t min, std::vector<Completion>* out) {
  if (min > in_flight_ + static_cast<uint32_t>(out->size())) {
    return Status::InvalidArgument("waiting for more completions than in flight");
  }
  uint32_t have = Harvest(vcpu, out);
  while (have < min) {
    // Advance to the earliest outstanding completion and reap again (the
    // application polls shared memory; no syscall on this path).
    uint64_t next = UINT64_MAX;
    for (const InFlight& entry : ring_) {
      if (!entry.done) {
        next = std::min(next, entry.ready_at);
      }
    }
    AQUILA_CHECK(next != UINT64_MAX);
    vcpu.clock().AdvanceTo(next, CostCategory::kDeviceIo);
    have += Harvest(vcpu, out);
  }
  return Status::Ok();
}

}  // namespace aquila
