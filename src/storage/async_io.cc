#include "src/storage/async_io.h"

#include <algorithm>

#include "src/telemetry/scoped_timer.h"
#include "src/util/bitops.h"
#include "src/util/logging.h"

namespace aquila {

AsyncIoRing::AsyncIoRing(BlockDevice& device, const Options& options)
    : options_(options), capacity_bytes_(device.capacity_bytes()) {
  if (device.supports_queueing()) {
    queue_ = device.CreateQueue(options.queue_depth);
  } else {
    queue_status_ = Status::Unimplemented(
        "device does not support queueing; an async ring over a synchronous "
        "device would fabricate overlap the medium cannot deliver");
  }
}

Status AsyncIoRing::CheckQueue() const {
  return queue_ == nullptr ? queue_status_ : Status::Ok();
}

Status AsyncIoRing::PrepareRead(uint64_t offset, std::span<uint8_t> dst, uint64_t user_data) {
  AQUILA_RETURN_IF_ERROR(CheckQueue());
  if (pending_.size() + queue_->in_flight() >= options_.queue_depth) {
    return Status::OutOfSpace("submission ring full");
  }
  const uint64_t align = queue_->io_alignment();
  if (!IsAligned(offset, align) || !IsAligned(dst.size(), align) ||
      offset + dst.size() > capacity_bytes_) {
    return Status::InvalidArgument("unaligned or out-of-range read");
  }
  pending_.push_back(Sqe{false, offset, dst.data(), dst.size(), user_data});
  return Status::Ok();
}

Status AsyncIoRing::PrepareWrite(uint64_t offset, std::span<const uint8_t> src,
                                 uint64_t user_data) {
  AQUILA_RETURN_IF_ERROR(CheckQueue());
  if (pending_.size() + queue_->in_flight() >= options_.queue_depth) {
    return Status::OutOfSpace("submission ring full");
  }
  const uint64_t align = queue_->io_alignment();
  if (!IsAligned(offset, align) || !IsAligned(src.size(), align) ||
      offset + src.size() > capacity_bytes_) {
    return Status::InvalidArgument("unaligned or out-of-range write");
  }
  pending_.push_back(Sqe{true, offset, const_cast<uint8_t*>(src.data()), src.size(), user_data});
  return Status::Ok();
}

StatusOr<uint32_t> AsyncIoRing::Submit(Vcpu& vcpu) {
  AQUILA_RETURN_IF_ERROR(CheckQueue());
  if (pending_.empty()) {
    return 0u;
  }
#if AQUILA_TELEMETRY_ENABLED
  static telemetry::Counter* ring_submits =
      telemetry::Registry().GetCounter("aquila.storage.ring_submits");
  static telemetry::Counter* ring_sqes =
      telemetry::Registry().GetCounter("aquila.storage.ring_sqes");
  ring_submits->Add();
  ring_sqes->Add(pending_.size());
  const uint64_t submit_start = vcpu.clock().Now();
#endif
  // ONE kernel entry for the whole batch.
  vcpu.ChargeSyscall();
  uint32_t submitted = 0;
  for (const Sqe& sqe : pending_) {
    // Per-request kernel block-layer work, then the device queue books media
    // time (the Prepare bound guarantees queue capacity).
    vcpu.clock().Charge(CostCategory::kSyscall, options_.kernel_per_request_cycles);
    Status status =
        sqe.write
            ? queue_->SubmitWrite(vcpu, sqe.offset, std::span(sqe.buffer, sqe.bytes),
                                  sqe.user_data)
            : queue_->SubmitRead(vcpu, sqe.offset, std::span(sqe.buffer, sqe.bytes),
                                 sqe.user_data);
    if (!status.ok()) {
      pending_.erase(pending_.begin(), pending_.begin() + submitted);
      return status;
    }
    submitted++;
  }
  pending_.clear();
#if AQUILA_TELEMETRY_ENABLED
  if (telemetry::Tracer::Enabled()) {
    telemetry::Tracer::Record(telemetry::TraceEventType::kRingSubmit, submit_start,
                              vcpu.clock().Now() - submit_start, submitted);
  }
#endif
  return submitted;
}

uint32_t AsyncIoRing::Convert(std::vector<DeviceQueue::Completion>& raw,
                              std::vector<Completion>* out) {
#if AQUILA_TELEMETRY_ENABLED
  static Histogram* ring_latency =
      telemetry::Registry().GetHistogram("aquila.storage.ring_latency_cycles");
#endif
  for (DeviceQueue::Completion& c : raw) {
    // Submit-to-completion latency as the application would measure it.
    AQUILA_TELEMETRY_ONLY(ring_latency->Record(c.ready_at - c.submit_at));
    out->push_back(Completion{c.user_data, std::move(c.status)});
  }
  return static_cast<uint32_t>(raw.size());
}

uint32_t AsyncIoRing::Harvest(Vcpu& vcpu, std::vector<Completion>* out) {
  if (queue_ == nullptr) {
    return 0;
  }
  std::vector<DeviceQueue::Completion> raw;
  queue_->Poll(vcpu, &raw);
  return Convert(raw, out);
}

Status AsyncIoRing::WaitFor(Vcpu& vcpu, uint32_t min, std::vector<Completion>* out) {
  AQUILA_RETURN_IF_ERROR(CheckQueue());
  if (min > queue_->in_flight() + static_cast<uint32_t>(out->size())) {
    return Status::InvalidArgument("waiting for more completions than in flight");
  }
  uint32_t have = Harvest(vcpu, out);
  while (have < min) {
    std::vector<DeviceQueue::Completion> raw;
    AQUILA_RETURN_IF_ERROR(queue_->WaitMin(vcpu, 1, &raw));
    have += Convert(raw, out);
  }
  return Status::Ok();
}

}  // namespace aquila
