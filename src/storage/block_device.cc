#include "src/storage/block_device.h"

namespace aquila {

Status BlockDevice::WriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                               std::span<const uint8_t* const> pages, uint64_t page_bytes) {
  for (size_t i = 0; i < offsets.size(); i++) {
    AQUILA_RETURN_IF_ERROR(Write(vcpu, offsets[i], std::span(pages[i], page_bytes)));
  }
  return Status::Ok();
}

Status BlockDevice::ReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                              std::span<uint8_t* const> pages, uint64_t page_bytes) {
  for (size_t i = 0; i < offsets.size(); i++) {
    AQUILA_RETURN_IF_ERROR(Read(vcpu, offsets[i], std::span(pages[i], page_bytes)));
  }
  return Status::Ok();
}

}  // namespace aquila
