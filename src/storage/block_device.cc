#include "src/storage/block_device.h"

#include <algorithm>

#include "src/storage/device_queue.h"
#include "src/telemetry/scoped_timer.h"

namespace aquila {

#if AQUILA_TELEMETRY_ENABLED
namespace {

// Shared across every device instance; per-device breakdown stays available
// through stats() while the registry reports runtime-wide latency.
struct DeviceHistograms {
  Histogram* read = telemetry::Registry().GetHistogram("aquila.storage.read_cycles");
  Histogram* write = telemetry::Registry().GetHistogram("aquila.storage.write_cycles");
  Histogram* read_batch =
      telemetry::Registry().GetHistogram("aquila.storage.read_batch_cycles");
  Histogram* write_batch =
      telemetry::Registry().GetHistogram("aquila.storage.write_batch_cycles");
};

const DeviceHistograms& GetDeviceHistograms() {
  static DeviceHistograms histograms;
  return histograms;
}

}  // namespace
#endif

BlockDevice::BlockDevice() {
  metrics_.AddCounter("aquila.storage.reads", stats_.reads);
  metrics_.AddCounter("aquila.storage.writes", stats_.writes);
  metrics_.AddCounter("aquila.storage.bytes_read", stats_.bytes_read);
  metrics_.AddCounter("aquila.storage.bytes_written", stats_.bytes_written);
  metrics_.AddCounter("aquila.storage.io_errors", stats_.io_errors);
  metrics_.AddCounter("aquila.storage.io_retries", stats_.io_retries);
  metrics_.AddCounter("aquila.storage.io_gave_up", stats_.io_gave_up);
}

template <typename Op>
Status BlockDevice::RunWithRetries(Vcpu& vcpu, Op&& op) {
  // Breaker check: a failed device refuses sync ops without touching the
  // medium, and once the probe interval elapses this same call is the one
  // ShouldFailFast lets through as the probe — the sync path can re-admit
  // a healed device just like the watchdog queue path.
  if (health_.enabled() && health_.ShouldFailFast(vcpu.clock().Now())) {
    return Status::Unavailable("device breaker open: failed fast");
  }
  uint64_t backoff = retry_policy_.initial_backoff_cycles;
  for (uint32_t attempt = 1;; attempt++) {
    Status status = op();
    if (status.ok() || status.code() != StatusCode::kIoError) {
      // Only genuine device verdicts feed health: success, or the kIoError
      // give-up below. Argument errors say nothing about the medium.
      if (health_.enabled() && status.ok()) {
        health_.RecordOutcome(vcpu.clock().Now(), DeviceHealth::Outcome::kOk);
      }
      return status;
    }
    stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= retry_policy_.max_attempts) {
      stats_.io_gave_up.fetch_add(1, std::memory_order_relaxed);
      if (health_.enabled()) {
        health_.RecordOutcome(vcpu.clock().Now(), DeviceHealth::Outcome::kError);
      }
      return status;
    }
    // Delayed requeue: the device is left alone for a backoff window drawn
    // with decorrelated jitter — uniform in [initial, min(cap, mult * prev)]
    // — so concurrent retriers desynchronize instead of re-colliding. The
    // draw hashes a per-device sequence number: deterministic per run,
    // thread-safe without a shared generator.
    uint64_t lo = retry_policy_.initial_backoff_cycles;
    uint64_t hi = std::min<uint64_t>(retry_policy_.max_backoff_cycles,
                                     backoff * retry_policy_.backoff_multiplier);
    if (hi > lo) {
      uint64_t draw =
          FnvHash64(retry_jitter_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
      backoff = lo + draw % (hi - lo + 1);
    } else {
      backoff = lo;
    }
    vcpu.clock().Charge(CostCategory::kIdle, backoff);
    stats_.io_retries.fetch_add(1, std::memory_order_relaxed);
  }
}

Status BlockDevice::ValidateRange(uint64_t offset, uint64_t size) const {
  const uint64_t align = io_alignment();
  if (offset % align != 0 || size % align != 0) {
    return Status::InvalidArgument("device I/O not aligned to io_alignment()");
  }
  if (offset + size < offset || offset + size > capacity_bytes()) {
    return Status::InvalidArgument("device I/O beyond capacity");
  }
  return Status::Ok();
}

Status BlockDevice::ValidateBatch(std::span<const uint64_t> offsets,
                                  uint64_t page_bytes) const {
  if (page_bytes == 0) {
    return Status::InvalidArgument("batched device I/O with zero page size");
  }
  for (uint64_t offset : offsets) {
    AQUILA_RETURN_IF_ERROR(ValidateRange(offset, page_bytes));
  }
  return Status::Ok();
}

Status BlockDevice::Read(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) {
  if (dst.empty()) {
    return Status::Ok();
  }
  AQUILA_RETURN_IF_ERROR(ValidateRange(offset, dst.size()));
  AQUILA_TELEMETRY_ONLY(const uint64_t start = vcpu.clock().Now());
  Status status = RunWithRetries(vcpu, [&] { return DoRead(vcpu, offset, dst); });
  if (status.ok()) {
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(dst.size(), std::memory_order_relaxed);
    AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(GetDeviceHistograms().read,
                                                     telemetry::TraceEventType::kDeviceRead,
                                                     vcpu.clock(), start, dst.size()));
  }
  return status;
}

Status BlockDevice::Write(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) {
  if (src.empty()) {
    return Status::Ok();
  }
  AQUILA_RETURN_IF_ERROR(ValidateRange(offset, src.size()));
  AQUILA_TELEMETRY_ONLY(const uint64_t start = vcpu.clock().Now());
  Status status = RunWithRetries(vcpu, [&] { return DoWrite(vcpu, offset, src); });
  if (status.ok()) {
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_written.fetch_add(src.size(), std::memory_order_relaxed);
    AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(GetDeviceHistograms().write,
                                                     telemetry::TraceEventType::kDeviceWrite,
                                                     vcpu.clock(), start, src.size()));
  }
  return status;
}

Status BlockDevice::WriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                               std::span<const uint8_t* const> pages, uint64_t page_bytes) {
  if (offsets.empty()) {
    return Status::Ok();
  }
  AQUILA_RETURN_IF_ERROR(ValidateBatch(offsets, page_bytes));
  AQUILA_TELEMETRY_ONLY(const uint64_t start = vcpu.clock().Now());
  Status status =
      RunWithRetries(vcpu, [&] { return DoWriteBatch(vcpu, offsets, pages, page_bytes); });
  if (status.ok()) {
    stats_.writes.fetch_add(offsets.size(), std::memory_order_relaxed);
    stats_.bytes_written.fetch_add(offsets.size() * page_bytes, std::memory_order_relaxed);
    AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(
        GetDeviceHistograms().write_batch, telemetry::TraceEventType::kDeviceWriteBatch,
        vcpu.clock(), start, offsets.size()));
  }
  return status;
}

Status BlockDevice::ReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                              std::span<uint8_t* const> pages, uint64_t page_bytes) {
  if (offsets.empty()) {
    return Status::Ok();
  }
  AQUILA_RETURN_IF_ERROR(ValidateBatch(offsets, page_bytes));
  AQUILA_TELEMETRY_ONLY(const uint64_t start = vcpu.clock().Now());
  Status status =
      RunWithRetries(vcpu, [&] { return DoReadBatch(vcpu, offsets, pages, page_bytes); });
  if (status.ok()) {
    stats_.reads.fetch_add(offsets.size(), std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(offsets.size() * page_bytes, std::memory_order_relaxed);
    AQUILA_TELEMETRY_ONLY(telemetry::RecordSpanSince(
        GetDeviceHistograms().read_batch, telemetry::TraceEventType::kDeviceReadBatch,
        vcpu.clock(), start, offsets.size()));
  }
  return status;
}

Status BlockDevice::Flush(Vcpu& vcpu) {
  return RunWithRetries(vcpu, [&] { return DoFlush(vcpu); });
}

std::unique_ptr<DeviceQueue> BlockDevice::CreateQueue(uint32_t depth) {
  return std::make_unique<SyncDeviceQueue>(this, depth);
}

Status BlockDevice::DoWriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                                 std::span<const uint8_t* const> pages, uint64_t page_bytes) {
  for (size_t i = 0; i < offsets.size(); i++) {
    AQUILA_RETURN_IF_ERROR(DoWrite(vcpu, offsets[i], std::span(pages[i], page_bytes)));
  }
  return Status::Ok();
}

Status BlockDevice::DoReadBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                                std::span<uint8_t* const> pages, uint64_t page_bytes) {
  for (size_t i = 0; i < offsets.size(); i++) {
    AQUILA_RETURN_IF_ERROR(DoRead(vcpu, offsets[i], std::span(pages[i], page_bytes)));
  }
  return Status::Ok();
}

}  // namespace aquila
