// Byte-addressable persistent-memory device (DAX model).
//
// Models a DIMM-attached NVM device (§3.3 "Direct access to NVM"): the
// medium is directly load/store-addressable (dax_base()), reads cost ~300 ns
// of media latency, and the CPU itself performs the copies. Aquila's DAX
// path uses the streaming (non-temporal) copy and pays an FPU save/restore
// only on faults that copy; the host-kernel path is restricted to the plain
// copy (kernels avoid SIMD). The 4 KB copy constants come from §3.3 and the
// copy is also executed for real, so data is always moved.
//
// The experiment scripts also use this device as the `pmem` block device the
// paper builds with the Linux pmem driver (a DRAM-backed block device that
// stresses the software path).
#ifndef AQUILA_SRC_STORAGE_PMEM_DEVICE_H_
#define AQUILA_SRC_STORAGE_PMEM_DEVICE_H_

#include <cstdint>

#include "src/storage/block_device.h"
#include "src/storage/nt_memcpy.h"
#include "src/util/sim_clock.h"

namespace aquila {

class PmemDevice : public BlockDevice {
 public:
  struct Options {
    uint64_t capacity_bytes = 1ull << 30;
    // Media latency per access (~300 ns at 2.4 GHz, §1 citing [31]). Not
    // serialized: DIMM-attached media serves concurrent accesses; only the
    // channel bandwidth below is a shared resource.
    uint64_t read_latency_cycles = 720;
    uint64_t write_latency_cycles = 720;
    // Channel bandwidth: cycles of exclusive channel time per 4 KB
    // (DRAM-backed pmem, tens of GB/s -> ~200 cycles per 4 KB).
    uint64_t channel_cycles_per_4k = 200;
    // Copy flavor for this access path: streaming for Aquila's DAX path,
    // plain for kernel-mediated access.
    CopyFlavor copy_flavor = CopyFlavor::kStreaming;
    // Charge the FPU save/restore that SIMD copies require in a fault
    // handler context (§3.3).
    bool charge_fpu_state = true;
  };

  explicit PmemDevice(const Options& options);
  ~PmemDevice() override;

  PmemDevice(const PmemDevice&) = delete;
  PmemDevice& operator=(const PmemDevice&) = delete;

  const char* name() const override { return "pmem"; }
  uint64_t capacity_bytes() const override { return options_.capacity_bytes; }
  // Persistent memory is byte-addressable (DAX loads/stores).
  uint64_t io_alignment() const override { return 1; }

  // Direct load/store window onto the medium (the DAX mapping).
  uint8_t* dax_base() { return base_; }
  const uint8_t* dax_base() const { return base_; }

  CopyFlavor copy_flavor() const { return options_.copy_flavor; }
  void set_copy_flavor(CopyFlavor flavor) { options_.copy_flavor = flavor; }

 protected:
  Status DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) override;
  Status DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) override;

 private:
  uint64_t CopyCostCycles(uint64_t bytes) const;
  Status CheckRange(uint64_t offset, uint64_t bytes) const;

  Options options_;
  uint8_t* base_ = nullptr;
  SerializedResource channel_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_PMEM_DEVICE_H_
