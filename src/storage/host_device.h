// Host-OS-mediated device access (the HOST-pmem / HOST-NVMe paths of
// Fig 8(c), and the kernel path of the explicit-I/O baselines).
//
// Wraps any device and prepends the host-kernel entry cost: a syscall when
// the caller is a normal ring-3 application, or a vmcall when the caller is
// an Aquila guest forwarding I/O to the host (§3.3 notes a vmcall is even
// more expensive than a syscall — which is exactly why Aquila prefers
// direct device access from non-root ring 0). On top of the entry cost the
// wrapper charges the kernel's filesystem/block-layer path per request.
#ifndef AQUILA_SRC_STORAGE_HOST_DEVICE_H_
#define AQUILA_SRC_STORAGE_HOST_DEVICE_H_

#include "src/storage/block_device.h"
#include "src/vmx/cost_model.h"

namespace aquila {

class HostIoDevice : public BlockDevice {
 public:
  enum class EntryPath {
    kSyscall,  // ring-3 application -> host kernel
    kVmcall,   // non-root ring 0 guest -> hypervisor -> host kernel
  };

  HostIoDevice(BlockDevice* inner, EntryPath path) : inner_(inner), path_(path) {}

  const char* name() const override {
    return path_ == EntryPath::kSyscall ? "host-syscall" : "host-vmcall";
  }
  uint64_t capacity_bytes() const override { return inner_->capacity_bytes(); }
  uint64_t io_alignment() const override { return inner_->io_alignment(); }

 protected:
  Status DoFlush(Vcpu& vcpu) override {
    ChargeEntry(vcpu);
    return inner_->Flush(vcpu);
  }

  Status DoRead(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) override {
    ChargeEntry(vcpu);
    return inner_->Read(vcpu, offset, dst);
  }

  Status DoWrite(Vcpu& vcpu, uint64_t offset, std::span<const uint8_t> src) override {
    ChargeEntry(vcpu);
    return inner_->Write(vcpu, offset, src);
  }

  Status DoWriteBatch(Vcpu& vcpu, std::span<const uint64_t> offsets,
                      std::span<const uint8_t* const> pages, uint64_t page_bytes) override {
    // One kernel entry covers the whole batch (writev/io_submit style), but
    // the kernel path is still paid per request.
    ChargeEntry(vcpu);
    for (size_t i = 1; i < offsets.size(); i++) {
      vcpu.clock().Charge(CostCategory::kSyscall, GlobalCostModel().kernel_io_path);
    }
    return inner_->WriteBatch(vcpu, offsets, pages, page_bytes);
  }

 private:
  void ChargeEntry(Vcpu& vcpu) {
    if (path_ == EntryPath::kSyscall) {
      vcpu.ChargeSyscall();
    } else {
      vcpu.ChargeVmcall();
    }
    vcpu.clock().Charge(CostCategory::kSyscall, GlobalCostModel().kernel_io_path);
  }

  BlockDevice* inner_;
  EntryPath path_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_STORAGE_HOST_DEVICE_H_
