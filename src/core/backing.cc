#include "src/core/backing.h"

#include <vector>

namespace aquila {

Status DeviceBacking::WritePages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                                 std::span<const uint8_t* const> pages, uint64_t page_bytes) {
  // Translate file offsets to device offsets, then hand the whole batch to
  // the device (NVMe overlaps it on the queue pair).
  std::vector<uint64_t> device_offsets(offsets.size());
  for (size_t i = 0; i < offsets.size(); i++) {
    if (offsets[i] + page_bytes > length_) {
      return Status::InvalidArgument("write beyond backing");
    }
    device_offsets[i] = base_ + offsets[i];
  }
  return device_->WriteBatch(vcpu, device_offsets, pages, page_bytes);
}

Status DeviceBacking::ReadPages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                                std::span<uint8_t* const> pages, uint64_t page_bytes) {
  std::vector<uint64_t> device_offsets(offsets.size());
  for (size_t i = 0; i < offsets.size(); i++) {
    if (offsets[i] + page_bytes > length_) {
      return Status::InvalidArgument("read beyond backing");
    }
    device_offsets[i] = base_ + offsets[i];
  }
  return device_->ReadBatch(vcpu, device_offsets, pages, page_bytes);
}

Status BlobBacking::ReadPages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                              std::span<uint8_t* const> pages, uint64_t page_bytes) {
  std::vector<uint64_t> device_offsets(offsets.size());
  for (size_t i = 0; i < offsets.size(); i++) {
    StatusOr<uint64_t> dev = store_->TranslateOffset(blob_, offsets[i]);
    if (!dev.ok()) {
      return dev.status();
    }
    device_offsets[i] = *dev;
  }
  return store_->device()->ReadBatch(vcpu, device_offsets, pages, page_bytes);
}

Status BlobBacking::WritePages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                               std::span<const uint8_t* const> pages, uint64_t page_bytes) {
  std::vector<uint64_t> device_offsets(offsets.size());
  for (size_t i = 0; i < offsets.size(); i++) {
    StatusOr<uint64_t> dev = store_->TranslateOffset(blob_, offsets[i]);
    if (!dev.ok()) {
      return dev.status();
    }
    device_offsets[i] = *dev;
  }
  return store_->device()->WriteBatch(vcpu, device_offsets, pages, page_bytes);
}

}  // namespace aquila
