// Engine-neutral mmio interface.
//
// Applications (key-value stores, the graph framework, the benchmarks)
// program against MemoryMap/MmioEngine so the same workload runs over
// Aquila, over the Linux-mmap baseline simulator, or over kmmap — exactly
// the comparison matrix of the paper's evaluation.
//
// Access semantics mirror shared file-backed mmap (§2.1): loads and stores
// hit the DRAM cache through hardware-translated mappings; misses fault;
// stores mark pages dirty; Msync writes a range back durably.
#ifndef AQUILA_SRC_CORE_MMIO_H_
#define AQUILA_SRC_CORE_MMIO_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/backing.h"
#include "src/util/status.h"
#include "src/vma/vma_tree.h"  // kProtRead / kProtWrite

namespace aquila {

enum class Advice {
  kNormal = 0,
  kRandom,      // disable read-ahead
  kSequential,  // aggressive read-ahead
  kWillNeed,    // prefetch the range now
  kDontNeed,    // drop the range from the cache
};

// Outcome of one single-page touch. `faulted` is only meaningful when
// `status` is OK; a non-OK status (device EIO, degraded mapping, kUnavailable
// from a failed device breaker) means the access never completed.
struct AccessResult {
  bool faulted = false;
  Status status;

  bool ok() const { return status.ok(); }
};

// One request on the batched submission surface. Empty-span kRead/kWrite
// requests are touch accesses (one load / one store at `offset`); non-empty
// spans copy through the mapping like Read/Write. kPrefetch hints the range
// into the cache (madvise(WILLNEED) semantics) and never reports a fault.
struct MmioRequest {
  enum class Kind : uint8_t { kRead = 0, kWrite, kPrefetch };
  Kind kind = Kind::kRead;
  uint64_t offset = 0;
  std::span<uint8_t> data;  // empty: touch-only access
  uint64_t user_tag = 0;    // opaque; returned in the completion
};

// One completed request. `faulted` mirrors AccessResult (true when servicing
// the request took at least one page fault); prefetches never fault.
struct MmioCompletion {
  uint64_t user_tag = 0;
  Status status;
  bool faulted = false;
};

class MemoryMap {
 public:
  virtual ~MemoryMap() = default;

  virtual uint64_t length() const = 0;

  // Bulk accessors (may span pages; fault in what is missing).
  virtual Status Read(uint64_t offset, std::span<uint8_t> dst) = 0;
  virtual Status Write(uint64_t offset, std::span<const uint8_t> src) = 0;

  // Single-page touch: the microbenchmark primitive (one load / one store at
  // `offset`). Reports whether the access faulted and any fault-path I/O
  // error (PR 2 degraded mode, watchdog kUnavailable) in the status.
  virtual AccessResult TouchRead(uint64_t offset) = 0;
  virtual AccessResult TouchWrite(uint64_t offset) = 0;

  // msync(MS_SYNC) over [offset, offset+length).
  virtual Status Sync(uint64_t offset, uint64_t length) = 0;

  // madvise over [offset, offset+length).
  virtual Status Advise(uint64_t offset, uint64_t length, Advice advice) = 0;

  // --- Batched request surface -------------------------------------------------
  // SubmitBatch enqueues requests; Poll moves finished ones into `out` and
  // returns how many it wrote. Engines that can overlap faults (Aquila's
  // cooperative scheduler) service the batch concurrently; the base
  // implementation degrades to a synchronous loop — every request completes
  // during SubmitBatch and Poll merely drains the buffered completions, so
  // the interface is portable across engines. Completions may be reordered
  // relative to submission; `user_tag` is the correlation handle.
  virtual Status SubmitBatch(std::span<const MmioRequest> requests);
  virtual size_t Poll(std::span<MmioCompletion> out);

  // Typed scalar accessors for pointer-chasing workloads (Ligra's heap).
  template <typename T>
  T LoadValue(uint64_t offset) {
    T value{};
    Status status = Read(offset, std::span(reinterpret_cast<uint8_t*>(&value), sizeof(T)));
    AQUILA_CHECK(status.ok());
    return value;
  }

  template <typename T>
  void StoreValue(uint64_t offset, const T& value) {
    Status status =
        Write(offset, std::span(reinterpret_cast<const uint8_t*>(&value), sizeof(T)));
    AQUILA_CHECK(status.ok());
  }

 protected:
  // Completion buffer for the synchronous SubmitBatch fallback. The batch
  // surface is a per-thread protocol (one submitting thread per map, like a
  // ring): implementations need no locking around it.
  std::vector<MmioCompletion> sync_completions_;
};

class MmioEngine {
 public:
  virtual ~MmioEngine() = default;

  virtual const char* name() const = 0;

  // mmap: maps `length` bytes of `backing` starting at backing offset 0.
  // `prot` is a kProtRead/kProtWrite mask. The engine owns the returned map
  // until Unmap.
  virtual StatusOr<MemoryMap*> Map(Backing* backing, uint64_t length, int prot) = 0;

  // munmap: flushes dirty pages and releases the mapping.
  virtual Status Unmap(MemoryMap* map) = 0;

  // Per-thread initialization (Aquila: switch the thread into non-root
  // ring 0; baseline: no-op).
  virtual void EnterThread() {}
};

}  // namespace aquila

#endif  // AQUILA_SRC_CORE_MMIO_H_
