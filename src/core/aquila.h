// Aquila: the library OS runtime (§3, §4).
//
// An Aquila instance plays the role of the guest OS the paper collocates
// with the application in VMX non-root ring 0. It owns:
//   - one guest context on the simulated hypervisor (EPT, GPA grants);
//   - a single process-wide page table (GVA -> frame) and per-core TLBs;
//   - the DRAM I/O cache (lock-free hash, 2-level freelist, dirty trees);
//   - the radix-tree VMA manager and a VA allocator;
//   - the posted-IPI fabric for batched TLB shootdowns.
//
// Application integration mirrors the paper (§4): one call to construct the
// runtime at startup, one EnterThread() per thread; thereafter mmap-like
// calls (Map/Unmap/Sync/Advise/Protect/Remap) are handled entirely inside
// non-root ring 0 — no vmcall — while cache growth and shrink go to the
// hypervisor (operation ⑤).
#ifndef AQUILA_SRC_CORE_AQUILA_H_
#define AQUILA_SRC_CORE_AQUILA_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/core/mmio.h"
#include "src/mem/page_table.h"
#include "src/mem/tlb.h"
#include "src/telemetry/metrics.h"
#include "src/util/spinlock.h"
#include "src/vma/vma_tree.h"
#include "src/vmx/hypervisor.h"
#include "src/vmx/ipi.h"

namespace aquila {

namespace telemetry {
class StatsServer;
}  // namespace telemetry

class AquilaMap;
class SchedRegistry;

// How HarvestAsyncWritebacks behaves when no completion is ready: kPoll
// returns immediately; kWaitOne advances simulated time until one in-flight
// completion reaps (the backstop when every frame is tied up in the
// pipeline).
enum class HarvestMode : uint8_t { kPoll = 0, kWaitOne };

// Captures a frame's shootdown-routing state into a PageShootdown row. This
// is the ONE rule every capture site (eviction, msync, DONTNEED, teardown,
// mremap, mprotect) follows:
//
//   The caller owns the frame's publication edge at capture time — a claim
//   CAS out of kResident and/or the page's VMA entry lock — which orders the
//   capture after every NoteTlbInsert a faulter could have published for
//   this incarnation. Capture happens AFTER the PTE was removed (or its W
//   bit cleared, for downgrades), so no new translation can be minted for
//   the page afterwards; the relaxed loads below therefore see a complete
//   mask/epoch, and the epoch can never exceed the global flush epoch (the
//   masked TlbSet::Shootdown debug-asserts exactly that).
//
//   The only unclaimed site, by design, is Protect's write-downgrade: the
//   atomic W-bit clear precedes the capture, so a racing faulter can only
//   insert a read-only entry, and a conservatively stale mask/epoch merely
//   costs an elidable IPI — never a missed one.
inline PageShootdown CaptureShootdownPage(const Frame& frame, uint64_t vpn) {
  return PageShootdown{vpn, frame.cpu_mask.load(std::memory_order_relaxed),
                       frame.tlb_epoch.load(std::memory_order_relaxed)};
}

// Transparent 2 MB huge-page counters (DESIGN.md §14). All-atomic.
struct HugeStats {
  std::atomic<uint64_t> promotions{0};          // spans switched to a 2 MB leaf
  std::atomic<uint64_t> demotions{0};           // spans split back to 4K
  std::atomic<uint64_t> fault_around_mapped{0}; // neighbors mapped by fault-around
  std::atomic<uint64_t> runs_carved{0};         // aligned runs consumed by promotion
  std::atomic<uint64_t> promote_aborts{0};      // promotions unwound mid-protocol
};

struct FaultStats {
  std::atomic<uint64_t> major_faults{0};   // page read from the device
  std::atomic<uint64_t> minor_faults{0};   // page was in cache, mapping installed
  std::atomic<uint64_t> write_upgrades{0}; // write fault on a read-only mapping
  std::atomic<uint64_t> evict_batches{0};
  std::atomic<uint64_t> evicted_pages{0};
  std::atomic<uint64_t> writeback_pages{0};
  std::atomic<uint64_t> readahead_pages{0};
  // Writeback batches that failed after the device's retry budget. Feeds
  // the per-mapping degradation counter (Options::writeback_failure_limit).
  std::atomic<uint64_t> writeback_errors{0};
};

class Aquila : public MmioEngine {
 public:
  struct Options {
    Hypervisor::Options hypervisor;
    PageCache::Options cache;
    PostedIpiFabric::SendPath ipi_send_path = PostedIpiFabric::SendPath::kVmexitProtected;
    // Mappings removed per TLB shootdown batch (512 in the paper, §4.1).
    uint32_t shootdown_batch = 512;
    // Pages prefetched on a sequential-advice miss.
    uint32_t readahead_pages = 8;
    // Cores participating in shootdowns; defaults to all registered cores.
    int active_cores = 0;
    // IPI targeting for shootdown batches (DESIGN.md §10): kBroadcast sends
    // to every active core (paper §4.1 baseline); kMask skips cores with no
    // bit in the victims' Frame::cpu_mask; kMaskGen additionally skips cores
    // whose whole TLB was flushed after the page's last insert; kReuseElide
    // additionally DEFERS the shootdown for clean evicted pages — if the
    // frame returns to the same (region, page) before any other use, the
    // flush is skipped outright; any cross-owner handout executes it
    // (debt-amortized) first. See the safety argument in DESIGN.md §10.
    ShootdownMaskMode shootdown_mask_mode = ShootdownMaskMode::kMaskGen;
    // Consecutive writeback failures (each already past the device retry
    // budget) before a mapping degrades to read-only. Mirrors how the
    // kernel remounts a filesystem read-only after repeated EIO.
    uint32_t writeback_failure_limit = 3;
    // Asynchronous overlapped writeback/readahead: eviction submits its
    // offset-sorted dirty batch on the backing device's queue and continues
    // fault handling while the device works; dirty frames sit in
    // kWritingBack until their completions reap on the fault path. Devices
    // without queueing fall back to a synchronous-emulation shim (same
    // semantics, no overlap). Off by default: writeback completes
    // synchronously exactly as before.
    bool async_writeback = false;
    // Per-mapping device queue depth for the async engine.
    uint32_t async_queue_depth = 32;
    // Completion watchdog for async device ops (sim-clock driven). 0
    // (default) keeps the raw device queue — no watchdog state on the hot
    // path, bit-identical sim metrics. > 0 wraps the engine's queue in a
    // WatchdogQueue: each submission attempt must complete within this many
    // simulated microseconds or it is cancelled/abandoned and retried with
    // capped backoff + decorrelated jitter, and the device's health state
    // machine (DeviceHealth) is armed as a circuit breaker — `degraded`
    // sheds readahead and caps queue depth, `failed` fails fast with
    // kUnavailable so repeated failures flip the mapping into the existing
    // degraded-read-only mode.
    uint32_t device_op_timeout_us = 0;
    // Hedged reads on the watchdog queue: after a p99-based delay, issue a
    // read a second time; first completion wins, the loser is reconciled.
    bool hedge_reads = false;
    // Cooperative fault scheduling (src/core/sched.h): batch requests
    // submitted through MemoryMap::SubmitBatch park at fault-path wait
    // points (in-flight fill, kWritingBack pin, demand device read) instead
    // of blocking, and resume as async completions are harvested — turning
    // device queue depth into per-core request throughput. Requires
    // async_writeback. Off by default: the fault path never consults the
    // scheduler (one null-context branch), SubmitBatch degrades to the
    // synchronous loop, and sim metrics are bit-identical to pre-scheduler
    // builds.
    bool coop_sched = false;
    // Per-core cap on simultaneously parked requests; a park attempt past
    // the cap falls back to the blocking protocol for that access.
    uint32_t sched_max_parked = 64;
    // Simulated microseconds in kFailed before the prober re-admits one op
    // to test the device.
    uint32_t device_probe_interval_us = 1000;
    // Transparent 2 MB huge pages (DESIGN.md §14): the freelist carves
    // aligned 512-frame runs at Grow time, soft-mode mappings get 2 MB-
    // aligned VA plus a per-span density tracker, the 4K fault path maps
    // already-resident neighbors (fault-around), and dense spans promote to
    // a single 2 MB guest-PT leaf filled by one batched device read. Off by
    // default: no runs are carved, no spans are allocated, and sim metrics
    // are bit-identical to pre-huge-page builds.
    bool huge_pages = false;
    // 4K PTEs resident in a 2 MB span before the next fault promotes it
    // (kSequential advice promotes on first touch). 0 disables promotion,
    // leaving fault-around only.
    uint32_t huge_promote_threshold = 64;
    // Already-resident forward neighbors mapped per 4K fault (clamped to the
    // faulting page's 2 MB span, like Linux's PMD-bounded fault-around).
    // 0 disables fault-around. Only consulted when huge_pages is on.
    uint32_t fault_around_pages = 16;
    // Request-scoped causal tracing (src/telemetry/span.h): sample one
    // request in N into the span collector, which decomposes each sampled
    // fault/msync into child phases and keeps the slowest trees. 0
    // (default) disables sampling — span call sites cost two thread-local
    // reads.
    uint32_t span_sample_every = 0;
    // Sampled requests at least this slow (simulated microseconds) keep
    // their whole span tree in the flight recorder regardless of rank.
    uint32_t slow_trace_us = 0;
    // Live stats endpoint (src/telemetry/stats_server.h) on 127.0.0.1:
    // -1 (default) disabled, 0 ephemeral port, >0 that port. Serves
    // /metrics, /metrics.json, /traces, /slow.
    int stats_server_port = -1;
    // Invoked from the trap driver's signal handler when a REAL fault on a
    // transparent mapping cannot be resolved because of an I/O error — the
    // analog of the SIGBUS the kernel raises for a failed mmap read. The
    // handler typically siglongjmps; if it returns (or is unset) the fault
    // falls through to the default disposition and the process dies, just
    // like an unhandled SIGBUS.
    std::function<void(uint64_t vaddr, const Status& status)> sigbus_handler;
  };

  explicit Aquila(const Options& options);
  ~Aquila() override;

  Aquila(const Aquila&) = delete;
  Aquila& operator=(const Aquila&) = delete;

  // --- MmioEngine -------------------------------------------------------------
  const char* name() const override { return "aquila"; }
  StatusOr<MemoryMap*> Map(Backing* backing, uint64_t length, int prot) override;
  Status Unmap(MemoryMap* map) override;
  void EnterThread() override;

  // mremap: moves `map` to a mapping of `new_length` (data and cache state
  // preserved; virtual addresses change, old TLB entries shot down).
  StatusOr<MemoryMap*> Remap(MemoryMap* map, uint64_t new_length);

  // Transparent (trap-mode) mapping: the returned map's data() pointer is
  // directly dereferenceable; misses take REAL page faults served by the
  // Aquila fault path, and hits cost nothing at all (hardware TLB). See
  // src/core/trap_driver.h. Linux/x86-64 only.
  StatusOr<MemoryMap*> MapTransparent(Backing* backing, uint64_t length, int prot);

  // Dynamic cache resizing (operation ⑤): interacts with the hypervisor.
  Status GrowCache(uint64_t add_bytes);
  StatusOr<uint64_t> ShrinkCache(uint64_t remove_bytes);

  // Reaps ready async writeback/fill completions across every mapping;
  // returns the number of frames released to the freelist. No-op (returns 0)
  // when async writeback is off. See HarvestMode for the idle behavior.
  size_t HarvestAsyncWritebacks(Vcpu& vcpu, HarvestMode mode = HarvestMode::kPoll);

  // --- Introspection ----------------------------------------------------------
  Hypervisor& hypervisor() { return hypervisor_; }
  PageCache& cache() { return *cache_; }
  PageTable& page_table() { return page_table_; }
  TlbSet& tlb() { return tlb_; }
  VmaTree& vma_tree() { return vma_tree_; }
  PostedIpiFabric& fabric() { return fabric_; }
  FaultStats& fault_stats() { return fault_stats_; }
  const FaultStats& fault_stats() const { return fault_stats_; }
  HugeStats& huge_stats() { return huge_stats_; }
  const HugeStats& huge_stats() const { return huge_stats_; }
  const Options& options() const { return options_; }
  int guest() const { return guest_; }
  int active_cores() const;
  // The live stats endpoint, or nullptr when disabled (or bind failed).
  telemetry::StatsServer* stats_server() const { return stats_server_.get(); }
  // The cooperative-scheduler registry, or nullptr when coop_sched is off.
  SchedRegistry* sched() { return sched_.get(); }

  // Completion->continuation bridge: wakes requests parked on `key` across
  // every core's scheduler. Called from AsyncWritebackEngine::CompleteLocked
  // (engine lock held; the sched table lock nests under it). `frame` is the
  // completed fill's frame so the demand owner receives `status` as
  // terminal; kInvalidFrame for writeback completions. No-op (one null
  // check) when coop_sched is off.
  void WakeParked(uint64_t key, FrameId frame, const Status& status, int waker_core);

  // Shoots down `pages` in Options::shootdown_batch-sized sub-batches under
  // the configured shootdown_mask_mode, with `vcpu` as the initiator. The
  // per-page masks/epochs must have been captured from the owning frames
  // while they were claimed (before FreeFrame could recycle them).
  void ShootdownPages(Vcpu& vcpu, std::span<const PageShootdown> pages);

  // --- kReuseElide plumbing (DESIGN.md §10) -----------------------------------
  // Parks the shootdown for a clean evicted page in the TLB's deferred table
  // and returns the ReuseStamp the freeing path must hand to FreeFrame.
  ReuseStamp DeferPageShootdown(const PageShootdown& page, uint64_t region, int core,
                                FrameId frame);
  // Resolves a freshly allocated frame's reuse stamp on the fault path.
  // Same-owner reuse (stamp's vpn == fault_vpn, same frame and region, and
  // `allow_elide`) restores the frame's cpu_mask/tlb_epoch from the deferral
  // and elides the flush; any other pending deferral — the stamp's, or one
  // parked for `fault_vpn` against a different frame — is executed first.
  // Returns true when the flush was elided (the caller must call
  // ExecuteElidedShootdown before freeing the frame if its fill later
  // fails). No-op outside kReuseElide.
  bool ResolveReuseStamp(Vcpu& vcpu, const ReuseStamp& stamp, FrameId frame,
                         uint64_t fault_vpn, uint64_t region, bool allow_elide);
  // Executes (and counts as a mismatch) any deferral parked for `vpn`:
  // required before installing a translation for `vpn` backed by a frame the
  // deferral does not cover (e.g. the minor-fault path mapping a readahead
  // frame). No-op outside kReuseElide; one relaxed load when the table is
  // empty.
  void ResolveDeferredForVpn(Vcpu& vcpu, uint64_t vpn, FrameId frame);
  // Failure backstop: after an elided resolve, a failed fill must flush the
  // routing state the elision restored before FreeFrame recycles the frame —
  // otherwise the re-legitimized stale entries would outlive the frame's
  // identity untracked.
  void ExecuteElidedShootdown(Vcpu& vcpu, uint64_t vpn, uint64_t region, FrameId frame);

 private:
  friend class AquilaMap;

  Options options_;
  Hypervisor hypervisor_;
  int guest_;
  PageTable page_table_;
  TlbSet tlb_;
  PostedIpiFabric fabric_;
  VmaTree vma_tree_;
  VaAllocator va_allocator_;
  std::unique_ptr<PageCache> cache_;
  FaultStats fault_stats_;
  HugeStats huge_stats_;

  SpinLock maps_lock_;
  std::vector<std::unique_ptr<AquilaMap>> maps_;
  std::atomic<uint64_t> next_mapping_id_{1};
  std::atomic<bool> trap_mode_used_{false};
  std::unique_ptr<SchedRegistry> sched_;  // iff Options::coop_sched
  std::unique_ptr<telemetry::StatsServer> stats_server_;
  // Last member: callbacks read the stats above, so they unregister first.
  telemetry::CallbackGroup metrics_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_CORE_AQUILA_H_
