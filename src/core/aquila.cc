#include "src/core/aquila.h"

#include <algorithm>
#include <cstdio>

#include "src/core/mmio_region.h"
#include "src/core/sched.h"
#include "src/core/trap_driver.h"
#include "src/telemetry/span.h"
#include "src/telemetry/stats_server.h"
#include "src/util/bitops.h"

namespace aquila {

Aquila::Aquila(const Options& options)
    : options_(options),
      hypervisor_(options.hypervisor),
      guest_(hypervisor_.CreateGuest()),
      fabric_(options.ipi_send_path) {
  EnterThread();
  // Huge pages need aligned runs carved at Grow time; with the option off
  // the freelist keeps its exact pre-huge-page layout (byte-identical off
  // path).
  options_.cache.freelist.carve_runs = options_.huge_pages;
  // Keep one intact run in reserve for promotion — broken runs never
  // re-form, so a 4K-heavy warmup phase would otherwise spend every run as
  // singles and lock the mapping out of huge pages for its whole lifetime.
  // Only when the cache is comfortably larger than the reserve; a tiny
  // cache keeps every frame available for 4K demand.
  if (options_.huge_pages && options_.cache.capacity_pages > 2 * kRunFrames) {
    options_.cache.freelist.reserve_runs = 1;
  }
  cache_ = std::make_unique<PageCache>(&hypervisor_, guest_, ThisVcpu(), options_.cache);

  metrics_.AddCounter("aquila.core.major_faults", fault_stats_.major_faults);
  metrics_.AddCounter("aquila.core.minor_faults", fault_stats_.minor_faults);
  metrics_.AddCounter("aquila.core.write_upgrades", fault_stats_.write_upgrades);
  metrics_.AddCounter("aquila.core.evict_batches", fault_stats_.evict_batches);
  metrics_.AddCounter("aquila.core.evicted_pages", fault_stats_.evicted_pages);
  metrics_.AddCounter("aquila.core.writeback_pages", fault_stats_.writeback_pages);
  metrics_.AddCounter("aquila.core.readahead_pages", fault_stats_.readahead_pages);
  metrics_.AddCounter("aquila.core.writeback_errors", fault_stats_.writeback_errors);
  metrics_.Add("aquila.tlb.hits", telemetry::MetricKind::kCounter,
               [this] { return tlb_.hits(); });
  metrics_.Add("aquila.tlb.misses", telemetry::MetricKind::kCounter,
               [this] { return tlb_.misses(); });
  metrics_.Add("aquila.tlb.shootdown_rounds", telemetry::MetricKind::kCounter,
               [this] { return tlb_.shootdowns(); });
  metrics_.Add("aquila.tlb.ipis_sent", telemetry::MetricKind::kCounter,
               [this] { return tlb_.ipis_sent(); });
  metrics_.Add("aquila.tlb.ipis_elided", telemetry::MetricKind::kCounter,
               [this] { return tlb_.ipis_elided(); });
  metrics_.Add("aquila.tlb.shootdowns_local", telemetry::MetricKind::kCounter,
               [this] { return tlb_.shootdowns_local(); });
  metrics_.Add("aquila.tlb.reuse_elided", telemetry::MetricKind::kCounter,
               [this] { return tlb_.reuse_elided(); });
  metrics_.Add("aquila.tlb.reuse_mismatch", telemetry::MetricKind::kCounter,
               [this] { return tlb_.reuse_mismatch(); });

  if (options_.huge_pages) {
    // Registered only when the feature is on, keeping off-mode metric dumps
    // identical to pre-huge-page builds.
    metrics_.AddCounter("aquila.huge.promotions", huge_stats_.promotions);
    metrics_.AddCounter("aquila.huge.demotions", huge_stats_.demotions);
    metrics_.AddCounter("aquila.huge.fault_around_mapped", huge_stats_.fault_around_mapped);
    metrics_.AddCounter("aquila.huge.runs_carved", huge_stats_.runs_carved);
    metrics_.AddCounter("aquila.huge.promote_aborts", huge_stats_.promote_aborts);
  }

  if (options_.coop_sched) {
    AQUILA_CHECK(options_.async_writeback);  // parks resume on async completions
    sched_ = std::make_unique<SchedRegistry>(options_.sched_max_parked);
    metrics_.AddCounter("aquila.sched.parked", sched_->parked_total);
    metrics_.AddCounter("aquila.sched.resumed", sched_->resumed_total);
    metrics_.AddCounter("aquila.sched.steals", sched_->steals);
    metrics_.Add("aquila.sched.park_depth", telemetry::MetricKind::kGauge, [this] {
      int64_t depth = sched_->parked_depth.load(std::memory_order_relaxed);
      return static_cast<uint64_t>(depth > 0 ? depth : 0);
    });
  }

  if (options_.span_sample_every > 0) {
    telemetry::SpanCollector::Options span_options =
        telemetry::SpanCollector::Global().options();
    span_options.sample_every = options_.span_sample_every;
    span_options.slow_threshold_cycles =
        static_cast<uint64_t>(options_.slow_trace_us) * GlobalCostModel().cycles_per_us;
    telemetry::SpanCollector::Global().Configure(span_options);
  }
  if (options_.stats_server_port >= 0) {
    telemetry::StatsServer::Options server_options;
    server_options.port = options_.stats_server_port;
    server_options.cycles_per_us = GlobalCostModel().cycles_per_us;
    std::string error;
    stats_server_ = telemetry::StatsServer::Start(server_options, &error);
    if (stats_server_ == nullptr) {
      // Stats are observability, never availability: run without them.
      std::fprintf(stderr, "aquila: stats server disabled (%s)\n", error.c_str());
    }
  }
}

Aquila::~Aquila() {
  // Tear down any mappings the application leaked; writeback must still run
  // (shared file mappings persist after exit, §2.1).
  std::vector<std::unique_ptr<AquilaMap>> maps;
  {
    std::lock_guard<SpinLock> guard(maps_lock_);
    maps.swap(maps_);
  }
  for (auto& map : maps) {
    (void)map->TearDown();
  }
  TrapDriver::UnregisterRuntime(this);
}

void Aquila::EnterThread() {
  CoreRegistry::RegisterThisThread();
  ThisVcpu().set_mode(CpuMode::kGuestRing0);
  if (trap_mode_used_.load(std::memory_order_acquire)) {
    TrapDriver::Install();  // idempotent; sets up this thread's signal stack
  }
}

int Aquila::active_cores() const {
  if (options_.active_cores > 0) {
    return options_.active_cores;
  }
  return CoreRegistry::RegisteredCores();
}

void Aquila::ShootdownPages(Vcpu& vcpu, std::span<const PageShootdown> pages) {
  if (pages.empty()) {
    return;
  }
  telemetry::ChildSpan span(vcpu.clock(), telemetry::SpanPhase::kShootdown, pages.size());
  for (size_t i = 0; i < pages.size(); i += options_.shootdown_batch) {
    size_t n = std::min<size_t>(options_.shootdown_batch, pages.size() - i);
    tlb_.Shootdown(vcpu.clock(), vcpu.core(), active_cores(), pages.subspan(i, n),
                   fabric_, options_.shootdown_mask_mode);
  }
}

ReuseStamp Aquila::DeferPageShootdown(const PageShootdown& page, uint64_t region,
                                      int core, FrameId frame) {
  DeferredShootdown d;
  d.vpn = page.vpn;
  d.region = region;
  d.frame = frame;
  d.cpu_mask = page.cpu_mask;
  d.tlb_epoch = page.tlb_epoch;
  tlb_.Defer(d);
  ReuseStamp stamp;
  stamp.vpn = page.vpn;
  stamp.region = region;
  stamp.cpu_mask = page.cpu_mask;
  stamp.tlb_epoch = page.tlb_epoch;
  stamp.core = core;
  stamp.deferred = true;
  stamp.valid = true;
  return stamp;
}

void Aquila::ResolveDeferredForVpn(Vcpu& vcpu, uint64_t vpn, FrameId frame) {
  if (options_.shootdown_mask_mode != ShootdownMaskMode::kReuseElide) {
    return;
  }
  if (vpn == 0 || tlb_.deferred_pending() == 0) {
    return;
  }
  DeferredShootdown d;
  if (!tlb_.TakeDeferred(vpn, &d)) {
    return;
  }
  // The same-frame case is the alloc-path elide; a deferral found here must
  // belong to a different (freed or re-owned) frame.
  AQUILA_DCHECK(d.frame != frame);
  (void)frame;
  tlb_.ExecuteDeferred(vcpu.clock(), vcpu.core(), active_cores(), d, fabric_);
  tlb_.NoteReuseMismatch();
}

bool Aquila::ResolveReuseStamp(Vcpu& vcpu, const ReuseStamp& stamp, FrameId frame,
                               uint64_t fault_vpn, uint64_t region, bool allow_elide) {
  if (options_.shootdown_mask_mode != ShootdownMaskMode::kReuseElide) {
    return false;
  }
  bool elided = false;
  bool took_fault_vpn = false;
  if (stamp.valid && stamp.deferred) {
    DeferredShootdown d;
    if (tlb_.TakeDeferred(stamp.vpn, &d)) {
      took_fault_vpn = (stamp.vpn == fault_vpn);
      if (allow_elide && took_fault_vpn && d.frame == frame && d.region == region) {
        // Same-owner reuse: the stale translations named by d.cpu_mask point
        // at this very frame, which is about to hold the same (region, vpn)
        // contents again — they become live-correct instead of stale.
        // RESTORE (not reset) the routing state so the next eviction still
        // targets those cores, and skip the flush entirely.
        Frame& f = cache_->frame(frame);
        f.cpu_mask.fetch_or(d.cpu_mask, std::memory_order_relaxed);
        uint64_t seen = f.tlb_epoch.load(std::memory_order_relaxed);
        while (seen < d.tlb_epoch &&
               !f.tlb_epoch.compare_exchange_weak(seen, d.tlb_epoch,
                                                  std::memory_order_relaxed)) {
        }
        tlb_.NoteReuseElided();
        elided = true;
      } else {
        tlb_.ExecuteDeferred(vcpu.clock(), vcpu.core(), active_cores(), d, fabric_);
        tlb_.NoteReuseMismatch();
      }
    }
  }
  if (!took_fault_vpn) {
    // The fault vpn itself may have a deferral parked against a different
    // frame (that frame went elsewhere, but cores on its mask still hold
    // stale entries for fault_vpn): flush before the new install.
    ResolveDeferredForVpn(vcpu, fault_vpn, frame);
  }
  return elided;
}

void Aquila::ExecuteElidedShootdown(Vcpu& vcpu, uint64_t vpn, uint64_t region,
                                    FrameId frame) {
  Frame& f = cache_->frame(frame);
  DeferredShootdown d;
  d.vpn = vpn;
  d.region = region;
  d.frame = frame;
  d.cpu_mask = f.cpu_mask.load(std::memory_order_relaxed);
  d.tlb_epoch = f.tlb_epoch.load(std::memory_order_relaxed);
  // Not a mismatch: this deferral was already counted elided; the execute is
  // the failure backstop, not a cross-owner handout.
  tlb_.ExecuteDeferred(vcpu.clock(), vcpu.core(), active_cores(), d, fabric_);
}

StatusOr<MemoryMap*> Aquila::Map(Backing* backing, uint64_t length, int prot) {
  if (length == 0 || backing == nullptr) {
    return Status::InvalidArgument("empty mapping");
  }
  if (length > backing->size_bytes()) {
    return Status::InvalidArgument("mapping longer than backing object");
  }
  if ((prot & (kProtRead | kProtWrite)) == 0) {
    return Status::InvalidArgument("mapping needs read or write protection");
  }
  auto map = std::make_unique<AquilaMap>(this, backing, length, prot);
  AQUILA_RETURN_IF_ERROR(map->Install());
  AquilaMap* raw = map.get();
  std::lock_guard<SpinLock> guard(maps_lock_);
  maps_.push_back(std::move(map));
  return static_cast<MemoryMap*>(raw);
}

Status Aquila::Unmap(MemoryMap* map) {
  std::unique_ptr<AquilaMap> owned;
  {
    std::lock_guard<SpinLock> guard(maps_lock_);
    auto it = std::find_if(maps_.begin(), maps_.end(),
                           [map](const auto& m) { return m.get() == map; });
    if (it == maps_.end()) {
      return Status::NotFound("not an active mapping");
    }
    owned = std::move(*it);
    maps_.erase(it);
  }
  return owned->TearDown();
}

StatusOr<MemoryMap*> Aquila::Remap(MemoryMap* map, uint64_t new_length) {
  auto* old_map = static_cast<AquilaMap*>(map);
  if (old_map->transparent()) {
    // Moving a transparent mapping would relocate PTEs but not the live
    // hardware translations the application's pointers depend on.
    return Status::Unimplemented("mremap of transparent mappings");
  }
  if (new_length == 0 || new_length > old_map->backing()->size_bytes()) {
    return Status::InvalidArgument("bad mremap length");
  }
  Vcpu& vcpu = ThisVcpu();

  // Build the replacement mapping at a fresh VA range, reusing the mapping
  // id so cache keys (and therefore cached frames) carry over.
  auto new_map =
      std::make_unique<AquilaMap>(this, old_map->backing(), new_length, old_map->vma_.prot);
  new_map->vma_.mapping_id = old_map->vma_.mapping_id;
  AQUILA_RETURN_IF_ERROR(new_map->Install());

  // Huge spans of the old mapping split back to 4K first: the per-page
  // Remove below cannot see through a 2 MB leaf, so moving a promoted span
  // without demoting would silently drop all 512 translations.
  old_map->DemoteAllSpans(vcpu);

  // Move resident translations: for every present PTE in the overlapping
  // prefix, re-point the frame at its new virtual address.
  uint64_t move_pages = std::min(old_map->vma_.page_count, new_map->vma_.page_count);
  std::vector<PageShootdown> old_vpns;
  for (uint64_t i = 0; i < move_pages; i++) {
    uint64_t old_page = old_map->vma_.start_page + i;
    Vma* vma = vma_tree_.LockEntry(old_page);
    if (vma == nullptr) {
      continue;
    }
    uint64_t old_vaddr = old_page << kPageShift;
    uint64_t pte = page_table_.Remove(old_vaddr);
    if (Pte::Present(pte)) {
      uint64_t new_vaddr = (new_map->vma_.start_page + i) << kPageShift;
      FrameId frame = static_cast<FrameId>(Pte::Gpa(pte) >> kPageShift);
      Frame& f = cache_->frame(frame);
      f.vaddr = new_vaddr;
      page_table_.Install(new_vaddr, Pte::Gpa(pte), pte & Pte::kFlagsMask & ~Pte::kPresent);
      new_map->NotePteInstalled(i);
      // Unified capture rule (CaptureShootdownPage): entry lock held, PTE
      // already removed above.
      old_vpns.push_back(CaptureShootdownPage(f, old_page));
    }
    vma_tree_.UnlockEntry(old_page);
  }

  // Pages beyond the new length (shrink) must leave the cache.
  if (old_map->vma_.page_count > move_pages) {
    (void)old_map->Advise(move_pages * kPageSize,
                          (old_map->vma_.page_count - move_pages) * kPageSize,
                          Advice::kDontNeed);
  }

  AQUILA_RETURN_IF_ERROR(vma_tree_.Remove(&old_map->vma_));
  // The old mapping is destroyed below without TearDown (its frames carry
  // over); any writebacks still in flight on its engine must reap first.
  if (old_map->engine_ != nullptr) {
    (void)old_map->engine_->Drain(vcpu);
  }
  ShootdownPages(vcpu, old_vpns);

  MemoryMap* result = new_map.get();
  {
    std::lock_guard<SpinLock> guard(maps_lock_);
    maps_.push_back(std::move(new_map));
    auto it = std::find_if(maps_.begin(), maps_.end(),
                           [map](const auto& m) { return m.get() == map; });
    if (it != maps_.end()) {
      maps_.erase(it);
    }
  }
  return result;
}

StatusOr<MemoryMap*> Aquila::MapTransparent(Backing* backing, uint64_t length, int prot) {
  if (length == 0 || backing == nullptr || length > backing->size_bytes()) {
    return Status::InvalidArgument("bad transparent mapping arguments");
  }
  if ((prot & (kProtRead | kProtWrite)) == 0) {
    return Status::InvalidArgument("mapping needs read or write protection");
  }
  if (hypervisor_.backing_fd() < 0) {
    return Status::FailedPrecondition("trap mode needs memfd-backed host memory");
  }
  auto map = std::make_unique<AquilaMap>(this, backing, length, prot);
  uint8_t* base = TrapDriver::ReserveRange(map->vma_.page_count * kPageSize);
  if (base == nullptr) {
    return Status::OutOfSpace("cannot reserve transparent address range");
  }
  map->transparent_base_ = base;
  Status installed = map->Install();
  if (!installed.ok()) {
    TrapDriver::ReleaseRange(base, map->vma_.page_count * kPageSize);
    return installed;
  }
  trap_mode_used_.store(true, std::memory_order_release);
  TrapDriver::RegisterRuntime(this);
  TrapDriver::Install();
  AquilaMap* raw = map.get();
  std::lock_guard<SpinLock> guard(maps_lock_);
  maps_.push_back(std::move(map));
  return static_cast<MemoryMap*>(raw);
}

void Aquila::WakeParked(uint64_t key, FrameId frame, const Status& status,
                        int waker_core) {
  if (sched_ == nullptr) {
    return;
  }
  (void)sched_->Wake(key, frame, status, waker_core);
}

size_t Aquila::HarvestAsyncWritebacks(Vcpu& vcpu, HarvestMode mode) {
  if (!options_.async_writeback) {
    return 0;
  }
  // maps_lock_ held across the whole sweep so Unmap cannot destroy a mapping
  // mid-harvest. Lock order: entry locks -> maps_lock_ -> engine lock.
  std::lock_guard<SpinLock> guard(maps_lock_);
  size_t freed = 0;
  for (auto& map : maps_) {
    if (map->engine_ != nullptr) {
      freed += map->engine_->Harvest(vcpu);
    }
  }
  if (freed == 0 && mode == HarvestMode::kWaitOne) {
    for (auto& map : maps_) {
      if (map->engine_ != nullptr && map->engine_->in_flight() > 0) {
        freed += map->engine_->WaitOne(vcpu);
        break;
      }
    }
  }
  return freed;
}

Status Aquila::GrowCache(uint64_t add_bytes) {
  return cache_->Grow(ThisVcpu(), AlignUp(add_bytes, kPageSize) / kPageSize);
}

StatusOr<uint64_t> Aquila::ShrinkCache(uint64_t remove_bytes) {
  Vcpu& vcpu = ThisVcpu();
  std::vector<uint64_t> deferred_vpns;
  StatusOr<uint64_t> pages = cache_->Shrink(
      vcpu, AlignUp(remove_bytes, kPageSize) / kPageSize, &deferred_vpns);
  // Offlined frames can never satisfy a reuse elision again (their contents
  // are released to the host): execute their parked shootdowns now.
  for (uint64_t vpn : deferred_vpns) {
    DeferredShootdown d;
    if (tlb_.TakeDeferred(vpn, &d)) {
      tlb_.ExecuteDeferred(vcpu.clock(), vcpu.core(), active_cores(), d, fabric_);
      tlb_.NoteReuseMismatch();
    }
  }
  if (!pages.ok()) {
    return pages.status();
  }
  return *pages * kPageSize;
}

}  // namespace aquila
