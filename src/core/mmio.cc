#include "src/core/mmio.h"

#include <algorithm>

namespace aquila {

// Synchronous fallback: every request completes inline, in submission order;
// Poll just drains the buffer. Engines with an overlapping fault path
// (Aquila's cooperative scheduler) override both.
Status MemoryMap::SubmitBatch(std::span<const MmioRequest> requests) {
  for (const MmioRequest& req : requests) {
    MmioCompletion c;
    c.user_tag = req.user_tag;
    switch (req.kind) {
      case MmioRequest::Kind::kRead:
        if (req.data.empty()) {
          AccessResult r = TouchRead(req.offset);
          c.status = r.status;
          c.faulted = r.faulted;
        } else {
          c.status = Read(req.offset, req.data);
        }
        break;
      case MmioRequest::Kind::kWrite:
        if (req.data.empty()) {
          AccessResult r = TouchWrite(req.offset);
          c.status = r.status;
          c.faulted = r.faulted;
        } else {
          c.status = Write(req.offset, std::span<const uint8_t>(req.data.data(),
                                                                req.data.size()));
        }
        break;
      case MmioRequest::Kind::kPrefetch: {
        uint64_t len = req.data.empty() ? kPageSize : req.data.size();
        c.status = Advise(req.offset, len, Advice::kWillNeed);
        break;
      }
    }
    sync_completions_.push_back(std::move(c));
  }
  return Status::Ok();
}

size_t MemoryMap::Poll(std::span<MmioCompletion> out) {
  size_t n = std::min(out.size(), sync_completions_.size());
  std::move(sync_completions_.begin(), sync_completions_.begin() + n, out.begin());
  sync_completions_.erase(sync_completions_.begin(), sync_completions_.begin() + n);
  return n;
}

}  // namespace aquila
