#include "src/core/writeback.h"

#include <algorithm>

#include "src/core/aquila.h"
#include "src/core/mmio_region.h"
#include "src/storage/device_health.h"
#include "src/telemetry/scoped_timer.h"
#include "src/util/logging.h"
#include "src/vmx/cost_model.h"

namespace aquila {

namespace {

#if AQUILA_TELEMETRY_ENABLED
struct AsyncMetrics {
  // Cycles of device time that elapsed while the CPU was doing other work —
  // the overlap the async pipeline buys over synchronous writeback.
  telemetry::Counter* overlap_cycles =
      telemetry::Registry().GetCounter("aquila.core.async_overlap_cycles");
  telemetry::Counter* writebacks =
      telemetry::Registry().GetCounter("aquila.core.async_writebacks");
  telemetry::Counter* fills = telemetry::Registry().GetCounter("aquila.core.async_fills");
};

const AsyncMetrics& GetAsyncMetrics() {
  static AsyncMetrics metrics;
  return metrics;
}
#endif

}  // namespace

void WritebackPlanner::Sort(Vcpu& vcpu) {
  ScopedMeasure measure(vcpu.clock(), CostCategory::kDirtyTracking);
  std::sort(items_.begin(), items_.end());
}

Status WritebackPlanner::SubmitSync(Vcpu& vcpu) {
  Sort(vcpu);
  size_t i = 0;
  while (i < items_.size()) {
    size_t j = i;
    while (j < items_.size() && items_[j].backing == items_[i].backing) {
      j++;
    }
    std::vector<uint64_t> offsets;
    std::vector<const uint8_t*> pages;
    offsets.reserve(j - i);
    pages.reserve(j - i);
    for (size_t k = i; k < j; k++) {
      offsets.push_back(items_[k].file_offset);
      pages.push_back(items_[k].data);
    }
    AQUILA_RETURN_IF_ERROR(items_[i].backing->WritePages(vcpu, offsets, pages, kPageSize));
    i = j;
  }
  return Status::Ok();
}

Status WritebackPlanner::SubmitAsync(Vcpu& vcpu) {
  Sort(vcpu);
  Status first_error;
  for (const WritebackItem& item : items_) {
    AsyncWritebackEngine* engine = item.owner->writeback_engine();
    AQUILA_DCHECK(engine != nullptr);
    Status status = engine->SubmitWriteback(vcpu, item);
    if (!status.ok()) {
      // The submission machinery itself rejected the request (I/O errors
      // arrive in completions, not here). The page's data never left the
      // frame, so restore it dirty-in-place; the mapping was kept.
      item.owner->RestoreDirtyFrame(vcpu, item.frame, item.sort_key,
                                    /*reinsert_mapping=*/false);
      // Backpressure (a full queue — e.g. watchdog hedge/zombie legs holding
      // inner slots) says nothing about the medium: the next round retries.
      // Anything else is a genuine verdict and feeds the degrade streak.
      if (status.code() != StatusCode::kOutOfSpace) {
        item.owner->NoteWritebackResult(status);
      }
      if (first_error.ok()) {
        first_error = status;
      }
    }
  }
  return first_error;
}

namespace {

// The engine's queue, optionally hardened: with a configured op timeout the
// raw device queue is wrapped in a WatchdogQueue and the device's health
// state machine is armed. With the default timeout of 0 the raw queue is
// used untouched — no watchdog state anywhere near the hot path.
std::unique_ptr<DeviceQueue> MakeEngineQueue(Aquila* runtime, AquilaMap* map, uint32_t depth) {
  BlockDevice* device = map->backing()->device();
  std::unique_ptr<DeviceQueue> inner = device->CreateQueue(depth);
  const Aquila::Options& options = runtime->options();
  if (options.device_op_timeout_us == 0) {
    return inner;
  }
  const uint64_t cycles_per_us = GlobalCostModel().cycles_per_us;
  DeviceHealth::Options health_options;
  health_options.probe_interval_cycles =
      static_cast<uint64_t>(options.device_probe_interval_us) * cycles_per_us;
  device->health().Enable(health_options);
  WatchdogQueue::Options watchdog_options;
  watchdog_options.timeout_cycles =
      static_cast<uint64_t>(options.device_op_timeout_us) * cycles_per_us;
  watchdog_options.hedge_reads = options.hedge_reads;
  return std::make_unique<WatchdogQueue>(&device->health(), std::move(inner), watchdog_options);
}

}  // namespace

AsyncWritebackEngine::AsyncWritebackEngine(Aquila* runtime, AquilaMap* map, uint32_t depth)
    : runtime_(runtime),
      map_(map),
      queue_(MakeEngineQueue(runtime, map, depth)),
      slots_(queue_->depth()) {}

AsyncWritebackEngine::~AsyncWritebackEngine() {
  // TearDown drains before destruction; anything still in flight here would
  // lose dirty data silently.
  AQUILA_DCHECK(queue_->in_flight() == 0 && local_.empty());
}

Status AsyncWritebackEngine::SubmitWriteback(Vcpu& vcpu, const WritebackItem& item) {
  std::lock_guard<SpinLock> guard(lock_);
  uint32_t index = ClaimSlotLocked(vcpu);
  Slot& slot = slots_[index];
  // The frame is ours (kWritingBack): its key is stable until completion.
  uint64_t key = runtime_->cache().frame(item.frame).key.load(std::memory_order_relaxed);
  slot = Slot{Slot::Kind::kWriteback, /*demand=*/false, item.frame, key, item.sort_key,
              item.file_offset, telemetry::CurrentSpanContext()};
  AQUILA_TELEMETRY_ONLY(GetAsyncMetrics().writebacks->Add());
  StatusOr<uint64_t> dev_offset = item.backing->TranslateForQueue(item.file_offset);
  if (dev_offset.ok()) {
    Status status =
        queue_->SubmitWrite(vcpu, *dev_offset, std::span(item.data, kPageSize), index);
    if (!status.ok()) {
      slot.kind = Slot::Kind::kFree;
      return status;
    }
  } else {
    // No device extent to queue on (unallocated blob cluster): WritePages
    // allocates and writes synchronously; buffer the completion so the
    // reaping protocol stays uniform.
    const uint64_t offsets[1] = {item.file_offset};
    const uint8_t* const pages[1] = {item.data};
    Status status = item.backing->WritePages(vcpu, offsets, pages, kPageSize);
    const uint64_t now = vcpu.clock().Now();
    local_.push_back(DeviceQueue::Completion{index, std::move(status), now, now});
  }
  // The request is committed (queued or buffered in local_): its originating
  // trace must stay open until CompleteLocked records the device child span.
  telemetry::SpanCollector::Global().NoteAsyncSubmitted(slot.span.trace_id);
  return Status::Ok();
}

Status AsyncWritebackEngine::SubmitFill(Vcpu& vcpu, FrameId frame, uint64_t key,
                                        uint64_t file_offset, bool demand) {
  std::lock_guard<SpinLock> guard(lock_);
  uint32_t index = ClaimSlotLocked(vcpu);
  Slot& slot = slots_[index];
  slot = Slot{Slot::Kind::kFill, demand, frame, key, /*sort_key=*/0, file_offset,
              telemetry::CurrentSpanContext()};
  uint8_t* data = runtime_->cache().FrameData(vcpu, frame);
  AQUILA_TELEMETRY_ONLY(GetAsyncMetrics().fills->Add());
  StatusOr<uint64_t> dev_offset = map_->backing_->TranslateForQueue(file_offset);
  if (dev_offset.ok()) {
    Status status = queue_->SubmitRead(vcpu, *dev_offset, std::span(data, kPageSize), index);
    if (!status.ok()) {
      slot.kind = Slot::Kind::kFree;
      return status;
    }
  } else {
    uint64_t offsets[1] = {file_offset};
    uint8_t* const pages[1] = {data};
    Status status = map_->backing_->ReadPages(vcpu, offsets, pages, kPageSize);
    const uint64_t now = vcpu.clock().Now();
    local_.push_back(DeviceQueue::Completion{index, std::move(status), now, now});
  }
  telemetry::SpanCollector::Global().NoteAsyncSubmitted(slot.span.trace_id);
  return Status::Ok();
}

size_t AsyncWritebackEngine::Harvest(Vcpu& vcpu) {
  std::lock_guard<SpinLock> guard(lock_);
  return ReapLocked(vcpu, /*wait=*/false);
}

bool AsyncWritebackEngine::HasPendingFill(uint64_t key) {
  std::lock_guard<SpinLock> guard(lock_);
  for (const Slot& slot : slots_) {
    if (slot.kind == Slot::Kind::kFill && slot.key == key) {
      return true;
    }
  }
  return false;
}

bool AsyncWritebackEngine::AwaitFill(Vcpu& vcpu, uint64_t key) {
  std::lock_guard<SpinLock> guard(lock_);
  bool drained = false;
  while (true) {
    bool pending = false;
    for (const Slot& slot : slots_) {
      if (slot.kind == Slot::Kind::kFill && slot.key == key) {
        pending = true;
        break;
      }
    }
    if (!pending) {
      return drained;
    }
    drained = true;
    (void)ReapLocked(vcpu, /*wait=*/true);
  }
}

bool AsyncWritebackEngine::AwaitWritebacks(Vcpu& vcpu, uint64_t first_page,
                                           uint64_t last_page) {
  std::lock_guard<SpinLock> guard(lock_);
  bool drained = false;
  while (true) {
    bool pending = false;
    for (const Slot& slot : slots_) {
      if (slot.kind != Slot::Kind::kWriteback) {
        continue;
      }
      uint64_t file_page = slot.file_offset >> kPageShift;
      if (file_page >= first_page && file_page <= last_page) {
        pending = true;
        break;
      }
    }
    if (!pending) {
      return drained;
    }
    drained = true;
    (void)ReapLocked(vcpu, /*wait=*/true);
  }
}

size_t AsyncWritebackEngine::WaitOne(Vcpu& vcpu) {
  std::lock_guard<SpinLock> guard(lock_);
  return ReapLocked(vcpu, /*wait=*/true);
}

size_t AsyncWritebackEngine::Drain(Vcpu& vcpu) {
  std::lock_guard<SpinLock> guard(lock_);
  size_t freed = 0;
  while (!local_.empty() || queue_->in_flight() > 0) {
    freed += ReapLocked(vcpu, /*wait=*/true);
  }
  return freed;
}

uint32_t AsyncWritebackEngine::ClaimSlotLocked(Vcpu& vcpu) {
  while (true) {
    for (uint32_t i = 0; i < slots_.size(); i++) {
      if (slots_[i].kind == Slot::Kind::kFree) {
        return i;
      }
    }
    // Saturated: every slot has a completion outstanding (queued or buffered
    // in local_), so reaping always makes room.
    (void)ReapLocked(vcpu, /*wait=*/true);
  }
}

size_t AsyncWritebackEngine::ReapLocked(Vcpu& vcpu, bool wait) {
  // Captured before any waiting: device time up to here was overlapped with
  // real work; anything later the CPU spent waiting.
  const uint64_t reap_start = vcpu.clock().Now();
  std::vector<DeviceQueue::Completion> batch;
  batch.swap(local_);
  queue_->Poll(vcpu, &batch);
  if (batch.empty() && wait && queue_->in_flight() > 0) {
    (void)queue_->WaitMin(vcpu, 1, &batch);
  }
  size_t freed = 0;
  for (const DeviceQueue::Completion& completion : batch) {
    CompleteLocked(vcpu, completion, reap_start, &freed);
  }
  return freed;
}

void AsyncWritebackEngine::CompleteLocked(Vcpu& vcpu, const DeviceQueue::Completion& completion,
                                          uint64_t overlap_until, size_t* freed) {
  AQUILA_DCHECK(completion.user_data < slots_.size());
  Slot slot = slots_[completion.user_data];
  slots_[completion.user_data].kind = Slot::Kind::kFree;
  AQUILA_DCHECK(slot.kind != Slot::Kind::kFree);
  // Close the causal chain across the thread hop: the device interval
  // [submit_at, ready_at] becomes a child span of the request that submitted
  // this I/O — and if that request's root already closed, this is the
  // completion its trace was waiting on to finalize. No-op when unsampled.
  telemetry::SpanCollector::Global().CompleteAsync(slot.span, telemetry::SpanPhase::kDevice,
                                                   completion.submit_at, completion.ready_at,
                                                   slot.file_offset);
#if AQUILA_TELEMETRY_ENABLED
  if (completion.submit_at != 0 && completion.ready_at > completion.submit_at) {
    uint64_t until = std::min(overlap_until, completion.ready_at);
    if (until > completion.submit_at) {
      GetAsyncMetrics().overlap_cycles->Add(until - completion.submit_at);
    }
  }
#endif
  PageCache& cache = runtime_->cache();
  FaultStats& stats = runtime_->fault_stats();
  if (slot.kind == Slot::Kind::kWriteback) {
    map_->NoteWritebackResult(completion.status);
    if (completion.status.ok()) {
      // The device acknowledged the page: drop the mapping and release the
      // frame. A faulter waiting out kWritingBack re-reads the (now durable)
      // data from the device.
      cache.RemoveMapping(slot.key);
      cache.FreeFrame(vcpu.core(), slot.frame);
      stats.writeback_pages.fetch_add(1, std::memory_order_relaxed);
      stats.evicted_pages.fetch_add(1, std::memory_order_relaxed);
      (*freed)++;
    } else {
      // Unwritten dirty data must not be dropped: restore in place (the
      // mapping was kept) so the next writeback retries.
      map_->RestoreDirtyFrame(vcpu, slot.frame, slot.sort_key, /*reinsert_mapping=*/false);
    }
    // Requests parked on the kWritingBack pin (park point b) re-run now that
    // the frame either freed or restored resident. kInvalidFrame: nobody
    // owns a writeback, so the status is not terminal for any waiter.
    runtime_->WakeParked(slot.key, kInvalidFrame, completion.status, vcpu.core());
  } else {
    // Lock-free publication is safe because fills are only submitted while
    // holding the target page's entry lock and a faulter that missed in the
    // hash drains pending fills (AwaitFill) or parks on them under that same
    // lock before filling the page itself — so no faulter can be mid-fill on
    // this key here. A failed insert means a second speculative fill for the
    // same page won the race; the surplus frame is simply discarded.
    bool published = false;
    if (completion.status.ok()) {
      published = cache.InsertMapping(slot.key, slot.frame);
      if (published) {
        cache.frame(slot.frame).state.store(FrameState::kResident,
                                            std::memory_order_release);
        if (slot.demand) {
          // The device read a parked faulter was waiting on: account it like
          // the blocking major-fault path would have (the owner's resume
          // additionally counts the minor fault that installs the PTE).
          stats.major_faults.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats.readahead_pages.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (!published) {
      cache.FreeFrame(vcpu.core(), slot.frame);
      (*freed)++;
    }
    // The parked demand owner (entry.frame == slot.frame) receives the
    // completion status as terminal — a failed or watchdog-abandoned fill
    // resolves its request with that error; every other waiter re-runs.
    runtime_->WakeParked(slot.key, slot.frame, completion.status, vcpu.core());
  }
}

}  // namespace aquila
