// Cooperative fault scheduling: core-local run queues and parked-request
// tables (ROADMAP item 5).
//
// The async pipeline (PR 4) gives the device queue depth, but a blocking
// faulter still burns the whole round-trip in AwaitFill. With the scheduler,
// a batch request that hits a park point in the fault path is suspended as an
// explicit continuation — the captured state is tiny because re-running the
// access is always safe: the cache key it waits on, the demand-fill frame it
// owns (if any), and a resume ticket. The core then services other ready
// requests from its run queue and resumes parked ones as completions are
// harvested, so N overlapped fills cost one device round-trip of core idle
// time instead of N.
//
// Park points (all under the page's VMA entry lock; see mmio_region.cc):
//   a) cache miss with another request's fill in flight for the key
//      (blocking path: AwaitFill);
//   b) minor-fault pin lost to kWritingBack (blocking path: WaitOne);
//   c) major fault — the request allocates a frame and submits its own
//      demand fill (blocking path: a synchronous device read).
// Every committed park has a completion pending on some engine, whose
// CompleteLocked fires SchedRegistry::Wake; the lost-wakeup-free protocol is
// PrePark -> re-check the awaited condition -> park or CancelPark (wakes run
// under the engine lock, parks re-check under it, so a completion that beat
// the PrePark is always seen by the re-check).
//
// Lock hierarchy: entry locks -> engine lock -> sched table lock. The table
// lock is a leaf (PrePark/Wake/Consume touch nothing else); the run queue is
// single-threaded by construction (only its core's submitting thread touches
// it) and needs no lock at all — the northport kernel/scheduling idiom of
// per-core queues with cross-core communication only through the wake path.
#ifndef AQUILA_SRC_CORE_SCHED_H_
#define AQUILA_SRC_CORE_SCHED_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/core/mmio.h"
#include "src/util/cpu.h"
#include "src/util/spinlock.h"
#include "src/util/status.h"
#include "src/vmx/vcpu.h"

namespace aquila {

class AquilaMap;
class SchedRegistry;

// One suspended fault: what the continuation needs to resume. The frame is
// kInvalidFrame unless this request owns a demand fill (park point c), whose
// kFilling pin survives the park — the frame is invisible to evictors until
// its completion publishes or frees it, exactly like a readahead fill.
struct ParkedRequest {
  uint64_t token = 0;  // resume-once ticket; 0 is never issued
  uint64_t key = 0;    // cache key the request waits on
  FrameId frame = kInvalidFrame;
  bool ready = false;
  Status wake_status;
};

class CoreScheduler {
 public:
  CoreScheduler(SchedRegistry* registry, int core);

  // --- Run queue (this core's submitting thread only; no locking) -------------
  struct Task {
    AquilaMap* map = nullptr;
    MmioRequest request;
    MmioCompletion completion;
    uint64_t park_token = 0;  // nonzero while parked
    bool owner_park = false;  // parked on its own demand fill (point c)
    bool done = false;
  };

  void Enqueue(AquilaMap* map, const MmioRequest& request);
  // Services the run queue once: steps every runnable task (new, or parked
  // and woken) until it completes or parks again. Returns tasks completed.
  size_t RunReady(Vcpu& vcpu);
  // Drains completions belonging to `map` into `out`; returns count written.
  size_t PopCompleted(AquilaMap* map, std::span<MmioCompletion> out);
  // True while `map` still has tasks in flight (runnable or parked).
  bool HasTasks(const AquilaMap* map) const;
  // Force-resumes every parked task (consuming or cancelling its table
  // entry). The idle loop's wedge valve: re-running is always correct, so
  // when nothing is in flight anywhere a stuck task re-checks its condition
  // from scratch instead of waiting for a wake that cannot come.
  void KickParked();

  // --- Parked table (cross-thread; table lock) --------------------------------
  // Reserves a parked entry and returns its ticket, or 0 when the table is
  // at Options::sched_max_parked — the fault path then falls back to the
  // blocking protocol for this access. Call BEFORE the condition re-check.
  uint64_t PrePark(uint64_t key, FrameId frame);
  // Drops a reservation whose condition vanished before the park committed.
  void CancelPark(uint64_t token);
  // Marks the park committed (counted; the entry was reserved by PrePark).
  void CommitPark(uint64_t token);
  // If `token` was woken: removes the entry, returns true with the wake
  // status. A not-yet-woken entry stays parked and returns false.
  bool ConsumeIfReady(uint64_t token, Status* status);
  // Wakes every entry parked on `key`. `frame` identifies the completed
  // fill's frame so the demand owner (entry.frame == frame) receives
  // `status` as terminal; other waiters just become runnable and re-check.
  // `waker_core` charges cross-core wakeups as steals. Returns entries woken.
  size_t Wake(uint64_t key, FrameId frame, const Status& status, int waker_core);

  int core() const { return core_; }
  size_t parked_now() const;

 private:
  SchedRegistry* registry_;
  int core_;

  std::deque<Task> run_queue_;

  mutable SpinLock table_lock_;
  std::vector<ParkedRequest> parked_;  // guarded by table_lock_
};

// Process-wide owner of the per-core schedulers plus the aquila.sched.*
// counters. Wake fans out across cores; the fast path (nothing parked
// anywhere) is one relaxed load of parked_depth_.
class SchedRegistry {
 public:
  explicit SchedRegistry(uint32_t max_parked) : max_parked_(max_parked) {}

  // The calling core's scheduler, created on first use.
  CoreScheduler* ForCore(int core);
  // The scheduler for `core` if one exists (never creates); may be null.
  CoreScheduler* PeekCore(int core) const;

  // Wakes matching parked entries on every core. Called from
  // AsyncWritebackEngine::CompleteLocked under the engine lock; returns
  // immediately when nothing is parked anywhere.
  size_t Wake(uint64_t key, FrameId frame, const Status& status, int waker_core);

  uint32_t max_parked() const { return max_parked_; }

  // --- aquila.sched.* ---------------------------------------------------------
  std::atomic<uint64_t> parked_total{0};   // parks committed
  std::atomic<uint64_t> resumed_total{0};  // parked tasks resumed
  std::atomic<uint64_t> steals{0};         // wakes delivered by another core
  std::atomic<int64_t> parked_depth{0};    // entries currently in the tables

 private:
  friend class CoreScheduler;

  uint32_t max_parked_;
  std::atomic<uint64_t> next_token_{1};

  mutable SpinLock cores_lock_;
  std::array<std::unique_ptr<CoreScheduler>, CoreRegistry::kMaxCores> cores_{};
  std::atomic<int> cores_created_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_CORE_SCHED_H_
