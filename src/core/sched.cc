#include "src/core/sched.h"

#include <algorithm>

#include "src/core/mmio_region.h"
#include "src/util/race_injector.h"

namespace aquila {

CoreScheduler::CoreScheduler(SchedRegistry* registry, int core)
    : registry_(registry), core_(core) {}

void CoreScheduler::Enqueue(AquilaMap* map, const MmioRequest& request) {
  Task task;
  task.map = map;
  task.request = request;
  task.completion.user_tag = request.user_tag;
  run_queue_.push_back(std::move(task));
}

size_t CoreScheduler::RunReady(Vcpu& vcpu) {
  size_t completed = 0;
  for (Task& task : run_queue_) {
    if (task.done) {
      continue;
    }
    task.map->CoopStep(vcpu, this, &task);
    if (task.done) {
      completed++;
    }
  }
  return completed;
}

size_t CoreScheduler::PopCompleted(AquilaMap* map, std::span<MmioCompletion> out) {
  size_t n = 0;
  for (auto it = run_queue_.begin(); it != run_queue_.end() && n < out.size();) {
    if (it->map == map && it->done) {
      out[n++] = std::move(it->completion);
      it = run_queue_.erase(it);
    } else {
      ++it;
    }
  }
  return n;
}

bool CoreScheduler::HasTasks(const AquilaMap* map) const {
  return std::any_of(run_queue_.begin(), run_queue_.end(),
                     [map](const Task& t) { return t.map == map; });
}

void CoreScheduler::KickParked() {
  for (Task& task : run_queue_) {
    if (task.done || task.park_token == 0) {
      continue;
    }
    Status wake;
    if (ConsumeIfReady(task.park_token, &wake)) {
      if (task.owner_park && !wake.ok()) {
        task.completion.status = wake;
        task.completion.faulted = true;
        task.park_token = 0;
        task.done = true;
        continue;
      }
    } else {
      CancelPark(task.park_token);
    }
    task.park_token = 0;
    task.owner_park = false;  // re-run re-checks the condition from scratch
  }
}

uint64_t CoreScheduler::PrePark(uint64_t key, FrameId frame) {
  std::lock_guard<SpinLock> guard(table_lock_);
  if (parked_.size() >= registry_->max_parked_) {
    return 0;  // table full: the caller blocks instead
  }
  ParkedRequest entry;
  entry.token = registry_->next_token_.fetch_add(1, std::memory_order_relaxed);
  entry.key = key;
  entry.frame = frame;
  parked_.push_back(entry);
  registry_->parked_depth.fetch_add(1, std::memory_order_relaxed);
  return entry.token;
}

void CoreScheduler::CancelPark(uint64_t token) {
  std::lock_guard<SpinLock> guard(table_lock_);
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->token == token) {
      parked_.erase(it);
      registry_->parked_depth.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
}

void CoreScheduler::CommitPark(uint64_t token) {
  (void)token;
  registry_->parked_total.fetch_add(1, std::memory_order_relaxed);
}

bool CoreScheduler::ConsumeIfReady(uint64_t token, Status* status) {
  std::lock_guard<SpinLock> guard(table_lock_);
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->token != token) {
      continue;
    }
    if (!it->ready) {
      return false;
    }
    *status = it->wake_status;
    parked_.erase(it);
    registry_->parked_depth.fetch_sub(1, std::memory_order_relaxed);
    registry_->resumed_total.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;  // entry already consumed (KickParked raced a late wake)
}

size_t CoreScheduler::Wake(uint64_t key, FrameId frame, const Status& status,
                           int waker_core) {
  AQUILA_RACE_POINT("sched.wake");
  std::lock_guard<SpinLock> guard(table_lock_);
  size_t woken = 0;
  for (ParkedRequest& entry : parked_) {
    if (entry.key != key || entry.ready) {
      continue;
    }
    entry.ready = true;
    // Only the demand owner treats the completion status as terminal; other
    // waiters re-run the access and re-derive their own outcome (exactly
    // what the blocking path does after AwaitFill/WaitOne).
    entry.wake_status =
        (entry.frame != kInvalidFrame && entry.frame == frame) ? status : Status::Ok();
    woken++;
    if (waker_core != core_) {
      registry_->steals.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return woken;
}

size_t CoreScheduler::parked_now() const {
  std::lock_guard<SpinLock> guard(table_lock_);
  return parked_.size();
}

CoreScheduler* SchedRegistry::ForCore(int core) {
  AQUILA_CHECK(core >= 0 && core < CoreRegistry::kMaxCores);
  CoreScheduler* sched = cores_[core].get();
  if (sched != nullptr) {
    return sched;
  }
  std::lock_guard<SpinLock> guard(cores_lock_);
  if (cores_[core] == nullptr) {
    cores_[core] = std::make_unique<CoreScheduler>(this, core);
    cores_created_.fetch_add(1, std::memory_order_release);
  }
  return cores_[core].get();
}

CoreScheduler* SchedRegistry::PeekCore(int core) const {
  if (core < 0 || core >= CoreRegistry::kMaxCores) {
    return nullptr;
  }
  std::lock_guard<SpinLock> guard(cores_lock_);
  return cores_[core].get();
}

size_t SchedRegistry::Wake(uint64_t key, FrameId frame, const Status& status,
                           int waker_core) {
  // Fast path: nothing parked anywhere (the common case for every workload
  // that never submits batches). One relaxed load, no locks.
  if (parked_depth.load(std::memory_order_relaxed) == 0) {
    return 0;
  }
  size_t woken = 0;
  int created = cores_created_.load(std::memory_order_acquire);
  for (int core = 0; core < CoreRegistry::kMaxCores && created > 0; core++) {
    CoreScheduler* sched;
    {
      std::lock_guard<SpinLock> guard(cores_lock_);
      sched = cores_[core].get();
    }
    if (sched == nullptr) {
      continue;
    }
    created--;
    woken += sched->Wake(key, frame, status, waker_core);
  }
  return woken;
}

}  // namespace aquila
