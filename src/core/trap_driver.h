// Transparent ("trap-mode") mappings: raw load/store access with real
// hardware faults.
//
// Soft-mode mappings route accesses through MemoryMap::Read/Write, which is
// deterministic and portable but not transparent. Trap mode is the
// reproduction's analog of what makes Aquila "steroids": the mapping is a
// real PROT_NONE virtual-address reservation, the application dereferences
// plain pointers, and a miss takes a REAL page fault — delivered to this
// process as SIGSEGV — whose handler runs the exact same Aquila fault path
// (lock-free cache lookup, two-level freelist, batched eviction, device
// read) and then installs a REAL translation by mmap(MAP_FIXED)-aliasing
// the cache frame out of the hypervisor's memfd-backed host memory. Hits
// thereafter are genuinely free: the hardware TLB resolves them, no
// simulator code runs at all.
//
// Dirty tracking works exactly as §3.2 describes: pages are first mapped
// PROT_READ; the first store takes a second (real) fault that marks the PTE
// dirty and mprotects the page writable; msync write-protects again.
//
// Parallels to the paper's implementation notes (§4.2): the handler runs on
// the faulting thread with a dedicated sigaltstack (the red-zone/alternate-
// stack concern), and nested faults on unknown addresses fall through to
// the default disposition so genuine crashes still crash.
//
// Requirements: Linux, x86-64 (the write/read fault distinction uses the
// page-fault error code in the signal context), and a hypervisor built on
// memfd (the default). Threads touching trap mappings should call
// Aquila::EnterThread() first.
#ifndef AQUILA_SRC_CORE_TRAP_DRIVER_H_
#define AQUILA_SRC_CORE_TRAP_DRIVER_H_

#include <cstdint>

namespace aquila {

class Aquila;
class AquilaMap;

// Process-wide registry consulted by the SIGSEGV handler to route faulting
// addresses to their owning runtime. Install() is idempotent.
class TrapDriver {
 public:
  // Installs the SIGSEGV handler (once per process).
  static void Install();

  // Registers/unregisters a runtime whose trap mappings the handler serves.
  static void RegisterRuntime(Aquila* runtime);
  static void UnregisterRuntime(Aquila* runtime);

  // Reserves `bytes` of PROT_NONE address space; returns the base or null.
  static uint8_t* ReserveRange(uint64_t bytes);
  static void ReleaseRange(uint8_t* base, uint64_t bytes);

  // Real-translation maintenance, called from the fault/eviction/msync
  // paths for transparent mappings.
  static void InstallRealMapping(Aquila* runtime, uint64_t vaddr, uint64_t gpa, bool writable);
  static void UpgradeRealMapping(uint64_t vaddr);
  static void DowngradeRealMapping(uint64_t vaddr);
  static void RemoveRealMapping(uint64_t vaddr);

  // Test hook: number of real faults the handler served.
  static uint64_t HandledFaults();
};

}  // namespace aquila

#endif  // AQUILA_SRC_CORE_TRAP_DRIVER_H_
