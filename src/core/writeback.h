// Writeback planning and the asynchronous overlapped I/O pipeline.
//
// Every path that cleans dirty pages — eviction, msync, madvise(DONTNEED),
// unmap — follows the same shape: collect claimed dirty frames, sort them by
// device offset so the batch reaches the medium in layout order, submit, and
// account the outcome. WritebackPlanner is that shape as an API; the call
// sites differ only in how they claim frames and what they do with them
// afterwards.
//
// Submission comes in two flavors:
//   * SubmitSync: the pre-existing behavior — one batched WritePages call per
//     backing; the caller blocks until the device acknowledges.
//   * SubmitAsync: each item is routed to its owning mapping's
//     AsyncWritebackEngine, which submits it on a DeviceQueue and returns
//     immediately. The frame sits in FrameState::kWritingBack until the
//     completion is reaped — faulting threads keep making progress (and keep
//     advancing simulated time past the device's ready timestamps) while the
//     writes are in flight, which is the overlap the pipeline exists for.
//
// The engine also issues read-ahead as asynchronous fills: frames stay
// kFilling (unmapped, invisible to evictors) until their completion reaps,
// at which point they are published into the cache hash.
#ifndef AQUILA_SRC_CORE_WRITEBACK_H_
#define AQUILA_SRC_CORE_WRITEBACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/core/backing.h"
#include "src/storage/device_queue.h"
#include "src/telemetry/span.h"
#include "src/util/spinlock.h"
#include "src/util/status.h"

namespace aquila {

class Aquila;
class AquilaMap;
class AsyncWritebackEngine;

// One dirty page claimed for writeback. The claimer owns the frame (state
// kEvicting or kWritingBack), has cleared its dirty bit, and guarantees the
// data pointer stays valid through submission.
struct WritebackItem {
  uint64_t sort_key = 0;     // (mapping_id | device page): physical write order
  uint64_t file_offset = 0;  // offset within the owning mapping's backing
  const uint8_t* data = nullptr;
  Backing* backing = nullptr;
  FrameId frame = kInvalidFrame;
  AquilaMap* owner = nullptr;  // mapping charged with the outcome

  bool operator<(const WritebackItem& other) const { return sort_key < other.sort_key; }
};

// Collect -> sort -> submit: the single writeback pipeline shared by
// eviction, msync, madvise(DONTNEED) and unmap.
class WritebackPlanner {
 public:
  void Add(const WritebackItem& item) { items_.push_back(item); }
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  const std::vector<WritebackItem>& items() const { return items_; }

  // Sorts by device offset, then issues one batched WritePages call per
  // backing. Returns the first error; the caller decides how to restore the
  // affected frames (the planner does not know their claim protocol).
  Status SubmitSync(Vcpu& vcpu);

  // Sorts by device offset, then hands each item to its owner's
  // AsyncWritebackEngine. Items whose submission fails at the machinery
  // level (not an I/O error — those travel in completions) are restored
  // dirty-in-place and charged to the owner; the first such error is
  // returned. On return every item is either in flight or restored.
  Status SubmitAsync(Vcpu& vcpu);

 private:
  // Sorting is dirty-tree bookkeeping work, charged to kDirtyTracking.
  void Sort(Vcpu& vcpu);

  std::vector<WritebackItem> items_;
};

// Per-mapping asynchronous writeback/readahead engine over the owning
// backing's DeviceQueue. Writebacks keep the cache mapping and hold the
// frame in kWritingBack so concurrent faulters wait for the completion
// instead of re-reading a page the device has not acknowledged; fills hold
// the frame in kFilling and publish it into the hash on completion.
//
// Thread safety: all queue and slot state is guarded by lock_. Lock order is
// entry locks -> maps_lock_ -> engine lock -> cache internals; the engine
// never acquires entry locks or maps_lock_.
class AsyncWritebackEngine {
 public:
  AsyncWritebackEngine(Aquila* runtime, AquilaMap* map, uint32_t depth);
  ~AsyncWritebackEngine();

  // Submits one claimed dirty page (state kWritingBack, PTE removed, dirty
  // bit cleared, cache mapping still present). Reaps completions to make
  // room when the queue is full. A non-OK return means the submission
  // machinery rejected the request — the caller must restore the frame.
  Status SubmitWriteback(Vcpu& vcpu, const WritebackItem& item);

  // Submits an async fill into `frame` (state kFilling, key set, vaddr 0,
  // not yet in the hash). On completion the engine inserts the mapping and
  // publishes kResident, or frees the frame if the page was concurrently
  // faulted in or the read failed. `demand` marks a cooperative-scheduler
  // demand fill (park point c): its publication counts a major fault rather
  // than a readahead page, and its completion status is delivered to the
  // parked owner through the wake path.
  Status SubmitFill(Vcpu& vcpu, FrameId frame, uint64_t key, uint64_t file_offset,
                    bool demand = false);

  // True while a fill for `key` is in flight. The cooperative fault path
  // checks this (under the page's entry lock) to decide between parking on
  // someone else's fill and submitting its own; the park protocol re-checks
  // it after PrePark, so a completion racing the check is never missed.
  bool HasPendingFill(uint64_t key);

  // Reaps every completion whose device time has passed (no waiting).
  // Returns the number of frames released to the freelist.
  size_t Harvest(Vcpu& vcpu);

  // Waits out any in-flight fill for `key`, reaping completions (and thus
  // publishing the fill) as they become ready. Returns true if such a fill
  // was drained. A faulter that missed in the hash MUST call this before
  // filling the page itself — while holding the page's entry lock — so a
  // pending read-ahead fill is consumed instead of duplicated, and so the
  // lock-free publication in CompleteLocked can never collide with the
  // faulter's own insert (fills are only submitted under the entry lock).
  bool AwaitFill(Vcpu& vcpu, uint64_t key);

  // Waits out every in-flight writeback whose file page lies in
  // [first_page, last_page], reaping completions as they become ready;
  // returns true if any such writeback was pending. msync uses this to
  // close the window where a concurrent evictor submits an async writeback
  // of an in-range page after msync's drain: the page's dirty bit was
  // cleared at claim, so the dirty-tree collection cannot see it. A
  // successful completion is durable before msync returns; a failed one is
  // restored dirty-in-place, where msync's re-collection claims it.
  bool AwaitWritebacks(Vcpu& vcpu, uint64_t first_page, uint64_t last_page);

  // Advances simulated time until at least one completion is reaped (0 when
  // nothing is in flight). Returns the number of frames released — which can
  // be 0 even after a reap (a failed writeback restores its frame instead).
  size_t WaitOne(Vcpu& vcpu);

  // Reaps everything in flight, waiting as needed. Failed writebacks are
  // restored dirty-in-place, so a caller that needs durability (msync,
  // teardown) re-collects them and surfaces the error from its own
  // synchronous pass.
  size_t Drain(Vcpu& vcpu);

  uint32_t in_flight() const { return queue_->in_flight(); }

 private:
  struct Slot {
    enum class Kind : uint8_t { kFree, kWriteback, kFill };
    Kind kind = Kind::kFree;
    bool demand = false;  // kFill submitted for a parked faulter, not readahead
    FrameId frame = kInvalidFrame;
    uint64_t key = 0;
    uint64_t sort_key = 0;
    uint64_t file_offset = 0;
    // Span context of the request that submitted this I/O ({0,0} when it was
    // not sampled). The completion — reaped on whatever thread polls next —
    // records its device time as a child span of the ORIGINATING request,
    // which is how causality crosses the DeviceQueue thread hop.
    telemetry::SpanContext span;
  };

  // Finds a free slot, reaping (and waiting if necessary) when the queue is
  // saturated. Returns the slot index.
  uint32_t ClaimSlotLocked(Vcpu& vcpu);
  // Reaps ready completions; with `wait` also advances time for one more
  // when none are ready. Returns frames freed.
  size_t ReapLocked(Vcpu& vcpu, bool wait);
  void CompleteLocked(Vcpu& vcpu, const DeviceQueue::Completion& completion,
                      uint64_t overlap_until, size_t* freed);

  Aquila* runtime_;
  AquilaMap* map_;
  SpinLock lock_;
  std::unique_ptr<DeviceQueue> queue_;          // guarded by lock_
  std::vector<Slot> slots_;                     // guarded by lock_; user_data = index
  std::vector<DeviceQueue::Completion> local_;  // guarded by lock_: results of
                                                // requests executed synchronously
                                                // (no device extent to queue on)
};

}  // namespace aquila

#endif  // AQUILA_SRC_CORE_WRITEBACK_H_
