// Backing objects: what an mmio mapping reads from and writes to.
//
// Aquila lets the application choose the device access method per mapping
// (§3.3): raw ranges of a block/pmem device, or blobs in an SPDK-style
// blobstore (the file abstraction). The fault path only sees this interface,
// which is exactly the customization point the paper advertises — swapping a
// Backing swaps the I/O method without touching cache or fault code.
#ifndef AQUILA_SRC_CORE_BACKING_H_
#define AQUILA_SRC_CORE_BACKING_H_

#include <cstdint>
#include <span>

#include "src/blob/blobstore.h"
#include "src/storage/block_device.h"

namespace aquila {

class Backing {
 public:
  virtual ~Backing() = default;

  virtual uint64_t size_bytes() const = 0;

  // Reads one or more pages starting at file offset `offset`.
  virtual Status ReadRange(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) = 0;

  // Batched page writeback: `offsets[i]` is the file offset of `pages[i]`.
  virtual Status WritePages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                            std::span<const uint8_t* const> pages, uint64_t page_bytes) = 0;

  // Batched page read (read-ahead path); overlapped on queueing devices.
  virtual Status ReadPages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                           std::span<uint8_t* const> pages, uint64_t page_bytes) = 0;

  // Device offset for a file offset — the dirty-tree sort key, so writeback
  // order follows the physical layout.
  virtual uint64_t DeviceOffset(uint64_t offset) const = 0;

  // The block device under this backing: where the async writeback engine
  // gets its DeviceQueue. DeviceOffset() translates into this device's
  // address space.
  virtual BlockDevice* device() = 0;

  // Strict per-page translation for direct DeviceQueue submission. Unlike
  // DeviceOffset() — a sort key, which may fall back to the file offset —
  // this fails when the page has no device extent yet (an unallocated blob
  // cluster), so the caller can route the I/O through WritePages/ReadPages,
  // which allocate.
  virtual StatusOr<uint64_t> TranslateForQueue(uint64_t offset) const {
    return DeviceOffset(offset);
  }

  virtual Status Flush(Vcpu& vcpu) = 0;
};

// A contiguous range of a block device (raw device / partition use, the
// common key-value-store deployment the paper targets).
class DeviceBacking : public Backing {
 public:
  DeviceBacking(BlockDevice* device, uint64_t base_offset, uint64_t length)
      : device_(device), base_(base_offset), length_(length) {}

  uint64_t size_bytes() const override { return length_; }

  Status ReadRange(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) override {
    if (offset + dst.size() > length_) {
      return Status::InvalidArgument("read beyond backing");
    }
    return device_->Read(vcpu, base_ + offset, dst);
  }

  Status WritePages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                    std::span<const uint8_t* const> pages, uint64_t page_bytes) override;
  Status ReadPages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                   std::span<uint8_t* const> pages, uint64_t page_bytes) override;

  uint64_t DeviceOffset(uint64_t offset) const override { return base_ + offset; }

  Status Flush(Vcpu& vcpu) override { return device_->Flush(vcpu); }

  BlockDevice* device() override { return device_; }

 private:
  BlockDevice* device_;
  uint64_t base_;
  uint64_t length_;
};

// A blob in a blobstore (the file-over-SPDK abstraction, §3.3). Extents may
// be discontiguous; reads and writebacks are split at extent boundaries.
class BlobBacking : public Backing {
 public:
  BlobBacking(Blobstore* store, BlobId blob) : store_(store), blob_(blob) {}

  uint64_t size_bytes() const override { return store_->BlobSizeBytes(blob_); }

  Status ReadRange(Vcpu& vcpu, uint64_t offset, std::span<uint8_t> dst) override {
    return store_->ReadBlob(vcpu, blob_, offset, dst);
  }

  Status WritePages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                    std::span<const uint8_t* const> pages, uint64_t page_bytes) override;
  Status ReadPages(Vcpu& vcpu, std::span<const uint64_t> offsets,
                   std::span<uint8_t* const> pages, uint64_t page_bytes) override;

  uint64_t DeviceOffset(uint64_t offset) const override {
    StatusOr<uint64_t> dev = store_->TranslateOffset(blob_, offset);
    return dev.ok() ? *dev : offset;
  }

  StatusOr<uint64_t> TranslateForQueue(uint64_t offset) const override {
    return store_->TranslateOffset(blob_, offset);
  }

  Status Flush(Vcpu& vcpu) override { return store_->device()->Flush(vcpu); }

  BlockDevice* device() override { return store_->device(); }

  BlobId blob() const { return blob_; }

 private:
  Blobstore* store_;
  BlobId blob_;
};

}  // namespace aquila

#endif  // AQUILA_SRC_CORE_BACKING_H_
