// AquilaMap: one shared file-backed mmio mapping under the Aquila runtime.
//
// The access path implements the paper's common-path operation ①:
//   hit  : TLB/page-table translation only — no software beyond the walk
//          (charged as hardware; cache hits are "free");
//   miss : a page fault taken in non-root ring 0 (552-cycle exception, no
//          protection-domain switch), handled under the page's VMA entry
//          lock: cache lookup in the lock-free hash, frame allocation from
//          the 2-level freelist, synchronous batched eviction when empty,
//          device read, mapping install.
// Dirty tracking follows §3.2: read faults map read-only; the first write
// takes a second (minor) fault that sets PTE.W|D and inserts the frame into
// the faulting core's dirty tree, keyed by device offset.
#ifndef AQUILA_SRC_CORE_MMIO_REGION_H_
#define AQUILA_SRC_CORE_MMIO_REGION_H_

#include <atomic>
#include <memory>

#include "src/core/aquila.h"
#include "src/core/sched.h"
#include "src/core/writeback.h"

namespace aquila {

class AquilaMap : public MemoryMap {
 public:
  AquilaMap(Aquila* runtime, Backing* backing, uint64_t length, int prot);

  uint64_t length() const override { return length_; }

  Status Read(uint64_t offset, std::span<uint8_t> dst) override;
  Status Write(uint64_t offset, std::span<const uint8_t> src) override;
  AccessResult TouchRead(uint64_t offset) override;
  AccessResult TouchWrite(uint64_t offset) override;
  Status Sync(uint64_t offset, uint64_t length) override;
  Status Advise(uint64_t offset, uint64_t length, Advice advice) override;

  // Batched surface. With Options::coop_sched the batch runs on the calling
  // core's cooperative scheduler: touch requests park at fault-path wait
  // points and overlap their device reads; Poll drives the run queue and
  // blocks (advancing simulated time) until at least one request completes.
  // Without coop_sched both fall through to the synchronous base loop. The
  // batch protocol is per-thread: one submitting/polling thread per map.
  // Unmapping with requests still in flight is a caller error.
  Status SubmitBatch(std::span<const MmioRequest> requests) override;
  size_t Poll(std::span<MmioCompletion> out) override;

  // mprotect over the whole mapping (downgrades shoot down stale TLBs).
  Status Protect(int prot);

  // Trap mode (transparent mappings; see src/core/trap_driver.h).
  bool transparent() const { return transparent_base_ != nullptr; }
  // Raw pointer the application dereferences; null for soft-mode mappings.
  uint8_t* data() { return transparent_base_; }
  // Called by the SIGSEGV handler: resolves the fault at `vaddr` and
  // installs a real translation. Returns non-OK for addresses outside the
  // mapping (the handler then falls through to the default disposition) or
  // kIoError when the backing device failed — the handler then raises the
  // SIGBUS analog (Options::sigbus_handler) instead of crashing outright.
  Status HandleTrapFault(uint64_t vaddr, bool write);

  // True once repeated writeback failures have demoted the mapping to
  // read-only (writes fault with kIoError; reads of resident/clean pages
  // still work). Cleared when a later writeback succeeds before the limit.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  // Re-arms a degraded mapping after the backing device has healed: clears
  // the read-only demotion and the failure counter so writes fault in and
  // msync retries writeback. Refuses (kFailedPrecondition) while the
  // device's health breaker is still open — re-arming against a dead device
  // would just re-degrade after `writeback_failure_limit` more failures.
  Status RearmWriteback();

  const Vma& vma() const { return vma_; }
  uint64_t mapping_id() const { return vma_.mapping_id; }
  Backing* backing() { return backing_; }

 private:
  friend class Aquila;
  friend class WritebackPlanner;
  friend class AsyncWritebackEngine;
  friend class CoreScheduler;

  // Result of one page access: pointer valid until UnlockPage.
  struct PageRef {
    uint8_t* data = nullptr;
    bool faulted = false;
  };

  // Cooperative-scheduling context threaded through AccessPage/HandleFault
  // for batch requests. nullptr (every legacy caller) keeps the blocking
  // fault path bit-for-bit unchanged. When the fault path parks instead of
  // waiting, it sets `parked` and records the resume ticket; the access
  // returns an empty PageRef the scheduler discards.
  struct CoopContext {
    CoreScheduler* sched = nullptr;
    uint64_t token = 0;      // out: parked-table ticket
    bool parked = false;     // out: the access parked instead of completing
    bool owner_park = false; // out: parked on its own demand fill (point c)
    bool resumed = false;    // in: this run resumes a previously parked task
  };

  static uint64_t MakeKey(uint64_t mapping_id, uint64_t file_page) {
    return (1ull << 63) | (mapping_id << 40) | file_page;
  }
  static uint64_t FilePageOfKey(uint64_t key) { return key & ((1ull << 40) - 1); }
  uint64_t SortKey(uint64_t file_offset) const {
    return (vma_.mapping_id << 40) | (backing_->DeviceOffset(file_offset) >> kPageShift);
  }

  // Locks the page entry, resolves (faulting if needed), returns the frame
  // data. Caller must UnlockPage(page) afterwards — except when the access
  // parked (coop != nullptr and coop->parked), where the lock was already
  // released and the returned PageRef is empty.
  StatusOr<PageRef> AccessPage(uint64_t offset, bool write, CoopContext* coop = nullptr);
  void UnlockPage(uint64_t page) { runtime_->vma_tree().UnlockEntry(page); }

  // Fault handling (entry lock held). Returns the resident frame, or parks
  // (coop->parked set, kInvalidFrame returned) at a wait point.
  StatusOr<FrameId> HandleFault(Vcpu& vcpu, uint64_t vaddr, bool write,
                                CoopContext* coop = nullptr);
  // One cooperative step of a batch task: resumes a parked task (or skips it
  // when not yet woken), runs the access, and either completes the task or
  // parks it again. Called by CoreScheduler::RunReady on the owning core.
  void CoopStep(Vcpu& vcpu, CoreScheduler* sched, CoreScheduler::Task* task);
  // Installs readahead pages following `file_page` (best effort: callers may
  // ignore the status — it reports the first fill that could not be issued).
  Status ReadAhead(Vcpu& vcpu, uint64_t file_page);
  // Batched eviction (synchronous writeback, or submission to the async
  // engines). Returns frames freed now — async mode frees dirty victims
  // later, when their completions reap. Writeback failures (sync I/O errors
  // and async submission rejections alike) are charged via
  // NoteWritebackResult and reduce the round's progress; they are never
  // surfaced as a fault error for an unrelated page.
  StatusOr<size_t> EvictBatch(Vcpu& vcpu);
  // Fills `frame` for (vaddr,key) from the backing and publishes it.
  Status FillAndPublish(Vcpu& vcpu, FrameId frame, uint64_t vaddr, uint64_t key, bool write);

  // Records the outcome of one writeback batch (sync) or completion (async):
  // failures count toward the degradation limit, a success resets the count.
  void NoteWritebackResult(const Status& status);
  // Re-publishes a claimed-but-unwritten dirty frame after a writeback
  // failure: frame re-marked dirty and resident. `reinsert_mapping` is true
  // on the synchronous path (which removed the cache mapping when claiming)
  // and false on the async path (which keeps it for waiting faulters).
  void RestoreDirtyFrame(Vcpu& vcpu, FrameId frame, uint64_t sort_key, bool reinsert_mapping);

  // The async pipeline, present iff Options::async_writeback.
  AsyncWritebackEngine* writeback_engine() { return engine_.get(); }

  // Internal setup/teardown used by Aquila::Map/Unmap.
  Status Install();
  Status TearDown();

  Aquila* runtime_;
  Backing* backing_;
  uint64_t length_;
  Vma vma_;
  std::atomic<Advice> advice_{Advice::kNormal};
  uint8_t* transparent_base_ = nullptr;  // set for trap-mode mappings
  std::atomic<uint32_t> writeback_failures_{0};
  std::atomic<bool> degraded_{false};
  std::unique_ptr<AsyncWritebackEngine> engine_;  // iff Options::async_writeback
  // High-water mark of async-prefetched file pages (sequential streams): an
  // in-flight fill is invisible to the cache hash, so without it a re-armed
  // window would resubmit every fill still in the queue.
  std::atomic<uint64_t> next_readahead_{0};
};

}  // namespace aquila

#endif  // AQUILA_SRC_CORE_MMIO_REGION_H_
