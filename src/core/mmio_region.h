// AquilaMap: one shared file-backed mmio mapping under the Aquila runtime.
//
// The access path implements the paper's common-path operation ①:
//   hit  : TLB/page-table translation only — no software beyond the walk
//          (charged as hardware; cache hits are "free");
//   miss : a page fault taken in non-root ring 0 (552-cycle exception, no
//          protection-domain switch), handled under the page's VMA entry
//          lock: cache lookup in the lock-free hash, frame allocation from
//          the 2-level freelist, synchronous batched eviction when empty,
//          device read, mapping install.
// Dirty tracking follows §3.2: read faults map read-only; the first write
// takes a second (minor) fault that sets PTE.W|D and inserts the frame into
// the faulting core's dirty tree, keyed by device offset.
#ifndef AQUILA_SRC_CORE_MMIO_REGION_H_
#define AQUILA_SRC_CORE_MMIO_REGION_H_

#include <atomic>
#include <memory>

#include "src/core/aquila.h"
#include "src/core/sched.h"
#include "src/core/writeback.h"

namespace aquila {

class AquilaMap : public MemoryMap {
 public:
  AquilaMap(Aquila* runtime, Backing* backing, uint64_t length, int prot);

  uint64_t length() const override { return length_; }

  Status Read(uint64_t offset, std::span<uint8_t> dst) override;
  Status Write(uint64_t offset, std::span<const uint8_t> src) override;
  AccessResult TouchRead(uint64_t offset) override;
  AccessResult TouchWrite(uint64_t offset) override;
  Status Sync(uint64_t offset, uint64_t length) override;
  Status Advise(uint64_t offset, uint64_t length, Advice advice) override;

  // Batched surface. With Options::coop_sched the batch runs on the calling
  // core's cooperative scheduler: touch requests park at fault-path wait
  // points and overlap their device reads; Poll drives the run queue and
  // blocks (advancing simulated time) until at least one request completes.
  // Without coop_sched both fall through to the synchronous base loop. The
  // batch protocol is per-thread: one submitting/polling thread per map.
  // Unmapping with requests still in flight is a caller error.
  Status SubmitBatch(std::span<const MmioRequest> requests) override;
  size_t Poll(std::span<MmioCompletion> out) override;

  // mprotect over the whole mapping (downgrades shoot down stale TLBs).
  Status Protect(int prot);

  // Trap mode (transparent mappings; see src/core/trap_driver.h).
  bool transparent() const { return transparent_base_ != nullptr; }
  // Raw pointer the application dereferences; null for soft-mode mappings.
  uint8_t* data() { return transparent_base_; }
  // Called by the SIGSEGV handler: resolves the fault at `vaddr` and
  // installs a real translation. Returns non-OK for addresses outside the
  // mapping (the handler then falls through to the default disposition) or
  // kIoError when the backing device failed — the handler then raises the
  // SIGBUS analog (Options::sigbus_handler) instead of crashing outright.
  Status HandleTrapFault(uint64_t vaddr, bool write);

  // True once repeated writeback failures have demoted the mapping to
  // read-only (writes fault with kIoError; reads of resident/clean pages
  // still work). Cleared when a later writeback succeeds before the limit.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  // Re-arms a degraded mapping after the backing device has healed: clears
  // the read-only demotion and the failure counter so writes fault in and
  // msync retries writeback. Refuses (kFailedPrecondition) while the
  // device's health breaker is still open — re-arming against a dead device
  // would just re-degrade after `writeback_failure_limit` more failures.
  Status RearmWriteback();

  const Vma& vma() const { return vma_; }
  uint64_t mapping_id() const { return vma_.mapping_id; }
  Backing* backing() { return backing_; }

 private:
  friend class Aquila;
  friend class WritebackPlanner;
  friend class AsyncWritebackEngine;
  friend class CoreScheduler;

  // Result of one page access: pointer valid until UnlockPage.
  struct PageRef {
    uint8_t* data = nullptr;
    bool faulted = false;
    // Span whose density crossed the promotion threshold during this access;
    // the wrapper promotes AFTER UnlockPage — promotion retires 4K frames,
    // so running it while `data` is live would free the page under the
    // caller.
    uint64_t promote_span = kNoSpan;
  };

  // --- Transparent 2 MB huge pages (DESIGN.md §14) ---------------------------
  static constexpr uint64_t kSpanPages = kHugePage2M / kPageSize;  // 512
  static constexpr uint64_t kNoSpan = ~0ull;

  // Per-span promotion state machine. k4K -> kPromoting (the promoter holds
  // every entry lock of the span, taken with TryLockEntry only) -> kHuge,
  // and kHuge -> kDemoting -> k4K. Because only promoters multi-lock and
  // only with TryLock, a demoter that spins on kPromoting while holding one
  // entry lock always forces the promoter's abort instead of deadlocking.
  enum class SpanState : uint8_t { k4K = 0, kPromoting, kHuge, kDemoting };

  struct HugeSpan {
    // 4K PTEs currently installed in the span (readahead frames with no PTE
    // do not count): the promotion density signal.
    std::atomic<uint32_t> resident{0};
    std::atomic<uint8_t> state{0};  // a SpanState; starts k4K
    // First frame of the backing run while kHuge; kInvalidFrame otherwise.
    std::atomic<uint32_t> run_first{kInvalidFrame};
  };

  bool huge_enabled() const { return spans_ != nullptr; }
  uint64_t SpanOf(uint64_t file_page) const { return file_page / kSpanPages; }
  // PTE-count bookkeeping at install/remove sites; no-ops when huge pages
  // are off (spans_ null), keeping the off path branch-only.
  void NotePteInstalled(uint64_t file_page) {
    if (spans_ != nullptr) {
      spans_[SpanOf(file_page)].resident.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void NotePteRemoved(uint64_t file_page) {
    if (spans_ != nullptr) {
      spans_[SpanOf(file_page)].resident.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Cooperative-scheduling context threaded through AccessPage/HandleFault
  // for batch requests. nullptr (every legacy caller) keeps the blocking
  // fault path bit-for-bit unchanged. When the fault path parks instead of
  // waiting, it sets `parked` and records the resume ticket; the access
  // returns an empty PageRef the scheduler discards.
  struct CoopContext {
    CoreScheduler* sched = nullptr;
    uint64_t token = 0;      // out: parked-table ticket
    bool parked = false;     // out: the access parked instead of completing
    bool owner_park = false; // out: parked on its own demand fill (point c)
    bool resumed = false;    // in: this run resumes a previously parked task
  };

  static uint64_t MakeKey(uint64_t mapping_id, uint64_t file_page) {
    return (1ull << 63) | (mapping_id << 40) | file_page;
  }
  static uint64_t FilePageOfKey(uint64_t key) { return key & ((1ull << 40) - 1); }
  uint64_t SortKey(uint64_t file_offset) const {
    return (vma_.mapping_id << 40) | (backing_->DeviceOffset(file_offset) >> kPageShift);
  }

  // Locks the page entry, resolves (faulting if needed), returns the frame
  // data. Caller must UnlockPage(page) afterwards — except when the access
  // parked (coop != nullptr and coop->parked), where the lock was already
  // released and the returned PageRef is empty.
  StatusOr<PageRef> AccessPage(uint64_t offset, bool write, CoopContext* coop = nullptr);
  void UnlockPage(uint64_t page) { runtime_->vma_tree().UnlockEntry(page); }

  // Fault handling (entry lock held). Returns the resident frame, or parks
  // (coop->parked set, kInvalidFrame returned) at a wait point.
  StatusOr<FrameId> HandleFault(Vcpu& vcpu, uint64_t vaddr, bool write,
                                CoopContext* coop = nullptr);
  // One cooperative step of a batch task: resumes a parked task (or skips it
  // when not yet woken), runs the access, and either completes the task or
  // parks it again. Called by CoreScheduler::RunReady on the owning core.
  void CoopStep(Vcpu& vcpu, CoreScheduler* sched, CoreScheduler::Task* task);
  // Installs readahead pages following `file_page` (best effort: callers may
  // ignore the status — it reports the first fill that could not be issued).
  Status ReadAhead(Vcpu& vcpu, uint64_t file_page);
  // Batched eviction (synchronous writeback, or submission to the async
  // engines). Returns frames freed now — async mode frees dirty victims
  // later, when their completions reap. Writeback failures (sync I/O errors
  // and async submission rejections alike) are charged via
  // NoteWritebackResult and reduce the round's progress; they are never
  // surfaced as a fault error for an unrelated page.
  StatusOr<size_t> EvictBatch(Vcpu& vcpu);
  // Fills `frame` for (vaddr,key) from the backing and publishes it.
  Status FillAndPublish(Vcpu& vcpu, FrameId frame, uint64_t vaddr, uint64_t key, bool write);

  // Records the outcome of one writeback batch (sync) or completion (async):
  // failures count toward the degradation limit, a success resets the count.
  void NoteWritebackResult(const Status& status);
  // Re-publishes a claimed-but-unwritten dirty frame after a writeback
  // failure: frame re-marked dirty and resident. `reinsert_mapping` is true
  // on the synchronous path (which removed the cache mapping when claiming)
  // and false on the async path (which keeps it for waiting faulters).
  void RestoreDirtyFrame(Vcpu& vcpu, FrameId frame, uint64_t sort_key, bool reinsert_mapping);

  // The async pipeline, present iff Options::async_writeback.
  AsyncWritebackEngine* writeback_engine() { return engine_.get(); }

  // Maps up to Options::fault_around_pages already-resident forward
  // neighbors of a just-faulted page under their entry locks (read-only, so
  // no shootdown is needed) — the cheap tier below promotion. Advances
  // next_readahead_ past what it mapped so the readahead engine does not
  // resubmit fills for those pages.
  void FaultAround(Vcpu& vcpu, uint64_t file_page);
  // True when `span` is full-size, still 4K, and dense enough to promote.
  bool PromotionEligible(uint64_t span) const;
  // Runs the promotion protocol for `span` (must be called with NO entry
  // locks held). Counts an abort when the span cannot be promoted safely.
  void MaybePromote(Vcpu& vcpu, uint64_t span);
  // Body of MaybePromote once the span is CASed to kPromoting; returns
  // success and leaves the span kHuge, or unwinds and leaves it k4K.
  bool TryPromote(Vcpu& vcpu, uint64_t span);
  // Splits the span covering `file_page` back to 4K if it is huge (or
  // becoming huge). Safe to call with one entry lock of the span held.
  void DemoteSpanForPage(Vcpu& vcpu, uint64_t file_page);
  void DemoteSpan(Vcpu& vcpu, uint64_t span);
  void DemoteAllSpans(Vcpu& vcpu);

  // Internal setup/teardown used by Aquila::Map/Unmap.
  Status Install();
  Status TearDown();

  Aquila* runtime_;
  Backing* backing_;
  uint64_t length_;
  Vma vma_;
  std::atomic<Advice> advice_{Advice::kNormal};
  uint8_t* transparent_base_ = nullptr;  // set for trap-mode mappings
  std::atomic<uint32_t> writeback_failures_{0};
  std::atomic<bool> degraded_{false};
  std::unique_ptr<AsyncWritebackEngine> engine_;  // iff Options::async_writeback
  // High-water mark of async-prefetched file pages (sequential streams): an
  // in-flight fill is invisible to the cache hash, so without it a re-armed
  // window would resubmit every fill still in the queue.
  std::atomic<uint64_t> next_readahead_{0};
  // One tracker per 2 MB-aligned span of the mapping; allocated by Install()
  // iff Options::huge_pages and the mapping is soft-mode. Null means every
  // huge-page branch in the hot paths collapses to one predictable test.
  std::unique_ptr<HugeSpan[]> spans_;
  uint64_t span_count_ = 0;  // fixed at Install()
};

}  // namespace aquila

#endif  // AQUILA_SRC_CORE_MMIO_REGION_H_
